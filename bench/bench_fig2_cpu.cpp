// bench_fig2_cpu — reproduces Fig. 2a: the CPU implementations at 4000^2,
// including the paper's manual-OpenMP NUMA outlier on the Xeon and the
// strong showing of OPS MPI Tiled on the KNL.  Shares its measurements with
// the other benches through the result store (the 4000^2 projection reuses
// the same host rows as Fig. 1).
#include <cstdio>

#include "bench/harness.hpp"

int main() {
  const auto options = bench::HarnessOptions::from_env(/*paper_mesh=*/4000);
  const auto rows =
      bench::run_variants(bench::cpu_variants(), {"xeon", "knl"}, options);
  bench::print_figure("Fig. 2a — 4000^2 dataset (CPU systems)", rows, options);
  const int failures = bench::check_shapes(rows, {}, 4000);
  bench::print_store_stats();
  std::printf("fig2_cpu shape failures: %d\n", failures);
  return 0;
}
