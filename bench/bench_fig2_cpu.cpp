// bench_fig2_cpu — reproduces Fig. 2a: the CPU implementations at 4000^2,
// including the paper's manual-OpenMP NUMA outlier on the Xeon and the
// strong showing of OPS MPI Tiled on the KNL.  Shares its measurements with
// the other benches through the result store (the 4000^2 projection reuses
// the same host rows as Fig. 1).
#include <cstdio>

#include "bench/harness.hpp"

int main() {
  const auto options = bench::HarnessOptions::from_env(/*paper_mesh=*/4000);
  const auto rows =
      bench::run_variants(bench::cpu_variants(), {"xeon", "knl"}, options);
  bench::print_figure("Fig. 2a — 4000^2 dataset (CPU systems)", rows, options);
  const int failures = bench::check_shapes(rows, {}, 4000);

  // Non-isotropic companion rows (tea_aniso family, dx = 4*dy); same host
  // rows as fig1's aniso table, re-projected to 4000^2.
  const auto aniso_rows = bench::run_problem_variants(
      {"manual-omp", "ops-tiled"}, {"xeon", "knl"}, options,
      results::aniso_bench_problem(options.bench_mesh, options.bench_steps,
                                   options.eps),
      "bench-aniso-" + std::to_string(options.bench_mesh));
  bench::print_figure("Anisotropic workload (tea_aniso family, CPU)",
                      aniso_rows, options);
  bench::print_store_stats();
  std::printf("fig2_cpu shape failures: %d\n", failures);
  return 0;
}
