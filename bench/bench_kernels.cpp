// bench_kernels — google-benchmark microbenchmarks of the individual TeaLeaf
// kernels across representative substrates (serial rows, tlp pool, simulated
// GPU, miniops par_loop).  Supports the paper's §IV-C analysis of where the
// cycles go: the 5-point operator and the dot products dominate.
//
// This is the one bench outside the shared result store: google-benchmark
// owns the measurement protocol (adaptive iteration counts per kernel), which
// has no stable (variant, problem, RunOptions) identity to key a store row
// on.  Whole-solve timings all live in BENCH_results.json; see
// docs/BENCHMARKS.md.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/config.hpp"
#include "core/backends/manual_cuda.hpp"
#include "core/backends/manual_host.hpp"
#include "core/backends/ops_backend.hpp"
#include "threading/thread_pool.hpp"

namespace {

tl::ProblemConfig problem(int n) {
  tl::Config cfg = tl::Config::default_config();
  cfg.problem().x_cells = n;
  cfg.problem().y_cells = n;
  return cfg.problem();
}

template <typename B>
std::unique_ptr<B> prepared(std::unique_ptr<B> backend, int n) {
  const auto cfg = problem(n);
  backend->setup(cfg);
  const double dt = cfg.initial_timestep;
  backend->set_rx_ry(dt / (cfg.dx() * cfg.dx()), dt / (cfg.dy() * cfg.dy()));
  backend->compute_coefficients(cfg.coefficient);
  backend->init_u_u0();
  backend->update_halo({tea::FieldId::kU}, 1);
  return backend;
}

void report_cells(benchmark::State& state, int n) {
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n) * n);
}

// --- 5-point operator (w = A u) ------------------------------------------------

void BM_Operator_Serial(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto b = prepared(std::make_unique<tea::ManualHostBackend>("serial", nullptr,
                                                             nullptr),
                    n);
  for (auto _ : state) {
    b->apply_operator(tea::FieldId::kU, tea::FieldId::kW);
  }
  report_cells(state, n);
}
BENCHMARK(BM_Operator_Serial)->Arg(256)->Arg(512)->Arg(1024);

void BM_Operator_Threads(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto b = prepared(std::make_unique<tea::ManualHostBackend>(
                        "manual-omp", &tlp::global_pool(), nullptr),
                    n);
  for (auto _ : state) {
    b->apply_operator(tea::FieldId::kU, tea::FieldId::kW);
  }
  report_cells(state, n);
}
BENCHMARK(BM_Operator_Threads)->Arg(256)->Arg(512)->Arg(1024);

void BM_Operator_SimGPU(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto b = prepared(std::make_unique<tea::ManualCudaBackend>(), n);
  for (auto _ : state) {
    b->apply_operator(tea::FieldId::kU, tea::FieldId::kW);
  }
  report_cells(state, n);
}
BENCHMARK(BM_Operator_SimGPU)->Arg(256)->Arg(512);

void BM_Operator_Ops(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ops::ContextOptions o;
  o.use_pool = true;
  auto b = prepared(std::make_unique<tea::OpsBackend>("ops-omp", o), n);
  for (auto _ : state) {
    b->apply_operator(tea::FieldId::kU, tea::FieldId::kW);
  }
  report_cells(state, n);
}
BENCHMARK(BM_Operator_Ops)->Arg(256)->Arg(512)->Arg(1024);

// --- fused operator+dot (the CG/PPCG inner-iteration hot path) -----------------

void BM_OperatorDot_Serial(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto b = prepared(std::make_unique<tea::ManualHostBackend>("serial", nullptr,
                                                             nullptr),
                    n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        b->apply_operator_dot(tea::FieldId::kU, tea::FieldId::kW));
  }
  report_cells(state, n);
}
BENCHMARK(BM_OperatorDot_Serial)->Arg(256)->Arg(512)->Arg(1024);

void BM_OperatorDot_Threads(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto b = prepared(std::make_unique<tea::ManualHostBackend>(
                        "manual-omp", &tlp::global_pool(), nullptr),
                    n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        b->apply_operator_dot(tea::FieldId::kU, tea::FieldId::kW));
  }
  report_cells(state, n);
}
BENCHMARK(BM_OperatorDot_Threads)->Arg(256)->Arg(512)->Arg(1024);

// --- dot product -----------------------------------------------------------------

void BM_Dot_Serial(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto b = prepared(std::make_unique<tea::ManualHostBackend>("serial", nullptr,
                                                             nullptr),
                    n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(b->dot(tea::FieldId::kU, tea::FieldId::kU0));
  }
  report_cells(state, n);
}
BENCHMARK(BM_Dot_Serial)->Arg(256)->Arg(1024);

void BM_Dot_Threads(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto b = prepared(std::make_unique<tea::ManualHostBackend>(
                        "manual-omp", &tlp::global_pool(), nullptr),
                    n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(b->dot(tea::FieldId::kU, tea::FieldId::kU0));
  }
  report_cells(state, n);
}
BENCHMARK(BM_Dot_Threads)->Arg(256)->Arg(1024);

void BM_Dot_SimGPU(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto b = prepared(std::make_unique<tea::ManualCudaBackend>(), n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(b->dot(tea::FieldId::kU, tea::FieldId::kU0));
  }
  report_cells(state, n);
}
BENCHMARK(BM_Dot_SimGPU)->Arg(256)->Arg(512);

// --- axpy / smoothing ---------------------------------------------------------------

void BM_Axpy_Threads(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto b = prepared(std::make_unique<tea::ManualHostBackend>(
                        "manual-omp", &tlp::global_pool(), nullptr),
                    n);
  for (auto _ : state) {
    b->axpy(tea::FieldId::kU, 1e-9, tea::FieldId::kU0);
  }
  report_cells(state, n);
}
BENCHMARK(BM_Axpy_Threads)->Arg(256)->Arg(1024);

void BM_HaloUpdate_Serial(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto b = prepared(std::make_unique<tea::ManualHostBackend>("serial", nullptr,
                                                             nullptr),
                    n);
  for (auto _ : state) {
    b->update_halo({tea::FieldId::kU}, 2);
  }
  report_cells(state, n);
}
BENCHMARK(BM_HaloUpdate_Serial)->Arg(256)->Arg(1024);

void BM_FieldSummary_Threads(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto b = prepared(std::make_unique<tea::ManualHostBackend>(
                        "manual-omp", &tlp::global_pool(), nullptr),
                    n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(b->field_summary());
  }
  report_cells(state, n);
}
BENCHMARK(BM_FieldSummary_Threads)->Arg(256)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
