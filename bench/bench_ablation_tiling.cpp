// bench_ablation_tiling — ablation of the OPS cache-blocking tiling (the
// design choice behind the paper's "OPS MPI Tiled" variant, ref. [21]).
//
// Two regimes, matching how the mechanism really behaves:
//  * CG chains flush at every dot product (2 per iteration), so tiling can
//    only fuse 1-3 loops — little to gain;
//  * Chebyshev/PPCG smoothing iterates for many steps between global
//    reductions; with halo reflections queued as skewable loops the chain
//    spans whole iterations and intermediate fields stay cache-resident.
// The bench sweeps tile sizes on both solvers and reports real host time,
// the measured DRAM-traffic ratio (the mechanism), and the projected KNL
// time.  Each (solver, tile shape, ranks) cell is one result-store row.
#include <cstdio>

#include "bench/harness.hpp"
#include "common/config.hpp"
#include "common/table.hpp"
#include "machine/machine_model.hpp"
#include "machine/roofline.hpp"

namespace {

tl::ProblemConfig problem(tl::SolverKind solver) {
  tl::Config cfg = tl::Config::default_config();
  cfg.problem().x_cells = 256;
  cfg.problem().y_cells = 256;
  cfg.problem().end_step = 2;
  cfg.problem().eps = 1e-11;
  cfg.problem().solver = solver;
  return cfg.problem();
}

double project_knl(const results::ResultRow& r) {
  return machine::project_time(r.counters, machine::knl_7210(), "ops-tiled",
                               r.working_set_bytes)
      .total();
}

void sweep(tl::SolverKind solver, int samples) {
  std::printf("-- solver: %s --\n", tl::to_string(solver));
  const char* deck = "ablation-tiling";
  tl::Table table({"configuration", "host s (med)", "bytes moved (GB)",
                   "traffic vs untiled", "knl proj s"});

  // Single-rank runs isolate the cache-blocking mechanism (with ranks the
  // halo exchanges fence the queue and the benefit shrinks — also shown).
  tea::RunOptions untiled_opts;
  untiled_opts.ranks = 1;
  const auto untiled =
      bench::measure("ops-mpi", problem(solver), untiled_opts, deck, samples);
  const double base_bytes =
      static_cast<double>(untiled.counters.total_bytes());
  table.add_row({"untiled (1 rank)", tl::Table::num(untiled.timing.median_s, 3),
                 tl::Table::num(base_bytes / 1e9, 2), "1.00",
                 tl::Table::num(project_knl(untiled), 2)});

  for (const int tile_rows : {0, 16, 64}) {
    tea::RunOptions o;
    o.ranks = 1;
    o.tile.tile_rows = tile_rows;
    const auto run =
        bench::measure("ops-tiled", problem(solver), o, deck, samples);
    const double bytes = static_cast<double>(run.counters.total_bytes());
    const std::string label =
        tile_rows == 0 ? "tiled, auto rows"
                       : "tiled, rows=" + std::to_string(tile_rows);
    table.add_row({label, tl::Table::num(run.timing.median_s, 3),
                   tl::Table::num(bytes / 1e9, 2),
                   tl::Table::num(bytes / base_bytes, 2),
                   tl::Table::num(project_knl(run), 2)});
  }

  // The paper's actual configuration: tiling under MPI decomposition.
  tea::RunOptions mpi_opts;
  mpi_opts.ranks = 4;
  const auto mpi_tiled =
      bench::measure("ops-tiled", problem(solver), mpi_opts, deck, samples);
  table.add_row(
      {"tiled, 4 ranks", tl::Table::num(mpi_tiled.timing.median_s, 3),
       tl::Table::num(static_cast<double>(mpi_tiled.counters.total_bytes()) / 1e9, 2),
       tl::Table::num(static_cast<double>(mpi_tiled.counters.total_bytes()) / base_bytes, 2),
       tl::Table::num(project_knl(mpi_tiled), 2)});

  std::printf("%s\n", table.to_ascii().c_str());
}

}  // namespace

int main() {
  std::printf("== Ablation: OPS cache-blocking tiling ==\n\n");
  const int samples = bench::HarnessOptions::from_env(1000).samples;
  sweep(tl::SolverKind::kCg, samples);
  sweep(tl::SolverKind::kCheby, samples);
  std::printf(
      "Chained Chebyshev smoothing tiles across whole iterations (halo\n"
      "reflections are queued as skewable loops), cutting DRAM traffic;\n"
      "CG's two dot products per iteration fence the queue, bounding the\n"
      "gain — which is why the paper pairs tiling with MPI rather than\n"
      "relying on it alone.  Correctness of every chain shape is enforced\n"
      "by tests/test_tiling.cpp.\n");
  bench::print_store_stats();
  return 0;
}
