// bench_ablation_threads — thread-scaling ablation.  The paper selects "the
// optimal number of threads" per OpenMP measurement; this bench shows the
// real scaling curve of the manual-omp variant on this host, plus the
// rank-count scaling of manual-mpi.  Every (variant, threads/ranks) cell is
// one store row, so repeated runs and other benches reuse the measurements.
#include <algorithm>
#include <cstdio>
#include <thread>

#include "bench/harness.hpp"
#include "common/config.hpp"
#include "common/table.hpp"

int main() {
  tl::Config cfg = tl::Config::default_config();
  cfg.problem().x_cells = 384;
  cfg.problem().y_cells = 384;
  cfg.problem().end_step = 2;
  cfg.problem().eps = 1e-12;

  const int hw = std::max(1u, std::thread::hardware_concurrency());
  const int samples = bench::HarnessOptions::from_env(1000).samples;
  const char* deck = "ablation-threads";

  std::printf("== Ablation: host thread/rank scaling (%d hardware threads) ==\n",
              hw);
  tl::Table table({"variant", "threads/ranks", "host s (med)", "speedup"});

  double serial_s = 0.0;
  {
    const auto row =
        bench::measure("serial", cfg.problem(), {}, deck, samples);
    serial_s = row.timing.median_s;
    table.add_row({"serial", "1", tl::Table::num(serial_s, 3), "1.00"});
  }

  for (int threads = 1; threads <= hw; threads *= 2) {
    tea::RunOptions o;
    o.threads = threads;
    const auto row =
        bench::measure("manual-omp", cfg.problem(), o, deck, samples);
    table.add_row({"manual-omp", std::to_string(threads),
                   tl::Table::num(row.timing.median_s, 3),
                   tl::Table::num(serial_s / row.timing.median_s, 2)});
  }

  for (int ranks = 1; ranks <= std::min(hw, 16); ranks *= 2) {
    tea::RunOptions o;
    o.ranks = ranks;
    const auto row =
        bench::measure("manual-mpi", cfg.problem(), o, deck, samples);
    table.add_row({"manual-mpi", std::to_string(ranks),
                   tl::Table::num(row.timing.median_s, 3),
                   tl::Table::num(serial_s / row.timing.median_s, 2)});
  }

  std::printf("%s\n", table.to_ascii().c_str());
  bench::print_store_stats();
  return 0;
}
