// bench_table3_portability — reproduces Table III: per-framework architecture
// efficiency (compute %, bandwidth %) and application efficiency on the Xeon,
// the KNL and the P100 at 4000^2, and the Pennycook performance-portability
// metric over {CPU} and {CPU ∪ GPU}.  Prints our table, the paper's, and the
// per-cell deltas.  The join itself lives in results::compare_to_paper and is
// shared with `tea_sweep compare`, which renders the same table from stored
// JSON alone.
#include <cstdio>

#include "bench/harness.hpp"
#include "results/compare.hpp"

int main() {
  const auto options = bench::HarnessOptions::from_env(/*paper_mesh=*/4000);

  auto cpu_rows =
      bench::run_variants(bench::cpu_variants(), {"xeon", "knl"}, options);
  auto gpu_rows =
      bench::run_variants(bench::gpu_variants(), {"p100"}, options);

  std::vector<ppm::VariantResult> results = bench::to_variant_results(cpu_rows);
  for (auto& r : bench::to_variant_results(gpu_rows)) results.push_back(r);

  const results::PaperComparison cmp =
      results::compare_to_paper(results, {"xeon", "knl"}, {"p100"});

  std::printf("== Table III (ours, projected, 4000^2) ==\n%s\n",
              cmp.ours.to_ascii().c_str());

  // Paper side-by-side and deltas on the headline P columns.
  std::printf("== P(app) comparison vs paper ==\n%s\n",
              cmp.versus.to_ascii().c_str());

  // The ordering the paper's §V-B concludes with (app efficiency, CPU∪GPU):
  // manual > raja > ops > kokkos.
  std::printf("P(app, CPU∪GPU) ordering manual > raja > ops > kokkos: %s\n",
              cmp.ordering_ok ? "PASS" : "FAIL");

  // Memory-bound signature (paper §V-A): compute eff. tiny, BW eff. >= 50%
  // for the best frameworks.
  std::printf("memory-bound signature (compute eff. < 10%% everywhere): %s\n",
              cmp.memory_bound ? "PASS" : "FAIL");
  std::printf("worst |delta| on P(all,app): %.2f points\n", cmp.worst_delta);
  bench::print_store_stats();
  return 0;
}
