// bench_table3_portability — reproduces Table III: per-framework architecture
// efficiency (compute %, bandwidth %) and application efficiency on the Xeon,
// the KNL and the P100 at 4000^2, and the Pennycook performance-portability
// metric over {CPU} and {CPU ∪ GPU}.  Prints our table, the paper's, and the
// per-cell deltas.
#include <cmath>
#include <cstdio>

#include "bench/harness.hpp"
#include "machine/machine_model.hpp"
#include "ppmetric/paper_data.hpp"
#include "ppmetric/report.hpp"

namespace {

/// Flatten harness rows into ppm::VariantResult records.
std::vector<ppm::VariantResult> collect(
    const std::vector<bench::VariantTimes>& rows) {
  std::vector<ppm::VariantResult> out;
  for (const auto& row : rows) {
    for (std::size_t k = 0; k < row.machines.size(); ++k) {
      const machine::MachineModel& m = machine::machine_by_id(row.machines[k]);
      out.push_back(ppm::VariantResult{row.variant, row.machines[k],
                                       row.seconds[k], row.achieved_bw_gbs[k],
                                       row.achieved_gflops[k], m.peak_bw_gbs,
                                       m.peak_gflops});
    }
  }
  return out;
}

double find_paper(const std::string& framework,
                  double ppm::paper::Table3Row::*member) {
  for (const auto& row : ppm::paper::table3()) {
    if (row.framework == framework) return row.*member;
  }
  return -1.0;
}

}  // namespace

int main() {
  const auto options = bench::HarnessOptions::from_env(/*paper_mesh=*/4000);

  auto cpu_rows =
      bench::run_variants(bench::cpu_variants(), {"xeon", "knl"}, options);
  auto gpu_rows =
      bench::run_variants(bench::gpu_variants(), {"p100"}, options);

  std::vector<ppm::VariantResult> results = collect(cpu_rows);
  for (auto& r : collect(gpu_rows)) results.push_back(r);

  const auto table_rows =
      ppm::build_table3(results, {"xeon", "knl"}, {"p100"});
  const tl::Table ours =
      ppm::render_table3(table_rows, {"xeon", "knl"}, {"p100"});

  std::printf("== Table III (ours, projected, 4000^2) ==\n%s\n",
              ours.to_ascii().c_str());

  // Paper side-by-side and deltas on the headline P columns.
  std::printf("== P(app) comparison vs paper ==\n");
  tl::Table cmp({"framework", "P(CPU) ours", "P(CPU) paper", "P(all) ours",
                 "P(all) paper", "delta(all)"});
  double worst_delta = 0.0;
  for (const auto& row : table_rows) {
    const double paper_cpu =
        find_paper(row.framework, &ppm::paper::Table3Row::p_cpu_app);
    const double paper_all =
        find_paper(row.framework, &ppm::paper::Table3Row::p_all_app);
    if (paper_cpu < 0.0) continue;
    const double delta = 100.0 * (row.p_all_app - paper_all);
    worst_delta = std::max(worst_delta, std::fabs(delta));
    cmp.add_row({row.framework, tl::Table::num(100 * row.p_cpu_app, 2),
                 tl::Table::num(100 * paper_cpu, 2),
                 tl::Table::num(100 * row.p_all_app, 2),
                 tl::Table::num(100 * paper_all, 2),
                 tl::Table::num(delta, 2)});
  }
  std::printf("%s\n", cmp.to_ascii().c_str());

  // The ordering the paper's §V-B concludes with (app efficiency, CPU∪GPU):
  // manual > raja > ops > kokkos.
  const auto p_all = [&](const std::string& fw) {
    for (const auto& row : table_rows) {
      if (row.framework == fw) return row.p_all_app;
    }
    return -1.0;
  };
  const bool ordering_ok = p_all("manual") > p_all("raja") &&
                           p_all("raja") > p_all("ops") &&
                           p_all("ops") > p_all("kokkos");
  std::printf("P(app, CPU∪GPU) ordering manual > raja > ops > kokkos: %s\n",
              ordering_ok ? "PASS" : "FAIL");

  // Memory-bound signature (paper §V-A): compute eff. tiny, BW eff. >= 50%
  // for the best frameworks.
  bool memory_bound = true;
  for (const auto& row : table_rows) {
    for (const auto& [mid, eff] : row.per_machine) {
      if (eff.supported && eff.arch_compute > 0.10) memory_bound = false;
    }
  }
  std::printf("memory-bound signature (compute eff. < 10%% everywhere): %s\n",
              memory_bound ? "PASS" : "FAIL");
  std::printf("worst |delta| on P(all,app): %.2f points\n", worst_delta);
  return 0;
}
