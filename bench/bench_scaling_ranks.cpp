// bench_scaling_ranks — the paper's stated future work (§VI-A): "examine the
// difference between single node and distributed memory systems".  Strong-
// scaling sweep of the distributed variants over rank counts on this host,
// with parallel efficiency and message statistics, plus a modeled multi-node
// projection using the machine layer's message-cost terms.  Every
// (variant, ranks) cell is one shared-store row.
#include <algorithm>
#include <cstdio>
#include <thread>

#include "bench/harness.hpp"
#include "common/config.hpp"
#include "common/table.hpp"

int main() {
  tl::Config cfg = tl::Config::default_config();
  cfg.problem().x_cells = 384;
  cfg.problem().y_cells = 384;
  cfg.problem().end_step = 2;
  cfg.problem().eps = 1e-12;

  const int hw =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  const int samples = bench::HarnessOptions::from_env(1000).samples;

  std::printf("== Strong scaling over ranks (384^2, 2 steps, CG) ==\n");
  tl::Table table({"variant", "ranks", "host s (med)", "efficiency",
                   "messages", "msg GB"});

  for (const char* variant : {"manual-mpi", "ops-mpi", "ops-tiled"}) {
    double base_s = 0.0;
    for (int ranks = 1; ranks <= std::min(hw, 16); ranks *= 2) {
      tea::RunOptions o;
      o.ranks = ranks;
      const auto row = bench::measure(variant, cfg.problem(), o,
                                      "scaling-ranks", samples);
      if (ranks == 1) base_s = row.timing.median_s;
      const double eff = base_s / (row.timing.median_s * ranks);
      table.add_row(
          {variant, std::to_string(ranks),
           tl::Table::num(row.timing.median_s, 3), tl::Table::num(eff, 2),
           std::to_string(row.counters.messages),
           tl::Table::num(static_cast<double>(row.counters.message_bytes) / 1e9,
                          3)});
    }
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf(
      "In-process ranks share one memory system, so the strong-scaling curve\n"
      "here reflects decomposition and message-latency overheads rather than\n"
      "added bandwidth; per-message costs grow with rank count while the\n"
      "per-rank stream shrinks — the surface-to-volume trade the paper's\n"
      "future-work section targets.\n");
  bench::print_store_stats();
  return 0;
}
