// bench_scaling_ranks — the paper's stated future work (§VI-A): "examine the
// difference between single node and distributed memory systems".  Strong-
// scaling sweep of the distributed variants over rank counts on this host,
// with parallel efficiency and message statistics, plus a modeled multi-node
// projection using the machine layer's message-cost terms.
#include <algorithm>
#include <cstdio>
#include <thread>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/registry.hpp"

int main() {
  tl::Config cfg = tl::Config::default_config();
  cfg.problem().x_cells = 384;
  cfg.problem().y_cells = 384;
  cfg.problem().end_step = 2;
  cfg.problem().eps = 1e-12;

  const int hw =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));

  std::printf("== Strong scaling over ranks (384^2, 2 steps, CG) ==\n");
  tl::Table table({"variant", "ranks", "host s", "efficiency", "messages",
                   "msg GB"});

  for (const char* variant : {"manual-mpi", "ops-mpi", "ops-tiled"}) {
    double base_s = 0.0;
    for (int ranks = 1; ranks <= std::min(hw, 16); ranks *= 2) {
      tea::RunOptions o;
      o.ranks = ranks;
      const auto run = tea::run_simulation(variant, cfg.problem(), o);
      if (ranks == 1) base_s = run.wall_seconds;
      const double eff = base_s / (run.wall_seconds * ranks);
      table.add_row(
          {variant, std::to_string(ranks), tl::Table::num(run.wall_seconds, 3),
           tl::Table::num(eff, 2), std::to_string(run.counters.messages),
           tl::Table::num(static_cast<double>(run.counters.message_bytes) / 1e9,
                          3)});
    }
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf(
      "In-process ranks share one memory system, so the strong-scaling curve\n"
      "here reflects decomposition and message-latency overheads rather than\n"
      "added bandwidth; per-message costs grow with rank count while the\n"
      "per-rank stream shrinks — the surface-to-volume trade the paper's\n"
      "future-work section targets.\n");
  return 0;
}
