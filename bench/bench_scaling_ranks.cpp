// bench_scaling_ranks — the paper's stated future work (§VI-A): "examine the
// difference between single node and distributed memory systems".  Measured
// strong- and weak-scaling sweeps of the distributed variants over rank
// counts on this host, with parallel efficiency and message statistics.
// Every (variant, ranks) cell is one shared-store row, so re-runs are pure
// store queries and `tea_sweep diff` can gate the counters.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>

#include "bench/harness.hpp"
#include "common/config.hpp"
#include "common/table.hpp"
#include "minimpi/cart.hpp"

namespace {

std::vector<int> rank_ladder() {
  // {1, 2, 4} always (the acceptance floor; threads-as-ranks runs fine when
  // oversubscribed), then doubling while real cores remain.
  const int hw =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  std::vector<int> ladder = {1, 2, 4};
  for (int r = 8; r <= std::min(hw, 16); r *= 2) ladder.push_back(r);
  return ladder;
}

}  // namespace

int main() {
  const int samples = bench::HarnessOptions::from_env(1000).samples;
  const std::vector<int> ladder = rank_ladder();
  const std::vector<std::string> variants = {"manual-mpi", "manual-hybrid",
                                             "ops-mpi", "ops-tiled"};

  // --- strong scaling: fixed 384^2 global mesh, shrinking per-rank blocks.
  tl::Config strong = tl::Config::default_config();
  strong.problem().x_cells = 384;
  strong.problem().y_cells = 384;
  strong.problem().end_step = 2;
  strong.problem().eps = 1e-12;

  std::printf("== Strong scaling over ranks (384^2, 2 steps, CG) ==\n");
  tl::Table st({"variant", "ranks", "host s (med)", "efficiency", "messages",
                "msg GB"});
  for (const std::string& variant : variants) {
    double base_s = 0.0;
    for (const int ranks : ladder) {
      tea::RunOptions o;
      o.ranks = ranks;
      if (variant == "manual-hybrid") o.hybrid_threads = 2;
      const auto row = bench::measure(variant, strong.problem(), o,
                                      "scaling-ranks", samples);
      if (ranks == 1) base_s = row.timing.median_s;
      const double eff = base_s / (row.timing.median_s * ranks);
      st.add_row(
          {variant, std::to_string(ranks),
           tl::Table::num(row.timing.median_s, 3), tl::Table::num(eff, 2),
           std::to_string(row.counters.messages),
           tl::Table::num(static_cast<double>(row.counters.message_bytes) / 1e9,
                          3)});
    }
  }
  std::printf("%s\n", st.to_ascii().c_str());

  // --- weak scaling: a constant 192^2 block per rank, global mesh grown
  // with the dims_create decomposition the backends themselves use.
  constexpr int kBlock = 192;
  std::printf("== Weak scaling over ranks (192^2 per rank, 2 steps, CG) ==\n");
  tl::Table wt({"variant", "ranks", "mesh", "host s (med)", "efficiency",
                "messages", "msg GB"});
  for (const std::string& variant : variants) {
    double base_s = 0.0;
    for (const int ranks : ladder) {
      const auto dims = minimpi::dims_create(ranks);
      tl::Config weak = tl::Config::default_config();
      weak.problem().x_cells = kBlock * dims[0];
      weak.problem().y_cells = kBlock * dims[1];
      weak.problem().end_step = 2;
      weak.problem().eps = 1e-12;
      tea::RunOptions o;
      o.ranks = ranks;
      if (variant == "manual-hybrid") o.hybrid_threads = 2;
      const auto row = bench::measure(variant, weak.problem(), o,
                                      "scaling-ranks-weak", samples);
      if (ranks == 1) base_s = row.timing.median_s;
      // Ideal weak scaling holds wall time constant as ranks grow (the
      // global mesh grows with them) — efficiency is base over current.
      const double eff = base_s / row.timing.median_s;
      wt.add_row(
          {variant, std::to_string(ranks),
           std::to_string(weak.problem().x_cells) + "x" +
               std::to_string(weak.problem().y_cells),
           tl::Table::num(row.timing.median_s, 3), tl::Table::num(eff, 2),
           std::to_string(row.counters.messages),
           tl::Table::num(static_cast<double>(row.counters.message_bytes) / 1e9,
                          3)});
    }
  }
  std::printf("%s\n", wt.to_ascii().c_str());

  std::printf(
      "In-process ranks share one memory system, so the strong-scaling curve\n"
      "here reflects decomposition and message-latency overheads rather than\n"
      "added bandwidth; per-message costs grow with rank count while the\n"
      "per-rank stream shrinks — the surface-to-volume trade the paper's\n"
      "future-work section targets.  The weak-scaling sweep holds the\n"
      "per-rank block at 192^2, so iteration counts rise with the global\n"
      "mesh width and the curve isolates the communication overhead trend.\n");
  bench::print_store_stats();
  return 0;
}
