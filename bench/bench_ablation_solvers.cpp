// bench_ablation_solvers — TeaLeaf's solver menu (the background work of
// Martineau et al. the paper builds on compares CG, Chebyshev and PPCG):
// iterations and host time per solver on the same problem, on the reference
// backend and one framework backend.  Cells are fetched-or-measured through
// the shared result store, so re-running the bench re-measures nothing.
#include <cstdio>

#include "bench/harness.hpp"
#include "common/config.hpp"
#include "common/table.hpp"

int main() {
  const int samples = bench::HarnessOptions::from_env(1000).samples;
  std::printf("== Ablation: solver comparison (256^2, 2 steps, eps 1e-12) ==\n");
  tl::Table table({"solver", "backend", "outer iters", "inner iters",
                   "host s (med)", "converged"});

  for (const auto solver :
       {tl::SolverKind::kJacobi, tl::SolverKind::kCg, tl::SolverKind::kCheby,
        tl::SolverKind::kPpcg}) {
    for (const char* backend : {"serial", "ops-omp"}) {
      tl::Config cfg = tl::Config::default_config();
      cfg.problem().x_cells = 256;
      cfg.problem().y_cells = 256;
      cfg.problem().end_step = 2;
      cfg.problem().eps = 1e-12;
      cfg.problem().max_iters = 100000;
      cfg.problem().solver = solver;
      const auto row = bench::measure(backend, cfg.problem(), {},
                                      "ablation-solvers", samples);
      table.add_row({tl::to_string(solver), backend,
                     std::to_string(row.iterations),
                     std::to_string(row.inner_iterations),
                     tl::Table::num(row.timing.median_s, 3),
                     row.converged ? "yes" : "NO"});
    }
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf(
      "Expected shape: Jacobi needs orders of magnitude more sweeps than the "
      "Krylov solvers; PPCG trades inner smoothing steps for fewer outer "
      "iterations (fewer global reductions).\n");
  bench::print_store_stats();
  return 0;
}
