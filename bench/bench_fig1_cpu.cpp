// bench_fig1_cpu — reproduces Fig. 1a: wall time of 10 time-marching steps of
// TeaLeaf on the 1000^2 mesh for the ten CPU implementations, on the Xeon
// E5-2660 v4 and the KNL 7210 (projected from instrumented host execution;
// see bench/harness.hpp and DESIGN.md §4).  Measurement goes through the
// shared result store: after `tea_sweep run`, this binary is a pure query.
#include <cstdio>

#include "bench/harness.hpp"

int main() {
  const auto options = bench::HarnessOptions::from_env(/*paper_mesh=*/1000);
  const auto rows =
      bench::run_variants(bench::cpu_variants(), {"xeon", "knl"}, options);
  bench::print_figure("Fig. 1a — 1000^2 dataset (CPU systems)", rows, options);
  const int failures = bench::check_shapes(rows, {}, 1000);

  // Beyond the paper: the same matrix slice on a strongly anisotropic
  // operator (the tea_aniso family, dx = 4*dy), where the conduction terms
  // differ by 16x and solver behaviour departs from the isotropic figure.
  const auto aniso_rows = bench::run_problem_variants(
      {"manual-omp", "ops-tiled"}, {"xeon", "knl"}, options,
      results::aniso_bench_problem(options.bench_mesh, options.bench_steps,
                                   options.eps),
      "bench-aniso-" + std::to_string(options.bench_mesh));
  bench::print_figure("Anisotropic workload (tea_aniso family, CPU)",
                      aniso_rows, options);
  bench::print_store_stats();
  std::printf("fig1_cpu shape failures: %d\n", failures);
  return 0;
}
