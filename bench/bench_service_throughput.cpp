// bench_service_throughput — synthetic traffic replay through the solve
// service (src/service): solves/sec and latency percentiles under batching
// and arena reuse, persisted as regression-gated store rows.
//
// Two cases, both seeded through the deck generator so the workload is
// fully reproducible: the smoke population, and the --stress hostile corner
// as the tail-latency case (near-singular decks drive iteration counts —
// and therefore p99 — up).  Replays run in *portable* mode (no tuning: the
// deck's own solver on manual-omp with a fixed worker/pool shape), so the
// row's instrumentation counters and iteration totals are bit-deterministic
// across hosts and the service-smoke CI job can gate them exactly, the way
// bench-smoke gates the kernel benches.  Wall-clock statistics stay
// machine-local and get a loose tolerance instead.
//
// The counter delta is captured around the WHOLE replay: instrumentation is
// process-global, so per-request deltas under concurrent workers would
// interleave, but the replay-wide total is independent of scheduling.
//
// Env knobs: TEA_SERVICE_SEED (default 3), TEA_SERVICE_COUNT (3),
// TEA_SERVICE_REPEAT (4), TEA_SERVICE_WORKERS (2), TEA_SERVICE_THREADS (2).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "common/table.hpp"
#include "machine/instrumentation.hpp"
#include "results/result_store.hpp"
#include "service/replay.hpp"
#include "service/service.hpp"

namespace {

long env_long(const char* name, long fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atol(value) : fallback;
}

struct CaseResult {
  std::string name;
  service::ReplayReport report;
  results::ResultRow row;
};

CaseResult run_case(const std::string& name, const gen::GenOptions& gen_options,
                    int repeats, const service::ServiceOptions& svc_options) {
  CaseResult out;
  out.name = name;
  const std::vector<service::SolveRequest> requests =
      service::requests_from_gen(gen_options);

  service::SolveService daemon(svc_options, nullptr);
  const machine::CounterScope scope;  // whole-replay delta (see header note)
  out.report = service::run_replay(daemon, requests, repeats);
  daemon.shutdown();

  // One store row per case.  The key hashes the full replay identity —
  // population problems, repeat count and service shape — so changing the
  // workload changes the key instead of silently overwriting the old row.
  results::ResultRow row;
  std::string identity = "service-replay/" + name;
  for (const service::SolveRequest& request : requests)
    identity += "/" + results::problem_key(request.problem);
  identity += "/r" + std::to_string(repeats) +
              "/w" + std::to_string(svc_options.workers) +
              "/t" + std::to_string(svc_options.threads_per_worker) +
              "/b" + std::to_string(svc_options.max_batch);
  row.key = "service-replay/" + results::fnv1a_key(identity);
  row.variant = "service-replay-" + name;
  row.deck = "service-" + name;
  row.deck_hash = results::fnv1a_key(identity);
  row.solver = "service";
  row.threads = svc_options.threads_per_worker;
  row.ranks = svc_options.workers;  // worker shards, reusing the rank slot

  std::vector<double> latencies;
  bool all_converged = !out.report.responses.empty();
  for (const service::SolveResponse& response : out.report.responses) {
    latencies.push_back(response.latency_seconds);
    row.iterations += response.iterations;
    row.inner_iterations += response.inner_iterations;
    all_converged = all_converged && response.ok() && response.converged;
  }
  row.converged = all_converged;
  row.timing = results::TimingStats::from_samples(latencies);
  row.p99_s = out.report.p99_s;
  row.throughput_sps = out.report.throughput_sps;
  row.counters = scope.delta();
  out.row = row;
  return out;
}

}  // namespace

int main() {
  gen::GenOptions gen_options;
  gen_options.seed = static_cast<std::uint64_t>(env_long("TEA_SERVICE_SEED", 3));
  gen_options.count = static_cast<int>(env_long("TEA_SERVICE_COUNT", 3));
  const int repeats = static_cast<int>(env_long("TEA_SERVICE_REPEAT", 4));

  service::ServiceOptions svc_options;
  svc_options.workers = static_cast<int>(env_long("TEA_SERVICE_WORKERS", 2));
  svc_options.threads_per_worker =
      static_cast<int>(env_long("TEA_SERVICE_THREADS", 2));
  svc_options.queue_capacity = 8;  // small bound: exercises backpressure
  svc_options.max_batch = 4;
  svc_options.enable_tuning = false;  // portable mode — see header comment

  std::printf("== Service throughput: seeded replay (seed %llu, %d decks x "
              "%d repeats, %d workers x %d threads) ==\n",
              static_cast<unsigned long long>(gen_options.seed),
              gen_options.count, repeats, svc_options.workers,
              svc_options.threads_per_worker);

  std::vector<CaseResult> cases;
  cases.push_back(run_case("gen", gen_options, repeats, svc_options));
  gen::GenOptions stress_options = gen_options;
  stress_options.stress = true;  // the tail-latency case
  cases.push_back(run_case("stress", stress_options, repeats, svc_options));

  tl::Table table({"case", "solves", "solves/s", "p50 ms", "p99 ms",
                   "iters", "conv", "batches", "arena reuse", "rejects"});
  for (const CaseResult& c : cases) {
    table.add_row(
        {c.name, std::to_string(c.report.responses.size()),
         tl::Table::num(c.report.throughput_sps, 2),
         tl::Table::num(c.report.p50_s * 1e3, 2),
         tl::Table::num(c.report.p99_s * 1e3, 2),
         std::to_string(c.row.iterations), c.row.converged ? "yes" : "NO",
         std::to_string(c.report.stats.batches),
         std::to_string(c.report.stats.arena.reused),
         std::to_string(c.report.backpressure_rejects)});
  }
  std::printf("%s\n", table.to_ascii().c_str());

  results::ResultStore& store = bench::shared_store();
  for (const CaseResult& c : cases) store.put(c.row);
  // Save unconditionally: put() replaces same-key rows in place, which
  // sync_store()'s row-count dirtiness check cannot see.
  store.save(bench::store_path());
  bench::print_store_stats();
  return 0;
}
