// bench_service_throughput — synthetic traffic replay through the solve
// service (src/service): solves/sec and latency percentiles under batching
// and arena reuse, persisted as regression-gated store rows.
//
// Two cases, both seeded through the deck generator so the workload is
// fully reproducible: the smoke population, and the --stress hostile corner
// as the tail-latency case (near-singular decks drive iteration counts —
// and therefore p99 — up).  Replays run in *portable* mode (no tuning: the
// deck's own solver on manual-omp with a fixed worker/pool shape), so the
// row's instrumentation counters and iteration totals are bit-deterministic
// across hosts and the service-smoke CI job can gate them exactly, the way
// bench-smoke gates the kernel benches.  Wall-clock statistics stay
// machine-local and get a loose tolerance instead.
//
// The counter delta is captured around the WHOLE replay: instrumentation is
// process-global, so per-request deltas under concurrent workers would
// interleave, but the replay-wide total is independent of scheduling.
//
// `--net` switches the replay onto the wire: the same service runs behind a
// poll-based net::Server on a Unix socket in-process, and N concurrent
// client connections (TEA_SERVICE_CONNS, default 2) replay the population
// through the framed protocol.  Counters stay process-global, so the
// whole-replay delta still captures every solve — and since the solve set
// is the same deterministic population per connection, the counter totals
// gate exactly in CI (bench/baselines/net_smoke.json) just like the
// in-process rows do.
//
// Env knobs: TEA_SERVICE_SEED (default 3), TEA_SERVICE_COUNT (3),
// TEA_SERVICE_REPEAT (4), TEA_SERVICE_WORKERS (2), TEA_SERVICE_THREADS (2),
// TEA_SERVICE_CONNS (2, --net only).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench/harness.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "machine/instrumentation.hpp"
#include "net/replay.hpp"
#include "net/server.hpp"
#include "results/result_store.hpp"
#include "service/replay.hpp"
#include "service/service.hpp"

namespace {

long env_long(const char* name, long fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atol(value) : fallback;
}

struct CaseResult {
  std::string name;
  service::ReplayReport report;
  results::ResultRow row;
};

/// One store row per case.  The key hashes the full replay identity —
/// population problems, repeat count, service shape and (for --net) the
/// connection fan-in — so changing the workload changes the key instead of
/// silently overwriting the old row.
results::ResultRow case_row(const std::string& mode, const std::string& name,
                            const std::vector<service::SolveRequest>& requests,
                            int repeats,
                            const service::ServiceOptions& svc_options,
                            int connections) {
  results::ResultRow row;
  std::string identity = mode + "/" + name;
  for (const service::SolveRequest& request : requests)
    identity += "/" + results::problem_key(request.problem);
  identity += "/r" + std::to_string(repeats) +
              "/w" + std::to_string(svc_options.workers) +
              "/t" + std::to_string(svc_options.threads_per_worker) +
              "/b" + std::to_string(svc_options.max_batch);
  if (connections > 0) identity += "/c" + std::to_string(connections);
  row.key = mode + "/" + results::fnv1a_key(identity);
  row.variant = mode + "-" + name;
  row.deck = "service-" + name;
  row.deck_hash = results::fnv1a_key(identity);
  row.solver = "service";
  row.threads = svc_options.threads_per_worker;
  row.ranks = svc_options.workers;  // worker shards, reusing the rank slot
  return row;
}

CaseResult run_case(const std::string& name, const gen::GenOptions& gen_options,
                    int repeats, const service::ServiceOptions& svc_options) {
  CaseResult out;
  out.name = name;
  const std::vector<service::SolveRequest> requests =
      service::requests_from_gen(gen_options);

  service::SolveService daemon(svc_options, nullptr);
  const machine::CounterScope scope;  // whole-replay delta (see header note)
  out.report = service::run_replay(daemon, requests, repeats);
  daemon.shutdown();

  results::ResultRow row =
      case_row("service-replay", name, requests, repeats, svc_options, 0);

  std::vector<double> latencies;
  bool all_converged = !out.report.responses.empty();
  for (const service::SolveResponse& response : out.report.responses) {
    latencies.push_back(response.latency_seconds);
    row.iterations += response.iterations;
    row.inner_iterations += response.inner_iterations;
    all_converged = all_converged && response.ok() && response.converged;
  }
  row.converged = all_converged;
  row.timing = results::TimingStats::from_samples(latencies);
  row.p99_s = out.report.p99_s;
  row.throughput_sps = out.report.throughput_sps;
  row.counters = scope.delta();
  out.row = row;
  return out;
}

/// The --net variant of run_case: same service, same population, but the
/// traffic crosses a Unix socket through `connections` concurrent clients.
CaseResult run_net_case(const std::string& name,
                        const gen::GenOptions& gen_options, int repeats,
                        const service::ServiceOptions& svc_options,
                        int connections) {
  CaseResult out;
  out.name = name;
  const std::vector<service::SolveRequest> requests =
      service::requests_from_gen(gen_options);

  service::SolveService daemon(svc_options, nullptr);
  net::ServerOptions server_options;
  server_options.address = "unix:/tmp/tead_bench_" +
                           std::to_string(::getpid()) + "_" + name + ".sock";
  net::Server server(daemon, server_options);
  server.open();
  std::thread io_thread([&server] { server.run(); });

  const machine::CounterScope scope;  // whole-replay delta (see header note)
  net::NetReplayOptions replay_options;
  replay_options.connections = connections;
  replay_options.repeats = repeats;
  const net::NetReplayReport net_report = net::run_net_replay(
      server.address().to_string(), requests, replay_options);
  server.request_stop();
  io_thread.join();

  // Reuse the in-process report shape so one table renders both modes.
  out.report.responses = net_report.responses;
  out.report.wall_seconds = net_report.wall_seconds;
  out.report.throughput_sps = net_report.throughput_sps;
  out.report.p50_s = net_report.p50_s;
  out.report.p99_s = net_report.p99_s;
  out.report.backpressure_rejects = net_report.busy_retries;
  out.report.stats = daemon.stats();
  daemon.shutdown();

  results::ResultRow row = case_row("service-net", name, requests, repeats,
                                    svc_options, connections);
  std::vector<double> latencies;
  bool all_converged = !out.report.responses.empty();
  for (const service::SolveResponse& response : out.report.responses) {
    latencies.push_back(response.latency_seconds);
    row.iterations += response.iterations;
    row.inner_iterations += response.inner_iterations;
    all_converged = all_converged && response.ok() && response.converged;
  }
  row.converged = all_converged;
  row.timing = results::TimingStats::from_samples(latencies);
  row.p99_s = out.report.p99_s;
  row.throughput_sps = out.report.throughput_sps;
  row.counters = scope.delta();
  out.row = row;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const tl::Cli cli(argc, argv);
  const bool net_mode = cli.has("net");
  gen::GenOptions gen_options;
  gen_options.seed = static_cast<std::uint64_t>(env_long("TEA_SERVICE_SEED", 3));
  gen_options.count = static_cast<int>(env_long("TEA_SERVICE_COUNT", 3));
  const int repeats = static_cast<int>(env_long("TEA_SERVICE_REPEAT", 4));

  service::ServiceOptions svc_options;
  svc_options.workers = static_cast<int>(env_long("TEA_SERVICE_WORKERS", 2));
  svc_options.threads_per_worker =
      static_cast<int>(env_long("TEA_SERVICE_THREADS", 2));
  svc_options.queue_capacity = 8;  // small bound: exercises backpressure
  svc_options.max_batch = 4;
  svc_options.enable_tuning = false;  // portable mode — see header comment
  const int connections =
      static_cast<int>(env_long("TEA_SERVICE_CONNS", 2));

  std::printf("== Service throughput: seeded %s replay (seed %llu, %d decks x "
              "%d repeats, %d workers x %d threads%s) ==\n",
              net_mode ? "network" : "in-process",
              static_cast<unsigned long long>(gen_options.seed),
              gen_options.count, repeats, svc_options.workers,
              svc_options.threads_per_worker,
              net_mode
                  ? (", " + std::to_string(connections) + " connections").c_str()
                  : "");

  std::vector<CaseResult> cases;
  gen::GenOptions stress_options = gen_options;
  stress_options.stress = true;  // the tail-latency case
  if (net_mode) {
    cases.push_back(
        run_net_case("gen", gen_options, repeats, svc_options, connections));
    cases.push_back(run_net_case("stress", stress_options, repeats,
                                 svc_options, connections));
  } else {
    cases.push_back(run_case("gen", gen_options, repeats, svc_options));
    cases.push_back(run_case("stress", stress_options, repeats, svc_options));
  }

  tl::Table table({"case", "solves", "solves/s", "p50 ms", "p99 ms",
                   "iters", "conv", "batches", "arena reuse", "rejects"});
  for (const CaseResult& c : cases) {
    table.add_row(
        {c.name, std::to_string(c.report.responses.size()),
         tl::Table::num(c.report.throughput_sps, 2),
         tl::Table::num(c.report.p50_s * 1e3, 2),
         tl::Table::num(c.report.p99_s * 1e3, 2),
         std::to_string(c.row.iterations), c.row.converged ? "yes" : "NO",
         std::to_string(c.report.stats.batches),
         std::to_string(c.report.stats.arena.reused),
         std::to_string(c.report.backpressure_rejects)});
  }
  std::printf("%s\n", table.to_ascii().c_str());

  results::ResultStore& store = bench::shared_store();
  for (const CaseResult& c : cases) store.put(c.row);
  // Save unconditionally: put() replaces same-key rows in place, which
  // sync_store()'s row-count dirtiness check cannot see.
  store.save(bench::store_path());
  bench::print_store_stats();
  return 0;
}
