// bench_ablation_fusion — ablation of the fused apply_operator_dot kernel
// (PR 3) on the whole-solve path, and the evidence behind the tuner's
// fused-vs-unfused search dimension (RunOptions.fuse_operator_dot).
//
// The CG/PPCG inner iteration always needs the pair (w = A p, <p, w>); the
// fused kernel consumes each operator result while it is still in registers
// instead of paying a second memory pass for the dot.  This bench runs the
// same solve both ways per (mesh, solver) cell — numerics are bitwise
// identical (asserted via iteration counts) — and reports the wall-clock
// and traffic deltas.  Each cell is one result-store row; the unfused rows
// carry distinct content-addressed keys (the "|unfused" key marker), so the
// tuner's measured refinement shares them.
#include <cstdio>

#include "bench/harness.hpp"
#include "common/config.hpp"
#include "common/table.hpp"
#include "results/sweep.hpp"

namespace {

void sweep(tl::SolverKind solver, int samples) {
  std::printf("-- solver: %s --\n", tl::to_string(solver));
  tl::Table table({"mesh", "fused s (med)", "unfused s (med)", "speedup",
                   "traffic saved", "iters equal"});
  for (const int mesh : {128, 256}) {
    tl::ProblemConfig problem = results::bench_problem(mesh, 2, 1e-11);
    problem.solver = solver;

    tea::RunOptions fused_opts;
    const auto fused = bench::measure("manual-omp", problem, fused_opts,
                                      "ablation-fusion", samples);
    tea::RunOptions unfused_opts;
    unfused_opts.fuse_operator_dot = false;
    const auto unfused = bench::measure("manual-omp", problem, unfused_opts,
                                        "ablation-fusion", samples);

    const double fused_bytes =
        static_cast<double>(fused.counters.total_bytes());
    const double unfused_bytes =
        static_cast<double>(unfused.counters.total_bytes());
    table.add_row(
        {std::to_string(mesh) + "^2",
         tl::Table::num(fused.timing.median_s, 4),
         tl::Table::num(unfused.timing.median_s, 4),
         tl::Table::num(unfused.timing.median_s /
                            std::max(1e-12, fused.timing.median_s), 2) + "x",
         tl::Table::num(100.0 * (1.0 - fused_bytes /
                                           std::max(1.0, unfused_bytes)), 1) +
             "%",
         fused.iterations == unfused.iterations ? "yes" : "NO"});
  }
  std::printf("%s\n", table.to_ascii().c_str());
}

}  // namespace

int main() {
  std::printf("== Ablation: fused apply_operator_dot ==\n\n");
  const int samples = bench::HarnessOptions::from_env(1000).samples;
  sweep(tl::SolverKind::kCg, samples);
  sweep(tl::SolverKind::kPpcg, samples);
  std::printf(
      "The fused kernel removes one full read pass per inner iteration;\n"
      "iteration counts must match exactly (the PR 3 bitwise contract), so\n"
      "any speedup is pure memory-system effect.  `tea_sweep tune` searches\n"
      "this dimension per deck and records the choice in the TunedPlan.\n");
  bench::print_store_stats();
  return 0;
}
