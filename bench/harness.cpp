#include "bench/harness.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/table.hpp"
#include "core/registry.hpp"
#include "machine/efficiency.hpp"
#include "results/compare.hpp"
#include "validation/validation.hpp"

namespace bench {

HarnessOptions HarnessOptions::from_env(int paper_mesh) {
  HarnessOptions o;
  o.paper_mesh = paper_mesh;
  const bool full = std::getenv("TEA_BENCH_FULL") != nullptr;
  if (full) {
    o.bench_mesh = paper_mesh;
    o.bench_steps = 10;
  }
  if (const char* m = std::getenv("TEA_BENCH_MESH")) {
    const int v = std::atoi(m);
    if (v > 0) o.bench_mesh = v;
  }
  if (const char* s = std::getenv("TEA_BENCH_STEPS")) {
    const int v = std::atoi(s);
    if (v > 0) o.bench_steps = v;
  }
  if (const char* s = std::getenv("TEA_BENCH_SAMPLES")) {
    const int v = std::atoi(s);
    if (v > 0) o.samples = v;
  }
  if (std::getenv("TEA_BENCH_UNFUSED") != nullptr) o.fuse_operator_dot = false;
  return o;
}

std::vector<std::string> cpu_variants() { return results::cpu_variants(); }

std::vector<std::string> gpu_variants() { return results::gpu_variants(); }

namespace {

struct StoreSession {
  std::string path;
  results::ResultStore store;
  std::size_t synced_rows = 0;

  StoreSession() {
    const char* env = std::getenv("TEA_RESULTS");
    path = env && *env ? env : "BENCH_results.json";
    store = results::ResultStore::load(path);
    synced_rows = store.size();
  }
};

StoreSession& session() {
  static StoreSession s;
  return s;
}

}  // namespace

std::string store_path() { return session().path; }

results::ResultStore& shared_store() { return session().store; }

void sync_store() {
  StoreSession& s = session();
  // New rows are appended by cache misses; a same-size store means nothing
  // new was measured since the last sync.
  if (s.store.size() == s.synced_rows) return;
  s.store.save(s.path);
  s.synced_rows = s.store.size();
}

void print_store_stats() {
  const StoreSession& s = session();
  std::printf("result store %s: %zu rows, %d cache hits, %d measured\n",
              s.path.c_str(), s.store.size(), s.store.hits(),
              s.store.misses());
}

results::ResultRow measure(const std::string& variant,
                           const tl::ProblemConfig& problem,
                           const tea::RunOptions& run_options,
                           const std::string& deck_label, int samples) {
  results::MeasureSpec spec;
  spec.variant = variant;
  spec.deck_label = deck_label;
  spec.problem = problem;
  spec.options = run_options;
  spec.samples = samples;
  results::ResultRow row = results::measure(shared_store(), spec);
  sync_store();
  return row;
}

std::vector<VariantTimes> run_variants(const std::vector<std::string>& variants,
                                       const std::vector<std::string>& machines,
                                       const HarnessOptions& options) {
  return run_problem_variants(
      variants, machines, options,
      results::bench_problem(options.bench_mesh, options.bench_steps,
                             options.eps),
      "bench-" + std::to_string(options.bench_mesh));
}

std::vector<VariantTimes> run_problem_variants(
    const std::vector<std::string>& variants,
    const std::vector<std::string>& machines, const HarnessOptions& options,
    const tl::ProblemConfig& problem, const std::string& deck_label) {
  tea::RunOptions run_options;
  run_options.ranks = options.ranks;
  run_options.fuse_operator_dot = options.fuse_operator_dot;

  // Fetch-or-measure every cell through the shared store.
  results::ResultStore& store = shared_store();
  std::vector<results::ResultRow> rows;
  std::vector<bool> cached;
  for (const std::string& variant : variants) {
    results::MeasureSpec spec;
    spec.variant = variant;
    spec.deck_label = deck_label;
    spec.problem = problem;
    spec.options = run_options;
    spec.samples = options.samples;
    const int misses_before = store.misses();
    rows.push_back(results::measure(store, spec));
    cached.push_back(store.misses() == misses_before);
  }
  sync_store();

  // Scale the stored counters to the paper's mesh and step count and project
  // through the machine models.
  results::ProjectionSpec spec;
  spec.paper_mesh = options.paper_mesh;
  spec.paper_steps = options.paper_steps;
  spec.machines = machines;
  const auto projected = results::project_rows(rows, spec);

  std::vector<VariantTimes> out;
  for (std::size_t i = 0; i < projected.size(); ++i) {
    const results::ProjectedVariant& pv = projected[i];
    VariantTimes vt;
    vt.variant = pv.row.variant;
    vt.timing = pv.row.timing;
    vt.host_seconds = pv.row.timing.median_s;
    vt.measured_iterations = pv.row.iterations;
    vt.projected_iterations = pv.projected_iterations;
    vt.from_cache = cached[i];
    vt.machines = pv.machines;
    vt.seconds = pv.seconds;
    vt.achieved_bw_gbs = pv.bw_gbs;
    vt.achieved_gflops = pv.gflops;
    out.push_back(std::move(vt));
  }
  return out;
}

void print_figure(const std::string& title,
                  const std::vector<VariantTimes>& rows,
                  const HarnessOptions& options) {
  std::printf("== %s ==\n", title.c_str());
  std::printf(
      "host run: %dx%d mesh, %d steps; projected to the paper's %dx%d, %d "
      "steps\n\n",
      options.bench_mesh, options.bench_mesh, options.bench_steps,
      options.paper_mesh, options.paper_mesh, options.paper_steps);

  // Machine columns: the first-seen-order union across rows, so a variant
  // unsupported on some machine (e.g. manual-acc-cpu on the KNL) neither
  // shrinks the table nor shifts other rows' columns.
  std::vector<std::string> machines;
  for (const VariantTimes& row : rows) {
    for (const std::string& m : row.machines) {
      if (std::find(machines.begin(), machines.end(), m) == machines.end()) {
        machines.push_back(m);
      }
    }
  }

  std::vector<std::string> headers{"version", "host s", "±sd", "iters(proj)"};
  for (const std::string& m : machines) {
    headers.push_back(m + " s");
    headers.push_back(m + " GB/s");
  }
  tl::Table table(headers);
  for (const VariantTimes& row : rows) {
    std::vector<std::string> cells{row.variant,
                                   tl::Table::num(row.host_seconds, 3),
                                   tl::Table::num(row.timing.stddev_s, 3),
                                   std::to_string(row.projected_iterations)};
    for (const std::string& m : machines) {
      const auto it = std::find(row.machines.begin(), row.machines.end(), m);
      if (it == row.machines.end()) {
        cells.insert(cells.end(), {"-", "-"});
        continue;
      }
      const auto k =
          static_cast<std::size_t>(it - row.machines.begin());
      cells.push_back(tl::Table::num(row.seconds[k], 2));
      cells.push_back(tl::Table::num(row.achieved_bw_gbs[k], 1));
    }
    table.add_row(std::move(cells));
  }
  std::printf("%s\n", table.to_ascii().c_str());
}

double time_of(const std::vector<VariantTimes>& rows,
               const std::string& variant, const std::string& machine) {
  for (const VariantTimes& row : rows) {
    if (row.variant != variant) continue;
    for (std::size_t k = 0; k < row.machines.size(); ++k) {
      if (row.machines[k] == machine) return row.seconds[k];
    }
  }
  return -1.0;
}

double best_time_on(const std::vector<VariantTimes>& rows,
                    const std::string& machine) {
  double best = 0.0;
  for (const VariantTimes& row : rows) {
    for (std::size_t k = 0; k < row.machines.size(); ++k) {
      if (row.machines[k] != machine) continue;
      if (best == 0.0 || row.seconds[k] < best) best = row.seconds[k];
    }
  }
  return best;
}

std::vector<ppm::VariantResult> to_variant_results(
    const std::vector<VariantTimes>& rows) {
  std::vector<ppm::VariantResult> out;
  for (const VariantTimes& row : rows) {
    for (std::size_t k = 0; k < row.machines.size(); ++k) {
      const machine::MachineModel& m = machine::machine_by_id(row.machines[k]);
      out.push_back(ppm::VariantResult{row.variant, row.machines[k],
                                       row.seconds[k], row.achieved_bw_gbs[k],
                                       row.achieved_gflops[k], m.peak_bw_gbs,
                                       m.peak_gflops});
    }
  }
  return out;
}

int check_shapes(const std::vector<VariantTimes>& cpu_rows,
                 const std::vector<VariantTimes>& gpu_rows, int mesh) {
  std::printf("-- §IV shape checks (paper claims at %d^2) --\n", mesh);
  // One claim evaluator for the benches and `tea_sweep validate`
  // (validation::evaluate_shape_claims), so they can never disagree.
  std::vector<ppm::VariantResult> results = to_variant_results(cpu_rows);
  for (auto& r : to_variant_results(gpu_rows)) results.push_back(r);
  int failures = 0;
  int applicable = 0;
  for (const validation::ShapeCheck& c :
       validation::evaluate_shape_claims(results, mesh)) {
    if (!c.applicable) continue;  // variant not in this bench's set
    ++applicable;
    failures += !c.pass;
    std::printf("[%s] %s  (%.2fs vs %.2fs)\n", c.pass ? "PASS" : "FAIL",
                c.description.c_str(), c.lhs, c.rhs);
  }
  if (applicable == 0) std::printf("(no applicable claims)\n");
  std::printf("\n");
  return failures;
}

}  // namespace bench
