#include "bench/harness.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/table.hpp"
#include "core/registry.hpp"
#include "machine/efficiency.hpp"
#include "ppmetric/paper_data.hpp"

namespace bench {

HarnessOptions HarnessOptions::from_env(int paper_mesh) {
  HarnessOptions o;
  o.paper_mesh = paper_mesh;
  const bool full = std::getenv("TEA_BENCH_FULL") != nullptr;
  if (full) {
    o.bench_mesh = paper_mesh;
    o.bench_steps = 10;
  }
  if (const char* m = std::getenv("TEA_BENCH_MESH")) {
    const int v = std::atoi(m);
    if (v > 0) o.bench_mesh = v;
  }
  if (const char* s = std::getenv("TEA_BENCH_STEPS")) {
    const int v = std::atoi(s);
    if (v > 0) o.bench_steps = v;
  }
  return o;
}

std::vector<std::string> cpu_variants() {
  return {"manual-omp", "manual-mpi", "manual-hybrid", "manual-acc-cpu",
          "ops-omp",    "ops-mpi",    "ops-hybrid",    "ops-tiled",
          "kokkos-omp", "raja-omp"};
}

std::vector<std::string> gpu_variants() {
  return {"manual-cuda", "manual-acc-gpu", "ops-cuda",
          "ops-acc",     "kokkos-cuda",    "raja-cuda"};
}

namespace {

tl::ProblemConfig bench_problem(const HarnessOptions& o) {
  tl::Config cfg = tl::Config::default_config();
  cfg.problem().x_cells = o.bench_mesh;
  cfg.problem().y_cells = o.bench_mesh;
  cfg.problem().end_step = o.bench_steps;
  cfg.problem().eps = o.eps;
  cfg.problem().solver = tl::SolverKind::kCg;
  return cfg.problem();
}

}  // namespace

std::vector<VariantTimes> run_variants(const std::vector<std::string>& variants,
                                       const std::vector<std::string>& machines,
                                       const HarnessOptions& options) {
  const tl::ProblemConfig problem = bench_problem(options);
  tea::RunOptions run_options;
  run_options.ranks = options.ranks;

  std::vector<VariantTimes> rows;
  long reference_iterations = 0;
  for (const std::string& variant : variants) {
    VariantTimes row;
    row.variant = variant;
    row.measured = tea::run_simulation(variant, problem, run_options);
    row.host_seconds = row.measured.wall_seconds;

    // Normalise to a common iteration count (the first variant's).  The
    // paper compiled every build with -fp-model strict to keep convergence
    // paths comparable; our device backends' reduction orders differ at the
    // ULP level, which CG's tail can amplify into a few percent of extra
    // iterations — numerical luck, not programming-model cost.
    if (reference_iterations == 0) {
      reference_iterations = row.measured.total_iterations;
    }
    const double iter_norm =
        row.measured.total_iterations > 0
            ? static_cast<double>(reference_iterations) /
                  static_cast<double>(row.measured.total_iterations)
            : 1.0;

    // Scale the measured counters to the paper's mesh and step count.  CG
    // iterations grow ~ linearly with mesh width at fixed relative eps
    // (sqrt of the Laplacian condition number), so:
    const double width_ratio =
        static_cast<double>(options.paper_mesh) / options.bench_mesh;
    const double cells_ratio = width_ratio * width_ratio;
    const double step_ratio =
        static_cast<double>(options.paper_steps) / options.bench_steps;
    const double iter_ratio = width_ratio * step_ratio * iter_norm;
    const machine::Counters scaled = machine::scale_counters(
        row.measured.counters, cells_ratio, iter_ratio, width_ratio);
    row.projected_iterations = scaled.solver_iterations;
    const auto ws = static_cast<std::int64_t>(
        static_cast<double>(row.measured.working_set_bytes) * cells_ratio);

    for (const std::string& mid : machines) {
      const machine::MachineModel& m = machine::machine_by_id(mid);
      if (!machine::supported(variant, m)) continue;
      const machine::TimeBreakdown t =
          machine::project_time(scaled, m, variant, ws);
      row.machines.push_back(mid);
      row.seconds.push_back(t.total());
      row.achieved_bw_gbs.push_back(t.achieved_bw_gbs(scaled));
      row.achieved_gflops.push_back(t.achieved_gflops(scaled));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void print_figure(const std::string& title,
                  const std::vector<VariantTimes>& rows,
                  const HarnessOptions& options) {
  std::printf("== %s ==\n", title.c_str());
  std::printf(
      "host run: %dx%d mesh, %d steps; projected to the paper's %dx%d, %d "
      "steps\n\n",
      options.bench_mesh, options.bench_mesh, options.bench_steps,
      options.paper_mesh, options.paper_mesh, options.paper_steps);

  std::vector<std::string> headers{"version", "host s", "iters(proj)"};
  if (!rows.empty()) {
    for (const std::string& m : rows.front().machines) {
      headers.push_back(m + " s");
      headers.push_back(m + " GB/s");
    }
  }
  tl::Table table(headers);
  for (const VariantTimes& row : rows) {
    std::vector<std::string> cells{row.variant,
                                   tl::Table::num(row.host_seconds, 3),
                                   std::to_string(row.projected_iterations)};
    for (std::size_t k = 0; k < row.machines.size(); ++k) {
      cells.push_back(tl::Table::num(row.seconds[k], 2));
      cells.push_back(tl::Table::num(row.achieved_bw_gbs[k], 1));
    }
    // Unsupported machines leave the row ragged; pad.
    while (cells.size() < headers.size()) cells.push_back("-");
    table.add_row(std::move(cells));
  }
  std::printf("%s\n", table.to_ascii().c_str());
}

double time_of(const std::vector<VariantTimes>& rows,
               const std::string& variant, const std::string& machine) {
  for (const VariantTimes& row : rows) {
    if (row.variant != variant) continue;
    for (std::size_t k = 0; k < row.machines.size(); ++k) {
      if (row.machines[k] == machine) return row.seconds[k];
    }
  }
  return -1.0;
}

double best_time_on(const std::vector<VariantTimes>& rows,
                    const std::string& machine) {
  double best = 0.0;
  for (const VariantTimes& row : rows) {
    for (std::size_t k = 0; k < row.machines.size(); ++k) {
      if (row.machines[k] != machine) continue;
      if (best == 0.0 || row.seconds[k] < best) best = row.seconds[k];
    }
  }
  return best;
}

int check_shapes(const std::vector<VariantTimes>& cpu_rows,
                 const std::vector<VariantTimes>& gpu_rows, int mesh) {
  std::printf("-- §IV shape checks (paper claims at %d^2) --\n", mesh);
  int failures = 0;
  int applicable = 0;
  for (const auto& claim : ppm::paper::shape_claims()) {
    if (claim.mesh != mesh) continue;
    const auto& rows = claim.machine == "p100" ? gpu_rows : cpu_rows;
    const double ta = time_of(rows, claim.a, claim.machine);
    const double tb = time_of(rows, claim.b, claim.machine);
    if (ta < 0.0 || tb < 0.0) continue;  // variant not in this bench's set
    ++applicable;
    const bool ok = ta < tb;
    failures += !ok;
    std::printf("[%s] %s  (%s %.2fs vs %s %.2fs)\n", ok ? "PASS" : "FAIL",
                claim.description.c_str(), claim.a.c_str(), ta,
                claim.b.c_str(), tb);
  }
  if (applicable == 0) std::printf("(no applicable claims)\n");
  std::printf("\n");
  return failures;
}

}  // namespace bench
