// bench_fig1_gpu — reproduces Fig. 1b: the six GPU-targeting implementations
// on the Tesla P100 at 1000^2, plus the §IV-C observation that the best GPU
// time is only ~3% ahead of the best CPU time at this size.  Both variant
// groups resolve through the shared result store (one sweep, many benches).
#include <cmath>
#include <cstdio>

#include "bench/harness.hpp"

int main() {
  const auto options = bench::HarnessOptions::from_env(/*paper_mesh=*/1000);
  const auto gpu_rows =
      bench::run_variants(bench::gpu_variants(), {"p100"}, options);
  bench::print_figure("Fig. 1b — 1000^2 dataset (GPU system)", gpu_rows,
                      options);
  const int failures = bench::check_shapes({}, gpu_rows, 1000);

  // §IV-C: best-GPU vs best-CPU gap at 1000^2 (paper: 3.04%).
  const auto cpu_rows =
      bench::run_variants(bench::cpu_variants(), {"xeon", "knl"}, options);
  const double best_cpu = std::min(bench::best_time_on(cpu_rows, "xeon"),
                                   bench::best_time_on(cpu_rows, "knl"));
  const double best_gpu = bench::best_time_on(gpu_rows, "p100");
  const double gap = 100.0 * (best_cpu - best_gpu) / best_cpu;
  std::printf("best CPU %.2fs vs best GPU %.2fs -> gap %.2f%% (paper: 3.04%%)\n",
              best_cpu, best_gpu, gap);

  // Non-isotropic companion rows (tea_aniso family, dx = 4*dy) on the GPU
  // simulation backends.
  const auto aniso_rows = bench::run_problem_variants(
      {"manual-cuda", "kokkos-cuda"}, {"p100"}, options,
      results::aniso_bench_problem(options.bench_mesh, options.bench_steps,
                                   options.eps),
      "bench-aniso-" + std::to_string(options.bench_mesh));
  bench::print_figure("Anisotropic workload (tea_aniso family, GPU)",
                      aniso_rows, options);
  bench::print_store_stats();
  std::printf("fig1_gpu shape failures: %d\n", failures);
  return 0;
}
