// harness.hpp — shared machinery for the figure/table reproduction benches.
//
// Each bench (one binary per paper artefact) uses this to:
//  1. run every relevant backend variant *for real* on this host at a bench
//     mesh (default 256^2, 5 steps; TEA_BENCH_FULL=1 uses the paper's mesh
//     and 10 steps outright),
//  2. scale the instrumented execution counters to the paper's mesh/steps
//     (traffic ~ cells x iterations, CG iterations ~ mesh width at fixed
//     relative tolerance),
//  3. project wall times on the paper's three machines through the roofline
//     models, and
//  4. print the paper-layout table plus the §IV shape checks.
#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/driver.hpp"
#include "machine/machine_model.hpp"
#include "machine/roofline.hpp"

namespace bench {

struct HarnessOptions {
  int paper_mesh = 1000;  // the figure's mesh edge (1000 or 4000)
  int paper_steps = 10;
  int bench_mesh = 256;   // host-measured mesh edge
  int bench_steps = 5;
  double eps = 1.0e-15;
  int ranks = 4;

  /// Read TEA_BENCH_FULL / TEA_BENCH_MESH / TEA_BENCH_STEPS overrides.
  static HarnessOptions from_env(int paper_mesh);
};

/// One variant's measured run plus its per-machine projections.
struct VariantTimes {
  std::string variant;
  tea::RunResult measured;                 // real host execution
  double host_seconds = 0.0;
  long projected_iterations = 0;           // at the paper mesh
  // Parallel arrays over the machines supplied to run_variants().
  std::vector<std::string> machines;
  std::vector<double> seconds;             // projected wall time
  std::vector<double> achieved_bw_gbs;
  std::vector<double> achieved_gflops;
};

/// The paper's Fig. 1/2 variant groupings.
std::vector<std::string> cpu_variants();
std::vector<std::string> gpu_variants();

/// Run `variants` and project onto `machines` (ids).  Skips
/// variant/machine pairs the calibration marks unsupported.
std::vector<VariantTimes> run_variants(const std::vector<std::string>& variants,
                                       const std::vector<std::string>& machines,
                                       const HarnessOptions& options);

/// Print the figure-style table: one row per variant, one projected-time
/// column per machine, plus measured host time and iteration counts.
void print_figure(const std::string& title,
                  const std::vector<VariantTimes>& rows,
                  const HarnessOptions& options);

/// Evaluate the §IV shape claims relevant to `mesh` against the projections;
/// prints pass/fail per claim and returns the number of failures.
int check_shapes(const std::vector<VariantTimes>& cpu_rows,
                 const std::vector<VariantTimes>& gpu_rows, int mesh);

/// Best projected time across rows on machine `machine` (0 if absent).
double best_time_on(const std::vector<VariantTimes>& rows,
                    const std::string& machine);

/// Look up one variant's projected time on one machine (<0 if absent).
double time_of(const std::vector<VariantTimes>& rows,
               const std::string& variant, const std::string& machine);

}  // namespace bench
