// harness.hpp — shared machinery for the figure/table reproduction benches.
//
// Measurement is routed through the persistent result store (src/results):
// each bench (one binary per paper artefact) asks the store for its slice of
// the (variant × problem) matrix, and only cells the store has never seen are
// actually executed.  Run `tea_sweep run` once and every figure/table bench
// becomes a pure query over BENCH_results.json.  For each cell the harness:
//  1. runs the backend variant *for real* on this host at a bench mesh
//     (default 256^2, 5 steps; TEA_BENCH_FULL=1 uses the paper's mesh and 10
//     steps outright), timing TEA_BENCH_SAMPLES repetitions for min/median/
//     stddev statistics — or fetches the stored row,
//  2. scales the instrumented execution counters to the paper's mesh/steps
//     (traffic ~ cells x iterations, CG iterations ~ mesh width at fixed
//     relative tolerance),
//  3. projects wall times on the paper's three machines through the roofline
//     models, and
//  4. prints the paper-layout table plus the §IV shape checks.
#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/driver.hpp"
#include "machine/machine_model.hpp"
#include "machine/roofline.hpp"
#include "ppmetric/report.hpp"
#include "results/result_store.hpp"
#include "results/sweep.hpp"

namespace bench {

struct HarnessOptions {
  int paper_mesh = 1000;  // the figure's mesh edge (1000 or 4000)
  int paper_steps = 10;
  int bench_mesh = 256;   // host-measured mesh edge
  int bench_steps = 5;
  double eps = 1.0e-15;
  int ranks = 4;
  int samples = 3;        // timed repetitions per cold measurement
  // Fused apply_operator_dot (the tuner's fusion dimension); false measures
  // the whole matrix unfused, under distinct store keys.
  bool fuse_operator_dot = true;

  /// Read TEA_BENCH_FULL / TEA_BENCH_MESH / TEA_BENCH_STEPS /
  /// TEA_BENCH_SAMPLES / TEA_BENCH_UNFUSED overrides.
  static HarnessOptions from_env(int paper_mesh);
};

/// One variant's measured (or store-cached) run plus its per-machine
/// projections.
struct VariantTimes {
  std::string variant;
  results::TimingStats timing;             // per-sample host statistics
  double host_seconds = 0.0;               // = timing.median_s
  long measured_iterations = 0;            // at the bench mesh
  long projected_iterations = 0;           // at the paper mesh
  bool from_cache = false;                 // store hit (no execution)
  // Parallel arrays over the machines supplied to run_variants().
  std::vector<std::string> machines;
  std::vector<double> seconds;             // projected wall time
  std::vector<double> achieved_bw_gbs;
  std::vector<double> achieved_gflops;
};

/// The paper's Fig. 1/2 variant groupings.
std::vector<std::string> cpu_variants();
std::vector<std::string> gpu_variants();

/// Path of the shared result store: $TEA_RESULTS, or BENCH_results.json in
/// the working directory.
std::string store_path();

/// The process-wide shared store, loaded lazily from store_path().
results::ResultStore& shared_store();

/// Persist the shared store (no-op when nothing new was measured).
void sync_store();

/// Print the store session summary: path, rows, cache hits vs. measurements.
void print_store_stats();

/// Fetch-or-measure `variants` through the shared store and project onto
/// `machines` (ids).  Skips variant/machine pairs the calibration marks
/// unsupported.
std::vector<VariantTimes> run_variants(const std::vector<std::string>& variants,
                                       const std::vector<std::string>& machines,
                                       const HarnessOptions& options);

/// Same matrix slice over an explicit problem (stored under `deck_label`) —
/// the path the figure benches use for the non-isotropic workload rows
/// (results::aniso_bench_problem).  run_variants() delegates here with the
/// canonical bench problem.
std::vector<VariantTimes> run_problem_variants(
    const std::vector<std::string>& variants,
    const std::vector<std::string>& machines, const HarnessOptions& options,
    const tl::ProblemConfig& problem, const std::string& deck_label);

/// Fetch-or-measure one ad-hoc cell (the ablation/scaling benches' path).
results::ResultRow measure(const std::string& variant,
                           const tl::ProblemConfig& problem,
                           const tea::RunOptions& run_options,
                           const std::string& deck_label, int samples = 3);

/// Flatten harness rows into the ppm records the Table III builder and the
/// validation shape checks consume (one record per variant × machine).
std::vector<ppm::VariantResult> to_variant_results(
    const std::vector<VariantTimes>& rows);

/// Print the figure-style table: one row per variant, one projected-time
/// column per machine, plus measured host time and iteration counts.
void print_figure(const std::string& title,
                  const std::vector<VariantTimes>& rows,
                  const HarnessOptions& options);

/// Evaluate the §IV shape claims relevant to `mesh` against the projections;
/// prints pass/fail per claim and returns the number of failures.
int check_shapes(const std::vector<VariantTimes>& cpu_rows,
                 const std::vector<VariantTimes>& gpu_rows, int mesh);

/// Best projected time across rows on machine `machine` (0 if absent).
double best_time_on(const std::vector<VariantTimes>& rows,
                    const std::string& machine);

/// Look up one variant's projected time on one machine (<0 if absent).
double time_of(const std::vector<VariantTimes>& rows,
               const std::string& variant, const std::string& machine);

}  // namespace bench
