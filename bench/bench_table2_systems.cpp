// bench_table2_systems — reproduces Table II: the single-node systems used
// for the study, as modeled by the machine layer (plus the measured host the
// benches actually execute on, which is the platform every result-store row
// records).
#include <cstdio>

#include "bench/harness.hpp"
#include "common/table.hpp"
#include "machine/machine_model.hpp"

int main() {
  std::printf("== Table II — systems under test (roofline models) ==\n");
  tl::Table table({"id", "description", "cores", "SMT", "peak BW GB/s",
                   "peak DP GF/s", "launch us", "capacity GB"});
  auto machines = machine::paper_machines();
  machines.push_back(&machine::host_machine());
  for (const machine::MachineModel* m : machines) {
    table.add_row({m->id, m->description, std::to_string(m->cores),
                   std::to_string(m->threads_per_core),
                   tl::Table::num(m->peak_bw_gbs, 1),
                   tl::Table::num(m->peak_gflops, 0),
                   tl::Table::num(m->launch_overhead_us, 1),
                   tl::Table::num(m->mem_capacity_gb, 0)});
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf(
      "host '%s' is the measurement platform recorded in %s (%zu rows)\n",
      machine::host_machine().id.c_str(), bench::store_path().c_str(),
      bench::shared_store().size());
  return 0;
}
