// bench_table1_versions — reproduces Table I: the inventory of TeaLeaf
// versions.  The paper's table lists compilers and flags per version; in this
// reproduction the "toolchain" column records the substrate stack each
// variant is built from (the from-scratch equivalents of those toolchains),
// alongside the paper's original compiler/flag entries for reference.
#include <cstdio>

#include "common/table.hpp"
#include "core/registry.hpp"
#include "results/compare.hpp"

namespace {

struct VersionInfo {
  const char* id;
  const char* paper_version;
  const char* paper_toolchain;
  const char* our_stack;
};

const VersionInfo kVersions[] = {
    {"manual-omp", "Manual OpenMP", "Intel 17.0u2: -O3 -no-prec-div -fpp -align array64byte -qopenmp",
     "tlp thread pool (fork-join, static schedule)"},
    {"manual-mpi", "Manual MPI", "Intel 17.0u2 + IMPI 2017u2",
     "minimpi ranks + Cart2D halo exchange"},
    {"manual-hybrid", "Manual OpenMP and MPI", "Intel 17.0u2 + IMPI 2017u2",
     "minimpi ranks, tlp pool per rank"},
    {"manual-cuda", "Manual CUDA",
     "nvcc -gencode arch=compute_60,code=sm_60 -restrict -O3",
     "simgpu device (grid/block launches, device reductions)"},
    {"manual-acc-cpu", "Manual OpenACC (host)", "PGI 17.3: -O3 -acc -ta=multicore",
     "miniacc data region -> tlp"},
    {"manual-acc-gpu", "Manual OpenACC (GPU)", "PGI 17.3: -O3 -acc -ta=tesla:cc60",
     "miniacc data region -> simgpu"},
    {"ops-omp", "OPS OpenMP", "Intel 17.0u2: -O3 -ipo ... -qopenmp",
     "miniops par_loop -> tlp"},
    {"ops-mpi", "OPS MPI", "Intel 17.0u2 + IMPI 2017u2",
     "miniops par_loop -> minimpi (auto halo dirty bits)"},
    {"ops-hybrid", "OPS OpenMP and MPI", "Intel 17.0u2 + IMPI 2017u2",
     "miniops -> minimpi + tlp"},
    {"ops-tiled", "OPS MPI Tiled", "Intel 17.0u2 + IMPI 2017u2",
     "miniops lazy queue + skewed cache-blocking tiling"},
    {"ops-cuda", "OPS CUDA (OPS_BLOCK_SIZE 64x8)",
     "nvcc -O3 --use_fast_math -gencode arch=compute_60,code=sm_60",
     "miniops -> simgpu (64x8 blocks)"},
    {"ops-acc", "OPS OpenACC", "PGI 17.3: -acc -ta=tesla:cc60 -O2 -Kieee",
     "miniops -> simgpu (OpenACC-generated flavour)"},
    {"kokkos-omp", "Kokkos OpenMP", "Intel 17.0u2: -O3 ... -fp-model strict",
     "minikokkos Views + parallel_for<Threads>"},
    {"kokkos-cuda", "Kokkos CUDA", "GNU 5.4.0 + CUDA 8.0.61",
     "minikokkos Views (LayoutLeft) + parallel_for<SimGPU>"},
    {"raja-omp", "RAJA OpenMP", "Intel 17.0u2: -O3 -restrict -fno-alias -qopenmp",
     "miniraja forall<omp_parallel_for_exec> + ReduceSum"},
    {"raja-cuda", "RAJA CUDA", "nvcc --expt-extended-lambda -arch compute_60",
     "miniraja forall<simgpu_exec> + ReduceSum"},
};

}  // namespace

int main() {
  std::printf("== Table I — TeaLeaf versions (paper toolchains vs our substrate stacks) ==\n");
  tl::Table table({"id", "paper version", "paper compiler/flags", "this repo"});
  for (const VersionInfo& v : kVersions) {
    table.add_row({v.id, v.paper_version, v.paper_toolchain, v.our_stack});
  }
  std::printf("%s\n", table.to_ascii().c_str());

  // Cross-check the registry actually provides every listed version.
  const auto available = tea::available_backends();
  int missing = 0;
  for (const VersionInfo& v : kVersions) {
    bool found = false;
    for (const auto& id : available) found |= id == v.id;
    if (!found) {
      std::printf("MISSING from registry: %s\n", v.id);
      ++missing;
    }
  }
  std::printf("registry provides %zu backends; Table I versions missing: %d\n",
              available.size(), missing);

  // And that the sweep's variant matrix (what `tea_sweep run` measures and
  // the figure benches query) covers exactly this inventory.
  auto sweep_variants = results::cpu_variants();
  for (const auto& id : results::gpu_variants()) sweep_variants.push_back(id);
  int not_swept = 0;
  for (const VersionInfo& v : kVersions) {
    bool found = false;
    for (const auto& id : sweep_variants) found |= id == v.id;
    if (!found) {
      std::printf("MISSING from sweep matrix: %s\n", v.id);
      ++not_swept;
    }
  }
  std::printf("sweep matrix covers %zu variants; Table I versions missing: %d\n",
              sweep_variants.size(), not_swept);
  return missing == 0 && not_swept == 0 ? 0 : 1;
}
