# Script mode (cmake -P): regenerate ${OUT} with the repo's current short
# revision.  Runs on every build via the tl_git_rev target so result rows
# record the revision actually built, not the one present at configure time;
# the file is only rewritten when the revision changes, so nothing recompiles
# on ordinary rebuilds.
execute_process(
  COMMAND git rev-parse --short HEAD
  WORKING_DIRECTORY ${SRC}
  OUTPUT_VARIABLE TL_GIT_REV
  OUTPUT_STRIP_TRAILING_WHITESPACE
  ERROR_QUIET
  RESULT_VARIABLE TL_GIT_REV_RC)
if(NOT TL_GIT_REV_RC EQUAL 0 OR TL_GIT_REV STREQUAL "")
  set(TL_GIT_REV "unknown")
endif()

set(content "#define TL_GIT_REV \"${TL_GIT_REV}\"\n")
set(old "")
if(EXISTS ${OUT})
  file(READ ${OUT} old)
endif()
if(NOT content STREQUAL old)
  file(WRITE ${OUT} "${content}")
endif()
