// string_util.hpp — small string helpers used by the config and CLI parsers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace tl {

/// Strip leading/trailing whitespace.
std::string trim(std::string_view s);

/// Lower-case ASCII copy.
std::string to_lower(std::string_view s);

/// Split on a delimiter, dropping empty tokens when `keep_empty` is false.
std::vector<std::string> split(std::string_view s, char delim,
                               bool keep_empty = false);

/// Split on arbitrary whitespace runs.
std::vector<std::string> split_ws(std::string_view s);

/// True if `s` equals `expected` ignoring ASCII case.
bool iequals(std::string_view s, std::string_view expected);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Parse helpers that throw tl::ConfigError with the offending text.
double parse_double(std::string_view s);
long parse_long(std::string_view s);
bool parse_bool(std::string_view s);

}  // namespace tl
