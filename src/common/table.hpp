// table.hpp — ASCII / Markdown / CSV table rendering for the benchmark
// harnesses (the Fig. 1/2 and Table III generators print through this).
#pragma once

#include <string>
#include <vector>

namespace tl {

class Table {
public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must match the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with fixed precision.
  static std::string num(double v, int precision = 2);

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return headers_.size(); }

  std::string to_ascii() const;
  std::string to_markdown() const;
  std::string to_csv() const;

private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> widths_;
};

}  // namespace tl
