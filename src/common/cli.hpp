// cli.hpp — minimal command-line parser for the examples and bench harnesses.
// Supports `--flag`, `--key value` and `--key=value` forms.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace tl {

class Cli {
public:
  Cli(int argc, const char* const* argv);

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

  bool has(const std::string& key) const;
  std::optional<std::string> get(const std::string& key) const;
  std::string get_or(const std::string& key, const std::string& fallback) const;
  long get_long(const std::string& key, long fallback) const;
  double get_double(const std::string& key, double fallback) const;

  /// Non-option positional arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace tl
