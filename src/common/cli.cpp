#include "common/cli.hpp"

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace tl {

Cli::Cli(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--key value` if the next token is not itself an option; else a flag.
    if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      options_[body] = argv[++i];
    } else {
      options_[body] = "true";
    }
  }
}

bool Cli::has(const std::string& key) const {
  return options_.count(key) != 0;
}

std::optional<std::string> Cli::get(const std::string& key) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

std::string Cli::get_or(const std::string& key,
                        const std::string& fallback) const {
  return get(key).value_or(fallback);
}

long Cli::get_long(const std::string& key, long fallback) const {
  const auto v = get(key);
  return v ? parse_long(*v) : fallback;
}

double Cli::get_double(const std::string& key, double fallback) const {
  const auto v = get(key);
  return v ? parse_double(*v) : fallback;
}

}  // namespace tl
