// span2d.hpp — non-owning 2D view over a contiguous row-major buffer, the
// lingua franca between the TeaLeaf kernels and every programming-model
// substrate.  Indexing is (j = row/y, i = column/x) with x contiguous, which
// matches the Fortran-heritage layout of the original mini-app after
// transposition to C order.
#pragma once

#include <cstddef>
#include <type_traits>

#include "common/error.hpp"

namespace tl {

template <typename T>
class Span2D {
public:
  using value_type = std::remove_cv_t<T>;

  constexpr Span2D() noexcept : data_(nullptr), nx_(0), ny_(0) {}

  /// Wrap `data` as an ny-by-nx view; `data` must point at nx*ny elements.
  constexpr Span2D(T* data, int nx, int ny) noexcept
      : data_(data), nx_(nx), ny_(ny) {}

  constexpr T& operator()(int i, int j) const noexcept {
    return data_[static_cast<std::size_t>(j) * nx_ + i];
  }

  /// Bounds-checked access, for tests and debug paths.
  T& at(int i, int j) const {
    TL_REQUIRE(i >= 0 && i < nx_ && j >= 0 && j < ny_,
               "Span2D index (" + std::to_string(i) + "," + std::to_string(j) +
                   ") out of range " + std::to_string(nx_) + "x" +
                   std::to_string(ny_));
    return (*this)(i, j);
  }

  constexpr T* data() const noexcept { return data_; }
  constexpr int nx() const noexcept { return nx_; }
  constexpr int ny() const noexcept { return ny_; }
  constexpr std::size_t size() const noexcept {
    return static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_);
  }
  constexpr bool empty() const noexcept { return size() == 0; }

  /// Implicit const-qualification, mirroring tl::span semantics.
  constexpr operator Span2D<const T>() const noexcept {
    return Span2D<const T>(data_, nx_, ny_);
  }

private:
  T* data_;
  int nx_;
  int ny_;
};

}  // namespace tl
