#include "common/log.hpp"

#include <cstdlib>

#include "common/string_util.hpp"

namespace tl {

namespace {
LogLevel level_from_env() {
  const char* env = std::getenv("TEA_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  const std::string v = to_lower(env);
  if (v == "error" || v == "0") return LogLevel::kError;
  if (v == "warn" || v == "1") return LogLevel::kWarn;
  if (v == "info" || v == "2") return LogLevel::kInfo;
  if (v == "debug" || v == "3") return LogLevel::kDebug;
  return LogLevel::kWarn;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "[error]";
    case LogLevel::kWarn: return "[warn ]";
    case LogLevel::kInfo: return "[info ]";
    case LogLevel::kDebug: return "[debug]";
  }
  return "[?]";
}
}  // namespace

Logger::Logger() : level_(level_from_env()) {}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) > static_cast<int>(level_)) return;
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostream& os = stream_ != nullptr ? *stream_ : std::cerr;
  os << level_tag(level) << " " << message << "\n";
}

}  // namespace tl
