#include "common/string_util.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>

#include "common/error.hpp"

namespace tl {

namespace {
bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return std::string(s.substr(b, e - b));
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::vector<std::string> split(std::string_view s, char delim,
                               bool keep_empty) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      std::string_view tok = s.substr(start, i - start);
      if (keep_empty || !tok.empty()) out.emplace_back(tok);
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

bool iequals(std::string_view s, std::string_view expected) {
  if (s.size() != expected.size()) return false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(s[i])) !=
        std::tolower(static_cast<unsigned char>(expected[i]))) {
      return false;
    }
  }
  return true;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

double parse_double(std::string_view s) {
  const std::string t = trim(s);
  // std::from_chars<double> exists in GCC 12 but strtod handles Fortran-style
  // exponents ("1.0d-15" is normalised by the config layer before reaching
  // here); keep strtod for locale-free full-string validation.
  char* end = nullptr;
  const double v = std::strtod(t.c_str(), &end);
  if (end == t.c_str() || *end != '\0') {
    throw ConfigError("cannot parse '" + t + "' as a real number");
  }
  return v;
}

long parse_long(std::string_view s) {
  const std::string t = trim(s);
  long v = 0;
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), v);
  if (ec != std::errc{} || ptr != t.data() + t.size()) {
    throw ConfigError("cannot parse '" + t + "' as an integer");
  }
  return v;
}

bool parse_bool(std::string_view s) {
  const std::string t = to_lower(trim(s));
  if (t == "1" || t == "true" || t == "on" || t == "yes") return true;
  if (t == "0" || t == "false" || t == "off" || t == "no") return false;
  throw ConfigError("cannot parse '" + t + "' as a boolean");
}

}  // namespace tl
