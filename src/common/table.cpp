#include "common/table.hpp"

#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace tl {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  TL_REQUIRE(!headers_.empty(), "table needs at least one column");
  widths_.reserve(headers_.size());
  for (const auto& h : headers_) widths_.push_back(h.size());
}

void Table::add_row(std::vector<std::string> cells) {
  TL_REQUIRE(cells.size() == headers_.size(),
             "row width " + std::to_string(cells.size()) +
                 " != header width " + std::to_string(headers_.size()));
  for (std::size_t i = 0; i < cells.size(); ++i) {
    widths_[i] = std::max(widths_[i], cells[i].size());
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::to_ascii() const {
  std::ostringstream os;
  const auto rule = [&] {
    os << '+';
    for (const auto w : widths_) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << ' ' << cells[i] << std::string(widths_[i] - cells[i].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
  return os.str();
}

std::string Table::to_markdown() const {
  std::ostringstream os;
  const auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << ' ' << cells[i] << std::string(widths_[i] - cells[i].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  line(headers_);
  os << '|';
  for (const auto w : widths_) os << std::string(w + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) line(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  const auto esc = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"') out += "\"\"";
      else out += c;
    }
    out += '"';
    return out;
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      os << esc(cells[i]);
    }
    os << '\n';
  };
  line(headers_);
  for (const auto& row : rows_) line(row);
  return os.str();
}

}  // namespace tl
