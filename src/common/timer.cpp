#include "common/timer.hpp"

#include <sstream>

namespace tl {

void TimerRegistry::add(const std::string& name, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entries_[name];
  e.total += seconds;
  e.count += 1;
}

double TimerRegistry::total(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  return it == entries_.end() ? 0.0 : it->second.total;
}

long TimerRegistry::count(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.count;
}

std::vector<std::string> TimerRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

void TimerRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

std::string TimerRegistry::report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  for (const auto& [name, entry] : entries_) {
    os << name << ": " << entry.total << " s (" << entry.count << " calls)\n";
  }
  return os.str();
}

}  // namespace tl
