// simd.hpp — portability macros for the hot-path kernels.
//
// TL_RESTRICT marks pointers as non-aliasing so the compiler can vectorize
// stencil rows without emitting runtime overlap checks.
//
// TL_TARGET_CLONES compiles a function once per listed ISA with a runtime
// dispatcher (GCC/Clang function multi-versioning), so the default `-O3`
// build stays portable to baseline x86-64 while AVX2 machines run 4-wide
// kernels.  The clone list deliberately stops at "avx2":
//  - plain AVX2 has no FMA encodings, so every clone performs the exact same
//    IEEE operations in the same order and results stay bitwise identical to
//    the scalar build (the golden numerics suite relies on this);
//  - an avx512f clone would admit EVEX FMA contraction under GCC's default
//    -ffp-contract=fast and change results at the ULP level.
// Reductions stay deterministic because the kernels spell out their partial
// accumulators explicitly (see ref_kernels.hpp dot): the compiler may pack
// the four lanes into one vector register but cannot reassociate beyond
// them.
#pragma once

#if defined(_MSC_VER)
#define TL_RESTRICT __restrict
#elif defined(__GNUC__) || defined(__clang__)
#define TL_RESTRICT __restrict__
#else
#define TL_RESTRICT
#endif

// Function multi-versioning needs ELF ifunc support: glibc-style Linux on
// x86-64 with GCC (Clang also supports the attribute, but keep the gate
// narrow and well-tested; other platforms just build the portable version).
// Sanitizer builds get the plain portable version too: ifunc resolvers run
// during relocation, before the TSan/ASan runtimes are initialised, and
// crash at load — and the sanitizers are there to check the logic, which is
// identical across clones.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define TL_TARGET_CLONES
#elif defined(__x86_64__) && defined(__gnu_linux__) && defined(__GNUC__) && \
    !defined(__clang__)
#define TL_TARGET_CLONES __attribute__((target_clones("default", "avx2")))
#else
#define TL_TARGET_CLONES
#endif
