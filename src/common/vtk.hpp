// vtk.hpp — legacy-VTK structured-points writer for field visualisation
// (TeaLeaf's visit_frequency output).  Plain ASCII, loadable by ParaView and
// VisIt.
#pragma once

#include <string>
#include <vector>

#include "common/span.hpp"

namespace tl {

struct VtkField {
  std::string name;
  span<const double> values;  // nx*ny cell values, row-major
};

/// Write an nx-by-ny cell-centred dataset with spacing (dx, dy) and the
/// given cell-data fields.  Throws tl::Error if the file cannot be written
/// or a field size mismatches.
void write_vtk(const std::string& path, int nx, int ny, double dx, double dy,
               const std::vector<VtkField>& fields);

}  // namespace tl
