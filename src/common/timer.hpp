// timer.hpp — wall-clock stopwatch and a named-section timer registry, used by
// the driver to report the per-kernel breakdown the original TeaLeaf prints.
#pragma once

#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace tl {

/// Monotonic wall-clock stopwatch.
class StopWatch {
public:
  StopWatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates wall time per named section.  Thread-safe for concurrent
/// section completion (per-backend kernels may finish on worker threads).
class TimerRegistry {
public:
  void add(const std::string& name, double seconds);

  /// Total accumulated seconds for `name` (0 if never recorded).
  double total(const std::string& name) const;

  /// Number of times `name` was recorded.
  long count(const std::string& name) const;

  /// All section names in insertion-independent (sorted) order.
  std::vector<std::string> names() const;

  void clear();

  /// Render "name: total s (count calls)" lines.
  std::string report() const;

private:
  struct Entry {
    double total = 0.0;
    long count = 0;
  };
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

/// RAII helper: times a scope into a registry section.
class ScopedTimer {
public:
  ScopedTimer(TimerRegistry& registry, std::string name)
      : registry_(registry), name_(std::move(name)) {}
  ~ScopedTimer() { registry_.add(name_, watch_.seconds()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

private:
  TimerRegistry& registry_;
  std::string name_;
  StopWatch watch_;
};

}  // namespace tl
