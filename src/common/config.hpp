// config.hpp — parser for TeaLeaf's `tea.in`-style input decks.
//
// The original deck format is line-oriented:
//
//   *tea
//   state 1 density=100.0 energy=0.0001
//   state 2 density=0.1 energy=25.0 geometry=rectangle xmin=0.0 xmax=1.0 ymin=1.0 ymax=2.0
//   x_cells=1000
//   y_cells=1000
//   xmin=0.0  xmax=10.0  ymin=0.0  ymax=10.0
//   initial_timestep=0.004
//   end_step=10
//   tl_max_iters=10000
//   tl_use_cg
//   tl_eps=1.0e-15
//   *endtea
//
// This module parses that format into a typed ProblemConfig used by the core
// driver, plus a generic key/value view used by tests and tooling.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace tl {

enum class Geometry { kRectangle, kCircle, kPoint };
enum class SolverKind { kJacobi, kCg, kCheby, kPpcg };
enum class CoefficientKind { kRecipDensity, kDensity };
enum class PreconKind { kNone, kJacDiag };

/// One `state N ...` line: a material region painted onto the mesh.
struct StateConfig {
  int index = 0;             // 1-based; state 1 is the ambient default
  double density = 0.0;
  double energy = 0.0;
  Geometry geometry = Geometry::kRectangle;
  double xmin = 0.0, xmax = 0.0, ymin = 0.0, ymax = 0.0;  // rectangle
  double cx = 0.0, cy = 0.0, radius = 0.0;                // circle
};

/// Full problem description.
struct ProblemConfig {
  int x_cells = 10;
  int y_cells = 10;
  double xmin = 0.0, xmax = 10.0;
  double ymin = 0.0, ymax = 10.0;

  double initial_timestep = 0.004;
  int end_step = 10;

  SolverKind solver = SolverKind::kCg;
  CoefficientKind coefficient = CoefficientKind::kRecipDensity;
  PreconKind preconditioner = PreconKind::kNone;  // tl_preconditioner_type
  double eps = 1.0e-15;
  int max_iters = 10000;
  int ppcg_inner_steps = 10;   // tl_ppcg_inner_steps
  int cheby_cg_presteps = 30;  // CG steps used to estimate eigenvalue bounds
  bool check_result = true;
  int halo_depth = 2;

  std::vector<StateConfig> states;

  double dx() const { return (xmax - xmin) / x_cells; }
  double dy() const { return (ymax - ymin) / y_cells; }
};

class Config {
public:
  /// Parse deck text (contents of a tea.in file).  Throws ConfigError on
  /// malformed input.
  static Config parse(const std::string& text);

  /// Parse a deck from disk.
  static Config load(const std::string& path);

  /// A reasonable default problem (TeaLeaf's shipped tea.in: two-state
  /// rectangle problem, CG solver).
  static Config default_config();

  const ProblemConfig& problem() const { return problem_; }
  ProblemConfig& problem() { return problem_; }

  /// Raw key access for keys the typed layer does not know about.
  std::optional<std::string> raw(const std::string& key) const;

private:
  Config() = default;
  ProblemConfig problem_;
  std::map<std::string, std::string> raw_;
};

/// Round-trip helper: render a ProblemConfig back into deck text.
std::string to_deck(const ProblemConfig& p);

const char* to_string(SolverKind s);
const char* to_string(Geometry g);
const char* to_string(CoefficientKind c);
const char* to_string(PreconKind p);

/// Inverses of the to_string names above (used by the tuned-plan loader).
/// Throw ConfigError on unknown names.
SolverKind solver_from_string(const std::string& name);
PreconKind precon_from_string(const std::string& name);

}  // namespace tl
