// log.hpp — leveled logger.  TeaLeaf historically writes a `tea.out` report;
// we log to stderr (configurable stream) with a level gate controlled
// programmatically or by the TEA_LOG_LEVEL environment variable.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace tl {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

class Logger {
public:
  /// Global logger singleton.
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Redirect output (tests capture into a stringstream).  Pass nullptr to
  /// restore stderr.
  void set_stream(std::ostream* os) { stream_ = os; }

  void log(LogLevel level, const std::string& message);

private:
  Logger();
  std::mutex mutex_;
  LogLevel level_;
  std::ostream* stream_ = nullptr;
};

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_error(Args&&... args) {
  Logger::instance().log(LogLevel::kError,
                         detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  Logger::instance().log(LogLevel::kWarn,
                         detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  Logger::instance().log(LogLevel::kInfo,
                         detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_debug(Args&&... args) {
  Logger::instance().log(LogLevel::kDebug,
                         detail::concat(std::forward<Args>(args)...));
}

}  // namespace tl
