#include "common/vtk.hpp"

#include <fstream>

#include "common/error.hpp"

namespace tl {

void write_vtk(const std::string& path, int nx, int ny, double dx, double dy,
               const std::vector<VtkField>& fields) {
  TL_REQUIRE(nx > 0 && ny > 0, "vtk dimensions must be positive");
  const std::size_t cells = static_cast<std::size_t>(nx) * ny;
  for (const VtkField& f : fields) {
    TL_REQUIRE(f.values.size() == cells,
               "vtk field '" + f.name + "' has wrong size");
  }

  std::ofstream os(path);
  TL_REQUIRE(os.good(), "cannot open '" + path + "' for writing");
  os << "# vtk DataFile Version 3.0\n";
  os << "tealeaf-portability field dump\n";
  os << "ASCII\n";
  os << "DATASET STRUCTURED_POINTS\n";
  // Cell-centred data over an (nx+1)x(ny+1) point lattice.
  os << "DIMENSIONS " << nx + 1 << " " << ny + 1 << " 1\n";
  os << "ORIGIN 0 0 0\n";
  os << "SPACING " << dx << " " << dy << " 1\n";
  os << "CELL_DATA " << cells << "\n";
  os.precision(12);
  for (const VtkField& f : fields) {
    os << "SCALARS " << f.name << " double 1\n";
    os << "LOOKUP_TABLE default\n";
    for (std::size_t k = 0; k < cells; ++k) {
      os << f.values[k] << "\n";
    }
  }
  TL_REQUIRE(os.good(), "write to '" + path + "' failed");
}

}  // namespace tl
