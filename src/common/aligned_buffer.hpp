// aligned_buffer.hpp — RAII cache-line/SIMD-aligned array used for every field
// allocation.  Alignment to 64 bytes mirrors the `-align array64byte` flag the
// paper's manual builds use (Table I).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <type_traits>
#include <utility>

#include "common/error.hpp"
#include "common/span2d.hpp"

namespace tl {

inline constexpr std::size_t kDefaultAlignment = 64;

/// Tag requesting allocation without initialisation (the caller will write
/// every element itself — e.g. NUMA first-touch initialisation, where the
/// thread that later computes a row must be the first to touch its pages).
struct uninitialized_t {
  explicit uninitialized_t() = default;
};
inline constexpr uninitialized_t uninitialized{};

template <typename T>
class AlignedBuffer {
public:
  AlignedBuffer() noexcept = default;

  explicit AlignedBuffer(std::size_t count, T fill = T{},
                         std::size_t alignment = kDefaultAlignment)
      : AlignedBuffer(count, uninitialized, alignment) {
    if (count != 0) std::fill_n(data_, count, fill);
  }

  /// Allocate without touching the memory (trivial T only: nothing is
  /// constructed; the first write to each page decides its NUMA placement).
  AlignedBuffer(std::size_t count, uninitialized_t,
                std::size_t alignment = kDefaultAlignment)
      : size_(count), alignment_(alignment) {
    static_assert(std::is_trivial_v<T>,
                  "uninitialized AlignedBuffer requires a trivial type");
    if (count == 0) return;
    const std::size_t bytes = round_up(count * sizeof(T), alignment);
    data_ = static_cast<T*>(::operator new(bytes, std::align_val_t(alignment)));
  }

  AlignedBuffer(const AlignedBuffer& other)
      : AlignedBuffer(other.size_, T{}, other.alignment_ ? other.alignment_
                                                         : kDefaultAlignment) {
    std::copy_n(other.data_, size_, data_);
  }

  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this != &other) {
      AlignedBuffer tmp(other);
      swap(tmp);
    }
    return *this;
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept { swap(other); }

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  void swap(AlignedBuffer& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
    std::swap(alignment_, other.alignment_);
  }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }

  /// View the buffer as an ny-by-nx 2D span (row-major, x contiguous).
  Span2D<T> span2d(int nx, int ny) {
    TL_REQUIRE(static_cast<std::size_t>(nx) * ny <= size_,
               "span2d dimensions exceed buffer size");
    return Span2D<T>(data_, nx, ny);
  }
  Span2D<const T> span2d(int nx, int ny) const {
    TL_REQUIRE(static_cast<std::size_t>(nx) * ny <= size_,
               "span2d dimensions exceed buffer size");
    return Span2D<const T>(data_, nx, ny);
  }

private:
  static std::size_t round_up(std::size_t n, std::size_t align) {
    return (n + align - 1) / align * align;
  }

  void release() noexcept {
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t(alignment_));
      data_ = nullptr;
      size_ = 0;
    }
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t alignment_ = kDefaultAlignment;
};

}  // namespace tl
