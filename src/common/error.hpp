// error.hpp — exception types and checked-condition helpers shared by every
// tealeaf-portability library.
#pragma once

#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>

namespace tl {

/// Base exception for all library errors.  Carries a formatted message that
/// already includes the throwing site's context string.
class Error : public std::runtime_error {
public:
  explicit Error(std::string what) : std::runtime_error(std::move(what)) {}
};

/// Raised when user-supplied configuration (tea.in, CLI) is malformed.
class ConfigError : public Error {
public:
  using Error::Error;
};

/// Raised when a solver fails to converge within its iteration budget.
class ConvergenceError : public Error {
public:
  ConvergenceError(std::string what, int iterations, double residual)
      : Error(std::move(what)), iterations_(iterations), residual_(residual) {}

  int iterations() const noexcept { return iterations_; }
  double residual() const noexcept { return residual_; }

private:
  int iterations_;
  double residual_;
};

/// Raised on simulated-device misuse (bad copies, exhausted device memory).
class DeviceError : public Error {
public:
  using Error::Error;
};

namespace detail {
[[noreturn]] inline void fail(const char* file, int line, const std::string& msg) {
  throw Error(std::string(file) + ":" + std::to_string(line) + ": " + msg);
}
}  // namespace detail

}  // namespace tl

/// Check a runtime condition; throws tl::Error with file/line context.
#define TL_REQUIRE(cond, msg)                                     \
  do {                                                            \
    if (!(cond)) ::tl::detail::fail(__FILE__, __LINE__, (msg));   \
  } while (0)
