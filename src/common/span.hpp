// span.hpp — minimal C++17 stand-in for std::span, covering the subset this
// repo uses: (pointer, size) and vector construction, const-qualification
// conversion, element access, iteration, and subspan slicing.  Kept in
// tl:: so the tree builds with -std=c++17 on any mainstream compiler.
#pragma once

#include <cstddef>
#include <type_traits>
#include <vector>

namespace tl {

template <typename T>
class span {
 public:
  using element_type = T;
  using value_type = std::remove_cv_t<T>;
  using size_type = std::size_t;
  using pointer = T*;
  using reference = T&;
  using iterator = T*;

  constexpr span() noexcept : data_(nullptr), size_(0) {}
  constexpr span(T* data, size_type size) noexcept : data_(data), size_(size) {}
  constexpr span(T* first, T* last) noexcept
      : data_(first), size_(static_cast<size_type>(last - first)) {}

  template <std::size_t N>
  constexpr span(element_type (&arr)[N]) noexcept : data_(arr), size_(N) {}

  // Implicit from a vector of the (possibly const-stripped) element type,
  // mirroring std::span's range constructor for the common case.
  template <typename U,
            typename = std::enable_if_t<std::is_convertible_v<U (*)[], T (*)[]>>>
  span(std::vector<U>& v) noexcept : data_(v.data()), size_(v.size()) {}

  template <typename U, typename = std::enable_if_t<
                            std::is_convertible_v<const U (*)[], T (*)[]>>>
  span(const std::vector<U>& v) noexcept : data_(v.data()), size_(v.size()) {}

  // span<T> -> span<const T>.
  template <typename U,
            typename = std::enable_if_t<std::is_convertible_v<U (*)[], T (*)[]>>>
  constexpr span(const span<U>& other) noexcept
      : data_(other.data()), size_(other.size()) {}

  constexpr pointer data() const noexcept { return data_; }
  constexpr size_type size() const noexcept { return size_; }
  constexpr size_type size_bytes() const noexcept { return size_ * sizeof(T); }
  constexpr bool empty() const noexcept { return size_ == 0; }

  constexpr reference operator[](size_type i) const { return data_[i]; }
  constexpr reference front() const { return data_[0]; }
  constexpr reference back() const { return data_[size_ - 1]; }

  constexpr iterator begin() const noexcept { return data_; }
  constexpr iterator end() const noexcept { return data_ + size_; }

  constexpr span first(size_type n) const { return span(data_, n); }
  constexpr span last(size_type n) const { return span(data_ + (size_ - n), n); }
  constexpr span subspan(size_type offset, size_type count) const {
    return span(data_ + offset, count);
  }
  constexpr span subspan(size_type offset) const {
    return span(data_ + offset, size_ - offset);
  }

 private:
  pointer data_;
  size_type size_;
};

template <typename U>
span(std::vector<U>&) -> span<U>;
template <typename U>
span(const std::vector<U>&) -> span<const U>;

}  // namespace tl
