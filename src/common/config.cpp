#include "common/config.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace tl {

namespace {

// Fortran decks use `1.0d-15`; normalise the exponent marker before numeric
// parsing.
std::string normalise_number(std::string s) {
  for (char& c : s) {
    if (c == 'd' || c == 'D') c = 'e';
  }
  return s;
}

// Deck numerics must be finite: strtod happily accepts "nan" and "inf", and
// a NaN extent would sail through the `xmax <= xmin` sanity check below
// (every comparison with NaN is false) straight into the mesh setup.
double parse_finite(std::string_view s, const std::string& what) {
  const double v = parse_double(s);
  if (!std::isfinite(v)) {
    throw ConfigError(what + " must be finite, got '" + std::string(trim(s)) +
                      "'");
  }
  return v;
}

Geometry parse_geometry(const std::string& v) {
  const std::string g = to_lower(v);
  if (g == "rectangle") return Geometry::kRectangle;
  if (g == "circle" || g == "circular") return Geometry::kCircle;
  if (g == "point") return Geometry::kPoint;
  throw ConfigError("unknown geometry '" + v + "'");
}

StateConfig parse_state_line(const std::vector<std::string>& tokens) {
  if (tokens.size() < 2) throw ConfigError("state line missing index");
  StateConfig st;
  st.index = static_cast<int>(parse_long(tokens[1]));
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    const auto kv = split(tokens[i], '=');
    if (kv.size() != 2) {
      throw ConfigError("bad state attribute '" + tokens[i] + "'");
    }
    const std::string key = to_lower(kv[0]);
    const std::string val = normalise_number(kv[1]);
    const std::string what = "state attribute " + key;
    if (key == "density") st.density = parse_finite(val, what);
    else if (key == "energy") st.energy = parse_finite(val, what);
    else if (key == "geometry") st.geometry = parse_geometry(kv[1]);
    else if (key == "xmin") st.xmin = parse_finite(val, what);
    else if (key == "xmax") st.xmax = parse_finite(val, what);
    else if (key == "ymin") st.ymin = parse_finite(val, what);
    else if (key == "ymax") st.ymax = parse_finite(val, what);
    else if (key == "xcentre" || key == "xcenter") st.cx = parse_finite(val, what);
    else if (key == "ycentre" || key == "ycenter") st.cy = parse_finite(val, what);
    else if (key == "radius") st.radius = parse_finite(val, what);
    else throw ConfigError("unknown state attribute '" + key + "'");
  }
  if (st.density <= 0.0) {
    throw ConfigError("state " + std::to_string(st.index) +
                      " must have positive density");
  }
  if (st.energy < 0.0) {
    throw ConfigError("state " + std::to_string(st.index) +
                      " must have non-negative energy");
  }
  // Region sanity for the painted states: a zero-area region never covers a
  // cell centre, so it would silently paint nothing — reject it instead.
  if (st.index > 1) {
    const std::string where = "state " + std::to_string(st.index);
    switch (st.geometry) {
      case Geometry::kRectangle:
        if (st.xmax <= st.xmin || st.ymax <= st.ymin) {
          throw ConfigError(where + ": rectangle region has zero or negative "
                            "area (need xmin < xmax and ymin < ymax)");
        }
        break;
      case Geometry::kCircle:
        if (st.radius <= 0.0) {
          throw ConfigError(where + ": circle region needs a positive radius");
        }
        break;
      case Geometry::kPoint:
        break;  // a point has no extent to validate
    }
  }
  return st;
}

}  // namespace

Config Config::parse(const std::string& text) {
  Config cfg;
  ProblemConfig& p = cfg.problem_;
  bool in_block = false;
  bool saw_block = false;

  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    // Strip comments (`!` and `#`).
    for (const char marker : {'!', '#'}) {
      const auto pos = line.find(marker);
      if (pos != std::string::npos) line.erase(pos);
    }
    const std::string t = trim(line);
    if (t.empty()) continue;
    const std::string lt = to_lower(t);

    if (lt == "*tea") {
      in_block = true;
      saw_block = true;
      continue;
    }
    if (lt == "*endtea") {
      in_block = false;
      continue;
    }
    if (!in_block) continue;

    const auto tokens = split_ws(t);
    if (iequals(tokens[0], "state")) {
      p.states.push_back(parse_state_line(tokens));
      continue;
    }

    // Remaining directives are whitespace-separated `key=value` pairs or
    // bare flags; a single line may hold several (e.g. the xmin/xmax line).
    for (const std::string& tok : tokens) {
      const auto kv = split(tok, '=');
      const std::string key = to_lower(kv[0]);
      const std::string val =
          kv.size() == 2 ? normalise_number(kv[1]) : std::string{};
      if (kv.size() > 2) {
        throw ConfigError("line " + std::to_string(lineno) +
                          ": malformed token '" + tok + "'");
      }
      cfg.raw_[key] = kv.size() == 2 ? kv[1] : "true";

      if (key == "x_cells") p.x_cells = static_cast<int>(parse_long(val));
      else if (key == "y_cells") p.y_cells = static_cast<int>(parse_long(val));
      else if (key == "xmin") p.xmin = parse_finite(val, key);
      else if (key == "xmax") p.xmax = parse_finite(val, key);
      else if (key == "ymin") p.ymin = parse_finite(val, key);
      else if (key == "ymax") p.ymax = parse_finite(val, key);
      else if (key == "initial_timestep") p.initial_timestep = parse_finite(val, key);
      else if (key == "end_step") p.end_step = static_cast<int>(parse_long(val));
      else if (key == "tl_max_iters") p.max_iters = static_cast<int>(parse_long(val));
      else if (key == "tl_eps") p.eps = parse_finite(val, key);
      else if (key == "tl_use_jacobi") p.solver = SolverKind::kJacobi;
      else if (key == "tl_use_cg") p.solver = SolverKind::kCg;
      else if (key == "tl_use_chebyshev") p.solver = SolverKind::kCheby;
      else if (key == "tl_use_ppcg") p.solver = SolverKind::kPpcg;
      else if (key == "tl_ppcg_inner_steps")
        p.ppcg_inner_steps = static_cast<int>(parse_long(val));
      else if (key == "tl_cheby_cg_presteps")
        p.cheby_cg_presteps = static_cast<int>(parse_long(val));
      else if (key == "tl_coefficient_density")
        p.coefficient = CoefficientKind::kDensity;
      else if (key == "tl_coefficient_recip_density")
        p.coefficient = CoefficientKind::kRecipDensity;
      else if (key == "tl_preconditioner_type") {
        if (kv.size() != 2) {
          throw ConfigError("line " + std::to_string(lineno) +
                            ": tl_preconditioner_type needs a value");
        }
        const std::string v = to_lower(kv[1]);
        if (v == "none") p.preconditioner = PreconKind::kNone;
        else if (v == "jac_diag") p.preconditioner = PreconKind::kJacDiag;
        else throw ConfigError("unknown preconditioner '" + v + "'");
      }
      else if (key == "check_result") p.check_result = parse_bool(val);
      else if (key == "halo_depth") p.halo_depth = static_cast<int>(parse_long(val));
      else if (key == "test_problem" || key == "profiler_on" ||
               key == "visit_frequency" || key == "summary_frequency") {
        // Accepted-and-ignored keys from upstream decks.
      } else {
        throw ConfigError("line " + std::to_string(lineno) +
                          ": unknown directive '" + key + "'");
      }
    }
  }

  if (!saw_block) throw ConfigError("deck contains no *tea block");
  if (p.x_cells <= 0 || p.y_cells <= 0) {
    throw ConfigError("mesh dimensions must be positive");
  }
  if (p.xmax <= p.xmin || p.ymax <= p.ymin) {
    throw ConfigError("domain extents must be increasing");
  }
  if (p.initial_timestep <= 0.0) {
    throw ConfigError("initial_timestep must be positive");
  }
  if (p.end_step < 1) throw ConfigError("end_step must be >= 1");
  if (p.eps <= 0.0) throw ConfigError("tl_eps must be positive");
  if (p.max_iters < 1) throw ConfigError("tl_max_iters must be >= 1");
  if (p.ppcg_inner_steps < 1) {
    throw ConfigError("tl_ppcg_inner_steps must be >= 1");
  }
  if (p.cheby_cg_presteps < 1) {
    throw ConfigError("tl_cheby_cg_presteps must be >= 1");
  }
  if (p.halo_depth < 1) throw ConfigError("halo_depth must be >= 1");
  if (p.states.empty()) {
    throw ConfigError("deck must define at least state 1");
  }
  return cfg;
}

Config Config::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot open deck '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

Config Config::default_config() {
  // The shipped TeaLeaf tea.in: a 10x10 physical domain, ambient low-energy
  // material with a dense hot strip along the bottom, CG solver.
  return parse(R"(*tea
state 1 density=100.0 energy=0.0001
state 2 density=0.1 energy=25.0 geometry=rectangle xmin=0.0 xmax=10.0 ymin=0.0 ymax=2.0
x_cells=10
y_cells=10
xmin=0.0 xmax=10.0 ymin=0.0 ymax=10.0
initial_timestep=0.004
end_step=10
tl_max_iters=10000
tl_use_cg
tl_eps=1.0e-15
*endtea
)");
}

std::optional<std::string> Config::raw(const std::string& key) const {
  const auto it = raw_.find(to_lower(key));
  if (it == raw_.end()) return std::nullopt;
  return it->second;
}

std::string to_deck(const ProblemConfig& p) {
  std::ostringstream os;
  // Full precision so parse -> serialize -> parse is the identity on every
  // numeric field (test_decks round-trips all shipped decks through here).
  os.precision(17);
  os << "*tea\n";
  for (const StateConfig& st : p.states) {
    os << "state " << st.index << " density=" << st.density
       << " energy=" << st.energy;
    if (st.index > 1) {
      os << " geometry=" << to_string(st.geometry);
      if (st.geometry == Geometry::kRectangle) {
        os << " xmin=" << st.xmin << " xmax=" << st.xmax << " ymin=" << st.ymin
           << " ymax=" << st.ymax;
      } else if (st.geometry == Geometry::kCircle) {
        os << " xcentre=" << st.cx << " ycentre=" << st.cy
           << " radius=" << st.radius;
      } else {
        os << " xcentre=" << st.cx << " ycentre=" << st.cy;
      }
    }
    os << "\n";
  }
  os << "x_cells=" << p.x_cells << "\n";
  os << "y_cells=" << p.y_cells << "\n";
  os << "xmin=" << p.xmin << " xmax=" << p.xmax << " ymin=" << p.ymin
     << " ymax=" << p.ymax << "\n";
  os << "initial_timestep=" << p.initial_timestep << "\n";
  os << "end_step=" << p.end_step << "\n";
  os << "tl_max_iters=" << p.max_iters << "\n";
  os << "tl_eps=" << p.eps << "\n";
  switch (p.solver) {
    case SolverKind::kJacobi: os << "tl_use_jacobi\n"; break;
    case SolverKind::kCg: os << "tl_use_cg\n"; break;
    case SolverKind::kCheby: os << "tl_use_chebyshev\n"; break;
    case SolverKind::kPpcg: os << "tl_use_ppcg\n"; break;
  }
  if (p.coefficient == CoefficientKind::kDensity) {
    os << "tl_coefficient_density\n";
  }
  os << "tl_preconditioner_type=" << to_string(p.preconditioner) << "\n";
  os << "tl_ppcg_inner_steps=" << p.ppcg_inner_steps << "\n";
  os << "tl_cheby_cg_presteps=" << p.cheby_cg_presteps << "\n";
  os << "halo_depth=" << p.halo_depth << "\n";
  os << "check_result=" << (p.check_result ? "true" : "false") << "\n";
  os << "*endtea\n";
  return os.str();
}

const char* to_string(SolverKind s) {
  switch (s) {
    case SolverKind::kJacobi: return "jacobi";
    case SolverKind::kCg: return "cg";
    case SolverKind::kCheby: return "chebyshev";
    case SolverKind::kPpcg: return "ppcg";
  }
  return "?";
}

const char* to_string(Geometry g) {
  switch (g) {
    case Geometry::kRectangle: return "rectangle";
    case Geometry::kCircle: return "circle";
    case Geometry::kPoint: return "point";
  }
  return "?";
}

const char* to_string(CoefficientKind c) {
  switch (c) {
    case CoefficientKind::kRecipDensity: return "recip_density";
    case CoefficientKind::kDensity: return "density";
  }
  return "?";
}

const char* to_string(PreconKind p) {
  switch (p) {
    case PreconKind::kNone: return "none";
    case PreconKind::kJacDiag: return "jac_diag";
  }
  return "?";
}

SolverKind solver_from_string(const std::string& name) {
  if (name == "jacobi") return SolverKind::kJacobi;
  if (name == "cg") return SolverKind::kCg;
  if (name == "chebyshev") return SolverKind::kCheby;
  if (name == "ppcg") return SolverKind::kPpcg;
  throw ConfigError("unknown solver '" + name + "'");
}

PreconKind precon_from_string(const std::string& name) {
  if (name == "none") return PreconKind::kNone;
  if (name == "jac_diag") return PreconKind::kJacDiag;
  throw ConfigError("unknown preconditioner '" + name + "'");
}

}  // namespace tl
