// rng.hpp — deterministic, seedable PRNG (xoshiro256**) for tests, property
// sweeps and synthetic workload generation.  Not std::mt19937 so results are
// identical across standard libraries.
#pragma once

#include <cstdint>

namespace tl {

class Rng {
public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding, per the xoshiro reference implementation.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n) { return n ? next_u64() % n : 0; }

  /// Uniform integer in [lo, hi] inclusive.
  long uniform_int(long lo, long hi) {
    return lo + static_cast<long>(next_below(
                    static_cast<std::uint64_t>(hi - lo + 1)));
  }

private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace tl
