#include "miniacc/acc.hpp"

#include "common/error.hpp"
#include "machine/instrumentation.hpp"

namespace miniacc {

namespace {
machine::Instrumentation& instr() { return machine::Instrumentation::global(); }
}  // namespace

DataRegion::DataRegion(Target target, simgpu::Device* device,
                       tlp::ThreadPool* pool)
    : target_(target), device_(device), pool_(pool) {
  TL_REQUIRE(target_ == Target::kHost || device_ != nullptr,
             "device target requires a device");
}

DataRegion::~DataRegion() {
  if (target_ != Target::kDevice) return;
  for (auto& [host, m] : mappings_) {
    if (m.copy_out && m.device != nullptr) {
      device_->memcpy_d2h(m.host, m.device, m.count * sizeof(double));
    }
    device_->deallocate(m.device);
  }
}

double* DataRegion::map(tl::span<const double> host, bool copy_in,
                        bool copy_out) {
  double* host_ptr = const_cast<double*>(host.data());
  if (target_ == Target::kHost) return host_ptr;

  const auto it = mappings_.find(host.data());
  if (it != mappings_.end()) {
    it->second.copy_out = it->second.copy_out || copy_out;
    return it->second.device;
  }
  Mapping m;
  m.host = host_ptr;
  m.count = host.size();
  m.copy_out = copy_out;
  m.device = static_cast<double*>(device_->allocate(m.count * sizeof(double)));
  if (copy_in) {
    device_->memcpy_h2d(m.device, host.data(), m.count * sizeof(double));
  }
  mappings_[host.data()] = m;
  return m.device;
}

DataRegion::Mapping& DataRegion::mapping_for(const double* host) {
  const auto it = mappings_.find(host);
  TL_REQUIRE(it != mappings_.end(), "update on pointer not in data region");
  return it->second;
}

double* DataRegion::copyin(tl::span<const double> host) {
  return map(host, /*copy_in=*/true, /*copy_out=*/false);
}

double* DataRegion::copy(tl::span<double> host) {
  return map(host, /*copy_in=*/true, /*copy_out=*/true);
}

double* DataRegion::create(tl::span<double> host) {
  return map(host, /*copy_in=*/false, /*copy_out=*/false);
}

void DataRegion::update_host(tl::span<double> host) {
  if (target_ == Target::kHost) return;
  const Mapping& m = mapping_for(host.data());
  device_->memcpy_d2h(m.host, m.device, m.count * sizeof(double));
}

void DataRegion::update_device(tl::span<const double> host) {
  if (target_ == Target::kHost) return;
  const Mapping& m = mapping_for(host.data());
  device_->memcpy_h2d(m.device, m.host, m.count * sizeof(double));
}

tlp::ThreadPool& DataRegion::pool() {
  return pool_ != nullptr ? *pool_ : tlp::global_pool();
}

void DataRegion::parallel_loop(const std::string& name, long n,
                               const KernelTraffic& traffic,
                               const std::function<void(long)>& body) {
  if (target_ == Target::kDevice) {
    device_->launch_1d(name, n, traffic, body);
    return;
  }
  pool().parallel_for(0, n, [&](long lo, long hi) {
    for (long i = lo; i < hi; ++i) body(i);
  });
  instr().add_launch();
  instr().add_traffic(traffic.bytes_read, traffic.bytes_written, traffic.flops);
}

void DataRegion::parallel_loop_2d(const std::string& name, int nx, int ny,
                                  const KernelTraffic& traffic,
                                  const std::function<void(int, int)>& body) {
  if (target_ == Target::kDevice) {
    device_->launch_2d(name, nx, ny, traffic, body);
    return;
  }
  // collapse(2): work-share the flattened row space.
  pool().parallel_for(0, ny, [&](long jlo, long jhi) {
    for (long j = jlo; j < jhi; ++j) {
      for (int i = 0; i < nx; ++i) body(i, static_cast<int>(j));
    }
  });
  instr().add_launch();
  instr().add_traffic(traffic.bytes_read, traffic.bytes_written, traffic.flops);
}

double DataRegion::parallel_reduce_sum(
    const std::string& name, long n,
    const std::function<double(long)>& value_of) {
  if (target_ == Target::kDevice) {
    return device_->reduce_sum(name, n, value_of);
  }
  const double result = pool().parallel_reduce<double>(
      0, n, 0.0,
      [&](long lo, long hi) {
        double acc = 0.0;
        for (long i = lo; i < hi; ++i) acc += value_of(i);
        return acc;
      },
      [](double a, double b) { return a + b; });
  instr().add_launch();
  instr().add_reduction();
  instr().add_traffic(n * 8, 0, n);
  return result;
}

}  // namespace miniacc
