// acc.hpp — miniacc: an OpenACC-flavoured C++ API (the paper's OpenACC
// substitution, DESIGN.md §2).  OpenACC programs structure offload as
//
//   #pragma acc data copyin(a) copy(b)
//   { #pragma acc parallel loop reduction(+:s) ... }
//
// miniacc mirrors that: a DataRegion implements the data construct (device
// allocation + copyin/copyout at region boundaries), and parallel_loop /
// parallel_reduce_sum implement the loop construct.  The target is chosen at
// region creation — kHost multicore (PGI's -ta=multicore) runs on the tlp
// pool; kDevice (-ta=tesla) runs on the simulated GPU with real H2D/D2H
// traffic.
#pragma once

#include <functional>
#include <map>
#include "common/span.hpp"
#include <string>

#include "simgpu/device.hpp"
#include "threading/thread_pool.hpp"

namespace miniacc {

enum class Target { kHost, kDevice };

using KernelTraffic = simgpu::KernelTraffic;

class DataRegion {
public:
  explicit DataRegion(Target target,
                      simgpu::Device* device = &simgpu::default_device(),
                      tlp::ThreadPool* pool = nullptr);

  /// Region exit: `copy`/`copyout` arrays are written back to the host.
  ~DataRegion();

  DataRegion(const DataRegion&) = delete;
  DataRegion& operator=(const DataRegion&) = delete;

  Target target() const noexcept { return target_; }

  // --- data clauses.  Each returns the pointer loop bodies must use: the
  // host pointer on kHost, the device copy on kDevice. ---

  /// copyin: present on device for the region, not copied back.
  double* copyin(tl::span<const double> host);
  /// copy: copied in now and back out at region exit.
  double* copy(tl::span<double> host);
  /// create: device scratch, never copied either way.
  double* create(tl::span<double> host);

  /// update host(x) directive: refresh the host copy mid-region.
  void update_host(tl::span<double> host);
  /// update device(x) directive.
  void update_device(tl::span<const double> host);

  // --- loop constructs -------------------------------------------------------

  /// `#pragma acc parallel loop` over [0, n).
  void parallel_loop(const std::string& name, long n,
                     const KernelTraffic& traffic,
                     const std::function<void(long)>& body);

  /// `#pragma acc parallel loop collapse(2)` over [0,nx) x [0,ny).
  void parallel_loop_2d(const std::string& name, int nx, int ny,
                        const KernelTraffic& traffic,
                        const std::function<void(int, int)>& body);

  /// `#pragma acc parallel loop reduction(+:sum)`.
  double parallel_reduce_sum(const std::string& name, long n,
                             const std::function<double(long)>& value_of);

private:
  struct Mapping {
    double* host = nullptr;
    double* device = nullptr;
    std::size_t count = 0;
    bool copy_out = false;
  };

  double* map(tl::span<const double> host, bool copy_in, bool copy_out);
  Mapping& mapping_for(const double* host);
  tlp::ThreadPool& pool();

  Target target_;
  simgpu::Device* device_;
  tlp::ThreadPool* pool_;
  std::map<const double*, Mapping> mappings_;
};

}  // namespace miniacc
