#include "service/plan_cache.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "results/json.hpp"
#include "tuning/plan.hpp"

namespace service {

namespace {
constexpr int kCacheSchemaVersion = 1;
}  // namespace

PlanCache::PlanCache(std::size_t capacity, std::string path)
    : capacity_(capacity == 0 ? 1 : capacity), path_(std::move(path)) {}

std::string PlanCache::key_for(const tl::ProblemConfig& problem) {
  return results::problem_key(problem);
}

std::size_t PlanCache::find_locked(const std::string& key) const {
  for (std::size_t i = 0; i < entries_.size(); ++i)
    if (entries_[i].key == key) return i;
  return entries_.size();
}

void PlanCache::touch_locked(std::size_t index) {
  if (index + 1 == entries_.size()) return;  // already MRU
  Entry entry = std::move(entries_[index]);
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(index));
  entries_.push_back(std::move(entry));
}

bool PlanCache::lookup(const std::string& key, tuning::TunedPlan* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t i = find_locked(key);
  if (i == entries_.size()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  touch_locked(i);
  if (out != nullptr) *out = entries_.back().plan;
  return true;
}

void PlanCache::insert(const std::string& key, tuning::TunedPlan plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t i = find_locked(key);
  if (i != entries_.size()) {
    entries_[i].plan = std::move(plan);
    touch_locked(i);
    return;
  }
  entries_.push_back(Entry{key, std::move(plan)});
  while (entries_.size() > capacity_) {
    entries_.erase(entries_.begin());
    ++stats_.evictions;
  }
}

tuning::TunedPlan PlanCache::fetch_or_tune(results::ResultStore& store,
                                           const tl::ProblemConfig& problem,
                                           const tuning::TuneOptions& options) {
  const std::string key = key_for(problem);
  tuning::TunedPlan plan;
  if (lookup(key, &plan)) return plan;

  // Serialise tunes: tuning::tune mutates the shared store and the
  // process-global machine overrides.  Re-check after winning the mutex so
  // concurrent misses on one key cost a single tune.
  std::lock_guard<std::mutex> tune_lock(tune_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t i = find_locked(key);
    if (i != entries_.size()) {
      ++stats_.hits;
      touch_locked(i);
      return entries_.back().plan;
    }
  }
  tuning::TuneOutcome outcome = tuning::tune(store, problem, options);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.tunes;
  }
  insert(key, outcome.plan);
  return outcome.plan;
}

void PlanCache::load() {
  if (path_.empty()) return;
  std::ifstream in(path_);
  if (!in) return;  // no persisted cache yet
  std::stringstream ss;
  ss << in.rdbuf();
  const results::Json doc = results::Json::parse(ss.str());
  const std::int64_t version = doc.get_int("schema_version", -1);
  if (version != kCacheSchemaVersion)
    throw tl::ConfigError("plan cache '" + path_ +
                          "': unsupported schema_version " +
                          std::to_string(version));
  const results::Json* entries = doc.get("entries");
  if (entries == nullptr || !entries->is_array())
    throw tl::ConfigError("plan cache '" + path_ + "': missing entries array");
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  for (const results::Json& ej : entries->items()) {
    const results::Json* plan_json = ej.get("plan");
    if (plan_json == nullptr)
      throw tl::ConfigError("plan cache '" + path_ + "': entry without plan");
    Entry entry;
    entry.key = ej.get_string("key", "");
    if (entry.key.empty())
      throw tl::ConfigError("plan cache '" + path_ + "': entry without key");
    entry.plan = tuning::plan_from_json(*plan_json);
    entries_.push_back(std::move(entry));
    // Respect the bound even if the file was written with a larger one.
    while (entries_.size() > capacity_) {
      entries_.erase(entries_.begin());
      ++stats_.evictions;
    }
  }
}

void PlanCache::save() const {
  if (path_.empty()) return;
  results::Json doc = results::Json::object();
  doc.set("schema_version", kCacheSchemaVersion);
  results::Json entries = results::Json::array();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Persist key-sorted, not in LRU order: recency depends on which worker
    // touched an entry last, and the service-smoke byte-compare must not
    // depend on scheduling.  Recency is session-local; a reloaded cache
    // starts with sorted (arbitrary but stable) recency.
    std::vector<const Entry*> sorted;
    sorted.reserve(entries_.size());
    for (const Entry& entry : entries_) sorted.push_back(&entry);
    std::sort(sorted.begin(), sorted.end(),
              [](const Entry* a, const Entry* b) { return a->key < b->key; });
    for (const Entry* entry : sorted) {
      results::Json ej = results::Json::object();
      ej.set("key", entry->key);
      ej.set("plan", tuning::plan_to_json(entry->plan));
      entries.push_back(std::move(ej));
    }
  }
  doc.set("entries", std::move(entries));
  std::ofstream out(path_);
  if (!out)
    throw tl::Error("plan cache: cannot write '" + path_ + "'");
  out << doc.dump() << "\n";
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace service
