#include "service/replay.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <utility>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "results/json.hpp"

namespace service {

double latency_percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  q = std::min(1.0, std::max(0.0, q));
  const auto index = static_cast<std::size_t>(
      std::floor(q * static_cast<double>(samples.size() - 1) + 0.5));
  return samples[index];
}

std::vector<SolveRequest> requests_from_gen(const gen::GenOptions& options) {
  std::vector<SolveRequest> requests;
  for (const gen::GeneratedDeck& deck : gen::generate(options)) {
    SolveRequest request;
    request.label = deck.name;
    request.problem = deck.problem;
    requests.push_back(std::move(request));
  }
  return requests;
}

std::vector<SolveRequest> requests_from_population(
    const std::vector<results::SweepProblem>& population) {
  std::vector<SolveRequest> requests;
  for (const results::SweepProblem& member : population) {
    SolveRequest request;
    request.label = member.label;
    request.problem = member.problem;
    requests.push_back(std::move(request));
  }
  return requests;
}

ReplayReport run_replay(SolveService& service,
                        const std::vector<SolveRequest>& requests,
                        int repeats) {
  service.start();
  ReplayReport report;
  if (requests.empty() || repeats < 1) return report;

  std::deque<Ticket> outstanding;
  const auto drain_oldest = [&] {
    report.responses.push_back(service.wait(outstanding.front()));
    outstanding.pop_front();
  };

  const tl::StopWatch watch;
  for (int round = 0; round < repeats; ++round) {
    for (const SolveRequest& request : requests) {
      for (;;) {
        Ticket ticket = service.submit(request);
        if (ticket != nullptr) {
          outstanding.push_back(std::move(ticket));
          break;
        }
        // Queue full: backpressure.  Draining one response frees at least
        // one slot (a worker has necessarily popped a group by then).
        ++report.backpressure_rejects;
        if (outstanding.empty())
          throw tl::Error(
              "replay: admission refused with no outstanding work "
              "(service shut down?)");
        drain_oldest();
      }
    }
  }
  while (!outstanding.empty()) drain_oldest();
  report.wall_seconds = watch.seconds();

  std::vector<double> latencies;
  latencies.reserve(report.responses.size());
  for (const SolveResponse& response : report.responses)
    latencies.push_back(response.latency_seconds);
  report.p50_s = latency_percentile(latencies, 0.50);
  report.p99_s = latency_percentile(latencies, 0.99);
  report.throughput_sps =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.responses.size()) / report.wall_seconds
          : 0.0;
  report.stats = service.stats();
  return report;
}

std::string golden_responses_json(const std::vector<SolveResponse>& responses) {
  results::Json array = results::Json::array();
  for (const SolveResponse& response : responses) {
    results::Json entry = results::Json::object();
    entry.set("label", response.label);
    entry.set("key", response.key);
    entry.set("variant", response.variant);
    entry.set("converged", response.converged);
    entry.set("iterations", static_cast<std::int64_t>(response.iterations));
    entry.set("inner_iterations",
              static_cast<std::int64_t>(response.inner_iterations));
    entry.set("initial_rr", response.initial_rr);
    entry.set("final_rr", response.final_rr);
    entry.set("final_temperature", response.final_temperature);
    if (!response.error.empty()) entry.set("error", response.error);
    array.push_back(std::move(entry));
  }
  return array.dump(2) + "\n";
}

}  // namespace service
