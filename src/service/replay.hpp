// replay.hpp — synthetic traffic replay over a SolveService.
//
// The one traffic driver shared by the tead CLI and bench_service_throughput:
// submit a request list `repeats` times in order, apply backpressure when
// admission refuses (wait for the oldest outstanding response, then retry),
// and report end-to-end throughput plus the latency distribution.  Traffic
// comes from the deck generator (gen/generator.hpp) so a seed fully
// determines the workload — including the --stress hostile corner, which is
// the tail-latency case the bench persists.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gen/generator.hpp"
#include "results/sweep.hpp"
#include "service/service.hpp"

namespace service {

struct ReplayReport {
  std::vector<SolveResponse> responses;  // submission order
  double wall_seconds = 0.0;     // first submit -> last response
  double throughput_sps = 0.0;   // responses / wall_seconds
  double p50_s = 0.0;            // latency percentiles over all responses
  double p99_s = 0.0;
  long backpressure_rejects = 0;  // admissions refused then retried
  ServiceStats stats;             // service stats at replay end

  bool all_ok() const {
    for (const SolveResponse& r : responses)
      if (!r.ok()) return false;
    return !responses.empty();
  }
};

/// Replay `requests` x `repeats` through `service` (started if necessary).
/// Submission is single-producer and in order; rejected submissions retry
/// after draining the oldest outstanding ticket, so every request is
/// eventually served and the queue bound shows up as backpressure_rejects
/// rather than lost work.
ReplayReport run_replay(SolveService& service,
                        const std::vector<SolveRequest>& requests,
                        int repeats = 1);

/// Deterministic replay traffic from the deck generator: one request per
/// generated deck, labelled with the deck name.
std::vector<SolveRequest> requests_from_gen(const gen::GenOptions& options);

/// Requests from an existing sweep population (label + problem pairs).
std::vector<SolveRequest> requests_from_population(
    const std::vector<results::SweepProblem>& population);

/// Nearest-rank percentile of `samples` (q in [0,1]); 0 when empty.
double latency_percentile(std::vector<double> samples, double q);

/// The golden quantities of a response list as deterministic JSON: label,
/// key, variant, convergence, iteration counts, residuals and the conserved
/// temperature — no timings, no batch sizes, nothing scheduling-dependent.
/// `tead --out` and `teactl solve --out` both write this, so the net-smoke
/// CI gate can `cmp` a networked replay against the in-process replay of
/// the same population byte for byte.
std::string golden_responses_json(const std::vector<SolveResponse>& responses);

}  // namespace service
