// service.hpp — the tead solve service: a long-running, in-process daemon
// that accepts TeaLeaf solve requests, admits them into a bounded queue,
// and executes them on a sharded worker pool.
//
// The service is the deployment story for everything the repo has grown so
// far: requests are keyed by the result store's canonical problem hash
// (results::problem_key), each distinct problem is tuned once through
// tuning::tune and the TunedPlan cached (plan_cache.hpp), and back-to-back
// requests for the same problem are *batched* — popped from the queue
// together, resolved against one plan, and solved on the worker's pooled
// FieldStore arena so the field slab (and its NUMA first-touch placement)
// is allocated once and reused.
//
// Sharding: each worker owns its own tlp::ThreadPool, tea::FieldArena and
// simgpu::Device.  A solve never crosses workers, so slabs are always
// re-touched by the pool that first touched them and there is no allocator
// contention between workers; device-variant plans run against the shard's
// own Device (bound via simgpu::DeviceScope), so concurrent shards never
// interleave device allocations or serialize on one device mutex.  One
// consequence, documented here deliberately: the service runs a tuned
// plan's *variant/solver/preconditioner/fusion* choice but executes
// shared-memory variants on the worker's fixed-size pool rather than the
// plan's measured thread count — worker shard sizes are a deployment
// decision, and the 4-lane reduction contract (row_reduce4) makes results
// bit-identical across thread counts, so only throughput, not numerics,
// depends on the shard size.  Only distributed winners still fall back to
// run_simulation's own SPMD world (counted in ServiceStats.fallback_solves).
//
// Determinism contract (asserted by tests/test_service.cpp): a batched
// solve is bit-identical to the same problem solved sequentially — batching
// amortises plan resolution and allocation, never changes numerics.
//
// Library-first: tests and benches drive SolveService in-process;
// tools/tead.cpp is a thin CLI frontend over run_replay (replay.hpp).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "core/backends/field_arena.hpp"
#include "core/registry.hpp"
#include "results/result_store.hpp"
#include "service/plan_cache.hpp"
#include "simgpu/device.hpp"
#include "threading/task_queue.hpp"
#include "threading/thread_pool.hpp"
#include "tuning/search.hpp"

namespace service {

struct ServiceOptions {
  int workers = 2;             // consumer threads, each with pool + arena
  int threads_per_worker = 2;  // solve-pool width of each worker shard
  std::size_t queue_capacity = 64;  // admission bound; try_push refuses past it
  std::size_t max_batch = 4;        // max same-key requests popped together

  // Plan resolution.  With tuning enabled each distinct problem key is
  // tuned once (tuning::tune against `store`) and cached; without it every
  // request runs the deck's own solver/preconditioner on default_variant —
  // the portable mode CI gates on, since tuned winners are machine-local.
  bool enable_tuning = true;
  std::string default_variant = "manual-omp";
  tuning::TuneOptions tune;  // deck_label is overridden per problem key
  std::size_t plan_cache_capacity = 32;
  std::string plan_cache_path;  // "" = in-memory only
};

struct SolveRequest {
  tl::ProblemConfig problem;
  std::string label = "req";
};

struct SolveResponse {
  std::string label;
  std::string key;      // canonical problem key (results::problem_key)
  std::string variant;  // backend variant actually executed

  // Solve outcome — the golden quantities: bit-comparable against a
  // sequential tea::run_simulation of the same problem.
  bool converged = false;
  long iterations = 0;
  long inner_iterations = 0;
  double initial_rr = 0.0;  // first step's ||r0||^2
  double final_rr = 0.0;    // last step's exit ||r||^2
  double final_temperature = 0.0;  // conserved-quantity summary

  // Service-side timing.
  double solve_seconds = 0.0;    // wall inside the driver run
  double queue_seconds = 0.0;    // admission -> dequeue
  double latency_seconds = 0.0;  // admission -> response ready
  int batch_size = 1;            // size of the group this request rode in

  std::string error;  // non-empty when the solve threw; outcome fields unset
  bool ok() const { return error.empty(); }
};

/// Completion handle for one admitted request; returned null on rejection.
struct TicketState {
  std::mutex mutex;
  std::condition_variable done_cv;
  bool done = false;
  SolveResponse response;
};
using Ticket = std::shared_ptr<TicketState>;

/// Optional push-style completion hook: invoked exactly once per admitted
/// request, after its ticket is fulfilled (including the shutdown-drain
/// error path), from whichever thread completed it.  The non-blocking net
/// frontend (src/net) uses this to wake its event loop instead of parking a
/// thread per request in wait().  The callback must not re-enter the
/// service.
using CompletionFn = std::function<void(const SolveResponse&)>;

struct ServiceStats {
  long submitted = 0;       // requests admitted
  long rejected = 0;        // requests refused at the queue bound
  long completed = 0;       // responses delivered
  long batches = 0;         // queue groups executed
  long batched_solves = 0;  // solves that shared a group of size > 1
  long fallback_solves = 0; // solves not executed on the shard (distributed
                            // winners go through run_simulation's SPMD world)
  PlanCacheStats plan;      // hits/misses/tunes/evictions
  tea::FieldArena::Stats arena;  // slab allocations vs reuses, all workers
};

class SolveService {
public:
  /// `store` backs tune measurements and must outlive the service; it may
  /// be null only when options.enable_tuning is false (throws otherwise).
  /// The constructor does NOT start workers: submit() already admits
  /// requests, so tests can fill the queue deterministically before any
  /// consumer runs.  Call start() to begin solving.
  explicit SolveService(ServiceOptions options,
                        results::ResultStore* store = nullptr);
  ~SolveService();  // shutdown()

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Admission control: returns a null Ticket when the queue is at
  /// capacity or the service is shut down.  Never blocks.  A non-null
  /// `on_complete` is invoked once when the request finishes (rejected
  /// submissions never fire it — the null return IS the rejection signal).
  Ticket submit(SolveRequest request, CompletionFn on_complete = nullptr);

  /// Block until `ticket`'s solve completes and return its response.
  SolveResponse wait(const Ticket& ticket) const;

  /// Spawn the worker shards (idempotent).
  void start();

  /// Stop admissions, drain every queued request, join the workers.  Safe
  /// to call repeatedly; the destructor calls it.  After shutdown the
  /// persisted plan cache (if configured) has been saved.
  void shutdown();

  /// Thread-safe snapshot: callable from any thread (the net frontend's
  /// event loop serves it as the STATS frame) concurrently with start(),
  /// submit() and the worker shards.
  ServiceStats stats() const;
  PlanCache& plan_cache() { return plan_cache_; }
  const ServiceOptions& options() const { return options_; }

private:
  using Clock = std::chrono::steady_clock;

  struct QueuedRequest {
    SolveRequest request;
    std::string key;
    Clock::time_point submitted;
    Ticket ticket;
    CompletionFn on_complete;
  };

  /// Fulfil `queued`'s ticket with `response` and fire its completion hook.
  static void deliver(QueuedRequest& queued, SolveResponse response);

  struct Worker {
    std::unique_ptr<tlp::ThreadPool> pool;
    tea::FieldArena arena;
    // Shard-local simulated device for device-variant plans, sized from the
    // machine model and running kernels on this shard's pool.
    std::unique_ptr<simgpu::Device> device;
    std::thread thread;
  };

  /// The execution configuration a batch runs under: plan applied (or the
  /// no-tune deck defaults), ready for execute().
  struct ResolvedPlan {
    std::string variant;
    tl::ProblemConfig problem;
    tea::RunOptions run;
  };

  void worker_loop(Worker& worker);
  ResolvedPlan resolve(const tl::ProblemConfig& problem,
                       const std::string& key);
  tea::RunResult execute(const ResolvedPlan& plan, Worker& worker);

  ServiceOptions options_;
  results::ResultStore* store_;
  PlanCache plan_cache_;
  tlp::BoundedTaskQueue<QueuedRequest> queue_;
  std::vector<std::unique_ptr<Worker>> workers_;
  // Guards start/shutdown transitions and the workers_ vector (stats()
  // walks it concurrently with start()).
  mutable std::mutex lifecycle_mutex_;
  bool started_ = false;
  bool shut_down_ = false;

  std::atomic<long> submitted_{0};
  std::atomic<long> rejected_{0};
  std::atomic<long> completed_{0};
  std::atomic<long> batches_{0};
  std::atomic<long> batched_solves_{0};
  std::atomic<long> fallback_solves_{0};
};

}  // namespace service
