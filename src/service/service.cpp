#include "service/service.hpp"

#include <algorithm>
#include <exception>
#include <optional>
#include <utility>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/backends/manual_host.hpp"
#include "core/driver.hpp"
#include "machine/machine_model.hpp"
#include "tuning/plan.hpp"

namespace service {

namespace {

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Shard-device capacity from the machine model (GiB semantics, matching
/// simgpu::Device's default).
std::size_t shard_device_capacity() {
  const double gb = machine::device_machine().mem_capacity_gb;
  if (!(gb > 0.0)) return std::size_t(16) << 30;
  return static_cast<std::size_t>(gb) << 30;
}

}  // namespace

SolveService::SolveService(ServiceOptions options, results::ResultStore* store)
    : options_(std::move(options)),
      store_(store),
      plan_cache_(options_.plan_cache_capacity, options_.plan_cache_path),
      queue_(options_.queue_capacity) {
  if (options_.enable_tuning && store_ == nullptr)
    throw tl::ConfigError(
        "SolveService: tuning enabled but no result store supplied");
  if (options_.workers < 1)
    throw tl::ConfigError("SolveService: need at least one worker");
  plan_cache_.load();
}

SolveService::~SolveService() { shutdown(); }

Ticket SolveService::submit(SolveRequest request, CompletionFn on_complete) {
  QueuedRequest queued;
  queued.key = PlanCache::key_for(request.problem);
  queued.submitted = Clock::now();
  queued.ticket = std::make_shared<TicketState>();
  queued.on_complete = std::move(on_complete);
  queued.request = std::move(request);
  Ticket ticket = queued.ticket;
  if (!queue_.try_push(std::move(queued))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return ticket;
}

SolveResponse SolveService::wait(const Ticket& ticket) const {
  TL_REQUIRE(ticket != nullptr, "wait() on a rejected (null) ticket");
  std::unique_lock<std::mutex> lock(ticket->mutex);
  ticket->done_cv.wait(lock, [&] { return ticket->done; });
  return ticket->response;
}

void SolveService::start() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (started_ || shut_down_) return;
  started_ = true;
  for (int w = 0; w < options_.workers; ++w) {
    auto worker = std::make_unique<Worker>();
    worker->pool =
        std::make_unique<tlp::ThreadPool>(std::max(1, options_.threads_per_worker));
    worker->device = std::make_unique<simgpu::Device>(shard_device_capacity(),
                                                      worker->pool.get());
    Worker* raw = worker.get();
    worker->thread = std::thread([this, raw] { worker_loop(*raw); });
    workers_.push_back(std::move(worker));
  }
}

void SolveService::shutdown() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (shut_down_) return;
  shut_down_ = true;
  queue_.close();  // refuse new admissions; queued requests drain
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  // Without workers (never started), fail whatever is still queued so
  // wait() never deadlocks on a drained-but-unserved ticket.
  for (QueuedRequest& dropped : queue_.close_and_drain()) {
    SolveResponse response;
    response.label = dropped.request.label;
    response.key = dropped.key;
    response.error = "service shut down before the request was served";
    deliver(dropped, std::move(response));
  }
  plan_cache_.save();
}

void SolveService::deliver(QueuedRequest& queued, SolveResponse response) {
  // The completion hook gets its own copy before the ticket takes
  // ownership: once done flips, a wait()er may be reading the response.
  if (queued.on_complete) queued.on_complete(response);
  {
    std::lock_guard<std::mutex> ticket_lock(queued.ticket->mutex);
    queued.ticket->response = std::move(response);
    queued.ticket->done = true;
  }
  queued.ticket->done_cv.notify_all();
}

SolveService::ResolvedPlan SolveService::resolve(
    const tl::ProblemConfig& problem, const std::string& key) {
  ResolvedPlan resolved;
  resolved.problem = problem;
  if (!options_.enable_tuning) {
    // Portable mode: the deck's own solver/preconditioner on the default
    // variant.  This is what CI gates with exact counters — tuned winners
    // are machine-local, deck defaults are not.
    resolved.variant = options_.default_variant;
    resolved.run.threads = options_.threads_per_worker;
    return resolved;
  }
  tuning::TuneOptions tune_options = options_.tune;
  // Deterministic per-problem label: plan rows and cache bytes must not
  // depend on which request's label reached the tuner first.
  tune_options.deck_label = "svc-" + key.substr(0, 12);
  const tuning::TunedPlan plan =
      plan_cache_.fetch_or_tune(*store_, problem, tune_options);
  // Mesh-aware application: a plan carrying a device-choice table runs the
  // request on whichever side of the crossover its mesh falls.
  resolved.variant =
      tuning::apply_plan_for_mesh(plan, &resolved.problem, &resolved.run);
  return resolved;
}

tea::RunResult SolveService::execute(const ResolvedPlan& plan,
                                     Worker& worker) {
  // Host-family variants run through the worker's own shard: its pool for
  // threading, its arena for the field slab.
  if (plan.variant == "serial" || plan.variant == "manual-omp") {
    const tea::TeaDriver driver(plan.problem);
    tea::ManualHostBackend backend(
        plan.variant, plan.variant == "serial" ? nullptr : worker.pool.get(),
        nullptr, &worker.arena);
    backend.set_fused_operator_dot(plan.run.fuse_operator_dot);
    return driver.run(backend);
  }
  // Every other shared-memory variant — device-variant plans included —
  // also executes on the shard: its pool runs the kernels, and a
  // DeviceScope binds this worker thread to the shard's own Device for the
  // whole backend lifetime (construction, kernels, destruction), so
  // concurrent shards never share device state.
  if (!tea::backend_is_distributed(plan.variant)) {
    const tea::TeaDriver driver(plan.problem);
    std::optional<simgpu::DeviceScope> device_scope;
    if (tea::backend_is_gpu(plan.variant)) {
      device_scope.emplace(worker.device.get());
    }
    const auto backend =
        tea::make_backend(plan.variant, worker.pool.get(), plan.run);
    backend->set_fused_operator_dot(plan.run.fuse_operator_dot);
    return driver.run(*backend);
  }
  // Distributed winners need run_simulation's SPMD world; counted so
  // deployments can see plans escaping the shard path.
  fallback_solves_.fetch_add(1, std::memory_order_relaxed);
  return tea::run_simulation(plan.variant, plan.problem, plan.run);
}

void SolveService::worker_loop(Worker& worker) {
  for (;;) {
    std::vector<QueuedRequest> group = queue_.pop_group(
        options_.max_batch, [](const QueuedRequest& head,
                               const QueuedRequest& other) {
          return head.key == other.key;
        });
    if (group.empty()) return;  // closed and drained

    batches_.fetch_add(1, std::memory_order_relaxed);
    if (group.size() > 1)
      batched_solves_.fetch_add(static_cast<long>(group.size()),
                                std::memory_order_relaxed);

    // One plan resolution per group: same key means byte-identical
    // canonical problem, so the head's plan serves every member.
    ResolvedPlan plan;
    std::string resolve_error;
    try {
      plan = resolve(group.front().request.problem, group.front().key);
    } catch (const std::exception& e) {
      resolve_error = e.what();
    }

    const Clock::time_point dequeued = Clock::now();
    for (QueuedRequest& queued : group) {
      SolveResponse response;
      response.label = queued.request.label;
      response.key = queued.key;
      response.variant = plan.variant;
      response.batch_size = static_cast<int>(group.size());
      response.queue_seconds = seconds_between(queued.submitted, dequeued);
      if (!resolve_error.empty()) {
        response.error = "plan resolution failed: " + resolve_error;
      } else {
        try {
          const tl::StopWatch watch;
          const tea::RunResult result = execute(plan, worker);
          response.solve_seconds = watch.seconds();
          response.converged = result.all_converged();
          response.iterations = result.total_iterations;
          for (const tea::StepResult& step : result.steps)
            response.inner_iterations += step.solve.inner_iterations;
          if (!result.steps.empty()) {
            response.initial_rr = result.steps.front().solve.initial_rr;
            response.final_rr = result.steps.back().solve.final_rr;
          }
          response.final_temperature = result.final_summary.temp;
        } catch (const std::exception& e) {
          response.error = e.what();
        }
      }
      response.latency_seconds =
          seconds_between(queued.submitted, Clock::now());
      deliver(queued, std::move(response));
      completed_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

ServiceStats SolveService::stats() const {
  ServiceStats out;
  out.submitted = submitted_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.completed = completed_.load(std::memory_order_relaxed);
  out.batches = batches_.load(std::memory_order_relaxed);
  out.batched_solves = batched_solves_.load(std::memory_order_relaxed);
  out.fallback_solves = fallback_solves_.load(std::memory_order_relaxed);
  out.plan = plan_cache_.stats();
  // workers_ grows under lifecycle_mutex_ in start(); hold it so a stats
  // snapshot taken from the net event loop never races the spawn.
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  for (const auto& worker : workers_) {
    const tea::FieldArena::Stats arena = worker->arena.stats();
    out.arena.allocated += arena.allocated;
    out.arena.reused += arena.reused;
  }
  return out;
}

}  // namespace service
