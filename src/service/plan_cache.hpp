// plan_cache.hpp — per-deck TunedPlan cache for the solve service.
//
// Every request entering the service is keyed by the result store's
// canonical problem hash (results::problem_key) — the same keying scheme
// the store and the tuner use, so "the plan for this deck" means exactly
// "the plan tuned against this store row family".  A hit returns the stored
// plan bits unchanged; a miss runs tuning::tune and caches the outcome.
// Because tune() is a pure function of (store contents, problem, options),
// re-populating a cache against the same store reproduces bit-identical
// plans — the warm-pass determinism the service-smoke CI job asserts by
// byte-comparing the persisted cache file across passes.
//
// The cache is LRU-bounded in memory; its persisted form lists entries
// key-sorted, so the file's bytes depend only on the entry set and the plan
// bits — never on which worker touched an entry last.  Tunes are serialised
// behind a single mutex: tuning::tune mutates process-global machine
// overrides and the shared result store, neither of which tolerates
// concurrent tunes.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "results/result_store.hpp"
#include "tuning/search.hpp"

namespace service {

struct PlanCacheStats {
  long hits = 0;       // fetch_or_tune served from cache
  long misses = 0;     // fetch_or_tune had to tune (or wait for one)
  long tunes = 0;      // tuning::tune actually executed
  long evictions = 0;  // entries dropped by the LRU bound
};

class PlanCache {
public:
  /// `capacity` bounds the entry count (>= 1); `path` is where load()/save()
  /// persist the cache — empty disables persistence.  By convention the
  /// service puts the cache next to its result store ("<store>.plans.json").
  explicit PlanCache(std::size_t capacity, std::string path = "");

  /// Canonical request key: the store's problem hash.
  static std::string key_for(const tl::ProblemConfig& problem);

  /// The service entry point.  Cache hit: return the stored plan (moved to
  /// most-recently-used).  Miss: run tuning::tune against `store` under the
  /// tune mutex, insert, and return the fresh plan.  Two workers missing on
  /// the same key concurrently perform one tune: the loser of the mutex race
  /// re-checks the cache before tuning.
  tuning::TunedPlan fetch_or_tune(results::ResultStore& store,
                                  const tl::ProblemConfig& problem,
                                  const tuning::TuneOptions& options);

  /// Direct lookup without tuning; counts as a hit when found.
  bool lookup(const std::string& key, tuning::TunedPlan* out);

  /// Insert (or overwrite) an entry as most-recently-used, evicting the
  /// least-recently-used entry when over capacity.
  void insert(const std::string& key, tuning::TunedPlan plan);

  /// Read entries persisted by save(); silently a no-op when the path is
  /// empty or the file does not exist, throws tl::ConfigError on a
  /// malformed or schema-incompatible file.
  void load();
  /// Persist entries (key-sorted) to the path; no-op when empty.
  void save() const;

  PlanCacheStats stats() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  const std::string& path() const { return path_; }

private:
  struct Entry {
    std::string key;
    tuning::TunedPlan plan;
  };

  // Caller must hold mutex_.  Returns entries_.size() on miss.
  std::size_t find_locked(const std::string& key) const;
  void touch_locked(std::size_t index);  // move to MRU (back)

  const std::size_t capacity_;
  const std::string path_;
  mutable std::mutex mutex_;
  std::mutex tune_mutex_;  // serialises tuning::tune across workers
  std::vector<Entry> entries_;  // LRU at front, MRU at back
  PlanCacheStats stats_;
};

}  // namespace service
