// device_buffer.hpp — typed RAII wrapper over a simgpu device allocation,
// with explicit upload/download (cudaMemcpy discipline).
#pragma once

#include "common/span.hpp"

#include "common/error.hpp"
#include "common/span2d.hpp"
#include "simgpu/device.hpp"

namespace simgpu {

template <typename T>
class DeviceBuffer {
public:
  DeviceBuffer() = default;

  DeviceBuffer(Device& device, std::size_t count)
      : device_(&device),
        count_(count),
        data_(static_cast<T*>(device.allocate(count * sizeof(T)))) {}

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  DeviceBuffer(DeviceBuffer&& o) noexcept { swap(o); }
  DeviceBuffer& operator=(DeviceBuffer&& o) noexcept {
    if (this != &o) {
      release();
      swap(o);
    }
    return *this;
  }

  ~DeviceBuffer() { release(); }

  void swap(DeviceBuffer& o) noexcept {
    std::swap(device_, o.device_);
    std::swap(count_, o.count_);
    std::swap(data_, o.data_);
  }

  /// Device pointer — valid to dereference only inside kernels.
  T* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

  void upload(tl::span<const T> host) {
    TL_REQUIRE(host.size() <= count_, "upload larger than device buffer");
    device_->memcpy_h2d(data_, host.data(), host.size_bytes());
  }

  void download(tl::span<T> host) const {
    TL_REQUIRE(host.size() <= count_, "download larger than device buffer");
    device_->memcpy_d2h(host.data(), data_, host.size_bytes());
  }

  /// 2D view for kernel code (device-side indexing).
  tl::Span2D<T> span2d(int nx, int ny) const {
    TL_REQUIRE(static_cast<std::size_t>(nx) * ny <= count_,
               "span2d dimensions exceed device buffer");
    return tl::Span2D<T>(data_, nx, ny);
  }

private:
  void release() noexcept {
    if (data_ != nullptr && device_ != nullptr) {
      device_->deallocate(data_);
    }
    data_ = nullptr;
    count_ = 0;
    device_ = nullptr;
  }

  Device* device_ = nullptr;
  std::size_t count_ = 0;
  T* data_ = nullptr;
};

}  // namespace simgpu
