// dim3.hpp — CUDA-style launch geometry for the simulated GPU.
#pragma once

namespace simgpu {

struct Dim3 {
  int x = 1;
  int y = 1;
  int z = 1;

  long count() const {
    return static_cast<long>(x) * static_cast<long>(y) * static_cast<long>(z);
  }
};

/// Ceiling division used to size grids, as CUDA codes do.
inline int div_up(int n, int block) { return (n + block - 1) / block; }

/// Per-element kernel coordinates (blockIdx/threadIdx equivalents are
/// recoverable from these plus the block dims, but kernels in this codebase
/// consume the global index directly, as TeaLeaf's CUDA kernels do after
/// their first line `i = blockIdx.x*blockDim.x + threadIdx.x`).
struct GlobalIndex {
  int x = 0;
  int y = 0;
};

}  // namespace simgpu
