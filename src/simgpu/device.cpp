#include "simgpu/device.hpp"

#include <cstring>
#include <new>
#include <vector>

#include "common/error.hpp"

namespace simgpu {

namespace {
machine::Instrumentation& instr() { return machine::Instrumentation::global(); }
}  // namespace

Device::Device(std::size_t memory_capacity, tlp::ThreadPool* pool)
    : capacity_(memory_capacity), pool_(pool) {}

Device::~Device() {
  // Leak any outstanding allocations' bookkeeping but free the memory: a
  // destructor must not throw, and DeviceBuffer handles the normal path.
  for (auto& [ptr, bytes] : allocations_) {
    ::operator delete(const_cast<void*>(ptr), std::align_val_t(64));
  }
}

tlp::ThreadPool& Device::pool() {
  return pool_ != nullptr ? *pool_ : tlp::global_pool();
}

void* Device::allocate(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Overflow-safe capacity check: `allocated_ + bytes` wraps for huge
  // requests (e.g. SIZE_MAX), which would make them look like they fit.
  if (bytes > capacity_ - allocated_) {
    throw tl::DeviceError("device out of memory: requested " +
                          std::to_string(bytes) + " bytes with " +
                          std::to_string(capacity_ - allocated_) +
                          " available");
  }
  void* ptr = ::operator new(bytes == 0 ? 1 : bytes, std::align_val_t(64));
  allocations_[ptr] = bytes;
  allocated_ += bytes;
  return ptr;
}

void Device::deallocate(void* ptr) {
  if (ptr == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = allocations_.find(ptr);
  TL_REQUIRE(it != allocations_.end(), "deallocate of non-device pointer");
  allocated_ -= it->second;
  allocations_.erase(it);
  ::operator delete(ptr, std::align_val_t(64));
}

std::size_t Device::bytes_allocated() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return allocated_;
}

void Device::check_device_ptr(const void* ptr, std::size_t bytes,
                              const char* what) const {
  std::lock_guard<std::mutex> lock(mutex_);
  // The pointer must lie inside a live allocation.
  auto it = allocations_.upper_bound(ptr);
  if (it != allocations_.begin()) {
    --it;
    const auto* base = static_cast<const unsigned char*>(it->first);
    const auto* p = static_cast<const unsigned char*>(ptr);
    if (p >= base && p + bytes <= base + it->second) return;
  }
  throw tl::DeviceError(std::string(what) +
                        ": pointer is not (entirely) device memory");
}

void Device::memcpy_h2d(void* dst_device, const void* src_host,
                        std::size_t bytes) {
  check_device_ptr(dst_device, bytes, "memcpy_h2d dst");
  std::memcpy(dst_device, src_host, bytes);
  instr().add_h2d(static_cast<std::int64_t>(bytes));
}

void Device::memcpy_d2h(void* dst_host, const void* src_device,
                        std::size_t bytes) {
  check_device_ptr(src_device, bytes, "memcpy_d2h src");
  std::memcpy(dst_host, src_device, bytes);
  instr().add_d2h(static_cast<std::int64_t>(bytes));
}

void Device::memcpy_d2d(void* dst_device, const void* src_device,
                        std::size_t bytes) {
  check_device_ptr(dst_device, bytes, "memcpy_d2d dst");
  check_device_ptr(src_device, bytes, "memcpy_d2d src");
  std::memmove(dst_device, src_device, bytes);
  instr().add_traffic(static_cast<std::int64_t>(bytes),
                      static_cast<std::int64_t>(bytes), 0);
}

void Device::set_block_size(int bx, int by) {
  TL_REQUIRE(bx > 0 && by > 0, "block size must be positive");
  block_ = Dim3{bx, by, 1};
}

void Device::launch_1d(const std::string& name, long n,
                       const KernelTraffic& traffic,
                       const std::function<void(long)>& body) {
  (void)name;
  if (n <= 0) return;
  const long block = static_cast<long>(block_.x) * block_.y;
  const long grid = (n + block - 1) / block;
  // Blocks are scheduled across workers like SMs pick up thread blocks.
  pool().parallel_for(0, grid, [&](long blo, long bhi) {
    for (long b = blo; b < bhi; ++b) {
      const long lo = b * block;
      const long hi = std::min(lo + block, n);
      for (long i = lo; i < hi; ++i) body(i);
    }
  });
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++launches_;
  }
  instr().add_launch();
  instr().add_traffic(traffic.bytes_read, traffic.bytes_written, traffic.flops);
}

void Device::launch_2d(const std::string& name, int nx, int ny,
                       const KernelTraffic& traffic,
                       const std::function<void(int, int)>& body) {
  (void)name;
  if (nx <= 0 || ny <= 0) return;
  const int gx = div_up(nx, block_.x);
  const int gy = div_up(ny, block_.y);
  const long blocks = static_cast<long>(gx) * gy;
  pool().parallel_for(0, blocks, [&](long blo, long bhi) {
    for (long b = blo; b < bhi; ++b) {
      const int bx = static_cast<int>(b % gx);
      const int by = static_cast<int>(b / gx);
      const int x0 = bx * block_.x;
      const int y0 = by * block_.y;
      const int x1 = std::min(x0 + block_.x, nx);
      const int y1 = std::min(y0 + block_.y, ny);
      for (int j = y0; j < y1; ++j) {
        for (int i = x0; i < x1; ++i) body(i, j);
      }
    }
  });
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++launches_;
  }
  instr().add_launch();
  instr().add_traffic(traffic.bytes_read, traffic.bytes_written, traffic.flops);
}

double Device::reduce_sum(const std::string& name, long n,
                          const std::function<double(long)>& value_of) {
  (void)name;
  if (n <= 0) return 0.0;
  const long block = static_cast<long>(block_.x) * block_.y;
  const long grid = (n + block - 1) / block;
  std::vector<double> partials(static_cast<std::size_t>(grid), 0.0);
  pool().parallel_for(0, grid, [&](long blo, long bhi) {
    for (long b = blo; b < bhi; ++b) {
      const long lo = b * block;
      const long hi = std::min(lo + block, n);
      double acc = 0.0;
      for (long i = lo; i < hi; ++i) acc += value_of(i);
      partials[static_cast<std::size_t>(b)] = acc;
    }
  });
  // Final pass in block order: deterministic for fixed geometry.
  double total = 0.0;
  for (const double p : partials) total += p;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    launches_ += 2;  // partial kernel + final-reduce kernel
  }
  instr().add_launch(2);
  instr().add_reduction();
  // Partials travel through device memory; the scalar result crosses PCIe.
  instr().add_traffic(static_cast<std::int64_t>(grid) * 8,
                      static_cast<std::int64_t>(grid) * 8,
                      static_cast<std::int64_t>(n));
  instr().add_d2h(8);
  return total;
}

namespace {
thread_local Device* scoped_device = nullptr;
}  // namespace

Device& default_device() {
  if (scoped_device != nullptr) return *scoped_device;
  static Device device;
  return device;
}

DeviceScope::DeviceScope(Device* device) : previous_(scoped_device) {
  scoped_device = device;
}

DeviceScope::~DeviceScope() { scoped_device = previous_; }

}  // namespace simgpu
