// device.hpp — the simulated GPU device (CUDA substitution; DESIGN.md §2).
//
// Semantics preserved from real CUDA programming:
//   * device memory is a separate arena — host code must move data with
//     explicit memcpy_h2d / memcpy_d2h (copies are real and instrumented);
//   * work is expressed as grid x block kernel launches over an index space,
//     with a tunable block size (the paper tunes OPS_BLOCK_SIZE_X/Y = 64x8);
//   * global reductions are two-phase (per-block partials, then a final
//     pass), which makes them deterministic for a fixed grid geometry;
//   * out-of-memory and invalid-pointer misuse raise tl::DeviceError.
//
// Execution is functional (kernels really run, on a host worker pool), so all
// GPU backends are correctness-tested for real.  Device *time* on the paper's
// P100 is projected by machine::project_time from the instrumented counts.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "machine/instrumentation.hpp"
#include "simgpu/dim3.hpp"
#include "threading/thread_pool.hpp"

namespace simgpu {

/// Per-launch memory/compute footprint, declared by the caller the same way
/// nvprof would measure it (bytes that cross the device memory bus).
struct KernelTraffic {
  std::int64_t bytes_read = 0;
  std::int64_t bytes_written = 0;
  std::int64_t flops = 0;
};

class Device {
public:
  /// `memory_capacity` in bytes (default: P100's 16 GB).  The pool executes
  /// kernel blocks; by default the process-global tlp pool is used.
  explicit Device(std::size_t memory_capacity = std::size_t(16) << 30,
                  tlp::ThreadPool* pool = nullptr);
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  // --- memory management ----------------------------------------------------

  void* allocate(std::size_t bytes);
  void deallocate(void* ptr);
  std::size_t bytes_allocated() const;
  std::size_t capacity() const { return capacity_; }

  void memcpy_h2d(void* dst_device, const void* src_host, std::size_t bytes);
  void memcpy_d2h(void* dst_host, const void* src_device, std::size_t bytes);
  void memcpy_d2d(void* dst_device, const void* src_device, std::size_t bytes);

  // --- kernel launch ----------------------------------------------------------

  /// Default thread-block shape for 2D launches.  The paper's OPS CUDA runs
  /// use (64, 8).
  void set_block_size(int bx, int by);
  Dim3 block_size() const { return block_; }

  /// Launch `body(i)` for i in [0, n): 1D grid of 1D blocks.
  void launch_1d(const std::string& name, long n, const KernelTraffic& traffic,
                 const std::function<void(long)>& body);

  /// Launch `body(i, j)` over [0,nx) x [0,ny): 2D grid of block_size blocks,
  /// parallelized over blocks like SM scheduling.
  void launch_2d(const std::string& name, int nx, int ny,
                 const KernelTraffic& traffic,
                 const std::function<void(int, int)>& body);

  /// Two-phase device reduction: sum of value_of(i) for i in [0, n).
  /// Deterministic for a fixed block size: per-block partials are reduced in
  /// block order.  Counts the partials round-trip as device traffic plus one
  /// scalar D2H readback, as a real CUDA dot product incurs.
  double reduce_sum(const std::string& name, long n,
                    const std::function<double(long)>& value_of);

  /// No-op placeholder for stream semantics (kernels here are synchronous);
  /// kept so backend code reads like CUDA code.
  void synchronize() {}

  long launches() const { return launches_; }

private:
  tlp::ThreadPool& pool();
  void check_device_ptr(const void* ptr, std::size_t bytes,
                        const char* what) const;

  const std::size_t capacity_;
  tlp::ThreadPool* pool_;

  mutable std::mutex mutex_;
  std::map<const void*, std::size_t> allocations_;
  std::size_t allocated_ = 0;
  long launches_ = 0;

  Dim3 block_{64, 8, 1};
};

/// The calling thread's current device: the innermost live DeviceScope's
/// device, or the process-global default (the "GPU in this node") when no
/// scope is active.  Backend and substrate code reaches the device through
/// this one function, so owners of a private Device — service worker shards,
/// per-run devices in tea::run_simulation — route every allocation, copy and
/// launch to their own instance by installing a scope.
Device& default_device();

/// RAII thread-local device binding.  While alive, default_device() on this
/// thread returns `device`; destruction restores the previous binding
/// (scopes nest).  Thread-local on purpose: all device API calls happen on
/// the thread driving the solve (pool workers only execute loop bodies), so
/// concurrent shards each see their own device with no shared mutable state.
class DeviceScope {
public:
  explicit DeviceScope(Device* device);
  ~DeviceScope();

  DeviceScope(const DeviceScope&) = delete;
  DeviceScope& operator=(const DeviceScope&) = delete;

private:
  Device* previous_;
};

}  // namespace simgpu
