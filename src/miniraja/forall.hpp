// forall.hpp — miniraja loop execution: forall<policy> and a 2D nested
// kernel.  Host policies count one kernel launch; the GPU policy delegates to
// simgpu, which counts its own.
#pragma once

#include <string>
#include <type_traits>

#include "machine/instrumentation.hpp"
#include "miniraja/policy.hpp"
#include "simgpu/device.hpp"
#include "threading/thread_pool.hpp"

namespace raja {

namespace detail {
inline machine::Instrumentation& instr() {
  return machine::Instrumentation::global();
}
}  // namespace detail

template <typename Policy, typename F>
void forall(const RangeSegment& seg, F&& f) {
  if constexpr (std::is_same_v<Policy, seq_exec>) {
    for (long i = seg.begin(); i < seg.end(); ++i) f(i);
    detail::instr().add_launch();
  } else if constexpr (std::is_same_v<Policy, omp_parallel_for_exec>) {
    tlp::global_pool().parallel_for(seg.begin(), seg.end(),
                                    [&](long lo, long hi) {
                                      for (long i = lo; i < hi; ++i) f(i);
                                    });
    detail::instr().add_launch();
  } else {
    static_assert(std::is_same_v<Policy, simgpu_exec>, "unknown policy");
    simgpu::default_device().launch_1d(
        "raja_forall", seg.size(), {},
        [&, b = seg.begin()](long i) { f(b + i); });
  }
}

/// Nested 2D loop (RAJA::kernel<> with two For statements): outer segment is
/// work-shared / mapped to grid-y, inner runs contiguous.
template <typename Policy, typename F>
void kernel_2d(const RangeSegment& outer, const RangeSegment& inner, F&& f) {
  if constexpr (std::is_same_v<Policy, seq_exec>) {
    for (long j = outer.begin(); j < outer.end(); ++j) {
      for (long i = inner.begin(); i < inner.end(); ++i) f(j, i);
    }
    detail::instr().add_launch();
  } else if constexpr (std::is_same_v<Policy, omp_parallel_for_exec>) {
    tlp::global_pool().parallel_for(
        outer.begin(), outer.end(), [&](long lo, long hi) {
          for (long j = lo; j < hi; ++j) {
            for (long i = inner.begin(); i < inner.end(); ++i) f(j, i);
          }
        });
    detail::instr().add_launch();
  } else {
    static_assert(std::is_same_v<Policy, simgpu_exec>, "unknown policy");
    simgpu::default_device().launch_2d(
        "raja_kernel_2d", static_cast<int>(inner.size()),
        static_cast<int>(outer.size()), {},
        [&, jb = outer.begin(), ib = inner.begin()](int x, int y) {
          f(jb + y, ib + x);
        });
  }
}

}  // namespace raja
