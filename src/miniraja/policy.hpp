// policy.hpp — miniraja execution policies (the RAJA substitution,
// DESIGN.md §2).  Policy names intentionally mirror RAJA's so backend code
// reads like RAJA code.
#pragma once

namespace raja {

/// Sequential on the calling thread.
struct seq_exec {};
/// Host thread pool (RAJA::omp_parallel_for_exec equivalent).
struct omp_parallel_for_exec {};
/// Simulated GPU (RAJA::cuda_exec<BLOCK> equivalent; the block size comes
/// from the device's configured block geometry).
struct simgpu_exec {};

/// Contiguous index range [begin, end), as RAJA::RangeSegment.
class RangeSegment {
public:
  RangeSegment(long begin, long end) : begin_(begin), end_(end) {}
  long begin() const { return begin_; }
  long end() const { return end_; }
  long size() const { return end_ - begin_; }

private:
  long begin_;
  long end_;
};

}  // namespace raja
