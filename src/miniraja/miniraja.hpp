// miniraja.hpp — umbrella header for the RAJA-substitute library.
#pragma once

#include "miniraja/forall.hpp"  // IWYU pragma: export
#include "miniraja/policy.hpp"  // IWYU pragma: export
#include "miniraja/reduce.hpp"  // IWYU pragma: export
