// reduce.hpp — miniraja portable reducer objects.
//
// RAJA reducers are value-semantic objects captured by the loop lambda; the
// same user code works across serial, OpenMP and CUDA policies.  We implement
// the host mechanics RAJA uses: per-thread padded accumulation slots keyed by
// a stable thread id, folded on get().  Because simgpu kernels execute on
// pool threads, the identical mechanism serves the GPU policy too.
#pragma once

#include <array>
#include <memory>

#include "threading/thread_id.hpp"

namespace raja {

namespace detail {

template <typename T>
struct alignas(64) PaddedSlot {
  T value{};
};

template <typename T, typename Fold>
class ReducerState {
public:
  explicit ReducerState(T identity) : identity_(identity) {
    for (auto& s : slots_) s.value = identity;
  }

  void combine(const T& v) {
    auto& slot = slots_[static_cast<std::size_t>(tlp::current_thread_id())];
    slot.value = Fold()(slot.value, v);
  }

  T get() const {
    T acc = identity_;
    for (const auto& s : slots_) acc = Fold()(acc, s.value);
    return acc;
  }

  void reset() {
    for (auto& s : slots_) s.value = identity_;
  }

private:
  T identity_;
  std::array<PaddedSlot<T>, tlp::kMaxThreadIds> slots_;
};

struct FoldSum {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return a + b;
  }
};
struct FoldMin {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return b < a ? b : a;
  }
};
struct FoldMax {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return a < b ? b : a;
  }
};

template <typename T, typename Fold>
class Reducer {
public:
  explicit Reducer(T initial, T identity)
      : state_(std::make_shared<ReducerState<T, Fold>>(identity)),
        initial_(initial) {}

  /// Final reduced value (RAJA's implicit conversion / .get()).
  T get() const { return Fold()(initial_, state_->get()); }
  operator T() const { return get(); }

protected:
  std::shared_ptr<ReducerState<T, Fold>> state_;
  T initial_;
};

}  // namespace detail

template <typename T>
class ReduceSum : public detail::Reducer<T, detail::FoldSum> {
public:
  explicit ReduceSum(T initial = T{})
      : detail::Reducer<T, detail::FoldSum>(initial, T{}) {}
  /// RAJA idiom: `sum += value;` inside the loop body.
  const ReduceSum& operator+=(const T& v) const {
    const_cast<ReduceSum*>(this)->state_->combine(v);
    return *this;
  }
};

template <typename T>
class ReduceMin : public detail::Reducer<T, detail::FoldMin> {
public:
  explicit ReduceMin(T initial)
      : detail::Reducer<T, detail::FoldMin>(initial, initial) {}
  const ReduceMin& min(const T& v) const {
    const_cast<ReduceMin*>(this)->state_->combine(v);
    return *this;
  }
};

template <typename T>
class ReduceMax : public detail::Reducer<T, detail::FoldMax> {
public:
  explicit ReduceMax(T initial)
      : detail::Reducer<T, detail::FoldMax>(initial, initial) {}
  const ReduceMax& max(const T& v) const {
    const_cast<ReduceMax*>(this)->state_->combine(v);
    return *this;
  }
};

}  // namespace raja
