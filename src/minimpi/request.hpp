// request.hpp — nonblocking-operation handles.  With minimpi's eager sends a
// send request is born complete; a receive request matches lazily — either
// incrementally through Comm::test() (non-blocking progress, what the
// overlapped halo exchange polls while computing interior cells) or
// terminally through Comm::wait().  Both preserve MPI's completion semantics
// for the post-exchange-then-waitall pattern TeaLeaf's halo code uses.
#pragma once

#include <cstddef>

#include "minimpi/types.hpp"

namespace minimpi {

class Comm;

class Request {
public:
  Request() = default;

  static Request completed_send() {
    Request r;
    r.kind_ = Kind::kSend;
    r.done_ = true;
    return r;
  }

  static Request pending_recv(Comm* comm, void* data, std::size_t bytes,
                              int source, Tag tag) {
    Request r;
    r.kind_ = Kind::kRecv;
    r.comm_ = comm;
    r.data_ = data;
    r.bytes_ = bytes;
    r.source_ = source;
    r.tag_ = tag;
    return r;
  }

  bool done() const noexcept { return done_; }
  bool is_recv() const noexcept { return kind_ == Kind::kRecv; }

  /// Completion status (valid once done(); a send's status is empty).
  const Status& status() const noexcept { return status_; }

private:
  friend class Comm;
  enum class Kind { kNull, kSend, kRecv };

  Kind kind_ = Kind::kNull;
  bool done_ = false;
  Status status_{};
  Comm* comm_ = nullptr;
  void* data_ = nullptr;
  std::size_t bytes_ = 0;
  int source_ = kAnySource;
  Tag tag_ = kAnyTag;
};

}  // namespace minimpi
