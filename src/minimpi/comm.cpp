#include "minimpi/comm.hpp"

#include <exception>
#include <mutex>
#include <thread>

#include "common/error.hpp"
#include "machine/instrumentation.hpp"

namespace minimpi {

World::World(int size) : size_(size) {
  TL_REQUIRE(size >= 1, "world size must be >= 1");
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

void World::run(const std::function<void(Comm&)>& rank_main) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size_));
  std::mutex error_mutex;
  std::exception_ptr first_error;

  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(*this, r);
      try {
        rank_main(comm);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void Comm::send_bytes(const void* data, std::size_t bytes, int dest, Tag tag) {
  if (dest == kProcNull) return;
  TL_REQUIRE(dest >= 0 && dest < size(),
             "send to invalid rank " + std::to_string(dest));
  world_.mailboxes_[static_cast<std::size_t>(dest)]->push(rank_, tag, data,
                                                          bytes);
  machine::Instrumentation::global().add_message(
      static_cast<std::int64_t>(bytes));
}

Status Comm::recv_bytes(void* data, std::size_t bytes, int source, Tag tag) {
  if (source == kProcNull) {
    Status st;
    st.source = kProcNull;
    st.tag = tag;
    st.bytes = 0;
    return st;
  }
  TL_REQUIRE(source == kAnySource || (source >= 0 && source < size()),
             "recv from invalid rank " + std::to_string(source));
  return world_.mailboxes_[static_cast<std::size_t>(rank_)]->pop(source, tag,
                                                                 data, bytes);
}

bool Comm::test(Request& request) {
  if (request.done_) return true;
  TL_REQUIRE(request.kind_ == Request::Kind::kRecv,
             "only receive requests can be pending");
  if (request.source_ == kProcNull) {
    request.status_ = Status{};
    request.status_.source = kProcNull;
    request.status_.tag = request.tag_;
    request.done_ = true;
    return true;
  }
  const auto st =
      world_.mailboxes_[static_cast<std::size_t>(rank_)]->try_pop(
          request.source_, request.tag_, request.data_, request.bytes_);
  if (!st) return false;
  request.status_ = *st;
  request.done_ = true;
  return true;
}

Status Comm::wait(Request& request) {
  if (request.done_) return request.status_;
  TL_REQUIRE(request.kind_ == Request::Kind::kRecv,
             "only receive requests can be pending");
  request.status_ = recv_bytes(request.data_, request.bytes_, request.source_,
                               request.tag_);
  request.done_ = true;
  return request.status_;
}

std::vector<Status> Comm::waitall(tl::span<Request> requests) {
  std::vector<Status> statuses;
  statuses.reserve(requests.size());
  for (Request& r : requests) statuses.push_back(wait(r));
  return statuses;
}

bool Comm::iprobe(int source, Tag tag, Status* status) {
  if (source == kProcNull) return false;
  return world_.mailboxes_[static_cast<std::size_t>(rank_)]->probe(source, tag,
                                                                   status);
}

void Comm::barrier() {
  // Zero-byte allreduce: binomial reduce to 0, then broadcast of a token.
  (void)allreduce<int>(0, ReduceOp::kSum);
}

void run_world(int size, const std::function<void(Comm&)>& rank_main) {
  World world(size);
  world.run(rank_main);
}

}  // namespace minimpi
