// comm.hpp — World (the set of in-process ranks) and Comm (a rank's handle
// into it).  Point-to-point uses eager buffered sends through per-rank
// mailboxes; collectives are implemented *on top of* point-to-point with
// binomial trees, exactly as a small MPI implementation would layer them.
//
// Usage:
//   minimpi::run_world(4, [](minimpi::Comm& comm) {
//     std::vector<double> halo(n);
//     comm.send(tl::span<const double>(halo), comm.rank() ^ 1, /*tag=*/0);
//     ...
//   });
#pragma once

#include <functional>
#include <memory>
#include "common/span.hpp"
#include <vector>

#include "minimpi/mailbox.hpp"
#include "minimpi/request.hpp"
#include "minimpi/types.hpp"

namespace minimpi {

class Comm;

/// A communicator universe: `size` ranks with mailboxes.  Rank bodies run on
/// dedicated std::threads via run().
class World {
public:
  explicit World(int size);

  int size() const noexcept { return size_; }

  /// Execute `rank_main(comm)` once per rank, each on its own thread.  The
  /// first exception thrown by any rank is rethrown here after all ranks
  /// join.  May be called repeatedly (each call is a fresh "job launch").
  void run(const std::function<void(Comm&)>& rank_main);

private:
  friend class Comm;
  const int size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
};

/// Per-rank handle.  All member functions are called from the rank's thread.
class Comm {
public:
  Comm(World& world, int rank) : world_(world), rank_(rank) {}

  int rank() const noexcept { return rank_; }
  int size() const noexcept { return world_.size(); }

  // --- point-to-point -----------------------------------------------------

  template <typename T>
  void send(tl::span<const T> data, int dest, Tag tag) {
    send_bytes(data.data(), data.size_bytes(), dest, tag);
  }

  template <typename T>
  Status recv(tl::span<T> data, int source, Tag tag) {
    return recv_bytes(data.data(), data.size_bytes(), source, tag);
  }

  /// Single-value convenience overloads.
  template <typename T>
  void send_value(const T& v, int dest, Tag tag) {
    send_bytes(&v, sizeof(T), dest, tag);
  }
  template <typename T>
  T recv_value(int source, Tag tag) {
    T v{};
    recv_bytes(&v, sizeof(T), source, tag);
    return v;
  }

  template <typename T>
  Request isend(tl::span<const T> data, int dest, Tag tag) {
    // Eager protocol: data is copied into the destination mailbox now, so the
    // request is born complete (legal per MPI buffered-send semantics).
    send_bytes(data.data(), data.size_bytes(), dest, tag);
    return Request::completed_send();
  }

  template <typename T>
  Request irecv(tl::span<T> data, int source, Tag tag) {
    return Request::pending_recv(this, data.data(), data.size_bytes(), source,
                                 tag);
  }

  /// Non-blocking progress (MPI_Test): complete the request if its message
  /// has arrived.  Returns true when the request is (now) complete; the
  /// completion metadata is left in request.status().
  bool test(Request& request);

  Status wait(Request& request);
  std::vector<Status> waitall(tl::span<Request> requests);

  /// Non-blocking probe for a matching incoming message.
  bool iprobe(int source, Tag tag, Status* status = nullptr);

  // --- collectives ----------------------------------------------------------
  // Collectives must be invoked by every rank in the same order; each call
  // consumes a reserved tag so user traffic never interferes.

  void barrier();

  template <typename T>
  void bcast(tl::span<T> data, int root);

  template <typename T>
  T reduce(const T& value, ReduceOp op, int root);

  template <typename T>
  T allreduce(const T& value, ReduceOp op);

  /// Element-wise vector allreduce (used for multi-field reductions such as
  /// TeaLeaf's field summary).
  template <typename T>
  void allreduce(tl::span<T> values, ReduceOp op);

  template <typename T>
  std::vector<T> gather(const T& value, int root);

  template <typename T>
  std::vector<T> allgather(const T& value);

  template <typename T>
  T scatter(tl::span<const T> values, int root);

  // Internal: raw byte transport (public for Request).
  void send_bytes(const void* data, std::size_t bytes, int dest, Tag tag);
  Status recv_bytes(void* data, std::size_t bytes, int source, Tag tag);

private:
  Tag next_collective_tag() {
    // Reserved tag space; stays synchronized because collectives are called
    // in the same order on every rank.
    return kCollectiveTagBase + (collective_seq_++ & 0xFFFF);
  }

  static constexpr Tag kCollectiveTagBase = 0x40000000;

  World& world_;
  const int rank_;
  long collective_seq_ = 0;
};

/// Convenience: build a World of `size` ranks and run `rank_main` once.
void run_world(int size, const std::function<void(Comm&)>& rank_main);

// --- template implementations ----------------------------------------------

template <typename T>
void Comm::bcast(tl::span<T> data, int root) {
  const Tag tag = next_collective_tag();
  const int n = size();
  // Binomial tree rooted at `root`: relative rank r receives from
  // r - lowest_set_bit(r), then forwards to r + 2^k for growing k.
  const int rel = (rank_ - root + n) % n;
  int mask = 1;
  while (mask < n) {
    if (rel & mask) {
      const int src = (rel - mask + root) % n;
      recv_bytes(data.data(), data.size_bytes(), src, tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < n) {
      const int dst = (rel + mask + root) % n;
      send_bytes(data.data(), data.size_bytes(), dst, tag);
    }
    mask >>= 1;
  }
}

template <typename T>
T Comm::reduce(const T& value, ReduceOp op, int root) {
  const Tag tag = next_collective_tag();
  const int n = size();
  const int rel = (rank_ - root + n) % n;
  T acc = value;
  // Binomial reduction: at step k, relative ranks with bit k set send their
  // partial to (rel - 2^k) and leave.
  for (int mask = 1; mask < n; mask <<= 1) {
    if (rel & mask) {
      const int dst = (rel - mask + root) % n;
      send_bytes(&acc, sizeof(T), dst, tag);
      return acc;  // non-root partials are meaningless, by MPI convention
    }
    if (rel + mask < n) {
      const int src = (rel + mask + root) % n;
      T incoming{};
      recv_bytes(&incoming, sizeof(T), src, tag);
      acc = apply(op, acc, incoming);
    }
  }
  return acc;
}

template <typename T>
T Comm::allreduce(const T& value, ReduceOp op) {
  T result = reduce(value, op, /*root=*/0);
  tl::span<T> one(&result, 1);
  bcast(one, /*root=*/0);
  return result;
}

template <typename T>
void Comm::allreduce(tl::span<T> values, ReduceOp op) {
  const Tag tag = next_collective_tag();
  const int n = size();
  std::vector<T> incoming(values.size());
  // Reduce to rank 0 (binomial), element-wise.
  for (int mask = 1; mask < n; mask <<= 1) {
    if (rank_ & mask) {
      send_bytes(values.data(), values.size_bytes(), (rank_ - mask), tag);
      break;
    }
    if (rank_ + mask < n) {
      recv_bytes(incoming.data(), values.size_bytes(), rank_ + mask, tag);
      for (std::size_t i = 0; i < values.size(); ++i) {
        values[i] = apply(op, values[i], incoming[i]);
      }
    }
  }
  bcast(values, /*root=*/0);
}

template <typename T>
std::vector<T> Comm::gather(const T& value, int root) {
  const Tag tag = next_collective_tag();
  if (rank_ != root) {
    send_bytes(&value, sizeof(T), root, tag);
    return {};
  }
  std::vector<T> out(static_cast<std::size_t>(size()));
  out[static_cast<std::size_t>(root)] = value;
  for (int r = 0; r < size(); ++r) {
    if (r == root) continue;
    recv_bytes(&out[static_cast<std::size_t>(r)], sizeof(T), r, tag);
  }
  return out;
}

template <typename T>
std::vector<T> Comm::allgather(const T& value) {
  std::vector<T> out = gather(value, /*root=*/0);
  out.resize(static_cast<std::size_t>(size()));
  bcast(tl::span<T>(out), /*root=*/0);
  return out;
}

template <typename T>
T Comm::scatter(tl::span<const T> values, int root) {
  const Tag tag = next_collective_tag();
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      send_bytes(&values[static_cast<std::size_t>(r)], sizeof(T), r, tag);
    }
    return values[static_cast<std::size_t>(root)];
  }
  T v{};
  recv_bytes(&v, sizeof(T), root, tag);
  return v;
}

}  // namespace minimpi
