// cart.hpp — 2D Cartesian process topology (MPI_Cart_create subset) used for
// TeaLeaf's block domain decomposition.  Non-periodic; out-of-domain
// neighbours are kProcNull, so halo exchanges at physical boundaries become
// no-ops exactly as with MPI_PROC_NULL.
#pragma once

#include <array>
#include <utility>

#include "minimpi/comm.hpp"

namespace minimpi {

/// Choose a near-square factorization px*py == nprocs with px >= py
/// (MPI_Dims_create equivalent for 2D).
std::array<int, 2> dims_create(int nprocs);

class Cart2D {
public:
  /// Build a topology over comm with the given dims (dims[0]*dims[1] must
  /// equal comm.size()).  Rank layout is row-major: rank = cy*px + cx.
  Cart2D(Comm& comm, std::array<int, 2> dims);

  /// Convenience: choose dims automatically.
  explicit Cart2D(Comm& comm) : Cart2D(comm, dims_create(comm.size())) {}

  Comm& comm() const noexcept { return comm_; }
  int px() const noexcept { return dims_[0]; }
  int py() const noexcept { return dims_[1]; }

  /// This rank's grid coordinates (cx, cy).
  std::array<int, 2> coords() const noexcept { return coords_; }
  std::array<int, 2> coords_of(int rank) const;
  int rank_of(int cx, int cy) const;

  /// Neighbour ranks; kProcNull outside the grid.
  int left() const { return neighbour(-1, 0); }
  int right() const { return neighbour(+1, 0); }
  int down() const { return neighbour(0, -1); }
  int up() const { return neighbour(0, +1); }

  int neighbour(int dx, int dy) const;

private:
  Comm& comm_;
  std::array<int, 2> dims_;
  std::array<int, 2> coords_;
};

/// Split `cells` over `parts`; part `index` gets [begin, end).  Remainder
/// cells go to the leading parts (same rule the Fortran TeaLeaf decomposition
/// uses, keeping block sizes within one cell of each other).
std::pair<int, int> block_range(int cells, int parts, int index);

}  // namespace minimpi
