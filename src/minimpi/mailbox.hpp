// mailbox.hpp — per-rank message queue.  Senders enqueue copies (eager
// protocol); receivers block until a message matching (source, tag) arrives.
// Matching preserves MPI's non-overtaking rule: among messages from the same
// source with an acceptable tag, the earliest enqueued wins.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "minimpi/types.hpp"

namespace minimpi {

class Mailbox {
public:
  void push(int source, Tag tag, const void* data, std::size_t bytes) {
    Message msg;
    msg.source = source;
    msg.tag = tag;
    msg.payload.resize(bytes);
    if (bytes > 0) std::memcpy(msg.payload.data(), data, bytes);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(msg));
    }
    cv_.notify_all();
  }

  /// Block until a message matching (source|kAnySource, tag|kAnyTag) is
  /// available, copy it into `out`, and return status.  A matching message
  /// larger than `capacity` is a hard error (MPI_ERR_TRUNCATE semantics).
  /// Polls briefly before sleeping: halo exchanges and reduction trees are
  /// latency-bound, and the peer's send is usually microseconds away.
  Status pop(int source, Tag tag, void* out, std::size_t capacity) {
    for (int spin = 0; spin < 400; ++spin) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (auto st = try_pop_locked(source, tag, out, capacity)) return *st;
      }
      std::this_thread::yield();
    }
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (auto st = try_pop_locked(source, tag, out, capacity)) return *st;
      cv_.wait(lock);
    }
  }

  /// Non-destructive check for a matching message (MPI_Iprobe equivalent).
  bool probe(int source, Tag tag, Status* status_out) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Message& m : queue_) {
      if (matches(m, source, tag)) {
        if (status_out != nullptr) {
          status_out->source = m.source;
          status_out->tag = m.tag;
          status_out->bytes = m.payload.size();
        }
        return true;
      }
    }
    return false;
  }

  /// Non-blocking pop: complete a matching receive if one is queued.
  std::optional<Status> try_pop(int source, Tag tag, void* out,
                                std::size_t capacity) {
    std::lock_guard<std::mutex> lock(mutex_);
    return try_pop_locked(source, tag, out, capacity);
  }

  std::size_t pending() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

private:
  struct Message {
    int source;
    Tag tag;
    std::vector<unsigned char> payload;
  };

  static bool matches(const Message& m, int source, Tag tag) {
    return (source == kAnySource || m.source == source) &&
           (tag == kAnyTag || m.tag == tag);
  }

  std::optional<Status> try_pop_locked(int source, Tag tag, void* out,
                                       std::size_t capacity) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (!matches(*it, source, tag)) continue;
      // Truncation is a hard failure, as in MPI: silently delivering a
      // clipped payload while reporting the full size corrupts the receiver.
      TL_REQUIRE(it->payload.size() <= capacity,
                 "recv truncation: message of " +
                     std::to_string(it->payload.size()) +
                     " bytes exceeds receive buffer of " +
                     std::to_string(capacity));
      Status st;
      st.source = it->source;
      st.tag = it->tag;
      st.bytes = it->payload.size();
      if (st.bytes > 0 && out != nullptr) {
        std::memcpy(out, it->payload.data(), st.bytes);
      }
      queue_.erase(it);
      return st;
    }
    return std::nullopt;
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

}  // namespace minimpi
