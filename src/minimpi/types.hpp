// types.hpp — wire-level constants and small value types for minimpi, the
// in-process message-passing library that substitutes for MPI (DESIGN.md §2).
// Semantics follow the MPI standard subset TeaLeaf uses: tagged point-to-point
// with per-pair non-overtaking order, buffered (eager) sends, and collectives.
#pragma once

#include <cstddef>

namespace minimpi {

using Tag = int;

inline constexpr int kAnySource = -1;
inline constexpr Tag kAnyTag = -1;
/// Null peer: sends are dropped, receives complete immediately with zero
/// elements (mirrors MPI_PROC_NULL at non-periodic Cartesian edges).
inline constexpr int kProcNull = -2;

/// Completed-receive metadata (MPI_Status equivalent).
struct Status {
  int source = kAnySource;
  Tag tag = kAnyTag;
  std::size_t bytes = 0;

  template <typename T>
  std::size_t count() const {
    return bytes / sizeof(T);
  }
};

/// Reduction operators supported by reduce/allreduce/scan.
enum class ReduceOp { kSum, kProd, kMin, kMax };

template <typename T>
T apply(ReduceOp op, const T& a, const T& b) {
  switch (op) {
    case ReduceOp::kSum: return a + b;
    case ReduceOp::kProd: return a * b;
    case ReduceOp::kMin: return b < a ? b : a;
    case ReduceOp::kMax: return a < b ? b : a;
  }
  return a;
}

}  // namespace minimpi
