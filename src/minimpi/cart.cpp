#include "minimpi/cart.hpp"

#include <cmath>

#include "common/error.hpp"

namespace minimpi {

std::array<int, 2> dims_create(int nprocs) {
  TL_REQUIRE(nprocs >= 1, "nprocs must be >= 1");
  // Largest factor pair (px, py) with px >= py and px*py == nprocs, px as
  // close to sqrt(nprocs) as possible.
  int py = static_cast<int>(std::sqrt(static_cast<double>(nprocs)));
  while (py > 1 && nprocs % py != 0) --py;
  const int px = nprocs / py;
  return {px, py};
}

Cart2D::Cart2D(Comm& comm, std::array<int, 2> dims)
    : comm_(comm), dims_(dims) {
  TL_REQUIRE(dims_[0] * dims_[1] == comm.size(),
             "cart dims " + std::to_string(dims_[0]) + "x" +
                 std::to_string(dims_[1]) + " != world size " +
                 std::to_string(comm.size()));
  coords_ = coords_of(comm.rank());
}

std::array<int, 2> Cart2D::coords_of(int rank) const {
  TL_REQUIRE(rank >= 0 && rank < comm_.size(), "rank out of range");
  return {rank % dims_[0], rank / dims_[0]};
}

int Cart2D::rank_of(int cx, int cy) const {
  TL_REQUIRE(cx >= 0 && cx < dims_[0] && cy >= 0 && cy < dims_[1],
             "cart coords out of range");
  return cy * dims_[0] + cx;
}

int Cart2D::neighbour(int dx, int dy) const {
  const int cx = coords_[0] + dx;
  const int cy = coords_[1] + dy;
  if (cx < 0 || cx >= dims_[0] || cy < 0 || cy >= dims_[1]) return kProcNull;
  return rank_of(cx, cy);
}

std::pair<int, int> block_range(int cells, int parts, int index) {
  TL_REQUIRE(parts >= 1 && index >= 0 && index < parts,
             "invalid block_range request");
  const int base = cells / parts;
  const int rem = cells % parts;
  const int begin = base * index + (index < rem ? index : rem);
  const int end = begin + base + (index < rem ? 1 : 0);
  return {begin, end};
}

}  // namespace minimpi
