// search.hpp — the model-guided execution-plan search.
//
// Phase 1, model-first prune: every candidate in the execution-plan space
// (backend variant x thread/rank count x miniops tile height x fused-vs-
// unfused apply_operator_dot x solver x preconditioner) is scored with a
// tl_machine roofline projection of analytically estimated counters — host
// candidates on the *calibrated* host model (the PR 4 least-squares
// constants fed through machine::MachineOverrides into host_machine()),
// simgpu candidates on the calibrated device model (device_machine(), with
// the GPU occupancy derating and PCIe traffic).  Only the top `budget`
// candidates survive; the incumbent deck configuration always does, and so
// does the best device candidate (the device-choice table needs a measured
// device anchor even when the model ranks every device point below the cut,
// as it does at smoke-test meshes).
//
// Phase 2, measured refinement: the survivors run through the result
// store's content-addressed fetch-or-measure session, so a re-tune against
// an already-populated store performs zero new measurements.  Ranking uses
// *effective seconds*: host entries rank by their measured median; device
// entries rank by the device-roofline projection of their measured counters
// (the emulated device wall time means nothing), with a deterministic id
// tie-break.  The winner feeds the plan's per-mesh device-choice table
// (plan.hpp) by model-scaling both sides along a mesh ladder.
//
// Everything here is a pure function of (store contents, problem, options,
// host core count): identical stores yield bit-identical TunedPlan JSON.
// The calibration fit deliberately excludes rows the tuner itself stored
// (deck labels prefixed "tune:"), otherwise the first tune's measurements
// would shift the second tune's model scores.
#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"
#include "machine/instrumentation.hpp"
#include "machine/machine_model.hpp"
#include "results/result_store.hpp"
#include "results/sweep.hpp"
#include "tuning/plan.hpp"
#include "validation/calibrate.hpp"

namespace tuning {

/// Deck-label prefix for rows the measured refinement stores.  The
/// calibration layer excludes rows under it from every fit (tune's own and
/// `tea_sweep validate`'s alike) — see validation::kTuneDeckPrefix, which
/// this aliases.
inline constexpr const char* kTuneDeckPrefix = validation::kTuneDeckPrefix;

struct TuneOptions {
  std::string deck_label = "deck";  // plan.deck and "tune:<label>" row label
  int budget = 8;                   // measured-refinement width (top-K)
  int samples = 3;                  // timed repetitions per cold measurement
  bool use_calibration = true;      // fit + feed back into host_machine()
  bool verbose = false;
};

/// One scored candidate (phase 1 output).
struct ScoredCandidate {
  ExecutionPoint point;
  double model_seconds = 0.0;
};

struct TuneOutcome {
  TunedPlan plan;
  std::vector<ScoredCandidate> considered;  // all candidates, score-sorted
  int measured = 0;  // cells executed by the refinement
  int cached = 0;    // cells served from the store
  validation::CalibrationFit fit;
  validation::DeviceCalibrationFit device_fit;
};

/// The deterministic candidate space for `problem` on a host with
/// `host_cores` cores.  The first entry is always the incumbent: the deck's
/// own solver/preconditioner on the default backend and options.
std::vector<ExecutionPoint> enumerate_candidates(
    const tl::ProblemConfig& problem, int host_cores);

/// Analytic counter estimate for one candidate: per-kernel footprints from
/// the ref_kernels cost table times a per-solver iteration estimate.  Used
/// only for pruning — measurement decides the winner.
machine::Counters estimate_counters(const tl::ProblemConfig& problem,
                                    const ExecutionPoint& point);

/// Roofline projection of `point`: host candidates on the (calibrated) host
/// model, simgpu candidates on machine::device_machine() with the occupancy
/// derating at the problem's analytic working set.  Both sides share the
/// "effective seconds" currency the search ranks by.
double model_seconds(const tl::ProblemConfig& problem,
                     const ExecutionPoint& point,
                     const machine::MachineModel& host);

/// RunOptions equivalent of a candidate point.
tea::RunOptions point_options(const ExecutionPoint& point);

/// Run the two-phase search against `store` (mutated by cold measurements;
/// caller persists it).  Model scores use, per field: explicit TEA_HOST_*
/// env overrides > the least-squares fit > fixed fallback constants.  When
/// options.use_calibration and the fit succeeds, the installed constants
/// are left in place as the host overrides — the calibration feedback loop
/// this subsystem exists for; otherwise the previous overrides are restored
/// (the scoring fallbacks are scoped to the tune).
TuneOutcome tune(results::ResultStore& store, const tl::ProblemConfig& problem,
                 const TuneOptions& options);

/// Population tune: one plan that wins *in aggregate* over a workload
/// distribution (e.g. a generated deck family — see gen/generator.hpp).
/// Model scores are the sum of per-member model projections; the measured
/// refinement runs every survivor on every member and ranks by total median
/// (a candidate must converge on every member to win).  Each member stores
/// rows under its own "tune:<label>" so the calibration exclusion still
/// holds.  A single-member population is bit-identical to tune(): same row
/// labels, same deck_hash, same plan JSON — the committed tune-smoke
/// baseline keeps gating.  The plan's mesh/steps fields describe the first
/// member; deck_hash for a multi-member population is a combined hash over
/// every member's problem_hash.
TuneOutcome tune_population(results::ResultStore& store,
                            const std::vector<results::SweepProblem>& population,
                            const TuneOptions& options);

/// Human-readable frontier report (markdown).
std::string frontier_markdown(const TuneOutcome& outcome);

}  // namespace tuning
