// plan.hpp — the TunedPlan artifact: a versioned, store-backed record of the
// execution configuration the tuner chose for one problem, plus the frontier
// of candidates it measured to choose it.
//
// A plan is a pure function of the result store it was tuned against: no
// timestamps, no environment, fixed key order — identical stores produce
// bit-identical plan JSON, which is what the tune-smoke CI job and the
// determinism tests assert.  Unknown JSON keys are tolerated on load so old
// binaries can read plans written by newer ones (forward compatibility is
// part of the schema contract; incompatible changes bump the version).
#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/registry.hpp"
#include "results/json.hpp"

namespace tuning {

/// Bump on incompatible plan-layout changes; loaders reject mismatches.
/// v2: cross-device tuning — frontier entries carry device projections and
/// the effective ranking currency, plans carry the device-constant
/// provenance and the per-mesh device-choice table.
inline constexpr int kPlanSchemaVersion = 2;

/// One point of the execution-plan space: everything the driver needs to run
/// a problem one particular way.  Solver and preconditioner are stored by
/// their deck names (tl::to_string) so plans stay readable and diffable.
struct ExecutionPoint {
  std::string variant = "manual-omp";
  int threads = 0;        // 0 = runtime default (all hardware threads)
  int ranks = 4;          // distributed variants only (part of the store key)
  int hybrid_threads = 0;
  int tile_rows = 0;      // ops-tiled cache-block height (0 = auto)
  bool fused = true;      // fused apply_operator_dot in the CG/PPCG loop
  std::string solver = "cg";
  std::string precon = "none";

  /// Stable, human-readable candidate id; the deterministic tie-break and
  /// every report join on it.
  std::string id() const;

  bool operator==(const ExecutionPoint& o) const {
    return variant == o.variant && threads == o.threads && ranks == o.ranks &&
           hybrid_threads == o.hybrid_threads && tile_rows == o.tile_rows &&
           fused == o.fused && solver == o.solver && precon == o.precon;
  }
};

/// One measured survivor of the model prune.
struct FrontierEntry {
  ExecutionPoint point;
  double model_seconds = 0.0;  // calibrated projection that ranked it
  bool converged = false;
  double median_s = 0.0;       // store-measured wall statistics
  double min_s = 0.0;
  // Cross-device currency: what phase 2 ranks this entry by.  Host entries
  // use the measured median wall time; device entries use the calibrated
  // device-roofline projection of their measured counters (the emulated
  // device wall time carries no meaning), recorded in projected_device_s.
  double projected_device_s = 0.0;  // 0 for host entries
  double effective_s = 0.0;
  std::string store_key;       // content-addressed row behind the numbers
};

/// One rung of the per-mesh device-choice table: at mesh edge `mesh`, the
/// model-scaled host and device costs and which side wins.
struct DeviceChoice {
  int mesh = 0;
  double host_s = 0.0;
  double device_s = 0.0;
  bool use_device = false;

  bool operator==(const DeviceChoice& o) const {
    return mesh == o.mesh && host_s == o.host_s && device_s == o.device_s &&
           use_device == o.use_device;
  }
};

struct TunedPlan {
  int schema_version = kPlanSchemaVersion;
  std::string deck;       // label the rows were stored under (sans "tune:")
  std::string deck_hash;  // results::problem_hash of the tuned problem
  int mesh_x = 0, mesh_y = 0, steps = 0;
  int budget = 0;         // measured-refinement width the tune ran with

  ExecutionPoint winner;
  double winner_median_s = 0.0;
  double incumbent_median_s = 0.0;  // the deck's default configuration
  std::string winner_key;

  // Host constants the model prune scored under, with per-field provenance
  // ("env" = explicit TEA_HOST_* override, "fit" = the PR 4 least-squares
  // calibration fed through machine::MachineOverrides, "fallback" = fixed
  // defaults because the store had no evidence).  `calibrated` is true iff
  // at least one field actually came from the fit.
  bool calibrated = false;
  double scored_bw_gbs = 0.0;
  double scored_launch_overhead_us = 0.0;
  std::string bw_source = "fallback";
  std::string launch_source = "fallback";

  // Device constants the device-roofline scoring used, same provenance
  // convention (env TEA_DEVICE_* / fit via validation::fit_device_model /
  // fallback spec constants).
  bool device_calibrated = false;
  double scored_device_bw_gbs = 0.0;
  double scored_device_launch_us = 0.0;
  double scored_pcie_gbs = 0.0;
  std::string device_bw_source = "fallback";
  std::string device_launch_source = "fallback";
  std::string pcie_source = "fallback";

  // Cross-device choice: the best measured host point and the best measured
  // device point, plus the model-scaled table saying which to run at each
  // mesh rung.  `crossover_mesh` is the smallest table mesh where the device
  // wins (0 = never within the table).  has_device_choice is false when the
  // tune measured no device candidate (e.g. a host-only candidate space).
  bool has_device_choice = false;
  ExecutionPoint host_choice;
  ExecutionPoint device_choice;
  int crossover_mesh = 0;
  std::vector<DeviceChoice> device_table;  // sorted by mesh ascending

  std::vector<FrontierEntry> frontier;  // sorted by effective seconds
};

/// Serialise (stable key order, no timestamps).
results::Json plan_to_json(const TunedPlan& plan);

/// Parse; throws tl::ConfigError on schema-version mismatch or a
/// structurally broken document.  Unknown keys are ignored.
TunedPlan plan_from_json(const results::Json& doc);

TunedPlan load_plan(const std::string& path);
void save_plan(const TunedPlan& plan, const std::string& path);

/// Apply the winning point to a problem + run options (solver and
/// preconditioner onto the ProblemConfig; threads/ranks/tiling/fusion onto
/// the RunOptions) and return the backend variant id to run.
std::string apply_plan(const TunedPlan& plan, tl::ProblemConfig* problem,
                       tea::RunOptions* options);

/// Mesh-aware application: consult the device-choice table at the problem's
/// own mesh edge (largest table rung <= max(x_cells, y_cells); the smallest
/// rung below all of them) and apply host_choice or device_choice
/// accordingly.  Plans without a device table fall back to apply_plan's
/// winner.  This is what lets one plan say "host below the crossover mesh,
/// GPU above" (§IV-C).
std::string apply_plan_for_mesh(const TunedPlan& plan,
                                tl::ProblemConfig* problem,
                                tea::RunOptions* options);

}  // namespace tuning
