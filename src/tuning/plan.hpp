// plan.hpp — the TunedPlan artifact: a versioned, store-backed record of the
// execution configuration the tuner chose for one problem, plus the frontier
// of candidates it measured to choose it.
//
// A plan is a pure function of the result store it was tuned against: no
// timestamps, no environment, fixed key order — identical stores produce
// bit-identical plan JSON, which is what the tune-smoke CI job and the
// determinism tests assert.  Unknown JSON keys are tolerated on load so old
// binaries can read plans written by newer ones (forward compatibility is
// part of the schema contract; incompatible changes bump the version).
#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/registry.hpp"
#include "results/json.hpp"

namespace tuning {

/// Bump on incompatible plan-layout changes; loaders reject mismatches.
inline constexpr int kPlanSchemaVersion = 1;

/// One point of the execution-plan space: everything the driver needs to run
/// a problem one particular way.  Solver and preconditioner are stored by
/// their deck names (tl::to_string) so plans stay readable and diffable.
struct ExecutionPoint {
  std::string variant = "manual-omp";
  int threads = 0;        // 0 = runtime default (all hardware threads)
  int ranks = 4;          // distributed variants only (part of the store key)
  int hybrid_threads = 0;
  int tile_rows = 0;      // ops-tiled cache-block height (0 = auto)
  bool fused = true;      // fused apply_operator_dot in the CG/PPCG loop
  std::string solver = "cg";
  std::string precon = "none";

  /// Stable, human-readable candidate id; the deterministic tie-break and
  /// every report join on it.
  std::string id() const;

  bool operator==(const ExecutionPoint& o) const {
    return variant == o.variant && threads == o.threads && ranks == o.ranks &&
           hybrid_threads == o.hybrid_threads && tile_rows == o.tile_rows &&
           fused == o.fused && solver == o.solver && precon == o.precon;
  }
};

/// One measured survivor of the model prune.
struct FrontierEntry {
  ExecutionPoint point;
  double model_seconds = 0.0;  // calibrated-host projection that ranked it
  bool converged = false;
  double median_s = 0.0;       // store-measured wall statistics
  double min_s = 0.0;
  std::string store_key;       // content-addressed row behind the numbers
};

struct TunedPlan {
  int schema_version = kPlanSchemaVersion;
  std::string deck;       // label the rows were stored under (sans "tune:")
  std::string deck_hash;  // results::problem_hash of the tuned problem
  int mesh_x = 0, mesh_y = 0, steps = 0;
  int budget = 0;         // measured-refinement width the tune ran with

  ExecutionPoint winner;
  double winner_median_s = 0.0;
  double incumbent_median_s = 0.0;  // the deck's default configuration
  std::string winner_key;

  // Host constants the model prune scored under, with per-field provenance
  // ("env" = explicit TEA_HOST_* override, "fit" = the PR 4 least-squares
  // calibration fed through machine::MachineOverrides, "fallback" = fixed
  // defaults because the store had no evidence).  `calibrated` is true iff
  // at least one field actually came from the fit.
  bool calibrated = false;
  double scored_bw_gbs = 0.0;
  double scored_launch_overhead_us = 0.0;
  std::string bw_source = "fallback";
  std::string launch_source = "fallback";

  std::vector<FrontierEntry> frontier;  // sorted by measured median
};

/// Serialise (stable key order, no timestamps).
results::Json plan_to_json(const TunedPlan& plan);

/// Parse; throws tl::ConfigError on schema-version mismatch or a
/// structurally broken document.  Unknown keys are ignored.
TunedPlan plan_from_json(const results::Json& doc);

TunedPlan load_plan(const std::string& path);
void save_plan(const TunedPlan& plan, const std::string& path);

/// Apply the winning point to a problem + run options (solver and
/// preconditioner onto the ProblemConfig; threads/ranks/tiling/fusion onto
/// the RunOptions) and return the backend variant id to run.
std::string apply_plan(const TunedPlan& plan, tl::ProblemConfig* problem,
                       tea::RunOptions* options);

}  // namespace tuning
