#include "tuning/search.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <sstream>

#include "common/error.hpp"
#include "core/backends/ref_kernels.hpp"
#include "core/field.hpp"
#include "machine/efficiency.hpp"
#include "machine/roofline.hpp"
#include "results/sweep.hpp"

namespace tuning {

namespace {

/// Deterministic fallback host constants used when the store cannot support
/// a calibration fit.  Scoring must never depend on the measured STREAM
/// triad (it varies run to run), or plans would not be bit-reproducible.
constexpr double kFallbackBwGbs = 20.0;
constexpr double kFallbackLaunchUs = 5.0;

/// Solver/preconditioner combinations the search explores on top of the
/// deck's own configuration.  Jacobi is only ever explored when the deck
/// asks for it: at Krylov-grade tolerances it does not converge within any
/// reasonable budget.
struct SolverCombo {
  tl::SolverKind solver;
  tl::PreconKind precon;
};

const std::vector<SolverCombo>& solver_combos() {
  static const std::vector<SolverCombo> combos = {
      {tl::SolverKind::kCg, tl::PreconKind::kNone},
      {tl::SolverKind::kCg, tl::PreconKind::kJacDiag},
      {tl::SolverKind::kPpcg, tl::PreconKind::kNone},
      {tl::SolverKind::kPpcg, tl::PreconKind::kJacDiag},
      {tl::SolverKind::kCheby, tl::PreconKind::kNone},
  };
  return combos;
}

/// Per-step outer-iteration estimate.  CG on the TeaLeaf Laplacian needs
/// O(mesh width) iterations at a fixed relative tolerance (condition number
/// ~ width^2); the other solvers are expressed relative to CG with ratios
/// read off the golden table.  Only the *ordering* of candidates matters
/// here, so coarse is fine — and deterministic, which is mandatory.
double outer_iterations_per_step(const tl::ProblemConfig& p,
                                 tl::SolverKind solver, tl::PreconKind precon) {
  const double width = std::max(p.x_cells, p.y_cells);
  double cg = std::max(10.0, 0.9 * width);
  if (precon == tl::PreconKind::kJacDiag) cg *= 0.85;
  double iters = cg;
  switch (solver) {
    case tl::SolverKind::kCg: iters = cg; break;
    case tl::SolverKind::kCheby: iters = 2.5 * cg; break;
    case tl::SolverKind::kPpcg: iters = std::max(10.0, 0.3 * cg); break;
    case tl::SolverKind::kJacobi: iters = 10.0 * width; break;
  }
  return std::min(iters, static_cast<double>(p.max_iters));
}

double elems(const tea::ref::KernelCost& c) {
  return static_cast<double>(c.reads + c.writes);
}

/// simgpu variants the search explores (every GPU backend the registry
/// builds).  Order is the paper's Table I order; enumeration order is part
/// of the deterministic-candidate-space contract.
const std::vector<std::string>& device_variants() {
  static const std::vector<std::string> v = {
      "manual-cuda", "kokkos-cuda", "raja-cuda",
      "ops-cuda",    "ops-acc",     "manual-acc-gpu",
  };
  return v;
}

/// Analytic device-resident working set: every field array at problem size.
/// Matches the backends' own working_set_bytes() up to halo padding, which
/// the occupancy factor cannot distinguish anyway.
std::int64_t analytic_working_set_bytes(const tl::ProblemConfig& p) {
  return static_cast<std::int64_t>(tea::kNumFields) *
         static_cast<std::int64_t>(p.x_cells) * p.y_cells * 8;
}

}  // namespace

machine::Counters estimate_counters(const tl::ProblemConfig& problem,
                                    const ExecutionPoint& point) {
  using namespace tea::ref;
  const tl::SolverKind solver = tl::solver_from_string(point.solver);
  const tl::PreconKind precon = tl::precon_from_string(point.precon);
  // Only the manual host family has a fused kernel; every other backend
  // runs the unfused pair regardless of the flag, so score it that way —
  // crediting a fusion a backend cannot execute would systematically
  // flatter it.
  const bool fused =
      point.fused && tea::backend_has_fused_operator_dot(point.variant);
  const double cells =
      static_cast<double>(problem.x_cells) * problem.y_cells;
  const double steps = std::max(1, problem.end_step);
  const double outer = outer_iterations_per_step(problem, solver, precon);

  // Per-iteration kernel mix (launches, reductions, halo refreshes and
  // element traffic), from the solver loops in core/solvers/solvers.cpp.
  double it_elems = 0.0, it_launches = 0.0, it_reductions = 0.0;
  double it_halos = 1.0;
  double inner = 0.0;
  switch (solver) {
    case tl::SolverKind::kCg:
      // halo(p); opdot (or op + dot); axpy x2; dot; zaxpy.
      it_elems = (fused ? elems(kCostOperatorDot)
                              : elems(kCostOperator) + elems(kCostDot)) +
                 2.0 * elems(kCostAxpy) + elems(kCostDot) + elems(kCostZaxpy);
      it_launches = (fused ? 1.0 : 2.0) + 4.0;
      it_reductions = 2.0;
      if (precon == tl::PreconKind::kJacDiag) {
        it_elems += elems(kCostOperator) + elems(kCostDot);  // precondition+rz
        it_launches += 2.0;
        it_reductions += 1.0;
      }
      break;
    case tl::SolverKind::kCheby:
      // halo(sd); apply_operator; smooth_update; residual check ~1/10 iters.
      it_elems = elems(kCostOperator) + elems(kCostSmooth) +
                 0.1 * elems(kCostDot);
      it_launches = 2.1;
      it_reductions = 0.1;
      break;
    case tl::SolverKind::kPpcg:
      // A CG-shaped outer iteration plus inner smoothing steps.
      inner = static_cast<double>(problem.ppcg_inner_steps);
      it_elems = (fused ? elems(kCostOperatorDot)
                              : elems(kCostOperator) + elems(kCostDot)) +
                 2.0 * elems(kCostAxpy) + 2.0 * elems(kCostDot) +
                 elems(kCostZaxpy) +
                 inner * (elems(kCostOperator) + elems(kCostSmooth)) +
                 3.0 * elems(kCostCopy);  // inner-solve seeding
      it_launches = (fused ? 1.0 : 2.0) + 5.0 + 2.0 * inner;
      it_reductions = 3.0;
      it_halos = 1.0 + inner;
      break;
    case tl::SolverKind::kJacobi:
      // halo(u); fused sweep+reduction (the ping-pong swap costs nothing).
      it_elems = elems(kCostJacobi);
      it_launches = 1.0;
      it_reductions = 1.0;
      break;
  }

  // Per-step fixed work: coefficients, init_u_u0, initial residual + dot,
  // finalise, summary.
  const double step_elems = elems(kCostCoefficients) + elems(kCostInitU) +
                            elems(kCostResidual) + elems(kCostDot) +
                            elems(kCostFinalise) + elems(kCostSummary);
  const double step_launches = 6.0;
  const double step_reductions = 2.0;

  // miniops tiling keeps intermediate fields cache-resident across the
  // kernel chain: charge it a flat traffic discount.  The tile height only
  // changes how close the executor gets to that ideal, which the model
  // cannot see — measurement differentiates it.
  const double traffic_scale = point.variant == "ops-tiled" ? 0.8 : 1.0;

  const double total_elems =
      (steps * step_elems + steps * outer * it_elems) * traffic_scale;
  const double total_launches = steps * (step_launches + outer * it_launches);
  const double total_reductions =
      steps * (step_reductions + outer * it_reductions);
  const double total_halos = steps * (1.0 + outer * it_halos);

  machine::Counters c;
  const auto to_i64 = [](double v) {
    return static_cast<std::int64_t>(std::llround(v));
  };
  // Split traffic 3:1 read:write — close enough to the kernel mix and
  // irrelevant to the projection, which only uses the sum.
  c.bytes_read = to_i64(total_elems * cells * 8.0 * 0.75);
  c.bytes_written = to_i64(total_elems * cells * 8.0 * 0.25);
  c.kernel_launches = to_i64(total_launches);
  c.reductions = to_i64(total_reductions);
  c.halo_exchanges = to_i64(total_halos);
  c.solver_iterations = to_i64(steps * outer);
  if (tea::backend_is_distributed(point.variant)) {
    // Block decomposition: every halo refresh moves one ring of ghost cells
    // per rank pair.
    const double ranks = std::max(1, point.ranks);
    const double perimeter_bytes =
        2.0 * (problem.x_cells + problem.y_cells) * 8.0;
    c.messages = to_i64(total_halos * 2.0 * ranks);
    c.message_bytes = to_i64(total_halos * perimeter_bytes * 2.0);
  }
  if (machine::is_gpu_variant(point.variant)) {
    // Device-resident execution: the field set crosses PCIe once on upload
    // and the per-step results come back; each global reduction reads one
    // scalar back.  Coarse, like everything else here — phase 2's measured
    // counters carry the real numbers.
    c.h2d_bytes = to_i64(static_cast<double>(tea::kNumFields) * cells * 8.0);
    c.d2h_bytes = to_i64(steps * 2.0 * cells * 8.0 + total_reductions * 8.0);
  }
  return c;
}

namespace {

/// Host-side efficiency residual for a candidate.  Absolute streaming cost
/// and launch overhead come from the calibrated host model; the per-variant
/// residuals reuse the paper-calibrated Xeon table *relative to manual-omp*
/// (the variant that dominates the calibration fit), so "kokkos dispatch is
/// expensive" and "MPI halves the launch cost" carry over without inventing
/// new constants.
machine::EfficiencyProfile host_profile(const ExecutionPoint& point,
                                        int host_cores) {
  const machine::MachineModel& xeon = machine::xeon_e5_2660v4();
  // Map host candidate variants onto their Xeon table rows.  serial
  // deliberately borrows manual-omp's residual: its own Xeon row (0.10)
  // encodes one-core-of-28 underutilisation, which the thread_scale term
  // below already charges — using both would double-count the penalty.
  std::string key = point.variant;
  if (key == "serial") key = "manual-omp";
  const machine::EfficiencyProfile base = machine::efficiency_for(key, xeon);
  const machine::EfficiencyProfile ref =
      machine::efficiency_for("manual-omp", xeon);

  machine::EfficiencyProfile prof;
  const double rel_bw = base.bw_fraction / ref.bw_fraction;
  prof.bw_fraction = std::clamp(rel_bw, 0.05, 1.0);
  prof.launch_multiplier =
      point.variant == "serial" ? 0.0 : base.launch_multiplier;
  prof.reduction_sync_us = base.reduction_sync_us;
  prof.compute_fraction = base.compute_fraction;

  // Thread scaling: memory controllers saturate well below core count; a
  // t-thread run reaches ~t/saturation of the calibrated bandwidth.
  const int saturation = std::max(1, std::min(host_cores, 4));
  int active = host_cores;
  if (point.variant == "serial") {
    active = 1;
  } else if (point.threads > 0) {
    active = point.threads;
  } else if (point.variant == "manual-hybrid" ||
             point.variant == "ops-hybrid") {
    active = point.ranks * std::max(1, point.hybrid_threads);
  } else if (tea::backend_is_distributed(point.variant)) {
    active = point.ranks;
  }
  const double thread_scale =
      std::min(1.0, static_cast<double>(active) / saturation);
  prof.bw_fraction *= std::max(thread_scale, 1.0 / saturation);
  return prof;
}

}  // namespace

double model_seconds(const tl::ProblemConfig& problem,
                     const ExecutionPoint& point,
                     const machine::MachineModel& host) {
  const machine::Counters c = estimate_counters(problem, point);
  if (machine::is_gpu_variant(point.variant)) {
    // Device candidates score on the calibrated device model in the same
    // "effective seconds" currency: the per-variant P100 residuals apply
    // (device_machine() keeps the id "p100"), and the occupancy derating at
    // the analytic working set is what makes small meshes favour the host.
    const machine::MachineModel& device = machine::device_machine();
    return machine::project_time(c, device,
                                 machine::efficiency_for(point.variant, device),
                                 analytic_working_set_bytes(problem))
        .total();
  }
  const machine::EfficiencyProfile prof =
      host_profile(point, std::max(1, host.cores));
  return machine::project_time(c, host, prof).total();
}

std::vector<ExecutionPoint> enumerate_candidates(
    const tl::ProblemConfig& problem, int host_cores) {
  std::vector<ExecutionPoint> out;
  const auto push = [&out](ExecutionPoint p) {
    for (const ExecutionPoint& seen : out) {
      if (seen == p) return;
    }
    out.push_back(std::move(p));
  };

  // The incumbent first: the deck's own configuration on the default
  // backend — the candidate the tuned plan must never lose to.
  ExecutionPoint incumbent;
  incumbent.solver = tl::to_string(problem.solver);
  incumbent.precon = tl::to_string(problem.preconditioner);
  push(incumbent);

  // Solver dimension: the deck's combination plus the Krylov combos.
  std::vector<SolverCombo> combos = {{problem.solver, problem.preconditioner}};
  for (const SolverCombo& sc : solver_combos()) combos.push_back(sc);

  // Thread ladder: explicit powers of two up to the hardware (capped — the
  // candidate space must stay small enough to score instantly), plus the
  // runtime default 0.
  std::vector<int> threads = {0};
  for (int t = 1; t <= std::min(host_cores, 8); t *= 2) threads.push_back(t);

  for (const SolverCombo& sc : combos) {
    ExecutionPoint base;
    base.solver = tl::to_string(sc.solver);
    base.precon = tl::to_string(sc.precon);

    {  // serial reference, fused and unfused.
      ExecutionPoint p = base;
      p.variant = "serial";
      push(p);
      p.fused = false;
      push(p);
    }
    for (const int t : threads) {  // manual-omp x threads x fusion
      ExecutionPoint p = base;
      p.variant = "manual-omp";
      p.threads = t;
      push(p);
      p.fused = false;
      push(p);
    }
    for (const int r : {2, 4}) {  // manual-mpi x ranks
      ExecutionPoint p = base;
      p.variant = "manual-mpi";
      p.ranks = r;
      push(p);
    }
    for (const int r : {2, 4}) {  // manual-hybrid x ranks, 2 threads per rank
      ExecutionPoint p = base;
      p.variant = "manual-hybrid";
      p.ranks = r;
      p.hybrid_threads = 2;
      push(p);
    }
    {  // ops family
      ExecutionPoint p = base;
      p.variant = "ops-omp";
      push(p);
      for (const int rows : {0, 16, 64}) {
        ExecutionPoint q = base;
        q.variant = "ops-tiled";
        q.tile_rows = rows;
        push(q);
      }
    }
    for (const char* v : {"kokkos-omp", "raja-omp", "manual-acc-cpu"}) {
      ExecutionPoint p = base;
      p.variant = v;
      push(p);
    }
    for (const std::string& v : device_variants()) {  // simgpu family
      ExecutionPoint p = base;
      p.variant = v;
      push(p);
    }
  }
  return out;
}

tea::RunOptions point_options(const ExecutionPoint& point) {
  tea::RunOptions o;
  o.threads = point.threads;
  o.ranks = point.ranks;
  o.hybrid_threads = point.hybrid_threads;
  o.tile.tile_rows = point.tile_rows;
  o.fuse_operator_dot = point.fused;
  return o;
}

namespace {

tl::ProblemConfig point_problem(const tl::ProblemConfig& problem,
                                const ExecutionPoint& point) {
  tl::ProblemConfig p = problem;
  p.solver = tl::solver_from_string(point.solver);
  p.preconditioner = tl::precon_from_string(point.precon);
  return p;
}

/// results::fnv1a_key over the concatenated per-member problem keys: the
/// population identity for multi-member plans.  A single-member population
/// keeps the raw problem_key so single-deck plan baselines stay bit-stable.
std::string population_hash(const std::vector<results::SweepProblem>& pop) {
  if (pop.size() == 1) return results::problem_key(pop.front().problem);
  std::string concat;
  for (const results::SweepProblem& member : pop) {
    concat += results::problem_key(member.problem);
  }
  return "pop:" + results::fnv1a_key(concat);
}

}  // namespace

TuneOutcome tune(results::ResultStore& store, const tl::ProblemConfig& problem,
                 const TuneOptions& options) {
  return tune_population(store, {{options.deck_label, problem}}, options);
}

TuneOutcome tune_population(
    results::ResultStore& store,
    const std::vector<results::SweepProblem>& population,
    const TuneOptions& options) {
  if (population.empty()) {
    throw tl::Error("tune: population must not be empty");
  }
  // Candidate enumeration and the plan's mesh/steps metadata key off the
  // lead member; scoring and measurement span the whole population.
  const tl::ProblemConfig& problem = population.front().problem;
  TuneOutcome outcome;

  // --- calibration: fit the host constants and feed them through
  // MachineOverrides into host_machine().  calibration_rows() itself skips
  // "tune:"-labelled rows, so a re-tune can never feed its own
  // measurements back into its own scores.
  if (options.use_calibration) {
    outcome.fit = validation::fit_host_model(
        validation::calibration_rows(store, {"serial", "manual-omp"}));
    outcome.device_fit =
        validation::fit_device_model(validation::device_calibration_rows(store));
  }

  const machine::MachineOverrides saved = machine::host_overrides();
  const bool fit_ok = options.use_calibration && outcome.fit.ok;
  // Precedence per field: explicit TEA_HOST_* env constants (deterministic
  // and user-chosen) > the fit > fixed fallbacks.  Never the measured
  // STREAM triad — scores (and therefore plans) must be reproducible run
  // to run.  Per-field provenance is recorded in the plan.
  machine::MachineOverrides overrides = machine::MachineOverrides::from_env();
  std::string bw_source = "env", launch_source = "env";
  if (!overrides.peak_bw_gbs) {
    overrides.peak_bw_gbs =
        fit_ok ? outcome.fit.fitted_bw_gbs : kFallbackBwGbs;
    bw_source = fit_ok ? "fit" : "fallback";
  }
  if (!overrides.launch_overhead_us) {
    overrides.launch_overhead_us =
        fit_ok ? outcome.fit.launch_overhead_us : kFallbackLaunchUs;
    launch_source = fit_ok ? "fit" : "fallback";
  }
  const bool fit_used = bw_source == "fit" || launch_source == "fit";

  // Device constants, same precedence: TEA_DEVICE_* / TEA_PCIE_* env > the
  // device fit (a dropped fit term keeps the spec constant) > the P100 spec.
  // The spec fallback is already deterministic, so unlike the host side
  // there is no separate fixed-fallback table.
  const bool device_fit_ok = options.use_calibration && outcome.device_fit.ok;
  const machine::MachineModel& p100 = machine::tesla_p100();
  std::string device_bw_source = "env", device_launch_source = "env",
              pcie_source = "env";
  if (!overrides.device_bw_gbs) {
    const bool use = device_fit_ok && outcome.device_fit.device_bw_gbs > 0.0;
    overrides.device_bw_gbs =
        use ? outcome.device_fit.device_bw_gbs : p100.peak_bw_gbs;
    device_bw_source = use ? "fit" : "fallback";
  }
  if (!overrides.device_launch_us) {
    const bool use = device_fit_ok && outcome.device_fit.device_launch_us > 0.0;
    overrides.device_launch_us =
        use ? outcome.device_fit.device_launch_us : p100.launch_overhead_us;
    device_launch_source = use ? "fit" : "fallback";
  }
  if (!overrides.device_pcie_gbs) {
    const bool use = device_fit_ok && outcome.device_fit.pcie_bw_gbs > 0.0;
    overrides.device_pcie_gbs =
        use ? outcome.device_fit.pcie_bw_gbs : p100.pcie_bw_gbs;
    pcie_source = use ? "fit" : "fallback";
  }
  const bool device_fit_used = device_bw_source == "fit" ||
                               device_launch_source == "fit" ||
                               pcie_source == "fit";
  machine::set_host_overrides(overrides);
  const machine::MachineModel host = machine::host_machine();

  // --- phase 1: score and prune.  A candidate's score is the *sum* of its
  // model projections over every population member: the plan optimises the
  // aggregate workload, not any single deck.
  const std::vector<ExecutionPoint> space =
      enumerate_candidates(problem, host.cores);
  const ExecutionPoint incumbent = space.front();
  for (const ExecutionPoint& point : space) {
    double total = 0.0;
    for (const results::SweepProblem& member : population) {
      total += model_seconds(member.problem, point, host);
    }
    outcome.considered.push_back({point, total});
  }
  std::stable_sort(outcome.considered.begin(), outcome.considered.end(),
                   [](const ScoredCandidate& a, const ScoredCandidate& b) {
                     if (a.model_seconds != b.model_seconds) {
                       return a.model_seconds < b.model_seconds;
                     }
                     return a.point.id() < b.point.id();
                   });

  const std::size_t budget =
      static_cast<std::size_t>(std::max(1, options.budget));
  std::vector<ScoredCandidate> survivors;
  bool incumbent_survived = false;
  bool device_survived = false;
  for (const ScoredCandidate& c : outcome.considered) {
    if (survivors.size() >= budget) break;
    survivors.push_back(c);
    if (c.point == incumbent) incumbent_survived = true;
    if (machine::is_gpu_variant(c.point.variant)) device_survived = true;
  }
  if (!incumbent_survived) {
    for (const ScoredCandidate& c : outcome.considered) {
      if (c.point == incumbent) {
        survivors.push_back(c);
        break;
      }
    }
  }
  // The best device candidate always gets measured, mirroring the incumbent
  // rule: the device-choice table needs a measured device anchor even when
  // the model ranks every device point below the cut (small meshes, where
  // occupancy and launch overhead bury the device).
  if (!device_survived) {
    for (const ScoredCandidate& c : outcome.considered) {
      if (machine::is_gpu_variant(c.point.variant)) {
        survivors.push_back(c);
        break;
      }
    }
  }

  // --- phase 2: measured refinement through the store cache.  Every
  // survivor runs on every population member under that member's own
  // "tune:<label>" row, so the calibration exclusion covers all of them; a
  // candidate's measured score is the total median across members, and it
  // must converge on *every* member to be eligible.
  // Lead-member measured data per candidate, captured for the device-choice
  // table (which model-scales the lead member's evidence along the ladder).
  struct LeadRow {
    double median_s = 0.0;
    machine::Counters counters;
    std::int64_t working_set_bytes = 0;
  };
  std::map<std::string, LeadRow> lead_rows;

  const machine::MachineModel& device = machine::device_machine();
  for (const ScoredCandidate& c : survivors) {
    const bool gpu = machine::is_gpu_variant(c.point.variant);
    FrontierEntry e;
    e.point = c.point;
    e.model_seconds = c.model_seconds;
    e.converged = true;
    e.median_s = 0.0;
    e.min_s = 0.0;
    for (const results::SweepProblem& member : population) {
      results::MeasureSpec spec;
      spec.variant = c.point.variant;
      spec.deck_label = kTuneDeckPrefix + member.label;
      spec.problem = point_problem(member.problem, c.point);
      spec.options = point_options(c.point);
      spec.samples = options.samples;
      const int misses_before = store.misses();
      const results::ResultRow row = results::measure(store, spec);
      const bool was_cached = store.misses() == misses_before;
      ++(was_cached ? outcome.cached : outcome.measured);
      if (options.verbose) {
        std::printf("  [%s] %-44s %-20s median %.4fs%s\n",
                    was_cached ? "cache" : " run ", c.point.id().c_str(),
                    member.label.c_str(), row.timing.median_s,
                    row.converged ? "" : "  (did not converge)");
      }
      e.converged = e.converged && row.converged;
      e.median_s += row.timing.median_s;
      e.min_s += row.timing.min_s;
      if (gpu) {
        // The device-roofline projection of the *measured* counters is the
        // device entry's effective time — the emulated wall time only says
        // how fast the host ran the simulation of the device.
        e.projected_device_s +=
            machine::project_time(row.counters, device,
                                  machine::efficiency_for(c.point.variant,
                                                          device),
                                  row.working_set_bytes)
                .total();
      }
      if (e.store_key.empty()) e.store_key = row.key;
      if (&member == &population.front()) {
        LeadRow& lead = lead_rows[c.point.id()];
        lead.median_s = row.timing.median_s;
        lead.counters = row.counters;
        lead.working_set_bytes = row.working_set_bytes;
      }
    }
    e.effective_s = gpu ? e.projected_device_s : e.median_s;
    outcome.plan.frontier.push_back(std::move(e));
  }

  // Deterministic frontier order: effective seconds (the cross-device
  // currency), then candidate id.
  std::stable_sort(outcome.plan.frontier.begin(), outcome.plan.frontier.end(),
                   [](const FrontierEntry& a, const FrontierEntry& b) {
                     if (a.effective_s != b.effective_s) {
                       return a.effective_s < b.effective_s;
                     }
                     return a.point.id() < b.point.id();
                   });

  // --- assemble the plan.  The winner is the fastest *converged* entry;
  // the frontier always contains the incumbent, which converged (decks that
  // do not converge under their own configuration are not tunable input).
  TunedPlan& plan = outcome.plan;
  plan.deck = options.deck_label;
  plan.deck_hash = population_hash(population);
  plan.mesh_x = problem.x_cells;
  plan.mesh_y = problem.y_cells;
  plan.steps = problem.end_step;
  plan.budget = static_cast<int>(budget);
  plan.calibrated = fit_used;
  plan.scored_bw_gbs = *overrides.peak_bw_gbs;
  plan.scored_launch_overhead_us = *overrides.launch_overhead_us;
  plan.bw_source = bw_source;
  plan.launch_source = launch_source;
  plan.device_calibrated = device_fit_used;
  plan.scored_device_bw_gbs = *overrides.device_bw_gbs;
  plan.scored_device_launch_us = *overrides.device_launch_us;
  plan.scored_pcie_gbs = *overrides.device_pcie_gbs;
  plan.device_bw_source = device_bw_source;
  plan.device_launch_source = device_launch_source;
  plan.pcie_source = pcie_source;
  for (const FrontierEntry& e : plan.frontier) {
    if (e.point == incumbent) plan.incumbent_median_s = e.effective_s;
    if (!e.converged) continue;
    if (plan.winner_key.empty()) {
      plan.winner = e.point;
      plan.winner_median_s = e.effective_s;
      plan.winner_key = e.store_key;
    }
  }
  if (plan.winner_key.empty()) {
    // Nothing converged (pathological deck): fall back to the incumbent so
    // the plan is still well-formed and self-describing.
    plan.winner = incumbent;
  }

  // --- device-choice table: the best measured host point and the best
  // measured device point, model-scaled along a mesh ladder so one plan can
  // answer "host or device?" for any request mesh (§IV-C).  Host side: the
  // lead member's measured median scaled by the ratio of host-model
  // projections at the ladder mesh vs the native mesh.  Device side: the
  // lead member's measured counters scaled with machine::scale_counters and
  // re-projected on the device model (re-deriving the occupancy factor at
  // the scaled working set — the term the crossover hinges on).
  const FrontierEntry* host_best = nullptr;
  const FrontierEntry* device_best = nullptr;
  for (const FrontierEntry& e : plan.frontier) {
    if (!e.converged) continue;
    if (machine::is_gpu_variant(e.point.variant)) {
      if (device_best == nullptr) device_best = &e;
    } else if (host_best == nullptr) {
      host_best = &e;
    }
  }
  if (host_best != nullptr && device_best != nullptr) {
    plan.has_device_choice = true;
    plan.host_choice = host_best->point;
    plan.device_choice = device_best->point;

    std::vector<int> ladder = {250, 500, 1000, 2000, 4000};
    ladder.push_back(std::max(problem.x_cells, problem.y_cells));
    std::sort(ladder.begin(), ladder.end());
    ladder.erase(std::unique(ladder.begin(), ladder.end()), ladder.end());

    const LeadRow& host_lead = lead_rows[host_best->point.id()];
    const LeadRow& device_lead = lead_rows[device_best->point.id()];
    const tl::ProblemConfig host_native =
        point_problem(problem, host_best->point);
    const double host_native_model =
        model_seconds(host_native, host_best->point, host);
    const double native_cells =
        static_cast<double>(problem.x_cells) * problem.y_cells;
    const double native_width =
        static_cast<double>(std::max(problem.x_cells, problem.y_cells));
    const machine::EfficiencyProfile device_prof =
        machine::efficiency_for(device_best->point.variant, device);
    for (const int mesh : ladder) {
      DeviceChoice d;
      d.mesh = mesh;
      const double cells_ratio =
          static_cast<double>(mesh) * mesh / native_cells;
      const double iter_ratio = static_cast<double>(mesh) / native_width;

      tl::ProblemConfig scaled = host_native;
      scaled.x_cells = mesh;
      scaled.y_cells = mesh;
      const double scaled_model =
          model_seconds(scaled, host_best->point, host);
      const double ratio = (host_native_model > 0.0 && scaled_model > 0.0)
                               ? scaled_model / host_native_model
                               : cells_ratio * iter_ratio;
      d.host_s = host_lead.median_s * ratio;

      const machine::Counters scaled_counters = machine::scale_counters(
          device_lead.counters, cells_ratio, iter_ratio, iter_ratio);
      const auto scaled_ws = static_cast<std::int64_t>(std::llround(
          static_cast<double>(device_lead.working_set_bytes) * cells_ratio));
      d.device_s =
          machine::project_time(scaled_counters, device, device_prof,
                                scaled_ws)
              .total();
      d.use_device = d.device_s < d.host_s;
      if (d.use_device && plan.crossover_mesh == 0) plan.crossover_mesh = mesh;
      plan.device_table.push_back(d);
    }
  }

  // The calibration feedback loop leaves *fitted* constants installed in
  // host_machine()/device_machine(); scoring fallbacks are scoped to this
  // tune, so restore whatever was active when nothing was actually learned
  // from the store.
  if (!fit_used && !device_fit_used) machine::set_host_overrides(saved);
  return outcome;
}

std::string frontier_markdown(const TuneOutcome& outcome) {
  std::ostringstream os;
  const TunedPlan& plan = outcome.plan;
  os << "# Tuned plan: " << plan.deck << " (" << plan.mesh_x << "x"
     << plan.mesh_y << ", " << plan.steps << " steps)\n\n";
  os << "Considered " << outcome.considered.size()
     << " candidates, measured " << plan.frontier.size() << " (budget "
     << plan.budget << "): " << outcome.measured << " executed, "
     << outcome.cached << " store hits.\n\n";
  os << "Model prune scored on " << plan.scored_bw_gbs << " GB/s ("
     << plan.bw_source << ") and " << plan.scored_launch_overhead_us
     << " us/launch (" << plan.launch_source << ")";
  if (plan.calibrated) {
    os << "; fit over " << outcome.fit.rows_used << " store rows";
  }
  os << ".\n";
  os << "Device model: " << plan.scored_device_bw_gbs << " GB/s ("
     << plan.device_bw_source << "), " << plan.scored_device_launch_us
     << " us/launch (" << plan.device_launch_source << "), PCIe "
     << plan.scored_pcie_gbs << " GB/s (" << plan.pcie_source << ")";
  if (plan.device_calibrated) {
    os << "; fit over " << outcome.device_fit.rows_used << " device rows";
  }
  os << ".\n\n";
  os << "| candidate | model s | measured median s | device proj s | "
        "effective s | converged |\n";
  os << "|---|---|---|---|---|---|\n";
  for (const FrontierEntry& e : plan.frontier) {
    os << "| " << e.point.id() << (e.point == plan.winner ? " **(winner)**" : "")
       << " | " << e.model_seconds << " | " << e.median_s << " | ";
    if (e.projected_device_s > 0.0) {
      os << e.projected_device_s;
    } else {
      os << "-";
    }
    os << " | " << e.effective_s << " | " << (e.converged ? "yes" : "no")
       << " |\n";
  }
  os << "\nWinner: `" << plan.winner.id() << "`";
  if (plan.incumbent_median_s > 0.0 && plan.winner_median_s > 0.0) {
    os << " — " << plan.incumbent_median_s / plan.winner_median_s
       << "x vs the deck default";
  }
  os << "\n";
  if (plan.has_device_choice) {
    os << "\n## Device choice (host `" << plan.host_choice.id()
       << "` vs device `" << plan.device_choice.id() << "`)\n\n";
    os << "| mesh | host s | device s | choice |\n";
    os << "|---|---|---|---|\n";
    for (const DeviceChoice& d : plan.device_table) {
      os << "| " << d.mesh << "^2 | " << d.host_s << " | " << d.device_s
         << " | " << (d.use_device ? "device" : "host") << " |\n";
    }
    if (plan.crossover_mesh > 0) {
      os << "\nCrossover at " << plan.crossover_mesh
         << "^2: host below, device above.\n";
    } else {
      os << "\nNo crossover within the table: host everywhere.\n";
    }
  }
  return os.str();
}

}  // namespace tuning
