#include "tuning/plan.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace tuning {

std::string ExecutionPoint::id() const {
  std::ostringstream os;
  os << variant << "|t" << threads << "|r" << ranks << "|h" << hybrid_threads
     << "|tile" << tile_rows << (fused ? "|fused" : "|unfused") << '|'
     << solver << '+' << precon;
  return os.str();
}

namespace {

results::Json point_to_json(const ExecutionPoint& p) {
  results::Json j = results::Json::object();
  j.set("variant", results::Json(p.variant));
  j.set("threads", results::Json(p.threads));
  j.set("ranks", results::Json(p.ranks));
  j.set("hybrid_threads", results::Json(p.hybrid_threads));
  j.set("tile_rows", results::Json(p.tile_rows));
  j.set("fused", results::Json(p.fused));
  j.set("solver", results::Json(p.solver));
  j.set("precon", results::Json(p.precon));
  return j;
}

ExecutionPoint point_from_json(const results::Json& j) {
  ExecutionPoint p;
  p.variant = j.get_string("variant", p.variant);
  p.threads = static_cast<int>(j.get_int("threads", p.threads));
  p.ranks = static_cast<int>(j.get_int("ranks", p.ranks));
  p.hybrid_threads =
      static_cast<int>(j.get_int("hybrid_threads", p.hybrid_threads));
  p.tile_rows = static_cast<int>(j.get_int("tile_rows", p.tile_rows));
  if (const results::Json* f = j.get("fused")) p.fused = f->as_bool();
  p.solver = j.get_string("solver", p.solver);
  p.precon = j.get_string("precon", p.precon);
  return p;
}

}  // namespace

results::Json plan_to_json(const TunedPlan& plan) {
  results::Json j = results::Json::object();
  j.set("schema_version", results::Json(plan.schema_version));
  j.set("deck", results::Json(plan.deck));
  j.set("deck_hash", results::Json(plan.deck_hash));
  j.set("mesh_x", results::Json(plan.mesh_x));
  j.set("mesh_y", results::Json(plan.mesh_y));
  j.set("steps", results::Json(plan.steps));
  j.set("budget", results::Json(plan.budget));
  j.set("winner", point_to_json(plan.winner));
  j.set("winner_median_s", results::Json(plan.winner_median_s));
  j.set("incumbent_median_s", results::Json(plan.incumbent_median_s));
  j.set("winner_key", results::Json(plan.winner_key));
  j.set("calibrated", results::Json(plan.calibrated));
  j.set("scored_bw_gbs", results::Json(plan.scored_bw_gbs));
  j.set("scored_launch_overhead_us",
        results::Json(plan.scored_launch_overhead_us));
  j.set("bw_source", results::Json(plan.bw_source));
  j.set("launch_source", results::Json(plan.launch_source));
  j.set("device_calibrated", results::Json(plan.device_calibrated));
  j.set("scored_device_bw_gbs", results::Json(plan.scored_device_bw_gbs));
  j.set("scored_device_launch_us", results::Json(plan.scored_device_launch_us));
  j.set("scored_pcie_gbs", results::Json(plan.scored_pcie_gbs));
  j.set("device_bw_source", results::Json(plan.device_bw_source));
  j.set("device_launch_source", results::Json(plan.device_launch_source));
  j.set("pcie_source", results::Json(plan.pcie_source));
  j.set("has_device_choice", results::Json(plan.has_device_choice));
  j.set("host_choice", point_to_json(plan.host_choice));
  j.set("device_choice", point_to_json(plan.device_choice));
  j.set("crossover_mesh", results::Json(plan.crossover_mesh));
  results::Json table = results::Json::array();
  for (const DeviceChoice& d : plan.device_table) {
    results::Json dj = results::Json::object();
    dj.set("mesh", results::Json(d.mesh));
    dj.set("host_s", results::Json(d.host_s));
    dj.set("device_s", results::Json(d.device_s));
    dj.set("use_device", results::Json(d.use_device));
    table.push_back(std::move(dj));
  }
  j.set("device_table", std::move(table));
  results::Json frontier = results::Json::array();
  for (const FrontierEntry& e : plan.frontier) {
    results::Json fj = results::Json::object();
    fj.set("point", point_to_json(e.point));
    fj.set("model_seconds", results::Json(e.model_seconds));
    fj.set("converged", results::Json(e.converged));
    fj.set("median_s", results::Json(e.median_s));
    fj.set("min_s", results::Json(e.min_s));
    fj.set("projected_device_s", results::Json(e.projected_device_s));
    fj.set("effective_s", results::Json(e.effective_s));
    fj.set("store_key", results::Json(e.store_key));
    frontier.push_back(std::move(fj));
  }
  j.set("frontier", std::move(frontier));
  return j;
}

TunedPlan plan_from_json(const results::Json& doc) {
  TL_REQUIRE(doc.is_object(), "tuned plan must be a JSON object");
  const std::int64_t version = doc.get_int("schema_version", -1);
  if (version != kPlanSchemaVersion) {
    throw tl::ConfigError("tuned plan schema_version " +
                          std::to_string(version) + " != supported " +
                          std::to_string(kPlanSchemaVersion));
  }
  TunedPlan plan;
  plan.deck = doc.get_string("deck", "");
  plan.deck_hash = doc.get_string("deck_hash", "");
  plan.mesh_x = static_cast<int>(doc.get_int("mesh_x", 0));
  plan.mesh_y = static_cast<int>(doc.get_int("mesh_y", 0));
  plan.steps = static_cast<int>(doc.get_int("steps", 0));
  plan.budget = static_cast<int>(doc.get_int("budget", 0));
  if (const results::Json* w = doc.get("winner")) {
    plan.winner = point_from_json(*w);
  } else {
    throw tl::ConfigError("tuned plan has no winner");
  }
  plan.winner_median_s = doc.get_double("winner_median_s", 0.0);
  plan.incumbent_median_s = doc.get_double("incumbent_median_s", 0.0);
  plan.winner_key = doc.get_string("winner_key", "");
  if (const results::Json* c = doc.get("calibrated")) {
    plan.calibrated = c->as_bool();
  }
  plan.scored_bw_gbs = doc.get_double("scored_bw_gbs", 0.0);
  plan.scored_launch_overhead_us =
      doc.get_double("scored_launch_overhead_us", 0.0);
  plan.bw_source = doc.get_string("bw_source", plan.bw_source);
  plan.launch_source = doc.get_string("launch_source", plan.launch_source);
  if (const results::Json* c = doc.get("device_calibrated")) {
    plan.device_calibrated = c->as_bool();
  }
  plan.scored_device_bw_gbs = doc.get_double("scored_device_bw_gbs", 0.0);
  plan.scored_device_launch_us = doc.get_double("scored_device_launch_us", 0.0);
  plan.scored_pcie_gbs = doc.get_double("scored_pcie_gbs", 0.0);
  plan.device_bw_source =
      doc.get_string("device_bw_source", plan.device_bw_source);
  plan.device_launch_source =
      doc.get_string("device_launch_source", plan.device_launch_source);
  plan.pcie_source = doc.get_string("pcie_source", plan.pcie_source);
  if (const results::Json* c = doc.get("has_device_choice")) {
    plan.has_device_choice = c->as_bool();
  }
  if (const results::Json* p = doc.get("host_choice")) {
    plan.host_choice = point_from_json(*p);
  }
  if (const results::Json* p = doc.get("device_choice")) {
    plan.device_choice = point_from_json(*p);
  }
  plan.crossover_mesh = static_cast<int>(doc.get_int("crossover_mesh", 0));
  if (const results::Json* table = doc.get("device_table")) {
    if (table->is_array()) {
      for (const results::Json& dj : table->items()) {
        DeviceChoice d;
        d.mesh = static_cast<int>(dj.get_int("mesh", 0));
        d.host_s = dj.get_double("host_s", 0.0);
        d.device_s = dj.get_double("device_s", 0.0);
        if (const results::Json* u = dj.get("use_device")) {
          d.use_device = u->as_bool();
        }
        plan.device_table.push_back(d);
      }
    }
  }
  if (const results::Json* frontier = doc.get("frontier")) {
    if (frontier->is_array()) {
      for (const results::Json& fj : frontier->items()) {
        FrontierEntry e;
        if (const results::Json* p = fj.get("point")) {
          e.point = point_from_json(*p);
        }
        e.model_seconds = fj.get_double("model_seconds", 0.0);
        if (const results::Json* c = fj.get("converged")) {
          e.converged = c->as_bool();
        }
        e.median_s = fj.get_double("median_s", 0.0);
        e.min_s = fj.get_double("min_s", 0.0);
        e.projected_device_s = fj.get_double("projected_device_s", 0.0);
        e.effective_s = fj.get_double("effective_s", 0.0);
        e.store_key = fj.get_string("store_key", "");
        plan.frontier.push_back(std::move(e));
      }
    }
  }
  return plan;
}

TunedPlan load_plan(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw tl::ConfigError("cannot open tuned plan '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return plan_from_json(results::Json::parse(ss.str()));
}

void save_plan(const TunedPlan& plan, const std::string& path) {
  std::ofstream out(path);
  TL_REQUIRE(out.good(), "cannot open tuned plan '" + path + "' for write");
  out << plan_to_json(plan).dump(2) << "\n";
  TL_REQUIRE(out.good(), "short write to tuned plan '" + path + "'");
}

namespace {

std::string apply_point(const ExecutionPoint& w, tl::ProblemConfig* problem,
                        tea::RunOptions* options) {
  if (problem != nullptr) {
    problem->solver = tl::solver_from_string(w.solver);
    problem->preconditioner = tl::precon_from_string(w.precon);
  }
  if (options != nullptr) {
    options->threads = w.threads;
    options->ranks = w.ranks;
    options->hybrid_threads = w.hybrid_threads;
    options->tile.tile_rows = w.tile_rows;
    options->fuse_operator_dot = w.fused;
  }
  return w.variant;
}

}  // namespace

std::string apply_plan(const TunedPlan& plan, tl::ProblemConfig* problem,
                       tea::RunOptions* options) {
  return apply_point(plan.winner, problem, options);
}

std::string apply_plan_for_mesh(const TunedPlan& plan,
                                tl::ProblemConfig* problem,
                                tea::RunOptions* options) {
  if (!plan.has_device_choice || plan.device_table.empty() ||
      problem == nullptr) {
    return apply_plan(plan, problem, options);
  }
  const int mesh = std::max(problem->x_cells, problem->y_cells);
  // Largest rung not above the request mesh; below the smallest rung the
  // smallest applies (the table is sorted ascending).
  const DeviceChoice* chosen = &plan.device_table.front();
  for (const DeviceChoice& d : plan.device_table) {
    if (d.mesh <= mesh) chosen = &d;
  }
  const ExecutionPoint& point =
      chosen->use_device ? plan.device_choice : plan.host_choice;
  return apply_point(point, problem, options);
}

}  // namespace tuning
