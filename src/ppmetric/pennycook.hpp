// pennycook.hpp — the performance-portability metric of Pennycook, Sewall &
// Lee (arXiv:1611.07409), as used in the paper's §V:
//
//   PP(a, p, H) = |H| / sum_{i in H} 1/e_i(a, p)   if a runs on all i in H
//              = 0                                 otherwise
//
// where e_i is either *application efficiency* (best observed time on i
// divided by a's time on i) or *architecture efficiency* (achieved fraction
// of i's peak bandwidth or compute).
#pragma once

#include <optional>
#include "common/span.hpp"

namespace ppm {

/// Harmonic-mean metric over per-platform efficiencies in (0, 1].  Returns 0
/// if any platform is unsupported (nullopt) or has non-positive efficiency;
/// the set must be non-empty.
double pennycook(tl::span<const std::optional<double>> efficiencies);

/// Application efficiency: best time on the platform / this time.
double application_efficiency(double best_time_s, double time_s);

/// Architecture efficiency: achieved / peak (bandwidth or compute).
double architecture_efficiency(double achieved, double peak);

}  // namespace ppm
