// report.hpp — assembles the paper's Table III from per-(variant, machine)
// results: per-framework architecture efficiency (compute & bandwidth) and
// application efficiency on each system, then the Pennycook metric over the
// CPU set and the CPU ∪ GPU set.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/table.hpp"

namespace ppm {

/// One measured/projected run of one backend variant on one machine.
struct VariantResult {
  std::string variant;   // e.g. "ops-tiled"
  std::string machine;   // "xeon" | "knl" | "p100"
  double time_s = 0.0;
  double achieved_bw_gbs = 0.0;
  double achieved_gflops = 0.0;
  double peak_bw_gbs = 0.0;
  double peak_gflops = 0.0;
};

struct MachineEfficiency {
  double arch_compute = 0.0;  // fraction of peak FLOP/s
  double arch_bw = 0.0;       // fraction of peak bandwidth
  double app = 0.0;           // best time on machine / this framework's best
  bool supported = false;
};

struct FrameworkRow {
  std::string framework;  // "manual" | "ops" | "kokkos" | "raja"
  std::map<std::string, MachineEfficiency> per_machine;
  // Pennycook metric over the CPU machines and over CPU ∪ GPU, for each
  // efficiency flavour (paper Table III's P columns).
  double p_cpu_arch_compute = 0.0;
  double p_cpu_arch_bw = 0.0;
  double p_cpu_app = 0.0;
  double p_all_arch_compute = 0.0;
  double p_all_arch_bw = 0.0;
  double p_all_app = 0.0;
};

/// Build Table III rows.  `cpu_machines` / `gpu_machines` name the machine
/// ids forming H_cpu and H_gpu; frameworks are derived from variant prefixes
/// ("manual-omp" -> "manual").  Within a framework the best (fastest) variant
/// per machine represents it, as the paper does when it folds all manual
/// ports into one "Manual" row.
std::vector<FrameworkRow> build_table3(
    const std::vector<VariantResult>& results,
    const std::vector<std::string>& cpu_machines,
    const std::vector<std::string>& gpu_machines);

/// Render rows in the paper's layout.
tl::Table render_table3(const std::vector<FrameworkRow>& rows,
                        const std::vector<std::string>& cpu_machines,
                        const std::vector<std::string>& gpu_machines);

}  // namespace ppm
