// paper_data.hpp — the paper's published evaluation numbers, embedded for
// side-by-side comparison in the bench harnesses and EXPERIMENTS.md.
// Sources: Table III (exact values) and §IV's quantitative statements about
// Figures 1-2 (the figures themselves are bar charts; only a few absolute
// values are given in the text).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ppm::paper {

/// Table III row (percentages as fractions).
struct Table3Row {
  std::string framework;
  // xeon, knl: {compute, bw, app}; p100 likewise.
  double xeon_com, xeon_bw, xeon_app;
  double knl_com, knl_bw, knl_app;
  double p_cpu_com, p_cpu_bw, p_cpu_app;
  double p100_com, p100_bw, p100_app;
  double p_all_com, p_all_bw, p_all_app;
};

/// The paper's Table III (4000^2 mesh).
const std::vector<Table3Row>& table3();

/// Absolute times quoted in §IV-B (10 steps):
///   Kokkos OpenMP, 1000^2: 4.49 s (Xeon), 11.02 s (KNL).
struct QuotedTime {
  std::string variant;
  std::string machine;
  int mesh;  // 1000 or 4000
  double seconds;
};
const std::vector<QuotedTime>& quoted_times();

/// Qualitative orderings the text asserts (used as shape checks):
struct ShapeClaim {
  std::string description;
  // "faster": variant a beats variant b on machine m at mesh size.
  std::string a, b, machine;
  int mesh;
};
const std::vector<ShapeClaim>& shape_claims();

/// §IV-C: best-GPU vs best-CPU gap: 3.04% (1000^2), 50.57% (4000^2).
struct GpuCpuGap {
  int mesh;
  double percent;
};
const std::vector<GpuCpuGap>& gpu_cpu_gaps();

}  // namespace ppm::paper
