#include "ppmetric/paper_data.hpp"

namespace ppm::paper {

const std::vector<Table3Row>& table3() {
  // Values transcribed from the paper's Table III (percent / 100).
  static const std::vector<Table3Row> rows = {
      // fw       xeon com/bw/app      knl com/bw/app       P(cpu) com/bw/app    p100 com/bw/app      P(all) com/bw/app
      {"manual", 0.0096, 0.6049, 1.0000, 0.0152, 0.9161, 0.9373, 0.0118, 0.7319, 0.9676, 0.0236, 0.7570, 1.0000, 0.0142, 0.7401, 0.9782},
      {"ops",    0.0135, 0.8961, 0.6702, 0.0339, 0.9593, 1.0000, 0.0193, 0.9266, 0.8026, 0.0283, 0.6121, 0.5732, 0.0216, 0.7911, 0.7081},
      {"kokkos", 0.0273, 0.6411, 0.9145, 0.0157, 0.2359, 0.3140, 0.0200, 0.3449, 0.4674, 0.0530, 0.6586, 0.7265, 0.0252, 0.4100, 0.5305},
      {"raja",   0.0091, 0.5313, 0.8073, 0.0160, 0.6087, 0.8425, 0.0116, 0.5674, 0.8245, 0.0187, 0.7063, 0.6746, 0.0133, 0.6072, 0.7677},
  };
  return rows;
}

const std::vector<QuotedTime>& quoted_times() {
  static const std::vector<QuotedTime> times = {
      {"kokkos-omp", "xeon", 1000, 4.49},
      {"kokkos-omp", "knl", 1000, 11.02},
  };
  return times;
}

const std::vector<ShapeClaim>& shape_claims() {
  static const std::vector<ShapeClaim> claims = {
      {"manual MPI is almost always faster than manual OpenMP (4000^2 Xeon)",
       "manual-mpi", "manual-omp", "xeon", 4000},
      {"OPS MPI Tiled beats OPS OpenMP on the KNL (4000^2)",
       "ops-tiled", "ops-omp", "knl", 4000},
      {"OPS MPI Tiled beats OPS MPI+OpenMP on the KNL (4000^2)",
       "ops-tiled", "ops-hybrid", "knl", 4000},
      {"Kokkos OpenMP is the slowest OpenMP variant on the Xeon (1000^2): "
       "RAJA OpenMP beats it",
       "raja-omp", "kokkos-omp", "xeon", 1000},
      {"manual OpenACC (CPU) is the best implementation on the Xeon (4000^2): "
       "beats OPS tiled",
       "manual-acc-cpu", "ops-tiled", "xeon", 4000},
      {"RAJA OpenMP gives the best OpenMP time on the KNL (4000^2) vs Kokkos",
       "raja-omp", "kokkos-omp", "knl", 4000},
      {"manual CUDA is the fastest GPU variant (1000^2)",
       "manual-cuda", "kokkos-cuda", "p100", 1000},
      {"manual CUDA is the fastest GPU variant (4000^2)",
       "manual-cuda", "kokkos-cuda", "p100", 4000},
      {"Kokkos CUDA beats OPS CUDA on the P100 (4000^2)",
       "kokkos-cuda", "ops-cuda", "p100", 4000},
      {"Kokkos CUDA beats RAJA CUDA on the P100 (4000^2)",
       "kokkos-cuda", "raja-cuda", "p100", 4000},
      {"Kokkos CUDA beats manual OpenACC GPU at 1000^2",
       "kokkos-cuda", "manual-acc-gpu", "p100", 1000},
      {"RAJA CUDA beats OPS CUDA at 4000^2",
       "raja-cuda", "ops-cuda", "p100", 4000},
      {"OPS CUDA beats RAJA CUDA at 1000^2",
       "ops-cuda", "raja-cuda", "p100", 1000},
      {"CUDA beats OpenACC on the GPU (manual, 4000^2)",
       "manual-cuda", "manual-acc-gpu", "p100", 4000},
  };
  return claims;
}

const std::vector<GpuCpuGap>& gpu_cpu_gaps() {
  static const std::vector<GpuCpuGap> gaps = {
      {1000, 3.04},
      {4000, 50.57},
  };
  return gaps;
}

}  // namespace ppm::paper
