#include "ppmetric/report.hpp"

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "ppmetric/pennycook.hpp"

namespace ppm {

namespace {

std::string framework_of(const std::string& variant) {
  const auto dash = variant.find('-');
  return dash == std::string::npos ? variant : variant.substr(0, dash);
}

}  // namespace

std::vector<FrameworkRow> build_table3(
    const std::vector<VariantResult>& results,
    const std::vector<std::string>& cpu_machines,
    const std::vector<std::string>& gpu_machines) {
  // Best overall time per machine (application-efficiency denominator).
  std::map<std::string, double> best_time;
  for (const VariantResult& r : results) {
    auto [it, inserted] = best_time.emplace(r.machine, r.time_s);
    if (!inserted) it->second = std::min(it->second, r.time_s);
  }

  // Frameworks in first-seen order.
  std::vector<std::string> frameworks;
  for (const VariantResult& r : results) {
    const std::string fw = framework_of(r.variant);
    if (std::find(frameworks.begin(), frameworks.end(), fw) ==
        frameworks.end()) {
      frameworks.push_back(fw);
    }
  }

  std::vector<std::string> all_machines = cpu_machines;
  all_machines.insert(all_machines.end(), gpu_machines.begin(),
                      gpu_machines.end());

  std::vector<FrameworkRow> rows;
  for (const std::string& fw : frameworks) {
    FrameworkRow row;
    row.framework = fw;

    for (const std::string& m : all_machines) {
      // The framework is represented on each machine by its best variant,
      // independently for time (app eff) and achieved rates (arch eff) — the
      // paper notes these need not be the same implementation.
      MachineEfficiency eff;
      for (const VariantResult& r : results) {
        if (framework_of(r.variant) != fw || r.machine != m) continue;
        eff.supported = true;
        eff.app = std::max(eff.app,
                           application_efficiency(best_time[m], r.time_s));
        eff.arch_bw = std::max(
            eff.arch_bw, architecture_efficiency(r.achieved_bw_gbs,
                                                 r.peak_bw_gbs));
        eff.arch_compute = std::max(
            eff.arch_compute,
            architecture_efficiency(r.achieved_gflops, r.peak_gflops));
      }
      row.per_machine[m] = eff;
    }

    const auto metric = [&](const std::vector<std::string>& machines,
                            auto selector) {
      std::vector<std::optional<double>> effs;
      for (const std::string& m : machines) {
        const MachineEfficiency& e = row.per_machine.at(m);
        effs.push_back(e.supported ? std::optional<double>(selector(e))
                                   : std::nullopt);
      }
      return pennycook(effs);
    };

    row.p_cpu_arch_compute = metric(
        cpu_machines, [](const MachineEfficiency& e) { return e.arch_compute; });
    row.p_cpu_arch_bw =
        metric(cpu_machines, [](const MachineEfficiency& e) { return e.arch_bw; });
    row.p_cpu_app =
        metric(cpu_machines, [](const MachineEfficiency& e) { return e.app; });
    row.p_all_arch_compute = metric(
        all_machines, [](const MachineEfficiency& e) { return e.arch_compute; });
    row.p_all_arch_bw =
        metric(all_machines, [](const MachineEfficiency& e) { return e.arch_bw; });
    row.p_all_app =
        metric(all_machines, [](const MachineEfficiency& e) { return e.app; });
    rows.push_back(std::move(row));
  }
  return rows;
}

tl::Table render_table3(const std::vector<FrameworkRow>& rows,
                        const std::vector<std::string>& cpu_machines,
                        const std::vector<std::string>& gpu_machines) {
  std::vector<std::string> headers{"Version"};
  for (const std::string& m : cpu_machines) {
    headers.push_back("Eff(" + m + ") Com%");
    headers.push_back("Eff(" + m + ") BW%");
    headers.push_back("Eff(" + m + ") App%");
  }
  headers.push_back("P(CPU) Com%");
  headers.push_back("P(CPU) BW%");
  headers.push_back("P(CPU) App%");
  for (const std::string& m : gpu_machines) {
    headers.push_back("Eff(" + m + ") Com%");
    headers.push_back("Eff(" + m + ") BW%");
    headers.push_back("Eff(" + m + ") App%");
  }
  headers.push_back("P(All) Com%");
  headers.push_back("P(All) BW%");
  headers.push_back("P(All) App%");

  tl::Table table(headers);
  const auto pct = [](double v) { return tl::Table::num(100.0 * v, 2); };
  for (const FrameworkRow& row : rows) {
    std::vector<std::string> cells{row.framework};
    for (const std::string& m : cpu_machines) {
      const MachineEfficiency& e = row.per_machine.at(m);
      if (e.supported) {
        cells.push_back(pct(e.arch_compute));
        cells.push_back(pct(e.arch_bw));
        cells.push_back(pct(e.app));
      } else {
        cells.insert(cells.end(), {"-", "-", "-"});
      }
    }
    cells.push_back(pct(row.p_cpu_arch_compute));
    cells.push_back(pct(row.p_cpu_arch_bw));
    cells.push_back(pct(row.p_cpu_app));
    for (const std::string& m : gpu_machines) {
      const MachineEfficiency& e = row.per_machine.at(m);
      if (e.supported) {
        cells.push_back(pct(e.arch_compute));
        cells.push_back(pct(e.arch_bw));
        cells.push_back(pct(e.app));
      } else {
        cells.insert(cells.end(), {"-", "-", "-"});
      }
    }
    cells.push_back(pct(row.p_all_arch_compute));
    cells.push_back(pct(row.p_all_arch_bw));
    cells.push_back(pct(row.p_all_app));
    table.add_row(std::move(cells));
  }
  return table;
}

}  // namespace ppm
