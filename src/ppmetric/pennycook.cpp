#include "ppmetric/pennycook.hpp"

#include "common/error.hpp"

namespace ppm {

double pennycook(tl::span<const std::optional<double>> efficiencies) {
  TL_REQUIRE(!efficiencies.empty(), "pennycook metric over an empty set");
  double inv_sum = 0.0;
  for (const std::optional<double>& e : efficiencies) {
    if (!e.has_value() || *e <= 0.0) return 0.0;
    inv_sum += 1.0 / *e;
  }
  return static_cast<double>(efficiencies.size()) / inv_sum;
}

double application_efficiency(double best_time_s, double time_s) {
  if (time_s <= 0.0) return 0.0;
  return best_time_s / time_s;
}

double architecture_efficiency(double achieved, double peak) {
  if (peak <= 0.0) return 0.0;
  return achieved / peak;
}

}  // namespace ppm
