#include "validation/calibrate.hpp"

#include <algorithm>
#include <cmath>

namespace validation {

namespace {

/// "kernel-<k>/<v>" -> "<v>"; anything else unchanged.
std::string kernel_variant_suffix(const std::string& variant) {
  if (variant.rfind("kernel-", 0) != 0) return variant;
  const auto slash = variant.find('/');
  if (slash == std::string::npos) return variant;
  return variant.substr(slash + 1);
}

bool contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

}  // namespace

std::vector<CalibrationRow> calibration_rows(
    const results::ResultStore& store,
    const std::vector<std::string>& variants) {
  std::vector<CalibrationRow> out;
  for (const results::ResultRow& r : store.rows()) {
    if (r.platform != "host") continue;  // modeled rows carry no evidence
    if (r.deck.rfind(kTuneDeckPrefix, 0) == 0) continue;  // tuner output
    const bool kernel_row = r.variant.rfind("kernel-", 0) == 0;
    if (!contains(variants, kernel_variant_suffix(r.variant))) continue;
    if (r.timing.min_s <= 0.0) continue;
    const double bytes = static_cast<double>(r.counters.total_bytes());
    if (bytes <= 0.0) continue;
    // Kernel rows: counters cover one timed sample of `iterations` calls,
    // timing stats are per call — normalize the counters to match.
    const double unit =
        kernel_row ? static_cast<double>(std::max<long>(1, r.iterations)) : 1.0;

    CalibrationRow row;
    row.label = r.deck + "/" + r.variant;
    row.gigabytes = bytes / unit / 1e9;
    row.launches = static_cast<double>(r.counters.kernel_launches) / unit;
    row.seconds = r.timing.min_s;
    out.push_back(std::move(row));
  }
  return out;
}

CalibrationFit fit_host_model(const std::vector<CalibrationRow>& rows) {
  CalibrationFit fit;
  fit.rows_used = static_cast<int>(rows.size());
  if (rows.size() < 2) {
    fit.note = "need at least two observations";
    return fit;
  }
  // calibration_rows() filters these, but direct callers may not: a
  // non-positive or non-finite time would turn the normal equations into
  // NaN that sails straight through every comparison below.
  for (const CalibrationRow& r : rows) {
    if (!(r.seconds > 0.0) || !std::isfinite(r.seconds) ||
        !std::isfinite(r.gigabytes) || !std::isfinite(r.launches)) {
      fit.note = "unusable observation '" + r.label + "'";
      return fit;
    }
  }

  // Normal equations for t ≈ a*gb + b*launches with relative weighting
  // (each observation divided by its own time, so a microsecond kernel call
  // and a multi-second solve count equally — the mix is what makes a and b
  // separable).  Accumulated in row order: fixed association order means
  // bit-identical fits for identical stores.
  double sxx = 0.0, sxy = 0.0, syy = 0.0, sxt = 0.0, syt = 0.0;
  for (const CalibrationRow& r : rows) {
    const double x = r.gigabytes / r.seconds;
    const double y = r.launches / r.seconds;
    sxx += x * x;
    sxy += x * y;
    syy += y * y;
    sxt += x;
    syt += y;
  }
  if (sxx <= 0.0) {
    fit.note = "no traffic in any observation";
    return fit;
  }

  const double det = sxx * syy - sxy * sxy;
  double a, b;
  // Degenerate when every row has the same launches-per-GB mix (det ~ 0
  // relative to the Gram diagonal): only the combined streaming cost is
  // observable, so drop the launch term rather than amplify noise.
  if (syy <= 0.0 || det <= 1e-12 * sxx * syy) {
    a = sxt / sxx;
    b = 0.0;
    fit.note = "degenerate system: launch term dropped";
  } else {
    a = (sxt * syy - syt * sxy) / det;
    b = (syt * sxx - sxt * sxy) / det;
    if (b < 0.0) {
      // Unphysical: launches cannot give time back.  Deterministically fall
      // back to the bandwidth-only model.
      a = sxt / sxx;
      b = 0.0;
      fit.note = "negative launch overhead: launch term dropped";
    }
  }
  if (a <= 0.0) {
    fit.note = "non-positive streaming cost: store rows are not host timings?";
    return fit;
  }

  fit.ok = true;
  fit.seconds_per_gb = a;
  fit.launch_overhead_s = b;
  fit.fitted_bw_gbs = 1.0 / a;
  fit.launch_overhead_us = b * 1e6;

  double sq = 0.0, worst = 0.0;
  for (const CalibrationRow& r : rows) {
    const double pred = a * r.gigabytes + b * r.launches;
    const double rel = (pred - r.seconds) / r.seconds;
    sq += rel * rel;
    worst = std::max(worst, std::fabs(rel));
  }
  fit.rms_rel_error = std::sqrt(sq / static_cast<double>(rows.size()));
  fit.max_rel_error = worst;
  return fit;
}

}  // namespace validation
