#include "validation/calibrate.hpp"

#include <algorithm>
#include <cmath>

#include "machine/efficiency.hpp"
#include "machine/machine_model.hpp"
#include "machine/roofline.hpp"

namespace validation {

namespace {

/// "kernel-<k>/<v>" -> "<v>"; anything else unchanged.
std::string kernel_variant_suffix(const std::string& variant) {
  if (variant.rfind("kernel-", 0) != 0) return variant;
  const auto slash = variant.find('/');
  if (slash == std::string::npos) return variant;
  return variant.substr(slash + 1);
}

bool contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

}  // namespace

std::vector<CalibrationRow> calibration_rows(
    const results::ResultStore& store,
    const std::vector<std::string>& variants) {
  std::vector<CalibrationRow> out;
  for (const results::ResultRow& r : store.rows()) {
    if (r.platform != "host") continue;  // modeled rows carry no evidence
    if (r.deck.rfind(kTuneDeckPrefix, 0) == 0) continue;  // tuner output
    const bool kernel_row = r.variant.rfind("kernel-", 0) == 0;
    if (!contains(variants, kernel_variant_suffix(r.variant))) continue;
    if (r.timing.min_s <= 0.0) continue;
    const double bytes = static_cast<double>(r.counters.total_bytes());
    if (bytes <= 0.0) continue;
    // Kernel rows: counters cover one timed sample of `iterations` calls,
    // timing stats are per call — normalize the counters to match.
    const double unit =
        kernel_row ? static_cast<double>(std::max<long>(1, r.iterations)) : 1.0;

    CalibrationRow row;
    row.label = r.deck + "/" + r.variant;
    row.gigabytes = bytes / unit / 1e9;
    row.launches = static_cast<double>(r.counters.kernel_launches) / unit;
    row.seconds = r.timing.min_s;
    out.push_back(std::move(row));
  }
  return out;
}

CalibrationFit fit_host_model(const std::vector<CalibrationRow>& rows) {
  CalibrationFit fit;
  fit.rows_used = static_cast<int>(rows.size());
  if (rows.size() < 2) {
    fit.note = "need at least two observations";
    return fit;
  }
  // calibration_rows() filters these, but direct callers may not: a
  // non-positive or non-finite time would turn the normal equations into
  // NaN that sails straight through every comparison below.
  for (const CalibrationRow& r : rows) {
    if (!(r.seconds > 0.0) || !std::isfinite(r.seconds) ||
        !std::isfinite(r.gigabytes) || !std::isfinite(r.launches)) {
      fit.note = "unusable observation '" + r.label + "'";
      return fit;
    }
  }

  // Normal equations for t ≈ a*gb + b*launches with relative weighting
  // (each observation divided by its own time, so a microsecond kernel call
  // and a multi-second solve count equally — the mix is what makes a and b
  // separable).  Accumulated in row order: fixed association order means
  // bit-identical fits for identical stores.
  double sxx = 0.0, sxy = 0.0, syy = 0.0, sxt = 0.0, syt = 0.0;
  for (const CalibrationRow& r : rows) {
    const double x = r.gigabytes / r.seconds;
    const double y = r.launches / r.seconds;
    sxx += x * x;
    sxy += x * y;
    syy += y * y;
    sxt += x;
    syt += y;
  }
  if (sxx <= 0.0) {
    fit.note = "no traffic in any observation";
    return fit;
  }

  const double det = sxx * syy - sxy * sxy;
  double a, b;
  // Degenerate when every row has the same launches-per-GB mix (det ~ 0
  // relative to the Gram diagonal): only the combined streaming cost is
  // observable, so drop the launch term rather than amplify noise.
  if (syy <= 0.0 || det <= 1e-12 * sxx * syy) {
    a = sxt / sxx;
    b = 0.0;
    fit.note = "degenerate system: launch term dropped";
  } else {
    a = (sxt * syy - syt * sxy) / det;
    b = (syt * sxx - sxt * sxy) / det;
    if (b < 0.0) {
      // Unphysical: launches cannot give time back.  Deterministically fall
      // back to the bandwidth-only model.
      a = sxt / sxx;
      b = 0.0;
      fit.note = "negative launch overhead: launch term dropped";
    }
  }
  if (a <= 0.0) {
    fit.note = "non-positive streaming cost: store rows are not host timings?";
    return fit;
  }

  fit.ok = true;
  fit.seconds_per_gb = a;
  fit.launch_overhead_s = b;
  fit.fitted_bw_gbs = 1.0 / a;
  fit.launch_overhead_us = b * 1e6;

  double sq = 0.0, worst = 0.0;
  for (const CalibrationRow& r : rows) {
    const double pred = a * r.gigabytes + b * r.launches;
    const double rel = (pred - r.seconds) / r.seconds;
    sq += rel * rel;
    worst = std::max(worst, std::fabs(rel));
  }
  fit.rms_rel_error = std::sqrt(sq / static_cast<double>(rows.size()));
  fit.max_rel_error = worst;
  return fit;
}

std::vector<DeviceCalibrationRow> device_calibration_rows(
    const results::ResultStore& store) {
  const machine::MachineModel& p100 = machine::tesla_p100();
  std::vector<DeviceCalibrationRow> out;
  for (const results::ResultRow& r : store.rows()) {
    if (r.platform != "host") continue;
    if (r.deck.rfind(kTuneDeckPrefix, 0) == 0) continue;
    if (!machine::is_gpu_variant(r.variant)) continue;
    const results::Projection* proj = nullptr;
    for (const results::Projection& p : r.projections) {
      if (p.machine == "p100") proj = &p;
    }
    if (proj == nullptr || !(proj->seconds > 0.0)) continue;
    const double bytes = static_cast<double>(r.counters.total_bytes());
    if (bytes <= 0.0) continue;

    const machine::EfficiencyProfile profile =
        machine::efficiency_for(r.variant, p100);
    const double derate =
        profile.bw_fraction *
        machine::gpu_occupancy_factor(p100, r.working_set_bytes);
    if (!(derate > 0.0)) continue;

    DeviceCalibrationRow row;
    row.label = r.deck + "/" + r.variant;
    row.eff_gigabytes = bytes / 1e9 / derate;
    row.scaled_launches = static_cast<double>(r.counters.kernel_launches) *
                          profile.launch_multiplier;
    row.pcie_gigabytes =
        static_cast<double>(r.counters.h2d_bytes + r.counters.d2h_bytes) / 1e9;
    row.offset_s = static_cast<double>(r.counters.reductions) *
                   profile.reduction_sync_us * 1e-6;
    row.seconds = proj->seconds;
    if (!(row.seconds - row.offset_s > 0.0)) continue;
    out.push_back(std::move(row));
  }
  return out;
}

namespace {

/// Solve the (possibly reduced) normal equations S x = v over the active
/// columns {bandwidth, launches?, pcie?}.  Returns false when the active
/// system is degenerate (determinant vanishes relative to the Gram
/// diagonal), leaving the outputs untouched.
bool solve_device_normal(const double S[3][3], const double v[3], bool use_y,
                         bool use_z, double* a, double* b, double* c) {
  constexpr double kRelDet = 1e-12;
  if (use_y && use_z) {
    const double det = S[0][0] * (S[1][1] * S[2][2] - S[1][2] * S[1][2]) -
                       S[0][1] * (S[0][1] * S[2][2] - S[1][2] * S[0][2]) +
                       S[0][2] * (S[0][1] * S[1][2] - S[1][1] * S[0][2]);
    const double scale = S[0][0] * S[1][1] * S[2][2];
    if (!(S[1][1] > 0.0) || !(S[2][2] > 0.0) || det <= kRelDet * scale) {
      return false;
    }
    *a = (v[0] * (S[1][1] * S[2][2] - S[1][2] * S[1][2]) -
          S[0][1] * (v[1] * S[2][2] - S[1][2] * v[2]) +
          S[0][2] * (v[1] * S[1][2] - S[1][1] * v[2])) /
         det;
    *b = (S[0][0] * (v[1] * S[2][2] - v[2] * S[1][2]) -
          v[0] * (S[0][1] * S[2][2] - S[1][2] * S[0][2]) +
          S[0][2] * (S[0][1] * v[2] - v[1] * S[0][2])) /
         det;
    *c = (S[0][0] * (S[1][1] * v[2] - S[1][2] * v[1]) -
          S[0][1] * (S[0][1] * v[2] - v[1] * S[0][2]) +
          v[0] * (S[0][1] * S[1][2] - S[1][1] * S[0][2])) /
         det;
    return true;
  }
  if (use_y || use_z) {
    const int k = use_y ? 1 : 2;
    const double skk = S[k][k];
    const double s0k = S[0][k];
    const double det = S[0][0] * skk - s0k * s0k;
    if (!(skk > 0.0) || det <= kRelDet * S[0][0] * skk) return false;
    *a = (v[0] * skk - v[k] * s0k) / det;
    const double other = (v[k] * S[0][0] - v[0] * s0k) / det;
    *b = use_y ? other : 0.0;
    *c = use_z ? other : 0.0;
    return true;
  }
  *a = v[0] / S[0][0];
  *b = 0.0;
  *c = 0.0;
  return true;
}

void append_note(std::string* note, const std::string& text) {
  if (!note->empty()) *note += "; ";
  *note += text;
}

}  // namespace

DeviceCalibrationFit fit_device_model(
    const std::vector<DeviceCalibrationRow>& rows) {
  DeviceCalibrationFit fit;
  fit.rows_used = static_cast<int>(rows.size());
  if (rows.size() < 3) {
    fit.note = "need at least three observations";
    return fit;
  }
  for (const DeviceCalibrationRow& r : rows) {
    const double t = r.seconds - r.offset_s;
    if (!(t > 0.0) || !std::isfinite(t) || !std::isfinite(r.eff_gigabytes) ||
        !std::isfinite(r.scaled_launches) || !std::isfinite(r.pcie_gigabytes)) {
      fit.note = "unusable observation '" + r.label + "'";
      return fit;
    }
  }

  // Normal equations for t' ≈ a*effGB + b*launches + c*pcieGB (t' is the
  // projection minus the fixed reduction-sync offset) with the same relative
  // weighting and fixed accumulation order as the host fit.
  double S[3][3] = {{0, 0, 0}, {0, 0, 0}, {0, 0, 0}};
  double v[3] = {0, 0, 0};
  for (const DeviceCalibrationRow& r : rows) {
    const double t = r.seconds - r.offset_s;
    const double u[3] = {r.eff_gigabytes / t, r.scaled_launches / t,
                         r.pcie_gigabytes / t};
    for (int i = 0; i < 3; ++i) {
      for (int j = i; j < 3; ++j) S[i][j] += u[i] * u[j];
      v[i] += u[i];
    }
  }
  S[1][0] = S[0][1];
  S[2][0] = S[0][2];
  S[2][1] = S[1][2];
  if (!(S[0][0] > 0.0)) {
    fit.note = "no device traffic in any observation";
    return fit;
  }

  // Deterministic fallback ladder: drop the PCIe term first (it is the
  // smallest and most often collinear with traffic), then the launch term.
  bool use_y = true, use_z = true;
  double a = 0.0, b = 0.0, c = 0.0;
  for (;;) {
    if (!solve_device_normal(S, v, use_y, use_z, &a, &b, &c)) {
      if (use_z) {
        use_z = false;
        append_note(&fit.note, "degenerate system: pcie term dropped");
      } else if (use_y) {
        use_y = false;
        append_note(&fit.note, "degenerate system: launch term dropped");
      }
      continue;
    }
    if (use_z && c < 0.0) {
      use_z = false;
      append_note(&fit.note, "negative pcie cost: pcie term dropped");
      continue;
    }
    if (use_y && b < 0.0) {
      use_y = false;
      append_note(&fit.note, "negative launch overhead: launch term dropped");
      continue;
    }
    break;
  }
  if (a <= 0.0) {
    fit.note = "non-positive streaming cost: store rows are not device rows?";
    fit.ok = false;
    return fit;
  }

  fit.ok = true;
  fit.seconds_per_gb = a;
  fit.launch_overhead_s = b;
  fit.seconds_per_pcie_gb = c;
  fit.device_bw_gbs = 1.0 / a;
  fit.device_launch_us = b * 1e6;
  fit.pcie_bw_gbs = c > 0.0 ? 1.0 / c : 0.0;

  double sq = 0.0, worst = 0.0;
  for (const DeviceCalibrationRow& r : rows) {
    const double pred = a * r.eff_gigabytes + b * r.scaled_launches +
                        c * r.pcie_gigabytes + r.offset_s;
    const double rel = (pred - r.seconds) / r.seconds;
    sq += rel * rel;
    worst = std::max(worst, std::fabs(rel));
  }
  fit.rms_rel_error = std::sqrt(sq / static_cast<double>(rows.size()));
  fit.max_rel_error = worst;
  return fit;
}

}  // namespace validation
