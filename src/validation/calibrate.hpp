// calibrate.hpp — deterministic least-squares calibration of the host
// machine-model constants from measured result-store rows.
//
// The roofline projection charges a row's logical DRAM traffic against an
// attainable bandwidth and its kernel launches against a per-launch overhead
// (machine_model.hpp: `peak_bw_gbs`, `launch_overhead_us`; efficiency.hpp:
// the per-variant `bw_fraction` residual).  Those constants were typed in
// from data sheets; this module fits them from evidence instead: every host
// measurement in the store is one observation
//
//   seconds ≈ seconds_per_gb * gigabytes + launch_overhead_s * launches
//
// and the two constants fall out of a 2x2 normal-equation solve.  Rows with
// different traffic/launch mixes (kernel microbench rows vs whole solves,
// different meshes, different decks) are what make the system well
// conditioned — which is also what finally *consumes* the `tea_sweep run
// --decks` rows.
//
// Everything here is pure arithmetic over the store in row order: the same
// store produces bit-identical fits, which is what lets the calibration
// round-trip be a CI-gated test (test_validation.cpp).
#pragma once

#include <string>
#include <vector>

#include "results/result_store.hpp"

namespace validation {

/// Deck-label prefix of rows stored by the tuner's measured refinement
/// (aliases results::kTuneDeckPrefix).  Calibration skips them: tuned-plan
/// measurements feeding the fit would make the fitted constants — and every
/// model score and validation report derived from them — depend on whether
/// a tune ran against the store first.  (An explicit non-tune measurement
/// request for the same cell relabels the row, re-admitting it.)
inline constexpr const char* kTuneDeckPrefix = results::kTuneDeckPrefix;

/// One normalized observation: per-execution-unit traffic, launches and
/// wall time.  Whole-solve rows use the run itself as the unit; kernel-sweep
/// rows (variant "kernel-<k>/<v>") are normalized per kernel call, since
/// their counters cover one timed sample of `iterations` calls while their
/// timing statistics are already per call.
struct CalibrationRow {
  std::string label;      // "<deck>/<variant>" provenance
  double gigabytes = 0.0; // logical DRAM traffic per unit, GB
  double launches = 0.0;  // kernel launches / parallel regions per unit
  double seconds = 0.0;   // min-sample wall time per unit
};

/// Extract calibration observations from `store`: every host row whose
/// variant (or, for kernel rows, variant suffix) is in `variants`, with
/// usable timing and non-zero traffic; rows under kTuneDeckPrefix are
/// excluded (see above).  Rows appear in store order, so the result — and
/// everything fitted from it — is deterministic.
std::vector<CalibrationRow> calibration_rows(
    const results::ResultStore& store, const std::vector<std::string>& variants);

struct CalibrationFit {
  bool ok = false;
  std::string note;             // empty, or why the fit degraded/failed
  int rows_used = 0;
  double seconds_per_gb = 0.0;  // fitted streaming cost
  double launch_overhead_s = 0.0;
  // Derived machine-model constants.
  double fitted_bw_gbs = 0.0;      // 1 / seconds_per_gb
  double launch_overhead_us = 0.0; // launch_overhead_s * 1e6
  // Fit quality over the observations.
  double rms_rel_error = 0.0;
  double max_rel_error = 0.0;
};

/// Least-squares fit of (seconds_per_gb, launch_overhead_s) over `rows` via
/// the 2x2 normal equations, in row order.  Falls back to a bandwidth-only
/// fit (launch term dropped, `note` says why) when the system is degenerate
/// — all rows sharing one traffic/launch mix — or when the unconstrained
/// solution has a negative launch overhead.  Fails (`ok == false`) with
/// fewer than two observations or a non-positive streaming cost.
CalibrationFit fit_host_model(const std::vector<CalibrationRow>& rows);

/// One device-model observation, extracted from a stored simgpu-variant row.
/// Device wall times are emulated on the host, so the fit target is the row's
/// *stored* P100 projection — computed at measurement time from the fixed
/// spec model (machine::tesla_p100), never from device_machine(), so feeding
/// the fitted constants back through MachineOverrides cannot poison later
/// fits.  The per-variant efficiency residuals and the occupancy derating
/// are folded into the regressors so the three fitted constants are the
/// *absolute* machine numbers (device bandwidth, launch cost, PCIe
/// bandwidth), exactly the fields device_machine() composes.
struct DeviceCalibrationRow {
  std::string label;             // "<deck>/<variant>" provenance
  double eff_gigabytes = 0.0;    // device traffic / (bw_fraction * occupancy)
  double scaled_launches = 0.0;  // kernel launches * launch_multiplier
  double pcie_gigabytes = 0.0;   // h2d + d2h traffic, GB
  double offset_s = 0.0;         // reduction-sync cost (fixed, not fitted)
  double seconds = 0.0;          // stored P100 projection, total
};

/// Extract device-model observations from `store`: every host-platform row
/// whose variant is a simgpu (GPU) variant and that carries a "p100"
/// projection; rows under kTuneDeckPrefix are excluded for the same
/// store-order-determinism reason as the host fit.
std::vector<DeviceCalibrationRow> device_calibration_rows(
    const results::ResultStore& store);

struct DeviceCalibrationFit {
  bool ok = false;
  std::string note;  // empty, or why the fit degraded/failed
  int rows_used = 0;
  double seconds_per_gb = 0.0;       // per effective (derated) device GB
  double launch_overhead_s = 0.0;    // per residual-scaled launch
  double seconds_per_pcie_gb = 0.0;  // per GB crossing the host<->device link
  // Derived machine-model constants (MachineOverrides device fields).
  double device_bw_gbs = 0.0;
  double device_launch_us = 0.0;
  double pcie_bw_gbs = 0.0;  // 0 when the PCIe term was dropped (keep spec)
  // Fit quality over the observations.
  double rms_rel_error = 0.0;
  double max_rel_error = 0.0;
};

/// Least-squares fit of the three device constants over `rows` via the 3x3
/// normal equations with relative weighting, in row order (bit-identical for
/// identical stores).  Degenerate or unphysical (negative-coefficient)
/// systems deterministically drop terms — PCIe first, then launches — down
/// to a bandwidth-only fit; `note` records each drop.  Fails with fewer
/// than three observations or a non-positive streaming cost.
DeviceCalibrationFit fit_device_model(
    const std::vector<DeviceCalibrationRow>& rows);

}  // namespace validation
