#include "validation/validation.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "machine/machine_model.hpp"
#include "ppmetric/paper_data.hpp"
#include "results/sweep.hpp"

namespace validation {

namespace {

/// Projected time of one variant on one machine (<0 when absent).
double time_of(const std::vector<ppm::VariantResult>& results,
               const std::string& variant, const std::string& machine) {
  for (const ppm::VariantResult& r : results) {
    if (r.variant == variant && r.machine == machine) return r.time_s;
  }
  return -1.0;
}

/// Best (smallest) projected time across `machines` (<0 when none).
double best_time(const std::vector<ppm::VariantResult>& results,
                 const std::vector<std::string>& machines) {
  double best = -1.0;
  for (const ppm::VariantResult& r : results) {
    if (std::find(machines.begin(), machines.end(), r.machine) ==
        machines.end()) {
      continue;
    }
    if (best < 0.0 || r.time_s < best) best = r.time_s;
  }
  return best;
}

std::vector<ppm::VariantResult> project(
    const std::vector<results::ResultRow>& rows, int paper_mesh,
    int paper_steps, const std::vector<std::string>& machines) {
  results::ProjectionSpec spec;
  spec.paper_mesh = paper_mesh;
  spec.paper_steps = paper_steps;
  spec.machines = machines;
  return results::to_variant_results(results::project_rows(rows, spec));
}

FigureValidation validate_figure(const std::string& name, int mesh,
                                 const std::vector<ppm::VariantResult>& cpu,
                                 const std::vector<ppm::VariantResult>& gpu) {
  FigureValidation fig;
  fig.figure = name;
  fig.mesh = mesh;
  fig.projected = cpu;
  fig.projected.insert(fig.projected.end(), gpu.begin(), gpu.end());
  fig.checks = evaluate_shape_claims(fig.projected, mesh);

  fig.best_cpu_s = best_time(cpu, {"xeon", "knl"});
  fig.best_gpu_s = best_time(gpu, {"p100"});
  for (const ppm::paper::GpuCpuGap& gap : ppm::paper::gpu_cpu_gaps()) {
    if (gap.mesh == mesh) fig.paper_gap_percent = gap.percent;
  }
  if (fig.best_cpu_s > 0.0 && fig.best_gpu_s > 0.0) {
    fig.gap_percent =
        100.0 * (fig.best_cpu_s - fig.best_gpu_s) / fig.best_cpu_s;
  }
  // The gap check only exists where the paper quotes a gap (1000^2 and
  // 4000^2); a caller projecting onto another mesh gets the gap recorded
  // but no fabricated claim.
  if (fig.best_cpu_s > 0.0 && fig.best_gpu_s > 0.0 &&
      fig.paper_gap_percent != 0.0) {
    ShapeCheck c;
    c.applicable = true;
    if (fig.paper_gap_percent >= 10.0) {
      // §IV-C at 4000^2: the gap is large (50.57%), so the ordering itself
      // is the claim.
      c.id = name + "/gpu-beats-cpu";
      c.description = "best GPU time beats best CPU time at " +
                      std::to_string(mesh) + "^2 (paper gap " +
                      std::to_string(fig.paper_gap_percent) + "%)";
      c.lhs = fig.best_gpu_s;
      c.rhs = fig.best_cpu_s;
      c.pass = fig.best_gpu_s < fig.best_cpu_s;
    } else {
      // §IV-C at 1000^2: the paper's point is near-parity (3.04%), which is
      // below the roofline model's fidelity — assert the gap is small, not
      // its sign.
      constexpr double kParityBandPoints = 15.0;
      c.id = name + "/gpu-near-parity";
      c.description = "best GPU within " + std::to_string(kParityBandPoints) +
                      " points of the paper's " +
                      std::to_string(fig.paper_gap_percent) + "% gap at " +
                      std::to_string(mesh) + "^2";
      c.lhs = fig.gap_percent;
      c.rhs = fig.paper_gap_percent;
      c.pass = std::fabs(fig.gap_percent - fig.paper_gap_percent) <=
               kParityBandPoints;
    }
    fig.checks.push_back(std::move(c));
  }
  return fig;
}

/// Kendall tau-a between our and the paper's ranking of `values` pairs.
double kendall_tau(const std::vector<std::pair<double, double>>& values) {
  const std::size_t n = values.size();
  if (n < 2) return 0.0;
  int concordant = 0, discordant = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double ours = values[i].first - values[j].first;
      const double paper = values[i].second - values[j].second;
      const double prod = ours * paper;
      if (prod > 0.0) ++concordant;
      if (prod < 0.0) ++discordant;
    }
  }
  const double pairs = static_cast<double>(n * (n - 1) / 2);
  return static_cast<double>(concordant - discordant) / pairs;
}

const ppm::paper::Table3Row* paper_table3_row(const std::string& framework) {
  for (const ppm::paper::Table3Row& row : ppm::paper::table3()) {
    if (row.framework == framework) return &row;
  }
  return nullptr;
}

Table3Validation validate_table3(
    const std::vector<ppm::VariantResult>& projected,
    std::vector<ErrorBand>* bands) {
  Table3Validation t3;
  t3.comparison =
      results::compare_to_paper(projected, {"xeon", "knl"}, {"p100"});

  std::vector<std::pair<double, double>> app_pairs;
  for (const ppm::FrameworkRow& row : t3.comparison.table_rows) {
    const ppm::paper::Table3Row* paper = paper_table3_row(row.framework);
    if (paper == nullptr) continue;
    app_pairs.push_back({row.p_all_app, paper->p_all_app});
    bands->push_back({"table3/" + row.framework + "/p_cpu_app", row.p_cpu_app,
                      paper->p_cpu_app,
                      (row.p_cpu_app - paper->p_cpu_app) / paper->p_cpu_app});
    bands->push_back({"table3/" + row.framework + "/p_all_app", row.p_all_app,
                      paper->p_all_app,
                      (row.p_all_app - paper->p_all_app) / paper->p_all_app});
  }
  t3.rank_agreement_tau = kendall_tau(app_pairs);

  const bool have_rows = !t3.comparison.table_rows.empty();
  ShapeCheck ordering;
  ordering.id = "table3/ordering";
  ordering.description =
      "§V-B P(app, CPU∪GPU) ordering: manual > raja > ops > kokkos";
  ordering.applicable = app_pairs.size() >= 4;
  ordering.pass = ordering.applicable && t3.comparison.ordering_ok;
  t3.checks.push_back(std::move(ordering));

  ShapeCheck memory_bound;
  memory_bound.id = "table3/memory-bound";
  memory_bound.description =
      "§V-A memory-bound signature: compute efficiency < 10% everywhere";
  memory_bound.applicable = have_rows;
  memory_bound.pass = have_rows && t3.comparison.memory_bound;
  t3.checks.push_back(std::move(memory_bound));
  return t3;
}

}  // namespace

std::vector<ShapeCheck> evaluate_shape_claims(
    const std::vector<ppm::VariantResult>& results, int mesh) {
  std::vector<ShapeCheck> out;
  for (const ppm::paper::ShapeClaim& claim : ppm::paper::shape_claims()) {
    if (claim.mesh != mesh) continue;
    ShapeCheck c;
    c.id = "claim/" + std::to_string(mesh) + "/" + claim.machine + "/" +
           claim.a + "<" + claim.b;
    c.description = claim.description;
    c.lhs = time_of(results, claim.a, claim.machine);
    c.rhs = time_of(results, claim.b, claim.machine);
    c.applicable = c.lhs >= 0.0 && c.rhs >= 0.0;
    c.pass = c.applicable && c.lhs < c.rhs;
    out.push_back(std::move(c));
  }
  return out;
}

ValidationReport validate(const results::ResultStore& store,
                          const ValidationOptions& options) {
  ValidationReport report;
  report.options = options;

  // (a) pull the bench-matrix rows the sweep stored.
  results::SweepConfig config =
      results::default_sweep(options.mesh, options.steps, 1);
  config.options.ranks = options.ranks;
  std::vector<std::string> missing_cpu, missing_gpu;
  const std::vector<results::ResultRow> cpu_rows = results::select_rows(
      store, config, results::cpu_variants(), &missing_cpu);
  const std::vector<results::ResultRow> gpu_rows = results::select_rows(
      store, config, results::gpu_variants(), &missing_gpu);
  report.rows_joined = static_cast<int>(cpu_rows.size() + gpu_rows.size());
  report.missing_variants = missing_cpu;
  report.missing_variants.insert(report.missing_variants.end(),
                                 missing_gpu.begin(), missing_gpu.end());

  // (b) project to the two paper meshes and join against the paper data.
  const auto cpu1 = project(cpu_rows, options.fig1_mesh, options.paper_steps,
                            {"xeon", "knl"});
  const auto gpu1 =
      project(gpu_rows, options.fig1_mesh, options.paper_steps, {"p100"});
  const auto cpu2 = project(cpu_rows, options.fig2_mesh, options.paper_steps,
                            {"xeon", "knl"});
  const auto gpu2 =
      project(gpu_rows, options.fig2_mesh, options.paper_steps, {"p100"});

  // (c) shape metrics.
  report.fig1 = validate_figure("fig1", options.fig1_mesh, cpu1, gpu1);
  report.fig2 = validate_figure("fig2", options.fig2_mesh, cpu2, gpu2);
  report.table3 = validate_table3(report.fig2.projected, &report.bands);

  // Quoted absolute times (§IV-B) as relative-error bands at the Fig. 1 mesh.
  for (const ppm::paper::QuotedTime& q : ppm::paper::quoted_times()) {
    if (q.mesh != options.fig1_mesh) continue;
    const double ours = time_of(report.fig1.projected, q.variant, q.machine);
    if (ours < 0.0) continue;
    report.bands.push_back({"quoted/" + q.variant + "/" + q.machine, ours,
                            q.seconds, (ours - q.seconds) / q.seconds});
  }
  for (const FigureValidation* fig : {&report.fig1, &report.fig2}) {
    if (fig->best_cpu_s > 0.0 && fig->best_gpu_s > 0.0 &&
        fig->paper_gap_percent != 0.0) {
      report.bands.push_back(
          {"gap/" + std::to_string(fig->mesh), fig->gap_percent,
           fig->paper_gap_percent,
           (fig->gap_percent - fig->paper_gap_percent) /
               fig->paper_gap_percent});
    }
  }

  // Mesh monotonicity: every Fig. 1 curve point must rise at the Fig. 2
  // mesh (16x the cells and 4x the iterations leave no other direction).
  for (const ppm::VariantResult& r1 : report.fig1.projected) {
    const double t2 =
        time_of(report.fig2.projected, r1.variant, r1.machine);
    if (t2 < 0.0) continue;
    ShapeCheck c;
    c.id = "model/monotone/" + r1.machine + "/" + r1.variant;
    c.description = "projected time grows with mesh (" + r1.variant + " on " +
                    r1.machine + ")";
    c.applicable = true;
    c.lhs = r1.time_s;
    c.rhs = t2;
    c.pass = t2 > r1.time_s;
    report.model_checks.push_back(std::move(c));
  }
  {
    ShapeCheck c;
    c.id = "model/gap-grows";
    c.description =
        "§IV-C crossover: the GPU/CPU gap widens from 1000^2 to 4000^2";
    c.applicable = report.fig1.best_cpu_s > 0.0 &&
                   report.fig1.best_gpu_s > 0.0 &&
                   report.fig2.best_cpu_s > 0.0 && report.fig2.best_gpu_s > 0.0;
    c.lhs = report.fig1.gap_percent;
    c.rhs = report.fig2.gap_percent;
    c.pass = c.applicable && report.fig2.gap_percent > report.fig1.gap_percent;
    report.model_checks.push_back(std::move(c));
  }

  // (d) calibration, consuming every usable host row — bench matrix, deck
  // sweeps and kernel sweeps alike.
  const std::vector<CalibrationRow> cal_rows =
      calibration_rows(store, options.calibration_variants);
  report.calibration = fit_host_model(cal_rows);
  report.device_calibration = fit_device_model(device_calibration_rows(store));
  const std::vector<std::string>& decks = results::sweep_deck_names();
  for (const CalibrationRow& r : cal_rows) {
    const auto slash = r.label.find('/');
    const std::string deck = r.label.substr(0, slash);
    if (std::find(decks.begin(), decks.end(), deck) != decks.end()) {
      report.deck_rows.push_back(r.label);
    }
  }
  return report;
}

std::vector<const ShapeCheck*> ValidationReport::all_checks() const {
  std::vector<const ShapeCheck*> out;
  for (const ShapeCheck& c : fig1.checks) out.push_back(&c);
  for (const ShapeCheck& c : fig2.checks) out.push_back(&c);
  for (const ShapeCheck& c : table3.checks) out.push_back(&c);
  for (const ShapeCheck& c : model_checks) out.push_back(&c);
  return out;
}

int ValidationReport::checked() const {
  int n = 0;
  for (const ShapeCheck* c : all_checks()) n += c->applicable;
  return n;
}

int ValidationReport::failed() const {
  int n = 0;
  for (const ShapeCheck* c : all_checks()) n += c->applicable && !c->pass;
  return n;
}

namespace {

results::Json check_to_json(const ShapeCheck& c) {
  results::Json j = results::Json::object();
  j.set("id", results::Json(c.id));
  j.set("description", results::Json(c.description));
  j.set("applicable", results::Json(c.applicable));
  j.set("pass", results::Json(c.pass));
  j.set("lhs", results::Json(c.lhs));
  j.set("rhs", results::Json(c.rhs));
  return j;
}

results::Json checks_to_json(const std::vector<ShapeCheck>& checks) {
  results::Json arr = results::Json::array();
  for (const ShapeCheck& c : checks) arr.push_back(check_to_json(c));
  return arr;
}

results::Json figure_to_json(const FigureValidation& fig) {
  results::Json j = results::Json::object();
  j.set("figure", results::Json(fig.figure));
  j.set("mesh", results::Json(fig.mesh));
  results::Json projected = results::Json::array();
  for (const ppm::VariantResult& r : fig.projected) {
    results::Json p = results::Json::object();
    p.set("variant", results::Json(r.variant));
    p.set("machine", results::Json(r.machine));
    p.set("seconds", results::Json(r.time_s));
    p.set("bw_gbs", results::Json(r.achieved_bw_gbs));
    p.set("gflops", results::Json(r.achieved_gflops));
    projected.push_back(std::move(p));
  }
  j.set("projected", std::move(projected));
  j.set("best_cpu_s", results::Json(fig.best_cpu_s));
  j.set("best_gpu_s", results::Json(fig.best_gpu_s));
  j.set("gap_percent", results::Json(fig.gap_percent));
  j.set("paper_gap_percent", results::Json(fig.paper_gap_percent));
  j.set("checks", checks_to_json(fig.checks));
  return j;
}

}  // namespace

results::Json report_json(const ValidationReport& report) {
  results::Json j = results::Json::object();
  j.set("schema_version", results::Json(1));

  results::Json opts = results::Json::object();
  opts.set("mesh", results::Json(report.options.mesh));
  opts.set("steps", results::Json(report.options.steps));
  opts.set("ranks", results::Json(report.options.ranks));
  opts.set("fig1_mesh", results::Json(report.options.fig1_mesh));
  opts.set("fig2_mesh", results::Json(report.options.fig2_mesh));
  opts.set("paper_steps", results::Json(report.options.paper_steps));
  j.set("options", std::move(opts));

  j.set("rows_joined", results::Json(report.rows_joined));
  results::Json missing = results::Json::array();
  for (const std::string& v : report.missing_variants) {
    missing.push_back(results::Json(v));
  }
  j.set("missing_variants", std::move(missing));
  results::Json decks = results::Json::array();
  for (const std::string& d : report.deck_rows) {
    decks.push_back(results::Json(d));
  }
  j.set("deck_rows", std::move(decks));

  results::Json figures = results::Json::array();
  figures.push_back(figure_to_json(report.fig1));
  figures.push_back(figure_to_json(report.fig2));
  j.set("figures", std::move(figures));

  results::Json t3 = results::Json::object();
  results::Json frameworks = results::Json::array();
  for (const ppm::FrameworkRow& row : report.table3.comparison.table_rows) {
    const ppm::paper::Table3Row* paper = paper_table3_row(row.framework);
    results::Json f = results::Json::object();
    f.set("framework", results::Json(row.framework));
    f.set("p_cpu_app", results::Json(row.p_cpu_app));
    f.set("p_all_app", results::Json(row.p_all_app));
    if (paper != nullptr) {
      f.set("paper_p_cpu_app", results::Json(paper->p_cpu_app));
      f.set("paper_p_all_app", results::Json(paper->p_all_app));
      f.set("delta_all_points",
            results::Json(100.0 * (row.p_all_app - paper->p_all_app)));
    }
    frameworks.push_back(std::move(f));
  }
  t3.set("frameworks", std::move(frameworks));
  t3.set("worst_delta_points",
         results::Json(report.table3.comparison.worst_delta));
  t3.set("rank_agreement_tau", results::Json(report.table3.rank_agreement_tau));
  t3.set("checks", checks_to_json(report.table3.checks));
  j.set("table3", std::move(t3));

  j.set("model_checks", checks_to_json(report.model_checks));

  results::Json bands = results::Json::array();
  for (const ErrorBand& b : report.bands) {
    results::Json e = results::Json::object();
    e.set("name", results::Json(b.name));
    e.set("ours", results::Json(b.ours));
    e.set("paper", results::Json(b.paper));
    e.set("rel_error", results::Json(b.rel_error));
    bands.push_back(std::move(e));
  }
  j.set("bands", std::move(bands));

  results::Json cal = results::Json::object();
  cal.set("ok", results::Json(report.calibration.ok));
  cal.set("note", results::Json(report.calibration.note));
  cal.set("rows_used", results::Json(report.calibration.rows_used));
  cal.set("seconds_per_gb", results::Json(report.calibration.seconds_per_gb));
  cal.set("fitted_bw_gbs", results::Json(report.calibration.fitted_bw_gbs));
  cal.set("launch_overhead_us",
          results::Json(report.calibration.launch_overhead_us));
  cal.set("rms_rel_error", results::Json(report.calibration.rms_rel_error));
  cal.set("max_rel_error", results::Json(report.calibration.max_rel_error));
  j.set("calibration", std::move(cal));

  results::Json dcal = results::Json::object();
  dcal.set("ok", results::Json(report.device_calibration.ok));
  dcal.set("note", results::Json(report.device_calibration.note));
  dcal.set("rows_used", results::Json(report.device_calibration.rows_used));
  dcal.set("device_bw_gbs",
           results::Json(report.device_calibration.device_bw_gbs));
  dcal.set("device_launch_us",
           results::Json(report.device_calibration.device_launch_us));
  dcal.set("pcie_bw_gbs", results::Json(report.device_calibration.pcie_bw_gbs));
  dcal.set("rms_rel_error",
           results::Json(report.device_calibration.rms_rel_error));
  dcal.set("max_rel_error",
           results::Json(report.device_calibration.max_rel_error));
  j.set("device_calibration", std::move(dcal));

  results::Json summary = results::Json::object();
  summary.set("checked", results::Json(report.checked()));
  summary.set("failed", results::Json(report.failed()));
  summary.set("ok", results::Json(report.ok()));
  j.set("summary", std::move(summary));
  return j;
}

namespace {

void markdown_checks(std::ostringstream& os,
                     const std::vector<ShapeCheck>& checks) {
  for (const ShapeCheck& c : checks) {
    if (!c.applicable) {
      os << "- SKIP " << c.description << " (not in store)\n";
      continue;
    }
    os << "- " << (c.pass ? "PASS" : "FAIL") << " " << c.description << " ("
       << c.lhs << " vs " << c.rhs << ")\n";
  }
}

}  // namespace

std::string report_markdown(const ValidationReport& report) {
  std::ostringstream os;
  os.precision(4);
  os << "# Machine-model validation report\n\n";
  os << "Joined " << report.rows_joined << " stored rows (bench matrix "
     << report.options.mesh << "^2, " << report.options.steps << " steps); "
     << report.missing_variants.size() << " matrix cells missing.\n\n";

  for (const FigureValidation* fig : {&report.fig1, &report.fig2}) {
    os << "## " << fig->figure << " (" << fig->mesh << "^2)\n\n";
    if (fig->best_cpu_s > 0.0 && fig->best_gpu_s > 0.0) {
      os << "Best CPU " << fig->best_cpu_s << " s vs best GPU "
         << fig->best_gpu_s << " s -> gap " << fig->gap_percent
         << "% (paper: " << fig->paper_gap_percent << "%)\n\n";
    }
    markdown_checks(os, fig->checks);
    os << "\n";
  }

  os << "## Table III\n\n";
  os << "Rank agreement (Kendall tau on P(all, app)): "
     << report.table3.rank_agreement_tau << "; worst |delta| "
     << report.table3.comparison.worst_delta << " points\n\n";
  markdown_checks(os, report.table3.checks);
  os << "\n## Model shape\n\n";
  markdown_checks(os, report.model_checks);

  os << "\n## Relative-error bands vs paper\n\n";
  for (const ErrorBand& b : report.bands) {
    os << "- " << b.name << ": ours " << b.ours << " vs paper " << b.paper
       << " (" << 100.0 * b.rel_error << "%)\n";
  }

  os << "\n## Host calibration\n\n";
  const CalibrationFit& cal = report.calibration;
  if (cal.ok) {
    os << "Fitted from " << cal.rows_used << " host rows: attainable bandwidth "
       << cal.fitted_bw_gbs << " GB/s, launch overhead "
       << cal.launch_overhead_us << " us (rms rel error "
       << 100.0 * cal.rms_rel_error << "%, max "
       << 100.0 * cal.max_rel_error << "%)";
    if (!cal.note.empty()) os << " [" << cal.note << "]";
    os << "\n";
  } else {
    os << "Calibration unavailable: " << cal.note << " (" << cal.rows_used
       << " rows)\n";
  }
  if (!report.deck_rows.empty()) {
    os << "\nDeck rows consumed by the fit:";
    for (const std::string& d : report.deck_rows) os << " " << d;
    os << "\n";
  }

  os << "\n## Device calibration\n\n";
  const DeviceCalibrationFit& dcal = report.device_calibration;
  if (dcal.ok) {
    os << "Fitted from " << dcal.rows_used
       << " device rows: device bandwidth " << dcal.device_bw_gbs
       << " GB/s, launch overhead " << dcal.device_launch_us << " us, PCIe ";
    if (dcal.pcie_bw_gbs > 0.0) {
      os << dcal.pcie_bw_gbs << " GB/s";
    } else {
      os << "(spec)";
    }
    os << " (rms rel error " << 100.0 * dcal.rms_rel_error << "%, max "
       << 100.0 * dcal.max_rel_error << "%)";
    if (!dcal.note.empty()) os << " [" << dcal.note << "]";
    os << "\n";
  } else {
    os << "Device calibration unavailable: " << dcal.note << " ("
       << dcal.rows_used << " rows)\n";
  }

  os << "\n## Summary\n\n";
  os << report.checked() << " checks, " << report.failed() << " failing -> "
     << (report.ok() ? "OK" : "NOT OK") << "\n";
  return os.str();
}

namespace {

void collect_checks(const results::Json* arr,
                    std::vector<std::pair<std::string, bool>>* out) {
  if (arr == nullptr || !arr->is_array()) return;
  for (const results::Json& c : arr->items()) {
    const results::Json* applicable = c.get("applicable");
    if (applicable == nullptr || !applicable->as_bool()) continue;
    const results::Json* pass = c.get("pass");
    if (pass == nullptr) continue;
    out->push_back({c.get_string("id", ""), pass->as_bool()});
  }
}

std::vector<std::pair<std::string, bool>> report_checks(
    const results::Json& report) {
  std::vector<std::pair<std::string, bool>> out;
  if (const results::Json* figures = report.get("figures")) {
    if (figures->is_array()) {
      for (const results::Json& fig : figures->items()) {
        collect_checks(fig.get("checks"), &out);
      }
    }
  }
  if (const results::Json* t3 = report.get("table3")) {
    collect_checks(t3->get("checks"), &out);
  }
  collect_checks(report.get("model_checks"), &out);
  return out;
}

}  // namespace

BaselineDiff compare_to_baseline(const results::Json& current,
                                 const results::Json& baseline) {
  BaselineDiff diff;
  const auto base = report_checks(baseline);
  const auto cur = report_checks(current);
  const auto find_current = [&](const std::string& id) -> const bool* {
    for (const auto& [cid, pass] : cur) {
      if (cid == id) return &pass;
    }
    return nullptr;
  };
  for (const auto& [id, base_pass] : base) {
    const bool* cur_pass = find_current(id);
    if (cur_pass != nullptr) ++diff.compared;
    if (base_pass) {
      if (cur_pass == nullptr || !*cur_pass) diff.regressed.push_back(id);
    } else if (cur_pass != nullptr && *cur_pass) {
      diff.fixed.push_back(id);
    }
  }
  return diff;
}

}  // namespace validation
