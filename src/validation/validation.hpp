// validation.hpp — the machine-model validation & calibration subsystem.
//
// The roofline projections (src/machine) have always *claimed* to reproduce
// the paper's Fig. 1/2 curves and Table III portability numbers; this module
// turns that claim into a repeatable, CI-gated artefact.  `validate()`:
//
//  (a) pulls measured rows out of a `ResultStore` (the `tea_sweep run`
//      output, including `--decks` rows),
//  (b) projects them onto the paper machines at the Fig. 1 (1000^2) and
//      Fig. 2 / Table III (4000^2) meshes and joins the projections against
//      `ppm::paper` — the paper's published numbers,
//  (c) computes *shape* metrics: every §IV ordering claim as a pass/fail
//      check, per-mesh relative-error bands against the paper's quoted
//      absolute times and GPU/CPU gaps, Table III per-framework deltas and
//      rank-order agreement (Kendall tau), and mesh-monotonicity checks on
//      the Fig. 1 -> Fig. 2 curves, and
//  (d) runs the deterministic least-squares calibration of the host machine
//      model (calibrate.hpp) from the measured rows.
//
// The report serialises to `BENCH_validation.json` plus a markdown summary;
// both are pure functions of the store, so the same store yields
// bit-identical reports — which is what `compare_to_baseline` gates on in
// CI (`bench/baselines/validation_smoke.json`).
#pragma once

#include <string>
#include <vector>

#include "ppmetric/report.hpp"
#include "results/compare.hpp"
#include "results/json.hpp"
#include "results/result_store.hpp"
#include "validation/calibrate.hpp"

namespace validation {

/// One boolean shape metric with provenance.  `id` is stable across runs and
/// machines — the baseline gate joins on it.
struct ShapeCheck {
  std::string id;
  std::string description;
  bool applicable = false;  // both operands were present in the store
  bool pass = false;
  double lhs = 0.0;  // the compared quantities (seconds, percent, ...)
  double rhs = 0.0;
};

/// One relative-error band against a paper number (not pass/fail: the bands
/// measure how tight the reproduction is, the checks gate its shape).
struct ErrorBand {
  std::string name;
  double ours = 0.0;
  double paper = 0.0;
  double rel_error = 0.0;  // (ours - paper) / paper
};

/// Evaluate the paper's §IV ordering claims applicable at `mesh` against
/// projected results.  Shared with bench::check_shapes, so the figure
/// benches and the validation report can never disagree on a claim.
std::vector<ShapeCheck> evaluate_shape_claims(
    const std::vector<ppm::VariantResult>& results, int mesh);

/// One figure's worth of projections plus its curve metrics.
struct FigureValidation {
  std::string figure;  // "fig1" | "fig2"
  int mesh = 0;        // paper mesh edge (1000 or 4000)
  std::vector<ppm::VariantResult> projected;
  std::vector<ShapeCheck> checks;
  double best_cpu_s = 0.0;
  double best_gpu_s = 0.0;
  double gap_percent = 0.0;        // 100 * (best_cpu - best_gpu) / best_cpu
  double paper_gap_percent = 0.0;  // §IV-C: 3.04 (1000^2), 50.57 (4000^2)
};

/// The Table III join plus rank-order agreement.
struct Table3Validation {
  // tl::Table has no default constructor; start from empty tables.
  results::PaperComparison comparison{
      {}, tl::Table({""}), tl::Table({""}), 0.0, false, false};
  double rank_agreement_tau = 0.0;  // Kendall tau-a on P(all, app) ranks
  std::vector<ShapeCheck> checks;   // ordering, memory-bound signature
};

struct ValidationOptions {
  // Which stored rows to join: the `tea_sweep run` bench matrix at this
  // mesh/steps/ranks (the row key includes RunOptions).
  int mesh = 256;
  int steps = 5;
  int ranks = 4;
  // Paper-side meshes to project onto.
  int fig1_mesh = 1000;
  int fig2_mesh = 4000;
  int paper_steps = 10;
  // Host variants whose rows feed the calibration fit.
  std::vector<std::string> calibration_variants = {"serial", "manual-omp"};
};

struct ValidationReport {
  ValidationOptions options;
  int rows_joined = 0;
  std::vector<std::string> missing_variants;  // bench matrix cells not stored
  std::vector<std::string> deck_rows;  // "<deck>/<variant>" rows consumed by
                                       // the calibration (incl. --decks rows)
  FigureValidation fig1;
  FigureValidation fig2;
  Table3Validation table3;
  std::vector<ShapeCheck> model_checks;  // mesh monotonicity, gap growth
  std::vector<ErrorBand> bands;
  CalibrationFit calibration;
  // Device-constant fit over stored simgpu-variant rows (calibrate.hpp);
  // report-only here (non-gating) — the tuner is what feeds it back through
  // MachineOverrides.
  DeviceCalibrationFit device_calibration;

  /// All checks (figure claims, Table III, model) in report order.
  std::vector<const ShapeCheck*> all_checks() const;
  int checked() const;  // applicable checks
  int failed() const;   // applicable and failing
  bool ok() const { return checked() > 0 && failed() == 0; }
};

/// Build the full report from stored rows alone.  Never measures anything:
/// rows missing from the store are reported in `missing_variants`, and an
/// empty join yields `checked() == 0` (callers should treat that as failure
/// rather than vacuous success).
ValidationReport validate(const results::ResultStore& store,
                          const ValidationOptions& options);

/// Serialise the report (schema documented in docs/BENCHMARKS.md).  Pure
/// function of the report — no timestamps, no environment.
results::Json report_json(const ValidationReport& report);

/// Human summary of the same content.
std::string report_markdown(const ValidationReport& report);

/// Shape-check regression gate between two serialised reports: a check that
/// passed in `baseline` must still be present, applicable and passing in
/// `current`.
struct BaselineDiff {
  std::vector<std::string> regressed;  // passed before, failing/missing now
  std::vector<std::string> fixed;      // failing before, passing now
  int compared = 0;  // checks present in both reports
  bool ok() const { return compared > 0 && regressed.empty(); }
};
BaselineDiff compare_to_baseline(const results::Json& current,
                                 const results::Json& baseline);

}  // namespace validation
