// backoff.hpp — exponential spin backoff shared by the pool's fork-join
// handoff and the reusable barrier.
//
// Phases: start with single pause instructions, double the pause burst each
// round up to a cap (keeps the wait off the interconnect while staying
// responsive), then fall back to yielding so oversubscribed machines — CI
// boxes routinely run 8-thread pools on 1-2 cores — make scheduler progress
// instead of burning the timeslice.
#pragma once

#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace tlp {

inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}

class Backoff {
public:
  /// One wait round; escalates pause bursts 1, 2, 4, ... then yields.
  void pause() {
    if (burst_ <= kMaxBurst) {
      for (int i = 0; i < burst_; ++i) cpu_pause();
      burst_ *= 2;
    } else {
      std::this_thread::yield();
      ++yields_;
    }
  }

  /// Rounds spent in the yield phase (park-decision signal for waiters that
  /// have somewhere cheaper to sleep).
  long yields() const { return yields_; }

  void reset() {
    burst_ = 1;
    yields_ = 0;
  }

private:
  // 512 pauses ≈ a few microseconds: past that, a waiter is better off
  // yielding than monopolising a hardware thread.
  static constexpr int kMaxBurst = 512;
  int burst_ = 1;
  long yields_ = 0;
};

}  // namespace tlp
