#include "threading/thread_pool.hpp"

#include <cstdlib>

#include "common/error.hpp"
#include "threading/backoff.hpp"

namespace tlp {

namespace {

// Yield rounds a worker spends waiting for a job before parking on the
// condition variable.  OpenMP runtimes actively wait ~100us by default
// (OMP_WAIT_POLICY=active) because fork-join latency dominates stencil codes
// with thousands of small regions per second; the backoff's pause phase plus
// this yield budget gives the same order of magnitude on a loaded machine
// while still releasing the CPU between distant regions.
constexpr long kParkAfterYields = 64;

}  // namespace

int default_threads() {
  if (const char* env = std::getenv("TL_NUM_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads) : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int tid = 1; tid < num_threads_; ++tid) {
    workers_.emplace_back([this, tid] { worker_main(tid); });
  }
}

ThreadPool::~ThreadPool() {
  {
    // The mutex pairs with a parking worker's predicate re-check: either it
    // sees shutdown before sleeping, or it is already asleep and gets the
    // notify below.  Spinning workers see the release store lock-free.
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_.store(true, std::memory_order_release);
    generation_.fetch_add(1, std::memory_order_seq_cst);
  }
  start_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_main(int tid) {
  long seen_generation = 0;
  for (;;) {
    // Fast path: exponential-backoff spin on the generation counter.
    Backoff backoff;
    while (generation_.load(std::memory_order_acquire) == seen_generation &&
           !shutdown_.load(std::memory_order_relaxed)) {
      if (backoff.yields() >= kParkAfterYields) {
        // Park until the next job.  The predicate runs under the mutex, so
        // a dispatch between our last spin check and the wait cannot be
        // missed (the dispatcher bumps the generation before deciding
        // whether anyone needs a notify).
        // seq_cst on the parked_ increment and the generation re-check pairs
        // with the dispatcher's seq_cst bump + parked_ read (Dekker): either
        // the dispatcher sees us parked and notifies, or we see its bump.
        std::unique_lock<std::mutex> lock(mutex_);
        parked_.fetch_add(1, std::memory_order_seq_cst);
        start_cv_.wait(lock, [&] {
          return shutdown_.load(std::memory_order_relaxed) ||
                 generation_.load(std::memory_order_seq_cst) !=
                     seen_generation;
        });
        parked_.fetch_sub(1, std::memory_order_relaxed);
        break;
      }
      backoff.pause();
    }
    if (shutdown_.load(std::memory_order_relaxed)) return;
    seen_generation = generation_.load(std::memory_order_acquire);
    const std::function<void(int, int)>* job = job_;

    try {
      (*job)(tid, num_threads_);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    remaining_.fetch_sub(1, std::memory_order_release);
  }
}

void ThreadPool::parallel_region(const std::function<void(int, int)>& body) {
  if (num_threads_ == 1) {
    body(0, 1);
    return;
  }
  job_ = &body;
  remaining_.store(num_threads_ - 1, std::memory_order_relaxed);
  // Publish: job_ and remaining_ above are ordered before this increment
  // (seq_cst subsumes release); workers acquire the generation and then
  // read them safely.
  generation_.fetch_add(1, std::memory_order_seq_cst);
  // Wake parked workers only — spinning workers have already seen the bump.
  // A worker racing towards parking cannot be lost: its wait predicate
  // re-checks the generation under the mutex and returns immediately.
  if (parked_.load(std::memory_order_seq_cst) > 0) {
    { std::lock_guard<std::mutex> lock(mutex_); }
    start_cv_.notify_all();
  }

  // The caller is thread 0 of the region, like an OpenMP primary thread.
  try {
    body(0, num_threads_);
  } catch (...) {
    std::lock_guard<std::mutex> lock(error_mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }

  // Join: exponential-backoff spin on the remaining-count (worker tails are
  // short; the backoff degrades to yields on oversubscribed machines).
  Backoff backoff;
  while (remaining_.load(std::memory_order_acquire) != 0) {
    backoff.pause();
  }
  job_ = nullptr;

  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    std::swap(err, first_error_);
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::run_loop(long begin, long end, ForOptions opts,
                          const std::function<void(int, long, long)>& chunk_body) {
  const long n = end - begin;
  if (n <= 0) return;
  if (num_threads_ == 1) {
    chunk_body(0, begin, end);
    return;
  }

  switch (opts.schedule) {
    case Schedule::kStatic: {
      parallel_region([&](int tid, int nthreads) {
        const StaticRange r = static_partition(begin, end, tid, nthreads);
        if (r.begin < r.end) chunk_body(tid, r.begin, r.end);
      });
      break;
    }
    case Schedule::kDynamic: {
      const long chunk =
          opts.chunk > 0 ? opts.chunk
                         : std::max<long>(1, n / (num_threads_ * 8));
      std::atomic<long> next(begin);
      parallel_region([&](int tid, int) {
        for (;;) {
          const long lo = next.fetch_add(chunk, std::memory_order_relaxed);
          if (lo >= end) break;
          chunk_body(tid, lo, std::min(lo + chunk, end));
        }
      });
      break;
    }
    case Schedule::kGuided: {
      const long min_chunk = opts.chunk > 0 ? opts.chunk : 1;
      std::atomic<long> next(begin);
      parallel_region([&](int tid, int nthreads) {
        for (;;) {
          // Guided: each grab takes remaining/(2*nthreads), floored at
          // min_chunk.  Races over-estimate `remaining` harmlessly.
          const long observed = next.load(std::memory_order_relaxed);
          if (observed >= end) break;
          const long want = std::max<long>(
              min_chunk, (end - observed) / (2 * nthreads));
          const long lo = next.fetch_add(want, std::memory_order_relaxed);
          if (lo >= end) break;
          chunk_body(tid, lo, std::min(lo + want, end));
        }
      });
      break;
    }
  }
}

void ThreadPool::parallel_for(long begin, long end,
                              const std::function<void(long, long)>& body,
                              ForOptions opts) {
  run_loop(begin, end, opts,
           [&](int /*tid*/, long lo, long hi) { body(lo, hi); });
}

ThreadPool& global_pool() {
  static ThreadPool pool(default_threads());
  return pool;
}

}  // namespace tlp
