// schedule.hpp — loop scheduling policies for tlp::parallel_for, mirroring
// OpenMP's static/dynamic/guided clauses (the paper's CPU builds all rely on
// OpenMP work-sharing; this library is our from-scratch equivalent).
#pragma once

#include <algorithm>

namespace tlp {

enum class Schedule {
  kStatic,   // contiguous equal blocks, decided up front (OpenMP default)
  kDynamic,  // fixed-size chunks handed out on demand
  kGuided,   // exponentially shrinking chunks
};

struct ForOptions {
  Schedule schedule = Schedule::kStatic;
  // Chunk granularity for dynamic/guided (elements); 0 = auto.
  long chunk = 0;
};

/// The [begin,end) sub-range thread `tid` of `nthreads` owns under static
/// scheduling.  Remainder elements are spread over the leading threads, as
/// OpenMP's static schedule does.
struct StaticRange {
  long begin;
  long end;
};

inline StaticRange static_partition(long begin, long end, int tid,
                                    int nthreads) {
  const long n = end - begin;
  if (n <= 0 || nthreads <= 0) return {begin, begin};
  const long base = n / nthreads;
  const long rem = n % nthreads;
  const long lo = begin + base * tid + std::min<long>(tid, rem);
  const long hi = lo + base + (tid < rem ? 1 : 0);
  return {lo, hi};
}

}  // namespace tlp
