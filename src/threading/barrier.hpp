// barrier.hpp — reusable centralized barrier, generation-counted and fully
// atomic: arrivals count on one cache line, departure is a release bump of
// the generation counter that waiters observe with an acquire spin under
// exponential backoff (see backoff.hpp).  No mutex or condition variable on
// any path, so a barrier crossing on warmed-up threads costs two atomic
// operations plus the wait itself — the handoff latency the paper's
// fork-join-heavy stencil loops are sensitive to.
//
// Used by rank-style lockstep algorithms (minimpi builds its collective
// barrier on top of this); the thread pool uses the same generation-count
// protocol inline for its fork and join phases.
#pragma once

#include <atomic>

#include "common/error.hpp"
#include "threading/backoff.hpp"

namespace tlp {

class Barrier {
public:
  explicit Barrier(int participants)
      : participants_(participants), arrived_(0), generation_(0) {
    TL_REQUIRE(participants > 0, "barrier needs >= 1 participant");
  }

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Block until all participants have arrived.  Reusable across phases:
  /// the generation a thread captured on entry is what it waits on, so a
  /// fast thread re-entering for the next phase cannot slip through the
  /// previous one (its captured generation is already the new value).
  void arrive_and_wait() {
    const long gen = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        participants_) {
      // Last arriver: re-arm the count for the next phase, then publish the
      // new generation.  The release on the generation bump orders the
      // arrival-count reset before any next-phase arrival can observe it.
      arrived_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_release);
      return;
    }
    Backoff backoff;
    while (generation_.load(std::memory_order_acquire) == gen) {
      backoff.pause();
    }
  }

  int participants() const noexcept { return participants_; }

private:
  const int participants_;
  std::atomic<int> arrived_;
  std::atomic<long> generation_;
};

}  // namespace tlp
