// barrier.hpp — reusable centralized barrier with sense reversal.  Used by the
// pool's fork-join join phase and exposed for rank-style lockstep algorithms
// (minimpi builds its collective barrier on top of this).
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/error.hpp"

namespace tlp {

class Barrier {
public:
  explicit Barrier(int participants)
      : participants_(participants), waiting_(0), generation_(0) {
    TL_REQUIRE(participants > 0, "barrier needs >= 1 participant");
  }

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Block until all participants have arrived.  Reusable across phases.
  void arrive_and_wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    const long gen = generation_;
    if (++waiting_ == participants_) {
      waiting_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return generation_ != gen; });
  }

  int participants() const noexcept { return participants_; }

private:
  const int participants_;
  int waiting_;
  long generation_;
  std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace tlp
