// thread_pool.hpp — persistent worker pool with OpenMP-style fork-join
// parallel regions, work-shared loops and reductions.
//
// This is the "OpenMP runtime" substitution documented in DESIGN.md: the
// paper's OpenMP builds map onto tlp::ThreadPool::parallel_for with the same
// scheduling semantics (static by default), and hybrid MPI+OpenMP backends
// instantiate one pool per minimpi rank.
//
// Fork-join protocol: a job is published by a release increment of an atomic
// generation counter (the same generation-count scheme as tlp::Barrier);
// workers wait for it with an exponential-backoff spin and the caller joins
// on an atomic remaining-count the same way.  No mutex or condition variable
// is on the handoff path — stencil codes fork thousands of tiny regions per
// second, and the mutex/CV round trip used to dominate their latency.  A
// worker that has spun through its budget with no work parks on a condition
// variable (checked under the mutex, so wakeups cannot be lost); the
// dispatcher only touches that mutex when a worker is actually parked.
#pragma once

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "threading/schedule.hpp"

namespace tlp {

/// Number of threads tlp uses when none is specified: the TL_NUM_THREADS
/// environment variable, else std::thread::hardware_concurrency().
int default_threads();

class ThreadPool {
public:
  /// Spawns `num_threads - 1` workers; the calling thread acts as thread 0 of
  /// every parallel region (as an OpenMP primary thread does).
  explicit ThreadPool(int num_threads = default_threads());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const noexcept { return num_threads_; }

  /// Fork-join region: run body(tid, num_threads) on every thread, return
  /// when all are done.  Exceptions from any thread are captured and the
  /// first one is rethrown on the caller.
  void parallel_region(const std::function<void(int, int)>& body);

  /// Work-shared loop over [begin, end): `body(lo, hi)` receives contiguous
  /// sub-ranges.  Range-based so inner loops stay vectorizable.
  void parallel_for(long begin, long end,
                    const std::function<void(long, long)>& body,
                    ForOptions opts = {});

  /// Work-shared reduction: `map(lo, hi)` produces a partial value per chunk,
  /// `combine` folds partials.  Deterministic for static scheduling (partials
  /// are combined in thread order).  Partials live in cache-line-padded
  /// per-thread slots, so concurrent updates never share a line.
  template <typename T, typename Map, typename Combine>
  T parallel_reduce(long begin, long end, T identity, Map&& map,
                    Combine&& combine, ForOptions opts = {}) {
    struct alignas(64) Slot {
      T value;
    };
    std::vector<Slot> partials(static_cast<std::size_t>(num_threads_),
                               Slot{identity});
    run_loop(begin, end, opts, [&](int tid, long lo, long hi) {
      Slot& slot = partials[static_cast<std::size_t>(tid)];
      slot.value = combine(slot.value, map(lo, hi));
    });
    T result = identity;
    for (const Slot& p : partials) result = combine(result, p.value);
    return result;
  }

private:
  // Dispatch a loop with scheduling; `chunk_body(tid, lo, hi)`.
  void run_loop(long begin, long end, ForOptions opts,
                const std::function<void(int, long, long)>& chunk_body);

  void worker_main(int tid);

  const int num_threads_;
  std::vector<std::thread> workers_;

  // Fork-join state.  `generation_` publishes jobs (release on write,
  // acquire on read orders `job_` with it); `remaining_` is the join count.
  std::atomic<long> generation_{0};
  std::atomic<int> remaining_{0};
  std::atomic<bool> shutdown_{false};
  const std::function<void(int, int)>* job_ = nullptr;

  // Idle parking only: workers take the mutex after exhausting their spin
  // budget; the dispatcher takes it only when `parked_` says someone did.
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::atomic<int> parked_{0};

  std::mutex error_mutex_;
  std::exception_ptr first_error_;
};

/// Process-wide pool used by backends that do not manage their own threads.
ThreadPool& global_pool();

}  // namespace tlp
