// task_queue.hpp — bounded multi-producer/multi-consumer queue with
// admission control, the request spine of the solve service (src/service).
//
// Unlike tlp::ThreadPool — fork-join regions for the *inside* of one solve —
// this queue carries whole units of work between producers (request
// submitters) and long-lived consumers (service workers, each of which owns
// a ThreadPool for its solves).  Admission is non-blocking by design:
// try_push refuses when the queue is at capacity instead of blocking the
// producer, which is what lets a loaded service shed traffic at the front
// door rather than stacking unbounded latency behind it.
//
// Consumers may take several entries at once (pop_group): the head entry
// plus every other queued entry matching a caller-supplied predicate, which
// is how the service forms batches of plan-compatible requests.  Mutex+CV is
// the right tool here — queue traffic is per-solve (milliseconds at least),
// not per-kernel, so lock-free handoff would buy nothing.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace tlp {

template <typename T>
class BoundedTaskQueue {
public:
  explicit BoundedTaskQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Admission control: enqueue unless the queue is full or closed.
  /// Never blocks.  Returns false on refusal.
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocking consume: wait for an entry (or close), then return the head
  /// entry plus up to `max_group - 1` further queued entries for which
  /// `compatible(head, other)` holds, preserving queue order.  Entries that
  /// do not match stay queued.  An empty result means closed-and-drained.
  template <typename Compatible>
  std::vector<T> pop_group(std::size_t max_group, Compatible&& compatible) {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    std::vector<T> group;
    if (items_.empty()) return group;  // closed and drained
    group.push_back(std::move(items_.front()));
    items_.pop_front();
    for (auto it = items_.begin();
         it != items_.end() && group.size() < max_group;) {
      if (compatible(group.front(), *it)) {
        group.push_back(std::move(*it));
        it = items_.erase(it);
      } else {
        ++it;
      }
    }
    return group;
  }

  /// Close the queue: every subsequent try_push is refused.  Entries already
  /// queued remain poppable (drain), and blocked consumers wake up.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  /// Close and discard everything still queued; returns the discarded
  /// entries so the caller can fail them out loudly.
  std::vector<T> close_and_drain() {
    std::vector<T> dropped;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
      for (T& item : items_) dropped.push_back(std::move(item));
      items_.clear();
    }
    ready_.notify_all();
    return dropped;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }
  std::size_t capacity() const { return capacity_; }
  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace tlp
