// thread_id.hpp — process-unique small integer id per OS thread.  Reducer
// objects (miniraja) and per-thread scratch pools index arrays with this
// instead of hashing std::thread::id.
#pragma once

#include <atomic>

namespace tlp {

/// Upper bound on concurrently-live thread ids; slot-indexed structures size
/// themselves with this.
inline constexpr int kMaxThreadIds = 512;

/// A stable id in [0, kMaxThreadIds) for the calling thread, assigned on
/// first use.  Wraps around (re-uses slots) only past kMaxThreadIds distinct
/// threads, which a single-node run never reaches.
inline int current_thread_id() {
  static std::atomic<int> next{0};
  thread_local const int id =
      next.fetch_add(1, std::memory_order_relaxed) % kMaxThreadIds;
  return id;
}

}  // namespace tlp
