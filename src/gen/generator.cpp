#include "gen/generator.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace gen {

namespace {

/// Per-deck sub-seed: SplitMix64-style mix of (seed, index) so each deck has
/// an independent stream and is invariant under --count.
std::uint64_t deck_seed(std::uint64_t seed, int index) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Log-uniform in [lo, hi]: the physically natural distribution for
/// densities, energies and tolerances that span decades.
double log_uniform(tl::Rng& rng, double lo, double hi) {
  return std::exp(rng.uniform(std::log(lo), std::log(hi)));
}

/// Round to 6 significant digits.  Sampled values carry no information below
/// that, and shorter literals keep the decks readable and the on-disk bytes
/// obviously stable (to_deck itself prints full precision).
double round6(double v) {
  if (v == 0.0) return 0.0;
  const double mag = std::pow(10.0, 5 - std::floor(std::log10(std::fabs(v))));
  return std::round(v * mag) / mag;
}

tl::StateConfig sampled_state(tl::Rng& rng, int index,
                              const tl::ProblemConfig& p, bool stress) {
  tl::StateConfig st;
  st.index = index;
  st.density = round6(log_uniform(rng, 0.05, stress ? 5.0e4 : 1.0e3));
  st.energy = round6(log_uniform(rng, 1.0e-3, 50.0));

  const double w = p.xmax - p.xmin;
  const double h = p.ymax - p.ymin;
  const double dx = p.dx();
  const double dy = p.dy();
  // Geometry families: random rectangle, full-width layered slab, circle,
  // point.  Slabs get extra weight so layered problems are common.
  const std::uint64_t kind = rng.next_below(5);
  switch (kind) {
    case 0:
    case 1: {  // random sub-rectangle; stress shrinks it to one cell wide
      st.geometry = tl::Geometry::kRectangle;
      const double min_w = stress ? 1.0 * dx : 2.0 * dx;
      const double min_h = stress ? 1.0 * dy : 2.0 * dy;
      const double rw =
          stress ? min_w : rng.uniform(min_w, std::max(min_w, 0.6 * w));
      const double rh = rng.uniform(min_h, std::max(min_h, 0.6 * h));
      st.xmin = round6(p.xmin + rng.uniform(0.0, std::max(0.0, w - rw)));
      st.ymin = round6(p.ymin + rng.uniform(0.0, std::max(0.0, h - rh)));
      st.xmax = round6(std::min(p.xmax, st.xmin + rw));
      st.ymax = round6(std::min(p.ymax, st.ymin + rh));
      break;
    }
    case 2: {  // layered slab: full x range, a horizontal band of the domain
      st.geometry = tl::Geometry::kRectangle;
      st.xmin = p.xmin;
      st.xmax = p.xmax;
      const double min_h = stress ? 1.0 * dy : 2.0 * dy;
      const double bh = stress ? min_h
                               : rng.uniform(min_h, std::max(min_h, 0.4 * h));
      st.ymin = round6(p.ymin + rng.uniform(0.0, std::max(0.0, h - bh)));
      st.ymax = round6(std::min(p.ymax, st.ymin + bh));
      break;
    }
    case 3: {  // circle
      st.geometry = tl::Geometry::kCircle;
      st.cx = round6(rng.uniform(p.xmin + 0.2 * w, p.xmax - 0.2 * w));
      st.cy = round6(rng.uniform(p.ymin + 0.2 * h, p.ymax - 0.2 * h));
      const double min_r = std::max(dx, dy);
      st.radius =
          round6(rng.uniform(min_r, std::max(min_r, 0.25 * std::min(w, h))));
      break;
    }
    default: {  // point source
      st.geometry = tl::Geometry::kPoint;
      st.cx = round6(rng.uniform(p.xmin, p.xmax));
      st.cy = round6(rng.uniform(p.ymin, p.ymax));
      break;
    }
  }
  // Guard the degenerate rounding corner (round6 collapsing an interval).
  if (st.geometry == tl::Geometry::kRectangle) {
    if (st.xmax <= st.xmin) st.xmax = st.xmin + dx;
    if (st.ymax <= st.ymin) st.ymax = st.ymin + dy;
  }
  return st;
}

tl::ProblemConfig sampled_problem(tl::Rng& rng, const GenOptions& o) {
  tl::ProblemConfig p;
  p.x_cells = static_cast<int>(rng.uniform_int(o.min_cells, o.max_cells));
  p.y_cells = static_cast<int>(rng.uniform_int(o.min_cells, o.max_cells));

  // Domain: y extent is sampled; the x extent encodes the cell aspect ratio.
  // Half the population is isotropic; the rest samples dx/dy log-uniformly
  // up to the committed tea_aniso 4:1 — and up to 16:1 under stress.
  p.xmin = 0.0;
  p.ymin = 0.0;
  p.ymax = round6(rng.uniform(4.0, 12.0));
  const double dy = p.ymax / p.y_cells;
  double aspect = 1.0;
  if (o.stress || rng.next_below(2) == 0) {
    const double max_aspect = o.stress ? 16.0 : 4.0;
    aspect = log_uniform(rng, 1.0 / max_aspect, max_aspect);
  }
  p.xmax = round6(aspect * dy * p.x_cells);

  p.initial_timestep = round6(rng.uniform(0.001, 0.008));
  p.end_step = static_cast<int>(rng.uniform_int(2, 4));

  // Solver / preconditioner / tolerance.  Jacobi converges like the worst
  // smoothing factor of (I + rx*L), so it gets a looser (but still honest)
  // tolerance band; stress mode instead pushes every solver toward machine
  // precision and occasionally starves it of iterations outright.
  const std::uint64_t s = rng.next_below(4);
  p.solver = s == 0   ? tl::SolverKind::kJacobi
             : s == 1 ? tl::SolverKind::kCg
             : s == 2 ? tl::SolverKind::kCheby
                      : tl::SolverKind::kPpcg;
  if (o.stress) {
    p.eps = round6(log_uniform(rng, 1.0e-16, 1.0e-14));
  } else if (p.solver == tl::SolverKind::kJacobi) {
    p.eps = round6(log_uniform(rng, 1.0e-9, 1.0e-6));
  } else {
    p.eps = round6(log_uniform(rng, 1.0e-14, 1.0e-8));
  }
  if (p.solver == tl::SolverKind::kCg || p.solver == tl::SolverKind::kPpcg) {
    if (rng.next_below(5) < 2) p.preconditioner = tl::PreconKind::kJacDiag;
  }
  if (rng.next_below(4) == 0) p.coefficient = tl::CoefficientKind::kDensity;
  p.ppcg_inner_steps = static_cast<int>(rng.uniform_int(4, 12));
  p.cheby_cg_presteps = static_cast<int>(rng.uniform_int(20, 40));
  p.max_iters = 10000;
  if (o.stress && rng.next_below(2) == 0) {
    // Max-iteration cliff: a budget far below what the tolerance needs.
    p.max_iters = static_cast<int>(rng.uniform_int(4, 32));
  }

  // Materials: ambient plus 1..4 painted regions.
  tl::StateConfig ambient;
  ambient.index = 1;
  ambient.density = round6(log_uniform(rng, 0.1, 1.0e3));
  ambient.energy = round6(log_uniform(rng, 1.0e-4, 10.0));
  p.states.push_back(ambient);
  const int regions = static_cast<int>(rng.uniform_int(1, 4));
  for (int r = 0; r < regions; ++r) {
    p.states.push_back(sampled_state(rng, 2 + r, p, o.stress));
  }
  return p;
}

}  // namespace

std::vector<GeneratedDeck> generate(const GenOptions& options) {
  if (options.count < 1) throw tl::Error("gen: count must be >= 1");
  if (options.min_cells < 4 || options.max_cells < options.min_cells) {
    throw tl::Error("gen: need 4 <= min-cells <= max-cells");
  }
  std::vector<GeneratedDeck> out;
  out.reserve(static_cast<std::size_t>(options.count));
  for (int i = 0; i < options.count; ++i) {
    tl::Rng rng(deck_seed(options.seed, i));
    GeneratedDeck deck;
    deck.index = i;
    std::ostringstream name;
    name << "gen" << (options.stress ? "_stress" : "") << "_s" << options.seed
         << "_" << (i < 100 ? i < 10 ? "00" : "0" : "") << i;
    deck.name = name.str();
    deck.problem = sampled_problem(rng, options);
    // The generator must never emit a deck its own parser rejects; the
    // round-trip also canonicalises the problem to exactly what a consumer
    // reading the file back will see.
    deck.problem = tl::Config::parse(tl::to_deck(deck.problem)).problem();
    out.push_back(std::move(deck));
  }
  return out;
}

std::string deck_text(const GeneratedDeck& deck, const GenOptions& options) {
  std::ostringstream os;
  os << "! " << deck.name << " — generated workload deck (do not hand-edit).\n"
     << "! Regenerate byte-identically with:\n"
     // --count from the deck's own index, not options.count: deck i must be
     // byte-invariant under population size (it regenerates as the last
     // member of an (i+1)-deck population).
     << "!   tea_sweep gen --seed " << options.seed << " --count "
     << (deck.index + 1) << (options.stress ? " --stress" : "")
     << (options.min_cells != GenOptions{}.min_cells ||
                 options.max_cells != GenOptions{}.max_cells
             ? " --min-cells " + std::to_string(options.min_cells) +
                   " --max-cells " + std::to_string(options.max_cells)
             : "")
     << "\n";
  os << tl::to_deck(deck.problem);
  return os.str();
}

std::vector<std::string> write_population(
    const std::vector<GeneratedDeck>& decks, const GenOptions& options,
    const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) throw tl::Error("gen: cannot create directory '" + dir + "'");
  std::vector<std::string> paths;
  for (const GeneratedDeck& deck : decks) {
    const std::string path = dir + "/" + deck.name + ".in";
    std::ofstream out(path, std::ios::binary);  // byte-stable across hosts
    if (!out) throw tl::Error("gen: cannot write '" + path + "'");
    out << deck_text(deck, options);
    paths.push_back(path);
  }
  return paths;
}

}  // namespace gen
