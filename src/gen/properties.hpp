// properties.hpp — the metamorphic property evaluator: correctness checks
// that need no golden table, so they can judge *generated* decks (see
// gen/generator.hpp and docs/TESTING.md).
//
// Where the golden suite pins exact iteration counts and residuals for the
// eight committed decks, these properties hold for every well-posed deck the
// generator can emit:
//   * convergence   — every step's solve reaches its tolerance,
//   * finiteness    — the final field and summary carry no NaN/Inf,
//   * conservation  — reflective boundaries conserve the volume-weighted
//                     temperature sum every step, and mass/volume exactly,
//   * max-principle — backward-Euler diffusion keeps the temperature inside
//                     the painted initial extremes,
//   * agreement     — serial vs threaded vs tiled backends agree on the
//                     final summary (the row_reduce4 determinism contract
//                     makes the manual host family bitwise-identical; other
//                     families get a tight relative band).
//
// check_properties() is shared by tests/test_properties.cpp and the
// `tea_sweep gen --check` CLI path, so CI and ctest can never disagree about
// what "passes the property suite" means.
#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"

namespace gen {

struct PropertyOptions {
  /// The reference run is always the serial manual host backend (field-level
  /// checks need read_field); these are compared against it.
  std::vector<std::string> agreement_backends = {"manual-omp", "ops-tiled"};
  /// Floors for the relative bands.  The effective band is the floor plus
  /// an envelope computed from the run's *measured* final residuals
  /// (||A^-1|| <= 1 for A = I + rx*L, so algebraic error is bounded by the
  /// residual norm) — decks with loose tolerances get proportionally
  /// looser, but still rigorous, property bands.
  double conservation_rtol = 1e-8;
  double agreement_rtol = 1e-7;
  double bound_rtol = 1e-9;
};

struct PropertyResult {
  std::string id;  // "converged", "finite", "conservation", "max-principle",
                   // "agree:<backend>"
  bool pass = false;
  std::string detail;  // human diagnostic with the measured numbers
};

struct PropertyReport {
  std::string deck;
  bool converged = false;  // the reference run converged on every step
  std::vector<PropertyResult> results;

  bool ok() const {
    for (const PropertyResult& r : results) {
      if (!r.pass) return false;
    }
    return !results.empty();
  }
  /// Ids of the failed properties, comma-joined ("" when ok).
  std::string failures() const;
};

/// Painted-temperature extremes [lo, hi] of u = energy * density under the
/// cell-centre painting rule — the discrete maximum-principle bounds.
void painted_u_range(const tl::ProblemConfig& problem, double* lo, double* hi);

/// Evaluate the full property suite for one problem.
PropertyReport check_properties(const std::string& name,
                                const tl::ProblemConfig& problem,
                                const PropertyOptions& options = {});

// --- mesh-refinement convergence order --------------------------------------

struct OrderEstimate {
  std::vector<int> meshes;     // the refinement family (edge cells)
  std::vector<double> values;  // functional (RMS of u) per level
  double order = 0.0;          // Richardson estimate from the last 3 levels
  bool ok = false;             // every level converged, differences usable
  std::string detail;
};

/// Observed spatial convergence order of the discretisation: run `base` on
/// `levels` nested meshes (coarse_cells, 2x, 4x, ...; dt and the physical
/// problem fixed), take F(h) = RMS of the final temperature field (a smooth
/// volume functional — the field max sits in a flat region and converges at
/// a deceptive, much higher rate), and estimate
/// p = log2(|F(h)-F(h/2)| / |F(h/2)-F(h/4)|).  The five-point operator is
/// second order, so p ≈ 2 for any solver that actually solves the system —
/// the first solver-accuracy check that needs no golden table.
OrderEstimate convergence_order(const tl::ProblemConfig& base, int coarse_cells,
                                int levels = 3);

}  // namespace gen
