#include "gen/properties.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/backends/manual_host.hpp"
#include "core/driver.hpp"
#include "core/problem.hpp"
#include "core/registry.hpp"

namespace gen {

namespace {

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

/// Serial reference run with field access: the driver marches the deck on a
/// bare manual host backend so the final temperature field can be read back
/// (run_simulation does not expose fields).
struct ReferenceRun {
  tea::RunResult run;
  std::vector<double> u;  // final temperature, interior cells
};

ReferenceRun reference_run(const tl::ProblemConfig& problem) {
  ReferenceRun ref;
  tea::ManualHostBackend backend("serial", nullptr, nullptr);
  const tea::TeaDriver driver(problem);
  ref.run = driver.run(backend);
  ref.u.resize(static_cast<std::size_t>(problem.x_cells) * problem.y_cells);
  backend.read_field(tea::FieldId::kU, tl::span<double>(ref.u));
  return ref;
}

}  // namespace

std::string PropertyReport::failures() const {
  std::string out;
  for (const PropertyResult& r : results) {
    if (r.pass) continue;
    if (!out.empty()) out += ",";
    out += r.id;
  }
  return out;
}

void painted_u_range(const tl::ProblemConfig& problem, double* lo, double* hi) {
  // One painting rule for the whole repo: reuse the core sampler rather than
  // re-deriving the cell-centre containment logic here.
  const tea::StateSampler sampler(problem);
  *lo = 0.0;
  *hi = 0.0;
  bool first = true;
  for (int j = 0; j < problem.y_cells; ++j) {
    for (int i = 0; i < problem.x_cells; ++i) {
      const double u = sampler.density_at(i, j) * sampler.energy_at(i, j);
      if (first || u < *lo) *lo = u;
      if (first || u > *hi) *hi = u;
      first = false;
    }
  }
}

PropertyReport check_properties(const std::string& name,
                                const tl::ProblemConfig& problem,
                                const PropertyOptions& options) {
  PropertyReport report;
  report.deck = name;
  const auto add = [&report](const std::string& id, bool pass,
                             const std::string& detail) {
    report.results.push_back({id, pass, detail});
  };

  const ReferenceRun ref = reference_run(problem);
  report.converged = ref.run.all_converged();

  // Conservation/bounds/agreement are exact only for an exact solve.  An
  // iterative solve stopped at residual r carries algebraic error
  // e = A^-1 r with ||e|| <= ||r|| (A = I + rx*L, L PSD, so ||A^-1|| <= 1),
  // and the generated population samples eps across decades — so every band
  // is a floor plus the *measured* accumulated residual norms, a rigorous
  // envelope rather than a tuned fudge.  Safety factor 8 covers final_rr
  // being a preconditioned norm under jac_diag and a checkpointed
  // (every-20-sweep) norm under Jacobi.
  const double cells =
      static_cast<double>(problem.x_cells) * problem.y_cells;
  const auto residual_norm_sum = [](const tea::RunResult& run) {
    double sum = 0.0;
    for (const tea::StepResult& s : run.steps) {
      sum += std::sqrt(std::max(0.0, s.solve.final_rr));
    }
    return sum;
  };
  constexpr double kResidualSafety = 8.0;

  // 1. Convergence: every step's solve reached its tolerance.  A generated
  // deck that fails here is a finding — promote it (docs/TESTING.md).
  {
    int failed_steps = 0;
    for (const tea::StepResult& s : ref.run.steps) {
      failed_steps += s.solve.converged ? 0 : 1;
    }
    std::ostringstream d;
    d << ref.run.total_iterations << " iterations over "
      << ref.run.steps.size() << " steps";
    if (failed_steps > 0) d << "; " << failed_steps << " steps hit max_iters";
    add("converged", report.converged, d.str());
  }

  // 2. Finiteness: no NaN/Inf in the final field or the summary.
  {
    bool finite = std::isfinite(ref.run.final_summary.temp) &&
                  std::isfinite(ref.run.final_summary.ie) &&
                  std::isfinite(ref.run.final_summary.mass);
    std::size_t bad_cells = 0;
    for (const double v : ref.u) {
      if (!std::isfinite(v)) ++bad_cells;
    }
    finite = finite && bad_cells == 0;
    add("finite", finite,
        bad_cells == 0 ? "field and summary finite"
                       : std::to_string(bad_cells) + " non-finite cells");
  }

  // 3. Conservation: reflective boundaries conserve the volume-weighted
  // temperature sum across every step; density and volume are never touched,
  // so mass/vol must be constant to round-off.  An iterative solve stopped
  // at residual r leaks |sum(e)| <= sqrt(cells) * ||r||_2 into the sum
  // (A = I + rx*L with L PSD, so ||A^-1|| <= 1), so the band grows by the
  // accumulated measured residuals — a rigorous envelope, not a fudge.
  {
    const tea::FieldSummary& first = ref.run.steps.front().summary;
    double worst_temp = 0.0, worst_exact = 0.0;
    for (const tea::StepResult& s : ref.run.steps) {
      worst_temp = std::max(
          worst_temp, std::fabs(s.summary.temp - first.temp) /
                          std::max(std::fabs(first.temp), 1e-300));
      worst_exact = std::max(
          {worst_exact,
           std::fabs(s.summary.mass - first.mass) /
               std::max(std::fabs(first.mass), 1e-300),
           std::fabs(s.summary.vol - first.vol) /
               std::max(std::fabs(first.vol), 1e-300)});
    }
    // |sum(vol*e)| <= vol_cell * sqrt(cells) * ||r||_2, accumulated per step
    // = total_vol * ||r||_2 / sqrt(cells).
    const double leak =
        first.vol * residual_norm_sum(ref.run) / std::sqrt(cells);
    const double tol =
        options.conservation_rtol +
        kResidualSafety * leak / std::max(std::fabs(first.temp), 1e-300);
    const bool pass = worst_temp <= tol && worst_exact <= 1e-12;
    add("conservation", pass,
        "temp drift " + fmt(worst_temp) + " (tol " + fmt(tol) +
            "), mass/vol drift " + fmt(worst_exact));
  }

  // 4. Discrete maximum principle: backward-Euler diffusion cannot push the
  // temperature outside the painted initial extremes.
  {
    double lo = 0.0, hi = 0.0;
    painted_u_range(problem, &lo, &hi);
    const auto [min_it, max_it] = std::minmax_element(ref.u.begin(), ref.u.end());
    // ||e||_inf <= ||e||_2 <= ||r||_2 per step, accumulated.
    const double slack = options.bound_rtol * std::max(hi - lo, hi) +
                         kResidualSafety * residual_norm_sum(ref.run);
    const bool pass = *min_it >= lo - slack && *max_it <= hi + slack;
    add("max-principle", pass,
        "field [" + fmt(*min_it) + ", " + fmt(*max_it) + "] vs painted [" +
            fmt(lo) + ", " + fmt(hi) + "]");
  }

  // 5. Cross-backend agreement on the final summary (and on the convergence
  // verdict itself — a backend that converges when the reference does not
  // disagrees about the *problem*, not just about round-off).
  for (const std::string& backend : options.agreement_backends) {
    const tea::RunResult other = tea::run_simulation(backend, problem);
    const double temp_delta =
        std::fabs(other.final_summary.temp - ref.run.final_summary.temp) /
        std::max(std::fabs(ref.run.final_summary.temp), 1e-300);
    const double ie_delta =
        std::fabs(other.final_summary.ie - ref.run.final_summary.ie) /
        std::max(std::fabs(ref.run.final_summary.ie), 1e-300);
    // Both runs carry their own algebraic error; the summary gap is bounded
    // by the two accumulated residual envelopes (same algebra as the
    // conservation band).
    const double leak = ref.run.final_summary.vol *
                        (residual_norm_sum(ref.run) + residual_norm_sum(other)) /
                        std::sqrt(cells);
    const double tol =
        options.agreement_rtol +
        kResidualSafety * leak /
            std::max(std::fabs(ref.run.final_summary.temp), 1e-300);
    const bool pass = other.all_converged() == report.converged &&
                      temp_delta <= tol && ie_delta <= tol;
    add("agree:" + backend, pass,
        "temp delta " + fmt(temp_delta) + ", ie delta " + fmt(ie_delta) +
            (other.all_converged() == report.converged
                 ? ""
                 : ", convergence verdict differs"));
  }
  return report;
}

OrderEstimate convergence_order(const tl::ProblemConfig& base, int coarse_cells,
                                int levels) {
  OrderEstimate est;
  if (levels < 3) {
    est.detail = "need >= 3 refinement levels";
    return est;
  }
  bool all_converged = true;
  for (int k = 0; k < levels; ++k) {
    tl::ProblemConfig p = base;
    const int n = coarse_cells << k;
    p.x_cells = n;
    p.y_cells = n;
    const ReferenceRun ref = reference_run(p);
    all_converged = all_converged && ref.run.all_converged();
    est.meshes.push_back(n);
    // RMS over the (uniform) mesh = the L2 volume functional, second-order
    // convergent wherever the discretisation is.
    double ss = 0.0;
    for (const double v : ref.u) ss += v * v;
    est.values.push_back(std::sqrt(ss / static_cast<double>(ref.u.size())));
  }
  const std::size_t last = est.values.size() - 1;
  const double coarse_diff = est.values[last - 2] - est.values[last - 1];
  const double fine_diff = est.values[last - 1] - est.values[last];
  std::ostringstream d;
  d << "F = [";
  for (std::size_t i = 0; i < est.values.size(); ++i) {
    d << (i ? ", " : "") << fmt(est.values[i]);
  }
  d << "], diffs " << fmt(coarse_diff) << " -> " << fmt(fine_diff);
  // The Richardson quotient is meaningless once the successive differences
  // sink into solver tolerance / round-off, or if a level failed to solve.
  const double scale = std::fabs(est.values[last]);
  if (!all_converged) {
    est.detail = "a refinement level did not converge; " + d.str();
    return est;
  }
  if (std::fabs(fine_diff) < 1e-12 * std::max(scale, 1e-300)) {
    est.detail = "differences below noise floor; " + d.str();
    return est;
  }
  est.order = std::log2(std::fabs(coarse_diff / fine_diff));
  est.ok = true;
  est.detail = d.str();
  return est;
}

}  // namespace gen
