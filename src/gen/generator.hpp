// generator.hpp — seeded, deterministic input-deck generator: the workload
// *population* behind the property suite, the `gen-smoke` CI job and the
// population-scored tuner (ROADMAP "scenario diversity").
//
// Sampling is driven entirely by the repo's own tl::Rng (xoshiro256**, no
// std::random_device, no std::distribution — those differ across standard
// libraries), and every deck gets its own sub-seeded stream, so:
//   * the same seed always produces byte-identical deck files, and
//   * deck i is independent of --count: a 5-deck population is a prefix of
//     the 20-deck population for the same seed.
//
// The sampled space covers geometry (circles, points, layered slabs, random
// multi-region rectangles), cell anisotropy (up to the committed tea_aniso
// 4:1 in the smoke population, far beyond it under --stress), mesh size,
// solver, preconditioner, coefficient form and eps.  Stress mode aims the
// generator at the hostile corner instead: 1-cell-wide regions, extreme
// anisotropy and density contrast, eps near machine precision and
// max-iteration cliffs — decks that are *expected* to break solvers, whose
// failures get promoted into examples/decks/regressions/ (docs/TESTING.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"

namespace gen {

struct GenOptions {
  std::uint64_t seed = 1;
  int count = 20;
  bool stress = false;  // sample the hostile corner of the space
  int min_cells = 24;   // sampled mesh-edge bounds
  int max_cells = 96;
};

struct GeneratedDeck {
  std::string name;  // "gen_s<seed>_<NNN>" / "gen_stress_s<seed>_<NNN>"
  int index = 0;     // position in the population (the NNN in the name)
  tl::ProblemConfig problem;
};

/// Deterministic population for `options`.  Every deck is round-tripped
/// through the deck parser before being returned, so a generated problem can
/// never be one the parser would reject.
std::vector<GeneratedDeck> generate(const GenOptions& options);

/// Canonical on-disk text of one deck: a deterministic provenance header
/// (how to regenerate it — no timestamps) plus tl::to_deck.
std::string deck_text(const GeneratedDeck& deck, const GenOptions& options);

/// Write `<dir>/<name>.in` for every deck (creating `dir`); returns the
/// paths written, in population order.
std::vector<std::string> write_population(
    const std::vector<GeneratedDeck>& decks, const GenOptions& options,
    const std::string& dir);

}  // namespace gen
