// miniops.hpp — umbrella header for the OPS-substitute structured-mesh DSL.
#pragma once

#include "miniops/args.hpp"      // IWYU pragma: export
#include "miniops/context.hpp"   // IWYU pragma: export
#include "miniops/dat.hpp"       // IWYU pragma: export
#include "miniops/par_loop.hpp"  // IWYU pragma: export
#include "miniops/range.hpp"     // IWYU pragma: export
#include "miniops/stencil.hpp"   // IWYU pragma: export
#include "miniops/tiling.hpp"    // IWYU pragma: export
