#include "miniops/tiling.hpp"

#include <algorithm>
#include <set>

#include "common/error.hpp"

namespace ops {

namespace {

/// Required end row for loop k in the current tile, from the already-fixed
/// ends of later loops.  All three dependence kinds skew loop k forward:
///   RAW — a later loop m reads (with stencil reach +b) a dat k writes:
///         k must have produced rows < end_m + b, so end_k >= end_m + b;
///   WAR — a later loop m overwrites a dat k reads (with reach -a below):
///         k must have consumed rows < end_m + a before m clobbers them,
///         so end_k >= end_m + a;
///   WAW — both write: k's later-tile writes must never land on rows m has
///         already finalised, so end_k >= end_m.
int required_end(const std::vector<LoopRecord>& loops, std::size_t k,
                 const std::vector<int>& later_ends, int nominal_end) {
  const LoopRecord& earlier = loops[k];
  int end = nominal_end;
  for (std::size_t m = k + 1; m < loops.size(); ++m) {
    const LoopRecord& later = loops[m];
    for (const auto& later_use : later.dats) {
      for (const auto& early_use : earlier.dats) {
        if (early_use.dat != later_use.dat) continue;
        if (writes(early_use.mode) && reads(later_use.mode)) {
          end = std::max(end, later_ends[m] + std::max(0, later_use.yhi));
        }
        if (reads(early_use.mode) && writes(later_use.mode)) {
          end = std::max(end, later_ends[m] + std::max(0, -early_use.ylo));
        }
        if (writes(early_use.mode) && writes(later_use.mode)) {
          end = std::max(end, later_ends[m]);
        }
      }
    }
  }
  return end;
}

}  // namespace

TilePlan::TilePlan(const std::vector<LoopRecord>& loops,
                   const TileConfig& config, int local_nx) {
  TL_REQUIRE(!loops.empty(), "tile plan over empty chain");
  const std::size_t nloops = loops.size();

  y_min_ = loops[0].local_range.y0;
  y_max_ = loops[0].local_range.y1;
  std::set<const Dat*> distinct;
  for (const LoopRecord& l : loops) {
    y_min_ = std::min(y_min_, l.local_range.y0);
    y_max_ = std::max(y_max_, l.local_range.y1);
    for (const auto& u : l.dats) distinct.insert(u.dat);
  }
  const int total_rows = std::max(0, y_max_ - y_min_);

  if (config.tile_rows > 0) {
    tile_rows_ = config.tile_rows;
  } else {
    // Fit the chain's per-row working set into the cache budget, with slack
    // for stencil skew rows.
    const std::size_t row_bytes =
        std::max<std::size_t>(1, distinct.size()) *
        static_cast<std::size_t>(std::max(1, local_nx)) * sizeof(double);
    tile_rows_ = static_cast<int>(config.cache_bytes / (2 * row_bytes));
    tile_rows_ = std::clamp(tile_rows_, 8, std::max(8, total_rows));
  }

  const int ntiles =
      total_rows == 0 ? 1 : (total_rows + tile_rows_ - 1) / tile_rows_;

  // Backward-skewed per-tile ends; prev_end[k] tracks where loop k stopped
  // in the previous tile (its start here).
  std::vector<int> prev_end(nloops);
  for (std::size_t k = 0; k < nloops; ++k) {
    prev_end[k] = loops[k].local_range.y0;
  }

  tiles_.reserve(static_cast<std::size_t>(ntiles));
  for (int t = 0; t < ntiles; ++t) {
    const bool last_tile = (t == ntiles - 1);
    const int nominal = last_tile ? y_max_ : y_min_ + (t + 1) * tile_rows_;

    std::vector<int> ends(nloops);
    // Sweep the chain from last loop to first, growing ends through the
    // dependence skews.
    for (std::size_t kk = nloops; kk-- > 0;) {
      int end = last_tile ? loops[kk].local_range.y1
                          : required_end(loops, kk, ends, nominal);
      end = std::clamp(end, loops[kk].local_range.y0,
                       loops[kk].local_range.y1);
      end = std::max(end, prev_end[kk]);  // never regress
      ends[kk] = end;
    }

    std::vector<TileSlice> slices(nloops);
    for (std::size_t k = 0; k < nloops; ++k) {
      slices[k] = TileSlice{prev_end[k], ends[k]};
      prev_end[k] = ends[k];
    }
    tiles_.push_back(std::move(slices));
  }

  // Partition check: the final tile must finish every loop.
  for (std::size_t k = 0; k < nloops; ++k) {
    TL_REQUIRE(tiles_.back()[k].y_end == loops[k].local_range.y1,
               "tile plan failed to cover loop '" + loops[k].name + "'");
  }
}

TilePlan::Traffic TilePlan::traffic(
    const std::vector<LoopRecord>& loops) const {
  Traffic total;
  for (const auto& tile : tiles_) {
    std::set<const Dat*> in_cache;
    for (std::size_t k = 0; k < loops.size(); ++k) {
      const TileSlice& s = tile[k];
      const int rows = std::max(0, s.y_end - s.y_begin);
      if (rows == 0) continue;
      const LoopRecord& l = loops[k];
      const long long row_cells = std::max(0, l.local_range.x1 -
                                                  l.local_range.x0);
      long long cells = static_cast<long long>(rows) * row_cells;
      if (l.traffic_cells_override >= 0) {
        // Sparse-footprint loops (halo records): apportion the true total by
        // the fraction of their rows this tile executes.
        const int total_rows =
            std::max(1, l.local_range.y1 - l.local_range.y0);
        cells = l.traffic_cells_override * rows / total_rows;
      }
      total.flops += cells * l.flops_per_cell;
      for (const auto& use : l.dats) {
        const long long bytes = cells * static_cast<long long>(sizeof(double));
        const bool cached = in_cache.count(use.dat) != 0;
        if (reads(use.mode) && !cached) total.bytes_read += bytes;
        if (writes(use.mode) && !cached) total.bytes_written += bytes;
        in_cache.insert(use.dat);
      }
    }
  }
  return total;
}

double TilePlan::reuse_factor(const std::vector<LoopRecord>& loops) const {
  const Traffic tiled = traffic(loops);
  const Traffic flat = untiled_traffic(loops);
  const double flat_bytes =
      static_cast<double>(flat.bytes_read + flat.bytes_written);
  if (flat_bytes <= 0.0) return 1.0;
  return static_cast<double>(tiled.bytes_read + tiled.bytes_written) /
         flat_bytes;
}

TilePlan::Traffic untiled_traffic(const std::vector<LoopRecord>& loops) {
  TilePlan::Traffic total;
  for (const LoopRecord& l : loops) {
    const long long cells = l.traffic_cells_override >= 0
                                ? l.traffic_cells_override
                                : l.local_range.cells();
    total.flops += cells * l.flops_per_cell;
    for (const auto& use : l.dats) {
      const long long bytes = cells * static_cast<long long>(sizeof(double));
      if (reads(use.mode)) total.bytes_read += bytes;
      if (writes(use.mode)) total.bytes_written += bytes;
    }
  }
  return total;
}

}  // namespace ops
