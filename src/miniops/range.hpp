// range.hpp — iteration ranges and access modes for miniops par_loops.
#pragma once

#include <algorithm>
#include <string>

namespace ops {

/// Half-open 2D iteration range in *global interior* coordinates: the mesh
/// interior is [0,nx) x [0,ny); halo cells sit at negative indices / >= n.
struct Range {
  int x0 = 0, x1 = 0;
  int y0 = 0, y1 = 0;

  bool empty() const { return x0 >= x1 || y0 >= y1; }
  long cells() const {
    return empty() ? 0
                   : static_cast<long>(x1 - x0) * static_cast<long>(y1 - y0);
  }

  Range intersect(const Range& o) const {
    return Range{std::max(x0, o.x0), std::min(x1, o.x1), std::max(y0, o.y0),
                 std::min(y1, o.y1)};
  }

  std::string to_string() const {
    return "[" + std::to_string(x0) + "," + std::to_string(x1) + ")x[" +
           std::to_string(y0) + "," + std::to_string(y1) + ")";
  }
};

enum class AccessMode { kRead, kWrite, kReadWrite };

inline bool reads(AccessMode m) { return m != AccessMode::kWrite; }
inline bool writes(AccessMode m) { return m != AccessMode::kRead; }

}  // namespace ops
