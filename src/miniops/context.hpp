// context.hpp — the miniops execution engine.
//
// A Context owns a rank's view of the mesh: block declarations, dats
// (decomposed when an MPI communicator is supplied), the par_loop executor
// for its mode (sequential / pooled / distributed / tiled / device), dirty-
// bit halo maintenance, and reduction plumbing.
//
// One Context per rank; pure shared-memory modes use a single Context.  All
// par_loop calls must be issued in the same order on every rank (SPMD), as
// with real OPS over MPI.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "minimpi/cart.hpp"
#include "minimpi/comm.hpp"
#include "miniops/args.hpp"
#include "miniops/dat.hpp"
#include "miniops/range.hpp"
#include "simgpu/device.hpp"
#include "threading/thread_pool.hpp"

namespace ops {

/// Cache-blocking tiling knobs (the OPS `MPI Tiled` feature, ref. [21]).
struct TileConfig {
  // Rows per tile; 0 = size tiles so a chain's working set fits cache_bytes.
  int tile_rows = 0;
  // Last-level cache the tiles should fit in.
  std::size_t cache_bytes = std::size_t(30) * 1024 * 1024;
  // Queue at most this many loops before force-flushing.
  int max_chain = 64;
};

struct ContextOptions {
  // Host threading: if use_pool, rows are work-shared on `pool` (the global
  // pool when null).
  bool use_pool = false;
  tlp::ThreadPool* pool = nullptr;
  // Distribution: non-null comm => block decomposition over its ranks.
  minimpi::Comm* comm = nullptr;
  // Lazy-execution cache-blocking tiling.
  bool tiled = false;
  TileConfig tile;
  // Device execution: non-null => CUDA-style offload of every par_loop.
  simgpu::Device* device = nullptr;
};

/// Type-erased loop record: what the templated par_loop front-end hands the
/// engine.  Ranges inside are *local* coordinates by the time the engine
/// stores them.
struct LoopRecord {
  std::string name;
  Range local_range;  // already clipped to this rank
  int flops_per_cell = 0;

  struct DatUse {
    Dat* dat;
    AccessMode mode;
    int ylo, yhi;  // stencil y-extents (inclusive)
    int xlo, xhi;
  };
  std::vector<DatUse> dats;
  bool has_reduction = false;
  /// Queued halo-maintenance record (reflection): clears rather than sets
  /// the halo dirty bit, and bypasses the stencil-hazard check.
  bool is_halo_update = false;
  /// Traffic accounting override: total cells this loop really touches when
  /// its range is much larger than its footprint (halo records).  -1 = use
  /// local_range.cells().
  std::int64_t traffic_cells_override = -1;

  /// Execute rows [y0,y1) x columns [x0,x1) (local coords) on host memory.
  std::function<void(int x0, int x1, int y0, int y1)> host_exec;
  /// Execute one element (local coords) on device memory.
  std::function<void(int i, int j)> device_elem;
};

class Context {
public:
  explicit Context(ContextOptions options = {});
  ~Context();

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  // --- declarations -----------------------------------------------------------

  Block& decl_block(const std::string& name, int nx, int ny);
  Dat& decl_dat(Block& block, const std::string& name, int halo_depth);

  // --- engine (called by the par_loop front-end) -----------------------------

  /// Queue or run a loop.  Loops with reductions and device loops are always
  /// eager; in tiled mode other loops are queued for chained execution.
  void execute(LoopRecord&& loop);

  /// Combine a locally-reduced value across ranks (identity op without MPI).
  double finish_reduction(double local, ReduceOp op);

  // --- halo management --------------------------------------------------------

  /// TeaLeaf-style halo update: exchange internal edges with neighbouring
  /// ranks, then apply reflective physical boundaries, to `depth` layers.
  void update_halo(const std::vector<Dat*>& dats, int depth);

  /// Flush any queued (tiled) loops.
  void flush();

  /// Download a device-resident dat back to host memory (no-op otherwise).
  void fetch_to_host(Dat& dat);

  // --- introspection -----------------------------------------------------------

  bool is_device() const { return options_.device != nullptr; }
  bool is_distributed() const { return options_.comm != nullptr; }
  bool is_tiled() const { return options_.tiled; }
  minimpi::Comm* comm() const { return options_.comm; }
  const minimpi::Cart2D* cart() const { return cart_.get(); }
  tlp::ThreadPool* pool() const;
  simgpu::Device* device() const { return options_.device; }
  const TileConfig& tile_config() const { return options_.tile; }

  /// Local interior offset/extent of this rank's partition of `block`.
  struct Partition {
    int x0, y0, nx, ny;
  };
  Partition partition_of(const Block& block) const;

  /// Clip a global range to what this rank executes (owned cells, plus
  /// physical-boundary halo when the range reaches outside the global
  /// interior), translated to local coordinates of `dat`'s partition.
  Range clip_to_local(const Range& global, const Dat& dat) const;

  long loops_executed() const { return loops_executed_; }
  long flushes() const { return flushes_; }

private:
  void run_host_loop(const LoopRecord& loop);
  void run_device_loop(LoopRecord& loop);
  void prepare_reads(const LoopRecord& loop);
  /// True when halo maintenance can join the lazy queue: tiled host context
  /// whose halos are pure reflections (no other rank to exchange with).
  bool halo_updates_queueable() const;
  void enqueue_reflection(Dat& dat, int depth);
  void mark_after_execution(const LoopRecord& loop);
  void charge_loop_traffic(const LoopRecord& loop);
  void exchange_internal(Dat& dat, int depth);
  void reflect_physical(Dat& dat, int depth);
  void reflect_physical_device(Dat& dat, int depth);
  void ensure_on_device(Dat& dat);
  bool counts_globally() const;  // rank 0 (or no comm): owns global counters

  ContextOptions options_;
  std::unique_ptr<minimpi::Cart2D> cart_;
  std::vector<std::unique_ptr<Block>> blocks_;
  std::vector<std::unique_ptr<Dat>> dats_;

  std::deque<LoopRecord> queue_;
  long loops_executed_ = 0;
  long flushes_ = 0;
};

}  // namespace ops
