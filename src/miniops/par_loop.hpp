// par_loop.hpp — the templated miniops front-end (ops_par_loop equivalent).
//
//   ops::par_loop(ctx, "advance", range, /*flops_per_cell=*/3,
//                 [](ops::Acc u, ops::Acc w) { w(0,0) = 0.5 * u(1,0); },
//                 ops::arg_dat(u_dat, ops::AccessMode::kRead, Stencil::star5()),
//                 ops::arg_dat(w_dat, ops::AccessMode::kWrite));
//
// Kernel parameters correspond positionally to the trailing argument
// descriptors: ArgDat -> ops::Acc bound to the current point, ArgGbl ->
// double& (a per-thread reduction slot; the final combined/allreduced value
// lands in the ArgGbl's target after the call).
#pragma once

#include <memory>
#include <tuple>

#include "common/error.hpp"
#include "miniops/context.hpp"

namespace ops {

namespace detail {

struct HostBind {
  double* origin;
  int stride;
};
struct DevBind {
  Dat* dat;
};
using GblBind = std::shared_ptr<GblScratch>;

inline HostBind bind_host(const ArgDat& a) {
  return HostBind{a.dat->origin(), a.dat->row_stride()};
}
inline const GblBind& bind_host(const GblBind& g) { return g; }

inline DevBind bind_dev(const ArgDat& a) { return DevBind{a.dat}; }
inline const GblBind& bind_dev(const GblBind& g) { return g; }

template <typename B>
decltype(auto) deref(const B& b, int i, int j) {
  if constexpr (std::is_same_v<B, HostBind>) {
    return Acc(b.origin + static_cast<std::ptrdiff_t>(j) * b.stride + i,
               b.stride);
  } else if constexpr (std::is_same_v<B, DevBind>) {
    double* origin = b.dat->device_origin();
    const int stride = b.dat->row_stride();
    return Acc(origin + static_cast<std::ptrdiff_t>(j) * stride + i, stride);
  } else {
    static_assert(std::is_same_v<B, GblBind>, "unknown binder");
    return static_cast<double&>(b->slot());
  }
}

// --- host band execution ------------------------------------------------------
//
// The host executor binds arguments once per chunk, not once per element: a
// reduction argument becomes a stack-local accumulator (GblBand) that the
// kernel updates through a plain double&, flushed into the per-thread slot
// after the chunk.  This keeps thread-id TLS lookups and the (padded but
// still shared) slot array out of the inner loop, so a dot-product par_loop
// runs at the speed of the underlying row reduction.

struct GblBand {
  GblScratch* scratch;
  double local;
};

inline HostBind bind_band(const ArgDat& a) { return bind_host(a); }
inline GblBand bind_band(const GblBind& g) {
  return GblBand{g.get(), GblScratch::identity_of(g->op())};
}

inline Acc band_deref(HostBind& b, int i, int j) {
  return Acc(b.origin + static_cast<std::ptrdiff_t>(j) * b.stride + i,
             b.stride);
}
inline double& band_deref(GblBand& g, int /*i*/, int /*j*/) { return g.local; }

inline void band_flush(HostBind&) {}
inline void band_flush(GblBand& g) { g.scratch->accumulate(g.local); }

// Argument classification helpers.
inline void collect(LoopRecord& rec, const ArgDat& a) {
  rec.dats.push_back(LoopRecord::DatUse{a.dat, a.mode, a.stencil->ylo(),
                                        a.stencil->yhi(), a.stencil->xlo(),
                                        a.stencil->xhi()});
}
inline void collect(LoopRecord& rec, const ArgGbl&) {
  rec.has_reduction = true;
}

/// Normalize an argument for closure capture: ArgGbl becomes a shared
/// scratch, ArgDat passes through.
struct NormalizedGbl {
  GblBind scratch;
  double* target;
  ReduceOp op;
};

inline const ArgDat& normalize(const ArgDat& a,
                               std::vector<NormalizedGbl>&) {
  return a;
}
inline GblBind normalize(const ArgGbl& g, std::vector<NormalizedGbl>& gbls) {
  auto scratch = std::make_shared<GblScratch>(g.op);
  gbls.push_back(NormalizedGbl{scratch, g.target, g.op});
  return scratch;
}

inline const Dat* first_dat() { return nullptr; }
template <typename... Rest>
const Dat* first_dat(const ArgDat& a, const Rest&...) {
  return a.dat;
}
template <typename A0, typename... Rest>
const Dat* first_dat(const A0&, const Rest&... rest) {
  return first_dat(rest...);
}

}  // namespace detail

template <typename Kernel, typename... Args>
void par_loop(Context& ctx, const std::string& name, const Range& global_range,
              int flops_per_cell, Kernel kernel, Args... args) {
  const Dat* anchor = detail::first_dat(args...);
  TL_REQUIRE(anchor != nullptr, "par_loop needs at least one dat argument");

  LoopRecord rec;
  rec.name = name;
  rec.flops_per_cell = flops_per_cell;
  rec.local_range = ctx.clip_to_local(global_range, *anchor);
  (detail::collect(rec, args), ...);

  std::vector<detail::NormalizedGbl> gbls;
  auto binders_src = std::make_tuple(detail::normalize(args, gbls)...);

  if (ctx.is_device()) {
    rec.device_elem = [kernel, binders = std::move(binders_src)](int i, int j) {
      std::apply(
          [&](const auto&... b) {
            kernel(detail::deref(detail::bind_dev(b), i, j)...);
          },
          binders);
    };
  } else {
    rec.host_exec = [kernel, binders = std::move(binders_src)](
                        int x0, int x1, int y0, int y1) {
      std::apply(
          [&](const auto&... b) {
            auto band = std::make_tuple(detail::bind_band(b)...);
            std::apply(
                [&](auto&... bb) {
                  for (int j = y0; j < y1; ++j) {
                    for (int i = x0; i < x1; ++i) {
                      kernel(detail::band_deref(bb, i, j)...);
                    }
                  }
                  (detail::band_flush(bb), ...);
                },
                band);
          },
          binders);
    };
  }

  ctx.execute(std::move(rec));

  for (const detail::NormalizedGbl& g : gbls) {
    *g.target = ctx.finish_reduction(g.scratch->combined(), g.op);
  }
}

/// Overload with a default flop estimate (5 flops/cell, typical of TeaLeaf's
/// pointwise kernels).
template <typename Kernel, typename... Args>
void par_loop(Context& ctx, const std::string& name, const Range& global_range,
              Kernel kernel, Args... args) {
  par_loop(ctx, name, global_range, 5, std::move(kernel), args...);
}

}  // namespace ops
