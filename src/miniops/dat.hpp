// dat.hpp — ops::Block (a structured-mesh block) and ops::Dat (a field
// defined on a block with halo padding).
//
// A Dat's logical coordinates are *global interior* indices; under an MPI
// context each rank stores only its local sub-block plus halo.  Dats carry
// the dirty bits OPS uses for both automatic halo maintenance (host side)
// and host/device coherence (CUDA side).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/span2d.hpp"
#include "simgpu/device_buffer.hpp"

namespace ops {

class Context;

/// A structured-mesh block: the *global* interior extent.  Decomposition
/// happens inside the Context that declared it.
class Block {
public:
  Block(std::string name, int nx, int ny) : name_(std::move(name)), nx_(nx), ny_(ny) {}

  const std::string& name() const { return name_; }
  int nx() const { return nx_; }
  int ny() const { return ny_; }

private:
  std::string name_;
  int nx_;
  int ny_;
};

/// Field on a block.  Storage covers the *local* interior plus `halo_depth`
/// padding on all sides, row-major with x contiguous.
class Dat {
public:
  Dat(const Block& block, std::string name, int halo_depth, int local_x0,
      int local_y0, int local_nx, int local_ny)
      : block_(&block),
        name_(std::move(name)),
        halo_(halo_depth),
        x0_(local_x0),
        y0_(local_y0),
        nx_(local_nx),
        ny_(local_ny),
        padded_nx_(local_nx + 2 * halo_depth),
        padded_ny_(local_ny + 2 * halo_depth),
        host_(static_cast<std::size_t>(padded_nx_) * padded_ny_, 0.0) {}

  const Block& block() const { return *block_; }
  const std::string& name() const { return name_; }
  int halo_depth() const { return halo_; }

  // Local interior extent and its offset within the global interior.
  int local_x0() const { return x0_; }
  int local_y0() const { return y0_; }
  int local_nx() const { return nx_; }
  int local_ny() const { return ny_; }
  int padded_nx() const { return padded_nx_; }
  int padded_ny() const { return padded_ny_; }

  std::size_t padded_cells() const {
    return static_cast<std::size_t>(padded_nx_) * padded_ny_;
  }
  std::size_t bytes() const { return padded_cells() * sizeof(double); }

  /// Host element access by *local* interior coordinates: (0,0) is the first
  /// owned cell; negative / >= n reach into halo.
  double& at(int i, int j) {
    return host_[idx(i, j)];
  }
  double at(int i, int j) const { return host_[idx(i, j)]; }

  /// Raw padded host span (for pack/unpack and kernel accessors).
  tl::Span2D<double> padded_span() {
    return host_.span2d(padded_nx_, padded_ny_);
  }
  tl::Span2D<const double> padded_span() const {
    return host_.span2d(padded_nx_, padded_ny_);
  }

  /// Pointer to local cell (0,0) in the padded layout.
  double* origin() { return host_.data() + idx(0, 0); }
  const double* origin() const { return host_.data() + idx(0, 0); }

  int row_stride() const { return padded_nx_; }

  // --- dirty bits (maintained by the Context) --------------------------------

  bool halo_dirty() const { return halo_dirty_; }
  void set_halo_dirty(bool d) { halo_dirty_ = d; }

  bool device_stale() const { return device_stale_; }
  void set_device_stale(bool d) { device_stale_ = d; }
  bool host_stale() const { return host_stale_; }
  void set_host_stale(bool d) { host_stale_ = d; }

  // --- device mirror (created on demand by CUDA/ACC contexts) ---------------

  bool has_device() const { return device_ != nullptr; }
  simgpu::DeviceBuffer<double>& device_buffer(simgpu::Device& dev) {
    if (!device_) {
      device_ = std::make_unique<simgpu::DeviceBuffer<double>>(dev,
                                                               padded_cells());
      device_stale_ = true;
    }
    return *device_;
  }
  double* device_origin() {
    return device_->data() + idx(0, 0);
  }

  /// Stable id within its Context (set at declaration; used by tiling plans).
  int id() const { return id_; }

private:
  friend class Context;

  std::size_t idx(int i, int j) const {
    return static_cast<std::size_t>(j + halo_) * padded_nx_ +
           static_cast<std::size_t>(i + halo_);
  }

  const Block* block_;
  std::string name_;
  int halo_;
  int x0_, y0_, nx_, ny_;
  int padded_nx_, padded_ny_;
  tl::AlignedBuffer<double> host_;
  std::unique_ptr<simgpu::DeviceBuffer<double>> device_;

  bool halo_dirty_ = true;     // halos undefined until first update
  bool device_stale_ = true;   // device copy older than host
  bool host_stale_ = false;    // host copy older than device
  int id_ = -1;
};

}  // namespace ops
