// tiling.hpp — lazy loop-chain cache-blocking tiling, the OPS feature behind
// the paper's "OPS MPI Tiled" variant (ref. [21], Reguly et al., "Loop Tiling
// in Large-Scale Stencil Codes at Run-time with OPS").
//
// A queued chain of loops is executed tile-by-tile over the row (y) axis.
// Per-tile per-loop row ranges are skewed backwards through the chain's
// dependences: if loop m reads, through a stencil reaching +b rows, a dat
// that loop k < m writes, then within a tile loop k must run b rows further
// than loop m.  Every cell of every loop executes exactly once (tiles
// partition each loop's range), so read-modify-write loops remain correct.
// Intermediate dats stay cache-resident between loops of the same tile,
// which is precisely the DRAM-traffic reduction the paper measures; the
// plan's traffic() method accounts for it.
#pragma once

#include <vector>

#include "miniops/context.hpp"

namespace ops {

/// Per-(tile, loop) execution rows.
struct TileSlice {
  int y_begin = 0;
  int y_end = 0;  // may equal y_begin (loop inactive in this tile)
};

class TilePlan {
public:
  /// Build a plan for `loops` (local ranges) with `config`.  `local_nx` is
  /// the row width used for working-set sizing.
  TilePlan(const std::vector<LoopRecord>& loops, const TileConfig& config,
           int local_nx);

  int num_tiles() const { return static_cast<int>(tiles_.size()); }
  int tile_rows() const { return tile_rows_; }

  /// Execution rows of loop `k` inside tile `t`.
  const TileSlice& slice(int t, int k) const { return tiles_[t][k]; }

  /// DRAM traffic the tiled execution generates (bytes read / written),
  /// assuming dats already touched earlier in the same tile's chain are
  /// served from cache.
  struct Traffic {
    long long bytes_read = 0;
    long long bytes_written = 0;
    long long flops = 0;
  };
  Traffic traffic(const std::vector<LoopRecord>& loops) const;

  /// Tiled vs. untiled DRAM-byte ratio (<= 1; diagnostic for benches).
  double reuse_factor(const std::vector<LoopRecord>& loops) const;

private:
  int tile_rows_ = 0;
  int y_min_ = 0;
  int y_max_ = 0;
  // tiles_[t][k]: rows of loop k executed by tile t.
  std::vector<std::vector<TileSlice>> tiles_;
};

/// Untiled traffic of the same chain, for the reuse diagnostic.
TilePlan::Traffic untiled_traffic(const std::vector<LoopRecord>& loops);

}  // namespace ops
