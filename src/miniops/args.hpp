// args.hpp — par_loop argument descriptors and the accessor objects handed to
// user kernels (OPS' ops_arg_dat / ops_arg_gbl / ACC<double> equivalents).
#pragma once

#include <array>
#include <limits>

#include "minimpi/types.hpp"
#include "miniops/dat.hpp"
#include "miniops/range.hpp"
#include "miniops/stencil.hpp"
#include "threading/thread_id.hpp"

namespace ops {

using ReduceOp = minimpi::ReduceOp;

/// Field argument: which Dat, how it is accessed, through which stencil.
struct ArgDat {
  Dat* dat;
  AccessMode mode;
  const Stencil* stencil;
};

inline ArgDat arg_dat(Dat& d, AccessMode mode,
                      const Stencil& s = Stencil::point()) {
  return ArgDat{&d, mode, &s};
}

/// Accessor bound to the loop's current point: `acc(di, dj)` addresses the
/// cell offset by (di, dj), like OPS' ACC<double> operator().
class Acc {
public:
  Acc(double* at_point, int row_stride)
      : p_(at_point), stride_(row_stride) {}

  double& operator()(int di, int dj) const {
    return p_[static_cast<std::ptrdiff_t>(dj) * stride_ + di];
  }

private:
  double* p_;
  int stride_;
};

/// Per-thread reduction scratch for one global argument.  Kernels receive a
/// `double&` slot; slots are padded against false sharing and folded after
/// the loop (then allreduced across ranks by the Context).
class GblScratch {
public:
  explicit GblScratch(ReduceOp op) : op_(op) {
    reset();
  }

  void reset() {
    const double identity = identity_of(op_);
    for (auto& s : slots_) s.value = identity;
  }

  double& slot() {
    return slots_[static_cast<std::size_t>(tlp::current_thread_id())].value;
  }

  /// Fold a band-local partial into this thread's slot.  The par_loop host
  /// executor accumulates each chunk into a stack local and calls this once
  /// per chunk, so the hot loop touches neither thread-local storage nor the
  /// shared slot array.
  void accumulate(double band_value) {
    double& s = slot();
    s = minimpi::apply(op_, s, band_value);
  }

  double combined() const {
    double acc = identity_of(op_);
    for (const auto& s : slots_) acc = minimpi::apply(op_, acc, s.value);
    return acc;
  }

  ReduceOp op() const { return op_; }

  static double identity_of(ReduceOp op) {
    switch (op) {
      case ReduceOp::kSum: return 0.0;
      case ReduceOp::kProd: return 1.0;
      case ReduceOp::kMin: return std::numeric_limits<double>::infinity();
      case ReduceOp::kMax: return -std::numeric_limits<double>::infinity();
    }
    return 0.0;
  }

private:
  struct alignas(64) Slot {
    double value;
  };
  ReduceOp op_;
  std::array<Slot, tlp::kMaxThreadIds> slots_;
};

/// Global-reduction argument: result lands in `*target` once the loop (and
/// any cross-rank combine) completes.
struct ArgGbl {
  double* target;
  ReduceOp op;
};

inline ArgGbl arg_gbl(double& target, ReduceOp op = ReduceOp::kSum) {
  return ArgGbl{&target, op};
}

}  // namespace ops
