// stencil.hpp — access stencils.  A par_loop argument's stencil declares which
// neighbour cells the kernel may touch; the library derives halo-exchange
// depth and tiling dependency skews from the extents, exactly as OPS does.
#pragma once

#include <array>
#include <vector>

#include "common/error.hpp"

namespace ops {

class Stencil {
public:
  using Point = std::array<int, 2>;  // (dx, dy)

  explicit Stencil(std::vector<Point> points) : points_(std::move(points)) {
    TL_REQUIRE(!points_.empty(), "stencil needs at least one point");
    for (const Point& p : points_) {
      xlo_ = std::min(xlo_, p[0]);
      xhi_ = std::max(xhi_, p[0]);
      ylo_ = std::min(ylo_, p[1]);
      yhi_ = std::max(yhi_, p[1]);
    }
  }

  /// The single-point stencil {(0,0)}.
  static const Stencil& point();
  /// The 5-point star {(0,0),(±1,0),(0,±1)}.
  static const Stencil& star5();
  /// Star of radius `r` along the axes (used by depth-2 halo reads).
  static Stencil star(int radius);

  const std::vector<Point>& points() const { return points_; }

  // Extents (inclusive): reads reach [x+xlo, x+xhi], [y+ylo, y+yhi].
  int xlo() const { return xlo_; }
  int xhi() const { return xhi_; }
  int ylo() const { return ylo_; }
  int yhi() const { return yhi_; }

  /// Maximum axis reach; the halo depth a read through this stencil needs.
  int max_extent() const {
    return std::max({-xlo_, xhi_, -ylo_, yhi_});
  }

  bool is_point() const { return max_extent() == 0; }

private:
  std::vector<Point> points_;
  int xlo_ = 0, xhi_ = 0, ylo_ = 0, yhi_ = 0;
};

inline const Stencil& Stencil::point() {
  static const Stencil s({{0, 0}});
  return s;
}

inline const Stencil& Stencil::star5() {
  static const Stencil s({{0, 0}, {1, 0}, {-1, 0}, {0, 1}, {0, -1}});
  return s;
}

inline Stencil Stencil::star(int radius) {
  std::vector<Point> pts{{0, 0}};
  for (int r = 1; r <= radius; ++r) {
    pts.push_back({r, 0});
    pts.push_back({-r, 0});
    pts.push_back({0, r});
    pts.push_back({0, -r});
  }
  return Stencil(std::move(pts));
}

}  // namespace ops
