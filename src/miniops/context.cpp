#include "miniops/context.hpp"

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "machine/instrumentation.hpp"
#include "miniops/tiling.hpp"

namespace ops {

namespace {
machine::Instrumentation& instr() { return machine::Instrumentation::global(); }

// Halo-exchange message tags (reserved range; FIFO matching per peer keeps
// multi-dat exchanges in order).
constexpr minimpi::Tag kTagToLeft = 3001;
constexpr minimpi::Tag kTagToRight = 3002;
constexpr minimpi::Tag kTagToDown = 3003;
constexpr minimpi::Tag kTagToUp = 3004;
}  // namespace

Context::Context(ContextOptions options) : options_(std::move(options)) {
  if (options_.comm != nullptr) {
    cart_ = std::make_unique<minimpi::Cart2D>(*options_.comm);
  }
  TL_REQUIRE(!(options_.device != nullptr && options_.comm != nullptr),
             "device contexts are single-rank in this implementation");
  TL_REQUIRE(!(options_.device != nullptr && options_.tiled),
             "tiling is a host-side executor");
}

Context::~Context() {
  // Any still-queued loops would silently vanish; run them.
  try {
    flush();
  } catch (...) {
    // Destructors must not throw; queued work failing here is a programming
    // error surfaced by tests via explicit flush().
  }
}

tlp::ThreadPool* Context::pool() const {
  if (!options_.use_pool) return nullptr;
  return options_.pool != nullptr ? options_.pool : &tlp::global_pool();
}

bool Context::counts_globally() const {
  return options_.comm == nullptr || options_.comm->rank() == 0;
}

Block& Context::decl_block(const std::string& name, int nx, int ny) {
  TL_REQUIRE(nx > 0 && ny > 0, "block dimensions must be positive");
  blocks_.push_back(std::make_unique<Block>(name, nx, ny));
  return *blocks_.back();
}

Context::Partition Context::partition_of(const Block& block) const {
  if (cart_ == nullptr) {
    return Partition{0, 0, block.nx(), block.ny()};
  }
  const auto [cx, cy] = cart_->coords();
  const auto [x0, x1] = minimpi::block_range(block.nx(), cart_->px(), cx);
  const auto [y0, y1] = minimpi::block_range(block.ny(), cart_->py(), cy);
  return Partition{x0, y0, x1 - x0, y1 - y0};
}

Dat& Context::decl_dat(Block& block, const std::string& name, int halo_depth) {
  const Partition p = partition_of(block);
  dats_.push_back(std::make_unique<Dat>(block, name, halo_depth, p.x0, p.y0,
                                        p.nx, p.ny));
  dats_.back()->id_ = static_cast<int>(dats_.size()) - 1;
  return *dats_.back();
}

Range Context::clip_to_local(const Range& global, const Dat& dat) const {
  const int gnx = dat.block().nx();
  const int gny = dat.block().ny();
  const int d = dat.halo_depth();
  // This rank executes its owned cells; ranks on a physical boundary also
  // execute range cells lying in the global halo beyond that boundary.
  Range allowed;
  allowed.x0 = dat.local_x0() == 0 ? -d : dat.local_x0();
  allowed.x1 = dat.local_x0() + dat.local_nx() == gnx
                   ? gnx + d
                   : dat.local_x0() + dat.local_nx();
  allowed.y0 = dat.local_y0() == 0 ? -d : dat.local_y0();
  allowed.y1 = dat.local_y0() + dat.local_ny() == gny
                   ? gny + d
                   : dat.local_y0() + dat.local_ny();
  Range r = global.intersect(allowed);
  if (r.empty()) return Range{0, 0, 0, 0};
  // Translate to local coordinates.
  r.x0 -= dat.local_x0();
  r.x1 -= dat.local_x0();
  r.y0 -= dat.local_y0();
  r.y1 -= dat.local_y0();
  return r;
}

double Context::finish_reduction(double local, ReduceOp op) {
  double result = local;
  if (options_.comm != nullptr) {
    result = options_.comm->allreduce(local, op);
  }
  if (counts_globally()) {
    instr().add_reduction();
    if (is_device()) instr().add_d2h(8);
  }
  return result;
}

// --- halo management ----------------------------------------------------------

namespace {

/// Mirror-reflect `depth` halo layers from the interior on the physical
/// edges this rank touches (TeaLeaf's reflective boundary).
void reflect_on_host(Dat& dat, int depth, bool at_xlo, bool at_xhi,
                     bool at_ylo, bool at_yhi) {
  const int nx = dat.local_nx();
  const int ny = dat.local_ny();
  if (at_xlo) {
    for (int j = 0; j < ny; ++j) {
      for (int k = 0; k < depth; ++k) dat.at(-1 - k, j) = dat.at(k, j);
    }
  }
  if (at_xhi) {
    for (int j = 0; j < ny; ++j) {
      for (int k = 0; k < depth; ++k) {
        dat.at(nx + k, j) = dat.at(nx - 1 - k, j);
      }
    }
  }
  // Y reflection covers the x halo too so corners are consistent.
  if (at_ylo) {
    for (int k = 0; k < depth; ++k) {
      for (int i = -depth; i < nx + depth; ++i) {
        dat.at(i, -1 - k) = dat.at(i, k);
      }
    }
  }
  if (at_yhi) {
    for (int k = 0; k < depth; ++k) {
      for (int i = -depth; i < nx + depth; ++i) {
        dat.at(i, ny + k) = dat.at(i, ny - 1 - k);
      }
    }
  }
}

}  // namespace

void Context::exchange_internal(Dat& dat, int depth) {
  minimpi::Comm& comm = *options_.comm;
  const minimpi::Cart2D& cart = *cart_;
  const int nx = dat.local_nx();
  const int ny = dat.local_ny();
  const std::size_t x_msg = static_cast<std::size_t>(depth) * ny;

  std::vector<double> buf(x_msg);
  std::vector<double> in(x_msg);

  // --- X phase: interior columns <-> side halos ---
  if (cart.left() != minimpi::kProcNull) {
    for (int j = 0; j < ny; ++j) {
      for (int k = 0; k < depth; ++k) buf[static_cast<std::size_t>(j) * depth + k] = dat.at(k, j);
    }
    comm.send(tl::span<const double>(buf), cart.left(), kTagToLeft);
  }
  if (cart.right() != minimpi::kProcNull) {
    comm.recv(tl::span<double>(in), cart.right(), kTagToLeft);
    for (int j = 0; j < ny; ++j) {
      for (int k = 0; k < depth; ++k) dat.at(nx + k, j) = in[static_cast<std::size_t>(j) * depth + k];
    }
    for (int j = 0; j < ny; ++j) {
      for (int k = 0; k < depth; ++k) {
        buf[static_cast<std::size_t>(j) * depth + k] = dat.at(nx - depth + k, j);
      }
    }
    comm.send(tl::span<const double>(buf), cart.right(), kTagToRight);
  }
  if (cart.left() != minimpi::kProcNull) {
    comm.recv(tl::span<double>(in), cart.left(), kTagToRight);
    for (int j = 0; j < ny; ++j) {
      for (int k = 0; k < depth; ++k) {
        dat.at(-depth + k, j) = in[static_cast<std::size_t>(j) * depth + k];
      }
    }
  }

  // --- Y phase: rows including x halo, so corners propagate ---
  const int row_lo = -depth;
  const int row_width = nx + 2 * depth;
  const std::size_t y_msg = static_cast<std::size_t>(depth) * row_width;
  buf.resize(y_msg);
  in.resize(y_msg);

  if (cart.down() != minimpi::kProcNull) {
    for (int k = 0; k < depth; ++k) {
      for (int i = 0; i < row_width; ++i) {
        buf[static_cast<std::size_t>(k) * row_width + i] = dat.at(row_lo + i, k);
      }
    }
    comm.send(tl::span<const double>(buf), cart.down(), kTagToDown);
  }
  if (cart.up() != minimpi::kProcNull) {
    comm.recv(tl::span<double>(in), cart.up(), kTagToDown);
    for (int k = 0; k < depth; ++k) {
      for (int i = 0; i < row_width; ++i) {
        dat.at(row_lo + i, ny + k) = in[static_cast<std::size_t>(k) * row_width + i];
      }
    }
    for (int k = 0; k < depth; ++k) {
      for (int i = 0; i < row_width; ++i) {
        buf[static_cast<std::size_t>(k) * row_width + i] =
            dat.at(row_lo + i, ny - depth + k);
      }
    }
    comm.send(tl::span<const double>(buf), cart.up(), kTagToUp);
  }
  if (cart.down() != minimpi::kProcNull) {
    comm.recv(tl::span<double>(in), cart.down(), kTagToUp);
    for (int k = 0; k < depth; ++k) {
      for (int i = 0; i < row_width; ++i) {
        dat.at(row_lo + i, -depth + k) = in[static_cast<std::size_t>(k) * row_width + i];
      }
    }
  }

  // Pack + unpack both touch the exchanged cells once.  Count only the
  // strips actually exchanged: a null neighbour moves no bytes, so
  // domain-edge ranks pay less than interior ranks.
  std::int64_t moved = 0;
  if (cart.left() != minimpi::kProcNull) moved += 2 * static_cast<std::int64_t>(x_msg);
  if (cart.right() != minimpi::kProcNull) moved += 2 * static_cast<std::int64_t>(x_msg);
  if (cart.down() != minimpi::kProcNull) moved += 2 * static_cast<std::int64_t>(y_msg);
  if (cart.up() != minimpi::kProcNull) moved += 2 * static_cast<std::int64_t>(y_msg);
  const std::int64_t bytes = moved * static_cast<std::int64_t>(sizeof(double));
  instr().add_traffic(bytes, bytes, 0);
}

void Context::reflect_physical(Dat& dat, int depth) {
  bool at_xlo = true, at_xhi = true, at_ylo = true, at_yhi = true;
  if (cart_ != nullptr) {
    at_xlo = cart_->left() == minimpi::kProcNull;
    at_xhi = cart_->right() == minimpi::kProcNull;
    at_ylo = cart_->down() == minimpi::kProcNull;
    at_yhi = cart_->up() == minimpi::kProcNull;
  }
  reflect_on_host(dat, depth, at_xlo, at_xhi, at_ylo, at_yhi);
  const std::int64_t edge_cells =
      static_cast<std::int64_t>(depth) *
      (2 * dat.local_nx() + 2 * (dat.local_nx() + 2 * depth));
  instr().add_traffic(edge_cells * 8, edge_cells * 8, 0);
}

void Context::reflect_physical_device(Dat& dat, int depth) {
  simgpu::Device& dev = *options_.device;
  ensure_on_device(dat);
  double* org = dat.device_origin();
  const int stride = dat.row_stride();
  const int nx = dat.local_nx();
  const int ny = dat.local_ny();
  const auto at = [org, stride](int i, int j) -> double& {
    return org[static_cast<std::ptrdiff_t>(j) * stride + i];
  };
  const std::int64_t edge_bytes =
      static_cast<std::int64_t>(depth) * (nx + ny) * 8;
  const simgpu::KernelTraffic traffic{edge_bytes, edge_bytes, 0};
  dev.launch_2d("halo_reflect_x", depth, ny, traffic, [&](int k, int j) {
    at(-1 - k, j) = at(k, j);
    at(nx + k, j) = at(nx - 1 - k, j);
  });
  dev.launch_2d("halo_reflect_y", nx + 2 * depth, depth, traffic,
                [&](int ii, int k) {
                  const int i = ii - depth;
                  at(i, -1 - k) = at(i, k);
                  at(i, ny + k) = at(i, ny - 1 - k);
                });
}

bool Context::halo_updates_queueable() const {
  // Reflections are ordinary (skewable) loops; inter-rank exchanges couple
  // whole rows across ranks and still fence the queue.
  return options_.tiled && !is_device() &&
         (options_.comm == nullptr || options_.comm->size() == 1);
}

void Context::enqueue_reflection(Dat& dat, int depth) {
  LoopRecord rec;
  rec.name = "halo_reflect(" + dat.name() + ")";
  const int nx = dat.local_nx();
  const int ny = dat.local_ny();
  rec.local_range = Range{-depth, nx + depth, -depth, ny + depth};
  rec.flops_per_cell = 0;
  rec.is_halo_update = true;
  rec.traffic_cells_override =
      static_cast<std::int64_t>(2 * depth) * (2 * (nx + ny) + 4 * depth);
  // Conservative extents: the deepest mirror read is 2*depth-1 away.
  const int reach = 2 * depth - 1;
  rec.dats.push_back(LoopRecord::DatUse{&dat, AccessMode::kReadWrite, -reach,
                                        reach, -reach, reach});
  Dat* d = &dat;
  rec.host_exec = [d, nx, ny, depth](int /*x0*/, int /*x1*/, int y0, int y1) {
    // X mirror for the interior rows of this band (row-local).
    for (int j = std::max(y0, 0); j < std::min(y1, ny); ++j) {
      for (int k = 0; k < depth; ++k) {
        d->at(-1 - k, j) = d->at(k, j);
        d->at(nx + k, j) = d->at(nx - 1 - k, j);
      }
    }
    // Halo rows in this band, corners included, reading *interior* cells
    // only (both axes mirrored) so the record has no self-dependency.
    const auto mirror_x = [nx](int i) {
      if (i < 0) return -1 - i;
      if (i >= nx) return 2 * nx - 1 - i;
      return i;
    };
    for (int j = y0; j < std::min(y1, 0); ++j) {
      const int src_j = -1 - j;
      for (int i = -depth; i < nx + depth; ++i) {
        d->at(i, j) = d->at(mirror_x(i), src_j);
      }
    }
    for (int j = std::max(y0, ny); j < y1; ++j) {
      const int src_j = 2 * ny - 1 - j;
      for (int i = -depth; i < nx + depth; ++i) {
        d->at(i, j) = d->at(mirror_x(i), src_j);
      }
    }
  };
  execute(std::move(rec));
  dat.set_halo_dirty(false);
  if (counts_globally()) instr().add_halo_exchange();
}

void Context::update_halo(const std::vector<Dat*>& dats, int depth) {
  if (halo_updates_queueable()) {
    for (Dat* dat : dats) {
      TL_REQUIRE(depth <= dat->halo_depth(),
                 "update depth exceeds halo depth of dat '" + dat->name() +
                     "'");
      enqueue_reflection(*dat, depth);
    }
    return;
  }
  flush();
  for (Dat* dat : dats) {
    TL_REQUIRE(depth <= dat->halo_depth(),
               "update depth exceeds halo depth of dat '" + dat->name() + "'");
    if (is_device()) {
      reflect_physical_device(*dat, depth);
    } else {
      if (options_.comm != nullptr) exchange_internal(*dat, depth);
      reflect_physical(*dat, depth);
    }
    dat->set_halo_dirty(false);
    if (counts_globally()) instr().add_halo_exchange();
  }
}

// --- device coherence -----------------------------------------------------------

void Context::ensure_on_device(Dat& dat) {
  auto& buf = dat.device_buffer(*options_.device);
  if (dat.device_stale()) {
    const tl::Span2D<const double> host = dat.padded_span();
    buf.upload(tl::span<const double>(host.data(), dat.padded_cells()));
    dat.set_device_stale(false);
  }
}

void Context::fetch_to_host(Dat& dat) {
  if (!is_device() || !dat.has_device() || !dat.host_stale()) return;
  auto& buf = dat.device_buffer(*options_.device);
  tl::Span2D<double> host = dat.padded_span();
  buf.download(tl::span<double>(host.data(), dat.padded_cells()));
  dat.set_host_stale(false);
}

// --- execution ------------------------------------------------------------------

void Context::prepare_reads(const LoopRecord& loop) {
  for (const auto& use : loop.dats) {
    if (!reads(use.mode)) continue;
    const bool needs_halo =
        use.xlo < 0 || use.xhi > 0 || use.ylo < 0 || use.yhi > 0;
    if (needs_halo && use.dat->halo_dirty()) {
      // OPS dirty-bit automation: refresh before the read.
      update_halo({use.dat}, use.dat->halo_depth());
    }
  }
}

void Context::charge_loop_traffic(const LoopRecord& loop) {
  const long long cells = loop.traffic_cells_override >= 0
                              ? loop.traffic_cells_override
                              : loop.local_range.cells();
  std::int64_t r = 0, w = 0;
  for (const auto& use : loop.dats) {
    if (reads(use.mode)) r += cells * 8;
    if (writes(use.mode)) w += cells * 8;
  }
  instr().add_traffic(r, w, cells * loop.flops_per_cell);
  if (counts_globally()) instr().add_launch();
}

void Context::mark_after_execution(const LoopRecord& loop) {
  if (loop.is_halo_update) {
    for (const auto& use : loop.dats) use.dat->set_halo_dirty(false);
    return;
  }
  for (const auto& use : loop.dats) {
    if (writes(use.mode)) use.dat->set_halo_dirty(true);
  }
}

void Context::run_host_loop(const LoopRecord& loop) {
  prepare_reads(loop);
  flush();  // prepare_reads may have queued halo reflections
  const Range& r = loop.local_range;
  if (!r.empty()) {
    tlp::ThreadPool* p = pool();
    if (p != nullptr) {
      p->parallel_for(r.y0, r.y1, [&](long lo, long hi) {
        loop.host_exec(r.x0, r.x1, static_cast<int>(lo), static_cast<int>(hi));
      });
    } else {
      loop.host_exec(r.x0, r.x1, r.y0, r.y1);
    }
  }
  mark_after_execution(loop);
  charge_loop_traffic(loop);
  ++loops_executed_;
}

void Context::run_device_loop(LoopRecord& loop) {
  for (const auto& use : loop.dats) {
    ensure_on_device(*use.dat);
  }
  const Range& r = loop.local_range;
  if (!r.empty()) {
    const long long cells = r.cells();
    std::int64_t br = 0, bw = 0;
    for (const auto& use : loop.dats) {
      if (reads(use.mode)) br += cells * 8;
      if (writes(use.mode)) bw += cells * 8;
    }
    options_.device->launch_2d(
        loop.name, r.x1 - r.x0, r.y1 - r.y0,
        {br, bw, cells * loop.flops_per_cell},
        [&](int x, int y) { loop.device_elem(r.x0 + x, r.y0 + y); });
  }
  for (const auto& use : loop.dats) {
    if (writes(use.mode)) {
      use.dat->set_host_stale(true);
      use.dat->set_halo_dirty(true);
    }
  }
  ++loops_executed_;
}

void Context::execute(LoopRecord&& loop) {
  if (is_device()) {
    run_device_loop(loop);
    return;
  }
  if (!options_.tiled) {
    run_host_loop(loop);
    return;
  }
  if (loop.has_reduction) {
    flush();
    run_host_loop(loop);
    return;
  }

  // Tiled path.  A stencil read of a dat with a stale halo is a hazard:
  // intra-rank row dependences are handled by the tile plan's skew, but halo
  // contents are not — unless the halo refresh itself is a queueable
  // reflection, in which case we enqueue one and carry on chaining.
  if (!loop.is_halo_update) {
    for (const auto& use : loop.dats) {
      if (!reads(use.mode)) continue;
      const bool non_point =
          use.xlo < 0 || use.xhi > 0 || use.ylo < 0 || use.yhi > 0;
      if (!non_point || !use.dat->halo_dirty()) continue;
      if (halo_updates_queueable()) {
        enqueue_reflection(*use.dat, use.dat->halo_depth());
      } else {
        flush();
        run_host_loop(loop);  // prepare_reads refreshes any dirty halos
        return;
      }
    }
  }

  // Queued writes make halos stale immediately (for hazard checks of later
  // loops); queued reflections clean them.  mark_after_execution re-derives
  // the same state at flush time.
  if (loop.is_halo_update) {
    for (const auto& use : loop.dats) use.dat->set_halo_dirty(false);
  } else {
    for (const auto& use : loop.dats) {
      if (writes(use.mode)) use.dat->set_halo_dirty(true);
    }
  }

  queue_.push_back(std::move(loop));
  if (static_cast<int>(queue_.size()) >= options_.tile.max_chain) flush();
}

void Context::flush() {
  if (queue_.empty()) return;
  std::vector<LoopRecord> chain(std::make_move_iterator(queue_.begin()),
                                std::make_move_iterator(queue_.end()));
  queue_.clear();
  ++flushes_;

  if (chain.size() == 1) {
    run_host_loop(chain[0]);
    return;
  }

  const int local_nx =
      chain[0].dats.empty() ? 1 : chain[0].dats[0].dat->padded_nx();
  const TilePlan plan(chain, options_.tile, local_nx);

  tlp::ThreadPool* p = pool();
  for (int t = 0; t < plan.num_tiles(); ++t) {
    for (std::size_t k = 0; k < chain.size(); ++k) {
      const TileSlice& s = plan.slice(t, static_cast<int>(k));
      if (s.y_end <= s.y_begin) continue;
      const Range& r = chain[k].local_range;
      if (p != nullptr) {
        p->parallel_for(s.y_begin, s.y_end, [&](long lo, long hi) {
          chain[k].host_exec(r.x0, r.x1, static_cast<int>(lo),
                             static_cast<int>(hi));
        });
      } else {
        chain[k].host_exec(r.x0, r.x1, s.y_begin, s.y_end);
      }
    }
  }

  const TilePlan::Traffic traffic = plan.traffic(chain);
  instr().add_traffic(traffic.bytes_read, traffic.bytes_written,
                      traffic.flops);
  if (counts_globally()) {
    instr().add_launch(static_cast<std::int64_t>(chain.size()));
  }
  for (const LoopRecord& l : chain) mark_after_execution(l);
  loops_executed_ += static_cast<long>(chain.size());
}

}  // namespace ops
