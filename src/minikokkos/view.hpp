// view.hpp — minikokkos Views: reference-counted multi-dimensional arrays
// bound to a memory space, plus deep_copy and mirror creation.
#pragma once

#include <cstring>
#include <memory>
#include <new>
#include <string>

#include "common/error.hpp"
#include "minikokkos/core.hpp"

namespace kk {

namespace detail {

/// Space-specific allocation, returned as a shared_ptr whose deleter knows
/// how to release it (host delete or device deallocate).
template <typename T, typename Space>
struct SpaceAlloc;

template <typename T>
struct SpaceAlloc<T, HostSpace> {
  static std::shared_ptr<T> make(std::size_t count) {
    T* p = static_cast<T*>(
        ::operator new(count * sizeof(T), std::align_val_t(64)));
    std::memset(static_cast<void*>(p), 0, count * sizeof(T));
    return std::shared_ptr<T>(
        p, [](T* q) { ::operator delete(q, std::align_val_t(64)); });
  }
};

template <typename T>
struct SpaceAlloc<T, SimGPUSpace> {
  static std::shared_ptr<T> make(std::size_t count) {
    simgpu::Device& dev = device();
    T* p = static_cast<T*>(dev.allocate(count * sizeof(T)));
    std::memset(static_cast<void*>(p), 0, count * sizeof(T));
    return std::shared_ptr<T>(p, [&dev](T* q) { dev.deallocate(q); });
  }
};

template <typename Layout>
constexpr std::size_t index2(int i0, int i1, int n0, int n1);

template <>
constexpr std::size_t index2<LayoutRight>(int i0, int i1, int /*n0*/, int n1) {
  return static_cast<std::size_t>(i0) * n1 + i1;
}
template <>
constexpr std::size_t index2<LayoutLeft>(int i0, int i1, int n0, int /*n1*/) {
  return static_cast<std::size_t>(i1) * n0 + i0;
}

}  // namespace detail

/// Rank-1 view.  Copying a View copies the handle (shared ownership), exactly
/// like Kokkos.
template <typename T, typename Space = HostSpace>
class View1D {
public:
  using value_type = T;
  using memory_space = Space;

  View1D() = default;

  View1D(std::string label, std::size_t n)
      : label_(std::move(label)),
        n_(n),
        data_(detail::SpaceAlloc<T, Space>::make(n)) {}

  T& operator()(std::size_t i) const { return data_.get()[i]; }
  T& operator[](std::size_t i) const { return data_.get()[i]; }

  std::size_t size() const { return n_; }
  std::size_t extent(int r) const { return r == 0 ? n_ : 1; }
  T* data() const { return data_.get(); }
  const std::string& label() const { return label_; }
  explicit operator bool() const { return data_ != nullptr; }

private:
  std::string label_;
  std::size_t n_ = 0;
  std::shared_ptr<T> data_;
};

/// Rank-2 view with a space-dependent default layout.
template <typename T, typename Layout = void, typename Space = HostSpace>
class View2D {
public:
  using value_type = T;
  using memory_space = Space;
  using layout = std::conditional_t<
      std::is_void_v<Layout>, typename DefaultLayout<Space>::type, Layout>;

  View2D() = default;

  View2D(std::string label, int n0, int n1)
      : label_(std::move(label)),
        n0_(n0),
        n1_(n1),
        data_(detail::SpaceAlloc<T, Space>::make(
            static_cast<std::size_t>(n0) * n1)) {}

  T& operator()(int i0, int i1) const {
    return data_.get()[detail::index2<layout>(i0, i1, n0_, n1_)];
  }

  int extent(int r) const { return r == 0 ? n0_ : (r == 1 ? n1_ : 1); }
  std::size_t size() const { return static_cast<std::size_t>(n0_) * n1_; }
  T* data() const { return data_.get(); }
  const std::string& label() const { return label_; }
  explicit operator bool() const { return data_ != nullptr; }

private:
  std::string label_;
  int n0_ = 0;
  int n1_ = 0;
  std::shared_ptr<T> data_;
};

// --- deep_copy ----------------------------------------------------------------

namespace detail {

template <typename Space>
struct CopyTraits;

template <>
struct CopyTraits<HostSpace> {
  static constexpr bool on_device = false;
};
template <>
struct CopyTraits<SimGPUSpace> {
  static constexpr bool on_device = true;
};

template <typename T, typename DstSpace, typename SrcSpace>
void copy_bytes(T* dst, const T* src, std::size_t count) {
  const std::size_t bytes = count * sizeof(T);
  constexpr bool dst_dev = CopyTraits<DstSpace>::on_device;
  constexpr bool src_dev = CopyTraits<SrcSpace>::on_device;
  if constexpr (dst_dev && src_dev) {
    device().memcpy_d2d(dst, src, bytes);
  } else if constexpr (dst_dev) {
    device().memcpy_h2d(dst, src, bytes);
  } else if constexpr (src_dev) {
    device().memcpy_d2h(dst, const_cast<T*>(src), bytes);
  } else {
    std::memcpy(static_cast<void*>(dst), src, bytes);
  }
}

}  // namespace detail

template <typename T, typename DS, typename SS>
void deep_copy(const View1D<T, DS>& dst, const View1D<T, SS>& src) {
  TL_REQUIRE(dst.size() == src.size(), "deep_copy size mismatch");
  detail::copy_bytes<T, DS, SS>(dst.data(), src.data(), src.size());
}

/// Rank-2 deep_copy requires matching *resolved* layouts (as Kokkos requires
/// compatible layouts for a bitwise copy); mirrors inherit the source layout,
/// so the common mirror pattern always satisfies this.
template <typename T, typename L1, typename L2, typename DS, typename SS>
void deep_copy(const View2D<T, L1, DS>& dst, const View2D<T, L2, SS>& src) {
  static_assert(std::is_same_v<typename View2D<T, L1, DS>::layout,
                               typename View2D<T, L2, SS>::layout>,
                "deep_copy between different layouts is not a bitwise copy");
  TL_REQUIRE(dst.extent(0) == src.extent(0) && dst.extent(1) == src.extent(1),
             "deep_copy extent mismatch");
  detail::copy_bytes<T, DS, SS>(dst.data(), src.data(), src.size());
}

/// Host mirror with the same extents (and, for rank-2, the same layout as the
/// source so deep_copy stays bitwise).
template <typename T, typename Space>
View1D<T, HostSpace> create_mirror_view(const View1D<T, Space>& v) {
  if constexpr (std::is_same_v<Space, HostSpace>) {
    return v;
  } else {
    return View1D<T, HostSpace>(v.label() + "_mirror", v.size());
  }
}

template <typename T, typename L, typename Space>
auto create_mirror_view(const View2D<T, L, Space>& v) {
  using SrcLayout = typename View2D<T, L, Space>::layout;
  if constexpr (std::is_same_v<Space, HostSpace>) {
    return v;
  } else {
    return View2D<T, SrcLayout, HostSpace>(v.label() + "_mirror", v.extent(0),
                                           v.extent(1));
  }
}

}  // namespace kk
