// core.hpp — minikokkos: execution spaces, memory spaces and layouts.
//
// This library is the from-scratch Kokkos substitution (DESIGN.md §2): the
// same programming model — Views owning data in a memory space, deep_copy
// between spaces, parallel_for/parallel_reduce over execution policies, with
// the default array layout chosen per space — implemented on tlp (host) and
// simgpu (device).
#pragma once

#include "simgpu/device.hpp"
#include "threading/thread_pool.hpp"

namespace kk {

// --- execution spaces -------------------------------------------------------

/// Single host thread.
struct Serial {};
/// Host thread pool (Kokkos::OpenMP equivalent; backed by tlp).
struct Threads {};
/// Simulated GPU (Kokkos::Cuda equivalent; backed by simgpu).
struct SimGPU {};

// --- memory spaces ----------------------------------------------------------

struct HostSpace {};
struct SimGPUSpace {};

template <typename Exec>
struct SpaceOf {
  using type = HostSpace;
};
template <>
struct SpaceOf<SimGPU> {
  using type = SimGPUSpace;
};

// --- layouts ----------------------------------------------------------------

/// Row-major (C order): last index strides 1.  Kokkos default on CPUs.
struct LayoutRight {};
/// Column-major: first index strides 1.  Kokkos default on CUDA, where it
/// makes thread-adjacent first-index access coalesced.
struct LayoutLeft {};

template <typename Space>
struct DefaultLayout {
  using type = LayoutRight;
};
template <>
struct DefaultLayout<SimGPUSpace> {
  using type = LayoutLeft;
};

/// The device every SimGPUSpace allocation and SimGPU launch uses.
inline simgpu::Device& device() { return simgpu::default_device(); }

/// The pool Threads launches use.
inline tlp::ThreadPool& thread_pool() { return tlp::global_pool(); }

}  // namespace kk
