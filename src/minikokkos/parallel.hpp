// parallel.hpp — minikokkos execution policies and parallel dispatch.
//
// parallel_for/parallel_reduce mirror Kokkos' functor signatures:
//   RangePolicy    : f(i)            / f(i, sum&)
//   MDRangePolicy2 : f(i0, i1)       / f(i0, i1, sum&)
// Host executions count one kernel launch in the instrumentation; SimGPU
// executions delegate to simgpu::Device, which counts its own.
#pragma once

#include <functional>
#include <string>

#include "machine/instrumentation.hpp"
#include "minikokkos/core.hpp"

namespace kk {

template <typename Exec = Serial>
struct RangePolicy {
  long begin = 0;
  long end = 0;
  RangePolicy(long b, long e) : begin(b), end(e) {}
};

/// 2D MDRange (Kokkos::MDRangePolicy<Rank<2>>); iteration order follows
/// LayoutRight on host (i0 outer) and maps i1 to the fast GPU axis.
template <typename Exec = Serial>
struct MDRangePolicy2 {
  long begin0 = 0, end0 = 0;
  long begin1 = 0, end1 = 0;
  MDRangePolicy2(long b0, long e0, long b1, long e1)
      : begin0(b0), end0(e0), begin1(b1), end1(e1) {}
};

namespace detail {
inline machine::Instrumentation& instr() {
  return machine::Instrumentation::global();
}
}  // namespace detail

// --- parallel_for ------------------------------------------------------------

template <typename Exec, typename F>
void parallel_for(const std::string& name, RangePolicy<Exec> p, F&& f) {
  (void)name;
  if constexpr (std::is_same_v<Exec, Serial>) {
    for (long i = p.begin; i < p.end; ++i) f(i);
    detail::instr().add_launch();
  } else if constexpr (std::is_same_v<Exec, Threads>) {
    thread_pool().parallel_for(p.begin, p.end, [&](long lo, long hi) {
      for (long i = lo; i < hi; ++i) f(i);
    });
    detail::instr().add_launch();
  } else {
    static_assert(std::is_same_v<Exec, SimGPU>, "unknown execution space");
    device().launch_1d(name, p.end - p.begin, {},
                       [&, b = p.begin](long i) { f(b + i); });
  }
}

template <typename Exec, typename F>
void parallel_for(const std::string& name, MDRangePolicy2<Exec> p, F&& f) {
  (void)name;
  if constexpr (std::is_same_v<Exec, Serial>) {
    for (long i0 = p.begin0; i0 < p.end0; ++i0) {
      for (long i1 = p.begin1; i1 < p.end1; ++i1) f(i0, i1);
    }
    detail::instr().add_launch();
  } else if constexpr (std::is_same_v<Exec, Threads>) {
    thread_pool().parallel_for(p.begin0, p.end0, [&](long lo, long hi) {
      for (long i0 = lo; i0 < hi; ++i0) {
        for (long i1 = p.begin1; i1 < p.end1; ++i1) f(i0, i1);
      }
    });
    detail::instr().add_launch();
  } else {
    static_assert(std::is_same_v<Exec, SimGPU>, "unknown execution space");
    const int n1 = static_cast<int>(p.end1 - p.begin1);
    const int n0 = static_cast<int>(p.end0 - p.begin0);
    device().launch_2d(name, n1, n0, {},
                       [&, b0 = p.begin0, b1 = p.begin1](int x, int y) {
                         f(b0 + y, b1 + x);
                       });
  }
}

// --- parallel_reduce (sum) -----------------------------------------------------

template <typename Exec, typename F>
void parallel_reduce(const std::string& name, RangePolicy<Exec> p, F&& f,
                     double& result) {
  (void)name;
  if constexpr (std::is_same_v<Exec, Serial>) {
    double acc = 0.0;
    for (long i = p.begin; i < p.end; ++i) f(i, acc);
    result = acc;
    detail::instr().add_launch();
    detail::instr().add_reduction();
  } else if constexpr (std::is_same_v<Exec, Threads>) {
    result = thread_pool().parallel_reduce<double>(
        p.begin, p.end, 0.0,
        [&](long lo, long hi) {
          double acc = 0.0;
          for (long i = lo; i < hi; ++i) f(i, acc);
          return acc;
        },
        [](double a, double b) { return a + b; });
    detail::instr().add_launch();
    detail::instr().add_reduction();
  } else {
    static_assert(std::is_same_v<Exec, SimGPU>, "unknown execution space");
    result = device().reduce_sum(name, p.end - p.begin,
                                 [&, b = p.begin](long i) {
                                   double local = 0.0;
                                   f(b + i, local);
                                   return local;
                                 });
  }
}

/// Kokkos::fence() equivalent; synchronous in this implementation.
inline void fence() { device().synchronize(); }

}  // namespace kk
