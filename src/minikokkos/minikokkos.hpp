// minikokkos.hpp — umbrella header for the Kokkos-substitute library.
#pragma once

#include "minikokkos/core.hpp"      // IWYU pragma: export
#include "minikokkos/parallel.hpp"  // IWYU pragma: export
#include "minikokkos/view.hpp"      // IWYU pragma: export
