// instrumentation.hpp — execution counters collected by every backend while
// kernels actually run.  These play the role Intel VTune and nvprof play in
// the paper (§V: achieved GB/s and GFLOP/s): the roofline machine models turn
// the counts into projected times on the paper's systems.
//
// Counters are added once per kernel invocation (not per element), so the
// overhead in hot loops is one handful of relaxed atomic adds per launch.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace machine {

/// Plain snapshot of the counter set.
struct Counters {
  // Logical main-memory traffic in bytes, as a DRAM-side profiler would see.
  // Backends report per-kernel footprints; the tiled executor reports the
  // post-cache-reuse traffic it actually generates (see miniops/tiling).
  std::int64_t bytes_read = 0;
  std::int64_t bytes_written = 0;
  std::int64_t flops = 0;

  std::int64_t kernel_launches = 0;    // device kernels / parallel regions
  std::int64_t reductions = 0;         // global reductions (dot products &c.)
  std::int64_t messages = 0;           // point-to-point messages
  std::int64_t message_bytes = 0;
  std::int64_t h2d_bytes = 0;          // host -> device copies
  std::int64_t d2h_bytes = 0;
  std::int64_t halo_exchanges = 0;
  std::int64_t solver_iterations = 0;

  std::int64_t total_bytes() const { return bytes_read + bytes_written; }

  Counters& operator+=(const Counters& o);
  Counters operator-(const Counters& o) const;
  std::string to_string() const;
};

/// Thread-safe accumulating counter set.
class Instrumentation {
public:
  /// Process-global instance used by all substrates.
  static Instrumentation& global();

  void add_traffic(std::int64_t read_bytes, std::int64_t written_bytes,
                   std::int64_t flops) {
    bytes_read_.fetch_add(read_bytes, std::memory_order_relaxed);
    bytes_written_.fetch_add(written_bytes, std::memory_order_relaxed);
    flops_.fetch_add(flops, std::memory_order_relaxed);
  }
  void add_launch(std::int64_t n = 1) {
    kernel_launches_.fetch_add(n, std::memory_order_relaxed);
  }
  void add_reduction(std::int64_t n = 1) {
    reductions_.fetch_add(n, std::memory_order_relaxed);
  }
  void add_message(std::int64_t bytes) {
    messages_.fetch_add(1, std::memory_order_relaxed);
    message_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void add_h2d(std::int64_t bytes) {
    h2d_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void add_d2h(std::int64_t bytes) {
    d2h_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void add_halo_exchange(std::int64_t n = 1) {
    halo_exchanges_.fetch_add(n, std::memory_order_relaxed);
  }
  void add_solver_iterations(std::int64_t n) {
    solver_iterations_.fetch_add(n, std::memory_order_relaxed);
  }

  Counters snapshot() const;
  void reset();

private:
  std::atomic<std::int64_t> bytes_read_{0};
  std::atomic<std::int64_t> bytes_written_{0};
  std::atomic<std::int64_t> flops_{0};
  std::atomic<std::int64_t> kernel_launches_{0};
  std::atomic<std::int64_t> reductions_{0};
  std::atomic<std::int64_t> messages_{0};
  std::atomic<std::int64_t> message_bytes_{0};
  std::atomic<std::int64_t> h2d_bytes_{0};
  std::atomic<std::int64_t> d2h_bytes_{0};
  std::atomic<std::int64_t> halo_exchanges_{0};
  std::atomic<std::int64_t> solver_iterations_{0};
};

/// RAII capture of the counter delta across a scope.
class CounterScope {
public:
  explicit CounterScope(Instrumentation& instr = Instrumentation::global())
      : instr_(instr), start_(instr.snapshot()) {}

  /// Delta accumulated since construction.
  Counters delta() const { return instr_.snapshot() - start_; }

private:
  Instrumentation& instr_;
  Counters start_;
};

}  // namespace machine
