#include "machine/instrumentation.hpp"

#include <sstream>

namespace machine {

Counters& Counters::operator+=(const Counters& o) {
  bytes_read += o.bytes_read;
  bytes_written += o.bytes_written;
  flops += o.flops;
  kernel_launches += o.kernel_launches;
  reductions += o.reductions;
  messages += o.messages;
  message_bytes += o.message_bytes;
  h2d_bytes += o.h2d_bytes;
  d2h_bytes += o.d2h_bytes;
  halo_exchanges += o.halo_exchanges;
  solver_iterations += o.solver_iterations;
  return *this;
}

Counters Counters::operator-(const Counters& o) const {
  Counters d;
  d.bytes_read = bytes_read - o.bytes_read;
  d.bytes_written = bytes_written - o.bytes_written;
  d.flops = flops - o.flops;
  d.kernel_launches = kernel_launches - o.kernel_launches;
  d.reductions = reductions - o.reductions;
  d.messages = messages - o.messages;
  d.message_bytes = message_bytes - o.message_bytes;
  d.h2d_bytes = h2d_bytes - o.h2d_bytes;
  d.d2h_bytes = d2h_bytes - o.d2h_bytes;
  d.halo_exchanges = halo_exchanges - o.halo_exchanges;
  d.solver_iterations = solver_iterations - o.solver_iterations;
  return d;
}

std::string Counters::to_string() const {
  std::ostringstream os;
  os << "bytes_read=" << bytes_read << " bytes_written=" << bytes_written
     << " flops=" << flops << " launches=" << kernel_launches
     << " reductions=" << reductions << " messages=" << messages
     << " message_bytes=" << message_bytes << " h2d=" << h2d_bytes
     << " d2h=" << d2h_bytes << " halo_exchanges=" << halo_exchanges
     << " solver_iterations=" << solver_iterations;
  return os.str();
}

Instrumentation& Instrumentation::global() {
  static Instrumentation instr;
  return instr;
}

Counters Instrumentation::snapshot() const {
  Counters c;
  c.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  c.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  c.flops = flops_.load(std::memory_order_relaxed);
  c.kernel_launches = kernel_launches_.load(std::memory_order_relaxed);
  c.reductions = reductions_.load(std::memory_order_relaxed);
  c.messages = messages_.load(std::memory_order_relaxed);
  c.message_bytes = message_bytes_.load(std::memory_order_relaxed);
  c.h2d_bytes = h2d_bytes_.load(std::memory_order_relaxed);
  c.d2h_bytes = d2h_bytes_.load(std::memory_order_relaxed);
  c.halo_exchanges = halo_exchanges_.load(std::memory_order_relaxed);
  c.solver_iterations = solver_iterations_.load(std::memory_order_relaxed);
  return c;
}

void Instrumentation::reset() {
  bytes_read_.store(0);
  bytes_written_.store(0);
  flops_.store(0);
  kernel_launches_.store(0);
  reductions_.store(0);
  messages_.store(0);
  message_bytes_.store(0);
  h2d_bytes_.store(0);
  d2h_bytes_.store(0);
  halo_exchanges_.store(0);
  solver_iterations_.store(0);
}

}  // namespace machine
