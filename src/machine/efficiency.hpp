// efficiency.hpp — per-(backend variant, machine) efficiency residuals used by
// the roofline projection.
//
// Everything the roofline multiplies these against — bytes, flops, kernel
// launches, messages, reductions, iteration counts — is measured from real
// execution of our from-scratch implementations.  The residuals themselves
// encode how well a given programming model drives a given machine's memory
// system, which cannot be derived without the hardware; they are calibrated
// against the paper's own Table III bandwidth-efficiency column (anchors
// marked [T3] in efficiency.cpp) and the qualitative orderings in §IV-B.
// DESIGN.md §7 records this as the one knowingly-calibrated input.
#pragma once

#include <string>
#include <vector>

#include "machine/machine_model.hpp"

namespace machine {

struct EfficiencyProfile {
  // Fraction of the machine's peak (STREAM) bandwidth this variant achieves
  // on large, streaming-dominated meshes.
  double bw_fraction = 0.8;
  // Fraction of peak FLOP/s achievable by the stencil instruction mix.
  double compute_fraction = 0.35;
  // Scale on the machine's per-launch overhead (framework dispatch cost).
  double launch_multiplier = 1.0;
  // Extra per-global-reduction synchronization cost, microseconds (device to
  // host readback on GPUs, tree+broadcast on CPUs).
  double reduction_sync_us = 0.0;
};

/// True if the paper could build/run this variant on this machine.  (E.g.
/// OpenACC host offload was impossible on the KNL with PGI 17.3 — §IV-B.)
bool supported(const std::string& backend_id, const MachineModel& m);

/// Look up the calibrated profile.  Throws tl::Error if the variant is not
/// supported on `m` (check supported() first).
EfficiencyProfile efficiency_for(const std::string& backend_id,
                                 const MachineModel& m);

/// Provenance family of a backend id: "manual-omp" -> "manual".
std::string framework_of(const std::string& backend_id);

/// All backend variant ids in paper Table I order (plus the serial
/// reference, which the paper does not time).
std::vector<std::string> paper_variants();

/// True for variants that target a GPU.
bool is_gpu_variant(const std::string& backend_id);

}  // namespace machine
