#include "machine/machine_model.hpp"

#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace machine {

// Sources for the fixed specs:
//  * Xeon E5-2660 v4: 14 cores / 2 sockets @ 2.0 GHz, AVX2 FMA -> 16 DP
//    flops/cycle/core = 896 GFLOP/s; 4x DDR4-2400 channels/socket = 153.6
//    GB/s theoretical peak.
//  * Xeon Phi 7210: 64 cores @ 1.3 GHz, 2x AVX-512 VPUs -> 32 DP
//    flops/cycle/core = 2662 GFLOP/s; MCDRAM flat mode ~ 440 GB/s attainable,
//    16 GB capacity (spills to ~80 GB/s DDR4).
//  * Tesla P100 (PCIe 16GB): 4.7 TFLOP/s DP, HBM2 732 GB/s peak; PCIe gen3
//    x16 ~ 12 GB/s effective; ~8 us launch latency.
//
// Bandwidth baselines follow the paper's own Table III convention (DDR4 and
// HBM2 theoretical peaks; MCDRAM attainable): its 95.93% KNL entry is only
// reachable against the attainable figure, while the P100's 75.70% is
// measured against the HBM2 peak.

const MachineModel& xeon_e5_2660v4() {
  static const MachineModel m{
      .id = "xeon",
      .description =
          "Intel Xeon E5-2660 v4: 2 processors, each with 14 cores and 2 "
          "hyperthreads per core. 2.00GHz",
      .kind = MachineKind::kCpu,
      .peak_bw_gbs = 153.6,
      .peak_gflops = 896.0,
      .cores = 28,
      .threads_per_core = 2,
      .launch_overhead_us = 4.0,
      .msg_latency_us = 0.8,
      .msg_bw_gbs = 8.0,
      .pcie_bw_gbs = 0.0,
      .mem_capacity_gb = 128.0,
      .numa = true,
  };
  return m;
}

const MachineModel& knl_7210() {
  static const MachineModel m{
      .id = "knl",
      .description =
          "Intel Xeon Phi 7210 (KNL): 1 processor with 64 cores and 4 "
          "hyperthreads per core. 1.30GHz, Flat memory mode, Quadrant "
          "clustering mode",
      .kind = MachineKind::kCpu,
      .peak_bw_gbs = 440.0,
      .peak_gflops = 2662.0,
      .cores = 64,
      .threads_per_core = 4,
      // Fork-join over 64+ in-order cores is markedly more expensive than on
      // the Xeon.
      .launch_overhead_us = 14.0,
      .msg_latency_us = 1.6,
      .msg_bw_gbs = 6.0,
      .pcie_bw_gbs = 0.0,
      .mem_capacity_gb = 16.0,  // MCDRAM; numactl spills beyond this
      .numa = false,
  };
  return m;
}

const MachineModel& tesla_p100() {
  static const MachineModel m{
      .id = "p100",
      .description =
          "NVIDIA Tesla P100: 3840 single precision CUDA cores (1920 double "
          "precision CUDA cores).",
      .kind = MachineKind::kGpu,
      .peak_bw_gbs = 732.0,
      .peak_gflops = 4700.0,
      .cores = 56,  // SMs
      .threads_per_core = 64,
      .launch_overhead_us = 8.0,
      .msg_latency_us = 0.0,
      .msg_bw_gbs = 0.0,
      .pcie_bw_gbs = 12.0,
      .mem_capacity_gb = 16.0,
      .numa = false,
  };
  return m;
}

namespace {

double measure_host_triad_gbs() {
  // One-shot STREAM-style triad estimate on a buffer that exceeds LLC.
  constexpr std::size_t n = 8 * 1024 * 1024;  // 3 arrays x 64 MiB total
  std::vector<double> a(n, 1.0), b(n, 2.0), c(n, 3.0);
  const auto t0 = std::chrono::steady_clock::now();
  constexpr int reps = 3;
  for (int r = 0; r < reps; ++r) {
    const double s = 1.0 + 1e-9 * r;
    for (std::size_t i = 0; i < n; ++i) a[i] = b[i] + s * c[i];
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double bytes =
      static_cast<double>(reps) * 3.0 * static_cast<double>(n) * sizeof(double);
  const double gbs = bytes / secs / 1e9;
  // Single-thread triad; scale by a conservative socket factor of 4 (memory
  // controllers saturate well below core count).
  return gbs * 4.0;
}

/// The measured (pre-override) host model; expensive, so computed once.
const MachineModel& measured_host_machine() {
  static const MachineModel m = [] {
    MachineModel host;
    host.id = "host";
    host.description = "local machine (measured)";
    host.kind = MachineKind::kCpu;
    host.peak_bw_gbs = measure_host_triad_gbs();
    host.peak_gflops = 0.0;  // unknown; host results are measured, not modeled
    const unsigned hw = std::thread::hardware_concurrency();
    host.cores = hw == 0 ? 1 : static_cast<int>(hw);
    host.threads_per_core = 1;
    host.launch_overhead_us = 5.0;
    host.msg_latency_us = 1.0;
    host.msg_bw_gbs = 6.0;
    host.mem_capacity_gb = 16.0;
    return host;
  }();
  return m;
}

/// Active override set: env values installed once, replaced wholesale by
/// set_host_overrides().
MachineOverrides& active_overrides() {
  static MachineOverrides overrides = MachineOverrides::from_env();
  return overrides;
}

MachineModel compose_host(const MachineOverrides& o) {
  MachineModel host = measured_host_machine();
  if (o.peak_bw_gbs) host.peak_bw_gbs = *o.peak_bw_gbs;
  if (o.launch_overhead_us) host.launch_overhead_us = *o.launch_overhead_us;
  if (o.any()) host.description = "local machine (measured, calibrated)";
  return host;
}

/// The composed model host_machine() hands out.  Mutated ONLY by
/// set_host_overrides(), so reads are stable and race-free between
/// configuration points (the previous behaviour callers relied on when
/// caching the reference).
MachineModel& composed_host() {
  static MachineModel m = compose_host(active_overrides());
  return m;
}

MachineModel compose_device(const MachineOverrides& o) {
  MachineModel device = tesla_p100();  // id stays "p100": residuals resolve
  if (o.device_bw_gbs) device.peak_bw_gbs = *o.device_bw_gbs;
  if (o.device_launch_us) device.launch_overhead_us = *o.device_launch_us;
  if (o.device_pcie_gbs) device.pcie_bw_gbs = *o.device_pcie_gbs;
  if (o.any_device()) {
    device.description = "node accelerator (P100 spec, calibrated)";
  }
  return device;
}

MachineModel& composed_device() {
  static MachineModel m = compose_device(active_overrides());
  return m;
}

std::optional<double> env_positive(const char* name) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || !(v > 0.0)) return std::nullopt;
  return v;
}

}  // namespace

MachineOverrides MachineOverrides::from_env() {
  MachineOverrides o;
  o.peak_bw_gbs = env_positive("TEA_HOST_BW_GBS");
  o.launch_overhead_us = env_positive("TEA_HOST_LAUNCH_US");
  o.device_bw_gbs = env_positive("TEA_DEVICE_BW_GBS");
  o.device_launch_us = env_positive("TEA_DEVICE_LAUNCH_US");
  o.device_pcie_gbs = env_positive("TEA_PCIE_BW_GBS");
  return o;
}

void set_host_overrides(const MachineOverrides& overrides) {
  active_overrides() = overrides;
  composed_host() = compose_host(overrides);
  composed_device() = compose_device(overrides);
}

const MachineOverrides& host_overrides() { return active_overrides(); }

const MachineModel& host_machine() { return composed_host(); }

const MachineModel& device_machine() { return composed_device(); }

const MachineModel& machine_by_id(const std::string& id) {
  if (id == "xeon") return xeon_e5_2660v4();
  if (id == "knl") return knl_7210();
  if (id == "p100") return tesla_p100();
  if (id == "host") return host_machine();
  throw tl::Error("unknown machine id '" + id + "'");
}

std::vector<const MachineModel*> paper_machines() {
  return {&xeon_e5_2660v4(), &knl_7210(), &tesla_p100()};
}

}  // namespace machine
