// machine_model.hpp — calibrated roofline models of the paper's three systems
// (Table II), plus the local host.  Absolute specs are public data sheet /
// STREAM numbers; they are *not* fitted to the paper's results.  Framework-
// specific efficiency residuals live separately in efficiency.hpp.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace machine {

enum class MachineKind { kCpu, kGpu };

struct MachineModel {
  std::string id;           // "xeon", "knl", "p100", "host"
  std::string description;  // human-readable, matches paper Table II wording
  MachineKind kind = MachineKind::kCpu;

  // Peak attainable (STREAM-like) main-memory bandwidth, GB/s.
  double peak_bw_gbs = 0.0;
  // Peak double-precision compute, GFLOP/s.
  double peak_gflops = 0.0;

  int cores = 1;
  int threads_per_core = 1;

  // Cost of dispatching one kernel / parallel region, microseconds.  On GPUs
  // this is the CUDA launch latency; on CPUs the fork-join/barrier cost of a
  // work-shared loop.
  double launch_overhead_us = 0.0;

  // Intra-node message costs (per message latency; per-byte from bandwidth).
  double msg_latency_us = 0.0;
  double msg_bw_gbs = 0.0;

  // Host<->device link (GPUs only).
  double pcie_bw_gbs = 0.0;

  // Memory capacity, GB (the KNL MCDRAM spill rule uses this).
  double mem_capacity_gb = 0.0;

  // Dual-socket NUMA (true for the Xeon; the KNL in quadrant mode and the
  // P100 are modeled as flat).
  bool numa = false;

  bool is_gpu() const { return kind == MachineKind::kGpu; }
};

/// The paper's systems (Table II): Xeon E5-2660 v4 (2 sockets), Xeon Phi 7210
/// KNL (flat MCDRAM, quadrant), Tesla P100.
const MachineModel& xeon_e5_2660v4();
const MachineModel& knl_7210();
const MachineModel& tesla_p100();

/// A model of the machine this library is running on, measured at first use
/// (cores from hardware_concurrency, bandwidth from a small STREAM triad),
/// then adjusted by the active MachineOverrides (see below).
const MachineModel& host_machine();

/// Evidence-backed corrections to the measured host model: the PR 4
/// least-squares calibration (validation::fit_host_model) fits attainable
/// seconds-per-GB and launch overhead from stored measurements, and this is
/// the path that feeds those constants back into `host_machine()` instead of
/// leaving them report-only.  Unset fields keep the measured/default value.
struct MachineOverrides {
  std::optional<double> peak_bw_gbs;        // fitted attainable bandwidth
  std::optional<double> launch_overhead_us; // fitted per-launch cost

  // Device-side constants for the node's modeled accelerator (see
  // device_machine()): the validation::fit_device_model least squares feeds
  // these back the same way the host fit feeds the two fields above.
  std::optional<double> device_bw_gbs;      // attainable device bandwidth
  std::optional<double> device_launch_us;   // per-kernel-launch cost
  std::optional<double> device_pcie_gbs;    // host<->device link bandwidth

  bool any() const {
    return peak_bw_gbs.has_value() || launch_overhead_us.has_value() ||
           any_device();
  }
  bool any_device() const {
    return device_bw_gbs.has_value() || device_launch_us.has_value() ||
           device_pcie_gbs.has_value();
  }

  /// TEA_HOST_BW_GBS / TEA_HOST_LAUNCH_US plus TEA_DEVICE_BW_GBS /
  /// TEA_DEVICE_LAUNCH_US / TEA_PCIE_BW_GBS (non-positive values ignored).
  static MachineOverrides from_env();
};

/// Replace the active host overrides (the env set is installed at first
/// `host_machine()` call; programmatic callers — the tuner — win afterwards).
/// Not thread-safe against concurrent `host_machine()` readers: configure
/// before projecting, as the CLI entry points do.
void set_host_overrides(const MachineOverrides& overrides);
const MachineOverrides& host_overrides();

/// The node's modeled accelerator: the P100 spec composed with the active
/// overrides' device fields.  The id stays "p100" so the per-variant
/// efficiency residual table keeps resolving; only the absolute constants
/// (bandwidth, launch overhead, PCIe) move with calibration.  This is the
/// machine the tuner scores simgpu-backed candidates against — device wall
/// times are emulated on the host, so projections on this model are the only
/// device-side currency.
const MachineModel& device_machine();

/// Lookup by id; throws tl::Error for unknown ids.
const MachineModel& machine_by_id(const std::string& id);

/// All paper machines, in Table II order.
std::vector<const MachineModel*> paper_machines();

}  // namespace machine
