#include "machine/roofline.hpp"

#include <algorithm>
#include <cmath>

namespace machine {

namespace {

/// Effective bandwidth once the working set spills past fast-memory capacity
/// (KNL flat-MCDRAM under numactl: overflow allocations land in DDR).
double capacity_adjusted_bw(const MachineModel& m,
                            std::int64_t working_set_bytes) {
  if (m.id != "knl" || working_set_bytes <= 0) return m.peak_bw_gbs;
  const double capacity = m.mem_capacity_gb * 1e9;
  const double ws = static_cast<double>(working_set_bytes);
  if (ws <= capacity) return m.peak_bw_gbs;
  // Fraction of traffic served from DDR (~80 GB/s on the 7210).
  constexpr double ddr_bw = 80.0;
  const double fast_fraction = capacity / ws;
  return 1.0 / (fast_fraction / m.peak_bw_gbs +
                (1.0 - fast_fraction) / ddr_bw);
}

}  // namespace

// GPU occupancy: small working sets cannot saturate a large device's memory
// system (§IV-C: "smaller problem sizes benefit less from the increased
// parallelism").  Calibrated so a 1000^2 TeaLeaf working set (~105 MB)
// reaches ~62% of streaming peak while 4000^2 (~1.7 GB) reaches ~96%, which
// reproduces the paper's 3% -> 50% CPU/GPU gap growth between the two
// meshes.  Applied to GPUs only.
double gpu_occupancy_factor(const MachineModel& m,
                            std::int64_t working_set_bytes) {
  if (!m.is_gpu() || working_set_bytes <= 0) return 1.0;
  constexpr double half_saturation_bytes = 64.0 * 1024 * 1024;
  const double ws = static_cast<double>(working_set_bytes);
  return ws / (ws + half_saturation_bytes);
}

TimeBreakdown project_time(const Counters& c, const MachineModel& m,
                           const EfficiencyProfile& profile,
                           std::int64_t working_set_bytes) {
  TimeBreakdown t;

  const double bw = capacity_adjusted_bw(m, working_set_bytes) *
                    profile.bw_fraction *
                    gpu_occupancy_factor(m, working_set_bytes);
  if (bw > 0.0) {
    t.memory_s = static_cast<double>(c.total_bytes()) / (bw * 1e9);
  }
  const double flops = m.peak_gflops * profile.compute_fraction;
  if (flops > 0.0) {
    t.compute_s = static_cast<double>(c.flops) / (flops * 1e9);
  }
  t.stream_s = std::max(t.memory_s, t.compute_s);

  t.launch_s = static_cast<double>(c.kernel_launches) *
               m.launch_overhead_us * profile.launch_multiplier * 1e-6;
  t.reduction_s =
      static_cast<double>(c.reductions) * profile.reduction_sync_us * 1e-6;

  if (m.msg_bw_gbs > 0.0 && c.messages > 0) {
    t.message_s = static_cast<double>(c.messages) * m.msg_latency_us * 1e-6 +
                  static_cast<double>(c.message_bytes) / (m.msg_bw_gbs * 1e9);
  }
  if (m.pcie_bw_gbs > 0.0) {
    t.pcie_s = static_cast<double>(c.h2d_bytes + c.d2h_bytes) /
               (m.pcie_bw_gbs * 1e9);
  }
  return t;
}

TimeBreakdown project_time(const Counters& c, const MachineModel& m,
                           const std::string& backend_id,
                           std::int64_t working_set_bytes) {
  return project_time(c, m, efficiency_for(backend_id, m), working_set_bytes);
}

Counters scale_counters(const Counters& measured, double cells_ratio,
                        double iteration_ratio, double perimeter_ratio) {
  const auto scale = [](std::int64_t v, double f) {
    return static_cast<std::int64_t>(std::llround(static_cast<double>(v) * f));
  };
  Counters out;
  const double stream = cells_ratio * iteration_ratio;
  out.bytes_read = scale(measured.bytes_read, stream);
  out.bytes_written = scale(measured.bytes_written, stream);
  out.flops = scale(measured.flops, stream);
  out.kernel_launches = scale(measured.kernel_launches, iteration_ratio);
  out.reductions = scale(measured.reductions, iteration_ratio);
  out.messages = scale(measured.messages, iteration_ratio);
  out.message_bytes =
      scale(measured.message_bytes, perimeter_ratio * iteration_ratio);
  out.h2d_bytes = scale(measured.h2d_bytes, cells_ratio);
  out.d2h_bytes = scale(measured.d2h_bytes, cells_ratio);
  out.halo_exchanges = scale(measured.halo_exchanges, iteration_ratio);
  out.solver_iterations = scale(measured.solver_iterations, iteration_ratio);
  return out;
}

}  // namespace machine
