// roofline.hpp — turn measured execution counters into a projected wall time
// on a modeled machine.  The streaming part follows the classic roofline:
// time >= max(bytes / attainable_bw, flops / attainable_flops); dispatch,
// reduction-synchronization, message and PCIe terms are added serially (they
// do not overlap with the bulk streaming phases in TeaLeaf's kernels).
#pragma once

#include <string>

#include "machine/efficiency.hpp"
#include "machine/instrumentation.hpp"
#include "machine/machine_model.hpp"

namespace machine {

struct TimeBreakdown {
  double memory_s = 0.0;     // bytes / attainable bandwidth
  double compute_s = 0.0;    // flops / attainable flops
  double stream_s = 0.0;     // max(memory_s, compute_s) — the roofline term
  double launch_s = 0.0;     // kernel/region dispatch
  double reduction_s = 0.0;  // global-reduction synchronization
  double message_s = 0.0;    // halo messages (latency + volume)
  double pcie_s = 0.0;       // host<->device copies

  double total() const {
    return stream_s + launch_s + reduction_s + message_s + pcie_s;
  }

  /// Achieved bandwidth implied by the projection, GB/s.
  double achieved_bw_gbs(const Counters& c) const {
    const double t = total();
    return t > 0.0 ? static_cast<double>(c.total_bytes()) / t / 1e9 : 0.0;
  }

  /// Achieved compute implied by the projection, GFLOP/s.
  double achieved_gflops(const Counters& c) const {
    const double t = total();
    return t > 0.0 ? static_cast<double>(c.flops) / t / 1e9 : 0.0;
  }
};

/// GPU occupancy: the streaming-bandwidth derating project_time applies to
/// GPU machines for small working sets (ws / (ws + 64 MiB); §IV-C).  Returns
/// 1.0 for CPUs.  Exposed so the device calibration can normalize its
/// observations by exactly the factor the projection applies.
double gpu_occupancy_factor(const MachineModel& m,
                            std::int64_t working_set_bytes);

/// Project the time the counted work would take on machine `m` when executed
/// through `profile`'s programming model.  `working_set_bytes` triggers the
/// KNL MCDRAM-spill rule (bandwidth degrades towards DDR beyond capacity).
TimeBreakdown project_time(const Counters& c, const MachineModel& m,
                           const EfficiencyProfile& profile,
                           std::int64_t working_set_bytes = 0);

/// Convenience: look up the profile by backend id and project.
TimeBreakdown project_time(const Counters& c, const MachineModel& m,
                           const std::string& backend_id,
                           std::int64_t working_set_bytes = 0);

/// Scale counters measured at one problem scale to another: streaming traffic
/// and flops scale with (cells x iterations); launches and reductions with
/// iterations; message volume with (perimeter x iterations).  Used to project
/// a reduced-size host run onto the paper's 1000^2 / 4000^2 meshes.
Counters scale_counters(const Counters& measured, double cells_ratio,
                        double iteration_ratio, double perimeter_ratio);

}  // namespace machine
