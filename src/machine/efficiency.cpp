#include "machine/efficiency.hpp"

#include <map>

#include "common/error.hpp"

namespace machine {

namespace {

struct Key {
  std::string variant;
  std::string machine;
  bool operator<(const Key& o) const {
    return variant != o.variant ? variant < o.variant : machine < o.machine;
  }
};

// Calibration table.  Two anchor kinds, both from the paper:
//  [T3]  — Table III bandwidth-efficiency column, used directly where our
//          from-scratch implementation moves the same bytes the original did;
//  [APP] — derived from Table III *application* efficiency instead.  The
//          2017-era OPS/Kokkos/RAJA builds moved ~1.2-1.4x more DRAM bytes
//          than the manual ports (high reported bandwidth at lower speed);
//          our reimplementations are leaner, so the extra traffic is folded
//          into the residual to keep the paper's *time* ratios — the
//          quantity the portability metric scores.  DESIGN.md §7 records
//          this as the one knowingly-calibrated input.
const std::map<Key, EfficiencyProfile>& table() {
  static const std::map<Key, EfficiencyProfile> t = {
      // --- Xeon E5-2660 v4 (dual socket; the pure-OpenMP first-touch NUMA
      //     trouble is the paper's 4000^2 outlier) ---
      {{"serial", "xeon"}, {.bw_fraction = 0.10, .launch_multiplier = 0.0}},
      {{"manual-omp", "xeon"}, {.bw_fraction = 0.30, .launch_multiplier = 1.0}},
      {{"manual-mpi", "xeon"}, {.bw_fraction = 0.55, .launch_multiplier = 0.6}},
      {{"manual-hybrid", "xeon"}, {.bw_fraction = 0.58, .launch_multiplier = 1.1}},
      {{"manual-acc-cpu", "xeon"}, {.bw_fraction = 0.605, .launch_multiplier = 1.4}},  // [T3]
      {{"ops-omp", "xeon"}, {.bw_fraction = 0.38, .launch_multiplier = 1.3}},   // [APP]
      {{"ops-mpi", "xeon"}, {.bw_fraction = 0.40, .launch_multiplier = 0.9}},   // [APP]
      {{"ops-hybrid", "xeon"}, {.bw_fraction = 0.41, .launch_multiplier = 1.4}},  // [APP]
      {{"ops-tiled", "xeon"}, {.bw_fraction = 0.415, .launch_multiplier = 1.5}},  // [APP]
      // Kokkos' team dispatch costs dominate small meshes (its 4.49 s at
      // 1000^2 is the slowest CPU time in the paper): high launch multiplier.
      // Recalibrated (PR 5) from the eyeballed 12.0 to the claim-derived
      // minimum: the smallest multiplier that keeps the §IV-B ordering
      // (raja-omp beats kokkos-omp at 1000^2) with ~2% margin under the
      // [T3] bandwidth anchors.  The quoted 4.49 s itself is unreachable
      // while honouring both the 64.1% [T3] bandwidth anchor and that
      // ordering — raja's own projected 1000^2 time floors kokkos at
      // ~3.4x the quote — so the quoted-time band is pinned at ~+240%
      // and is now gated at that level (test_validation) instead of
      // drifting unobserved.
      {{"kokkos-omp", "xeon"}, {.bw_fraction = 0.641, .launch_multiplier = 11.6}},  // [T3]
      {{"raja-omp", "xeon"}, {.bw_fraction = 0.531, .launch_multiplier = 1.2}},  // [T3]

      // --- KNL 7210 (flat MCDRAM, quadrant; no NUMA penalty, but fork-join
      //     costs bite and Kokkos' dispatch collapses) ---
      {{"serial", "knl"}, {.bw_fraction = 0.02, .launch_multiplier = 0.0}},
      {{"manual-omp", "knl"}, {.bw_fraction = 0.88, .launch_multiplier = 1.0}},
      {{"manual-mpi", "knl"}, {.bw_fraction = 0.90, .launch_multiplier = 0.7}},
      {{"manual-hybrid", "knl"}, {.bw_fraction = 0.916, .launch_multiplier = 1.1}},  // [T3]
      {{"ops-omp", "knl"}, {.bw_fraction = 0.90, .launch_multiplier = 1.3}},
      {{"ops-mpi", "knl"}, {.bw_fraction = 0.92, .launch_multiplier = 0.9}},
      {{"ops-hybrid", "knl"}, {.bw_fraction = 0.93, .launch_multiplier = 1.4}},
      {{"ops-tiled", "knl"}, {.bw_fraction = 0.9593, .launch_multiplier = 1.2}},  // [T3]
      {{"kokkos-omp", "knl"}, {.bw_fraction = 0.30, .launch_multiplier = 2.2}},  // [APP]
      {{"raja-omp", "knl"}, {.bw_fraction = 0.82, .launch_multiplier = 1.2}},   // [APP]

      // --- Tesla P100 ---
      {{"manual-cuda", "p100"},
       {.bw_fraction = 0.757, .launch_multiplier = 1.0, .reduction_sync_us = 10.0}},  // [T3]
      {{"manual-acc-gpu", "p100"},
       {.bw_fraction = 0.70, .launch_multiplier = 4.3, .reduction_sync_us = 14.0}},
      {{"ops-cuda", "p100"},
       {.bw_fraction = 0.51, .launch_multiplier = 1.5, .reduction_sync_us = 12.0}},  // [APP]
      {{"ops-acc", "p100"},
       {.bw_fraction = 0.47, .launch_multiplier = 2.5, .reduction_sync_us = 16.0}},
      {{"kokkos-cuda", "p100"},
       {.bw_fraction = 0.685, .launch_multiplier = 1.2, .reduction_sync_us = 10.0}},  // [APP]
      {{"raja-cuda", "p100"},
       {.bw_fraction = 0.635, .launch_multiplier = 4.5, .reduction_sync_us = 18.0}},  // [APP]
  };
  return t;
}

}  // namespace

bool supported(const std::string& backend_id, const MachineModel& m) {
  if (m.id == "host") return true;  // host runs are measured, not modeled
  return table().count({backend_id, m.id}) != 0;
}

EfficiencyProfile efficiency_for(const std::string& backend_id,
                                 const MachineModel& m) {
  const auto it = table().find({backend_id, m.id});
  TL_REQUIRE(it != table().end(), "backend '" + backend_id +
                                      "' is not supported on machine '" +
                                      m.id + "'");
  return it->second;
}

std::string framework_of(const std::string& backend_id) {
  const auto dash = backend_id.find('-');
  if (dash == std::string::npos) return backend_id;
  return backend_id.substr(0, dash);
}

std::vector<std::string> paper_variants() {
  return {
      "manual-omp",  "manual-mpi",  "manual-hybrid", "manual-cuda",
      "manual-acc-cpu", "manual-acc-gpu",
      "ops-omp",     "ops-mpi",     "ops-hybrid",    "ops-tiled",
      "ops-cuda",    "ops-acc",
      "kokkos-omp",  "kokkos-cuda",
      "raja-omp",    "raja-cuda",
  };
}

bool is_gpu_variant(const std::string& backend_id) {
  return backend_id.find("cuda") != std::string::npos ||
         backend_id == "manual-acc-gpu" || backend_id == "ops-acc";
}

}  // namespace machine
