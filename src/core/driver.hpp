// driver.hpp — the TeaLeaf time-marching driver: for each step, rebuild
// conduction coefficients, form u0 from energy*density, run the configured
// implicit solver, convert the temperature back to energy, and report the
// conserved-quantity summary.  One driver instance serves every backend; the
// distributed variants run it SPMD (one instance per rank).
#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/backend.hpp"
#include "core/solvers/solver.hpp"
#include "machine/instrumentation.hpp"

namespace tea {

struct StepResult {
  int step = 0;
  double dt = 0.0;
  SolveStats solve;
  FieldSummary summary;
};

struct RunResult {
  std::string backend_id;
  std::vector<StepResult> steps;
  FieldSummary final_summary;
  double wall_seconds = 0.0;
  long total_iterations = 0;
  std::int64_t working_set_bytes = 0;
  /// Instrumentation delta over the timed region (the "nvprof/VTune view").
  machine::Counters counters;

  bool all_converged() const {
    for (const StepResult& s : steps) {
      if (!s.solve.converged) return false;
    }
    return !steps.empty();
  }
};

class TeaDriver {
public:
  explicit TeaDriver(tl::ProblemConfig cfg) : cfg_(std::move(cfg)) {}

  /// Set up `backend` and march cfg.end_step steps.  Counter deltas cover
  /// the time-marching loop only (setup/painting is excluded, like the
  /// paper's timed region, which starts after initialisation).
  RunResult run(Backend& backend) const;

  const tl::ProblemConfig& config() const { return cfg_; }

private:
  tl::ProblemConfig cfg_;
};

}  // namespace tea
