#include "core/problem.hpp"

#include <cmath>

namespace tea {

StateSampler::StateSampler(const tl::ProblemConfig& cfg)
    : cfg_(cfg), dx_(cfg.dx()), dy_(cfg.dy()) {}

StateSampler::Cell StateSampler::sample(int i, int j) const {
  // Cell centre in physical coordinates.
  const double cx = cfg_.xmin + (i + 0.5) * dx_;
  const double cy = cfg_.ymin + (j + 0.5) * dy_;

  Cell cell{0.0, 0.0};
  bool have_default = false;
  for (const tl::StateConfig& st : cfg_.states) {
    if (st.index == 1) {
      // State 1 is the ambient material everywhere.
      cell = Cell{st.density, st.energy};
      have_default = true;
      continue;
    }
    bool inside = false;
    switch (st.geometry) {
      case tl::Geometry::kRectangle:
        inside = cx >= st.xmin && cx < st.xmax && cy >= st.ymin && cy < st.ymax;
        break;
      case tl::Geometry::kCircle: {
        const double ddx = cx - st.cx;
        const double ddy = cy - st.cy;
        inside = std::sqrt(ddx * ddx + ddy * ddy) <= st.radius;
        break;
      }
      case tl::Geometry::kPoint:
        inside = st.cx >= cx - 0.5 * dx_ && st.cx < cx + 0.5 * dx_ &&
                 st.cy >= cy - 0.5 * dy_ && st.cy < cy + 0.5 * dy_;
        break;
    }
    if (inside) cell = Cell{st.density, st.energy};
  }
  (void)have_default;  // state 1 presence is validated at parse time
  return cell;
}

double StateSampler::density_at(int i, int j) const { return sample(i, j).density; }
double StateSampler::energy_at(int i, int j) const { return sample(i, j).energy; }

}  // namespace tea
