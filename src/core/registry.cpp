#include "core/registry.hpp"

#include <memory>
#include <mutex>
#include <optional>

#include "common/error.hpp"
#include "core/backends/kokkos_backend.hpp"
#include "core/backends/manual_acc.hpp"
#include "core/backends/manual_cuda.hpp"
#include "core/backends/manual_host.hpp"
#include "core/backends/ops_backend.hpp"
#include "core/backends/raja_backend.hpp"
#include "machine/machine_model.hpp"
#include "minimpi/comm.hpp"
#include "simgpu/device.hpp"
#include "threading/thread_pool.hpp"

namespace tea {

std::vector<std::string> available_backends() {
  return {
      "serial",
      "manual-omp", "manual-mpi", "manual-hybrid", "manual-cuda",
      "manual-acc-cpu", "manual-acc-gpu",
      "ops-seq", "ops-omp", "ops-mpi", "ops-hybrid", "ops-tiled",
      "ops-cuda", "ops-acc",
      "kokkos-omp", "kokkos-cuda",
      "raja-omp", "raja-cuda",
  };
}

bool backend_is_distributed(const std::string& id) {
  return id == "manual-mpi" || id == "manual-hybrid" || id == "ops-mpi" ||
         id == "ops-hybrid" || id == "ops-tiled";
}

bool backend_is_gpu(const std::string& id) {
  return id == "manual-cuda" || id == "manual-acc-gpu" || id == "ops-cuda" ||
         id == "ops-acc" || id == "kokkos-cuda" || id == "raja-cuda";
}

bool backend_has_fused_operator_dot(const std::string& id) {
  // The distributed manual variants run the overlapped split exchange, whose
  // operator and dot are separate passes by construction — the fused flag is
  // a no-op there, so they are excluded to keep measurement keys canonical.
  return id == "serial" || id == "manual-omp";
}

std::unique_ptr<Backend> make_backend(const std::string& id,
                                      tlp::ThreadPool* pool,
                                      const RunOptions& opts) {
  if (backend_is_distributed(id)) {
    throw tl::Error("backend '" + id +
                    "' is distributed; use run_simulation for SPMD variants");
  }
  if (id == "serial") {
    return std::make_unique<ManualHostBackend>("serial", nullptr, nullptr);
  }
  if (id == "manual-omp") {
    return std::make_unique<ManualHostBackend>("manual-omp", pool, nullptr);
  }
  if (id == "manual-cuda") {
    simgpu::default_device().set_block_size(opts.gpu_block_x, opts.gpu_block_y);
    return std::make_unique<ManualCudaBackend>();
  }
  if (id == "manual-acc-cpu") {
    return std::make_unique<ManualAccBackend>(miniacc::Target::kHost);
  }
  if (id == "manual-acc-gpu") {
    simgpu::default_device().set_block_size(opts.gpu_block_x, opts.gpu_block_y);
    return std::make_unique<ManualAccBackend>(miniacc::Target::kDevice);
  }
  if (id == "ops-seq") {
    return std::make_unique<OpsBackend>("ops-seq", ops::ContextOptions{});
  }
  if (id == "ops-omp") {
    ops::ContextOptions o;
    o.use_pool = true;
    o.pool = pool;
    return std::make_unique<OpsBackend>("ops-omp", o);
  }
  if (id == "ops-cuda" || id == "ops-acc") {
    simgpu::default_device().set_block_size(opts.gpu_block_x, opts.gpu_block_y);
    ops::ContextOptions o;
    o.device = &simgpu::default_device();
    return std::make_unique<OpsBackend>(id, o);
  }
  if (id == "kokkos-omp") {
    return std::make_unique<KokkosBackend<kk::Threads>>("kokkos-omp");
  }
  if (id == "kokkos-cuda") {
    simgpu::default_device().set_block_size(opts.gpu_block_x, opts.gpu_block_y);
    return std::make_unique<KokkosBackend<kk::SimGPU>>("kokkos-cuda");
  }
  if (id == "raja-omp") {
    return std::make_unique<RajaBackend<raja::omp_parallel_for_exec>>(
        "raja-omp");
  }
  if (id == "raja-cuda") {
    simgpu::default_device().set_block_size(opts.gpu_block_x, opts.gpu_block_y);
    return std::make_unique<RajaBackend<raja::simgpu_exec>>("raja-cuda");
  }
  throw tl::Error("unknown backend id '" + id + "'");
}

namespace {

/// Capacity of a run-local simulated device, from the machine model (GiB
/// semantics, matching simgpu::Device's default).
std::size_t device_capacity_bytes() {
  const double gb = machine::device_machine().mem_capacity_gb;
  if (!(gb > 0.0)) return std::size_t(16) << 30;
  return static_cast<std::size_t>(gb) << 30;
}

/// Build a rank-local backend for the distributed variants.
std::unique_ptr<Backend> make_rank_backend(const std::string& id,
                                           minimpi::Comm& comm,
                                           tlp::ThreadPool* rank_pool,
                                           const RunOptions& opts) {
  if (id == "manual-mpi") {
    return std::make_unique<ManualHostBackend>("manual-mpi", nullptr, &comm);
  }
  if (id == "manual-hybrid") {
    return std::make_unique<ManualHostBackend>("manual-hybrid", rank_pool,
                                               &comm);
  }
  if (id == "ops-mpi") {
    ops::ContextOptions o;
    o.comm = &comm;
    return std::make_unique<OpsBackend>("ops-mpi", o);
  }
  if (id == "ops-hybrid") {
    ops::ContextOptions o;
    o.comm = &comm;
    o.use_pool = true;
    o.pool = rank_pool;
    return std::make_unique<OpsBackend>("ops-hybrid", o);
  }
  if (id == "ops-tiled") {
    ops::ContextOptions o;
    o.comm = &comm;
    o.tiled = true;
    o.tile = opts.tile;
    return std::make_unique<OpsBackend>("ops-tiled", o);
  }
  throw tl::Error("unknown distributed backend id '" + id + "'");
}

}  // namespace

RunResult run_simulation(const std::string& id, const tl::ProblemConfig& cfg,
                         const RunOptions& options) {
  const TeaDriver driver(cfg);

  if (!backend_is_distributed(id)) {
    std::unique_ptr<tlp::ThreadPool> own_pool;
    tlp::ThreadPool* pool = nullptr;
    const bool threaded =
        id == "manual-omp" || id == "ops-omp";
    if (threaded) {
      if (options.threads > 0) {
        own_pool = std::make_unique<tlp::ThreadPool>(options.threads);
        pool = own_pool.get();
      } else {
        pool = &tlp::global_pool();
      }
    }
    // GPU variants get a run-local device: concurrent run_simulation calls
    // (service shards, parallel tests) must not interleave allocations or
    // serialize on the process-global device's mutex.  The scope is declared
    // before the backend so the backend's destructor — view deallocations go
    // through default_device() — still sees the run's device.
    std::unique_ptr<simgpu::Device> own_device;
    std::optional<simgpu::DeviceScope> device_scope;
    if (backend_is_gpu(id)) {
      own_device = std::make_unique<simgpu::Device>(device_capacity_bytes());
      device_scope.emplace(own_device.get());
    }
    const auto backend = make_backend(id, pool, options);
    backend->set_fused_operator_dot(options.fuse_operator_dot);
    return driver.run(*backend);
  }

  // Distributed: one backend per rank, SPMD driver, rank 0's result wins.
  const int ranks = std::max(1, options.ranks);
  int per_rank_threads = options.hybrid_threads;
  if (per_rank_threads <= 0) {
    const int budget =
        options.threads > 0 ? options.threads : tlp::default_threads();
    per_rank_threads = std::max(1, budget / ranks);
  }
  const bool hybrid = id == "manual-hybrid" || id == "ops-hybrid";

  RunResult result;
  std::mutex result_mutex;
  minimpi::run_world(ranks, [&](minimpi::Comm& comm) {
    std::unique_ptr<tlp::ThreadPool> rank_pool;
    if (hybrid) {
      rank_pool = std::make_unique<tlp::ThreadPool>(per_rank_threads);
    }
    const auto backend =
        make_rank_backend(id, comm, rank_pool.get(), options);
    backend->set_fused_operator_dot(options.fuse_operator_dot);
    RunResult rank_result = driver.run(*backend);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(result_mutex);
      result = std::move(rank_result);
    }
  });
  return result;
}

}  // namespace tea
