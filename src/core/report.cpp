#include "core/report.hpp"

#include <fstream>
#include <iomanip>

#include "common/error.hpp"
#include "common/vtk.hpp"

namespace tea {

void write_report(const RunResult& result, const tl::ProblemConfig& cfg,
                  std::ostream& os) {
  os << "Tea (reproduction) report\n";
  os << "=========================\n\n";
  os << "backend            " << result.backend_id << "\n";
  os << "mesh               " << cfg.x_cells << " x " << cfg.y_cells << "\n";
  os << "domain             [" << cfg.xmin << "," << cfg.xmax << "] x ["
     << cfg.ymin << "," << cfg.ymax << "]\n";
  os << "solver             " << tl::to_string(cfg.solver)
     << " (eps " << cfg.eps << ", max " << cfg.max_iters << " iters)\n";
  os << "preconditioner     " << tl::to_string(cfg.preconditioner) << "\n";
  os << "coefficient        " << tl::to_string(cfg.coefficient) << "\n";
  os << "timestep           " << cfg.initial_timestep << " x "
     << cfg.end_step << " steps\n";
  os << "states             " << cfg.states.size() << "\n\n";

  os << " step        volume          mass            ie            temp"
     << "      iters  converged\n";
  os << std::scientific << std::setprecision(6);
  for (const StepResult& s : result.steps) {
    os << std::setw(5) << s.step << "  " << std::setw(13) << s.summary.vol
       << "  " << std::setw(13) << s.summary.mass << "  " << std::setw(13)
       << s.summary.ie << "  " << std::setw(13) << s.summary.temp << "  "
       << std::setw(8) << s.solve.iterations << "  "
       << (s.solve.converged ? "yes" : "NO") << "\n";
  }

  os << std::defaultfloat << "\n";
  os << "wall clock         " << result.wall_seconds << " s\n";
  os << "total iterations   " << result.total_iterations << "\n";
  os << "DRAM traffic       "
     << static_cast<double>(result.counters.total_bytes()) / 1e9 << " GB\n";
  os << "flops              "
     << static_cast<double>(result.counters.flops) / 1e9 << " Gflop\n";
  os << "kernel launches    " << result.counters.kernel_launches << "\n";
  os << "reductions         " << result.counters.reductions << "\n";
  os << "halo exchanges     " << result.counters.halo_exchanges << "\n";
  os << "messages           " << result.counters.messages << "\n";
  os << "working set        "
     << static_cast<double>(result.working_set_bytes) / 1e6 << " MB\n";
}

void write_report(const RunResult& result, const tl::ProblemConfig& cfg,
                  const std::string& path) {
  std::ofstream os(path);
  TL_REQUIRE(os.good(), "cannot open report file '" + path + "'");
  write_report(result, cfg, os);
}

void write_vtk_snapshot(Backend& backend, double dx, double dy,
                        const std::string& path) {
  const Backend::LocalExtent ext = backend.local_extent();
  TL_REQUIRE(ext.nx == ext.gnx && ext.ny == ext.gny,
             "VTK snapshots need a backend that owns the whole mesh");
  const std::size_t cells = static_cast<std::size_t>(ext.nx) * ext.ny;
  std::vector<double> density(cells), energy(cells), u(cells);
  backend.read_field(FieldId::kDensity, density);
  backend.read_field(FieldId::kEnergy0, energy);
  backend.read_field(FieldId::kU, u);
  tl::write_vtk(path, ext.nx, ext.ny, dx, dy,
                {{"density", density}, {"energy", energy}, {"temperature", u}});
}

}  // namespace tea
