#include "core/driver.hpp"

#include "common/timer.hpp"

namespace tea {

RunResult TeaDriver::run(Backend& backend) const {
  backend.setup(cfg_);

  RunResult result;
  result.backend_id = backend.id();

  const SolveOptions solve_options = SolveOptions::from(cfg_);
  const double dt = cfg_.initial_timestep;
  const double rx = dt / (cfg_.dx() * cfg_.dx());
  const double ry = dt / (cfg_.dy() * cfg_.dy());

  const machine::CounterScope counter_scope;
  const tl::StopWatch watch;

  for (int step = 1; step <= cfg_.end_step; ++step) {
    backend.set_rx_ry(rx, ry);
    backend.compute_coefficients(cfg_.coefficient);
    backend.init_u_u0();

    StepResult sr;
    sr.step = step;
    sr.dt = dt;
    sr.solve = solve(backend, cfg_.solver, solve_options);
    if (backend.counts_globally()) {
      machine::Instrumentation::global().add_solver_iterations(
          sr.solve.iterations);
    }

    backend.finalise();
    backend.copy_field(FieldId::kEnergy1, FieldId::kEnergy0);
    sr.summary = backend.field_summary();

    result.total_iterations += sr.solve.iterations;
    result.steps.push_back(sr);
  }

  result.wall_seconds = watch.seconds();
  result.counters = counter_scope.delta();
  result.final_summary = result.steps.back().summary;
  result.working_set_bytes = backend.working_set_bytes();
  return result;
}

}  // namespace tea
