#include "core/driver.hpp"

#include "common/timer.hpp"

namespace tea {

RunResult TeaDriver::run(Backend& backend) const {
  backend.setup(cfg_);

  RunResult result;
  result.backend_id = backend.id();

  const SolveOptions solve_options = SolveOptions::from(cfg_);
  const double dt = cfg_.initial_timestep;
  const double rx = dt / (cfg_.dx() * cfg_.dx());
  const double ry = dt / (cfg_.dy() * cfg_.dy());

  // Deterministic counter window: every rank has finished setup before the
  // scope opens (kReady), no rank charges before rank 0's scope exists (kGo),
  // and every rank's final charge precedes the close (kDone).  Without the
  // fences, rank 0's delta over the process-global counters would race with
  // sibling ranks still in setup or still forwarding the final broadcast.
  backend.counter_fence(CounterFence::kReady);
  const machine::CounterScope counter_scope;
  const tl::StopWatch watch;
  backend.counter_fence(CounterFence::kGo);

  for (int step = 1; step <= cfg_.end_step; ++step) {
    backend.set_rx_ry(rx, ry);
    backend.compute_coefficients(cfg_.coefficient);
    backend.init_u_u0();

    StepResult sr;
    sr.step = step;
    sr.dt = dt;
    sr.solve = solve(backend, cfg_.solver, solve_options);
    if (backend.counts_globally()) {
      machine::Instrumentation::global().add_solver_iterations(
          sr.solve.iterations);
    }

    backend.finalise();
    backend.copy_field(FieldId::kEnergy1, FieldId::kEnergy0);
    sr.summary = backend.field_summary();

    result.total_iterations += sr.solve.iterations;
    result.steps.push_back(sr);
  }

  backend.counter_fence(CounterFence::kDone);
  result.wall_seconds = watch.seconds();
  result.counters = counter_scope.delta();
  result.final_summary = result.steps.back().summary;
  result.working_set_bytes = backend.working_set_bytes();
  return result;
}

}  // namespace tea
