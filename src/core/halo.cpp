#include "core/halo.hpp"

#include "common/error.hpp"
#include "core/backends/ref_kernels.hpp"
#include "machine/instrumentation.hpp"

namespace tea {

namespace {
// Tags name the direction of travel; a receive matches the neighbour's send
// towards this rank.  Per-(source, tag) FIFO matching keeps multi-field
// exchange rounds ordered.
constexpr minimpi::Tag kTagToLeft = 4001;
constexpr minimpi::Tag kTagToRight = 4002;
constexpr minimpi::Tag kTagToDown = 4003;
constexpr minimpi::Tag kTagToUp = 4004;
// Counter-window fence tokens (tea::counter_fence).  At most one token per
// (pair, direction) is ever in flight — rank 0 drains a phase completely
// before any rank can enter the next — so one tag serves all three phases.
constexpr minimpi::Tag kTagFence = 4005;

enum Direction { kLeft = 0, kRight = 1, kDown = 2, kUp = 3 };
}  // namespace

HaloExchange::HaloExchange(CellView f, const PartitionGeom& geom,
                           minimpi::Comm* comm, const minimpi::Cart2D* cart,
                           int depth)
    : f_(f), geom_(geom), comm_(comm), cart_(cart), depth_(depth) {
  TL_REQUIRE(depth <= geom.halo, "exchange depth exceeds halo depth");
  if (comm_ != nullptr) {
    TL_REQUIRE(cart_ != nullptr, "distributed exchange needs a topology");
  }
}

void HaloExchange::begin() {
  TL_REQUIRE(!begun_, "HaloExchange::begin called twice");
  begun_ = true;
  if (comm_ == nullptr) return;

  const int nx = geom_.nx;
  const int ny = geom_.ny;
  const std::size_t x_msg = static_cast<std::size_t>(depth_) * ny;
  const std::size_t y_msg = static_cast<std::size_t>(depth_) * nx;
  const int nbr[4] = {cart_->left(), cart_->right(), cart_->down(),
                      cart_->up()};
  const minimpi::Tag recv_tag[4] = {kTagToRight, kTagToLeft, kTagToUp,
                                    kTagToDown};
  const minimpi::Tag send_tag[4] = {kTagToLeft, kTagToRight, kTagToDown,
                                    kTagToUp};

  // Post all four receives first (kProcNull receives complete empty), then
  // pack and eagerly send the boundary strips, so by the time finish() runs
  // every neighbour's data is likely already queued.
  for (int d = 0; d < 4; ++d) {
    recv_[d].resize(d < 2 ? x_msg : y_msg);
    reqs_[d] = comm_->irecv(tl::span<double>(recv_[d]), nbr[d], recv_tag[d]);
  }

  const int col0[2] = {0, nx - depth_};   // strips sent left / right
  for (int d = kLeft; d <= kRight; ++d) {
    if (nbr[d] == minimpi::kProcNull) continue;
    send_[d].resize(x_msg);
    for (int j = 0; j < ny; ++j) {
      for (int k = 0; k < depth_; ++k) {
        send_[d][static_cast<std::size_t>(j) * depth_ + k] = f_(col0[d] + k, j);
      }
    }
    (void)comm_->isend(tl::span<const double>(send_[d]), nbr[d], send_tag[d]);
  }
  const int row0[2] = {0, ny - depth_};   // strips sent down / up
  for (int d = kDown; d <= kUp; ++d) {
    if (nbr[d] == minimpi::kProcNull) continue;
    send_[d].resize(y_msg);
    for (int k = 0; k < depth_; ++k) {
      for (int i = 0; i < nx; ++i) {
        send_[d][static_cast<std::size_t>(k) * nx + i] = f_(i, row0[d - 2] + k);
      }
    }
    (void)comm_->isend(tl::span<const double>(send_[d]), nbr[d], send_tag[d]);
  }
}

void HaloExchange::finish() {
  TL_REQUIRE(begun_, "HaloExchange::finish before begin");
  const int nx = geom_.nx;
  const int ny = geom_.ny;

  if (comm_ != nullptr) {
    comm_->waitall(tl::span<minimpi::Request>(reqs_, 4));

    // Unpack: x halos from the side neighbours, y halos from above/below.
    if (cart_->left() != minimpi::kProcNull) {
      for (int j = 0; j < ny; ++j) {
        for (int k = 0; k < depth_; ++k) {
          f_(-depth_ + k, j) =
              recv_[kLeft][static_cast<std::size_t>(j) * depth_ + k];
        }
      }
    }
    if (cart_->right() != minimpi::kProcNull) {
      for (int j = 0; j < ny; ++j) {
        for (int k = 0; k < depth_; ++k) {
          f_(nx + k, j) =
              recv_[kRight][static_cast<std::size_t>(j) * depth_ + k];
        }
      }
    }
    if (cart_->down() != minimpi::kProcNull) {
      for (int k = 0; k < depth_; ++k) {
        for (int i = 0; i < nx; ++i) {
          f_(i, -depth_ + k) =
              recv_[kDown][static_cast<std::size_t>(k) * nx + i];
        }
      }
    }
    if (cart_->up() != minimpi::kProcNull) {
      for (int k = 0; k < depth_; ++k) {
        for (int i = 0; i < nx; ++i) {
          f_(i, ny + k) = recv_[kUp][static_cast<std::size_t>(k) * nx + i];
        }
      }
    }

    // Charge only the messages actually exchanged: a null neighbour moves no
    // bytes, so domain-edge ranks pay for fewer strips than interior ranks.
    // Every existing neighbour contributes one sent and one received strip.
    std::int64_t moved = 0;
    const std::size_t x_msg = static_cast<std::size_t>(depth_) * ny;
    const std::size_t y_msg = static_cast<std::size_t>(depth_) * nx;
    if (cart_->left() != minimpi::kProcNull) moved += 2 * x_msg;
    if (cart_->right() != minimpi::kProcNull) moved += 2 * x_msg;
    if (cart_->down() != minimpi::kProcNull) moved += 2 * y_msg;
    if (cart_->up() != minimpi::kProcNull) moved += 2 * y_msg;
    const std::int64_t bytes = moved * static_cast<std::int64_t>(sizeof(double));
    machine::Instrumentation::global().add_traffic(bytes, bytes, 0);
  }

  const bool xlo = cart_ == nullptr || cart_->left() == minimpi::kProcNull;
  const bool xhi = cart_ == nullptr || cart_->right() == minimpi::kProcNull;
  const bool ylo = cart_ == nullptr || cart_->down() == minimpi::kProcNull;
  const bool yhi = cart_ == nullptr || cart_->up() == minimpi::kProcNull;
  ref::reflect_halo(f_, nx, ny, depth_, xlo, xhi, ylo, yhi);

  if (comm_ == nullptr || comm_->rank() == 0) {
    machine::Instrumentation::global().add_halo_exchange();
  }
}

void exchange_and_reflect(CellView f, const PartitionGeom& geom,
                          minimpi::Comm* comm, const minimpi::Cart2D* cart,
                          int depth) {
  HaloExchange hx(f, geom, comm, cart, depth);
  hx.begin();
  hx.finish();
}

void counter_fence(minimpi::Comm& comm, CounterFence phase) {
  const int n = comm.size();
  if (n <= 1) return;
  const char token = 0;
  if (phase == CounterFence::kGo) {
    if (comm.rank() == 0) {
      for (int r = 1; r < n; ++r) comm.send_value(token, r, kTagFence);
    } else {
      (void)comm.recv_value<char>(0, kTagFence);
    }
    return;
  }
  // kReady / kDone fan in: a rank's token is sequenced after everything it
  // charged in the phase, and rank 0 cannot proceed until it holds them all.
  if (comm.rank() == 0) {
    for (int r = 1; r < n; ++r) (void)comm.recv_value<char>(r, kTagFence);
  } else {
    comm.send_value(token, 0, kTagFence);
  }
}

}  // namespace tea
