#include "core/halo.hpp"

#include <vector>

#include "common/error.hpp"
#include "core/backends/ref_kernels.hpp"
#include "machine/instrumentation.hpp"

namespace tea {

namespace {
constexpr minimpi::Tag kTagToLeft = 4001;
constexpr minimpi::Tag kTagToRight = 4002;
constexpr minimpi::Tag kTagToDown = 4003;
constexpr minimpi::Tag kTagToUp = 4004;
}  // namespace

void exchange_and_reflect(CellView f, const PartitionGeom& geom,
                          minimpi::Comm* comm, const minimpi::Cart2D* cart,
                          int depth) {
  TL_REQUIRE(depth <= geom.halo, "exchange depth exceeds halo depth");
  const int nx = geom.nx;
  const int ny = geom.ny;

  if (comm != nullptr) {
    TL_REQUIRE(cart != nullptr, "distributed exchange needs a topology");
    const std::size_t x_msg = static_cast<std::size_t>(depth) * ny;
    std::vector<double> buf(x_msg);
    std::vector<double> in(x_msg);

    // X phase: boundary interior columns <-> side halos.
    if (cart->left() != minimpi::kProcNull) {
      for (int j = 0; j < ny; ++j) {
        for (int k = 0; k < depth; ++k) {
          buf[static_cast<std::size_t>(j) * depth + k] = f(k, j);
        }
      }
      comm->send(tl::span<const double>(buf), cart->left(), kTagToLeft);
    }
    if (cart->right() != minimpi::kProcNull) {
      comm->recv(tl::span<double>(in), cart->right(), kTagToLeft);
      for (int j = 0; j < ny; ++j) {
        for (int k = 0; k < depth; ++k) {
          f(nx + k, j) = in[static_cast<std::size_t>(j) * depth + k];
        }
      }
      for (int j = 0; j < ny; ++j) {
        for (int k = 0; k < depth; ++k) {
          buf[static_cast<std::size_t>(j) * depth + k] = f(nx - depth + k, j);
        }
      }
      comm->send(tl::span<const double>(buf), cart->right(), kTagToRight);
    }
    if (cart->left() != minimpi::kProcNull) {
      comm->recv(tl::span<double>(in), cart->left(), kTagToRight);
      for (int j = 0; j < ny; ++j) {
        for (int k = 0; k < depth; ++k) {
          f(-depth + k, j) = in[static_cast<std::size_t>(j) * depth + k];
        }
      }
    }

    // Y phase, rows spanning the x halo so corners propagate.
    const int row_lo = -depth;
    const int row_w = nx + 2 * depth;
    const std::size_t y_msg = static_cast<std::size_t>(depth) * row_w;
    buf.resize(y_msg);
    in.resize(y_msg);
    if (cart->down() != minimpi::kProcNull) {
      for (int k = 0; k < depth; ++k) {
        for (int i = 0; i < row_w; ++i) {
          buf[static_cast<std::size_t>(k) * row_w + i] = f(row_lo + i, k);
        }
      }
      comm->send(tl::span<const double>(buf), cart->down(), kTagToDown);
    }
    if (cart->up() != minimpi::kProcNull) {
      comm->recv(tl::span<double>(in), cart->up(), kTagToDown);
      for (int k = 0; k < depth; ++k) {
        for (int i = 0; i < row_w; ++i) {
          f(row_lo + i, ny + k) = in[static_cast<std::size_t>(k) * row_w + i];
        }
      }
      for (int k = 0; k < depth; ++k) {
        for (int i = 0; i < row_w; ++i) {
          buf[static_cast<std::size_t>(k) * row_w + i] =
              f(row_lo + i, ny - depth + k);
        }
      }
      comm->send(tl::span<const double>(buf), cart->up(), kTagToUp);
    }
    if (cart->down() != minimpi::kProcNull) {
      comm->recv(tl::span<double>(in), cart->down(), kTagToUp);
      for (int k = 0; k < depth; ++k) {
        for (int i = 0; i < row_w; ++i) {
          f(row_lo + i, -depth + k) = in[static_cast<std::size_t>(k) * row_w + i];
        }
      }
    }

    const std::int64_t bytes =
        static_cast<std::int64_t>(2 * (x_msg + y_msg)) * sizeof(double);
    machine::Instrumentation::global().add_traffic(bytes, bytes, 0);
  }

  const bool xlo = cart == nullptr || cart->left() == minimpi::kProcNull;
  const bool xhi = cart == nullptr || cart->right() == minimpi::kProcNull;
  const bool ylo = cart == nullptr || cart->down() == minimpi::kProcNull;
  const bool yhi = cart == nullptr || cart->up() == minimpi::kProcNull;
  ref::reflect_halo(f, nx, ny, depth, xlo, xhi, ylo, yhi);

  if (comm == nullptr || comm->rank() == 0) {
    machine::Instrumentation::global().add_halo_exchange();
  }
}

}  // namespace tea
