// problem.hpp — problem geometry and the deterministic material sampler that
// turns a deck's `state` lines into per-cell density/energy.  Every backend,
// regardless of decomposition, queries the sampler with *global* cell indices
// so initial conditions are bit-identical across all seventeen variants.
#pragma once

#include "common/config.hpp"

namespace tea {

/// Samples the material state of a global cell (i, j) in [0,x_cells) x
/// [0,y_cells).  States are applied in order; later states overwrite earlier
/// ones where their geometry covers the cell centre, matching TeaLeaf's
/// set_chunk_state.
class StateSampler {
public:
  explicit StateSampler(const tl::ProblemConfig& cfg);

  double density_at(int i, int j) const;
  double energy_at(int i, int j) const;

  double dx() const { return dx_; }
  double dy() const { return dy_; }
  /// Cell volume (uniform mesh).
  double cell_volume() const { return dx_ * dy_; }

private:
  struct Cell {
    double density;
    double energy;
  };
  Cell sample(int i, int j) const;

  const tl::ProblemConfig& cfg_;
  double dx_;
  double dy_;
};

}  // namespace tea
