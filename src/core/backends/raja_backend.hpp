// raja_backend.hpp — TeaLeaf through miniraja, following the RAJA port's
// structure: kernels are forall<policy> lambdas over a flattened index space,
// reductions are portable ReduceSum objects, and the same loop bodies serve
// the OpenMP and CUDA policies.
//
//   raja-omp  : RajaBackend<raja::omp_parallel_for_exec>  (host arrays)
//   raja-cuda : RajaBackend<raja::simgpu_exec>            (device arrays)
#pragma once

#include <array>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "core/backends/ref_kernels.hpp"
#include "core/problem.hpp"
#include "machine/instrumentation.hpp"
#include "miniraja/miniraja.hpp"
#include "simgpu/device.hpp"

namespace tea {

namespace detail {

/// Field storage trait: host-aligned slabs for CPU policies, device memory
/// for the GPU policy (the original uses CUDA-managed allocations; explicit
/// device buffers preserve the residency without the paging magic).
template <typename Policy>
struct RajaStorage {
  static constexpr bool on_device = false;
  static double* allocate(std::size_t count) {
    auto* p = static_cast<double*>(
        ::operator new(count * sizeof(double), std::align_val_t(64)));
    std::memset(static_cast<void*>(p), 0, count * sizeof(double));
    return p;
  }
  static void deallocate(double* p) {
    ::operator delete(p, std::align_val_t(64));
  }
  static void fill(double* dst, const std::vector<double>& src) {
    std::memcpy(dst, src.data(), src.size() * sizeof(double));
  }
};

template <>
struct RajaStorage<raja::simgpu_exec> {
  static constexpr bool on_device = true;
  static double* allocate(std::size_t count) {
    auto* p = static_cast<double*>(
        simgpu::default_device().allocate(count * sizeof(double)));
    std::vector<double> zeros(count, 0.0);
    simgpu::default_device().memcpy_h2d(p, zeros.data(),
                                        count * sizeof(double));
    return p;
  }
  static void deallocate(double* p) { simgpu::default_device().deallocate(p); }
  static void fill(double* dst, const std::vector<double>& src) {
    simgpu::default_device().memcpy_h2d(dst, src.data(),
                                        src.size() * sizeof(double));
  }
};

}  // namespace detail

template <typename Policy>
class RajaBackend final : public Backend {
  using Storage = detail::RajaStorage<Policy>;

public:
  explicit RajaBackend(std::string id) : id_(std::move(id)) {}

  ~RajaBackend() override {
    for (double* f : fields_) {
      if (f != nullptr) Storage::deallocate(f);
    }
  }

  std::string id() const override { return id_; }

  void setup(const tl::ProblemConfig& cfg) override {
    nx_ = cfg.x_cells;
    ny_ = cfg.y_cells;
    halo_ = cfg.halo_depth;
    pnx_ = nx_ + 2 * halo_;
    pny_ = ny_ + 2 * halo_;
    const std::size_t padded = static_cast<std::size_t>(pnx_) * pny_;
    for (auto& f : fields_) f = Storage::allocate(padded);

    const StateSampler sampler(cfg);
    cell_volume_ = sampler.cell_volume();
    std::vector<double> stage(padded, 0.0);
    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        stage[static_cast<std::size_t>(j + halo_) * pnx_ + (i + halo_)] =
            sampler.density_at(i, j);
      }
    }
    Storage::fill(field(FieldId::kDensity), stage);
    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        stage[static_cast<std::size_t>(j + halo_) * pnx_ + (i + halo_)] =
            sampler.energy_at(i, j);
      }
    }
    Storage::fill(field(FieldId::kEnergy0), stage);
    Storage::fill(field(FieldId::kEnergy1), stage);

    update_halo({FieldId::kDensity, FieldId::kEnergy0, FieldId::kEnergy1},
                halo_);
  }

  void compute_coefficients(tl::CoefficientKind kind) override {
    CellView density = cv(FieldId::kDensity);
    CellView kx = cv(FieldId::kKx);
    CellView ky = cv(FieldId::kKy);
    const int nx = nx_;
    const int ny = ny_;
    raja::kernel_2d<Policy>(
        raja::RangeSegment(0, ny + 1), raja::RangeSegment(0, nx + 1),
        [=](long j, long i) {
          const double wc = ref::conduction(density(i, j), kind);
          if (j < ny) {
            const double wl = ref::conduction(density(i - 1, j), kind);
            kx(i, j) = (wl + wc) / (2.0 * wl * wc);
          }
          if (i < nx) {
            const double wd = ref::conduction(density(i, j - 1), kind);
            ky(i, j) = (wd + wc) / (2.0 * wd * wc);
          }
        });
    charge(ref::kCostCoefficients);
  }

  void init_u_u0() override {
    CellView density = cv(FieldId::kDensity);
    CellView energy = cv(FieldId::kEnergy1);
    CellView u = cv(FieldId::kU);
    CellView u0 = cv(FieldId::kU0);
    const int nx = nx_;
    raja::forall<Policy>(interior(), [=](long idx) {
      const int i = static_cast<int>(idx % nx);
      const int j = static_cast<int>(idx / nx);
      const double v = energy(i, j) * density(i, j);
      u(i, j) = v;
      u0(i, j) = v;
    });
    charge(ref::kCostInitU);
  }

  void apply_operator(FieldId in, FieldId out) override {
    CellView vin = cv(in);
    CellView vout = cv(out);
    CellView kx = cv(FieldId::kKx);
    CellView ky = cv(FieldId::kKy);
    const double rx = rx_, ry = ry_;
    const int nx = nx_;
    raja::forall<Policy>(interior(), [=](long idx) {
      const int i = static_cast<int>(idx % nx);
      const int j = static_cast<int>(idx / nx);
      vout(i, j) = ref::apply_operator_at(
          ConstCellView{vin.origin, vin.stride},
          ConstCellView{kx.origin, kx.stride},
          ConstCellView{ky.origin, ky.stride}, rx, ry, i, j);
    });
    charge(ref::kCostOperator);
  }

  void compute_residual() override {
    CellView u = cv(FieldId::kU);
    CellView u0 = cv(FieldId::kU0);
    CellView r = cv(FieldId::kR);
    CellView kx = cv(FieldId::kKx);
    CellView ky = cv(FieldId::kKy);
    const double rx = rx_, ry = ry_;
    const int nx = nx_;
    raja::forall<Policy>(interior(), [=](long idx) {
      const int i = static_cast<int>(idx % nx);
      const int j = static_cast<int>(idx / nx);
      const double au = ref::apply_operator_at(
          ConstCellView{u.origin, u.stride}, ConstCellView{kx.origin, kx.stride},
          ConstCellView{ky.origin, ky.stride}, rx, ry, i, j);
      r(i, j) = u0(i, j) - au;
    });
    charge(ref::kCostResidual);
  }

  void copy_field(FieldId src, FieldId dst) override {
    CellView s = cv(src);
    CellView d = cv(dst);
    const int nx = nx_;
    raja::forall<Policy>(interior(), [=](long idx) {
      const int i = static_cast<int>(idx % nx);
      const int j = static_cast<int>(idx / nx);
      d(i, j) = s(i, j);
    });
    charge(ref::kCostCopy);
  }

  void scale_copy(FieldId dst, FieldId src, double sc) override {
    CellView s = cv(src);
    CellView d = cv(dst);
    const int nx = nx_;
    raja::forall<Policy>(interior(), [=](long idx) {
      const int i = static_cast<int>(idx % nx);
      const int j = static_cast<int>(idx / nx);
      d(i, j) = sc * s(i, j);
    });
    charge(ref::kCostScaleCopy);
  }

  double dot(FieldId a, FieldId b) override {
    CellView va = cv(a);
    CellView vb = cv(b);
    const int nx = nx_;
    raja::ReduceSum<double> sum(0.0);
    raja::forall<Policy>(interior(), [=](long idx) {
      const int i = static_cast<int>(idx % nx);
      const int j = static_cast<int>(idx / nx);
      sum += va(i, j) * vb(i, j);
    });
    charge(ref::kCostDot);
    charge_reduction();
    return sum.get();
  }

  void axpy(FieldId y, double a, FieldId x) override {
    CellView vy = cv(y);
    CellView vx = cv(x);
    const int nx = nx_;
    raja::forall<Policy>(interior(), [=](long idx) {
      const int i = static_cast<int>(idx % nx);
      const int j = static_cast<int>(idx / nx);
      vy(i, j) += a * vx(i, j);
    });
    charge(ref::kCostAxpy);
  }

  void zaxpy(FieldId p, double beta, FieldId z) override {
    CellView vp = cv(p);
    CellView vz = cv(z);
    const int nx = nx_;
    raja::forall<Policy>(interior(), [=](long idx) {
      const int i = static_cast<int>(idx % nx);
      const int j = static_cast<int>(idx / nx);
      vp(i, j) = vz(i, j) + beta * vp(i, j);
    });
    charge(ref::kCostZaxpy);
  }

  void precondition(FieldId dst, FieldId src) override {
    CellView d = cv(dst);
    CellView s = cv(src);
    CellView kx = cv(FieldId::kKx);
    CellView ky = cv(FieldId::kKy);
    const double rx = rx_, ry = ry_;
    const int nx = nx_;
    raja::forall<Policy>(interior(), [=](long idx) {
      const int i = static_cast<int>(idx % nx);
      const int j = static_cast<int>(idx / nx);
      const double diag = 1.0 + rx * (kx(i + 1, j) + kx(i, j)) +
                          ry * (ky(i, j + 1) + ky(i, j));
      d(i, j) = s(i, j) / diag;
    });
    charge(ref::kCostOperator);
  }

  void smooth_update(FieldId acc, FieldId res, FieldId w, FieldId sd,
                     double alpha, double beta) override {
    CellView vacc = cv(acc);
    CellView vres = cv(res);
    CellView vw = cv(w);
    CellView vsd = cv(sd);
    const int nx = nx_;
    raja::forall<Policy>(interior(), [=](long idx) {
      const int i = static_cast<int>(idx % nx);
      const int j = static_cast<int>(idx / nx);
      vacc(i, j) += vsd(i, j);
      vres(i, j) -= vw(i, j);
      vsd(i, j) = alpha * vsd(i, j) + beta * vres(i, j);
    });
    charge(ref::kCostSmooth);
  }

  double jacobi_iterate() override {
    // Sweep u -> w (halo of u freshly updated by the solver), then commit.
    CellView uold = cv(FieldId::kU);
    CellView u0 = cv(FieldId::kU0);
    CellView w = cv(FieldId::kW);
    CellView kx = cv(FieldId::kKx);
    CellView ky = cv(FieldId::kKy);
    const double rx = rx_, ry = ry_;
    const int nx = nx_;
    raja::ReduceSum<double> err(0.0);
    raja::forall<Policy>(interior(), [=](long idx) {
      const int i = static_cast<int>(idx % nx);
      const int j = static_cast<int>(idx / nx);
      const double diag = 1.0 + rx * (kx(i + 1, j) + kx(i, j)) +
                          ry * (ky(i, j + 1) + ky(i, j));
      const double off =
          rx * (kx(i + 1, j) * uold(i + 1, j) + kx(i, j) * uold(i - 1, j)) +
          ry * (ky(i, j + 1) * uold(i, j + 1) + ky(i, j) * uold(i, j - 1));
      const double unew = (u0(i, j) + off) / diag;
      w(i, j) = unew;
      err += std::fabs(unew - uold(i, j));
    });
    copy_field(FieldId::kW, FieldId::kU);
    charge(ref::kCostJacobi);
    charge_reduction();
    return err.get();
  }

  FieldSummary field_summary() override {
    CellView density = cv(FieldId::kDensity);
    CellView energy = cv(FieldId::kEnergy0);
    CellView u = cv(FieldId::kU);
    const int nx = nx_;
    const double vol_cell = cell_volume_;
    raja::ReduceSum<double> mass(0.0), ie(0.0), temp(0.0);
    raja::forall<Policy>(interior(), [=](long idx) {
      const int i = static_cast<int>(idx % nx);
      const int j = static_cast<int>(idx / nx);
      mass += density(i, j) * vol_cell;
      ie += density(i, j) * energy(i, j) * vol_cell;
      temp += u(i, j) * vol_cell;
    });
    charge(ref::kCostSummary);
    charge_reduction();
    FieldSummary s;
    s.vol = vol_cell * static_cast<double>(static_cast<long>(nx_) * ny_);
    s.mass = mass.get();
    s.ie = ie.get();
    s.temp = temp.get();
    return s;
  }

  void update_halo(std::initializer_list<FieldId> fields, int depth) override {
    const int nx = nx_;
    const int ny = ny_;
    for (const FieldId fid : fields) {
      CellView f = cv(fid);
      raja::kernel_2d<Policy>(raja::RangeSegment(0, ny),
                              raja::RangeSegment(0, depth), [=](long j, long k) {
                                f(-1 - static_cast<int>(k), static_cast<int>(j)) =
                                    f(static_cast<int>(k), static_cast<int>(j));
                                f(nx + static_cast<int>(k), static_cast<int>(j)) =
                                    f(nx - 1 - static_cast<int>(k),
                                      static_cast<int>(j));
                              });
      raja::kernel_2d<Policy>(
          raja::RangeSegment(0, depth),
          raja::RangeSegment(0, nx + 2 * depth), [=](long k, long ii) {
            const int i = static_cast<int>(ii) - depth;
            f(i, -1 - static_cast<int>(k)) = f(i, static_cast<int>(k));
            f(i, ny + static_cast<int>(k)) = f(i, ny - 1 - static_cast<int>(k));
          });
    }
    machine::Instrumentation::global().add_halo_exchange(
        static_cast<std::int64_t>(fields.size()));
  }

  void finalise() override {
    CellView u = cv(FieldId::kU);
    CellView density = cv(FieldId::kDensity);
    CellView energy = cv(FieldId::kEnergy1);
    const int nx = nx_;
    raja::forall<Policy>(interior(), [=](long idx) {
      const int i = static_cast<int>(idx % nx);
      const int j = static_cast<int>(idx / nx);
      energy(i, j) = u(i, j) / density(i, j);
    });
    charge(ref::kCostFinalise);
  }

  std::int64_t working_set_bytes() const override {
    return static_cast<std::int64_t>(kNumFields) * pnx_ * pny_ * 8;
  }

  LocalExtent local_extent() const override {
    return LocalExtent{0, 0, nx_, ny_, nx_, ny_};
  }

  void read_field(FieldId f, tl::span<double> out) override {
    const std::size_t padded = static_cast<std::size_t>(pnx_) * pny_;
    std::vector<double> stage(padded);
    if constexpr (Storage::on_device) {
      simgpu::default_device().memcpy_d2h(stage.data(), field(f),
                                          padded * sizeof(double));
    } else {
      std::memcpy(stage.data(), field(f), padded * sizeof(double));
    }
    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        out[static_cast<std::size_t>(j) * nx_ + i] =
            stage[static_cast<std::size_t>(j + halo_) * pnx_ + (i + halo_)];
      }
    }
  }

  /// Host copy of a field value at interior (i, j) — test hook.
  double value_at(FieldId f, int i, int j) const {
    const std::size_t idx =
        static_cast<std::size_t>(j + halo_) * pnx_ + (i + halo_);
    if constexpr (Storage::on_device) {
      double v = 0.0;
      simgpu::default_device().memcpy_d2h(
          &v, field(f) + idx, sizeof(double));
      return v;
    } else {
      return field(f)[idx];
    }
  }

private:
  double* field(FieldId f) const { return fields_[static_cast<std::size_t>(f)]; }

  CellView cv(FieldId f) const {
    return CellView{field(f) +
                        static_cast<std::ptrdiff_t>(halo_) * pnx_ + halo_,
                    pnx_};
  }

  raja::RangeSegment interior() const {
    return raja::RangeSegment(0, static_cast<long>(nx_) * ny_);
  }

  void charge(const ref::KernelCost& c) const {
    const std::int64_t cells = static_cast<std::int64_t>(nx_) * ny_;
    machine::Instrumentation::global().add_traffic(
        cells * 8 * c.reads, cells * 8 * c.writes, cells * c.flops);
  }

  void charge_reduction() const {
    machine::Instrumentation::global().add_reduction();
    if constexpr (Storage::on_device) {
      // A device-policy reducer reads its result back over PCIe.
      machine::Instrumentation::global().add_d2h(8);
    }
  }

  std::string id_;
  int nx_ = 0, ny_ = 0, halo_ = 2, pnx_ = 0, pny_ = 0;
  double cell_volume_ = 0.0;
  std::array<double*, kNumFields> fields_{};
};

}  // namespace tea
