// ref_kernels.hpp — the serial reference implementation of every TeaLeaf
// kernel, over CellViews.  This is the golden math: the serial backend uses
// these directly, the tests compare every other backend against them, and
// the per-kernel flop/byte footprints the instrumentation charges are
// documented here next to the loops that incur them.
//
// Operator (matrix-free 5-point, SPD):
//   (A u)(i,j) = (1 + rx (Kx(i+1,j)+Kx(i,j)) + ry (Ky(i,j+1)+Ky(i,j))) u(i,j)
//              -  rx (Kx(i+1,j) u(i+1,j) + Kx(i,j) u(i-1,j))
//              -  ry (Ky(i,j+1) u(i,j+1) + Ky(i,j) u(i,j-1))
// with rx = dt/dx^2, ry = dt/dy^2.  Kx(i,j) is the face between cells
// (i-1,j) and (i,j).  Reflective halos make the boundary fluxes vanish
// (Neumann), so A is symmetric positive definite.
//
// Loop structure: every kernel walks contiguous rows through TL_RESTRICT
// row pointers, with a branch-free unit-stride inner loop, so the compiler
// vectorizes without runtime aliasing checks.  Per-element arithmetic is
// spelled exactly as the operator definition above — vectorization must not
// change results bitwise.  Reductions (dot, jacobi error) use an explicit
// four-lane partial-accumulator scheme per row; that fixed association order
// is the repo-wide contract for deterministic reductions (the golden suite
// freezes numbers produced through it), independent of the vector width the
// target machine happens to have.
#pragma once

#include <cmath>

#include "common/config.hpp"
#include "common/simd.hpp"
#include "core/backends/field_store.hpp"
#include "core/field.hpp"

namespace tea::ref {

/// Per-kernel cost table (per interior cell): reads, writes, flops.  Shared
/// by every backend's traffic charging so variants are compared on the same
/// footprint accounting a DRAM-side profiler would use.
struct KernelCost {
  int reads;
  int writes;
  int flops;
};
inline constexpr KernelCost kCostCoefficients{1, 2, 6};
inline constexpr KernelCost kCostInitU{2, 2, 1};
inline constexpr KernelCost kCostOperator{4, 1, 13};  // u, kx, ky (+reuse), w
inline constexpr KernelCost kCostResidual{5, 1, 14};
inline constexpr KernelCost kCostCopy{1, 1, 0};
inline constexpr KernelCost kCostScaleCopy{1, 1, 1};
inline constexpr KernelCost kCostDot{2, 0, 2};
inline constexpr KernelCost kCostAxpy{2, 1, 2};
inline constexpr KernelCost kCostZaxpy{2, 1, 2};
inline constexpr KernelCost kCostSmooth{4, 3, 6};
inline constexpr KernelCost kCostJacobi{7, 2, 16};
inline constexpr KernelCost kCostSummary{3, 0, 8};
inline constexpr KernelCost kCostFinalise{2, 1, 1};
// Fused w = A p; p.w: the operator's footprint plus the dot's two flops —
// the dot re-reads nothing from memory (p is already streaming, w is in
// registers), which is exactly why the solvers fuse it.
inline constexpr KernelCost kCostOperatorDot{4, 1, 15};

/// Row pointer of a view: `row(v, j)[i]` == `v(i, j)`.  The TL_RESTRICT on
/// the callers' locals is what lets the inner loops vectorize cleanly.
inline double* row(const CellView& v, int j) {
  return v.origin + static_cast<std::ptrdiff_t>(j) * v.stride;
}
inline const double* row(const ConstCellView& v, int j) {
  return v.origin + static_cast<std::ptrdiff_t>(j) * v.stride;
}

/// Deterministic row reduction: four explicit partial accumulators over the
/// unit-stride row, folded as (a0+a2)+(a1+a3), remainder appended serially.
/// Every dot-like reduction in the repo sums each row through this shape.
template <typename ElemFn>
inline double row_reduce4(int n, const ElemFn& elem) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 += elem(i);
    a1 += elem(i + 1);
    a2 += elem(i + 2);
    a3 += elem(i + 3);
  }
  double acc = (a0 + a2) + (a1 + a3);
  for (; i < n; ++i) acc += elem(i);
  return acc;
}

/// Conduction coefficient of one cell from its density.
inline double conduction(double density, tl::CoefficientKind kind) {
  return kind == tl::CoefficientKind::kRecipDensity ? 1.0 / density : density;
}

/// Face coefficients from cell densities (TeaLeaf tea_leaf_common formula:
/// Kface = (w_a + w_b) / (2 w_a w_b) of the two adjacent cell coefficients).
/// Split into one branch-free pass per face direction: kx rows run j < ny
/// over i <= nx, ky rows run j <= ny over i < nx — same values as the fused
/// conditional loop, without per-element branches.
inline void compute_coefficients(ConstCellView density, CellView kx,
                                 CellView ky, int nx, int ny,
                                 tl::CoefficientKind kind) {
  for (int j = 0; j < ny; ++j) {
    const double* TL_RESTRICT dc = row(density, j);
    double* TL_RESTRICT kxr = row(kx, j);
    for (int i = 0; i <= nx; ++i) {
      const double wc = conduction(dc[i], kind);
      const double wl = conduction(dc[i - 1], kind);
      kxr[i] = (wl + wc) / (2.0 * wl * wc);
    }
  }
  for (int j = 0; j <= ny; ++j) {
    const double* TL_RESTRICT dc = row(density, j);
    const double* TL_RESTRICT dd = row(density, j - 1);
    double* TL_RESTRICT kyr = row(ky, j);
    for (int i = 0; i < nx; ++i) {
      const double wc = conduction(dc[i], kind);
      const double wd = conduction(dd[i], kind);
      kyr[i] = (wd + wc) / (2.0 * wd * wc);
    }
  }
}

inline void init_u_u0(ConstCellView density, ConstCellView energy, CellView u,
                      CellView u0, int nx, int ny) {
  for (int j = 0; j < ny; ++j) {
    const double* TL_RESTRICT dr = row(density, j);
    const double* TL_RESTRICT er = row(energy, j);
    double* TL_RESTRICT ur = row(u, j);
    double* TL_RESTRICT u0r = row(u0, j);
    for (int i = 0; i < nx; ++i) {
      const double v = er[i] * dr[i];
      ur[i] = v;
      u0r[i] = v;
    }
  }
}

inline double apply_operator_at(ConstCellView in, ConstCellView kx,
                                ConstCellView ky, double rx, double ry, int i,
                                int j) {
  const double diag =
      1.0 + rx * (kx(i + 1, j) + kx(i, j)) + ry * (ky(i, j + 1) + ky(i, j));
  return diag * in(i, j) -
         rx * (kx(i + 1, j) * in(i + 1, j) + kx(i, j) * in(i - 1, j)) -
         ry * (ky(i, j + 1) * in(i, j + 1) + ky(i, j) * in(i, j - 1));
}

inline void apply_operator(ConstCellView in, CellView out, ConstCellView kx,
                           ConstCellView ky, double rx, double ry, int nx,
                           int ny) {
  for (int j = 0; j < ny; ++j) {
    const double* TL_RESTRICT uc = row(in, j);
    const double* TL_RESTRICT un = row(in, j + 1);
    const double* TL_RESTRICT us = row(in, j - 1);
    const double* TL_RESTRICT kxr = row(kx, j);
    const double* TL_RESTRICT kyc = row(ky, j);
    const double* TL_RESTRICT kyn = row(ky, j + 1);
    double* TL_RESTRICT out_r = row(out, j);
    for (int i = 0; i < nx; ++i) {
      const double diag =
          1.0 + rx * (kxr[i + 1] + kxr[i]) + ry * (kyn[i] + kyc[i]);
      out_r[i] = diag * uc[i] -
                 rx * (kxr[i + 1] * uc[i + 1] + kxr[i] * uc[i - 1]) -
                 ry * (kyn[i] * un[i] + kyc[i] * us[i]);
    }
  }
}

/// Fused w = A p and p.w over the same rows: the dot consumes each stencil
/// result while it is still in registers, saving the separate dot's full
/// memory pass.  The reduction uses the same four-lane row scheme as dot().
inline double apply_operator_dot(ConstCellView in, CellView out,
                                 ConstCellView kx, ConstCellView ky, double rx,
                                 double ry, int nx, int ny) {
  double acc = 0.0;
  for (int j = 0; j < ny; ++j) {
    const double* TL_RESTRICT uc = row(in, j);
    const double* TL_RESTRICT un = row(in, j + 1);
    const double* TL_RESTRICT us = row(in, j - 1);
    const double* TL_RESTRICT kxr = row(kx, j);
    const double* TL_RESTRICT kyc = row(ky, j);
    const double* TL_RESTRICT kyn = row(ky, j + 1);
    double* TL_RESTRICT out_r = row(out, j);
    for (int i = 0; i < nx; ++i) {
      const double diag =
          1.0 + rx * (kxr[i + 1] + kxr[i]) + ry * (kyn[i] + kyc[i]);
      out_r[i] = diag * uc[i] -
                 rx * (kxr[i + 1] * uc[i + 1] + kxr[i] * uc[i - 1]) -
                 ry * (kyn[i] * un[i] + kyc[i] * us[i]);
    }
    acc += row_reduce4(nx, [&](int i) { return uc[i] * out_r[i]; });
  }
  return acc;
}

inline void compute_residual(ConstCellView u, ConstCellView u0, CellView r,
                             ConstCellView kx, ConstCellView ky, double rx,
                             double ry, int nx, int ny) {
  for (int j = 0; j < ny; ++j) {
    const double* TL_RESTRICT uc = row(u, j);
    const double* TL_RESTRICT un = row(u, j + 1);
    const double* TL_RESTRICT us = row(u, j - 1);
    const double* TL_RESTRICT u0r = row(u0, j);
    const double* TL_RESTRICT kxr = row(kx, j);
    const double* TL_RESTRICT kyc = row(ky, j);
    const double* TL_RESTRICT kyn = row(ky, j + 1);
    double* TL_RESTRICT rr = row(r, j);
    for (int i = 0; i < nx; ++i) {
      const double diag =
          1.0 + rx * (kxr[i + 1] + kxr[i]) + ry * (kyn[i] + kyc[i]);
      rr[i] = u0r[i] - (diag * uc[i] -
                        rx * (kxr[i + 1] * uc[i + 1] + kxr[i] * uc[i - 1]) -
                        ry * (kyn[i] * un[i] + kyc[i] * us[i]));
    }
  }
}

inline void copy_field(ConstCellView src, CellView dst, int nx, int ny) {
  for (int j = 0; j < ny; ++j) {
    const double* TL_RESTRICT s = row(src, j);
    double* TL_RESTRICT d = row(dst, j);
    for (int i = 0; i < nx; ++i) d[i] = s[i];
  }
}

inline void scale_copy(CellView dst, ConstCellView src, double sc, int nx,
                       int ny) {
  for (int j = 0; j < ny; ++j) {
    const double* TL_RESTRICT s = row(src, j);
    double* TL_RESTRICT d = row(dst, j);
    for (int i = 0; i < nx; ++i) d[i] = sc * s[i];
  }
}

inline double dot(ConstCellView a, ConstCellView b, int nx, int ny) {
  double acc = 0.0;
  for (int j = 0; j < ny; ++j) {
    const double* TL_RESTRICT ar = row(a, j);
    const double* TL_RESTRICT br = row(b, j);
    acc += row_reduce4(nx, [&](int i) { return ar[i] * br[i]; });
  }
  return acc;
}

inline void axpy(CellView y, double a, ConstCellView x, int nx, int ny) {
  for (int j = 0; j < ny; ++j) {
    const double* TL_RESTRICT xr = row(x, j);
    double* TL_RESTRICT yr = row(y, j);
    for (int i = 0; i < nx; ++i) yr[i] += a * xr[i];
  }
}

inline void zaxpy(CellView p, double beta, ConstCellView z, int nx, int ny) {
  for (int j = 0; j < ny; ++j) {
    const double* TL_RESTRICT zr = row(z, j);
    double* TL_RESTRICT pr = row(p, j);
    for (int i = 0; i < nx; ++i) pr[i] = zr[i] + beta * pr[i];
  }
}

inline void smooth_update(CellView acc, CellView res, ConstCellView w,
                          CellView sd, double alpha, double beta, int nx,
                          int ny) {
  for (int j = 0; j < ny; ++j) {
    double* TL_RESTRICT accr = row(acc, j);
    double* TL_RESTRICT resr = row(res, j);
    const double* TL_RESTRICT wr = row(w, j);
    double* TL_RESTRICT sdr = row(sd, j);
    for (int i = 0; i < nx; ++i) {
      accr[i] += sdr[i];
      resr[i] -= wr[i];
      sdr[i] = alpha * sdr[i] + beta * resr[i];
    }
  }
}

/// One Jacobi sweep: u_old must be in `uold`; writes u.  Returns sum|du|.
inline double jacobi_sweep(ConstCellView uold, ConstCellView u0, CellView u,
                           ConstCellView kx, ConstCellView ky, double rx,
                           double ry, int nx, int ny) {
  double err = 0.0;
  for (int j = 0; j < ny; ++j) {
    const double* TL_RESTRICT uc = row(uold, j);
    const double* TL_RESTRICT un = row(uold, j + 1);
    const double* TL_RESTRICT us = row(uold, j - 1);
    const double* TL_RESTRICT u0r = row(u0, j);
    const double* TL_RESTRICT kxr = row(kx, j);
    const double* TL_RESTRICT kyc = row(ky, j);
    const double* TL_RESTRICT kyn = row(ky, j + 1);
    double* TL_RESTRICT ur = row(u, j);
    err += row_reduce4(nx, [&](int i) {
      const double diag =
          1.0 + rx * (kxr[i + 1] + kxr[i]) + ry * (kyn[i] + kyc[i]);
      const double off = rx * (kxr[i + 1] * uc[i + 1] + kxr[i] * uc[i - 1]) +
                         ry * (kyn[i] * un[i] + kyc[i] * us[i]);
      const double unew = (u0r[i] + off) / diag;
      ur[i] = unew;
      return std::fabs(unew - uc[i]);
    });
  }
  return err;
}

inline FieldSummary field_summary(ConstCellView density, ConstCellView energy,
                                  ConstCellView u, double cell_volume, int nx,
                                  int ny) {
  FieldSummary s;
  for (int j = 0; j < ny; ++j) {
    const double* TL_RESTRICT dr = row(density, j);
    const double* TL_RESTRICT er = row(energy, j);
    const double* TL_RESTRICT ur = row(u, j);
    for (int i = 0; i < nx; ++i) {
      const double vol = cell_volume;
      s.vol += vol;
      s.mass += dr[i] * vol;
      s.ie += dr[i] * er[i] * vol;
      s.temp += ur[i] * vol;
    }
  }
  return s;
}

inline void finalise(ConstCellView u, ConstCellView density, CellView energy,
                     int nx, int ny) {
  for (int j = 0; j < ny; ++j) {
    const double* TL_RESTRICT ur = row(u, j);
    const double* TL_RESTRICT dr = row(density, j);
    double* TL_RESTRICT er = row(energy, j);
    for (int i = 0; i < nx; ++i) er[i] = ur[i] / dr[i];
  }
}

/// Reflective (mirror) fill of `depth` halo layers on the flagged physical
/// edges; the y pass covers the x halo so corners stay consistent.
inline void reflect_halo(CellView f, int nx, int ny, int depth, bool at_xlo,
                         bool at_xhi, bool at_ylo, bool at_yhi) {
  if (at_xlo) {
    for (int j = 0; j < ny; ++j) {
      double* TL_RESTRICT fr = row(f, j);
      for (int k = 0; k < depth; ++k) fr[-1 - k] = fr[k];
    }
  }
  if (at_xhi) {
    for (int j = 0; j < ny; ++j) {
      double* TL_RESTRICT fr = row(f, j);
      for (int k = 0; k < depth; ++k) fr[nx + k] = fr[nx - 1 - k];
    }
  }
  if (at_ylo) {
    for (int k = 0; k < depth; ++k) {
      double* TL_RESTRICT dst = row(f, -1 - k);
      const double* TL_RESTRICT src = row(f, k);
      for (int i = -depth; i < nx + depth; ++i) dst[i] = src[i];
    }
  }
  if (at_yhi) {
    for (int k = 0; k < depth; ++k) {
      double* TL_RESTRICT dst = row(f, ny + k);
      const double* TL_RESTRICT src = row(f, ny - 1 - k);
      for (int i = -depth; i < nx + depth; ++i) dst[i] = src[i];
    }
  }
}

}  // namespace tea::ref
