// ref_kernels.hpp — the serial reference implementation of every TeaLeaf
// kernel, over CellViews.  This is the golden math: the serial backend uses
// these directly, the tests compare every other backend against them, and
// the per-kernel flop/byte footprints the instrumentation charges are
// documented here next to the loops that incur them.
//
// Operator (matrix-free 5-point, SPD):
//   (A u)(i,j) = (1 + rx (Kx(i+1,j)+Kx(i,j)) + ry (Ky(i,j+1)+Ky(i,j))) u(i,j)
//              -  rx (Kx(i+1,j) u(i+1,j) + Kx(i,j) u(i-1,j))
//              -  ry (Ky(i,j+1) u(i,j+1) + Ky(i,j) u(i,j-1))
// with rx = dt/dx^2, ry = dt/dy^2.  Kx(i,j) is the face between cells
// (i-1,j) and (i,j).  Reflective halos make the boundary fluxes vanish
// (Neumann), so A is symmetric positive definite.
#pragma once

#include <cmath>

#include "common/config.hpp"
#include "core/backends/field_store.hpp"
#include "core/field.hpp"

namespace tea::ref {

/// Per-kernel cost table (per interior cell): reads, writes, flops.  Shared
/// by every backend's traffic charging so variants are compared on the same
/// footprint accounting a DRAM-side profiler would use.
struct KernelCost {
  int reads;
  int writes;
  int flops;
};
inline constexpr KernelCost kCostCoefficients{1, 2, 6};
inline constexpr KernelCost kCostInitU{2, 2, 1};
inline constexpr KernelCost kCostOperator{4, 1, 13};  // u, kx, ky (+reuse), w
inline constexpr KernelCost kCostResidual{5, 1, 14};
inline constexpr KernelCost kCostCopy{1, 1, 0};
inline constexpr KernelCost kCostScaleCopy{1, 1, 1};
inline constexpr KernelCost kCostDot{2, 0, 2};
inline constexpr KernelCost kCostAxpy{2, 1, 2};
inline constexpr KernelCost kCostZaxpy{2, 1, 2};
inline constexpr KernelCost kCostSmooth{4, 3, 6};
inline constexpr KernelCost kCostJacobi{7, 2, 16};
inline constexpr KernelCost kCostSummary{3, 0, 8};
inline constexpr KernelCost kCostFinalise{2, 1, 1};

/// Conduction coefficient of one cell from its density.
inline double conduction(double density, tl::CoefficientKind kind) {
  return kind == tl::CoefficientKind::kRecipDensity ? 1.0 / density : density;
}

/// Face coefficients from cell densities (TeaLeaf tea_leaf_common formula:
/// Kface = (w_a + w_b) / (2 w_a w_b) of the two adjacent cell coefficients).
inline void compute_coefficients(ConstCellView density, CellView kx,
                                 CellView ky, int nx, int ny,
                                 tl::CoefficientKind kind) {
  for (int j = 0; j <= ny; ++j) {
    for (int i = 0; i <= nx; ++i) {
      const double wc = conduction(density(i, j), kind);
      if (j < ny) {
        const double wl = conduction(density(i - 1, j), kind);
        kx(i, j) = (wl + wc) / (2.0 * wl * wc);
      }
      if (i < nx) {
        const double wd = conduction(density(i, j - 1), kind);
        ky(i, j) = (wd + wc) / (2.0 * wd * wc);
      }
    }
  }
}

inline void init_u_u0(ConstCellView density, ConstCellView energy, CellView u,
                      CellView u0, int nx, int ny) {
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const double v = energy(i, j) * density(i, j);
      u(i, j) = v;
      u0(i, j) = v;
    }
  }
}

inline double apply_operator_at(ConstCellView in, ConstCellView kx,
                                ConstCellView ky, double rx, double ry, int i,
                                int j) {
  const double diag =
      1.0 + rx * (kx(i + 1, j) + kx(i, j)) + ry * (ky(i, j + 1) + ky(i, j));
  return diag * in(i, j) -
         rx * (kx(i + 1, j) * in(i + 1, j) + kx(i, j) * in(i - 1, j)) -
         ry * (ky(i, j + 1) * in(i, j + 1) + ky(i, j) * in(i, j - 1));
}

inline void apply_operator(ConstCellView in, CellView out, ConstCellView kx,
                           ConstCellView ky, double rx, double ry, int nx,
                           int ny) {
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      out(i, j) = apply_operator_at(in, kx, ky, rx, ry, i, j);
    }
  }
}

inline void compute_residual(ConstCellView u, ConstCellView u0, CellView r,
                             ConstCellView kx, ConstCellView ky, double rx,
                             double ry, int nx, int ny) {
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      r(i, j) = u0(i, j) - apply_operator_at(u, kx, ky, rx, ry, i, j);
    }
  }
}

inline void copy_field(ConstCellView src, CellView dst, int nx, int ny) {
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) dst(i, j) = src(i, j);
  }
}

inline void scale_copy(CellView dst, ConstCellView src, double s, int nx,
                       int ny) {
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) dst(i, j) = s * src(i, j);
  }
}

inline double dot(ConstCellView a, ConstCellView b, int nx, int ny) {
  double acc = 0.0;
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) acc += a(i, j) * b(i, j);
  }
  return acc;
}

inline void axpy(CellView y, double a, ConstCellView x, int nx, int ny) {
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) y(i, j) += a * x(i, j);
  }
}

inline void zaxpy(CellView p, double beta, ConstCellView z, int nx, int ny) {
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) p(i, j) = z(i, j) + beta * p(i, j);
  }
}

inline void smooth_update(CellView acc, CellView res, ConstCellView w,
                          CellView sd, double alpha, double beta, int nx,
                          int ny) {
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      acc(i, j) += sd(i, j);
      res(i, j) -= w(i, j);
      sd(i, j) = alpha * sd(i, j) + beta * res(i, j);
    }
  }
}

/// One Jacobi sweep: u_old must be in `uold`; writes u.  Returns sum|du|.
inline double jacobi_sweep(ConstCellView uold, ConstCellView u0, CellView u,
                           ConstCellView kx, ConstCellView ky, double rx,
                           double ry, int nx, int ny) {
  double err = 0.0;
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const double diag = 1.0 + rx * (kx(i + 1, j) + kx(i, j)) +
                          ry * (ky(i, j + 1) + ky(i, j));
      const double off =
          rx * (kx(i + 1, j) * uold(i + 1, j) + kx(i, j) * uold(i - 1, j)) +
          ry * (ky(i, j + 1) * uold(i, j + 1) + ky(i, j) * uold(i, j - 1));
      const double unew = (u0(i, j) + off) / diag;
      u(i, j) = unew;
      err += std::fabs(unew - uold(i, j));
    }
  }
  return err;
}

inline FieldSummary field_summary(ConstCellView density, ConstCellView energy,
                                  ConstCellView u, double cell_volume, int nx,
                                  int ny) {
  FieldSummary s;
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const double vol = cell_volume;
      s.vol += vol;
      s.mass += density(i, j) * vol;
      s.ie += density(i, j) * energy(i, j) * vol;
      s.temp += u(i, j) * vol;
    }
  }
  return s;
}

inline void finalise(ConstCellView u, ConstCellView density, CellView energy,
                     int nx, int ny) {
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) energy(i, j) = u(i, j) / density(i, j);
  }
}

/// Reflective (mirror) fill of `depth` halo layers on the flagged physical
/// edges; the y pass covers the x halo so corners stay consistent.
inline void reflect_halo(CellView f, int nx, int ny, int depth, bool at_xlo,
                         bool at_xhi, bool at_ylo, bool at_yhi) {
  if (at_xlo) {
    for (int j = 0; j < ny; ++j) {
      for (int k = 0; k < depth; ++k) f(-1 - k, j) = f(k, j);
    }
  }
  if (at_xhi) {
    for (int j = 0; j < ny; ++j) {
      for (int k = 0; k < depth; ++k) f(nx + k, j) = f(nx - 1 - k, j);
    }
  }
  if (at_ylo) {
    for (int k = 0; k < depth; ++k) {
      for (int i = -depth; i < nx + depth; ++i) f(i, -1 - k) = f(i, k);
    }
  }
  if (at_yhi) {
    for (int k = 0; k < depth; ++k) {
      for (int i = -depth; i < nx + depth; ++i) f(i, ny + k) = f(i, ny - 1 - k);
    }
  }
}

}  // namespace tea::ref
