// manual_host.hpp — the hand-parallelised CPU TeaLeaf variants.
//
// One class covers the paper's four manual CPU builds through its
// construction parameters, keeping the parallelisation mechanics explicit:
//   serial         : no pool, no comm   — the reference implementation
//   manual-omp     : tlp pool           — OpenMP-style row work-sharing
//   manual-mpi     : minimpi comm       — block decomposition + halo exchange
//   manual-hybrid  : comm + per-rank pool
// Kernels delegate the per-row math to ref_kernels (exactly what the Fortran
// OpenMP port does around its loop pragmas); distribution adds halo
// exchanges and allreduced reductions.
#pragma once

#include <memory>

#include "core/backend.hpp"
#include "core/backends/field_arena.hpp"
#include "core/backends/field_store.hpp"
#include "minimpi/cart.hpp"
#include "minimpi/comm.hpp"
#include "threading/thread_pool.hpp"

namespace tea {

class ManualHostBackend final : public Backend {
public:
  /// `pool` may be null (serial rows); `comm` may be null (undecomposed).
  /// `arena` may be null (own a fresh FieldStore, the default); with one,
  /// setup() leases the field slab from the arena and the destructor
  /// returns it — the solve-service path that amortises field allocation
  /// across back-to-back solves.  The backend owns none of the three.
  ManualHostBackend(std::string id, tlp::ThreadPool* pool, minimpi::Comm* comm,
                    FieldArena* arena = nullptr);
  ~ManualHostBackend() override;

  std::string id() const override { return id_; }
  void setup(const tl::ProblemConfig& cfg) override;

  void compute_coefficients(tl::CoefficientKind kind) override;
  void init_u_u0() override;
  void apply_operator(FieldId in, FieldId out) override;
  double apply_operator_dot(FieldId in, FieldId out) override;
  void compute_residual() override;
  // Overlapped split-phase exchanges: interior stencil while strips fly,
  // boundary ring after finish.  Bitwise identical to the blocking defaults
  // (pure per-cell writes; reductions re-read through the canonical
  // row_reduce4 passes).  Undecomposed instances use the defaults.
  void exchange_apply_operator(FieldId in, FieldId out) override;
  double exchange_apply_operator_dot(FieldId in, FieldId out) override;
  void exchange_compute_residual() override;
  double exchange_jacobi_iterate() override;
  void copy_field(FieldId src, FieldId dst) override;
  void scale_copy(FieldId dst, FieldId src, double s) override;
  double dot(FieldId a, FieldId b) override;
  void axpy(FieldId y, double a, FieldId x) override;
  void zaxpy(FieldId p, double beta, FieldId z) override;
  void precondition(FieldId dst, FieldId src) override;
  void smooth_update(FieldId acc, FieldId res, FieldId w, FieldId sd,
                     double alpha, double beta) override;
  double jacobi_iterate() override;
  FieldSummary field_summary() override;
  void update_halo(std::initializer_list<FieldId> fields, int depth) override;
  void finalise() override;
  std::int64_t working_set_bytes() const override;
  bool counts_globally() const override {
    return comm_ == nullptr || comm_->rank() == 0;
  }
  void counter_fence(CounterFence phase) override;
  LocalExtent local_extent() const override;
  void read_field(FieldId f, tl::span<double> out) override;

  const PartitionGeom& geom() const { return store_->geom(); }
  FieldStore& store() { return *store_; }

private:
  /// Work-share rows [0, ny) over the pool (or run inline when serial).
  template <typename RowFn>
  void rows(const RowFn& fn);
  /// Row-wise mapped reduction returning the comm-wide combined value.
  template <typename MapFn>
  double reduce_rows(const MapFn& fn);
  /// Split-phase exchange of one layer of `exchanged` overlapped with the
  /// interior cells of a stencil pass; `band(i0, bnx, j0, j1)` computes
  /// local columns [i0, i0+bnx) of rows [j0, j1).
  template <typename BandFn>
  void overlap_exchange(FieldId exchanged, const BandFn& band);

  std::string id_;
  tlp::ThreadPool* pool_;
  minimpi::Comm* comm_;
  FieldArena* arena_;
  std::unique_ptr<minimpi::Cart2D> cart_;
  std::unique_ptr<FieldStore> store_;
  double cell_volume_ = 0.0;
};

}  // namespace tea
