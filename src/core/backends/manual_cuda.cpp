#include "core/backends/manual_cuda.hpp"

#include <cmath>
#include <vector>

#include "core/backends/ref_kernels.hpp"
#include "core/problem.hpp"

namespace tea {

namespace {
simgpu::KernelTraffic traffic(const PartitionGeom& g,
                              const ref::KernelCost& c) {
  const std::int64_t cells = g.cells();
  return simgpu::KernelTraffic{cells * 8 * c.reads, cells * 8 * c.writes,
                               cells * c.flops};
}
}  // namespace

ManualCudaBackend::ManualCudaBackend(simgpu::Device* device)
    : device_(device != nullptr ? *device : simgpu::default_device()) {}

CellView ManualCudaBackend::dv(FieldId f) const {
  const auto& buf = fields_[static_cast<std::size_t>(f)];
  double* origin = buf->data() +
                   static_cast<std::ptrdiff_t>(geom_.halo) * geom_.padded_nx() +
                   geom_.halo;
  return CellView{origin, geom_.padded_nx()};
}

void ManualCudaBackend::setup(const tl::ProblemConfig& cfg) {
  geom_ = PartitionGeom{};
  geom_.gnx = geom_.nx = cfg.x_cells;
  geom_.gny = geom_.ny = cfg.y_cells;
  geom_.halo = cfg.halo_depth;

  const std::size_t padded = static_cast<std::size_t>(geom_.padded_cells());
  for (auto& f : fields_) f.emplace(device_, padded);

  // Paint initial conditions on a host staging buffer, then cudaMemcpy up.
  const StateSampler sampler(cfg);
  cell_volume_ = sampler.cell_volume();
  std::vector<double> stage(padded, 0.0);
  const int pnx = geom_.padded_nx();
  const auto stage_at = [&](int i, int j) -> double& {
    return stage[static_cast<std::size_t>(j + geom_.halo) * pnx +
                 (i + geom_.halo)];
  };

  for (int j = 0; j < geom_.ny; ++j) {
    for (int i = 0; i < geom_.nx; ++i) stage_at(i, j) = sampler.density_at(i, j);
  }
  fields_[static_cast<std::size_t>(FieldId::kDensity)]->upload(stage);
  for (int j = 0; j < geom_.ny; ++j) {
    for (int i = 0; i < geom_.nx; ++i) stage_at(i, j) = sampler.energy_at(i, j);
  }
  fields_[static_cast<std::size_t>(FieldId::kEnergy0)]->upload(stage);
  fields_[static_cast<std::size_t>(FieldId::kEnergy1)]->upload(stage);

  update_halo({FieldId::kDensity, FieldId::kEnergy0, FieldId::kEnergy1},
              geom_.halo);
}

void ManualCudaBackend::compute_coefficients(tl::CoefficientKind kind) {
  CellView density = dv(FieldId::kDensity);
  CellView kx = dv(FieldId::kKx);
  CellView ky = dv(FieldId::kKy);
  const int nx = geom_.nx;
  const int ny = geom_.ny;
  device_.launch_2d(
      "tea_coefficients", nx + 1, ny + 1, traffic(geom_, ref::kCostCoefficients),
      [=](int i, int j) {
        const double wc = ref::conduction(density(i, j), kind);
        if (j < ny) {
          const double wl = ref::conduction(density(i - 1, j), kind);
          kx(i, j) = (wl + wc) / (2.0 * wl * wc);
        }
        if (i < nx) {
          const double wd = ref::conduction(density(i, j - 1), kind);
          ky(i, j) = (wd + wc) / (2.0 * wd * wc);
        }
      });
}

void ManualCudaBackend::init_u_u0() {
  CellView density = dv(FieldId::kDensity);
  CellView energy = dv(FieldId::kEnergy1);
  CellView u = dv(FieldId::kU);
  CellView u0 = dv(FieldId::kU0);
  device_.launch_2d("tea_init_u", geom_.nx, geom_.ny,
                    traffic(geom_, ref::kCostInitU), [=](int i, int j) {
                      const double v = energy(i, j) * density(i, j);
                      u(i, j) = v;
                      u0(i, j) = v;
                    });
}

void ManualCudaBackend::apply_operator(FieldId in, FieldId out) {
  CellView vin = dv(in);
  CellView vout = dv(out);
  CellView kx = dv(FieldId::kKx);
  CellView ky = dv(FieldId::kKy);
  const double rx = rx_, ry = ry_;
  device_.launch_2d(
      "tea_smvp", geom_.nx, geom_.ny, traffic(geom_, ref::kCostOperator),
      [=](int i, int j) {
        const double diag = 1.0 + rx * (kx(i + 1, j) + kx(i, j)) +
                            ry * (ky(i, j + 1) + ky(i, j));
        vout(i, j) =
            diag * vin(i, j) -
            rx * (kx(i + 1, j) * vin(i + 1, j) + kx(i, j) * vin(i - 1, j)) -
            ry * (ky(i, j + 1) * vin(i, j + 1) + ky(i, j) * vin(i, j - 1));
      });
}

void ManualCudaBackend::compute_residual() {
  CellView u = dv(FieldId::kU);
  CellView u0 = dv(FieldId::kU0);
  CellView r = dv(FieldId::kR);
  CellView kx = dv(FieldId::kKx);
  CellView ky = dv(FieldId::kKy);
  const double rx = rx_, ry = ry_;
  device_.launch_2d(
      "tea_residual", geom_.nx, geom_.ny, traffic(geom_, ref::kCostResidual),
      [=](int i, int j) {
        const double diag = 1.0 + rx * (kx(i + 1, j) + kx(i, j)) +
                            ry * (ky(i, j + 1) + ky(i, j));
        const double au =
            diag * u(i, j) -
            rx * (kx(i + 1, j) * u(i + 1, j) + kx(i, j) * u(i - 1, j)) -
            ry * (ky(i, j + 1) * u(i, j + 1) + ky(i, j) * u(i, j - 1));
        r(i, j) = u0(i, j) - au;
      });
}

void ManualCudaBackend::copy_field(FieldId src, FieldId dst) {
  CellView s = dv(src);
  CellView d = dv(dst);
  device_.launch_2d("tea_copy", geom_.nx, geom_.ny,
                    traffic(geom_, ref::kCostCopy),
                    [=](int i, int j) { d(i, j) = s(i, j); });
}

void ManualCudaBackend::scale_copy(FieldId dst, FieldId src, double sc) {
  CellView s = dv(src);
  CellView d = dv(dst);
  device_.launch_2d("tea_scale_copy", geom_.nx, geom_.ny,
                    traffic(geom_, ref::kCostScaleCopy),
                    [=](int i, int j) { d(i, j) = sc * s(i, j); });
}

double ManualCudaBackend::dot(FieldId a, FieldId b) {
  CellView va = dv(a);
  CellView vb = dv(b);
  const int nx = geom_.nx;
  const long n = static_cast<long>(nx) * geom_.ny;
  return device_.reduce_sum("tea_dot", n, [=](long idx) {
    const int i = static_cast<int>(idx % nx);
    const int j = static_cast<int>(idx / nx);
    return va(i, j) * vb(i, j);
  });
}

void ManualCudaBackend::axpy(FieldId y, double a, FieldId x) {
  CellView vy = dv(y);
  CellView vx = dv(x);
  device_.launch_2d("tea_axpy", geom_.nx, geom_.ny,
                    traffic(geom_, ref::kCostAxpy),
                    [=](int i, int j) { vy(i, j) += a * vx(i, j); });
}

void ManualCudaBackend::zaxpy(FieldId p, double beta, FieldId z) {
  CellView vp = dv(p);
  CellView vz = dv(z);
  device_.launch_2d("tea_zaxpy", geom_.nx, geom_.ny,
                    traffic(geom_, ref::kCostZaxpy),
                    [=](int i, int j) { vp(i, j) = vz(i, j) + beta * vp(i, j); });
}

void ManualCudaBackend::precondition(FieldId dst, FieldId src) {
  CellView d = dv(dst);
  CellView s = dv(src);
  CellView kx = dv(FieldId::kKx);
  CellView ky = dv(FieldId::kKy);
  const double rx = rx_, ry = ry_;
  device_.launch_2d("tea_precondition", geom_.nx, geom_.ny,
                    traffic(geom_, ref::kCostOperator), [=](int i, int j) {
                      const double diag = 1.0 + rx * (kx(i + 1, j) + kx(i, j)) +
                                          ry * (ky(i, j + 1) + ky(i, j));
                      d(i, j) = s(i, j) / diag;
                    });
}

void ManualCudaBackend::smooth_update(FieldId acc, FieldId res, FieldId w,
                                      FieldId sd, double alpha, double beta) {
  CellView vacc = dv(acc);
  CellView vres = dv(res);
  CellView vw = dv(w);
  CellView vsd = dv(sd);
  device_.launch_2d("tea_cheby_iterate", geom_.nx, geom_.ny,
                    traffic(geom_, ref::kCostSmooth), [=](int i, int j) {
                      vacc(i, j) += vsd(i, j);
                      vres(i, j) -= vw(i, j);
                      vsd(i, j) = alpha * vsd(i, j) + beta * vres(i, j);
                    });
}

double ManualCudaBackend::jacobi_iterate() {
  // Sweep u -> w as a fused write+reduce kernel (a real CUDA port fuses
  // exactly this way), then commit w back to u.
  CellView uold = dv(FieldId::kU);
  CellView u0 = dv(FieldId::kU0);
  CellView w = dv(FieldId::kW);
  CellView kx = dv(FieldId::kKx);
  CellView ky = dv(FieldId::kKy);
  const double rx = rx_, ry = ry_;
  const int nx = geom_.nx;
  const long n = static_cast<long>(nx) * geom_.ny;
  const double err = device_.reduce_sum("tea_jacobi", n, [=](long idx) {
    const int i = static_cast<int>(idx % nx);
    const int j = static_cast<int>(idx / nx);
    const double diag = 1.0 + rx * (kx(i + 1, j) + kx(i, j)) +
                        ry * (ky(i, j + 1) + ky(i, j));
    const double off =
        rx * (kx(i + 1, j) * uold(i + 1, j) + kx(i, j) * uold(i - 1, j)) +
        ry * (ky(i, j + 1) * uold(i, j + 1) + ky(i, j) * uold(i, j - 1));
    const double unew = (u0(i, j) + off) / diag;
    w(i, j) = unew;
    return std::fabs(unew - uold(i, j));
  });
  copy_field(FieldId::kW, FieldId::kU);
  return err;
}

FieldSummary ManualCudaBackend::field_summary() {
  CellView density = dv(FieldId::kDensity);
  CellView energy = dv(FieldId::kEnergy0);
  CellView u = dv(FieldId::kU);
  const int nx = geom_.nx;
  const long n = static_cast<long>(nx) * geom_.ny;
  const double vol_cell = cell_volume_;
  FieldSummary s;
  s.vol = vol_cell * static_cast<double>(n);
  s.mass = device_.reduce_sum("tea_summary_mass", n, [=](long idx) {
    return density(static_cast<int>(idx % nx), static_cast<int>(idx / nx)) *
           vol_cell;
  });
  s.ie = device_.reduce_sum("tea_summary_ie", n, [=](long idx) {
    const int i = static_cast<int>(idx % nx);
    const int j = static_cast<int>(idx / nx);
    return density(i, j) * energy(i, j) * vol_cell;
  });
  s.temp = device_.reduce_sum("tea_summary_temp", n, [=](long idx) {
    return u(static_cast<int>(idx % nx), static_cast<int>(idx / nx)) *
           vol_cell;
  });
  return s;
}

void ManualCudaBackend::update_halo(std::initializer_list<FieldId> fields,
                                    int depth) {
  const int nx = geom_.nx;
  const int ny = geom_.ny;
  for (const FieldId fid : fields) {
    CellView f = dv(fid);
    const std::int64_t edge_bytes =
        static_cast<std::int64_t>(depth) * (nx + ny) * 8;
    const simgpu::KernelTraffic t{edge_bytes, edge_bytes, 0};
    device_.launch_2d("tea_halo_x", depth, ny, t, [=](int k, int j) {
      f(-1 - k, j) = f(k, j);
      f(nx + k, j) = f(nx - 1 - k, j);
    });
    device_.launch_2d("tea_halo_y", nx + 2 * depth, depth, t,
                      [=](int ii, int k) {
                        const int i = ii - depth;
                        f(i, -1 - k) = f(i, k);
                        f(i, ny + k) = f(i, ny - 1 - k);
                      });
  }
}

void ManualCudaBackend::finalise() {
  CellView u = dv(FieldId::kU);
  CellView density = dv(FieldId::kDensity);
  CellView energy = dv(FieldId::kEnergy1);
  device_.launch_2d("tea_finalise", geom_.nx, geom_.ny,
                    traffic(geom_, ref::kCostFinalise),
                    [=](int i, int j) { energy(i, j) = u(i, j) / density(i, j); });
}

std::int64_t ManualCudaBackend::working_set_bytes() const {
  return static_cast<std::int64_t>(kNumFields) * geom_.padded_cells() * 8;
}

void ManualCudaBackend::read_field(FieldId f, tl::span<double> out) {
  const std::size_t padded = static_cast<std::size_t>(geom_.padded_cells());
  std::vector<double> stage(padded);
  fields_[static_cast<std::size_t>(f)]->download(stage);
  const int pnx = geom_.padded_nx();
  for (int j = 0; j < geom_.ny; ++j) {
    for (int i = 0; i < geom_.nx; ++i) {
      out[static_cast<std::size_t>(j) * geom_.nx + i] =
          stage[static_cast<std::size_t>(j + geom_.halo) * pnx +
                (i + geom_.halo)];
    }
  }
}

void ManualCudaBackend::download_field(FieldId f, FieldStore& host) const {
  const auto& buf = fields_[static_cast<std::size_t>(f)];
  const std::size_t padded = static_cast<std::size_t>(geom_.padded_cells());
  buf->download(tl::span<double>(host.padded(f), padded));
}

}  // namespace tea
