#include "core/backends/manual_host.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/simd.hpp"
#include "core/backends/ref_kernels.hpp"
#include "core/halo.hpp"
#include "core/problem.hpp"
#include "machine/instrumentation.hpp"

namespace tea {

namespace {
machine::Instrumentation& instr() { return machine::Instrumentation::global(); }

// --- band kernels ------------------------------------------------------------
//
// Each hot kernel runs as a free function over a row band [j0, j1), shifting
// the view origins so the shared ref_kernels row loops do the math (one
// source of truth for the arithmetic).  The functions carry TL_TARGET_CLONES:
// the default -O3 build stays portable x86-64 while AVX2 hosts dispatch to
// 4-wide versions at runtime.  Clones exclude FMA ISAs, so every version
// computes bitwise-identical results (see common/simd.hpp).

inline CellView shifted(CellView v, int j0) {
  return CellView{ref::row(v, j0), v.stride};
}
inline ConstCellView shifted(ConstCellView v, int j0) {
  return ConstCellView{ref::row(v, j0), v.stride};
}

// Column shift: `xshift(v, i0)(i, j)` == `v(i0 + i, j)` — lets the row-band
// kernels run over a column sub-range (the overlapped interior/boundary
// split) without new loop bodies.
inline CellView xshift(CellView v, int i0) {
  return CellView{v.origin + i0, v.stride};
}
inline ConstCellView xshift(ConstCellView v, int i0) {
  return ConstCellView{v.origin + i0, v.stride};
}

TL_TARGET_CLONES void op_band(ConstCellView in, CellView out, ConstCellView kx,
                              ConstCellView ky, double rx, double ry, int nx,
                              int j0, int j1) {
  ref::apply_operator(shifted(in, j0), shifted(out, j0), shifted(kx, j0),
                      shifted(ky, j0), rx, ry, nx, j1 - j0);
}

TL_TARGET_CLONES double opdot_band(ConstCellView in, CellView out,
                                   ConstCellView kx, ConstCellView ky,
                                   double rx, double ry, int nx, int j0,
                                   int j1) {
  return ref::apply_operator_dot(shifted(in, j0), shifted(out, j0),
                                 shifted(kx, j0), shifted(ky, j0), rx, ry, nx,
                                 j1 - j0);
}

TL_TARGET_CLONES void residual_band(ConstCellView u, ConstCellView u0,
                                    CellView r, ConstCellView kx,
                                    ConstCellView ky, double rx, double ry,
                                    int nx, int j0, int j1) {
  ref::compute_residual(shifted(u, j0), shifted(u0, j0), shifted(r, j0),
                        shifted(kx, j0), shifted(ky, j0), rx, ry, nx, j1 - j0);
}

TL_TARGET_CLONES double dot_band(ConstCellView a, ConstCellView b, int nx,
                                 int j0, int j1) {
  return ref::dot(shifted(a, j0), shifted(b, j0), nx, j1 - j0);
}

TL_TARGET_CLONES void copy_band(ConstCellView src, CellView dst, int nx,
                                int j0, int j1) {
  ref::copy_field(shifted(src, j0), shifted(dst, j0), nx, j1 - j0);
}

TL_TARGET_CLONES void scale_band(CellView dst, ConstCellView src, double s,
                                 int nx, int j0, int j1) {
  ref::scale_copy(shifted(dst, j0), shifted(src, j0), s, nx, j1 - j0);
}

TL_TARGET_CLONES void axpy_band(CellView y, double a, ConstCellView x, int nx,
                                int j0, int j1) {
  ref::axpy(shifted(y, j0), a, shifted(x, j0), nx, j1 - j0);
}

TL_TARGET_CLONES void zaxpy_band(CellView p, double beta, ConstCellView z,
                                 int nx, int j0, int j1) {
  ref::zaxpy(shifted(p, j0), beta, shifted(z, j0), nx, j1 - j0);
}

TL_TARGET_CLONES void init_u_band(ConstCellView density, ConstCellView energy,
                                  CellView u, CellView u0, int nx, int j0,
                                  int j1) {
  ref::init_u_u0(shifted(density, j0), shifted(energy, j0), shifted(u, j0),
                 shifted(u0, j0), nx, j1 - j0);
}

TL_TARGET_CLONES void smooth_band(CellView acc, CellView res, ConstCellView w,
                                  CellView sd, double alpha, double beta,
                                  int nx, int j0, int j1) {
  ref::smooth_update(shifted(acc, j0), shifted(res, j0), shifted(w, j0),
                     shifted(sd, j0), alpha, beta, nx, j1 - j0);
}

TL_TARGET_CLONES double jacobi_band(ConstCellView uold, ConstCellView u0,
                                    CellView u, ConstCellView kx,
                                    ConstCellView ky, double rx, double ry,
                                    int nx, int j0, int j1) {
  return ref::jacobi_sweep(shifted(uold, j0), shifted(u0, j0), shifted(u, j0),
                           shifted(kx, j0), shifted(ky, j0), rx, ry, nx,
                           j1 - j0);
}

/// Sum |a - b| over a row band, reduced exactly like dot_band.  This is the
/// overlapped Jacobi error pass: w holds each unew bitwise, so re-reading
/// |w - u_old| reproduces the fused sweep's |unew - uold| terms through the
/// same per-row row_reduce4 association.
TL_TARGET_CLONES double absdiff_band(ConstCellView a, ConstCellView b, int nx,
                                     int j0, int j1) {
  const ConstCellView as = shifted(a, j0);
  const ConstCellView bs = shifted(b, j0);
  double acc = 0.0;
  for (int j = 0; j < j1 - j0; ++j) {
    const double* TL_RESTRICT ar = ref::row(as, j);
    const double* TL_RESTRICT br = ref::row(bs, j);
    acc += ref::row_reduce4(nx,
                            [&](int i) { return std::fabs(ar[i] - br[i]); });
  }
  return acc;
}

TL_TARGET_CLONES void precondition_band(CellView d, ConstCellView s,
                                        ConstCellView kx, ConstCellView ky,
                                        double rx, double ry, int nx, int j0,
                                        int j1) {
  for (int j = j0; j < j1; ++j) {
    const double* TL_RESTRICT sr = ref::row(s, j);
    const double* TL_RESTRICT kxr = ref::row(kx, j);
    const double* TL_RESTRICT kyc = ref::row(ky, j);
    const double* TL_RESTRICT kyn = ref::row(ky, j + 1);
    double* TL_RESTRICT dr = ref::row(d, j);
    for (int i = 0; i < nx; ++i) {
      const double diag =
          1.0 + rx * (kxr[i + 1] + kxr[i]) + ry * (kyn[i] + kyc[i]);
      dr[i] = sr[i] / diag;
    }
  }
}

TL_TARGET_CLONES void finalise_band(ConstCellView u, ConstCellView density,
                                    CellView energy, int nx, int j0, int j1) {
  ref::finalise(shifted(u, j0), shifted(density, j0), shifted(energy, j0), nx,
                j1 - j0);
}

/// Coefficient band over face rows [j0, j1) of the (ny+1)-row face loop:
/// branch-free split — kx rows exist for j < ny, ky rows for j <= ny.
TL_TARGET_CLONES void coefficients_band(ConstCellView density, CellView kx,
                                        CellView ky, int nx, int ny,
                                        tl::CoefficientKind kind, int j0,
                                        int j1) {
  for (int j = j0; j < std::min(j1, ny); ++j) {
    const double* TL_RESTRICT dc = ref::row(density, j);
    double* TL_RESTRICT kxr = ref::row(kx, j);
    for (int i = 0; i <= nx; ++i) {
      const double wc = ref::conduction(dc[i], kind);
      const double wl = ref::conduction(dc[i - 1], kind);
      kxr[i] = (wl + wc) / (2.0 * wl * wc);
    }
  }
  for (int j = j0; j < j1; ++j) {
    const double* TL_RESTRICT dc = ref::row(density, j);
    const double* TL_RESTRICT dd = ref::row(density, j - 1);
    double* TL_RESTRICT kyr = ref::row(ky, j);
    for (int i = 0; i < nx; ++i) {
      const double wc = ref::conduction(dc[i], kind);
      const double wd = ref::conduction(dd[i], kind);
      kyr[i] = (wd + wc) / (2.0 * wd * wc);
    }
  }
}

/// Four simultaneous summary reductions folded through one pass.
struct SummaryQuad {
  double vol = 0.0, mass = 0.0, ie = 0.0, temp = 0.0;
};

TL_TARGET_CLONES SummaryQuad summary_band(ConstCellView density,
                                          ConstCellView energy,
                                          ConstCellView u, double vol_cell,
                                          int nx, int j0, int j1) {
  const FieldSummary s =
      ref::field_summary(shifted(density, j0), shifted(energy, j0),
                         shifted(u, j0), vol_cell, nx, j1 - j0);
  return SummaryQuad{s.vol, s.mass, s.ie, s.temp};
}

/// Charge one kernel's footprint: local traffic always (per-rank sums give
/// the global bytes), dispatch counted once per logical kernel.
void charge_kernel(const PartitionGeom& g, const ref::KernelCost& c,
                   minimpi::Comm* comm, bool is_reduction = false) {
  const std::int64_t cells = g.cells();
  instr().add_traffic(cells * 8 * c.reads, cells * 8 * c.writes,
                      cells * c.flops);
  if (comm == nullptr || comm->rank() == 0) {
    instr().add_launch();
    if (is_reduction) instr().add_reduction();
  }
}

}  // namespace

ManualHostBackend::ManualHostBackend(std::string id, tlp::ThreadPool* pool,
                                     minimpi::Comm* comm, FieldArena* arena)
    : id_(std::move(id)), pool_(pool), comm_(comm), arena_(arena) {
  if (comm_ != nullptr) {
    cart_ = std::make_unique<minimpi::Cart2D>(*comm_);
  }
}

ManualHostBackend::~ManualHostBackend() {
  if (arena_ != nullptr) arena_->release(std::move(store_));
}

void ManualHostBackend::setup(const tl::ProblemConfig& cfg) {
  PartitionGeom geom;
  geom.gnx = cfg.x_cells;
  geom.gny = cfg.y_cells;
  geom.halo = cfg.halo_depth;
  if (cart_ != nullptr) {
    const auto [cx, cy] = cart_->coords();
    const auto [x0, x1] = minimpi::block_range(geom.gnx, cart_->px(), cx);
    const auto [y0, y1] = minimpi::block_range(geom.gny, cart_->py(), cy);
    geom.x0 = x0;
    geom.y0 = y0;
    geom.nx = x1 - x0;
    geom.ny = y1 - y0;
  } else {
    geom.nx = geom.gnx;
    geom.ny = geom.gny;
  }
  // First-touch through the pool: each worker pages in the rows it will
  // later compute, so on NUMA hosts field rows live on the worker's node.
  // With an arena the slab is leased instead — already mapped (and NUMA-
  // placed) by an earlier solve with this geometry, re-zeroed to the same
  // state a fresh allocation would have.
  store_ = arena_ != nullptr ? arena_->acquire(geom, pool_)
                             : std::make_unique<FieldStore>(geom, pool_);

  const StateSampler sampler(cfg);
  cell_volume_ = sampler.cell_volume();
  CellView density = store_->view(FieldId::kDensity);
  CellView energy0 = store_->view(FieldId::kEnergy0);
  CellView energy1 = store_->view(FieldId::kEnergy1);
  // Paint owned cells (global indexing through the sampler keeps all
  // variants bit-identical); halos come from the first update_halo.
  for (int j = 0; j < geom.ny; ++j) {
    for (int i = 0; i < geom.nx; ++i) {
      const int gi = geom.x0 + i;
      const int gj = geom.y0 + j;
      density(i, j) = sampler.density_at(gi, gj);
      energy0(i, j) = sampler.energy_at(gi, gj);
      energy1(i, j) = energy0(i, j);
    }
  }
  update_halo({FieldId::kDensity, FieldId::kEnergy0, FieldId::kEnergy1},
              geom.halo);
}

template <typename RowFn>
void ManualHostBackend::rows(const RowFn& fn) {
  const int ny = geom().ny;
  if (pool_ != nullptr) {
    pool_->parallel_for(0, ny, [&](long lo, long hi) {
      fn(static_cast<int>(lo), static_cast<int>(hi));
    });
  } else {
    fn(0, ny);
  }
}

template <typename MapFn>
double ManualHostBackend::reduce_rows(const MapFn& fn) {
  const int ny = geom().ny;
  double local = 0.0;
  if (pool_ != nullptr) {
    local = pool_->parallel_reduce<double>(
        0, ny, 0.0,
        [&](long lo, long hi) {
          return fn(static_cast<int>(lo), static_cast<int>(hi));
        },
        [](double a, double b) { return a + b; });
  } else {
    local = fn(0, ny);
  }
  if (comm_ != nullptr) {
    local = comm_->allreduce(local, minimpi::ReduceOp::kSum);
  }
  return local;
}

void ManualHostBackend::compute_coefficients(tl::CoefficientKind kind) {
  // Row-split of the (ny+1)-row face loop.
  ConstCellView density = store_->cview(FieldId::kDensity);
  CellView kx = store_->view(FieldId::kKx);
  CellView ky = store_->view(FieldId::kKy);
  const int nx = geom().nx;
  const int ny = geom().ny;
  const auto band = [&](int j0, int j1) {
    coefficients_band(density, kx, ky, nx, ny, kind, j0, j1);
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(0, ny + 1, [&](long lo, long hi) {
      band(static_cast<int>(lo), static_cast<int>(hi));
    });
  } else {
    band(0, ny + 1);
  }
  charge_kernel(geom(), ref::kCostCoefficients, comm_);
}

void ManualHostBackend::init_u_u0() {
  ConstCellView density = store_->cview(FieldId::kDensity);
  ConstCellView energy = store_->cview(FieldId::kEnergy1);
  CellView u = store_->view(FieldId::kU);
  CellView u0 = store_->view(FieldId::kU0);
  const int nx = geom().nx;
  rows([&](int j0, int j1) { init_u_band(density, energy, u, u0, nx, j0, j1); });
  charge_kernel(geom(), ref::kCostInitU, comm_);
}

void ManualHostBackend::apply_operator(FieldId in, FieldId out) {
  ConstCellView vin = store_->cview(in);
  CellView vout = store_->view(out);
  ConstCellView kx = store_->cview(FieldId::kKx);
  ConstCellView ky = store_->cview(FieldId::kKy);
  const int nx = geom().nx;
  rows([&](int j0, int j1) {
    op_band(vin, vout, kx, ky, rx_, ry_, nx, j0, j1);
  });
  charge_kernel(geom(), ref::kCostOperator, comm_);
}

double ManualHostBackend::apply_operator_dot(FieldId in, FieldId out) {
  if (!fused_operator_dot()) return Backend::apply_operator_dot(in, out);
  ConstCellView vin = store_->cview(in);
  CellView vout = store_->view(out);
  ConstCellView kx = store_->cview(FieldId::kKx);
  ConstCellView ky = store_->cview(FieldId::kKy);
  const int nx = geom().nx;
  const double result = reduce_rows([&](int j0, int j1) {
    return opdot_band(vin, vout, kx, ky, rx_, ry_, nx, j0, j1);
  });
  charge_kernel(geom(), ref::kCostOperatorDot, comm_, /*is_reduction=*/true);
  return result;
}

void ManualHostBackend::compute_residual() {
  ConstCellView u = store_->cview(FieldId::kU);
  ConstCellView u0 = store_->cview(FieldId::kU0);
  CellView r = store_->view(FieldId::kR);
  ConstCellView kx = store_->cview(FieldId::kKx);
  ConstCellView ky = store_->cview(FieldId::kKy);
  const int nx = geom().nx;
  rows([&](int j0, int j1) {
    residual_band(u, u0, r, kx, ky, rx_, ry_, nx, j0, j1);
  });
  charge_kernel(geom(), ref::kCostResidual, comm_);
}

template <typename BandFn>
void ManualHostBackend::overlap_exchange(FieldId exchanged,
                                         const BandFn& band) {
  const int nx = geom().nx;
  const int ny = geom().ny;
  HaloExchange hx(store_->view(exchanged), geom(), comm_, cart_.get(),
                  /*depth=*/1);
  hx.begin();
  if (nx >= 3 && ny >= 3) {
    // Interior cells read no halo value, so they compute while the strips
    // are in flight; the one-cell boundary ring waits for the receives.
    if (pool_ != nullptr) {
      pool_->parallel_for(1, ny - 1, [&](long lo, long hi) {
        band(1, nx - 2, static_cast<int>(lo), static_cast<int>(hi));
      });
    } else {
      band(1, nx - 2, 1, ny - 1);
    }
    hx.finish();
    band(0, nx, 0, 1);
    band(0, nx, ny - 1, ny);
    band(0, 1, 1, ny - 1);
    band(nx - 1, 1, 1, ny - 1);
  } else {
    // Degenerate block: every cell touches the halo; no interior to overlap.
    hx.finish();
    rows([&](int j0, int j1) { band(0, nx, j0, j1); });
  }
}

void ManualHostBackend::exchange_apply_operator(FieldId in, FieldId out) {
  if (comm_ == nullptr) return Backend::exchange_apply_operator(in, out);
  ConstCellView vin = store_->cview(in);
  CellView vout = store_->view(out);
  ConstCellView kx = store_->cview(FieldId::kKx);
  ConstCellView ky = store_->cview(FieldId::kKy);
  overlap_exchange(in, [&](int i0, int bnx, int j0, int j1) {
    op_band(xshift(vin, i0), xshift(vout, i0), xshift(kx, i0), xshift(ky, i0),
            rx_, ry_, bnx, j0, j1);
  });
  charge_kernel(geom(), ref::kCostOperator, comm_);
}

double ManualHostBackend::exchange_apply_operator_dot(FieldId in, FieldId out) {
  if (comm_ == nullptr) return Backend::exchange_apply_operator_dot(in, out);
  // Overlapped operator, then the canonical dot pass: its per-row
  // row_reduce4(in * out) is exactly the association the fused kernel folds
  // its reduction through, so the value matches the blocking path bitwise.
  exchange_apply_operator(in, out);
  return dot(in, out);
}

void ManualHostBackend::exchange_compute_residual() {
  if (comm_ == nullptr) return Backend::exchange_compute_residual();
  ConstCellView u = store_->cview(FieldId::kU);
  ConstCellView u0 = store_->cview(FieldId::kU0);
  CellView r = store_->view(FieldId::kR);
  ConstCellView kx = store_->cview(FieldId::kKx);
  ConstCellView ky = store_->cview(FieldId::kKy);
  overlap_exchange(FieldId::kU, [&](int i0, int bnx, int j0, int j1) {
    residual_band(xshift(u, i0), xshift(u0, i0), xshift(r, i0), xshift(kx, i0),
                  xshift(ky, i0), rx_, ry_, bnx, j0, j1);
  });
  charge_kernel(geom(), ref::kCostResidual, comm_);
}

double ManualHostBackend::exchange_jacobi_iterate() {
  if (comm_ == nullptr) return Backend::exchange_jacobi_iterate();
  ConstCellView uold = store_->cview(FieldId::kU);
  ConstCellView u0 = store_->cview(FieldId::kU0);
  CellView w = store_->view(FieldId::kW);
  ConstCellView kx = store_->cview(FieldId::kKx);
  ConstCellView ky = store_->cview(FieldId::kKy);
  // Sweep with the exchange in flight; per-band error partials are discarded
  // because the split changes their association.
  overlap_exchange(FieldId::kU, [&](int i0, int bnx, int j0, int j1) {
    (void)jacobi_band(xshift(uold, i0), xshift(u0, i0), xshift(w, i0),
                      xshift(kx, i0), xshift(ky, i0), rx_, ry_, bnx, j0, j1);
  });
  ConstCellView wc = store_->cview(FieldId::kW);
  const int nx = geom().nx;
  const double err = reduce_rows(
      [&](int j0, int j1) { return absdiff_band(wc, uold, nx, j0, j1); });
  store_->swap_fields(FieldId::kW, FieldId::kU);
  charge_kernel(geom(), ref::kCostJacobi, comm_);
  charge_kernel(geom(), ref::kCostDot, comm_, /*is_reduction=*/true);
  return err;
}

void ManualHostBackend::copy_field(FieldId src, FieldId dst) {
  ConstCellView s = store_->cview(src);
  CellView d = store_->view(dst);
  const int nx = geom().nx;
  rows([&](int j0, int j1) { copy_band(s, d, nx, j0, j1); });
  charge_kernel(geom(), ref::kCostCopy, comm_);
}

void ManualHostBackend::scale_copy(FieldId dst, FieldId src, double sc) {
  ConstCellView s = store_->cview(src);
  CellView d = store_->view(dst);
  const int nx = geom().nx;
  rows([&](int j0, int j1) { scale_band(d, s, sc, nx, j0, j1); });
  charge_kernel(geom(), ref::kCostScaleCopy, comm_);
}

double ManualHostBackend::dot(FieldId a, FieldId b) {
  ConstCellView va = store_->cview(a);
  ConstCellView vb = store_->cview(b);
  const int nx = geom().nx;
  const double result = reduce_rows(
      [&](int j0, int j1) { return dot_band(va, vb, nx, j0, j1); });
  charge_kernel(geom(), ref::kCostDot, comm_, /*is_reduction=*/true);
  return result;
}

void ManualHostBackend::axpy(FieldId y, double a, FieldId x) {
  CellView vy = store_->view(y);
  ConstCellView vx = store_->cview(x);
  const int nx = geom().nx;
  rows([&](int j0, int j1) { axpy_band(vy, a, vx, nx, j0, j1); });
  charge_kernel(geom(), ref::kCostAxpy, comm_);
}

void ManualHostBackend::zaxpy(FieldId p, double beta, FieldId z) {
  CellView vp = store_->view(p);
  ConstCellView vz = store_->cview(z);
  const int nx = geom().nx;
  rows([&](int j0, int j1) { zaxpy_band(vp, beta, vz, nx, j0, j1); });
  charge_kernel(geom(), ref::kCostZaxpy, comm_);
}

void ManualHostBackend::precondition(FieldId dst, FieldId src) {
  CellView d = store_->view(dst);
  ConstCellView s = store_->cview(src);
  ConstCellView kx = store_->cview(FieldId::kKx);
  ConstCellView ky = store_->cview(FieldId::kKy);
  const int nx = geom().nx;
  rows([&](int j0, int j1) {
    precondition_band(d, s, kx, ky, rx_, ry_, nx, j0, j1);
  });
  charge_kernel(geom(), ref::kCostOperator, comm_);
}

void ManualHostBackend::smooth_update(FieldId acc, FieldId res, FieldId w,
                                      FieldId sd, double alpha, double beta) {
  CellView vacc = store_->view(acc);
  CellView vres = store_->view(res);
  ConstCellView vw = store_->cview(w);
  CellView vsd = store_->view(sd);
  const int nx = geom().nx;
  rows([&](int j0, int j1) {
    smooth_band(vacc, vres, vw, vsd, alpha, beta, nx, j0, j1);
  });
  charge_kernel(geom(), ref::kCostSmooth, comm_);
}

double ManualHostBackend::jacobi_iterate() {
  // Sweep from u (whose halo the solver just refreshed) into w, then commit
  // by swapping the two slabs instead of paying a copy-back pass.  The
  // solver refreshes u's halo before every read, so the stale halo the swap
  // leaves on the new u is never observed.
  ConstCellView uold = store_->cview(FieldId::kU);
  ConstCellView u0 = store_->cview(FieldId::kU0);
  CellView w = store_->view(FieldId::kW);
  ConstCellView kx = store_->cview(FieldId::kKx);
  ConstCellView ky = store_->cview(FieldId::kKy);
  const int nx = geom().nx;
  const double err = reduce_rows([&](int j0, int j1) {
    return jacobi_band(uold, u0, w, kx, ky, rx_, ry_, nx, j0, j1);
  });
  store_->swap_fields(FieldId::kW, FieldId::kU);
  charge_kernel(geom(), ref::kCostJacobi, comm_, /*is_reduction=*/true);
  return err;
}

FieldSummary ManualHostBackend::field_summary() {
  ConstCellView density = store_->cview(FieldId::kDensity);
  ConstCellView energy = store_->cview(FieldId::kEnergy0);
  ConstCellView u = store_->cview(FieldId::kU);
  const int nx = geom().nx;
  const int ny = geom().ny;
  const double vol_cell = cell_volume_;

  SummaryQuad total;
  if (pool_ != nullptr) {
    // Per-thread partials combined in thread order (deterministic), same as
    // every other reduction here — no mutex on the accumulation path.
    total = pool_->parallel_reduce<SummaryQuad>(
        0, ny, SummaryQuad{},
        [&](long lo, long hi) {
          return summary_band(density, energy, u, vol_cell, nx,
                              static_cast<int>(lo), static_cast<int>(hi));
        },
        [](SummaryQuad a, const SummaryQuad& b) {
          a.vol += b.vol;
          a.mass += b.mass;
          a.ie += b.ie;
          a.temp += b.temp;
          return a;
        });
  } else {
    total = summary_band(density, energy, u, vol_cell, nx, 0, ny);
  }
  FieldSummary s{total.vol, total.mass, total.ie, total.temp};
  if (comm_ != nullptr) {
    double vals[4] = {s.vol, s.mass, s.ie, s.temp};
    comm_->allreduce(tl::span<double>(vals), minimpi::ReduceOp::kSum);
    s = FieldSummary{vals[0], vals[1], vals[2], vals[3]};
  }
  charge_kernel(geom(), ref::kCostSummary, comm_, /*is_reduction=*/true);
  return s;
}

void ManualHostBackend::update_halo(std::initializer_list<FieldId> fields,
                                    int depth) {
  for (const FieldId f : fields) {
    exchange_and_reflect(store_->view(f), geom(), comm_, cart_.get(), depth);
  }
}

void ManualHostBackend::counter_fence(CounterFence phase) {
  if (comm_ != nullptr) tea::counter_fence(*comm_, phase);
}

void ManualHostBackend::finalise() {
  ConstCellView u = store_->cview(FieldId::kU);
  ConstCellView density = store_->cview(FieldId::kDensity);
  CellView energy = store_->view(FieldId::kEnergy1);
  const int nx = geom().nx;
  rows([&](int j0, int j1) { finalise_band(u, density, energy, nx, j0, j1); });
  charge_kernel(geom(), ref::kCostFinalise, comm_);
}

tea::Backend::LocalExtent ManualHostBackend::local_extent() const {
  const PartitionGeom& g = geom();
  return LocalExtent{g.x0, g.y0, g.nx, g.ny, g.gnx, g.gny};
}

void ManualHostBackend::read_field(FieldId f, tl::span<double> out) {
  const PartitionGeom& g = geom();
  TL_REQUIRE(out.size() >= static_cast<std::size_t>(g.cells()),
             "read_field buffer too small");
  ConstCellView v = store_->cview(f);
  for (int j = 0; j < g.ny; ++j) {
    for (int i = 0; i < g.nx; ++i) {
      out[static_cast<std::size_t>(j) * g.nx + i] = v(i, j);
    }
  }
}

std::int64_t ManualHostBackend::working_set_bytes() const {
  std::int64_t local = store_->working_set_bytes();
  // Global working set: all ranks' slabs.
  if (comm_ != nullptr) {
    local = static_cast<std::int64_t>(local) * comm_->size();
  }
  return local;
}

}  // namespace tea
