#include "core/backends/manual_host.hpp"

#include <cmath>
#include <mutex>
#include <vector>

#include "core/backends/ref_kernels.hpp"
#include "core/halo.hpp"
#include "core/problem.hpp"
#include "machine/instrumentation.hpp"

namespace tea {

namespace {
machine::Instrumentation& instr() { return machine::Instrumentation::global(); }
}  // namespace

ManualHostBackend::ManualHostBackend(std::string id, tlp::ThreadPool* pool,
                                     minimpi::Comm* comm)
    : id_(std::move(id)), pool_(pool), comm_(comm) {
  if (comm_ != nullptr) {
    cart_ = std::make_unique<minimpi::Cart2D>(*comm_);
  }
}

void ManualHostBackend::setup(const tl::ProblemConfig& cfg) {
  PartitionGeom geom;
  geom.gnx = cfg.x_cells;
  geom.gny = cfg.y_cells;
  geom.halo = cfg.halo_depth;
  if (cart_ != nullptr) {
    const auto [cx, cy] = cart_->coords();
    const auto [x0, x1] = minimpi::block_range(geom.gnx, cart_->px(), cx);
    const auto [y0, y1] = minimpi::block_range(geom.gny, cart_->py(), cy);
    geom.x0 = x0;
    geom.y0 = y0;
    geom.nx = x1 - x0;
    geom.ny = y1 - y0;
  } else {
    geom.nx = geom.gnx;
    geom.ny = geom.gny;
  }
  store_ = std::make_unique<FieldStore>(geom);

  const StateSampler sampler(cfg);
  cell_volume_ = sampler.cell_volume();
  CellView density = store_->view(FieldId::kDensity);
  CellView energy0 = store_->view(FieldId::kEnergy0);
  CellView energy1 = store_->view(FieldId::kEnergy1);
  // Paint owned cells (global indexing through the sampler keeps all
  // variants bit-identical); halos come from the first update_halo.
  for (int j = 0; j < geom.ny; ++j) {
    for (int i = 0; i < geom.nx; ++i) {
      const int gi = geom.x0 + i;
      const int gj = geom.y0 + j;
      density(i, j) = sampler.density_at(gi, gj);
      energy0(i, j) = sampler.energy_at(gi, gj);
      energy1(i, j) = energy0(i, j);
    }
  }
  update_halo({FieldId::kDensity, FieldId::kEnergy0, FieldId::kEnergy1},
              geom.halo);
}

template <typename RowFn>
void ManualHostBackend::rows(const RowFn& fn) {
  const int ny = geom().ny;
  if (pool_ != nullptr) {
    pool_->parallel_for(0, ny, [&](long lo, long hi) {
      fn(static_cast<int>(lo), static_cast<int>(hi));
    });
  } else {
    fn(0, ny);
  }
}

template <typename MapFn>
double ManualHostBackend::reduce_rows(const MapFn& fn) {
  const int ny = geom().ny;
  double local = 0.0;
  if (pool_ != nullptr) {
    local = pool_->parallel_reduce<double>(
        0, ny, 0.0,
        [&](long lo, long hi) {
          return fn(static_cast<int>(lo), static_cast<int>(hi));
        },
        [](double a, double b) { return a + b; });
  } else {
    local = fn(0, ny);
  }
  if (comm_ != nullptr) {
    local = comm_->allreduce(local, minimpi::ReduceOp::kSum);
  }
  return local;
}

namespace {
/// Charge one kernel's footprint: local traffic always (per-rank sums give
/// the global bytes), dispatch counted once per logical kernel.
void charge_kernel(const PartitionGeom& g, const ref::KernelCost& c,
                   minimpi::Comm* comm, bool is_reduction = false) {
  const std::int64_t cells = g.cells();
  instr().add_traffic(cells * 8 * c.reads, cells * 8 * c.writes,
                      cells * c.flops);
  if (comm == nullptr || comm->rank() == 0) {
    instr().add_launch();
    if (is_reduction) instr().add_reduction();
  }
}
}  // namespace

void ManualHostBackend::compute_coefficients(tl::CoefficientKind kind) {
  // Row-split of the (ny+1)-row face loop; ref kernel handles a row band.
  ConstCellView density = store_->cview(FieldId::kDensity);
  CellView kx = store_->view(FieldId::kKx);
  CellView ky = store_->view(FieldId::kKy);
  const int nx = geom().nx;
  const int ny = geom().ny;
  const auto band = [&](int j0, int j1) {
    for (int j = j0; j < j1; ++j) {
      for (int i = 0; i <= nx; ++i) {
        const double wc = ref::conduction(density(i, j), kind);
        if (j < ny) {
          const double wl = ref::conduction(density(i - 1, j), kind);
          kx(i, j) = (wl + wc) / (2.0 * wl * wc);
        }
        if (i < nx) {
          const double wd = ref::conduction(density(i, j - 1), kind);
          ky(i, j) = (wd + wc) / (2.0 * wd * wc);
        }
      }
    }
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(0, ny + 1, [&](long lo, long hi) {
      band(static_cast<int>(lo), static_cast<int>(hi));
    });
  } else {
    band(0, ny + 1);
  }
  charge_kernel(geom(), ref::kCostCoefficients, comm_);
}

void ManualHostBackend::init_u_u0() {
  ConstCellView density = store_->cview(FieldId::kDensity);
  ConstCellView energy = store_->cview(FieldId::kEnergy1);
  CellView u = store_->view(FieldId::kU);
  CellView u0 = store_->view(FieldId::kU0);
  const int nx = geom().nx;
  rows([&](int j0, int j1) {
    for (int j = j0; j < j1; ++j) {
      for (int i = 0; i < nx; ++i) {
        const double v = energy(i, j) * density(i, j);
        u(i, j) = v;
        u0(i, j) = v;
      }
    }
  });
  charge_kernel(geom(), ref::kCostInitU, comm_);
}

void ManualHostBackend::apply_operator(FieldId in, FieldId out) {
  ConstCellView vin = store_->cview(in);
  CellView vout = store_->view(out);
  ConstCellView kx = store_->cview(FieldId::kKx);
  ConstCellView ky = store_->cview(FieldId::kKy);
  const int nx = geom().nx;
  rows([&](int j0, int j1) {
    for (int j = j0; j < j1; ++j) {
      for (int i = 0; i < nx; ++i) {
        vout(i, j) = ref::apply_operator_at(vin, kx, ky, rx_, ry_, i, j);
      }
    }
  });
  charge_kernel(geom(), ref::kCostOperator, comm_);
}

void ManualHostBackend::compute_residual() {
  ConstCellView u = store_->cview(FieldId::kU);
  ConstCellView u0 = store_->cview(FieldId::kU0);
  CellView r = store_->view(FieldId::kR);
  ConstCellView kx = store_->cview(FieldId::kKx);
  ConstCellView ky = store_->cview(FieldId::kKy);
  const int nx = geom().nx;
  rows([&](int j0, int j1) {
    for (int j = j0; j < j1; ++j) {
      for (int i = 0; i < nx; ++i) {
        r(i, j) = u0(i, j) - ref::apply_operator_at(u, kx, ky, rx_, ry_, i, j);
      }
    }
  });
  charge_kernel(geom(), ref::kCostResidual, comm_);
}

void ManualHostBackend::copy_field(FieldId src, FieldId dst) {
  ConstCellView s = store_->cview(src);
  CellView d = store_->view(dst);
  const int nx = geom().nx;
  rows([&](int j0, int j1) {
    for (int j = j0; j < j1; ++j) {
      for (int i = 0; i < nx; ++i) d(i, j) = s(i, j);
    }
  });
  charge_kernel(geom(), ref::kCostCopy, comm_);
}

void ManualHostBackend::scale_copy(FieldId dst, FieldId src, double sc) {
  ConstCellView s = store_->cview(src);
  CellView d = store_->view(dst);
  const int nx = geom().nx;
  rows([&](int j0, int j1) {
    for (int j = j0; j < j1; ++j) {
      for (int i = 0; i < nx; ++i) d(i, j) = sc * s(i, j);
    }
  });
  charge_kernel(geom(), ref::kCostScaleCopy, comm_);
}

double ManualHostBackend::dot(FieldId a, FieldId b) {
  ConstCellView va = store_->cview(a);
  ConstCellView vb = store_->cview(b);
  const int nx = geom().nx;
  const double result = reduce_rows([&](int j0, int j1) {
    double acc = 0.0;
    for (int j = j0; j < j1; ++j) {
      for (int i = 0; i < nx; ++i) acc += va(i, j) * vb(i, j);
    }
    return acc;
  });
  charge_kernel(geom(), ref::kCostDot, comm_, /*is_reduction=*/true);
  return result;
}

void ManualHostBackend::axpy(FieldId y, double a, FieldId x) {
  CellView vy = store_->view(y);
  ConstCellView vx = store_->cview(x);
  const int nx = geom().nx;
  rows([&](int j0, int j1) {
    for (int j = j0; j < j1; ++j) {
      for (int i = 0; i < nx; ++i) vy(i, j) += a * vx(i, j);
    }
  });
  charge_kernel(geom(), ref::kCostAxpy, comm_);
}

void ManualHostBackend::zaxpy(FieldId p, double beta, FieldId z) {
  CellView vp = store_->view(p);
  ConstCellView vz = store_->cview(z);
  const int nx = geom().nx;
  rows([&](int j0, int j1) {
    for (int j = j0; j < j1; ++j) {
      for (int i = 0; i < nx; ++i) vp(i, j) = vz(i, j) + beta * vp(i, j);
    }
  });
  charge_kernel(geom(), ref::kCostZaxpy, comm_);
}

void ManualHostBackend::precondition(FieldId dst, FieldId src) {
  CellView d = store_->view(dst);
  ConstCellView s = store_->cview(src);
  ConstCellView kx = store_->cview(FieldId::kKx);
  ConstCellView ky = store_->cview(FieldId::kKy);
  const int nx = geom().nx;
  rows([&](int j0, int j1) {
    for (int j = j0; j < j1; ++j) {
      for (int i = 0; i < nx; ++i) {
        const double diag = 1.0 + rx_ * (kx(i + 1, j) + kx(i, j)) +
                            ry_ * (ky(i, j + 1) + ky(i, j));
        d(i, j) = s(i, j) / diag;
      }
    }
  });
  charge_kernel(geom(), ref::kCostOperator, comm_);
}

void ManualHostBackend::smooth_update(FieldId acc, FieldId res, FieldId w,
                                      FieldId sd, double alpha, double beta) {
  CellView vacc = store_->view(acc);
  CellView vres = store_->view(res);
  ConstCellView vw = store_->cview(w);
  CellView vsd = store_->view(sd);
  const int nx = geom().nx;
  rows([&](int j0, int j1) {
    for (int j = j0; j < j1; ++j) {
      for (int i = 0; i < nx; ++i) {
        vacc(i, j) += vsd(i, j);
        vres(i, j) -= vw(i, j);
        vsd(i, j) = alpha * vsd(i, j) + beta * vres(i, j);
      }
    }
  });
  charge_kernel(geom(), ref::kCostSmooth, comm_);
}

double ManualHostBackend::jacobi_iterate() {
  // Sweep from u (whose halo the solver just refreshed) into w, then commit
  // w back to u; avoids ever reading a stale scratch halo.
  ConstCellView uold = store_->cview(FieldId::kU);
  ConstCellView u0 = store_->cview(FieldId::kU0);
  CellView w = store_->view(FieldId::kW);
  ConstCellView kx = store_->cview(FieldId::kKx);
  ConstCellView ky = store_->cview(FieldId::kKy);
  const int nx = geom().nx;
  const double err = reduce_rows([&](int j0, int j1) {
    double band_err = 0.0;
    for (int j = j0; j < j1; ++j) {
      for (int i = 0; i < nx; ++i) {
        const double diag = 1.0 + rx_ * (kx(i + 1, j) + kx(i, j)) +
                            ry_ * (ky(i, j + 1) + ky(i, j));
        const double off = rx_ * (kx(i + 1, j) * uold(i + 1, j) +
                                  kx(i, j) * uold(i - 1, j)) +
                           ry_ * (ky(i, j + 1) * uold(i, j + 1) +
                                  ky(i, j) * uold(i, j - 1));
        const double unew = (u0(i, j) + off) / diag;
        w(i, j) = unew;
        band_err += std::fabs(unew - uold(i, j));
      }
    }
    return band_err;
  });
  copy_field(FieldId::kW, FieldId::kU);
  charge_kernel(geom(), ref::kCostJacobi, comm_, /*is_reduction=*/true);
  return err;
}

FieldSummary ManualHostBackend::field_summary() {
  ConstCellView density = store_->cview(FieldId::kDensity);
  ConstCellView energy = store_->cview(FieldId::kEnergy0);
  ConstCellView u = store_->cview(FieldId::kU);
  const int nx = geom().nx;
  const double vol_cell = cell_volume_;

  // Four simultaneous reductions, folded through one pass.
  struct Quad {
    double vol, mass, ie, temp;
  };
  const int ny = geom().ny;
  std::vector<Quad> partials;
  FieldSummary s;
  const auto band = [&](int j0, int j1) {
    Quad q{0, 0, 0, 0};
    for (int j = j0; j < j1; ++j) {
      for (int i = 0; i < nx; ++i) {
        q.vol += vol_cell;
        q.mass += density(i, j) * vol_cell;
        q.ie += density(i, j) * energy(i, j) * vol_cell;
        q.temp += u(i, j) * vol_cell;
      }
    }
    return q;
  };
  if (pool_ != nullptr) {
    // Reduce each component via the pool's deterministic combine.
    Quad total{0, 0, 0, 0};
    std::mutex m;
    pool_->parallel_for(0, ny, [&](long lo, long hi) {
      const Quad q = band(static_cast<int>(lo), static_cast<int>(hi));
      std::lock_guard<std::mutex> lock(m);
      total.vol += q.vol;
      total.mass += q.mass;
      total.ie += q.ie;
      total.temp += q.temp;
    });
    s = FieldSummary{total.vol, total.mass, total.ie, total.temp};
  } else {
    const Quad q = band(0, ny);
    s = FieldSummary{q.vol, q.mass, q.ie, q.temp};
  }
  if (comm_ != nullptr) {
    double vals[4] = {s.vol, s.mass, s.ie, s.temp};
    comm_->allreduce(tl::span<double>(vals), minimpi::ReduceOp::kSum);
    s = FieldSummary{vals[0], vals[1], vals[2], vals[3]};
  }
  charge_kernel(geom(), ref::kCostSummary, comm_, /*is_reduction=*/true);
  return s;
}

void ManualHostBackend::update_halo(std::initializer_list<FieldId> fields,
                                    int depth) {
  for (const FieldId f : fields) {
    exchange_and_reflect(store_->view(f), geom(), comm_, cart_.get(), depth);
  }
}

void ManualHostBackend::finalise() {
  ConstCellView u = store_->cview(FieldId::kU);
  ConstCellView density = store_->cview(FieldId::kDensity);
  CellView energy = store_->view(FieldId::kEnergy1);
  const int nx = geom().nx;
  rows([&](int j0, int j1) {
    for (int j = j0; j < j1; ++j) {
      for (int i = 0; i < nx; ++i) energy(i, j) = u(i, j) / density(i, j);
    }
  });
  charge_kernel(geom(), ref::kCostFinalise, comm_);
}

tea::Backend::LocalExtent ManualHostBackend::local_extent() const {
  const PartitionGeom& g = geom();
  return LocalExtent{g.x0, g.y0, g.nx, g.ny, g.gnx, g.gny};
}

void ManualHostBackend::read_field(FieldId f, tl::span<double> out) {
  const PartitionGeom& g = geom();
  TL_REQUIRE(out.size() >= static_cast<std::size_t>(g.cells()),
             "read_field buffer too small");
  ConstCellView v = store_->cview(f);
  for (int j = 0; j < g.ny; ++j) {
    for (int i = 0; i < g.nx; ++i) {
      out[static_cast<std::size_t>(j) * g.nx + i] = v(i, j);
    }
  }
}

std::int64_t ManualHostBackend::working_set_bytes() const {
  std::int64_t local = store_->working_set_bytes();
  // Global working set: all ranks' slabs.
  if (comm_ != nullptr) {
    local = static_cast<std::int64_t>(local) * comm_->size();
  }
  return local;
}

}  // namespace tea
