// manual_cuda.hpp — the hand-written CUDA TeaLeaf variant, on the simulated
// GPU: every field lives in device memory, kernels are grid/block launches,
// dot products are two-phase device reductions, and halos are refreshed by
// device-side reflection kernels (this variant is single-device, no MPI).
#pragma once

#include <array>
#include <memory>
#include <optional>

#include "core/backend.hpp"
#include "core/backends/field_store.hpp"
#include "simgpu/device_buffer.hpp"

namespace tea {

class ManualCudaBackend final : public Backend {
public:
  explicit ManualCudaBackend(simgpu::Device* device = nullptr);

  std::string id() const override { return "manual-cuda"; }
  void setup(const tl::ProblemConfig& cfg) override;

  void compute_coefficients(tl::CoefficientKind kind) override;
  void init_u_u0() override;
  void apply_operator(FieldId in, FieldId out) override;
  void compute_residual() override;
  void copy_field(FieldId src, FieldId dst) override;
  void scale_copy(FieldId dst, FieldId src, double s) override;
  double dot(FieldId a, FieldId b) override;
  void axpy(FieldId y, double a, FieldId x) override;
  void zaxpy(FieldId p, double beta, FieldId z) override;
  void precondition(FieldId dst, FieldId src) override;
  void smooth_update(FieldId acc, FieldId res, FieldId w, FieldId sd,
                     double alpha, double beta) override;
  double jacobi_iterate() override;
  FieldSummary field_summary() override;
  void update_halo(std::initializer_list<FieldId> fields, int depth) override;
  void finalise() override;
  std::int64_t working_set_bytes() const override;
  LocalExtent local_extent() const override {
    return LocalExtent{0, 0, geom_.nx, geom_.ny, geom_.gnx, geom_.gny};
  }
  void read_field(FieldId f, tl::span<double> out) override;

  /// Download one field's interior into a host FieldStore (tests use this to
  /// compare against the reference backend).
  void download_field(FieldId f, FieldStore& host) const;

private:
  CellView dv(FieldId f) const;

  simgpu::Device& device_;
  PartitionGeom geom_;
  double cell_volume_ = 0.0;
  std::array<std::optional<simgpu::DeviceBuffer<double>>, kNumFields> fields_;
};

}  // namespace tea
