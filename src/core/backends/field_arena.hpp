// field_arena.hpp — a pool of FieldStore slabs keyed by partition geometry.
//
// A TeaLeaf solve allocates one multi-field slab (tens of MB at production
// meshes) and pays a page-fault storm to first-touch it.  A service running
// thousands of solves over a handful of distinct meshes pays that cost once
// per (geometry, generation) here: released slabs are kept and handed back
// to the next solve with the same geometry, re-zeroed through the acquiring
// pool's static row partition.  Because the pages are already mapped — and
// were first-touched with the same partition the kernels use — the NUMA
// placement of every row survives reuse, and a reused store is bit-identical
// to a freshly constructed one (FieldStore::reset).
//
// Thread-safe: service workers acquire and release concurrently.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "core/backends/field_store.hpp"

namespace tea {

class FieldArena {
public:
  struct Stats {
    long allocated = 0;  // slabs constructed fresh
    long reused = 0;     // slabs served from the pool
  };

  /// Get a zeroed FieldStore for `geom`: a pooled slab with the same
  /// geometry when one is free (reset through `pool`), a fresh allocation
  /// otherwise.  Return it with release() when the solve is done.
  std::unique_ptr<FieldStore> acquire(const PartitionGeom& geom,
                                      tlp::ThreadPool* pool) {
    std::unique_ptr<FieldStore> store;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (auto it = free_.begin(); it != free_.end(); ++it) {
        if ((*it)->geom() == geom) {
          store = std::move(*it);
          free_.erase(it);
          ++stats_.reused;
          break;
        }
      }
      if (store == nullptr) ++stats_.allocated;
    }
    if (store != nullptr) {
      // Re-zero outside the lock: clearing a big slab must not serialise
      // the other workers' acquires.  This thread is the sole owner now.
      store->reset(pool);
      return store;
    }
    return std::make_unique<FieldStore>(geom, pool);
  }

  /// Return a store to the pool for reuse.  Null is tolerated (a backend
  /// that never completed setup).
  void release(std::unique_ptr<FieldStore> store) {
    if (store == nullptr) return;
    std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(std::move(store));
  }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

  /// Number of slabs currently pooled (test hook).
  std::size_t pooled() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return free_.size();
  }

private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<FieldStore>> free_;
  Stats stats_;
};

}  // namespace tea
