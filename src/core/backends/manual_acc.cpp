#include "core/backends/manual_acc.hpp"

#include <cmath>
#include "common/span.hpp"

#include "core/backends/ref_kernels.hpp"
#include "core/problem.hpp"

namespace tea {

namespace {
miniacc::KernelTraffic traffic(const PartitionGeom& g,
                               const ref::KernelCost& c) {
  const std::int64_t cells = g.cells();
  return miniacc::KernelTraffic{cells * 8 * c.reads, cells * 8 * c.writes,
                                cells * c.flops};
}
}  // namespace

ManualAccBackend::ManualAccBackend(miniacc::Target target) : target_(target) {}

ManualAccBackend::~ManualAccBackend() = default;

CellView ManualAccBackend::rv(FieldId f) const {
  double* base = mapped_[static_cast<std::size_t>(f)];
  return CellView{base + static_cast<std::ptrdiff_t>(geom_.halo) *
                             geom_.padded_nx() +
                      geom_.halo,
                  geom_.padded_nx()};
}

void ManualAccBackend::setup(const tl::ProblemConfig& cfg) {
  geom_ = PartitionGeom{};
  geom_.gnx = geom_.nx = cfg.x_cells;
  geom_.gny = geom_.ny = cfg.y_cells;
  geom_.halo = cfg.halo_depth;
  store_ = std::make_unique<FieldStore>(geom_);

  const StateSampler sampler(cfg);
  cell_volume_ = sampler.cell_volume();
  CellView density = store_->view(FieldId::kDensity);
  CellView energy0 = store_->view(FieldId::kEnergy0);
  CellView energy1 = store_->view(FieldId::kEnergy1);
  for (int j = 0; j < geom_.ny; ++j) {
    for (int i = 0; i < geom_.nx; ++i) {
      density(i, j) = sampler.density_at(i, j);
      energy0(i, j) = sampler.energy_at(i, j);
      energy1(i, j) = energy0(i, j);
    }
  }

  // `#pragma acc data copy(density, energy0, energy1, u, ...)` for the whole
  // run: every field enters the region; solver scratch uses `create`.
  region_ = std::make_unique<miniacc::DataRegion>(target_);
  const std::size_t padded = static_cast<std::size_t>(geom_.padded_cells());
  for (int f = 0; f < kNumFields; ++f) {
    const auto fid = static_cast<FieldId>(f);
    tl::span<double> span(store_->padded(fid), padded);
    const bool scratch = fid == FieldId::kP || fid == FieldId::kW ||
                         fid == FieldId::kZ || fid == FieldId::kSd ||
                         fid == FieldId::kRInner || fid == FieldId::kR;
    mapped_[static_cast<std::size_t>(f)] =
        scratch ? region_->create(span) : region_->copy(span);
  }

  update_halo({FieldId::kDensity, FieldId::kEnergy0, FieldId::kEnergy1},
              geom_.halo);
}

void ManualAccBackend::compute_coefficients(tl::CoefficientKind kind) {
  CellView density = rv(FieldId::kDensity);
  CellView kx = rv(FieldId::kKx);
  CellView ky = rv(FieldId::kKy);
  const int nx = geom_.nx;
  const int ny = geom_.ny;
  region_->parallel_loop_2d(
      "acc_coefficients", nx + 1, ny + 1,
      traffic(geom_, ref::kCostCoefficients), [=](int i, int j) {
        const double wc = ref::conduction(density(i, j), kind);
        if (j < ny) {
          const double wl = ref::conduction(density(i - 1, j), kind);
          kx(i, j) = (wl + wc) / (2.0 * wl * wc);
        }
        if (i < nx) {
          const double wd = ref::conduction(density(i, j - 1), kind);
          ky(i, j) = (wd + wc) / (2.0 * wd * wc);
        }
      });
}

void ManualAccBackend::init_u_u0() {
  CellView density = rv(FieldId::kDensity);
  CellView energy = rv(FieldId::kEnergy1);
  CellView u = rv(FieldId::kU);
  CellView u0 = rv(FieldId::kU0);
  region_->parallel_loop_2d("acc_init_u", geom_.nx, geom_.ny,
                            traffic(geom_, ref::kCostInitU), [=](int i, int j) {
                              const double v = energy(i, j) * density(i, j);
                              u(i, j) = v;
                              u0(i, j) = v;
                            });
}

void ManualAccBackend::apply_operator(FieldId in, FieldId out) {
  CellView vin = rv(in);
  CellView vout = rv(out);
  CellView kx = rv(FieldId::kKx);
  CellView ky = rv(FieldId::kKy);
  const double rx = rx_, ry = ry_;
  region_->parallel_loop_2d(
      "acc_smvp", geom_.nx, geom_.ny, traffic(geom_, ref::kCostOperator),
      [=](int i, int j) {
        const double diag = 1.0 + rx * (kx(i + 1, j) + kx(i, j)) +
                            ry * (ky(i, j + 1) + ky(i, j));
        vout(i, j) =
            diag * vin(i, j) -
            rx * (kx(i + 1, j) * vin(i + 1, j) + kx(i, j) * vin(i - 1, j)) -
            ry * (ky(i, j + 1) * vin(i, j + 1) + ky(i, j) * vin(i, j - 1));
      });
}

void ManualAccBackend::compute_residual() {
  CellView u = rv(FieldId::kU);
  CellView u0 = rv(FieldId::kU0);
  CellView r = rv(FieldId::kR);
  CellView kx = rv(FieldId::kKx);
  CellView ky = rv(FieldId::kKy);
  const double rx = rx_, ry = ry_;
  region_->parallel_loop_2d(
      "acc_residual", geom_.nx, geom_.ny, traffic(geom_, ref::kCostResidual),
      [=](int i, int j) {
        const double diag = 1.0 + rx * (kx(i + 1, j) + kx(i, j)) +
                            ry * (ky(i, j + 1) + ky(i, j));
        const double au =
            diag * u(i, j) -
            rx * (kx(i + 1, j) * u(i + 1, j) + kx(i, j) * u(i - 1, j)) -
            ry * (ky(i, j + 1) * u(i, j + 1) + ky(i, j) * u(i, j - 1));
        r(i, j) = u0(i, j) - au;
      });
}

void ManualAccBackend::copy_field(FieldId src, FieldId dst) {
  CellView s = rv(src);
  CellView d = rv(dst);
  region_->parallel_loop_2d("acc_copy", geom_.nx, geom_.ny,
                            traffic(geom_, ref::kCostCopy),
                            [=](int i, int j) { d(i, j) = s(i, j); });
}

void ManualAccBackend::scale_copy(FieldId dst, FieldId src, double sc) {
  CellView s = rv(src);
  CellView d = rv(dst);
  region_->parallel_loop_2d("acc_scale_copy", geom_.nx, geom_.ny,
                            traffic(geom_, ref::kCostScaleCopy),
                            [=](int i, int j) { d(i, j) = sc * s(i, j); });
}

double ManualAccBackend::dot(FieldId a, FieldId b) {
  CellView va = rv(a);
  CellView vb = rv(b);
  const int nx = geom_.nx;
  const long n = static_cast<long>(nx) * geom_.ny;
  return region_->parallel_reduce_sum("acc_dot", n, [=](long idx) {
    const int i = static_cast<int>(idx % nx);
    const int j = static_cast<int>(idx / nx);
    return va(i, j) * vb(i, j);
  });
}

void ManualAccBackend::axpy(FieldId y, double a, FieldId x) {
  CellView vy = rv(y);
  CellView vx = rv(x);
  region_->parallel_loop_2d("acc_axpy", geom_.nx, geom_.ny,
                            traffic(geom_, ref::kCostAxpy),
                            [=](int i, int j) { vy(i, j) += a * vx(i, j); });
}

void ManualAccBackend::zaxpy(FieldId p, double beta, FieldId z) {
  CellView vp = rv(p);
  CellView vz = rv(z);
  region_->parallel_loop_2d(
      "acc_zaxpy", geom_.nx, geom_.ny, traffic(geom_, ref::kCostZaxpy),
      [=](int i, int j) { vp(i, j) = vz(i, j) + beta * vp(i, j); });
}

void ManualAccBackend::precondition(FieldId dst, FieldId src) {
  CellView d = rv(dst);
  CellView s = rv(src);
  CellView kx = rv(FieldId::kKx);
  CellView ky = rv(FieldId::kKy);
  const double rx = rx_, ry = ry_;
  region_->parallel_loop_2d("acc_precondition", geom_.nx, geom_.ny,
                            traffic(geom_, ref::kCostOperator),
                            [=](int i, int j) {
                              const double diag =
                                  1.0 + rx * (kx(i + 1, j) + kx(i, j)) +
                                  ry * (ky(i, j + 1) + ky(i, j));
                              d(i, j) = s(i, j) / diag;
                            });
}

void ManualAccBackend::smooth_update(FieldId acc, FieldId res, FieldId w,
                                     FieldId sd, double alpha, double beta) {
  CellView vacc = rv(acc);
  CellView vres = rv(res);
  CellView vw = rv(w);
  CellView vsd = rv(sd);
  region_->parallel_loop_2d("acc_cheby_iterate", geom_.nx, geom_.ny,
                            traffic(geom_, ref::kCostSmooth),
                            [=](int i, int j) {
                              vacc(i, j) += vsd(i, j);
                              vres(i, j) -= vw(i, j);
                              vsd(i, j) = alpha * vsd(i, j) + beta * vres(i, j);
                            });
}

double ManualAccBackend::jacobi_iterate() {
  // Sweep u -> w with a reduction clause, then commit w back to u.
  CellView uold = rv(FieldId::kU);
  CellView u0 = rv(FieldId::kU0);
  CellView w = rv(FieldId::kW);
  CellView kx = rv(FieldId::kKx);
  CellView ky = rv(FieldId::kKy);
  const double rx = rx_, ry = ry_;
  const int nx = geom_.nx;
  const long n = static_cast<long>(nx) * geom_.ny;
  const double err = region_->parallel_reduce_sum("acc_jacobi", n, [=](long idx) {
    const int i = static_cast<int>(idx % nx);
    const int j = static_cast<int>(idx / nx);
    const double diag = 1.0 + rx * (kx(i + 1, j) + kx(i, j)) +
                        ry * (ky(i, j + 1) + ky(i, j));
    const double off =
        rx * (kx(i + 1, j) * uold(i + 1, j) + kx(i, j) * uold(i - 1, j)) +
        ry * (ky(i, j + 1) * uold(i, j + 1) + ky(i, j) * uold(i, j - 1));
    const double unew = (u0(i, j) + off) / diag;
    w(i, j) = unew;
    return std::fabs(unew - uold(i, j));
  });
  copy_field(FieldId::kW, FieldId::kU);
  return err;
}

FieldSummary ManualAccBackend::field_summary() {
  CellView density = rv(FieldId::kDensity);
  CellView energy = rv(FieldId::kEnergy0);
  CellView u = rv(FieldId::kU);
  const int nx = geom_.nx;
  const long n = static_cast<long>(nx) * geom_.ny;
  const double vol_cell = cell_volume_;
  FieldSummary s;
  s.vol = vol_cell * static_cast<double>(n);
  s.mass = region_->parallel_reduce_sum("acc_summary_mass", n, [=](long idx) {
    return density(static_cast<int>(idx % nx), static_cast<int>(idx / nx)) *
           vol_cell;
  });
  s.ie = region_->parallel_reduce_sum("acc_summary_ie", n, [=](long idx) {
    const int i = static_cast<int>(idx % nx);
    const int j = static_cast<int>(idx / nx);
    return density(i, j) * energy(i, j) * vol_cell;
  });
  s.temp = region_->parallel_reduce_sum("acc_summary_temp", n, [=](long idx) {
    return u(static_cast<int>(idx % nx), static_cast<int>(idx / nx)) *
           vol_cell;
  });
  return s;
}

void ManualAccBackend::update_halo(std::initializer_list<FieldId> fields,
                                   int depth) {
  const int nx = geom_.nx;
  const int ny = geom_.ny;
  for (const FieldId fid : fields) {
    CellView f = rv(fid);
    const std::int64_t edge_bytes =
        static_cast<std::int64_t>(depth) * (nx + ny) * 8;
    const miniacc::KernelTraffic t{edge_bytes, edge_bytes, 0};
    region_->parallel_loop_2d("acc_halo_x", depth, ny, t, [=](int k, int j) {
      f(-1 - k, j) = f(k, j);
      f(nx + k, j) = f(nx - 1 - k, j);
    });
    region_->parallel_loop_2d("acc_halo_y", nx + 2 * depth, depth, t,
                              [=](int ii, int k) {
                                const int i = ii - depth;
                                f(i, -1 - k) = f(i, k);
                                f(i, ny + k) = f(i, ny - 1 - k);
                              });
  }
}

void ManualAccBackend::finalise() {
  CellView u = rv(FieldId::kU);
  CellView density = rv(FieldId::kDensity);
  CellView energy = rv(FieldId::kEnergy1);
  region_->parallel_loop_2d(
      "acc_finalise", geom_.nx, geom_.ny, traffic(geom_, ref::kCostFinalise),
      [=](int i, int j) { energy(i, j) = u(i, j) / density(i, j); });
}

std::int64_t ManualAccBackend::working_set_bytes() const {
  return static_cast<std::int64_t>(kNumFields) * geom_.padded_cells() * 8;
}

void ManualAccBackend::read_field(FieldId f, tl::span<double> out) {
  sync_host(f);
  ConstCellView v = store_->cview(f);
  for (int j = 0; j < geom_.ny; ++j) {
    for (int i = 0; i < geom_.nx; ++i) {
      out[static_cast<std::size_t>(j) * geom_.nx + i] = v(i, j);
    }
  }
}

void ManualAccBackend::sync_host(FieldId f) {
  const std::size_t padded = static_cast<std::size_t>(geom_.padded_cells());
  region_->update_host(tl::span<double>(store_->padded(f), padded));
}

}  // namespace tea
