// kokkos_backend.hpp — TeaLeaf through minikokkos, following the structure of
// Martineau's Kokkos port: fields are rank-1 Views in the execution space's
// memory space, kernels are parallel_for/parallel_reduce over a 1D index
// space with explicit 2D index arithmetic, and initial conditions are
// painted on host mirrors then deep_copied in.
//
//   kokkos-omp  : KokkosBackend<kk::Threads>  (host pool)
//   kokkos-cuda : KokkosBackend<kk::SimGPU>   (simulated GPU)
#pragma once

#include <array>
#include <cmath>
#include <string>

#include "core/backend.hpp"
#include "core/backends/ref_kernels.hpp"
#include "core/problem.hpp"
#include "machine/instrumentation.hpp"
#include "minikokkos/minikokkos.hpp"

namespace tea {

template <typename Exec>
class KokkosBackend final : public Backend {
  using Space = typename kk::SpaceOf<Exec>::type;
  using FieldView = kk::View1D<double, Space>;
  using HostView = kk::View1D<double, kk::HostSpace>;

public:
  explicit KokkosBackend(std::string id) : id_(std::move(id)) {}

  std::string id() const override { return id_; }

  void setup(const tl::ProblemConfig& cfg) override {
    nx_ = cfg.x_cells;
    ny_ = cfg.y_cells;
    halo_ = cfg.halo_depth;
    pnx_ = nx_ + 2 * halo_;
    pny_ = ny_ + 2 * halo_;
    const std::size_t padded = static_cast<std::size_t>(pnx_) * pny_;
    for (int f = 0; f < kNumFields; ++f) {
      fields_[static_cast<std::size_t>(f)] = FieldView(
          std::string(field_name(static_cast<FieldId>(f))), padded);
    }

    const StateSampler sampler(cfg);
    cell_volume_ = sampler.cell_volume();
    HostView h_density("density_init", padded);
    HostView h_energy("energy_init", padded);
    const int halo = halo_;
    const int pnx = pnx_;
    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        const std::size_t idx =
            static_cast<std::size_t>(j + halo) * pnx + (i + halo);
        h_density(idx) = sampler.density_at(i, j);
        h_energy(idx) = sampler.energy_at(i, j);
      }
    }
    kk::deep_copy(view(FieldId::kDensity), h_density);
    kk::deep_copy(view(FieldId::kEnergy0), h_energy);
    kk::deep_copy(view(FieldId::kEnergy1), h_energy);

    update_halo({FieldId::kDensity, FieldId::kEnergy0, FieldId::kEnergy1},
                halo_);
  }

  void compute_coefficients(tl::CoefficientKind kind) override {
    auto density = view(FieldId::kDensity);
    auto kx = view(FieldId::kKx);
    auto ky = view(FieldId::kKy);
    const auto at = index_fn();
    const int nx = nx_;
    const int ny = ny_;
    kk::parallel_for(
        "tea_coefficients",
        kk::MDRangePolicy2<Exec>(0, ny + 1, 0, nx + 1),
        [=](long j, long i) {
          const double wc = ref::conduction(density(at(i, j)), kind);
          if (j < ny) {
            const double wl = ref::conduction(density(at(i - 1, j)), kind);
            kx(at(i, j)) = (wl + wc) / (2.0 * wl * wc);
          }
          if (i < nx) {
            const double wd = ref::conduction(density(at(i, j - 1)), kind);
            ky(at(i, j)) = (wd + wc) / (2.0 * wd * wc);
          }
        });
    charge(ref::kCostCoefficients);
  }

  void init_u_u0() override {
    auto density = view(FieldId::kDensity);
    auto energy = view(FieldId::kEnergy1);
    auto u = view(FieldId::kU);
    auto u0 = view(FieldId::kU0);
    const auto at = index_fn();
    kk::parallel_for("tea_init_u", interior_policy(), [=](long j, long i) {
      const double v = energy(at(i, j)) * density(at(i, j));
      u(at(i, j)) = v;
      u0(at(i, j)) = v;
    });
    charge(ref::kCostInitU);
  }

  void apply_operator(FieldId in, FieldId out) override {
    auto vin = view(in);
    auto vout = view(out);
    auto kx = view(FieldId::kKx);
    auto ky = view(FieldId::kKy);
    const auto at = index_fn();
    const double rx = rx_, ry = ry_;
    kk::parallel_for("tea_smvp", interior_policy(), [=](long j, long i) {
      const double diag = 1.0 + rx * (kx(at(i + 1, j)) + kx(at(i, j))) +
                          ry * (ky(at(i, j + 1)) + ky(at(i, j)));
      vout(at(i, j)) =
          diag * vin(at(i, j)) -
          rx * (kx(at(i + 1, j)) * vin(at(i + 1, j)) +
                kx(at(i, j)) * vin(at(i - 1, j))) -
          ry * (ky(at(i, j + 1)) * vin(at(i, j + 1)) +
                ky(at(i, j)) * vin(at(i, j - 1)));
    });
    charge(ref::kCostOperator);
  }

  void compute_residual() override {
    auto u = view(FieldId::kU);
    auto u0 = view(FieldId::kU0);
    auto r = view(FieldId::kR);
    auto kx = view(FieldId::kKx);
    auto ky = view(FieldId::kKy);
    const auto at = index_fn();
    const double rx = rx_, ry = ry_;
    kk::parallel_for("tea_residual", interior_policy(), [=](long j, long i) {
      const double diag = 1.0 + rx * (kx(at(i + 1, j)) + kx(at(i, j))) +
                          ry * (ky(at(i, j + 1)) + ky(at(i, j)));
      const double au = diag * u(at(i, j)) -
                        rx * (kx(at(i + 1, j)) * u(at(i + 1, j)) +
                              kx(at(i, j)) * u(at(i - 1, j))) -
                        ry * (ky(at(i, j + 1)) * u(at(i, j + 1)) +
                              ky(at(i, j)) * u(at(i, j - 1)));
      r(at(i, j)) = u0(at(i, j)) - au;
    });
    charge(ref::kCostResidual);
  }

  void copy_field(FieldId src, FieldId dst) override {
    auto s = view(src);
    auto d = view(dst);
    const auto at = index_fn();
    kk::parallel_for("tea_copy", interior_policy(),
                     [=](long j, long i) { d(at(i, j)) = s(at(i, j)); });
    charge(ref::kCostCopy);
  }

  void scale_copy(FieldId dst, FieldId src, double sc) override {
    auto s = view(src);
    auto d = view(dst);
    const auto at = index_fn();
    kk::parallel_for("tea_scale_copy", interior_policy(),
                     [=](long j, long i) { d(at(i, j)) = sc * s(at(i, j)); });
    charge(ref::kCostScaleCopy);
  }

  double dot(FieldId a, FieldId b) override {
    auto va = view(a);
    auto vb = view(b);
    const auto at = index_fn();
    const int nx = nx_;
    double result = 0.0;
    kk::parallel_reduce(
        "tea_dot", kk::RangePolicy<Exec>(0, static_cast<long>(nx) * ny_),
        [=](long idx, double& sum) {
          const long i = idx % nx;
          const long j = idx / nx;
          sum += va(at(i, j)) * vb(at(i, j));
        },
        result);
    charge(ref::kCostDot);
    return result;
  }

  void axpy(FieldId y, double a, FieldId x) override {
    auto vy = view(y);
    auto vx = view(x);
    const auto at = index_fn();
    kk::parallel_for("tea_axpy", interior_policy(),
                     [=](long j, long i) { vy(at(i, j)) += a * vx(at(i, j)); });
    charge(ref::kCostAxpy);
  }

  void zaxpy(FieldId p, double beta, FieldId z) override {
    auto vp = view(p);
    auto vz = view(z);
    const auto at = index_fn();
    kk::parallel_for("tea_zaxpy", interior_policy(), [=](long j, long i) {
      vp(at(i, j)) = vz(at(i, j)) + beta * vp(at(i, j));
    });
    charge(ref::kCostZaxpy);
  }

  void precondition(FieldId dst, FieldId src) override {
    auto d = view(dst);
    auto s = view(src);
    auto kx = view(FieldId::kKx);
    auto ky = view(FieldId::kKy);
    const auto at = index_fn();
    const double rx = rx_, ry = ry_;
    kk::parallel_for("tea_precondition", interior_policy(),
                     [=](long j, long i) {
                       const double diag =
                           1.0 + rx * (kx(at(i + 1, j)) + kx(at(i, j))) +
                           ry * (ky(at(i, j + 1)) + ky(at(i, j)));
                       d(at(i, j)) = s(at(i, j)) / diag;
                     });
    charge(ref::kCostOperator);
  }

  void smooth_update(FieldId acc, FieldId res, FieldId w, FieldId sd,
                     double alpha, double beta) override {
    auto vacc = view(acc);
    auto vres = view(res);
    auto vw = view(w);
    auto vsd = view(sd);
    const auto at = index_fn();
    kk::parallel_for("tea_cheby_iterate", interior_policy(),
                     [=](long j, long i) {
                       vacc(at(i, j)) += vsd(at(i, j));
                       vres(at(i, j)) -= vw(at(i, j));
                       vsd(at(i, j)) =
                           alpha * vsd(at(i, j)) + beta * vres(at(i, j));
                     });
    charge(ref::kCostSmooth);
  }

  double jacobi_iterate() override {
    // Sweep u -> w (halo of u freshly updated by the solver), then commit.
    auto uold = view(FieldId::kU);
    auto u0 = view(FieldId::kU0);
    auto w = view(FieldId::kW);
    auto kx = view(FieldId::kKx);
    auto ky = view(FieldId::kKy);
    const auto at = index_fn();
    const double rx = rx_, ry = ry_;
    const int nx = nx_;
    double err = 0.0;
    kk::parallel_reduce(
        "tea_jacobi", kk::RangePolicy<Exec>(0, static_cast<long>(nx) * ny_),
        [=](long idx, double& e) {
          const long i = idx % nx;
          const long j = idx / nx;
          const double diag = 1.0 + rx * (kx(at(i + 1, j)) + kx(at(i, j))) +
                              ry * (ky(at(i, j + 1)) + ky(at(i, j)));
          const double off = rx * (kx(at(i + 1, j)) * uold(at(i + 1, j)) +
                                   kx(at(i, j)) * uold(at(i - 1, j))) +
                             ry * (ky(at(i, j + 1)) * uold(at(i, j + 1)) +
                                   ky(at(i, j)) * uold(at(i, j - 1)));
          const double unew = (u0(at(i, j)) + off) / diag;
          w(at(i, j)) = unew;
          e += std::fabs(unew - uold(at(i, j)));
        },
        err);
    copy_field(FieldId::kW, FieldId::kU);
    charge(ref::kCostJacobi);
    return err;
  }

  FieldSummary field_summary() override {
    auto density = view(FieldId::kDensity);
    auto energy = view(FieldId::kEnergy0);
    auto u = view(FieldId::kU);
    const auto at = index_fn();
    const int nx = nx_;
    const double vol_cell = cell_volume_;
    const long n = static_cast<long>(nx) * ny_;
    FieldSummary s;
    s.vol = vol_cell * static_cast<double>(n);
    kk::parallel_reduce(
        "tea_summary_mass", kk::RangePolicy<Exec>(0, n),
        [=](long idx, double& acc) {
          acc += density(at(idx % nx, idx / nx)) * vol_cell;
        },
        s.mass);
    kk::parallel_reduce(
        "tea_summary_ie", kk::RangePolicy<Exec>(0, n),
        [=](long idx, double& acc) {
          const long i = idx % nx;
          const long j = idx / nx;
          acc += density(at(i, j)) * energy(at(i, j)) * vol_cell;
        },
        s.ie);
    kk::parallel_reduce(
        "tea_summary_temp", kk::RangePolicy<Exec>(0, n),
        [=](long idx, double& acc) {
          acc += u(at(idx % nx, idx / nx)) * vol_cell;
        },
        s.temp);
    charge(ref::kCostSummary);
    return s;
  }

  void update_halo(std::initializer_list<FieldId> fields, int depth) override {
    const auto at = index_fn();
    const int nx = nx_;
    const int ny = ny_;
    for (const FieldId fid : fields) {
      auto f = view(fid);
      kk::parallel_for("tea_halo_x", kk::MDRangePolicy2<Exec>(0, ny, 0, depth),
                       [=](long j, long k) {
                         f(at(-1 - k, j)) = f(at(k, j));
                         f(at(nx + k, j)) = f(at(nx - 1 - k, j));
                       });
      kk::parallel_for(
          "tea_halo_y",
          kk::MDRangePolicy2<Exec>(0, depth, 0, nx + 2 * depth),
          [=](long k, long ii) {
            const long i = ii - depth;
            f(at(i, -1 - k)) = f(at(i, k));
            f(at(i, ny + k)) = f(at(i, ny - 1 - k));
          });
    }
    machine::Instrumentation::global().add_halo_exchange(
        static_cast<std::int64_t>(fields.size()));
  }

  void finalise() override {
    auto u = view(FieldId::kU);
    auto density = view(FieldId::kDensity);
    auto energy = view(FieldId::kEnergy1);
    const auto at = index_fn();
    kk::parallel_for("tea_finalise", interior_policy(), [=](long j, long i) {
      energy(at(i, j)) = u(at(i, j)) / density(at(i, j));
    });
    charge(ref::kCostFinalise);
  }

  std::int64_t working_set_bytes() const override {
    return static_cast<std::int64_t>(kNumFields) * pnx_ * pny_ * 8;
  }

  LocalExtent local_extent() const override {
    return LocalExtent{0, 0, nx_, ny_, nx_, ny_};
  }

  void read_field(FieldId f, tl::span<double> out) override {
    auto host = kk::create_mirror_view(fields_[static_cast<std::size_t>(f)]);
    kk::deep_copy(host, fields_[static_cast<std::size_t>(f)]);
    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        out[static_cast<std::size_t>(j) * nx_ + i] =
            host(static_cast<std::size_t>(j + halo_) * pnx_ + (i + halo_));
      }
    }
  }

  /// Host copy of a field value at interior (i, j) — test hook.
  double value_at(FieldId f, int i, int j) const {
    auto host = kk::create_mirror_view(fields_[static_cast<std::size_t>(f)]);
    kk::deep_copy(host, fields_[static_cast<std::size_t>(f)]);
    return host(static_cast<std::size_t>(j + halo_) * pnx_ + (i + halo_));
  }

private:
  FieldView view(FieldId f) const { return fields_[static_cast<std::size_t>(f)]; }

  /// 2D -> padded 1D index mapping captured into kernels.
  auto index_fn() const {
    const int pnx = pnx_;
    const int halo = halo_;
    return [pnx, halo](long i, long j) {
      return static_cast<std::size_t>(j + halo) * pnx + (i + halo);
    };
  }

  kk::MDRangePolicy2<Exec> interior_policy() const {
    return kk::MDRangePolicy2<Exec>(0, ny_, 0, nx_);
  }

  void charge(const ref::KernelCost& c) const {
    const std::int64_t cells = static_cast<std::int64_t>(nx_) * ny_;
    machine::Instrumentation::global().add_traffic(
        cells * 8 * c.reads, cells * 8 * c.writes, cells * c.flops);
  }

  std::string id_;
  int nx_ = 0, ny_ = 0, halo_ = 2, pnx_ = 0, pny_ = 0;
  double cell_volume_ = 0.0;
  std::array<FieldView, kNumFields> fields_;
};

}  // namespace tea
