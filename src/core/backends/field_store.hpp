// field_store.hpp — host-side field storage shared by the manual CPU
// backends: one aligned slab holding all TeaLeaf fields with halo padding,
// plus the rank partition geometry.
//
// Allocation is NUMA-aware when a thread pool is supplied: the slab is
// allocated untouched and then zero-filled row-parallel through the pool
// with the same static partition the compute kernels use, so under a
// first-touch OS policy each worker's rows land on that worker's NUMA node.
#pragma once

#include <array>
#include <cstdint>
#include <utility>

#include "common/aligned_buffer.hpp"
#include "common/simd.hpp"
#include "core/field.hpp"
#include "threading/thread_pool.hpp"

namespace tea {

/// Lightweight cell view: origin points at local cell (0,0), negative
/// indices reach into the halo.
struct CellView {
  double* origin = nullptr;
  int stride = 0;

  double& operator()(int i, int j) const {
    return origin[static_cast<std::ptrdiff_t>(j) * stride + i];
  }
};

struct ConstCellView {
  const double* origin = nullptr;
  int stride = 0;

  double operator()(int i, int j) const {
    return origin[static_cast<std::ptrdiff_t>(j) * stride + i];
  }
};

/// Partition geometry: this rank owns global cells
/// [x0, x0+nx) x [y0, y0+ny) of a gnx x gny interior.
struct PartitionGeom {
  int x0 = 0, y0 = 0;
  int nx = 0, ny = 0;
  int gnx = 0, gny = 0;
  int halo = 2;

  bool operator==(const PartitionGeom& o) const {
    return x0 == o.x0 && y0 == o.y0 && nx == o.nx && ny == o.ny &&
           gnx == o.gnx && gny == o.gny && halo == o.halo;
  }

  bool at_xlo() const { return x0 == 0; }
  bool at_xhi() const { return x0 + nx == gnx; }
  bool at_ylo() const { return y0 == 0; }
  bool at_yhi() const { return y0 + ny == gny; }
  int padded_nx() const { return nx + 2 * halo; }
  int padded_ny() const { return ny + 2 * halo; }
  std::int64_t padded_cells() const {
    return static_cast<std::int64_t>(padded_nx()) * padded_ny();
  }
  std::int64_t cells() const {
    return static_cast<std::int64_t>(nx) * ny;
  }
};

class FieldStore {
public:
  /// `pool` (optional, not owned) parallelises the first touch; without one
  /// the calling thread pages in the whole slab, as before.
  explicit FieldStore(const PartitionGeom& geom,
                      tlp::ThreadPool* pool = nullptr)
      : geom_(geom),
        slab_(static_cast<std::size_t>(kNumFields) * geom.padded_cells(),
              tl::uninitialized) {
    zero_fill(pool);
  }

  /// Return the store to its just-constructed state: every field zero, the
  /// slot permutation identity.  The slab itself is kept, which is what the
  /// service arena (field_arena.hpp) amortises: the pages are already mapped
  /// — and, because zeroing runs through the same pool-static row partition
  /// as the first touch, already resident on the right NUMA node — so a
  /// reused store is bit-identical to a fresh one without paying the
  /// allocation + page-fault cost again.
  void reset(tlp::ThreadPool* pool = nullptr) {
    slot_ = identity_slots();
    zero_fill(pool);
  }

  const PartitionGeom& geom() const { return geom_; }

  /// Exchange the storage of two fields in O(1) by swapping their slab
  /// slots (the ping-pong commit in the Jacobi sweep: the new iterate
  /// becomes u without a copy-back pass).  Halos travel with the slab, so
  /// the swapped-in field's halo is whatever the sweep left there — refresh
  /// before reading it, exactly as after a copy_field commit.  NUMA
  /// placement is unaffected: every field was first-touched with the same
  /// row partition.
  void swap_fields(FieldId a, FieldId b) {
    std::swap(slot_[static_cast<int>(a)], slot_[static_cast<int>(b)]);
  }

  CellView view(FieldId f) {
    return CellView{base(f) + offset_to_origin(), geom_.padded_nx()};
  }
  ConstCellView cview(FieldId f) const {
    return ConstCellView{base(f) + offset_to_origin(), geom_.padded_nx()};
  }

  /// Raw padded pointer for pack/upload paths.
  double* padded(FieldId f) { return base(f); }
  const double* padded(FieldId f) const { return base(f); }

  std::int64_t working_set_bytes() const {
    return static_cast<std::int64_t>(slab_.size()) * 8;
  }

private:
  void zero_fill(tlp::ThreadPool* pool) {
    const long rows_per_field = geom_.padded_ny();
    const long row_width = geom_.padded_nx();
    const auto touch_rows = [&](double* base, long lo, long hi) {
      double* TL_RESTRICT out = base + lo * row_width;
      const long count = (hi - lo) * row_width;
      for (long k = 0; k < count; ++k) out[k] = 0.0;
    };
    for (int f = 0; f < kNumFields; ++f) {
      double* field_base = slab_.data() +
                           static_cast<std::size_t>(f) *
                               static_cast<std::size_t>(geom_.padded_cells());
      if (pool != nullptr) {
        // Rows [lo, hi) of this field go to the thread that will compute
        // them (parallel_for's static partition matches the kernels' row
        // split up to the halo offset).
        pool->parallel_for(0, rows_per_field, [&](long lo, long hi) {
          touch_rows(field_base, lo, hi);
        });
      } else {
        touch_rows(field_base, 0, rows_per_field);
      }
    }
  }

  double* base(FieldId f) {
    return slab_.data() + static_cast<std::size_t>(slot_[static_cast<int>(f)]) *
                              static_cast<std::size_t>(geom_.padded_cells());
  }
  const double* base(FieldId f) const {
    return slab_.data() + static_cast<std::size_t>(slot_[static_cast<int>(f)]) *
                              static_cast<std::size_t>(geom_.padded_cells());
  }
  std::ptrdiff_t offset_to_origin() const {
    return static_cast<std::ptrdiff_t>(geom_.halo) * geom_.padded_nx() +
           geom_.halo;
  }

  static std::array<int, kNumFields> identity_slots() {
    std::array<int, kNumFields> slots{};
    for (int f = 0; f < kNumFields; ++f) slots[f] = f;
    return slots;
  }

  PartitionGeom geom_;
  tl::AlignedBuffer<double> slab_;
  // Field -> slab slot indirection (permuted by swap_fields).
  std::array<int, kNumFields> slot_ = identity_slots();
};

}  // namespace tea
