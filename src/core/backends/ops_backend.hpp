// ops_backend.hpp — TeaLeaf re-engineered through the miniops DSL, as the
// paper's OPS variants are (§III-B).  One source covers every OPS build:
//
//   ops-omp    : Context{use_pool}
//   ops-mpi    : Context{comm}
//   ops-hybrid : Context{comm, use_pool}
//   ops-tiled  : Context{comm, tiled}           (the paper's "MPI Tiled")
//   ops-cuda   : Context{device}
//   ops-acc    : Context{device}                (OpenACC-generated flavour)
//
// — exactly the single-source / many-parallelisations property the paper
// credits OPS with.  Kernels are expressed as ops::par_loop calls with
// stencil-typed arguments; halo maintenance and reductions go through the
// Context (dirty bits, exchanges, allreduce), and the tiled variant queues
// chains of loops for cache-blocked execution.
#pragma once

#include <memory>

#include "core/backend.hpp"
#include "miniops/miniops.hpp"

namespace tea {

class OpsBackend final : public Backend {
public:
  OpsBackend(std::string id, ops::ContextOptions options);

  std::string id() const override { return id_; }
  void setup(const tl::ProblemConfig& cfg) override;

  void compute_coefficients(tl::CoefficientKind kind) override;
  void init_u_u0() override;
  void apply_operator(FieldId in, FieldId out) override;
  void compute_residual() override;
  void copy_field(FieldId src, FieldId dst) override;
  void scale_copy(FieldId dst, FieldId src, double s) override;
  double dot(FieldId a, FieldId b) override;
  void axpy(FieldId y, double a, FieldId x) override;
  void zaxpy(FieldId p, double beta, FieldId z) override;
  void precondition(FieldId dst, FieldId src) override;
  void smooth_update(FieldId acc, FieldId res, FieldId w, FieldId sd,
                     double alpha, double beta) override;
  double jacobi_iterate() override;
  FieldSummary field_summary() override;
  void update_halo(std::initializer_list<FieldId> fields, int depth) override;
  void finalise() override;
  std::int64_t working_set_bytes() const override;
  bool counts_globally() const override {
    return ctx_->comm() == nullptr || ctx_->comm()->rank() == 0;
  }
  void counter_fence(CounterFence phase) override;
  LocalExtent local_extent() const override;
  void read_field(FieldId f, tl::span<double> out) override;

  ops::Context& context() { return *ctx_; }
  /// Host view of a dat's value at local interior cell (i, j) (tests;
  /// fetches from the device first on device contexts).
  double value_at(FieldId f, int i, int j);

private:
  ops::Dat& dat(FieldId f) const { return *dats_[static_cast<std::size_t>(f)]; }
  ops::Range interior() const;

  std::string id_;
  std::unique_ptr<ops::Context> ctx_;
  ops::Block* block_ = nullptr;
  std::array<ops::Dat*, kNumFields> dats_{};
  int gnx_ = 0, gny_ = 0;
  double cell_volume_ = 0.0;
};

}  // namespace tea
