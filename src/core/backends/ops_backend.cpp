#include "core/backends/ops_backend.hpp"

#include <cmath>

#include "core/backends/ref_kernels.hpp"
#include "core/halo.hpp"
#include "core/problem.hpp"

namespace tea {

using ops::Acc;
using ops::AccessMode;
using ops::arg_dat;
using ops::arg_gbl;
using ops::Stencil;

OpsBackend::OpsBackend(std::string id, ops::ContextOptions options)
    : id_(std::move(id)), ctx_(std::make_unique<ops::Context>(options)) {}

ops::Range OpsBackend::interior() const {
  return ops::Range{0, gnx_, 0, gny_};
}

void OpsBackend::setup(const tl::ProblemConfig& cfg) {
  gnx_ = cfg.x_cells;
  gny_ = cfg.y_cells;
  block_ = &ctx_->decl_block("tea", gnx_, gny_);
  for (int f = 0; f < kNumFields; ++f) {
    dats_[static_cast<std::size_t>(f)] = &ctx_->decl_dat(
        *block_, std::string(field_name(static_cast<FieldId>(f))),
        cfg.halo_depth);
  }

  const StateSampler sampler(cfg);
  cell_volume_ = sampler.cell_volume();

  // Initial painting happens directly on the rank's local host storage (OPS
  // apps fill dats through an init loop; the sampler needs global indices,
  // which the dat's partition supplies).
  ops::Dat& density = dat(FieldId::kDensity);
  ops::Dat& energy0 = dat(FieldId::kEnergy0);
  ops::Dat& energy1 = dat(FieldId::kEnergy1);
  for (int j = 0; j < density.local_ny(); ++j) {
    for (int i = 0; i < density.local_nx(); ++i) {
      const int gi = density.local_x0() + i;
      const int gj = density.local_y0() + j;
      density.at(i, j) = sampler.density_at(gi, gj);
      energy0.at(i, j) = sampler.energy_at(gi, gj);
      energy1.at(i, j) = energy0.at(i, j);
    }
  }
  density.set_halo_dirty(true);
  energy0.set_halo_dirty(true);
  energy1.set_halo_dirty(true);
  // Device contexts must observe the host-painted data.
  density.set_device_stale(true);
  energy0.set_device_stale(true);
  energy1.set_device_stale(true);

  update_halo({FieldId::kDensity, FieldId::kEnergy0, FieldId::kEnergy1},
              cfg.halo_depth);
}

void OpsBackend::compute_coefficients(tl::CoefficientKind kind) {
  // Faces are computed over the interior only; each rank's +x/+y face halo
  // (and the physical boundary faces) is completed by the dirty-bit halo
  // exchange the first stencil read of kx/ky triggers.  Reflection-filled
  // physical faces are mathematically inert: the reflected solution halo
  // zeroes the boundary flux term for any face value.
  ops::par_loop(
      *ctx_, "tea_coefficients", interior(), 6,
      [kind](Acc density, Acc kx, Acc ky) {
        const double wc = ref::conduction(density(0, 0), kind);
        const double wl = ref::conduction(density(-1, 0), kind);
        kx(0, 0) = (wl + wc) / (2.0 * wl * wc);
        const double wd = ref::conduction(density(0, -1), kind);
        ky(0, 0) = (wd + wc) / (2.0 * wd * wc);
      },
      arg_dat(dat(FieldId::kDensity), AccessMode::kRead,
              Stencil({{0, 0}, {-1, 0}, {0, -1}})),
      arg_dat(dat(FieldId::kKx), AccessMode::kWrite),
      arg_dat(dat(FieldId::kKy), AccessMode::kWrite));
}

void OpsBackend::init_u_u0() {
  ops::par_loop(
      *ctx_, "tea_init_u", interior(), 1,
      [](Acc density, Acc energy, Acc u, Acc u0) {
        const double v = energy(0, 0) * density(0, 0);
        u(0, 0) = v;
        u0(0, 0) = v;
      },
      arg_dat(dat(FieldId::kDensity), AccessMode::kRead),
      arg_dat(dat(FieldId::kEnergy1), AccessMode::kRead),
      arg_dat(dat(FieldId::kU), AccessMode::kWrite),
      arg_dat(dat(FieldId::kU0), AccessMode::kWrite));
}

void OpsBackend::apply_operator(FieldId in, FieldId out) {
  const double rx = rx_, ry = ry_;
  ops::par_loop(
      *ctx_, "tea_smvp", interior(), 13,
      [rx, ry](Acc vin, Acc kx, Acc ky, Acc vout) {
        const double diag =
            1.0 + rx * (kx(1, 0) + kx(0, 0)) + ry * (ky(0, 1) + ky(0, 0));
        vout(0, 0) = diag * vin(0, 0) -
                     rx * (kx(1, 0) * vin(1, 0) + kx(0, 0) * vin(-1, 0)) -
                     ry * (ky(0, 1) * vin(0, 1) + ky(0, 0) * vin(0, -1));
      },
      arg_dat(dat(in), AccessMode::kRead, Stencil::star5()),
      arg_dat(dat(FieldId::kKx), AccessMode::kRead,
              Stencil({{0, 0}, {1, 0}})),
      arg_dat(dat(FieldId::kKy), AccessMode::kRead,
              Stencil({{0, 0}, {0, 1}})),
      arg_dat(dat(out), AccessMode::kWrite));
}

void OpsBackend::compute_residual() {
  const double rx = rx_, ry = ry_;
  ops::par_loop(
      *ctx_, "tea_residual", interior(), 14,
      [rx, ry](Acc u, Acc u0, Acc kx, Acc ky, Acc r) {
        const double diag =
            1.0 + rx * (kx(1, 0) + kx(0, 0)) + ry * (ky(0, 1) + ky(0, 0));
        const double au = diag * u(0, 0) -
                          rx * (kx(1, 0) * u(1, 0) + kx(0, 0) * u(-1, 0)) -
                          ry * (ky(0, 1) * u(0, 1) + ky(0, 0) * u(0, -1));
        r(0, 0) = u0(0, 0) - au;
      },
      arg_dat(dat(FieldId::kU), AccessMode::kRead, Stencil::star5()),
      arg_dat(dat(FieldId::kU0), AccessMode::kRead),
      arg_dat(dat(FieldId::kKx), AccessMode::kRead, Stencil({{0, 0}, {1, 0}})),
      arg_dat(dat(FieldId::kKy), AccessMode::kRead, Stencil({{0, 0}, {0, 1}})),
      arg_dat(dat(FieldId::kR), AccessMode::kWrite));
}

void OpsBackend::copy_field(FieldId src, FieldId dst) {
  ops::par_loop(
      *ctx_, "tea_copy", interior(), 0,
      [](Acc s, Acc d) { d(0, 0) = s(0, 0); },
      arg_dat(dat(src), AccessMode::kRead),
      arg_dat(dat(dst), AccessMode::kWrite));
}

void OpsBackend::scale_copy(FieldId dst, FieldId src, double sc) {
  ops::par_loop(
      *ctx_, "tea_scale_copy", interior(), 1,
      [sc](Acc s, Acc d) { d(0, 0) = sc * s(0, 0); },
      arg_dat(dat(src), AccessMode::kRead),
      arg_dat(dat(dst), AccessMode::kWrite));
}

double OpsBackend::dot(FieldId a, FieldId b) {
  double result = 0.0;
  ops::par_loop(
      *ctx_, "tea_dot", interior(), 2,
      [](Acc va, Acc vb, double& sum) { sum += va(0, 0) * vb(0, 0); },
      arg_dat(dat(a), AccessMode::kRead), arg_dat(dat(b), AccessMode::kRead),
      arg_gbl(result));
  return result;
}

void OpsBackend::axpy(FieldId y, double a, FieldId x) {
  ops::par_loop(
      *ctx_, "tea_axpy", interior(), 2,
      [a](Acc vy, Acc vx) { vy(0, 0) += a * vx(0, 0); },
      arg_dat(dat(y), AccessMode::kReadWrite),
      arg_dat(dat(x), AccessMode::kRead));
}

void OpsBackend::zaxpy(FieldId p, double beta, FieldId z) {
  ops::par_loop(
      *ctx_, "tea_zaxpy", interior(), 2,
      [beta](Acc vp, Acc vz) { vp(0, 0) = vz(0, 0) + beta * vp(0, 0); },
      arg_dat(dat(p), AccessMode::kReadWrite),
      arg_dat(dat(z), AccessMode::kRead));
}

void OpsBackend::precondition(FieldId dst, FieldId src) {
  const double rx = rx_, ry = ry_;
  ops::par_loop(
      *ctx_, "tea_precondition", interior(), 9,
      [rx, ry](Acc s, Acc kx, Acc ky, Acc d) {
        const double diag =
            1.0 + rx * (kx(1, 0) + kx(0, 0)) + ry * (ky(0, 1) + ky(0, 0));
        d(0, 0) = s(0, 0) / diag;
      },
      arg_dat(dat(src), AccessMode::kRead),
      arg_dat(dat(FieldId::kKx), AccessMode::kRead, Stencil({{0, 0}, {1, 0}})),
      arg_dat(dat(FieldId::kKy), AccessMode::kRead, Stencil({{0, 0}, {0, 1}})),
      arg_dat(dat(dst), AccessMode::kWrite));
}

void OpsBackend::smooth_update(FieldId acc_f, FieldId res, FieldId w,
                               FieldId sd, double alpha, double beta) {
  ops::par_loop(
      *ctx_, "tea_cheby_iterate", interior(), 6,
      [alpha, beta](Acc vacc, Acc vres, Acc vw, Acc vsd) {
        vacc(0, 0) += vsd(0, 0);
        vres(0, 0) -= vw(0, 0);
        vsd(0, 0) = alpha * vsd(0, 0) + beta * vres(0, 0);
      },
      arg_dat(dat(acc_f), AccessMode::kReadWrite),
      arg_dat(dat(res), AccessMode::kReadWrite),
      arg_dat(dat(w), AccessMode::kRead),
      arg_dat(dat(sd), AccessMode::kReadWrite));
}

double OpsBackend::jacobi_iterate() {
  // Sweep u (halo freshly updated by the solver) into w, then commit.
  const double rx = rx_, ry = ry_;
  double err = 0.0;
  ops::par_loop(
      *ctx_, "tea_jacobi", interior(), 16,
      [rx, ry](Acc uold, Acc u0, Acc kx, Acc ky, Acc w, double& e) {
        const double diag =
            1.0 + rx * (kx(1, 0) + kx(0, 0)) + ry * (ky(0, 1) + ky(0, 0));
        const double off =
            rx * (kx(1, 0) * uold(1, 0) + kx(0, 0) * uold(-1, 0)) +
            ry * (ky(0, 1) * uold(0, 1) + ky(0, 0) * uold(0, -1));
        const double unew = (u0(0, 0) + off) / diag;
        w(0, 0) = unew;
        e += std::fabs(unew - uold(0, 0));
      },
      arg_dat(dat(FieldId::kU), AccessMode::kRead, Stencil::star5()),
      arg_dat(dat(FieldId::kU0), AccessMode::kRead),
      arg_dat(dat(FieldId::kKx), AccessMode::kRead, Stencil({{0, 0}, {1, 0}})),
      arg_dat(dat(FieldId::kKy), AccessMode::kRead, Stencil({{0, 0}, {0, 1}})),
      arg_dat(dat(FieldId::kW), AccessMode::kWrite), arg_gbl(err));
  copy_field(FieldId::kW, FieldId::kU);
  return err;
}

FieldSummary OpsBackend::field_summary() {
  const double vol_cell = cell_volume_;
  FieldSummary s;
  ops::par_loop(
      *ctx_, "tea_field_summary", interior(), 8,
      [vol_cell](Acc density, Acc energy, Acc u, double& vol, double& mass,
                 double& ie, double& temp) {
        vol += vol_cell;
        mass += density(0, 0) * vol_cell;
        ie += density(0, 0) * energy(0, 0) * vol_cell;
        temp += u(0, 0) * vol_cell;
      },
      arg_dat(dat(FieldId::kDensity), AccessMode::kRead),
      arg_dat(dat(FieldId::kEnergy0), AccessMode::kRead),
      arg_dat(dat(FieldId::kU), AccessMode::kRead), arg_gbl(s.vol),
      arg_gbl(s.mass), arg_gbl(s.ie), arg_gbl(s.temp));
  return s;
}

void OpsBackend::update_halo(std::initializer_list<FieldId> fields,
                             int depth) {
  std::vector<ops::Dat*> list;
  list.reserve(fields.size());
  for (const FieldId f : fields) list.push_back(&dat(f));
  ctx_->update_halo(list, depth);
}

void OpsBackend::finalise() {
  ops::par_loop(
      *ctx_, "tea_finalise", interior(), 1,
      [](Acc u, Acc density, Acc energy) {
        energy(0, 0) = u(0, 0) / density(0, 0);
      },
      arg_dat(dat(FieldId::kU), AccessMode::kRead),
      arg_dat(dat(FieldId::kDensity), AccessMode::kRead),
      arg_dat(dat(FieldId::kEnergy1), AccessMode::kWrite));
}

std::int64_t OpsBackend::working_set_bytes() const {
  std::int64_t local = 0;
  for (const ops::Dat* d : dats_) {
    local += static_cast<std::int64_t>(d->bytes());
  }
  if (ctx_->comm() != nullptr) local *= ctx_->comm()->size();
  return local;
}

void OpsBackend::counter_fence(CounterFence phase) {
  if (ctx_->comm() != nullptr) tea::counter_fence(*ctx_->comm(), phase);
}

tea::Backend::LocalExtent OpsBackend::local_extent() const {
  const ops::Dat& d = dat(FieldId::kU);
  return LocalExtent{d.local_x0(), d.local_y0(), d.local_nx(), d.local_ny(),
                     gnx_, gny_};
}

void OpsBackend::read_field(FieldId f, tl::span<double> out) {
  ctx_->flush();
  ctx_->fetch_to_host(dat(f));
  const ops::Dat& d = dat(f);
  for (int j = 0; j < d.local_ny(); ++j) {
    for (int i = 0; i < d.local_nx(); ++i) {
      out[static_cast<std::size_t>(j) * d.local_nx() + i] = d.at(i, j);
    }
  }
}

double OpsBackend::value_at(FieldId f, int i, int j) {
  ctx_->flush();
  ctx_->fetch_to_host(dat(f));
  return dat(f).at(i, j);
}

}  // namespace tea
