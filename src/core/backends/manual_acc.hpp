// manual_acc.hpp — the hand-written OpenACC TeaLeaf variant (miniacc).
//
// OpenACC's defining structure is preserved: fields are host arrays wrapped
// in a long-lived data region (`#pragma acc data copy(...)` around the whole
// run), kernels are `parallel loop collapse(2)` constructs, reductions use
// reduction clauses.  The same code serves both targets the paper tests:
//   manual-acc-cpu : -ta=multicore  (host thread pool)
//   manual-acc-gpu : -ta=tesla     (simulated GPU; the region manages the
//                                   device copies and copyout at teardown)
#pragma once

#include <array>
#include <memory>

#include "core/backend.hpp"
#include "core/backends/field_store.hpp"
#include "miniacc/acc.hpp"

namespace tea {

class ManualAccBackend final : public Backend {
public:
  explicit ManualAccBackend(miniacc::Target target);
  ~ManualAccBackend() override;

  std::string id() const override {
    return target_ == miniacc::Target::kHost ? "manual-acc-cpu"
                                             : "manual-acc-gpu";
  }
  void setup(const tl::ProblemConfig& cfg) override;

  void compute_coefficients(tl::CoefficientKind kind) override;
  void init_u_u0() override;
  void apply_operator(FieldId in, FieldId out) override;
  void compute_residual() override;
  void copy_field(FieldId src, FieldId dst) override;
  void scale_copy(FieldId dst, FieldId src, double s) override;
  double dot(FieldId a, FieldId b) override;
  void axpy(FieldId y, double a, FieldId x) override;
  void zaxpy(FieldId p, double beta, FieldId z) override;
  void precondition(FieldId dst, FieldId src) override;
  void smooth_update(FieldId acc, FieldId res, FieldId w, FieldId sd,
                     double alpha, double beta) override;
  double jacobi_iterate() override;
  FieldSummary field_summary() override;
  void update_halo(std::initializer_list<FieldId> fields, int depth) override;
  void finalise() override;
  std::int64_t working_set_bytes() const override;
  LocalExtent local_extent() const override {
    return LocalExtent{0, 0, geom_.nx, geom_.ny, geom_.gnx, geom_.gny};
  }
  void read_field(FieldId f, tl::span<double> out) override;

  /// Sync the region's device copy of `f` back to the host store (`update
  /// host` directive); no-op on the host target.
  void sync_host(FieldId f);
  FieldStore& store() { return *store_; }

private:
  CellView rv(FieldId f) const;  // region-pointer view

  miniacc::Target target_;
  std::unique_ptr<FieldStore> store_;
  std::unique_ptr<miniacc::DataRegion> region_;
  std::array<double*, kNumFields> mapped_{};
  PartitionGeom geom_;
  double cell_volume_ = 0.0;
};

}  // namespace tea
