// report.hpp — TeaLeaf-style run reports: the `tea.out`-like text summary
// the original mini-app writes, plus VTK snapshots of the solution fields.
#pragma once

#include <ostream>
#include <string>

#include "core/backend.hpp"
#include "core/driver.hpp"

namespace tea {

/// Write a tea.out-style report: configuration echo, per-step summary table,
/// timing and instrumentation totals.
void write_report(const RunResult& result, const tl::ProblemConfig& cfg,
                  std::ostream& os);

/// Convenience overload writing to a file path.
void write_report(const RunResult& result, const tl::ProblemConfig& cfg,
                  const std::string& path);

/// Dump density / energy / temperature of a (shared-memory) backend to a
/// legacy VTK file for ParaView/VisIt (the visit_frequency output).  The
/// backend must own the full mesh (local extent == global extent).
void write_vtk_snapshot(Backend& backend, double dx, double dy,
                        const std::string& path);

}  // namespace tea
