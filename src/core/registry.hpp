// registry.hpp — backend construction and the one-call simulation entry
// point.  Maps the paper's Table I version names onto our implementations
// (see DESIGN.md for the full correspondence) and hides the SPMD plumbing the
// distributed variants need.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "miniops/context.hpp"
#include "threading/thread_pool.hpp"

namespace tea {

struct RunOptions {
  // Host threading (0 = tlp default: TL_NUM_THREADS or hardware).
  int threads = 0;
  // Rank count for the distributed variants.
  int ranks = 4;
  // Per-rank threads for the hybrid variants (0 = split `threads` evenly).
  int hybrid_threads = 0;
  // OPS cache-blocking tiling configuration (ops-tiled).
  ops::TileConfig tile;
  // GPU thread-block shape (the paper tunes OPS CUDA to 64x8).
  int gpu_block_x = 64;
  int gpu_block_y = 8;
  // Fused apply_operator_dot in the CG/PPCG inner loop (PR 3 kernel) vs the
  // unfused operator+dot pair — a tuning search dimension; numerics are
  // bitwise identical either way.
  bool fuse_operator_dot = true;
};

/// All registered backend ids: the paper's sixteen variants plus the serial
/// reference and the ops-seq debugging build.
std::vector<std::string> available_backends();

/// True for variants that decompose over minimpi ranks.
bool backend_is_distributed(const std::string& id);
/// True for variants that execute on the simulated GPU.
bool backend_is_gpu(const std::string& id);
/// True for variants with a real fused apply_operator_dot kernel (the
/// manual host family).  For every other backend the fuse_operator_dot
/// option is a no-op: the base-class fallback already runs the unfused
/// pair, so "unfused" is not a distinct configuration.
bool backend_has_fused_operator_dot(const std::string& id);

/// Build a shared-memory backend for `id` on a caller-owned pool (threaded
/// variants; nullptr = tlp global pool).  GPU ids reach the simulated device
/// through simgpu::default_device(), so callers owning a private Device (the
/// solve service's worker shards) install a simgpu::DeviceScope around both
/// this call and every use of the returned backend, including its
/// destruction.  Throws tl::Error for distributed ids — those need the SPMD
/// world run_simulation owns.
std::unique_ptr<Backend> make_backend(const std::string& id,
                                      tlp::ThreadPool* pool,
                                      const RunOptions& options);

/// Run the full TeaLeaf time-marching simulation for `id` on `cfg`.
/// Handles SPMD world creation for distributed variants; returns rank 0's
/// result (identical on all ranks up to reduction determinism).  GPU ids run
/// against a run-local simgpu::Device sized from the machine model, so
/// concurrent callers never share device state.
RunResult run_simulation(const std::string& id, const tl::ProblemConfig& cfg,
                         const RunOptions& options = {});

}  // namespace tea
