// backend.hpp — the kernel-level interface every TeaLeaf implementation
// provides.  The generic drivers and solvers (core/solvers, core/driver) are
// written once against this interface; the paper's sixteen variants differ
// only in how these kernels are parallelised and where the fields live.
//
// Distributed variants run the whole driver SPMD (one Backend per rank, as
// real TeaLeaf runs its main loop on every rank); `dot`, `field_summary` and
// `jacobi_iterate` return globally-reduced values on every rank, and
// `update_halo` performs the rank-edge exchanges.
#pragma once

#include <cstdint>
#include <initializer_list>
#include "common/span.hpp"
#include <string>

#include "common/config.hpp"
#include "core/field.hpp"

namespace tea {

/// Phases of the driver's deterministic counter window (TeaDriver::run
/// brackets its CounterScope with Backend::counter_fence calls).
enum class CounterFence {
  kReady,  // pre-open: every rank reports setup complete to rank 0
  kGo,     // post-open: rank 0 releases the ranks into the counted region
  kDone,   // pre-close: every rank's report is its final counter charge
};

class Backend {
public:
  virtual ~Backend() = default;

  /// Registry id, e.g. "manual-omp", "ops-tiled", "kokkos-cuda".
  virtual std::string id() const = 0;

  /// Allocate fields and paint the initial density/energy0 (and energy1)
  /// from the deck's states.  Must be called exactly once, first.
  virtual void setup(const tl::ProblemConfig& cfg) = 0;

  // --- per-step scalars, set by the driver before the solve ------------------

  /// rx = dt/dx^2, ry = dt/dy^2 for the current step.
  void set_rx_ry(double rx, double ry) {
    rx_ = rx;
    ry_ = ry;
  }
  double rx() const { return rx_; }
  double ry() const { return ry_; }

  // --- TeaLeaf kernels ---------------------------------------------------------

  /// Face conduction coefficients kx, ky from density (TeaLeaf's
  /// tea_leaf_init coefficient block).  Requires density halo depth >= 1.
  virtual void compute_coefficients(tl::CoefficientKind kind) = 0;

  /// u = energy1 * density over the interior; u0 = u.
  virtual void init_u_u0() = 0;

  /// out = A in over the interior (5-point SPD operator with rx/ry and the
  /// face coefficients).  Requires `in` halo depth >= 1.
  virtual void apply_operator(FieldId in, FieldId out) = 0;

  /// Fused out = A in; return <in, out> (globally reduced).  The CG/PPCG
  /// inner iteration always needs this pair; fusing lets a backend consume
  /// each operator result while it is still in registers instead of paying
  /// a second memory pass for the dot.  The default is the unfused pair, so
  /// backends without a fused kernel keep bit-identical behaviour.
  virtual double apply_operator_dot(FieldId in, FieldId out) {
    apply_operator(in, out);
    return dot(in, out);
  }

  /// Select fused vs unfused apply_operator_dot (RunOptions
  /// .fuse_operator_dot, a tuning search dimension).  Backends with a fused
  /// kernel must honour `fused_operator_dot()` in their override; results
  /// are bitwise identical either way (PR 3 contract), only the launch and
  /// traffic counts differ.
  void set_fused_operator_dot(bool fused) { fused_op_dot_ = fused; }
  bool fused_operator_dot() const { return fused_op_dot_; }

  /// r = u0 - A u.  Requires u halo depth >= 1.
  virtual void compute_residual() = 0;

  // --- fused halo-refresh + kernel entry points --------------------------------
  // The solvers always refresh a field's halo immediately before the stencil
  // that reads it; these fused entries let a distributed backend overlap the
  // exchange with interior-cell compute (split-phase HaloExchange).  The
  // defaults are the blocking pair, and overlapped overrides must be bitwise
  // identical to them — same per-cell arithmetic, reductions through the
  // same deterministic row_reduce4 association.

  /// update_halo({in}, 1) then out = A in.
  virtual void exchange_apply_operator(FieldId in, FieldId out) {
    update_halo({in}, 1);
    apply_operator(in, out);
  }

  /// update_halo({in}, 1) then fused out = A in; return <in, out>.
  virtual double exchange_apply_operator_dot(FieldId in, FieldId out) {
    update_halo({in}, 1);
    return apply_operator_dot(in, out);
  }

  /// update_halo({u}, 1) then r = u0 - A u.
  virtual void exchange_compute_residual() {
    update_halo({FieldId::kU}, 1);
    compute_residual();
  }

  /// update_halo({u}, 1) then one Jacobi sweep; returns the global error sum.
  virtual double exchange_jacobi_iterate() {
    update_halo({FieldId::kU}, 1);
    return jacobi_iterate();
  }

  virtual void copy_field(FieldId src, FieldId dst) = 0;

  /// dst = s * src.
  virtual void scale_copy(FieldId dst, FieldId src, double s) = 0;

  /// Globally-reduced interior dot product.
  virtual double dot(FieldId a, FieldId b) = 0;

  /// y += a * x.
  virtual void axpy(FieldId y, double a, FieldId x) = 0;

  /// p = z + beta * p (CG direction update).
  virtual void zaxpy(FieldId p, double beta, FieldId z) = 0;

  /// dst = src / diag(A): the Jacobi-diagonal preconditioner
  /// (tl_preconditioner_type=jac_diag).  Requires coefficients computed.
  virtual void precondition(FieldId dst, FieldId src) = 0;

  /// Fused Chebyshev/PPCG smoothing step: acc += sd; res -= w;
  /// sd = alpha * sd + beta * res.  (w = A sd must already be computed.)
  virtual void smooth_update(FieldId acc, FieldId res, FieldId w, FieldId sd,
                             double alpha, double beta) = 0;

  /// One Jacobi sweep u_new = D^-1 (u0 + offdiag(u_old)); returns the
  /// globally-reduced sum |u_new - u_old| (TeaLeaf's Jacobi error).  Uses kR
  /// as the u_old scratch.
  virtual double jacobi_iterate() = 0;

  /// Conserved-quantity reductions over the interior, globally combined.
  virtual FieldSummary field_summary() = 0;

  /// Refresh halos (rank exchanges + reflective physical boundaries).
  virtual void update_halo(std::initializer_list<FieldId> fields,
                           int depth) = 0;

  /// energy1 = u / density over the interior.
  virtual void finalise() = 0;

  /// Bytes of field storage this variant keeps resident (for the KNL
  /// MCDRAM-capacity rule); global (all ranks).
  virtual std::int64_t working_set_bytes() const = 0;

  /// True on the instance that owns process-global event counters (rank 0 of
  /// a distributed run; always for shared-memory variants).  Keeps logical
  /// launch/iteration counts from being multiplied by the rank count.
  virtual bool counts_globally() const { return true; }

  /// Rank synchronisation bracketing the driver's counter window.  Counters
  /// are process-global, so rank 0's CounterScope delta is only deterministic
  /// if no sibling rank charges before the window opens (kReady happens-before
  /// the open, kGo happens-after) or after it closes (a rank's kDone token is
  /// its final charge, collected by rank 0 before the close).  Shared-memory
  /// backends have no sibling ranks — the default is a no-op.
  virtual void counter_fence(CounterFence) {}

  // --- field access (visualisation, tests) ------------------------------------

  /// The interior cells this backend instance owns: offset within the global
  /// mesh plus local and global extents (a shared-memory backend owns all of
  /// it).
  struct LocalExtent {
    int x0 = 0, y0 = 0;
    int nx = 0, ny = 0;
    int gnx = 0, gny = 0;
  };
  virtual LocalExtent local_extent() const = 0;

  /// Copy the locally-owned interior of `f` into `out` (row-major,
  /// nx*ny values), synchronising from the device where needed.
  virtual void read_field(FieldId f, tl::span<double> out) = 0;

protected:
  double rx_ = 0.0;
  double ry_ = 0.0;
  bool fused_op_dot_ = true;
};

}  // namespace tea
