#include "core/solvers/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace tea {

namespace {

/// Number of eigenvalues of the tridiagonal strictly less than x (Sturm
/// sequence / LDL^T inertia count).
int count_below(tl::span<const double> d, tl::span<const double> e,
                double x) {
  int count = 0;
  double q = 1.0;
  const std::size_t n = d.size();
  for (std::size_t k = 0; k < n; ++k) {
    const double ek1 = k == 0 ? 0.0 : e[k - 1];
    if (q == 0.0) {
      // Standard guard: treat an exact zero pivot as a tiny value.
      q = 1e-300;
    }
    q = d[k] - x - ek1 * ek1 / q;
    if (q < 0.0) ++count;
  }
  return count;
}

double bisect_for_count(tl::span<const double> d, tl::span<const double> e,
                        int target_count, double lo, double hi) {
  // Smallest x such that count_below(x) >= target_count.
  for (int iter = 0; iter < 200 && hi - lo > 1e-13 * std::max(1.0, std::fabs(hi));
       ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (count_below(d, e, mid) >= target_count) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

EigenBounds tridiag_eigen_bounds(tl::span<const double> diag,
                                 tl::span<const double> offdiag) {
  TL_REQUIRE(!diag.empty(), "eigen bounds of empty matrix");
  TL_REQUIRE(offdiag.size() + 1 == diag.size() || diag.size() == 1,
             "offdiag size must be diag size - 1");

  // Gershgorin interval.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  const std::size_t n = diag.size();
  for (std::size_t k = 0; k < n; ++k) {
    const double r = (k > 0 ? std::fabs(offdiag[k - 1]) : 0.0) +
                     (k + 1 < n ? std::fabs(offdiag[k]) : 0.0);
    lo = std::min(lo, diag[k] - r);
    hi = std::max(hi, diag[k] + r);
  }
  if (n == 1) return EigenBounds{diag[0], diag[0]};

  EigenBounds b;
  b.lambda_min = bisect_for_count(diag, offdiag, 1, lo, hi);
  b.lambda_max = bisect_for_count(diag, offdiag, static_cast<int>(n), lo, hi);
  return b;
}

EigenBounds bounds_from_cg_scalars(tl::span<const double> alphas,
                                   tl::span<const double> betas) {
  TL_REQUIRE(!alphas.empty(), "need at least one CG step for eigen bounds");
  const std::size_t n = alphas.size();
  std::vector<double> diag(n);
  std::vector<double> offdiag(n > 0 ? n - 1 : 0);
  for (std::size_t k = 0; k < n; ++k) {
    diag[k] = 1.0 / alphas[k];
    if (k > 0) diag[k] += betas[k - 1] / alphas[k - 1];
    if (k + 1 < n) offdiag[k] = std::sqrt(std::max(0.0, betas[k])) / alphas[k];
  }
  EigenBounds b = tridiag_eigen_bounds(diag, offdiag);
  // TeaLeaf-style safety factors so the Chebyshev ellipse encloses the true
  // spectrum even with a rough Lanczos estimate.
  b.lambda_min *= 0.95;
  b.lambda_max *= 1.05;
  // The operator is I + (SPD) so its spectrum sits above 1; clamp against
  // degenerate estimates from very few presteps.
  b.lambda_min = std::max(b.lambda_min, 0.5);
  b.lambda_max = std::max(b.lambda_max, b.lambda_min * (1.0 + 1e-12));
  return b;
}

}  // namespace tea
