#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "core/solvers/eigen.hpp"
#include "core/solvers/solver.hpp"

namespace tea {

namespace {

constexpr FieldId kU = FieldId::kU;
constexpr FieldId kR = FieldId::kR;
constexpr FieldId kP = FieldId::kP;
constexpr FieldId kW = FieldId::kW;
constexpr FieldId kZ = FieldId::kZ;
constexpr FieldId kSd = FieldId::kSd;
constexpr FieldId kRInner = FieldId::kRInner;

/// Shared CG iteration loop.  Runs at most `iters` iterations from the
/// current (u, r, p, rro) state; optionally records step scalars for the
/// Lanczos eigenvalue estimate.  Returns the updated rro.
double cg_iterations(Backend& b, int iters, double eps_rr, double rr0,
                     SolveStats& stats, std::vector<double>* alphas,
                     std::vector<double>* betas) {
  double rro = stats.final_rr;
  for (int it = 0; it < iters; ++it) {
    const double pw = b.exchange_apply_operator_dot(kP, kW);
    if (pw == 0.0) {  // direction annihilated: already converged (or breakdown)
      stats.converged = rro <= eps_rr * rr0;
      break;
    }
    const double alpha = rro / pw;
    b.axpy(kU, alpha, kP);
    b.axpy(kR, -alpha, kW);
    const double rrn = b.dot(kR, kR);
    ++stats.iterations;
    stats.final_rr = rrn;
    if (alphas != nullptr) alphas->push_back(alpha);
    if (betas != nullptr) betas->push_back(rrn / rro);
    if (rrn <= eps_rr * rr0) {
      stats.converged = true;
      rro = rrn;
      break;
    }
    const double beta = rrn / rro;
    b.zaxpy(kP, beta, kR);
    rro = rrn;
  }
  return rro;
}

/// Common start: residual from the current u, plus its squared norm.
double init_residual(Backend& b) {
  b.exchange_compute_residual();
  return b.dot(kR, kR);
}

/// Chebyshev iteration coefficients for spectrum [mn, mx].
struct ChebyCoeffs {
  double theta, delta, sigma;
};
ChebyCoeffs cheby_coeffs(const EigenBounds& eb) {
  ChebyCoeffs c;
  c.theta = 0.5 * (eb.lambda_max + eb.lambda_min);
  c.delta = 0.5 * (eb.lambda_max - eb.lambda_min);
  if (c.delta <= 0.0) c.delta = 1e-12 * c.theta;
  c.sigma = c.theta / c.delta;
  return c;
}

}  // namespace

SolveStats solve_cg(Backend& b, const SolveOptions& o) {
  SolveStats stats;
  stats.solver = tl::SolverKind::kCg;
  const double rr0 = init_residual(b);
  stats.initial_rr = rr0;
  stats.final_rr = rr0;
  if (rr0 == 0.0) {
    stats.converged = true;
    return stats;
  }
  if (o.preconditioner == tl::PreconKind::kJacDiag) {
    // Preconditioned CG: z = M^-1 r with M = diag(A); convergence is still
    // judged on the true residual so eps means the same thing in both paths.
    b.precondition(kZ, kR);
    b.copy_field(kZ, kP);
    double rz = b.dot(kR, kZ);
    for (int it = 0; it < o.max_iters; ++it) {
      const double pw = b.exchange_apply_operator_dot(kP, kW);
      if (pw == 0.0) break;
      const double alpha = rz / pw;
      b.axpy(kU, alpha, kP);
      b.axpy(kR, -alpha, kW);
      ++stats.iterations;
      const double rrn = b.dot(kR, kR);
      stats.final_rr = rrn;
      if (rrn <= o.eps * rr0) {
        stats.converged = true;
        break;
      }
      b.precondition(kZ, kR);
      const double rz_new = b.dot(kR, kZ);
      b.zaxpy(kP, rz_new / rz, kZ);
      rz = rz_new;
    }
    return stats;
  }
  b.copy_field(kR, kP);
  cg_iterations(b, o.max_iters, o.eps, rr0, stats, nullptr, nullptr);
  return stats;
}

SolveStats solve_jacobi(Backend& b, const SolveOptions& o) {
  SolveStats stats;
  stats.solver = tl::SolverKind::kJacobi;
  const double rr0 = init_residual(b);
  stats.initial_rr = rr0;
  stats.final_rr = rr0;
  if (rr0 == 0.0) {
    stats.converged = true;
    return stats;
  }
  // TeaLeaf's Jacobi converges on the sweep-to-sweep |du| sum; we additionally
  // confirm with the true residual (same eps semantics as the Krylov paths)
  // every 20 sweeps so the stats are comparable.
  for (int it = 0; it < o.max_iters; ++it) {
    (void)b.exchange_jacobi_iterate();
    ++stats.iterations;
    if ((it + 1) % 20 == 0 || it + 1 == o.max_iters) {
      b.exchange_compute_residual();
      const double rrn = b.dot(kR, kR);
      stats.final_rr = rrn;
      if (rrn <= o.eps * rr0) {
        stats.converged = true;
        break;
      }
    }
  }
  return stats;
}

SolveStats solve_cheby(Backend& b, const SolveOptions& o) {
  SolveStats stats;
  stats.solver = tl::SolverKind::kCheby;
  const double rr0 = init_residual(b);
  stats.initial_rr = rr0;
  stats.final_rr = rr0;
  if (rr0 == 0.0) {
    stats.converged = true;
    return stats;
  }

  // CG presteps: advance the solve while harvesting Lanczos scalars.
  b.copy_field(kR, kP);
  std::vector<double> alphas, betas;
  cg_iterations(b, o.cheby_cg_presteps, o.eps, rr0, stats, &alphas, &betas);
  if (stats.converged || alphas.empty()) return stats;

  const EigenBounds eb = bounds_from_cg_scalars(alphas, betas);
  const ChebyCoeffs c = cheby_coeffs(eb);

  // Chebyshev from the current (u, r): sd = r / theta, then the standard
  // two-term recurrence.
  b.scale_copy(kSd, kR, 1.0 / c.theta);
  double rho_old = 1.0 / c.sigma;
  for (int it = stats.iterations; it < o.max_iters; ++it) {
    b.exchange_apply_operator(kSd, kW);
    const double rho_new = 1.0 / (2.0 * c.sigma - rho_old);
    const double alpha = rho_new * rho_old;
    const double beta = 2.0 * rho_new / c.delta;
    b.smooth_update(kU, kR, kW, kSd, alpha, beta);
    rho_old = rho_new;
    ++stats.iterations;
    if (stats.iterations % o.cheby_check_freq == 0 ||
        stats.iterations >= o.max_iters) {
      const double rrn = b.dot(kR, kR);
      stats.final_rr = rrn;
      if (rrn <= o.eps * rr0) {
        stats.converged = true;
        break;
      }
    }
  }
  return stats;
}

SolveStats solve_ppcg(Backend& b, const SolveOptions& o) {
  SolveStats stats;
  stats.solver = tl::SolverKind::kPpcg;
  const double rr0 = init_residual(b);
  stats.initial_rr = rr0;
  stats.final_rr = rr0;
  if (rr0 == 0.0) {
    stats.converged = true;
    return stats;
  }

  // Eigenvalue bounds from plain CG presteps (also advances the solve).
  b.copy_field(kR, kP);
  std::vector<double> alphas, betas;
  double rro =
      cg_iterations(b, o.cheby_cg_presteps, o.eps, rr0, stats, &alphas, &betas);
  if (stats.converged || alphas.empty()) return stats;
  const EigenBounds eb = bounds_from_cg_scalars(alphas, betas);
  const ChebyCoeffs c = cheby_coeffs(eb);

  // Fixed polynomial preconditioner: z = P(A) r via `inner` Chebyshev-style
  // smoothing steps of A e = r starting from e = 0.  The polynomial is the
  // same on every application, so CG's SPD preconditioner requirement holds.
  const auto smooth_z = [&] {
    b.copy_field(kR, kRInner);
    b.scale_copy(kZ, kRInner, 0.0);
    b.scale_copy(kSd, kRInner, 1.0 / c.theta);
    double rho_old = 1.0 / c.sigma;
    for (int k = 0; k < o.ppcg_inner_steps; ++k) {
      b.exchange_apply_operator(kSd, kW);
      const double rho_new = 1.0 / (2.0 * c.sigma - rho_old);
      b.smooth_update(kZ, kRInner, kW, kSd, rho_new * rho_old,
                      2.0 * rho_new / c.delta);
      rho_old = rho_new;
      ++stats.inner_iterations;
    }
  };

  // Re-seed the Krylov direction with the preconditioned residual.
  smooth_z();
  b.copy_field(kZ, kP);
  rro = b.dot(kR, kZ);

  for (int it = stats.iterations; it < o.max_iters; ++it) {
    const double pw = b.exchange_apply_operator_dot(kP, kW);
    if (pw == 0.0) {
      stats.converged = stats.final_rr <= o.eps * rr0;
      break;
    }
    const double alpha = rro / pw;
    b.axpy(kU, alpha, kP);
    b.axpy(kR, -alpha, kW);
    ++stats.iterations;
    const double rrn = b.dot(kR, kR);
    stats.final_rr = rrn;
    if (rrn <= o.eps * rr0) {
      stats.converged = true;
      break;
    }
    smooth_z();
    const double rz = b.dot(kR, kZ);
    const double beta = rz / rro;
    b.zaxpy(kP, beta, kZ);
    rro = rz;
  }
  return stats;
}

SolveStats solve(Backend& backend, tl::SolverKind kind,
                 const SolveOptions& options) {
  switch (kind) {
    case tl::SolverKind::kJacobi: return solve_jacobi(backend, options);
    case tl::SolverKind::kCg: return solve_cg(backend, options);
    case tl::SolverKind::kCheby: return solve_cheby(backend, options);
    case tl::SolverKind::kPpcg: return solve_ppcg(backend, options);
  }
  throw tl::Error("unknown solver kind");
}

}  // namespace tea
