// eigen.hpp — eigenvalue bounds of the symmetric tridiagonal (Lanczos) matrix
// assembled from CG step scalars.  TeaLeaf's Chebyshev and PPCG solvers need
// [lambda_min, lambda_max] of the operator; running a few CG iterations and
// taking the extremal eigenvalues of the associated tridiagonal is the
// standard estimation TeaLeaf performs (tl_cheby_cg_presteps).
#pragma once

#include "common/span.hpp"
#include <vector>

namespace tea {

struct EigenBounds {
  double lambda_min = 0.0;
  double lambda_max = 0.0;
};

/// Extremal eigenvalues of the symmetric tridiagonal matrix with diagonal
/// `diag` and off-diagonal `offdiag` (size diag.size()-1), via Sturm-sequence
/// bisection.  Throws tl::Error on empty input.
EigenBounds tridiag_eigen_bounds(tl::span<const double> diag,
                                 tl::span<const double> offdiag);

/// Assemble the Lanczos tridiagonal from CG's step scalars:
///   T(k,k)   = 1/alpha_k + beta_{k-1}/alpha_{k-1}
///   T(k,k+1) = sqrt(beta_k)/alpha_k
/// and return safety-factored bounds (TeaLeaf widens by ~5% to keep the
/// Chebyshev ellipse enclosing the spectrum).
EigenBounds bounds_from_cg_scalars(tl::span<const double> alphas,
                                   tl::span<const double> betas);

}  // namespace tea
