// solver.hpp — the generic TeaLeaf solvers (Jacobi, CG, Chebyshev, PPCG),
// written once against the Backend kernel interface.  Convergence is judged
// on the squared-residual reduction rrn <= eps * rr0, matching TeaLeaf's
// tl_eps semantics on its `error` variable.
#pragma once

#include "common/config.hpp"
#include "core/backend.hpp"

namespace tea {

struct SolveOptions {
  double eps = 1.0e-15;
  int max_iters = 10000;
  int ppcg_inner_steps = 10;
  int cheby_cg_presteps = 30;
  // Chebyshev convergence is only probed every this many iterations (a dot
  // product costs a global sync the smoothing loop otherwise avoids).
  int cheby_check_freq = 10;
  // Jacobi-diagonal preconditioning for the CG path
  // (tl_preconditioner_type=jac_diag).
  tl::PreconKind preconditioner = tl::PreconKind::kNone;

  static SolveOptions from(const tl::ProblemConfig& cfg) {
    SolveOptions o;
    o.eps = cfg.eps;
    o.max_iters = cfg.max_iters;
    o.ppcg_inner_steps = cfg.ppcg_inner_steps;
    o.cheby_cg_presteps = cfg.cheby_cg_presteps;
    o.preconditioner = cfg.preconditioner;
    return o;
  }
};

struct SolveStats {
  tl::SolverKind solver = tl::SolverKind::kCg;
  int iterations = 0;        // outer iterations (incl. any CG presteps)
  long inner_iterations = 0; // PPCG smoothing steps in total
  double initial_rr = 0.0;   // ||r0||^2
  double final_rr = 0.0;     // ||r||^2 at exit
  bool converged = false;
};

/// Solve A u = u0 in-place through `backend`'s kernels.  The backend must be
/// set up, with coefficients computed and rx/ry set for the current step.
SolveStats solve(Backend& backend, tl::SolverKind kind,
                 const SolveOptions& options);

// Individual entry points (used directly by tests and the ablation bench).
SolveStats solve_jacobi(Backend& backend, const SolveOptions& options);
SolveStats solve_cg(Backend& backend, const SolveOptions& options);
SolveStats solve_cheby(Backend& backend, const SolveOptions& options);
SolveStats solve_ppcg(Backend& backend, const SolveOptions& options);

}  // namespace tea
