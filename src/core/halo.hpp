// halo.hpp — host-side halo maintenance shared by the manual CPU backends:
// internal edge exchange over minimpi plus reflective physical boundaries.
// (miniops has its own Dat-based implementation; device backends reflect with
// kernels.)
#pragma once

#include "core/backends/field_store.hpp"
#include "minimpi/cart.hpp"
#include "minimpi/comm.hpp"

namespace tea {

/// Exchange `depth` halo layers of `f` with Cartesian neighbours (when `comm`
/// is non-null) and mirror-fill the physical edges of the partition.
/// Collective across the communicator: every rank must call it in the same
/// order with the same depth.
void exchange_and_reflect(CellView f, const PartitionGeom& geom,
                          minimpi::Comm* comm, const minimpi::Cart2D* cart,
                          int depth);

}  // namespace tea
