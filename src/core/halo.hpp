// halo.hpp — host-side halo maintenance shared by the manual CPU backends:
// internal edge exchange over minimpi plus reflective physical boundaries.
// (miniops has its own Dat-based implementation; device backends reflect with
// kernels.)
//
// The exchange is split-phase: begin() posts the four neighbour receives and
// eagerly sends the four boundary strips, finish() completes the receives,
// unpacks and mirror-fills the physical edges.  Callers that can compute
// halo-independent interior cells between the two calls overlap communication
// with compute (ManualHostBackend's exchange_* kernels); calling them
// back-to-back is the blocking exchange.
//
// Wire protocol: the four directions fly concurrently.  X messages carry
// depth x ny column strips, y messages depth x nx row strips of owned cells
// only — diagonal halo corners are never read by the 5-point stencil or the
// coefficient kernels, so they are left unexchanged (physical-edge corners
// are refilled by the reflection pass every round).
#pragma once

#include <vector>

#include "core/backend.hpp"
#include "core/backends/field_store.hpp"
#include "minimpi/cart.hpp"
#include "minimpi/comm.hpp"

namespace tea {

/// One split-phase halo exchange of `depth` layers of `f`.  Collective across
/// the communicator: every rank must run begin()+finish() in the same order
/// with the same depth.  With a null comm both phases reduce to the
/// reflective physical fill.
class HaloExchange {
public:
  HaloExchange(CellView f, const PartitionGeom& geom, minimpi::Comm* comm,
               const minimpi::Cart2D* cart, int depth);

  /// Post the neighbour receives and eagerly send the boundary strips.
  void begin();

  /// Complete the receives, unpack the halos, mirror-fill physical edges and
  /// charge the instrumentation for the messages actually exchanged.
  void finish();

private:
  CellView f_;
  PartitionGeom geom_;
  minimpi::Comm* comm_;
  const minimpi::Cart2D* cart_;
  int depth_;
  bool begun_ = false;

  // Pack/unpack staging, one buffer per direction (left, right, down, up).
  std::vector<double> send_[4];
  std::vector<double> recv_[4];
  minimpi::Request reqs_[4];
};

/// Blocking exchange + reflect: begin() immediately followed by finish().
void exchange_and_reflect(CellView f, const PartitionGeom& geom,
                          minimpi::Comm* comm, const minimpi::Cart2D* cart,
                          int depth);

/// Backend::counter_fence over a communicator, shared by the minimpi-backed
/// backends.  kReady and kDone fan a token in to rank 0 (the senders'
/// charges are sequenced before rank 0 proceeds); kGo fans the release out
/// from rank 0.  A one-rank world is a no-op.
void counter_fence(minimpi::Comm& comm, CounterFence phase);

}  // namespace tea
