// field.hpp — the TeaLeaf field set.  Every backend owns storage for these
// thirteen fields (density, two energies, solution/RHS, solver work vectors
// and the face-centred conduction coefficients), padded by the halo depth.
#pragma once

#include <array>
#include <string_view>

namespace tea {

enum class FieldId : int {
  kDensity = 0,
  kEnergy0,   // committed energy (state between steps)
  kEnergy1,   // working energy within a step
  kU,         // temperature (solution vector)
  kU0,        // right-hand side (u at step start)
  kR,         // residual
  kP,         // CG search direction
  kW,         // operator application scratch (w = A p)
  kZ,         // preconditioned residual / PPCG inner solution
  kSd,        // Chebyshev / PPCG smoothing direction
  kKx,        // x-face conduction coefficient
  kKy,        // y-face conduction coefficient
  kRInner,    // PPCG inner residual
  kCount,
};

inline constexpr int kNumFields = static_cast<int>(FieldId::kCount);

constexpr std::string_view field_name(FieldId f) {
  constexpr std::array<std::string_view, kNumFields> names = {
      "density", "energy0", "energy1", "u",  "u0", "r",       "p",
      "w",       "z",       "sd",      "kx", "ky", "r_inner"};
  return names[static_cast<int>(f)];
}

/// TeaLeaf's conserved-quantity summary, reduced over the mesh interior.
/// `temp` is the volume-weighted temperature sum the original reports.
struct FieldSummary {
  double vol = 0.0;
  double mass = 0.0;
  double ie = 0.0;
  double temp = 0.0;
};

}  // namespace tea
