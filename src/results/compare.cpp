#include "results/compare.hpp"

#include <algorithm>
#include <cmath>

#include "machine/efficiency.hpp"
#include "machine/machine_model.hpp"
#include "machine/roofline.hpp"
#include "ppmetric/paper_data.hpp"

namespace results {

std::vector<std::string> cpu_variants() {
  std::vector<std::string> out;
  for (const std::string& v : machine::paper_variants()) {
    if (!machine::is_gpu_variant(v)) out.push_back(v);
  }
  return out;
}

std::vector<std::string> gpu_variants() {
  std::vector<std::string> out;
  for (const std::string& v : machine::paper_variants()) {
    if (machine::is_gpu_variant(v)) out.push_back(v);
  }
  return out;
}

std::vector<ProjectedVariant> project_rows(const std::vector<ResultRow>& rows,
                                           const ProjectionSpec& spec) {
  std::vector<ProjectedVariant> out;
  long reference_iterations = 0;
  for (const ResultRow& row : rows) {
    ProjectedVariant pv;
    pv.row = row;

    if (reference_iterations == 0) reference_iterations = row.iterations;
    const double iter_norm =
        row.iterations > 0 ? static_cast<double>(reference_iterations) /
                                 static_cast<double>(row.iterations)
                           : 1.0;

    // Traffic ~ cells x iterations; CG iterations ~ mesh width at fixed
    // relative tolerance (sqrt of the Laplacian condition number).
    const double width_ratio =
        static_cast<double>(spec.paper_mesh) / std::max(1, row.mesh_x);
    const double cells_ratio = width_ratio * width_ratio;
    const double step_ratio =
        static_cast<double>(spec.paper_steps) / std::max(1, row.steps);
    const double iter_ratio = width_ratio * step_ratio * iter_norm;
    const machine::Counters scaled = machine::scale_counters(
        row.counters, cells_ratio, iter_ratio, width_ratio);
    pv.projected_iterations = scaled.solver_iterations;
    const auto ws = static_cast<std::int64_t>(
        static_cast<double>(row.working_set_bytes) * cells_ratio);

    for (const std::string& mid : spec.machines) {
      const machine::MachineModel& m = machine::machine_by_id(mid);
      if (!machine::supported(row.variant, m)) continue;
      const machine::TimeBreakdown t =
          machine::project_time(scaled, m, row.variant, ws);
      pv.machines.push_back(mid);
      pv.seconds.push_back(t.total());
      pv.bw_gbs.push_back(t.achieved_bw_gbs(scaled));
      pv.gflops.push_back(t.achieved_gflops(scaled));
    }
    out.push_back(std::move(pv));
  }
  return out;
}

std::vector<ResultRow> select_rows(const ResultStore& store,
                                   const SweepConfig& config,
                                   const std::vector<std::string>& variants,
                                   std::vector<std::string>* missing) {
  const std::vector<std::string>& wanted =
      variants.empty() ? config.variants : variants;
  std::vector<ResultRow> out;
  for (const SweepProblem& sp : config.problems) {
    for (const std::string& variant : wanted) {
      const std::string key =
          measurement_key(variant, sp.problem, config.options);
      if (const ResultRow* row = store.find(key)) {
        out.push_back(*row);
      } else if (missing) {
        missing->push_back(variant);
      }
    }
  }
  return out;
}

std::vector<ppm::VariantResult> to_variant_results(
    const std::vector<ProjectedVariant>& projected) {
  std::vector<ppm::VariantResult> out;
  for (const ProjectedVariant& pv : projected) {
    for (std::size_t k = 0; k < pv.machines.size(); ++k) {
      const machine::MachineModel& m = machine::machine_by_id(pv.machines[k]);
      out.push_back(ppm::VariantResult{pv.row.variant, pv.machines[k],
                                       pv.seconds[k], pv.bw_gbs[k],
                                       pv.gflops[k], m.peak_bw_gbs,
                                       m.peak_gflops});
    }
  }
  return out;
}

namespace {

double find_paper(const std::string& framework,
                  double ppm::paper::Table3Row::*member) {
  for (const auto& row : ppm::paper::table3()) {
    if (row.framework == framework) return row.*member;
  }
  return -1.0;
}

}  // namespace

PaperComparison compare_to_paper(const std::vector<ppm::VariantResult>& results,
                                 const std::vector<std::string>& cpu_machines,
                                 const std::vector<std::string>& gpu_machines) {
  PaperComparison cmp{
      ppm::build_table3(results, cpu_machines, gpu_machines),
      tl::Table({""}),
      tl::Table({"framework", "P(CPU) ours", "P(CPU) paper", "P(all) ours",
                 "P(all) paper", "delta(all)"}),
      0.0, false, false};
  cmp.ours = ppm::render_table3(cmp.table_rows, cpu_machines, gpu_machines);

  for (const auto& row : cmp.table_rows) {
    const double paper_cpu =
        find_paper(row.framework, &ppm::paper::Table3Row::p_cpu_app);
    const double paper_all =
        find_paper(row.framework, &ppm::paper::Table3Row::p_all_app);
    if (paper_cpu < 0.0) continue;
    const double delta = 100.0 * (row.p_all_app - paper_all);
    cmp.worst_delta = std::max(cmp.worst_delta, std::fabs(delta));
    cmp.versus.add_row({row.framework, tl::Table::num(100 * row.p_cpu_app, 2),
                        tl::Table::num(100 * paper_cpu, 2),
                        tl::Table::num(100 * row.p_all_app, 2),
                        tl::Table::num(100 * paper_all, 2),
                        tl::Table::num(delta, 2)});
  }

  // §V-B's concluding ordering on P(app, CPU∪GPU).
  const auto p_all = [&](const std::string& fw) {
    for (const auto& row : cmp.table_rows) {
      if (row.framework == fw) return row.p_all_app;
    }
    return -1.0;
  };
  cmp.ordering_ok = p_all("manual") > p_all("raja") &&
                    p_all("raja") > p_all("ops") &&
                    p_all("ops") > p_all("kokkos");

  // §V-A's memory-bound signature: compute efficiency tiny everywhere.
  cmp.memory_bound = true;
  for (const auto& row : cmp.table_rows) {
    for (const auto& [mid, eff] : row.per_machine) {
      if (eff.supported && eff.arch_compute > 0.10) cmp.memory_bound = false;
    }
  }
  return cmp;
}

tl::Table render_rows(const ResultStore& store, const std::string& variant,
                      const std::string& deck) {
  tl::Table table({"variant", "deck", "mesh", "steps", "solver", "ranks",
                   "threads", "tile", "min s", "median s", "stddev s", "iters",
                   "conv", "git", "timestamp"});
  for (const ResultRow& r : store.rows()) {
    if (!variant.empty() && r.variant != variant) continue;
    if (!deck.empty() && r.deck != deck) continue;
    table.add_row({r.variant, r.deck,
                   std::to_string(r.mesh_x) + "x" + std::to_string(r.mesh_y),
                   std::to_string(r.steps), r.solver, std::to_string(r.ranks),
                   std::to_string(r.threads), std::to_string(r.tile_rows),
                   tl::Table::num(r.timing.min_s, 3),
                   tl::Table::num(r.timing.median_s, 3),
                   tl::Table::num(r.timing.stddev_s, 4),
                   std::to_string(r.iterations), r.converged ? "yes" : "NO",
                   r.git_rev, r.timestamp});
  }
  return table;
}

}  // namespace results
