// compare.hpp — query-time layers over the result store: scale stored
// counters to the paper's meshes and project them through the roofline
// models, join the projections against the paper's published Table III
// numbers, and render store contents as tables.  This is what makes the
// figure/table benches pure queries: they re-project stored counters instead
// of re-measuring.
#pragma once

#include <string>
#include <vector>

#include "common/table.hpp"
#include "ppmetric/report.hpp"
#include "results/result_store.hpp"
#include "results/sweep.hpp"

namespace results {

/// The paper's Fig. 1/2 variant groupings (Table I order).
std::vector<std::string> cpu_variants();
std::vector<std::string> gpu_variants();

struct ProjectionSpec {
  int paper_mesh = 1000;
  int paper_steps = 10;
  std::vector<std::string> machines;  // project onto these model ids
};

/// One row's paper-mesh projections (parallel arrays over the supported
/// subset of spec.machines, matching bench::VariantTimes layout).
struct ProjectedVariant {
  ResultRow row;
  long projected_iterations = 0;
  std::vector<std::string> machines;
  std::vector<double> seconds;
  std::vector<double> bw_gbs;
  std::vector<double> gflops;
};

/// Scale each row's counters to the paper mesh/steps and project through the
/// machine models.  Iteration counts are normalised to the first row's (the
/// paper compiled all builds with -fp-model strict to keep convergence paths
/// comparable; our device backends differ at the ULP level, which CG's tail
/// amplifies — numerical luck, not programming-model cost).  Rows must share
/// a mesh; a variant/machine pair the calibration marks unsupported gets no
/// column.
std::vector<ProjectedVariant> project_rows(const std::vector<ResultRow>& rows,
                                           const ProjectionSpec& spec);

/// Select the rows `config`'s matrix would produce, in matrix order,
/// restricted to `variants` when non-empty.  Rows missing from the store are
/// skipped; `missing` (when non-null) receives their variant ids.
std::vector<ResultRow> select_rows(const ResultStore& store,
                                   const SweepConfig& config,
                                   const std::vector<std::string>& variants = {},
                                   std::vector<std::string>* missing = nullptr);

/// Flatten projections into the ppmetric result records.
std::vector<ppm::VariantResult> to_variant_results(
    const std::vector<ProjectedVariant>& projected);

/// The Table III our-vs-paper join (shared by bench_table3_portability and
/// `tea_sweep compare`).
struct PaperComparison {
  std::vector<ppm::FrameworkRow> table_rows;
  tl::Table ours;    // our Table III render
  tl::Table versus;  // framework | P(CPU) ours/paper | P(all) ours/paper | delta
  double worst_delta = 0.0;  // worst |delta| on P(all, app), percentage points
  bool ordering_ok = false;  // §V-B: manual > raja > ops > kokkos on P(all,app)
  bool memory_bound = false; // §V-A: compute efficiency < 10% everywhere
};
PaperComparison compare_to_paper(const std::vector<ppm::VariantResult>& results,
                                 const std::vector<std::string>& cpu_machines,
                                 const std::vector<std::string>& gpu_machines);

/// Render store rows (optionally filtered by variant and/or deck label) as
/// an ASCII table for `tea_sweep query`.
tl::Table render_rows(const ResultStore& store, const std::string& variant = "",
                      const std::string& deck = "");

}  // namespace results
