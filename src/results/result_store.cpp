#include "results/result_store.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "results/json.hpp"

namespace results {

TimingStats TimingStats::from_samples(std::vector<double> samples) {
  TimingStats s;
  s.samples_s = std::move(samples);
  if (s.samples_s.empty()) return s;
  std::vector<double> sorted = s.samples_s;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  s.min_s = sorted.front();
  s.median_s = n % 2 == 1 ? sorted[n / 2]
                          : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  double sum = 0.0;
  for (const double v : sorted) sum += v;
  s.mean_s = sum / static_cast<double>(n);
  double var = 0.0;
  for (const double v : sorted) var += (v - s.mean_s) * (v - s.mean_s);
  // Population stddev: with the harness's small sample counts the (n-1)
  // correction just inflates the noise estimate of the noise.
  s.stddev_s = std::sqrt(var / static_cast<double>(n));
  return s;
}

// FNV-1a, printed as 16 hex digits.  Collision-resistant enough for a store
// of at most a few thousand rows, and dependency-free.
std::string fnv1a_key(const std::string& text) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

std::string problem_key(const tl::ProblemConfig& p) {
  std::ostringstream os;
  os.precision(17);
  os << p.x_cells << '|' << p.y_cells << '|' << p.xmin << '|' << p.xmax << '|'
     << p.ymin << '|' << p.ymax << '|' << p.initial_timestep << '|'
     << p.end_step << '|' << tl::to_string(p.solver) << '|'
     << tl::to_string(p.coefficient) << '|' << tl::to_string(p.preconditioner)
     << '|' << p.eps << '|' << p.max_iters << '|' << p.ppcg_inner_steps << '|'
     << p.cheby_cg_presteps << '|' << p.halo_depth;
  for (const tl::StateConfig& st : p.states) {
    os << "|state:" << st.index << ',' << st.density << ',' << st.energy << ','
       << tl::to_string(st.geometry) << ',' << st.xmin << ',' << st.xmax << ','
       << st.ymin << ',' << st.ymax << ',' << st.cx << ',' << st.cy << ','
       << st.radius;
  }
  return fnv1a_key(os.str());
}

std::string measurement_key(const std::string& variant,
                            const tl::ProblemConfig& problem,
                            const tea::RunOptions& options) {
  std::ostringstream os;
  os << variant << '|' << problem_hash(problem) << '|' << options.threads
     << '|' << options.ranks << '|' << options.hybrid_threads << '|'
     << options.tile.tile_rows << '|' << options.tile.cache_bytes << '|'
     << options.tile.max_chain << '|' << options.gpu_block_x << '|'
     << options.gpu_block_y;
  // Appended only when non-default so every pre-existing key (and the
  // committed baselines keyed on them) stays stable.
  if (!options.fuse_operator_dot) os << "|unfused";
  return fnv1a_key(os.str());
}

namespace {

Json counters_to_json(const machine::Counters& c) {
  Json j = Json::object();
  j.set("bytes_read", Json(c.bytes_read));
  j.set("bytes_written", Json(c.bytes_written));
  j.set("flops", Json(c.flops));
  j.set("kernel_launches", Json(c.kernel_launches));
  j.set("reductions", Json(c.reductions));
  j.set("messages", Json(c.messages));
  j.set("message_bytes", Json(c.message_bytes));
  j.set("h2d_bytes", Json(c.h2d_bytes));
  j.set("d2h_bytes", Json(c.d2h_bytes));
  j.set("halo_exchanges", Json(c.halo_exchanges));
  j.set("solver_iterations", Json(c.solver_iterations));
  return j;
}

machine::Counters counters_from_json(const Json& j) {
  machine::Counters c;
  c.bytes_read = j.get_int("bytes_read", 0);
  c.bytes_written = j.get_int("bytes_written", 0);
  c.flops = j.get_int("flops", 0);
  c.kernel_launches = j.get_int("kernel_launches", 0);
  c.reductions = j.get_int("reductions", 0);
  c.messages = j.get_int("messages", 0);
  c.message_bytes = j.get_int("message_bytes", 0);
  c.h2d_bytes = j.get_int("h2d_bytes", 0);
  c.d2h_bytes = j.get_int("d2h_bytes", 0);
  c.halo_exchanges = j.get_int("halo_exchanges", 0);
  c.solver_iterations = j.get_int("solver_iterations", 0);
  return c;
}

Json row_to_json(const ResultRow& r) {
  Json j = Json::object();
  j.set("key", Json(r.key));
  j.set("variant", Json(r.variant));
  j.set("platform", Json(r.platform));
  j.set("deck", Json(r.deck));
  j.set("deck_hash", Json(r.deck_hash));
  j.set("mesh_x", Json(r.mesh_x));
  j.set("mesh_y", Json(r.mesh_y));
  j.set("steps", Json(r.steps));
  j.set("solver", Json(r.solver));
  j.set("eps", Json(r.eps));
  j.set("threads", Json(r.threads));
  j.set("ranks", Json(r.ranks));
  j.set("hybrid_threads", Json(r.hybrid_threads));
  j.set("tile_rows", Json(r.tile_rows));
  j.set("gpu_block_x", Json(r.gpu_block_x));
  j.set("gpu_block_y", Json(r.gpu_block_y));
  j.set("fused", Json(r.fused));
  Json samples = Json::array();
  for (const double s : r.timing.samples_s) samples.push_back(Json(s));
  j.set("samples_s", std::move(samples));
  j.set("wall_min_s", Json(r.timing.min_s));
  j.set("wall_median_s", Json(r.timing.median_s));
  j.set("wall_mean_s", Json(r.timing.mean_s));
  j.set("wall_stddev_s", Json(r.timing.stddev_s));
  // Written only for service-replay rows, so ordinary rows (and the
  // committed baselines diffed against them) keep their existing layout.
  if (r.p99_s > 0.0) j.set("p99_s", Json(r.p99_s));
  if (r.throughput_sps > 0.0) j.set("throughput_sps", Json(r.throughput_sps));
  j.set("iterations", Json(static_cast<std::int64_t>(r.iterations)));
  j.set("inner_iterations", Json(static_cast<std::int64_t>(r.inner_iterations)));
  j.set("converged", Json(r.converged));
  j.set("working_set_bytes", Json(r.working_set_bytes));
  j.set("counters", counters_to_json(r.counters));
  Json projections = Json::array();
  for (const Projection& p : r.projections) {
    Json pj = Json::object();
    pj.set("machine", Json(p.machine));
    pj.set("seconds", Json(p.seconds));
    pj.set("bw_gbs", Json(p.bw_gbs));
    pj.set("gflops", Json(p.gflops));
    projections.push_back(std::move(pj));
  }
  j.set("projections", std::move(projections));
  j.set("toolchain", Json(r.toolchain));
  j.set("git_rev", Json(r.git_rev));
  j.set("timestamp", Json(r.timestamp));
  return j;
}

ResultRow row_from_json(const Json& j) {
  ResultRow r;
  r.key = j.get_string("key", "");
  r.variant = j.get_string("variant", "");
  r.platform = j.get_string("platform", "");
  r.deck = j.get_string("deck", "");
  r.deck_hash = j.get_string("deck_hash", "");
  r.mesh_x = static_cast<int>(j.get_int("mesh_x", 0));
  r.mesh_y = static_cast<int>(j.get_int("mesh_y", 0));
  r.steps = static_cast<int>(j.get_int("steps", 0));
  r.solver = j.get_string("solver", "");
  r.eps = j.get_double("eps", 0.0);
  r.threads = static_cast<int>(j.get_int("threads", 0));
  r.ranks = static_cast<int>(j.get_int("ranks", 0));
  r.hybrid_threads = static_cast<int>(j.get_int("hybrid_threads", 0));
  r.tile_rows = static_cast<int>(j.get_int("tile_rows", 0));
  r.gpu_block_x = static_cast<int>(j.get_int("gpu_block_x", 0));
  r.gpu_block_y = static_cast<int>(j.get_int("gpu_block_y", 0));
  if (const Json* f = j.get("fused")) r.fused = f->as_bool();
  std::vector<double> samples;
  if (const Json* s = j.get("samples_s")) {
    for (const Json& v : s->items()) samples.push_back(v.as_double());
  }
  r.timing = TimingStats::from_samples(std::move(samples));
  r.p99_s = j.get_double("p99_s", 0.0);
  r.throughput_sps = j.get_double("throughput_sps", 0.0);
  r.iterations = static_cast<long>(j.get_int("iterations", 0));
  r.inner_iterations = static_cast<long>(j.get_int("inner_iterations", 0));
  if (const Json* c = j.get("converged")) r.converged = c->as_bool();
  r.working_set_bytes = j.get_int("working_set_bytes", 0);
  if (const Json* c = j.get("counters")) r.counters = counters_from_json(*c);
  if (const Json* ps = j.get("projections")) {
    for (const Json& pj : ps->items()) {
      Projection p;
      p.machine = pj.get_string("machine", "");
      p.seconds = pj.get_double("seconds", 0.0);
      p.bw_gbs = pj.get_double("bw_gbs", 0.0);
      p.gflops = pj.get_double("gflops", 0.0);
      r.projections.push_back(std::move(p));
    }
  }
  r.toolchain = j.get_string("toolchain", "");
  r.git_rev = j.get_string("git_rev", "");
  r.timestamp = j.get_string("timestamp", "");
  return r;
}

}  // namespace

ResultStore ResultStore::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return ResultStore{};
  std::ostringstream ss;
  ss << in.rdbuf();
  return from_json(ss.str());
}

ResultStore ResultStore::from_json(const std::string& text) {
  const Json doc = Json::parse(text);
  TL_REQUIRE(doc.is_object(), "result store document must be a JSON object");
  const std::int64_t version = doc.get_int("schema_version", -1);
  if (version != kSchemaVersion) {
    throw tl::ConfigError("result store schema_version " +
                          std::to_string(version) + " != supported " +
                          std::to_string(kSchemaVersion));
  }
  ResultStore store;
  if (const Json* rows = doc.get("rows")) {
    for (const Json& rj : rows->items()) store.put(row_from_json(rj));
  }
  return store;
}

std::string ResultStore::to_json() const {
  Json doc = Json::object();
  doc.set("schema_version", Json(kSchemaVersion));
  doc.set("generator", Json("tea_sweep (tealeaf-portability)"));
  Json rows = Json::array();
  for (const ResultRow& r : rows_) rows.push_back(row_to_json(r));
  doc.set("rows", std::move(rows));
  return doc.dump(2) + "\n";
}

void ResultStore::save(const std::string& path) const {
  std::ofstream out(path);
  TL_REQUIRE(out.good(), "cannot open result store '" + path + "' for write");
  out << to_json();
  TL_REQUIRE(out.good(), "short write to result store '" + path + "'");
}

const ResultRow* ResultStore::find(const std::string& key) const {
  for (const ResultRow& r : rows_) {
    if (r.key == key) return &r;
  }
  return nullptr;
}

const ResultRow* ResultStore::lookup(const std::string& key) {
  const ResultRow* r = find(key);
  if (r) {
    ++hits_;
  } else {
    ++misses_;
  }
  return r;
}

void ResultStore::put(ResultRow row) {
  for (ResultRow& existing : rows_) {
    if (existing.key == row.key) {
      existing = std::move(row);
      return;
    }
  }
  rows_.push_back(std::move(row));
}

void ResultStore::relabel(const std::string& key,
                          const std::string& deck_label) {
  for (ResultRow& r : rows_) {
    if (r.key == key) {
      r.deck = deck_label;
      return;
    }
  }
}

std::size_t ResultStore::merge(const ResultStore& other) {
  std::size_t changed = 0;
  for (const ResultRow& r : other.rows_) {
    put(r);
    ++changed;
  }
  return changed;
}

const char* to_string(GateVerdict v) {
  switch (v) {
    case GateVerdict::kPass: return "PASS";
    case GateVerdict::kFail: return "FAIL";
    case GateVerdict::kMissingBaseline: return "MISSING-BASELINE";
  }
  return "?";
}

namespace {

/// "name base -> cur" description of the first mismatching counter between
/// two rows, or empty when everything the gate freezes matches exactly.
std::string first_counter_mismatch(const ResultRow& base,
                                   const ResultRow& cur) {
  struct Field {
    const char* name;
    std::int64_t machine::Counters::*member;
  };
  static constexpr Field kFields[] = {
      {"bytes_read", &machine::Counters::bytes_read},
      {"bytes_written", &machine::Counters::bytes_written},
      {"flops", &machine::Counters::flops},
      {"kernel_launches", &machine::Counters::kernel_launches},
      {"reductions", &machine::Counters::reductions},
      {"messages", &machine::Counters::messages},
      {"message_bytes", &machine::Counters::message_bytes},
      {"h2d_bytes", &machine::Counters::h2d_bytes},
      {"d2h_bytes", &machine::Counters::d2h_bytes},
      {"halo_exchanges", &machine::Counters::halo_exchanges},
      {"solver_iterations", &machine::Counters::solver_iterations},
  };
  for (const Field& f : kFields) {
    const std::int64_t b = base.counters.*f.member;
    const std::int64_t c = cur.counters.*f.member;
    if (b != c) {
      return std::string(f.name) + " " + std::to_string(b) + " -> " +
             std::to_string(c);
    }
  }
  if (base.iterations != cur.iterations) {
    return "iterations " + std::to_string(base.iterations) + " -> " +
           std::to_string(cur.iterations);
  }
  if (base.inner_iterations != cur.inner_iterations) {
    return "inner_iterations " + std::to_string(base.inner_iterations) +
           " -> " + std::to_string(cur.inner_iterations);
  }
  return {};
}

}  // namespace

GateReport regression_gate(const ResultStore& baseline,
                           const ResultStore& current, GateOptions options) {
  GateReport report;
  for (const ResultRow& row : current.rows()) {
    GateResult g;
    g.key = row.key;
    g.variant = row.variant;
    g.deck = row.deck;
    g.current_s = row.timing.min_s;
    const ResultRow* base = baseline.find(row.key);
    // A baseline row without a positive min-sample time (hand-edited or
    // truncated store) cannot gate anything — count it as missing rather
    // than silently passing.
    if (!base || base->timing.min_s <= 0.0) {
      g.verdict = GateVerdict::kMissingBaseline;
      ++report.missing;
    } else {
      g.baseline_s = base->timing.min_s;
      g.rel_delta = g.baseline_s > 0.0
                        ? (g.current_s - g.baseline_s) / g.baseline_s
                        : 0.0;
      g.verdict = g.rel_delta > options.rel_tolerance ? GateVerdict::kFail
                                                      : GateVerdict::kPass;
      if (options.compare_counters) {
        g.counter_mismatch = first_counter_mismatch(*base, row);
        if (!g.counter_mismatch.empty()) g.verdict = GateVerdict::kFail;
      }
      ++(g.verdict == GateVerdict::kFail ? report.failed : report.passed);
    }
    report.results.push_back(std::move(g));
  }
  return report;
}

}  // namespace results
