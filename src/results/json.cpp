#include "results/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace results {

namespace {

class Parser {
public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw tl::ConfigError("JSON parse error at offset " +
                          std::to_string(pos_) + ": " + msg);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json();
        fail("bad literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      obj.set(key, parse_value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return obj;
      }
      fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return arr;
      }
      fail("expected ',' or ']' in array");
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned cp = 0;
    for (int k = 0; k < 4; ++k) {
      const char h = text_[pos_++];
      cp <<= 4;
      if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
      else fail("bad \\u escape digit");
    }
    return cp;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // The store only ever writes ASCII; decode escapes to UTF-8 so
          // foreign files still round-trip.  Surrogate pairs combine into
          // one code point; a lone surrogate would produce invalid UTF-8,
          // so it is rejected.
          unsigned cp = parse_hex4();
          if (cp >= 0xDC00 && cp <= 0xDFFF) fail("lone low surrogate");
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("high surrogate not followed by \\u escape");
            }
            pos_ += 2;
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          }
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else if (cp < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  // number := -? digits ('.' digits)? ([eE] [+-]? digits)?  — the full token
  // must validate; std::stod alone would silently accept a valid prefix of
  // garbage like "1-2" or "1.2.3".
  static bool valid_number(const std::string& t, bool& integral) {
    integral = true;
    std::size_t i = 0;
    const auto digits = [&] {
      const std::size_t before = i;
      while (i < t.size() && std::isdigit(static_cast<unsigned char>(t[i]))) {
        ++i;
      }
      return i > before;
    };
    if (i < t.size() && t[i] == '-') ++i;
    if (!digits()) return false;
    if (i < t.size() && t[i] == '.') {
      integral = false;
      ++i;
      if (!digits()) return false;
    }
    if (i < t.size() && (t[i] == 'e' || t[i] == 'E')) {
      integral = false;
      ++i;
      if (i < t.size() && (t[i] == '+' || t[i] == '-')) ++i;
      if (!digits()) return false;
    }
    return i == t.size();
  }

  Json parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          c == 'e' || c == 'E' || c == '-' || c == '+') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string tok = text_.substr(start, pos_ - start);
    bool integral = true;
    if (!valid_number(tok, integral)) fail("bad number '" + tok + "'");
    try {
      if (integral) return Json(static_cast<std::int64_t>(std::stoll(tok)));
    } catch (const std::out_of_range&) {
      // A valid integer wider than 64 bits: degrade to double.
    } catch (const std::exception&) {
      fail("bad number '" + tok + "'");
    }
    try {
      return Json(std::stod(tok));
    } catch (const std::exception&) {
      fail("bad number '" + tok + "'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double v, std::int64_t i, bool integral) {
  if (integral) {
    out += std::to_string(i);
    return;
  }
  if (!std::isfinite(v)) {
    // JSON has no Inf/NaN; the store never produces them, but be safe.
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

bool Json::as_bool() const {
  TL_REQUIRE(kind_ == Kind::kBool, "JSON value is not a bool");
  return bool_;
}

double Json::as_double() const {
  TL_REQUIRE(kind_ == Kind::kNumber, "JSON value is not a number");
  return num_;
}

std::int64_t Json::as_int() const {
  TL_REQUIRE(kind_ == Kind::kNumber, "JSON value is not a number");
  return integral_ ? int_ : static_cast<std::int64_t>(num_);
}

const std::string& Json::as_string() const {
  TL_REQUIRE(kind_ == Kind::kString, "JSON value is not a string");
  return str_;
}

const Json::Array& Json::items() const {
  TL_REQUIRE(kind_ == Kind::kArray, "JSON value is not an array");
  return arr_;
}

const Json::Object& Json::members() const {
  TL_REQUIRE(kind_ == Kind::kObject, "JSON value is not an object");
  return obj_;
}

const Json* Json::get(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Json::get_double(const std::string& key, double fallback) const {
  const Json* v = get(key);
  return v && v->kind_ == Kind::kNumber ? v->as_double() : fallback;
}

std::int64_t Json::get_int(const std::string& key, std::int64_t fallback) const {
  const Json* v = get(key);
  return v && v->kind_ == Kind::kNumber ? v->as_int() : fallback;
}

std::string Json::get_string(const std::string& key,
                             const std::string& fallback) const {
  const Json* v = get(key);
  return v && v->kind_ == Kind::kString ? v->as_string() : fallback;
}

void Json::push_back(Json v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  TL_REQUIRE(kind_ == Kind::kArray, "push_back on non-array JSON value");
  arr_.push_back(std::move(v));
}

void Json::set(const std::string& key, Json v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  TL_REQUIRE(kind_ == Kind::kObject, "set on non-object JSON value");
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  obj_.emplace_back(key, std::move(v));
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent) * (depth + 1), ' ');
  const std::string close_pad(static_cast<std::size_t>(indent) * depth, ' ');
  const char* nl = indent > 0 ? "\n" : "";
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: append_number(out, num_, int_, integral_); break;
    case Kind::kString: append_escaped(out, str_); break;
    case Kind::kArray: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += "[";
      out += nl;
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (indent > 0) out += pad;
        arr_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < arr_.size()) out += ",";
        out += nl;
      }
      if (indent > 0) out += close_pad;
      out += "]";
      break;
    }
    case Kind::kObject: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += "{";
      out += nl;
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (indent > 0) out += pad;
        append_escaped(out, obj_[i].first);
        out += indent > 0 ? ": " : ":";
        obj_[i].second.dump_to(out, indent, depth + 1);
        if (i + 1 < obj_.size()) out += ",";
        out += nl;
      }
      if (indent > 0) out += close_pad;
      out += "}";
      break;
    }
  }
}

}  // namespace results
