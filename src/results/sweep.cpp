#include "results/sweep.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <memory>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/backends/manual_host.hpp"
#include "machine/efficiency.hpp"
#include "machine/instrumentation.hpp"
#include "machine/machine_model.hpp"
#include "machine/roofline.hpp"
#include "threading/thread_pool.hpp"

// Generated at build time by cmake/git_rev.cmake (defines TL_GIT_REV).
#if defined(__has_include)
#if __has_include("tl_git_rev.h")
#include "tl_git_rev.h"
#endif
#endif

#ifndef TL_TOOLCHAIN_FLAGS
#define TL_TOOLCHAIN_FLAGS "unknown"
#endif
#ifndef TL_GIT_REV
#define TL_GIT_REV "unknown"
#endif

namespace results {

tl::ProblemConfig bench_problem(int mesh, int steps, double eps) {
  tl::Config cfg = tl::Config::default_config();
  cfg.problem().x_cells = mesh;
  cfg.problem().y_cells = mesh;
  cfg.problem().end_step = steps;
  cfg.problem().eps = eps;
  cfg.problem().solver = tl::SolverKind::kCg;
  return cfg.problem();
}

tl::ProblemConfig aniso_bench_problem(int mesh, int steps, double eps) {
  // Programmatic twin of examples/decks/tea_aniso.in at mesh `mesh`: square
  // cell counts over a 4:1 domain make dx = 4*dy, so rx*Kx and ry*Ky differ
  // by 16x.  Bench binaries cannot load decks (no TEA_SOURCE_DIR), so the
  // deck and this function must stay in sync; test_decks pins that.
  tl::ProblemConfig p;
  p.x_cells = mesh;
  p.y_cells = mesh;
  p.xmin = 0.0;
  p.xmax = 40.0;
  p.ymin = 0.0;
  p.ymax = 10.0;
  p.initial_timestep = 0.004;
  p.end_step = steps;
  p.eps = eps;
  p.max_iters = 10000;
  p.solver = tl::SolverKind::kCg;
  tl::StateConfig ambient;
  ambient.index = 1;
  ambient.density = 100.0;
  ambient.energy = 0.0001;
  tl::StateConfig strip;
  strip.index = 2;
  strip.density = 0.1;
  strip.energy = 25.0;
  strip.geometry = tl::Geometry::kRectangle;
  strip.xmin = 0.0;
  strip.xmax = 40.0;
  strip.ymin = 0.0;
  strip.ymax = 2.0;
  p.states = {ambient, strip};
  return p;
}

std::string toolchain_flags() { return TL_TOOLCHAIN_FLAGS; }

std::string git_revision() { return TL_GIT_REV; }

std::string utc_timestamp_now() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &now);
#else
  gmtime_r(&now, &tm);
#endif
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

ResultRow measure(ResultStore& store, const MeasureSpec& original_spec) {
  MeasureSpec spec = original_spec;
  // Normalize away no-op options so one physical configuration has one key:
  // backends without a fused kernel run the unfused pair either way, and a
  // duplicate "|unfused" row would be the same measurement relabeled.
  if (!tea::backend_has_fused_operator_dot(spec.variant)) {
    spec.options.fuse_operator_dot = true;
  }
  const std::string key =
      measurement_key(spec.variant, spec.problem, spec.options);
  if (const ResultRow* cached = store.lookup(key)) {
    // Keys are label-free, so a cell first measured by the tuner sits under
    // an excluded-from-calibration "tune:" label.  An explicit non-tune
    // request for the same cell promotes it to the requested label —
    // otherwise `tune` before `run` would permanently starve the
    // calibration fit of these rows.  (Tune requests never demote non-tune
    // rows: the branch only fires on tune-labelled cached rows.)
    if (cached->deck.rfind(kTuneDeckPrefix, 0) == 0 &&
        spec.deck_label.rfind(kTuneDeckPrefix, 0) != 0) {
      store.relabel(key, spec.deck_label);
      cached = store.find(key);
    }
    return *cached;
  }

  const int samples = spec.samples > 0 ? spec.samples : 1;
  std::vector<double> wall;
  wall.reserve(static_cast<std::size_t>(samples));
  tea::RunResult run;
  for (int s = 0; s < samples; ++s) {
    run = tea::run_simulation(spec.variant, spec.problem, spec.options);
    wall.push_back(run.wall_seconds);
  }

  ResultRow row;
  row.key = key;
  row.variant = spec.variant;
  row.platform = machine::host_machine().id;
  row.deck = spec.deck_label;
  row.deck_hash = problem_hash(spec.problem);
  row.mesh_x = spec.problem.x_cells;
  row.mesh_y = spec.problem.y_cells;
  row.steps = spec.problem.end_step;
  row.solver = tl::to_string(spec.problem.solver);
  row.eps = spec.problem.eps;
  row.threads = spec.options.threads;
  row.ranks = spec.options.ranks;
  row.hybrid_threads = spec.options.hybrid_threads;
  row.tile_rows = spec.options.tile.tile_rows;
  row.gpu_block_x = spec.options.gpu_block_x;
  row.gpu_block_y = spec.options.gpu_block_y;
  row.fused = spec.options.fuse_operator_dot;
  row.timing = TimingStats::from_samples(std::move(wall));
  row.iterations = run.total_iterations;
  for (const tea::StepResult& s : run.steps) {
    row.inner_iterations += s.solve.inner_iterations;
  }
  row.converged = run.all_converged();
  row.working_set_bytes = run.working_set_bytes;
  row.counters = run.counters;

  // Native-mesh projections on the paper machines where the variant is
  // supported — a stored preview; the paper-mesh projections the figure
  // benches need are recomputed from the counters at query time.
  for (const machine::MachineModel* m : machine::paper_machines()) {
    if (!machine::supported(spec.variant, *m)) continue;
    const machine::TimeBreakdown t = machine::project_time(
        row.counters, *m, spec.variant, row.working_set_bytes);
    Projection p;
    p.machine = m->id;
    p.seconds = t.total();
    p.bw_gbs = t.achieved_bw_gbs(row.counters);
    p.gflops = t.achieved_gflops(row.counters);
    row.projections.push_back(std::move(p));
  }

  row.toolchain = toolchain_flags();
  row.git_rev = git_revision();
  row.timestamp = utc_timestamp_now();
  store.put(row);
  return row;
}

SweepOutcome run_sweep(ResultStore& store, SweepConfig config) {
  SweepOutcome outcome;
  for (const SweepProblem& sp : config.problems) {
    for (const std::string& variant : config.variants) {
      MeasureSpec spec;
      spec.variant = variant;
      spec.deck_label = sp.label;
      spec.problem = sp.problem;
      spec.options = config.options;
      spec.samples = config.samples;
      const int misses_before = store.misses();
      const ResultRow row = measure(store, spec);
      const bool was_cached = store.misses() == misses_before;
      ++(was_cached ? outcome.cached : outcome.measured);
      if (config.verbose) {
        std::printf("  [%s] %-16s %-12s median %.3fs (%d samples)\n",
                    was_cached ? "cache" : " run ", variant.c_str(),
                    sp.label.c_str(), row.timing.median_s,
                    static_cast<int>(row.timing.samples_s.size()));
      }
    }
  }
  return outcome;
}

SweepConfig default_sweep(int mesh, int steps, int samples) {
  SweepConfig config;
  config.variants = machine::paper_variants();
  config.problems.push_back(
      {"bench-" + std::to_string(mesh), bench_problem(mesh, steps)});
  config.options.ranks = 4;  // the harness default
  config.samples = samples;
  return config;
}

const std::vector<std::string>& sweep_deck_names() {
  static const std::vector<std::string> names = {
      "tea_bm_1", "tea_bm_2", "tea_bm_16", "tea_aniso",
      "tea_circle", "tea_point"};
  return names;
}

std::vector<SweepProblem> load_deck_problems(
    const std::string& decks_dir, const std::vector<std::string>& names,
    std::vector<std::string>* skipped) {
  std::vector<SweepProblem> out;
  for (const std::string& name : names.empty() ? sweep_deck_names() : names) {
    const std::string path = decks_dir + "/" + name + ".in";
    try {
      out.push_back({name, tl::Config::load(path).problem()});
    } catch (const tl::ConfigError& e) {
      if (skipped != nullptr) skipped->push_back(name + ": " + e.what());
    }
  }
  return out;
}

// --- kernel microbench sweep -------------------------------------------------

const std::vector<std::string>& kernel_sweep_kernels() {
  // "opdot" is the fused w = A p; p.w kernel the CG/PPCG inner iteration
  // runs; compare its row against the sum of a "stencil" and a "dot" row to
  // see what the fusion saves.
  static const std::vector<std::string> names = {"stencil", "dot", "opdot"};
  return names;
}

namespace {

/// Fixed repetitions per timed sample: enough calls that a sample is well
/// above timer resolution on small meshes, deterministic so row counters and
/// keys are reproducible across runs and machines.
int kernel_reps(int mesh) {
  const long cells = static_cast<long>(mesh) * mesh;
  return static_cast<int>(std::max<long>(4, (1L << 22) / std::max(1L, cells)));
}

/// A manual host backend prepared to the point where kernels can run (the
/// same preparation bench_kernels uses).  Only the two manual host variants
/// are meaningful kernel substrates; anything else would silently time
/// serial code under a mislabeled row id.
std::unique_ptr<tea::ManualHostBackend> prepared_backend(
    const std::string& variant, const tl::ProblemConfig& problem) {
  if (variant != "serial" && variant != "manual-omp") {
    throw tl::Error("kernel sweep variant must be serial or manual-omp, got '" +
                    variant + "'");
  }
  tlp::ThreadPool* pool =
      variant == "manual-omp" ? &tlp::global_pool() : nullptr;
  auto b = std::make_unique<tea::ManualHostBackend>(variant, pool, nullptr);
  b->setup(problem);
  const double dt = problem.initial_timestep;
  b->set_rx_ry(dt / (problem.dx() * problem.dx()),
               dt / (problem.dy() * problem.dy()));
  b->compute_coefficients(problem.coefficient);
  b->init_u_u0();
  b->update_halo({tea::FieldId::kU}, 1);
  return b;
}

/// One timed kernel invocation; `sink` defeats dead-code elimination of the
/// reduction results.
void run_kernel_once(const std::string& kernel, tea::ManualHostBackend& b,
                     double* sink) {
  if (kernel == "stencil") {
    b.apply_operator(tea::FieldId::kU, tea::FieldId::kW);
  } else if (kernel == "dot") {
    *sink += b.dot(tea::FieldId::kU, tea::FieldId::kU0);
  } else if (kernel == "opdot") {
    *sink += b.apply_operator_dot(tea::FieldId::kU, tea::FieldId::kW);
  } else {
    throw tl::Error("unknown kernel '" + kernel + "' in kernel sweep");
  }
}

}  // namespace

SweepOutcome run_kernel_sweep(ResultStore& store,
                              const KernelSweepConfig& config) {
  SweepOutcome outcome;
  const std::vector<std::string>& kernels =
      config.kernels.empty() ? kernel_sweep_kernels() : config.kernels;
  double sink = 0.0;
  for (const std::string& kernel : kernels) {
    for (const int mesh : config.meshes) {
      const tl::ProblemConfig problem = bench_problem(mesh, 1);
      for (const std::string& variant : config.variants) {
        const std::string row_variant = "kernel-" + kernel + "/" + variant;
        const std::string key =
            measurement_key(row_variant, problem, tea::RunOptions{});
        if (store.lookup(key) != nullptr) {
          ++outcome.cached;
          if (config.verbose) {
            std::printf("  [cache] %-24s mesh %d\n", row_variant.c_str(), mesh);
          }
          continue;
        }

        auto b = prepared_backend(variant, problem);
        const int reps = kernel_reps(mesh);
        const int samples = std::max(1, config.samples);
        run_kernel_once(kernel, *b, &sink);  // warm the fields and the pool

        // Counters cover exactly one sample (reps calls): the key excludes
        // the sample count, so the stored counters must not depend on it.
        machine::Counters counters;
        std::vector<double> per_call;
        per_call.reserve(static_cast<std::size_t>(samples));
        for (int s = 0; s < samples; ++s) {
          const machine::CounterScope scope;
          const tl::StopWatch watch;
          for (int r = 0; r < reps; ++r) run_kernel_once(kernel, *b, &sink);
          per_call.push_back(watch.seconds() / reps);
          if (s == 0) counters = scope.delta();
        }

        ResultRow row;
        row.key = key;
        row.variant = row_variant;
        row.platform = machine::host_machine().id;
        row.deck = "kernel-" + kernel;
        row.deck_hash = problem_hash(problem);
        row.mesh_x = mesh;
        row.mesh_y = mesh;
        row.steps = 1;
        row.solver = kernel;
        row.eps = problem.eps;
        row.timing = TimingStats::from_samples(std::move(per_call));
        row.iterations = reps;  // calls per timed sample
        row.converged = true;
        row.working_set_bytes = b->working_set_bytes();
        row.counters = counters;
        row.toolchain = toolchain_flags();
        row.git_rev = git_revision();
        row.timestamp = utc_timestamp_now();
        store.put(row);
        ++outcome.measured;
        if (config.verbose) {
          std::printf("  [ run ] %-24s mesh %4d  median %8.1f us/call\n",
                      row_variant.c_str(), mesh,
                      1e6 * row.timing.median_s);
        }
      }
    }
  }
  if (!std::isfinite(sink)) {
    std::fprintf(stderr, "kernel sweep: non-finite reduction result\n");
  }
  return outcome;
}

}  // namespace results
