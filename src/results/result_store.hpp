// result_store.hpp — the persistent benchmark result store.
//
// Every benchmark measurement in this repo is one *row*: a backend variant
// executed on one problem with one set of run options, timed over N samples,
// with the instrumentation counter delta and the native-mesh roofline
// projections attached.  Rows are content-addressed: the key is a hash of
// (variant id, canonical problem text, RunOptions), so re-requesting the same
// measurement is a cache hit and the figure/table benches become pure queries
// over a store populated by one shared sweep (see sweep.hpp).
//
// Stores persist as versioned JSON (`BENCH_results.json`); schema documented
// in docs/BENCHMARKS.md.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/registry.hpp"
#include "machine/instrumentation.hpp"

namespace results {

/// Bump when the JSON layout changes incompatibly.  Loading a file with a
/// different major version throws.
inline constexpr int kSchemaVersion = 1;

/// Deck-label prefix of rows stored by the tuner's measured refinement
/// (src/tuning).  Keys are label-free, so this is provenance, but two
/// layers act on it: calibration (src/validation) excludes such rows from
/// the host-model fit, and `measure` promotes them to the requested label
/// when a non-tune request hits the same cell.
inline constexpr const char* kTuneDeckPrefix = "tune:";

/// Per-sample wall-clock statistics.  The harness used to keep a single
/// hot-loop mean; the store keeps every sample so regression gates can reason
/// about noise (min for gating, stddev for confidence).
struct TimingStats {
  std::vector<double> samples_s;
  double min_s = 0.0;
  double median_s = 0.0;
  double mean_s = 0.0;
  double stddev_s = 0.0;

  static TimingStats from_samples(std::vector<double> samples);
};

/// Roofline projection of one row onto one modeled machine, at the row's own
/// mesh (scaling to paper meshes happens at query time; see compare.hpp).
struct Projection {
  std::string machine;
  double seconds = 0.0;
  double bw_gbs = 0.0;
  double gflops = 0.0;
};

/// One stored measurement.
struct ResultRow {
  std::string key;        // content-addressed (see measurement_key)
  std::string variant;    // backend id, e.g. "ops-tiled"
  std::string platform;   // machine the samples ran on (host model id)
  std::string deck;       // human label: deck name or "bench-<mesh>"
  std::string deck_hash;  // canonical problem hash (see problem_hash)

  int mesh_x = 0, mesh_y = 0, steps = 0;
  std::string solver;
  double eps = 0.0;

  // RunOptions at measurement time (part of the key).
  int threads = 0, ranks = 0, hybrid_threads = 0;
  int tile_rows = 0, gpu_block_x = 0, gpu_block_y = 0;
  bool fused = true;  // fused apply_operator_dot (RunOptions.fuse_operator_dot)

  TimingStats timing;
  // Service-replay metrics (src/service): for `service-replay/*` rows the
  // timing samples are per-request latencies, p99 is the tail-latency gate
  // statistic and throughput is end-to-end solves/sec.  Zero (and omitted
  // from the JSON) for ordinary measurement rows.
  double p99_s = 0.0;
  double throughput_sps = 0.0;
  long iterations = 0;        // outer solver iterations, summed over steps
  long inner_iterations = 0;  // Chebyshev/PPCG inner iterations
  bool converged = false;
  std::int64_t working_set_bytes = 0;
  machine::Counters counters;
  std::vector<Projection> projections;

  // Provenance.
  std::string toolchain;  // compiler flags the kernels were built with
  std::string git_rev;
  std::string timestamp;  // ISO-8601 UTC at measurement time
};

/// The store's FNV-1a keying primitive, printed as 16 hex digits.  Public so
/// every layer that derives keys from store identities (the tuner's
/// population hash, the service's plan cache) composes this one function
/// instead of re-implementing the constants.
std::string fnv1a_key(const std::string& text);

/// Canonical key of a problem: every ProblemConfig field that affects the
/// numerics participates (unlike tl::to_deck, which writes only the keys the
/// upstream deck format has).  This is THE problem identity of the repo —
/// result rows (`deck_hash`), tuned plans and the solve service's plan cache
/// all key on it, so "same problem" means the same thing everywhere.
std::string problem_key(const tl::ProblemConfig& problem);

/// Historical name for problem_key (row field is still called `deck_hash`).
inline std::string problem_hash(const tl::ProblemConfig& problem) {
  return problem_key(problem);
}

/// Content-addressed key for (variant, problem, options).
std::string measurement_key(const std::string& variant,
                            const tl::ProblemConfig& problem,
                            const tea::RunOptions& options);

class ResultStore {
public:
  ResultStore() = default;

  /// Load a store file; a missing file yields an empty store (first sweep).
  /// Malformed JSON or a schema-version mismatch throws tl::ConfigError.
  static ResultStore load(const std::string& path);
  static ResultStore from_json(const std::string& text);

  void save(const std::string& path) const;
  std::string to_json() const;

  const std::vector<ResultRow>& rows() const { return rows_; }
  std::size_t size() const { return rows_.size(); }

  /// Uncounted lookup (queries, diffs).
  const ResultRow* find(const std::string& key) const;

  /// Counted lookup used by the measurement path: increments the session
  /// cache-hit/miss counters that the zero-duplicate-measurement check reads.
  const ResultRow* lookup(const std::string& key);

  /// Insert `row`, replacing any existing row with the same key.
  void put(ResultRow row);

  /// Relabel the row under `key` (provenance only — the key is label-free).
  void relabel(const std::string& key, const std::string& deck_label);

  /// Merge rows from `other`; rows in `other` win on key collisions (they
  /// are assumed newer).  Returns the number of rows added or replaced.
  std::size_t merge(const ResultStore& other);

  /// Session cache statistics (not persisted).
  int hits() const { return hits_; }
  int misses() const { return misses_; }

private:
  std::vector<ResultRow> rows_;
  int hits_ = 0;
  int misses_ = 0;
};

/// Regression-gate verdict for one current row against a baseline store.
enum class GateVerdict { kPass, kFail, kMissingBaseline };
const char* to_string(GateVerdict v);

struct GateOptions {
  /// Wall-time tolerance: FAIL when the current min-sample time exceeds the
  /// baseline's by more than this relative amount (0.25 = +25%).
  double rel_tolerance = 0.25;
  /// Also require the instrumentation counters (bytes, flops, launches,
  /// reductions, messages, halo exchanges, solver iterations) and the
  /// iteration counts to match the baseline *exactly*.  Counters are
  /// deterministic — unlike wall times they carry no noise — so any drift
  /// is a semantic change: a kernel doing different work, not a slow run.
  bool compare_counters = false;
};

struct GateResult {
  std::string key;
  std::string variant;
  std::string deck;
  GateVerdict verdict = GateVerdict::kPass;
  double baseline_s = 0.0;  // baseline min-sample time
  double current_s = 0.0;   // current min-sample time
  double rel_delta = 0.0;   // (current - baseline) / baseline
  /// Empty when counters match (or were not compared); otherwise a
  /// "name base -> cur" description of the first mismatching counters.
  std::string counter_mismatch;
};

struct GateReport {
  std::vector<GateResult> results;
  int passed = 0;
  int failed = 0;
  int missing = 0;

  bool ok() const { return failed == 0; }
};

/// Compare every row of `current` against `baseline`: FAIL when the current
/// min-sample time exceeds baseline by more than `rel_tolerance` (0.25 =
/// +25%), or — with options.compare_counters — when any instrumentation
/// counter differs at all; MISSING-BASELINE when the baseline has no row
/// for the key.  Gating uses min-sample times, the noise-robust statistic.
GateReport regression_gate(const ResultStore& baseline,
                           const ResultStore& current, GateOptions options);
inline GateReport regression_gate(const ResultStore& baseline,
                                  const ResultStore& current,
                                  double rel_tolerance) {
  GateOptions o;
  o.rel_tolerance = rel_tolerance;
  return regression_gate(baseline, current, o);
}

}  // namespace results
