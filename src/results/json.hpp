// json.hpp — a minimal JSON document model for the results subsystem.
//
// The result store persists benchmark rows as versioned JSON
// (BENCH_results.json); nothing else in the repo needs JSON, so this is a
// deliberately small value type: null/bool/number/string/array/object,
// recursive-descent parsing, and stable pretty-printing.  Object key order is
// preserved so stored files diff cleanly across runs.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace results {

class Json {
public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : kind_(Kind::kNull) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}                  // NOLINT
  Json(double v) : kind_(Kind::kNumber), num_(v) {}               // NOLINT
  Json(std::int64_t v)                                            // NOLINT
      : kind_(Kind::kNumber), num_(static_cast<double>(v)), int_(v),
        integral_(true) {}
  Json(int v) : Json(static_cast<std::int64_t>(v)) {}             // NOLINT
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}  // NOLINT
  Json(const char* s) : Json(std::string(s)) {}                   // NOLINT

  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  /// Parse a JSON document.  Throws tl::ConfigError on malformed input.
  static Json parse(const std::string& text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Typed accessors; each throws tl::Error when the kind does not match.
  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const Array& items() const;
  const Object& members() const;

  /// Object lookup: null pointer when absent (or not an object).
  const Json* get(const std::string& key) const;
  /// Object lookup with a fallback for absent keys.
  double get_double(const std::string& key, double fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;

  /// Mutators (first call fixes the kind; mismatched kinds throw).
  void push_back(Json v);
  void set(const std::string& key, Json v);

  /// Serialise. indent=0 renders compact single-line JSON; indent>0 pretty-
  /// prints with that many spaces per level.
  std::string dump(int indent = 2) const;

private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::int64_t int_ = 0;
  bool integral_ = false;
  std::string str_;
  Array arr_;
  Object obj_;
};

}  // namespace results
