// sweep.hpp — the shared benchmark sweep: execute the (variant × problem)
// measurement matrix once, through the result store's content-addressed
// cache.  A measurement that is already stored is returned without running
// anything (a cache hit), which is what lets all twelve bench binaries share
// one sweep instead of re-measuring their slice of the matrix serially.
#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/registry.hpp"
#include "results/result_store.hpp"

namespace results {

/// One requested measurement.
struct MeasureSpec {
  std::string variant;
  std::string deck_label = "custom";  // stored in the row's `deck` field
  tl::ProblemConfig problem;
  tea::RunOptions options;
  int samples = 3;
};

/// The canonical figure/table bench problem (default TeaLeaf states on an
/// n×n mesh, CG).  The harness and the sweep construct it through this one
/// function so their store keys agree.
tl::ProblemConfig bench_problem(int mesh, int steps, double eps = 1.0e-15);

/// The anisotropic bench problem: the same hot-strip physics as
/// bench_problem on a 4:1 domain (examples/decks/tea_aniso.in at mesh
/// `mesh`), so dx = 4*dy and the operator's rx/ry split is exercised by the
/// figure benches too.  Constructed programmatically — bench binaries have
/// no deck directory at runtime.
tl::ProblemConfig aniso_bench_problem(int mesh, int steps,
                                      double eps = 1.0e-15);

/// Provenance recorded into every new row.
std::string toolchain_flags();   // compile flags of the kernel libraries
std::string git_revision();      // short rev at configure time
std::string utc_timestamp_now(); // ISO-8601, seconds resolution

/// Fetch-or-measure one cell of the matrix.  On a cache hit the stored row
/// is returned untouched; on a miss the simulation runs `samples` times and
/// the new row (timing stats, counters, native-mesh projections on the
/// paper machines, provenance) is inserted into `store`.
ResultRow measure(ResultStore& store, const MeasureSpec& spec);

struct SweepProblem {
  std::string label;
  tl::ProblemConfig problem;
};

struct SweepConfig {
  std::vector<std::string> variants;
  std::vector<SweepProblem> problems;
  tea::RunOptions options;
  int samples = 3;
  bool verbose = false;  // log each cell as it is measured or hit
};

struct SweepOutcome {
  int measured = 0;
  int cached = 0;
};

/// Run the full matrix through `store`.
SweepOutcome run_sweep(ResultStore& store, SweepConfig config);

/// The default matrix behind the figure/table benches: the paper's sixteen
/// variants on the canonical bench problem at `mesh`/`steps`.
SweepConfig default_sweep(int mesh, int steps, int samples);

/// Decks from examples/decks registered in the sweep matrix (used by
/// `tea_sweep run --decks`).
const std::vector<std::string>& sweep_deck_names();

/// Load registered decks from `decks_dir` as sweep problems — the problem
/// list behind `tea_sweep run --decks`, shared with the tests that consume
/// deck rows.  `names` empty means sweep_deck_names(); decks that fail to
/// load are skipped and reported via `skipped` ("name: error") when non-null.
std::vector<SweepProblem> load_deck_problems(
    const std::string& decks_dir, const std::vector<std::string>& names = {},
    std::vector<std::string>* skipped = nullptr);

// --- kernel microbench sweep -------------------------------------------------
//
// Persistent before/after evidence for hot-path kernel work: times the
// individual TeaLeaf kernels (the 5-point stencil operator and the
// dot-product reduction, the two §IV-C hot paths) on the manual host backend
// and stores one row per (kernel, variant, mesh) under variant ids of the
// form "kernel-<name>/<variant>".  Unlike bench_kernels (google-benchmark,
// adaptive iteration counts, no stable row identity), these rows use a fixed
// per-mesh repetition count, so they are content-addressed, cacheable and
// regression-gateable like any whole-solve row.

/// Kernel names the sweep knows.  The repetition count for a mesh is fixed
/// (deterministic keys and counters): reps = max(4, 2^22 / mesh^2).
const std::vector<std::string>& kernel_sweep_kernels();

struct KernelSweepConfig {
  std::vector<int> meshes = {128, 256, 512, 1024};
  std::vector<std::string> variants = {"serial", "manual-omp"};
  std::vector<std::string> kernels;  // empty = kernel_sweep_kernels()
  int samples = 5;
  bool verbose = false;
};

/// Fetch-or-measure the kernel matrix; timing samples hold per-call seconds.
SweepOutcome run_kernel_sweep(ResultStore& store,
                              const KernelSweepConfig& config);

}  // namespace results
