#include "net/replay.hpp"

#include <chrono>
#include <deque>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "net/client.hpp"

namespace net {

namespace {

using Clock = std::chrono::steady_clock;

struct ThreadOutcome {
  std::vector<service::SolveResponse> responses;  // indexed by sequence
  std::vector<double> latencies;
  long busy_retries = 0;
  std::string error;  // non-empty when the connection thread threw
};

void replay_connection(const std::string& address,
                       const std::vector<service::SolveRequest>& requests,
                       const NetReplayOptions& options,
                       ThreadOutcome& out) {
  try {
    Client client(address);
    const std::size_t total = requests.size() *
                              static_cast<std::size_t>(options.repeats);
    out.responses.resize(total);
    out.latencies.resize(total, 0.0);
    std::vector<Clock::time_point> started(total);

    struct Pending {
      std::uint64_t id;
      std::size_t seq;
    };
    std::deque<Pending> pending;

    const auto request_for = [&](std::size_t seq) -> const service::SolveRequest& {
      return requests[seq % requests.size()];
    };
    const auto complete_oldest = [&] {
      const Pending oldest = pending.front();
      pending.pop_front();
      const WireReply reply = client.wait(oldest.id);
      if (reply.busy) {
        // Backpressure: the queue refused this request.  Give the shards a
        // beat when nothing else is in flight, then resubmit — the bound
        // must show up as retries, never as lost work.
        ++out.busy_retries;
        if (pending.empty())
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        const service::SolveRequest& request = request_for(oldest.seq);
        pending.push_back(
            {client.submit(request.problem, request.label), oldest.seq});
        return;
      }
      out.responses[oldest.seq] = reply.response;
      out.latencies[oldest.seq] =
          std::chrono::duration<double>(Clock::now() - started[oldest.seq])
              .count();
    };

    for (std::size_t seq = 0; seq < total; ++seq) {
      while (pending.size() >= static_cast<std::size_t>(options.window))
        complete_oldest();
      const service::SolveRequest& request = request_for(seq);
      started[seq] = Clock::now();
      pending.push_back({client.submit(request.problem, request.label), seq});
    }
    while (!pending.empty()) complete_oldest();
  } catch (const std::exception& e) {
    out.error = e.what();
  }
}

}  // namespace

NetReplayReport run_net_replay(const std::string& address,
                               const std::vector<service::SolveRequest>& requests,
                               const NetReplayOptions& options) {
  TL_REQUIRE(options.connections >= 1, "net replay: need >= 1 connection");
  TL_REQUIRE(options.window >= 1, "net replay: need a window of >= 1");
  NetReplayReport report;
  if (requests.empty() || options.repeats < 1) return report;

  std::vector<ThreadOutcome> outcomes(options.connections);
  const tl::StopWatch watch;
  {
    std::vector<std::thread> threads;
    threads.reserve(outcomes.size());
    for (ThreadOutcome& outcome : outcomes)
      threads.emplace_back(replay_connection, address, std::cref(requests),
                           std::cref(options), std::ref(outcome));
    for (std::thread& thread : threads) thread.join();
  }
  report.wall_seconds = watch.seconds();

  std::vector<double> latencies;
  for (ThreadOutcome& outcome : outcomes) {
    if (!outcome.error.empty())
      throw tl::Error("net replay connection failed: " + outcome.error);
    report.busy_retries += outcome.busy_retries;
    latencies.insert(latencies.end(), outcome.latencies.begin(),
                     outcome.latencies.end());
    for (service::SolveResponse& response : outcome.responses)
      report.responses.push_back(std::move(response));
  }
  report.p50_s = service::latency_percentile(latencies, 0.50);
  report.p99_s = service::latency_percentile(latencies, 0.99);
  report.throughput_sps =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.responses.size()) / report.wall_seconds
          : 0.0;
  return report;
}

}  // namespace net
