#include "net/server.hpp"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

#include "common/error.hpp"

namespace net {

namespace {

/// One self-pipe wakeup byte; called from worker threads and (via
/// request_stop) from signal handlers, so write() only — no locks, no
/// allocation.  A full pipe is fine: the loop is already awake.
void write_wake_byte(int fd) {
  const char byte = 'w';
  [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
}

}  // namespace

Server::Server(service::SolveService& service, ServerOptions options)
    : service_(service), options_(std::move(options)) {}

Server::~Server() {
  // run() must have returned (or never been entered) by now; the drain in
  // run() is what guarantees no worker callback still targets this object.
  if (address_.is_unix && listener_.valid()) ::unlink(address_.path.c_str());
}

void Server::open() {
  TL_REQUIRE(!listener_.valid(), "net: Server::open() called twice");
  const Address requested = parse_address(options_.address);
  listener_ = listen_on(requested, options_.backlog);
  set_nonblocking(listener_.get());
  address_ = local_address(listener_.get(), requested);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0)
    throw tl::Error(std::string("net: pipe: ") + std::strerror(errno));
  wake_read_ = Fd(pipe_fds[0]);
  wake_write_ = Fd(pipe_fds[1]);
  set_nonblocking(wake_read_.get());
  set_nonblocking(wake_write_.get());
}

void Server::request_stop() {
  stop_requested_.store(true, std::memory_order_release);
  if (wake_write_.valid()) write_wake_byte(wake_write_.get());
}

ServerIoStats Server::io_stats() const {
  std::lock_guard<std::mutex> lock(io_stats_mutex_);
  return io_stats_;
}

void Server::wake() {
  if (wake_write_.valid()) write_wake_byte(wake_write_.get());
}

void Server::run() {
  TL_REQUIRE(listener_.valid(), "net: Server::run() before open()");
  TL_REQUIRE(!running_, "net: Server::run() re-entered");
  running_ = true;
  if (options_.start_service) service_.start();

  std::vector<pollfd> fds;
  std::vector<std::uint64_t> fd_ids;  // 0 = wake pipe / listener
  for (;;) {
    if (stop_requested_.load(std::memory_order_acquire) && !draining_) {
      // Graceful drain: the listener closes FIRST so no new connection can
      // arrive, reads stop so no new request can be admitted, and
      // everything already in flight is answered and flushed below.
      draining_ = true;
      listener_.reset();
      if (address_.is_unix) ::unlink(address_.path.c_str());
      for (auto& entry : connections_) entry.second.readable = false;
    }
    if (draining_) {
      bool flushed = pending_solves_ == 0;
      for (const auto& entry : connections_)
        if (entry.second.outbox.size() > entry.second.outbox_offset)
          flushed = false;
      if (flushed) break;
    }

    fds.clear();
    fd_ids.clear();
    fds.push_back({wake_read_.get(), POLLIN, 0});
    fd_ids.push_back(0);
    if (!draining_ &&
        connections_.size() <
            static_cast<std::size_t>(options_.max_connections)) {
      fds.push_back({listener_.get(), POLLIN, 0});
      fd_ids.push_back(0);
    }
    for (auto& entry : connections_) {
      short events = 0;
      if (entry.second.readable) events |= POLLIN;
      if (entry.second.outbox.size() > entry.second.outbox_offset)
        events |= POLLOUT;
      if (events == 0) continue;  // completions arrive via the wake pipe
      fds.push_back({entry.second.fd.get(), events, 0});
      fd_ids.push_back(entry.first);
    }

    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      throw tl::Error(std::string("net: poll: ") + std::strerror(errno));
    }

    // Drain the wake pipe (level-triggered: leftover bytes just re-wake).
    if (fds[0].revents & POLLIN) {
      char sink[64];
      while (::read(wake_read_.get(), sink, sizeof sink) > 0) {
      }
    }
    drain_completions();

    for (std::size_t i = 1; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      if (fd_ids[i] == 0) {
        accept_ready();
        continue;
      }
      const auto it = connections_.find(fd_ids[i]);
      if (it == connections_.end()) continue;  // closed earlier this pass
      if (fds[i].revents & (POLLIN | POLLHUP | POLLERR))
        read_ready(it->first, it->second);
      const auto again = connections_.find(fd_ids[i]);
      if (again != connections_.end() && (fds[i].revents & POLLOUT))
        write_ready(again->first, again->second);
    }
  }

  connections_.clear();
  draining_ = false;
  running_ = false;
}

void Server::accept_ready() {
  for (;;) {
    Fd fd(::accept(listener_.get(), nullptr, nullptr));
    if (!fd.valid()) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept failure: keep serving
    }
    if (connections_.size() >=
        static_cast<std::size_t>(options_.max_connections)) {
      continue;  // over the cap: fd closes, peer sees EOF
    }
    set_nonblocking(fd.get());
    Connection connection;
    connection.fd = std::move(fd);
    connections_.emplace(next_connection_id_++, std::move(connection));
    {
      std::lock_guard<std::mutex> lock(io_stats_mutex_);
      ++io_stats_.accepted;
    }
  }
}

void Server::read_ready(std::uint64_t id, Connection& connection) {
  char buffer[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(connection.fd.get(), buffer, sizeof buffer, 0);
    if (n > 0) {
      connection.reader.feed(buffer, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      close_connection(id, /*peer_gone=*/true);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    close_connection(id, /*peer_gone=*/true);
    return;
  }

  Frame frame;
  for (;;) {
    try {
      if (!connection.reader.next(frame)) break;
    } catch (const ProtocolError& e) {
      // Framing is out of sync: answer with a structured, connection-level
      // ERROR frame, stop reading, close once it flushed.
      {
        std::lock_guard<std::mutex> lock(io_stats_mutex_);
        ++io_stats_.protocol_errors;
      }
      enqueue_frame(connection, FrameType::kError,
                    encode_error(0, to_string(e.fault()), e.what()));
      connection.readable = false;
      connection.close_after_flush = true;
      return;
    }
    {
      std::lock_guard<std::mutex> lock(io_stats_mutex_);
      ++io_stats_.frames_in;
    }
    dispatch_frame(id, connection, frame);
    if (!connection.readable) return;  // dispatch decided to close
  }
}

void Server::dispatch_frame(std::uint64_t id, Connection& connection,
                            const Frame& frame) {
  switch (frame.type) {
    case FrameType::kRequest: {
      WireRequest request;
      try {
        request = decode_request(frame.payload);
      } catch (const tl::Error& e) {
        // No id to route the failure to: connection-level error.
        enqueue_frame(connection, FrameType::kError,
                      encode_error(0, "bad-request", e.what()));
        connection.readable = false;
        connection.close_after_flush = true;
        return;
      }
      service::SolveRequest solve;
      solve.label = request.label;
      try {
        solve.problem = request_problem(request);
      } catch (const tl::Error& e) {
        // The deck text failed validation: a per-request error — the
        // stream is still in sync, the connection stays up.
        {
          std::lock_guard<std::mutex> lock(io_stats_mutex_);
          ++io_stats_.request_errors;
        }
        enqueue_frame(connection, FrameType::kError,
                      encode_error(request.id, "bad-deck", e.what()));
        return;
      }
      const std::uint64_t request_id = request.id;
      const service::Ticket ticket = service_.submit(
          std::move(solve),
          [this, id, request_id](const service::SolveResponse& response) {
            {
              std::lock_guard<std::mutex> lock(completions_mutex_);
              completions_.push_back({id, request_id, response});
            }
            wake();
          });
      if (ticket == nullptr) {
        // Queue-full admission maps to BUSY backpressure — never a dropped
        // connection, never a hang.
        {
          std::lock_guard<std::mutex> lock(io_stats_mutex_);
          ++io_stats_.busy_replies;
        }
        enqueue_frame(connection, FrameType::kBusy,
                      encode_busy(request_id, "queue full"));
        return;
      }
      ++connection.in_flight;
      ++pending_solves_;
      {
        std::lock_guard<std::mutex> lock(io_stats_mutex_);
        ++io_stats_.requests;
      }
      return;
    }
    case FrameType::kStatsRequest: {
      {
        std::lock_guard<std::mutex> lock(io_stats_mutex_);
        ++io_stats_.stats_queries;
      }
      enqueue_frame(connection, FrameType::kStats,
                    encode_stats(service_.stats()));
      return;
    }
    default:
      // Server-bound streams carry requests and stats queries only.
      enqueue_frame(connection, FrameType::kError,
                    encode_error(0, "unexpected-frame",
                                 "frame type is not valid client->server"));
      connection.readable = false;
      connection.close_after_flush = true;
      return;
  }
}

void Server::enqueue_frame(Connection& connection, FrameType type,
                           const std::string& payload) {
  connection.outbox += encode_frame(type, payload);
  {
    std::lock_guard<std::mutex> lock(io_stats_mutex_);
    ++io_stats_.frames_out;
  }
}

void Server::write_ready(std::uint64_t id, Connection& connection) {
  while (connection.outbox_offset < connection.outbox.size()) {
    const ssize_t n = ::send(
        connection.fd.get(), connection.outbox.data() + connection.outbox_offset,
        connection.outbox.size() - connection.outbox_offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      close_connection(id, /*peer_gone=*/true);
      return;
    }
    connection.outbox_offset += static_cast<std::size_t>(n);
  }
  connection.outbox.clear();
  connection.outbox_offset = 0;
  if (connection.close_after_flush) close_connection(id, /*peer_gone=*/false);
}

void Server::drain_completions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    batch.swap(completions_);
  }
  for (Completion& completion : batch) {
    --pending_solves_;
    const auto it = connections_.find(completion.connection_id);
    if (it == connections_.end()) continue;  // peer vanished mid-solve
    --it->second.in_flight;
    enqueue_frame(it->second, FrameType::kResponse,
                  encode_response(completion.request_id, completion.response));
  }
}

void Server::close_connection(std::uint64_t id, bool peer_gone) {
  if (peer_gone) {
    std::lock_guard<std::mutex> lock(io_stats_mutex_);
    ++io_stats_.disconnects;
  }
  // In-flight solves keep running; their completions are dropped when they
  // find no connection, and pending_solves_ still reaches zero for drain.
  connections_.erase(id);
}

// ---------------------------------------------------------------------------
// Signal wiring (tead --listen): SIGINT/SIGTERM -> request_stop()
// ---------------------------------------------------------------------------

namespace {

std::atomic<Server*> g_signal_server{nullptr};
struct sigaction g_previous_sigint;
struct sigaction g_previous_sigterm;

void forward_signal_to_server(int) {
  // request_stop() is one lock-free atomic store plus one write(): the
  // whole point of the self-pipe is being legal right here.
  Server* server = g_signal_server.load(std::memory_order_acquire);
  if (server != nullptr) server->request_stop();
}

}  // namespace

void install_signal_handlers(Server* server) {
  if (server != nullptr) {
    g_signal_server.store(server, std::memory_order_release);
    struct sigaction action {};
    action.sa_handler = forward_signal_to_server;
    sigemptyset(&action.sa_mask);
    ::sigaction(SIGINT, &action, &g_previous_sigint);
    ::sigaction(SIGTERM, &action, &g_previous_sigterm);
    return;
  }
  ::sigaction(SIGINT, &g_previous_sigint, nullptr);
  ::sigaction(SIGTERM, &g_previous_sigterm, nullptr);
  g_signal_server.store(nullptr, std::memory_order_release);
}

}  // namespace net
