// replay.hpp (net) — closed-loop traffic replay over the wire: the network
// counterpart of service::run_replay.
//
// N connection threads each open their own Client and replay the request
// list `repeats` times with a bounded pipeline window.  BUSY replies are
// the backpressure path: the thread drains its oldest outstanding reply and
// resubmits, so — exactly like the in-process replay — the queue bound
// shows up as retries, never as lost work.  Latencies are measured
// client-side (submit to reply), so they include framing and socket time;
// the per-response server-side timings ride along in the responses.
//
// Used by `teactl solve` (connections=1 preserves submission order for the
// bit-identity gate) and `bench_service_throughput --net`.
#pragma once

#include <string>
#include <vector>

#include "service/replay.hpp"
#include "service/service.hpp"

namespace net {

struct NetReplayOptions {
  int connections = 1;  // concurrent client connections (threads)
  int repeats = 1;      // full passes over the request list per connection
  int window = 8;       // max pipelined in-flight requests per connection
};

struct NetReplayReport {
  // Responses in submission order per connection, connections concatenated
  // in index order (deterministic for connections=1).
  std::vector<service::SolveResponse> responses;
  double wall_seconds = 0.0;
  double throughput_sps = 0.0;
  double p50_s = 0.0;  // client-side latency percentiles
  double p99_s = 0.0;
  long busy_retries = 0;  // BUSY replies absorbed as backpressure

  bool all_ok() const {
    for (const service::SolveResponse& r : responses)
      if (!r.ok()) return false;
    return !responses.empty();
  }
};

/// Replay `requests` against the server at `address`.  Throws tl::Error
/// when a connection cannot be established or dies mid-replay.
NetReplayReport run_net_replay(const std::string& address,
                               const std::vector<service::SolveRequest>& requests,
                               const NetReplayOptions& options);

}  // namespace net
