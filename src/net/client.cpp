#include "net/client.hpp"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>

#include "common/error.hpp"

namespace net {

Client::Client(const std::string& address)
    : fd_(connect_to(parse_address(address))) {}

std::uint64_t Client::submit(const tl::ProblemConfig& problem,
                             const std::string& label) {
  TL_REQUIRE(fd_.valid(), "net: submit() on a closed client");
  const std::uint64_t id = next_id_++;
  const std::string frame = encode_frame(
      FrameType::kRequest, encode_request(make_request(id, label, problem)));
  send_all(fd_.get(), frame.data(), frame.size());
  return id;
}

Frame Client::read_frame() {
  Frame frame;
  for (;;) {
    if (reader_.next(frame)) return frame;
    char buffer[64 * 1024];
    const ssize_t n = ::recv(fd_.get(), buffer, sizeof buffer, 0);
    if (n > 0) {
      reader_.feed(buffer, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0)
      throw tl::Error("net: server closed the connection");
    throw tl::Error(std::string("net: recv: ") + std::strerror(errno));
  }
}

WireReply Client::wait(std::uint64_t id) {
  const auto stashed = stashed_.find(id);
  if (stashed != stashed_.end()) {
    WireReply reply = std::move(stashed->second);
    stashed_.erase(stashed);
    return reply;
  }
  for (;;) {
    const Frame frame = read_frame();
    if (frame.type == FrameType::kStats)
      continue;  // a stale stats reply; stats() reads its own
    WireReply reply = decode_reply(frame);
    if (frame.type == FrameType::kError && reply.id == 0)
      throw tl::Error("net: server error: " + reply.response.error);
    if (reply.id == id) return reply;
    stashed_.emplace(reply.id, std::move(reply));
  }
}

WireReply Client::solve(const tl::ProblemConfig& problem,
                        const std::string& label) {
  return wait(submit(problem, label));
}

service::ServiceStats Client::stats() {
  TL_REQUIRE(fd_.valid(), "net: stats() on a closed client");
  const std::string frame = encode_frame(FrameType::kStatsRequest, "{}");
  send_all(fd_.get(), frame.data(), frame.size());
  for (;;) {
    const Frame reply = read_frame();
    if (reply.type == FrameType::kStats) return decode_stats(reply.payload);
    if (reply.type == FrameType::kError) {
      const WireReply decoded = decode_reply(reply);
      if (decoded.id == 0)
        throw tl::Error("net: server error: " + decoded.response.error);
      stashed_.emplace(decoded.id, decoded);
      continue;
    }
    WireReply decoded = decode_reply(reply);
    stashed_.emplace(decoded.id, std::move(decoded));
  }
}

}  // namespace net
