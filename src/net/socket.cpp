#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.hpp"

namespace net {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw tl::Error(what + ": " + std::strerror(errno));
}

/// Numeric IPv4 (or "localhost") to in_addr.  The deliberately small
/// grammar keeps resolution deterministic — no resolver, no /etc/hosts
/// surprises in CI.
in_addr parse_ipv4(const std::string& host) {
  in_addr addr{};
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, numeric.c_str(), &addr) != 1)
    throw tl::ConfigError("net: tcp host must be numeric IPv4 or localhost, "
                          "got \"" + host + "\"");
  return addr;
}

sockaddr_un unix_sockaddr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  // parse_address already bounds the length; re-check for direct callers.
  TL_REQUIRE(path.size() < sizeof(addr.sun_path),
             "net: unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

std::string Address::to_string() const {
  if (is_unix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Address parse_address(const std::string& spec) {
  Address address;
  if (spec.rfind("unix:", 0) == 0) {
    address.is_unix = true;
    address.path = spec.substr(5);
    if (address.path.empty())
      throw tl::ConfigError("net: empty unix socket path in \"" + spec + "\"");
    if (address.path.size() >= sizeof(sockaddr_un{}.sun_path))
      throw tl::ConfigError("net: unix socket path too long in \"" + spec +
                            "\"");
    return address;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == rest.size())
      throw tl::ConfigError("net: tcp address must be tcp:<host>:<port>, "
                            "got \"" + spec + "\"");
    address.host = rest.substr(0, colon);
    char* end = nullptr;
    const long port = std::strtol(rest.c_str() + colon + 1, &end, 10);
    if (end == nullptr || *end != '\0' || port < 0 || port > 65535)
      throw tl::ConfigError("net: bad tcp port in \"" + spec + "\"");
    address.port = static_cast<int>(port);
    parse_ipv4(address.host);  // validate eagerly
    return address;
  }
  throw tl::ConfigError(
      "net: address must start with unix: or tcp:, got \"" + spec + "\"");
}

Fd listen_on(const Address& address, int backlog) {
  if (address.is_unix) {
    Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid()) fail_errno("net: socket(AF_UNIX)");
    ::unlink(address.path.c_str());  // stale path from a dead daemon
    const sockaddr_un addr = unix_sockaddr(address.path);
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0)
      fail_errno("net: bind(" + address.to_string() + ")");
    if (::listen(fd.get(), backlog) != 0)
      fail_errno("net: listen(" + address.to_string() + ")");
    return fd;
  }
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) fail_errno("net: socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr = parse_ipv4(address.host);
  addr.sin_port = htons(static_cast<std::uint16_t>(address.port));
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    fail_errno("net: bind(" + address.to_string() + ")");
  if (::listen(fd.get(), backlog) != 0)
    fail_errno("net: listen(" + address.to_string() + ")");
  return fd;
}

Address local_address(int listen_fd, const Address& requested) {
  Address resolved = requested;
  if (requested.is_unix || requested.port != 0) return resolved;
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    fail_errno("net: getsockname");
  resolved.port = static_cast<int>(ntohs(addr.sin_port));
  return resolved;
}

Fd connect_to(const Address& address) {
  if (address.is_unix) {
    Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid()) fail_errno("net: socket(AF_UNIX)");
    const sockaddr_un addr = unix_sockaddr(address.path);
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0)
      fail_errno("net: connect(" + address.to_string() + ")");
    return fd;
  }
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) fail_errno("net: socket(AF_INET)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr = parse_ipv4(address.host);
  addr.sin_port = htons(static_cast<std::uint16_t>(address.port));
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0)
    fail_errno("net: connect(" + address.to_string() + ")");
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0)
    fail_errno("net: fcntl(O_NONBLOCK)");
}

void send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("net: send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace net
