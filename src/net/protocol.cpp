#include "net/protocol.hpp"

#include <cstring>

#include "results/json.hpp"

namespace net {

namespace {

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    out.push_back(static_cast<char>((v >> shift) & 0xff));
}

std::uint16_t get_u16(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
}

std::uint32_t get_u32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

bool known_type(std::uint16_t type) {
  return type >= static_cast<std::uint16_t>(FrameType::kRequest) &&
         type <= static_cast<std::uint16_t>(FrameType::kStats);
}

const results::Json& require(const results::Json& json, const char* key) {
  const results::Json* value = json.get(key);
  if (value == nullptr)
    throw tl::ConfigError(std::string("net: payload missing \"") + key + "\"");
  return *value;
}

}  // namespace

const char* to_string(WireFault fault) {
  switch (fault) {
    case WireFault::kBadMagic: return "bad-magic";
    case WireFault::kBadVersion: return "bad-version";
    case WireFault::kBadType: return "bad-type";
    case WireFault::kOversized: return "oversized-payload";
    case WireFault::kBadChecksum: return "bad-checksum";
  }
  return "unknown";
}

std::uint32_t payload_checksum(const std::string& payload) {
  std::uint32_t hash = 2166136261u;  // FNV-1a offset basis
  for (const char c : payload) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 16777619u;  // FNV prime
  }
  return hash;
}

std::string encode_frame(FrameType type, const std::string& payload) {
  TL_REQUIRE(payload.size() <= kMaxPayloadBytes,
             "net: payload exceeds kMaxPayloadBytes");
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  put_u32(out, kMagic);
  put_u16(out, kVersion);
  put_u16(out, static_cast<std::uint16_t>(type));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, payload_checksum(payload));
  out += payload;
  return out;
}

bool FrameReader::next(Frame& frame) {
  TL_REQUIRE(!poisoned_, "net: FrameReader reused after a protocol error");
  if (buffer_.size() < kHeaderBytes) return false;
  const char* header = buffer_.data();
  // Validate eagerly, before waiting for the payload: a hostile or corrupt
  // header must never make the reader buffer (or wait for) garbage.
  if (get_u32(header) != kMagic) {
    poisoned_ = true;
    throw ProtocolError(WireFault::kBadMagic,
                        "net: frame does not start with the TEAL magic");
  }
  const std::uint16_t version = get_u16(header + 4);
  if (version != kVersion) {
    poisoned_ = true;
    throw ProtocolError(WireFault::kBadVersion,
                        "net: unsupported protocol version " +
                            std::to_string(version) + " (want " +
                            std::to_string(kVersion) + ")");
  }
  const std::uint16_t type = get_u16(header + 6);
  if (!known_type(type)) {
    poisoned_ = true;
    throw ProtocolError(WireFault::kBadType,
                        "net: unknown frame type " + std::to_string(type));
  }
  const std::uint32_t payload_len = get_u32(header + 8);
  if (payload_len > kMaxPayloadBytes) {
    poisoned_ = true;
    throw ProtocolError(WireFault::kOversized,
                        "net: declared payload of " +
                            std::to_string(payload_len) +
                            " bytes exceeds the " +
                            std::to_string(kMaxPayloadBytes) + "-byte limit");
  }
  if (buffer_.size() < kHeaderBytes + payload_len) return false;
  const std::uint32_t declared_checksum = get_u32(header + 12);
  frame.type = static_cast<FrameType>(type);
  frame.payload.assign(buffer_, kHeaderBytes, payload_len);
  if (payload_checksum(frame.payload) != declared_checksum) {
    poisoned_ = true;
    throw ProtocolError(WireFault::kBadChecksum,
                        "net: payload checksum mismatch");
  }
  buffer_.erase(0, kHeaderBytes + payload_len);
  return true;
}

// ---------------------------------------------------------------------------
// Payload codecs
// ---------------------------------------------------------------------------

WireRequest make_request(std::uint64_t id, const std::string& label,
                         const tl::ProblemConfig& problem) {
  WireRequest request;
  request.id = id;
  request.label = label;
  request.deck = tl::to_deck(problem);
  return request;
}

tl::ProblemConfig request_problem(const WireRequest& request) {
  return tl::Config::parse(request.deck).problem();
}

std::string encode_request(const WireRequest& request) {
  results::Json json = results::Json::object();
  json.set("id", static_cast<std::int64_t>(request.id));
  json.set("label", request.label);
  json.set("deck", request.deck);
  return json.dump(0);
}

WireRequest decode_request(const std::string& payload) {
  const results::Json json = results::Json::parse(payload);
  WireRequest request;
  request.id = static_cast<std::uint64_t>(require(json, "id").as_int());
  request.label = require(json, "label").as_string();
  request.deck = require(json, "deck").as_string();
  return request;
}

std::string encode_response(std::uint64_t id,
                            const service::SolveResponse& response) {
  results::Json json = results::Json::object();
  json.set("id", static_cast<std::int64_t>(id));
  json.set("label", response.label);
  json.set("key", response.key);
  json.set("variant", response.variant);
  json.set("converged", response.converged);
  json.set("iterations", static_cast<std::int64_t>(response.iterations));
  json.set("inner_iterations",
           static_cast<std::int64_t>(response.inner_iterations));
  json.set("initial_rr", response.initial_rr);
  json.set("final_rr", response.final_rr);
  json.set("final_temperature", response.final_temperature);
  json.set("solve_seconds", response.solve_seconds);
  json.set("queue_seconds", response.queue_seconds);
  json.set("latency_seconds", response.latency_seconds);
  json.set("batch_size", response.batch_size);
  if (!response.error.empty()) json.set("error", response.error);
  return json.dump(0);
}

std::string encode_busy(std::uint64_t id, const std::string& reason) {
  results::Json json = results::Json::object();
  json.set("id", static_cast<std::int64_t>(id));
  json.set("reason", reason);
  return json.dump(0);
}

std::string encode_error(std::uint64_t id, const std::string& code,
                         const std::string& message) {
  results::Json json = results::Json::object();
  json.set("id", static_cast<std::int64_t>(id));
  json.set("code", code);
  json.set("message", message);
  return json.dump(0);
}

WireReply decode_reply(const Frame& frame) {
  const results::Json json = results::Json::parse(frame.payload);
  WireReply reply;
  reply.id = static_cast<std::uint64_t>(require(json, "id").as_int());
  switch (frame.type) {
    case FrameType::kResponse:
      reply.response.label = json.get_string("label", "");
      reply.response.key = json.get_string("key", "");
      reply.response.variant = json.get_string("variant", "");
      reply.response.converged = json.get("converged") != nullptr &&
                                 json.get("converged")->as_bool();
      reply.response.iterations = json.get_int("iterations", 0);
      reply.response.inner_iterations = json.get_int("inner_iterations", 0);
      reply.response.initial_rr = json.get_double("initial_rr", 0.0);
      reply.response.final_rr = json.get_double("final_rr", 0.0);
      reply.response.final_temperature =
          json.get_double("final_temperature", 0.0);
      reply.response.solve_seconds = json.get_double("solve_seconds", 0.0);
      reply.response.queue_seconds = json.get_double("queue_seconds", 0.0);
      reply.response.latency_seconds = json.get_double("latency_seconds", 0.0);
      reply.response.batch_size =
          static_cast<int>(json.get_int("batch_size", 1));
      reply.response.error = json.get_string("error", "");
      return reply;
    case FrameType::kBusy:
      reply.busy = true;
      reply.response.error = "busy: " + json.get_string("reason", "queue full");
      return reply;
    case FrameType::kError:
      reply.response.error = json.get_string("code", "error") + ": " +
                             json.get_string("message", "");
      return reply;
    default:
      throw tl::ConfigError("net: frame type is not a reply");
  }
}

std::string encode_stats(const service::ServiceStats& stats) {
  results::Json json = results::Json::object();
  json.set("submitted", static_cast<std::int64_t>(stats.submitted));
  json.set("rejected", static_cast<std::int64_t>(stats.rejected));
  json.set("completed", static_cast<std::int64_t>(stats.completed));
  json.set("batches", static_cast<std::int64_t>(stats.batches));
  json.set("batched_solves", static_cast<std::int64_t>(stats.batched_solves));
  json.set("fallback_solves",
           static_cast<std::int64_t>(stats.fallback_solves));
  json.set("plan_hits", static_cast<std::int64_t>(stats.plan.hits));
  json.set("plan_misses", static_cast<std::int64_t>(stats.plan.misses));
  json.set("plan_tunes", static_cast<std::int64_t>(stats.plan.tunes));
  json.set("plan_evictions", static_cast<std::int64_t>(stats.plan.evictions));
  json.set("arena_allocated",
           static_cast<std::int64_t>(stats.arena.allocated));
  json.set("arena_reused", static_cast<std::int64_t>(stats.arena.reused));
  return json.dump(0);
}

service::ServiceStats decode_stats(const std::string& payload) {
  const results::Json json = results::Json::parse(payload);
  service::ServiceStats stats;
  stats.submitted = json.get_int("submitted", 0);
  stats.rejected = json.get_int("rejected", 0);
  stats.completed = json.get_int("completed", 0);
  stats.batches = json.get_int("batches", 0);
  stats.batched_solves = json.get_int("batched_solves", 0);
  stats.fallback_solves = json.get_int("fallback_solves", 0);
  stats.plan.hits = json.get_int("plan_hits", 0);
  stats.plan.misses = json.get_int("plan_misses", 0);
  stats.plan.tunes = json.get_int("plan_tunes", 0);
  stats.plan.evictions = json.get_int("plan_evictions", 0);
  stats.arena.allocated = json.get_int("arena_allocated", 0);
  stats.arena.reused = json.get_int("arena_reused", 0);
  return stats;
}

}  // namespace net
