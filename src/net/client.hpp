// client.hpp — blocking client for the tead wire protocol.
//
// One Client owns one connection.  submit() writes a request frame and
// returns immediately, so callers can pipeline any number of requests;
// wait() reads frames until the given id's reply arrives, stashing
// out-of-order arrivals (the server replies in *completion* order).  A BUSY
// reply surfaces as WireReply.busy — the structured backpressure signal the
// replay driver retries on — and per-request errors arrive in
// response.error.  Transport failures and connection-level protocol errors
// throw tl::Error.
//
// Not thread-safe: one Client per thread (net::run_net_replay opens one per
// connection thread).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "service/service.hpp"

namespace net {

class Client {
 public:
  /// Connect (blocking).  Throws tl::Error when the server is not there.
  explicit Client(const std::string& address);

  /// Send one solve request; returns the wire id to wait() on.  Ids are
  /// client-assigned and monotonically increasing.
  std::uint64_t submit(const tl::ProblemConfig& problem,
                       const std::string& label);

  /// Block until the reply for `id` arrives (serving it from the stash if
  /// an earlier wait() already read it).
  WireReply wait(std::uint64_t id);

  /// submit() + wait() in one call.
  WireReply solve(const tl::ProblemConfig& problem, const std::string& label);

  /// Round-trip a STATS query.
  service::ServiceStats stats();

  void close() { fd_.reset(); }
  bool connected() const { return fd_.valid(); }

 private:
  /// Read and decode one frame (blocking).  Throws tl::Error on EOF and
  /// ProtocolError on malformed frames.
  Frame read_frame();

  Fd fd_;
  FrameReader reader_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, WireReply> stashed_;
};

}  // namespace net
