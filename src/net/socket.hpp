// socket.hpp — thin POSIX socket layer for the net frontend: RAII file
// descriptors, the `unix:<path>` / `tcp:<host>:<port>` address grammar
// shared by `tead --listen` and `teactl --connect`, and the handful of
// listen/connect/accept helpers the server and client build on.
//
// Unix-domain sockets are the deterministic-CI transport (no ports to
// collide on, kernel-local, removable files); TCP is the deployment
// transport.  Both speak the identical framed protocol (protocol.hpp).
#pragma once

#include <cstddef>
#include <string>
#include <utility>

namespace net {

/// RAII file descriptor.  Move-only; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset();  // close if open

 private:
  int fd_ = -1;
};

/// A parsed listen/connect address.
struct Address {
  bool is_unix = false;
  std::string path;       // unix-domain socket path
  std::string host;       // tcp host (numeric IPv4 or "localhost")
  int port = 0;           // tcp port; 0 asks the kernel for an ephemeral one

  /// Canonical spec string ("unix:/run/tead.sock", "tcp:127.0.0.1:4501").
  std::string to_string() const;
};

/// Parse "unix:<path>" or "tcp:<host>:<port>".  Throws tl::ConfigError on
/// anything else (including unix paths too long for sockaddr_un).
Address parse_address(const std::string& spec);

/// Bind + listen on `address`.  Unix sockets unlink a stale path first.
/// Throws tl::Error on failure.
Fd listen_on(const Address& address, int backlog);

/// The address `listen_fd` actually bound — resolves tcp port 0 to the
/// kernel-assigned ephemeral port so clients and logs can use it.
Address local_address(int listen_fd, const Address& requested);

/// Blocking connect.  Throws tl::Error on failure.
Fd connect_to(const Address& address);

/// Put `fd` into non-blocking mode.  Throws tl::Error on failure.
void set_nonblocking(int fd);

/// send() the whole buffer on a blocking socket (MSG_NOSIGNAL, EINTR
/// retried).  Throws tl::Error when the peer is gone.
void send_all(int fd, const char* data, std::size_t size);

}  // namespace net
