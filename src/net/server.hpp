// server.hpp — the tead network frontend: a poll-based event loop that
// multiplexes framed-protocol connections onto one service::SolveService.
//
// Threading model: ONE acceptor/IO thread runs the whole event loop —
// accept, non-blocking buffered reads and writes, frame dispatch.  Solves
// happen where they always have: on the service's worker shards.  The
// bridge back is push-style: each admitted request carries a
// service::CompletionFn that enqueues a completion event and wakes the loop
// through a self-pipe, so no thread ever parks in Ticket::wait() and a
// single IO thread can keep thousands of in-flight requests moving.
//
// Backpressure: admission control stays at the service's bounded queue.
// When submit() refuses, the request is answered with a BUSY frame —
// never a dropped connection, never a hang — and the client retries
// (net::run_net_replay and teactl both do).
//
// Pipelining: clients may send any number of requests without reading.
// Replies carry the request id and are written in *completion* order;
// matching them back up is the client's job (net::Client stashes
// out-of-order arrivals).
//
// Shutdown: request_stop() is async-signal-safe (tead's SIGINT/SIGTERM
// handlers call it).  The drain sequence is: close the listener FIRST,
// stop reading from connections, answer every in-flight solve, flush every
// write buffer, then close.  In-flight work is never abandoned mid-solve.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "service/service.hpp"

namespace net {

struct ServerOptions {
  std::string address = "unix:tead.sock";
  int backlog = 16;
  int max_connections = 64;
  // Tests disable this to pin deterministic BUSY behaviour: with the
  // service not yet started, admissions queue up but never drain.
  bool start_service = true;
};

/// IO-side counters (the solve-side ones live in service::ServiceStats).
struct ServerIoStats {
  long accepted = 0;
  long disconnects = 0;       // peers that vanished (EOF or error)
  long frames_in = 0;
  long frames_out = 0;
  long requests = 0;          // request frames admitted to the service
  long busy_replies = 0;      // requests answered with BUSY
  long request_errors = 0;    // per-request errors (bad deck, bad payload)
  long protocol_errors = 0;   // framing faults that closed a connection
  long stats_queries = 0;
};

class Server {
 public:
  /// `service` must outlive the server; the server starts it in run()
  /// (unless options.start_service is false) but never shuts it down —
  /// lifecycle stays with the owner (tead drains the server first, then
  /// calls service.shutdown()).
  Server(service::SolveService& service, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen.  Resolves the address (ephemeral tcp ports) so
  /// address() is connectable before run() is entered.
  void open();

  const Address& address() const { return address_; }

  /// Run the event loop until request_stop(); returns after the graceful
  /// drain completed.  Call from one thread only.
  void run();

  /// Ask run() to drain and return.  Async-signal-safe: one atomic store
  /// and one write() to the self-pipe.
  void request_stop();

  ServerIoStats io_stats() const;

 private:
  struct Connection {
    Fd fd;
    FrameReader reader;
    std::string outbox;          // encoded frames awaiting the socket
    std::size_t outbox_offset = 0;
    long in_flight = 0;          // admitted requests not yet answered
    bool close_after_flush = false;  // protocol fault: flush ERROR, close
    bool readable = true;            // cleared on fault and during drain
  };

  struct Completion {
    std::uint64_t connection_id = 0;
    std::uint64_t request_id = 0;
    service::SolveResponse response;
  };

  void accept_ready();
  void read_ready(std::uint64_t id, Connection& connection);
  void write_ready(std::uint64_t id, Connection& connection);
  void dispatch_frame(std::uint64_t id, Connection& connection,
                      const Frame& frame);
  void enqueue_frame(Connection& connection, FrameType type,
                     const std::string& payload);
  void drain_completions();
  void close_connection(std::uint64_t id, bool peer_gone);
  void wake();

  service::SolveService& service_;
  ServerOptions options_;
  Address address_;
  Fd listener_;
  Fd wake_read_, wake_write_;
  std::atomic<bool> stop_requested_{false};
  bool draining_ = false;
  bool running_ = false;

  std::uint64_t next_connection_id_ = 1;
  std::map<std::uint64_t, Connection> connections_;
  // Admitted-but-unanswered requests across all connections, including
  // ones whose connection already died; the drain waits for this to reach
  // zero so no worker callback can outlive the server.
  long pending_solves_ = 0;

  std::mutex completions_mutex_;
  std::vector<Completion> completions_;  // filled by worker callbacks

  mutable std::mutex io_stats_mutex_;
  ServerIoStats io_stats_;
};

/// Route SIGINT/SIGTERM to server->request_stop() (pass nullptr to restore
/// the previous handlers).  One server at a time; used by `tead --listen`
/// and pinned by tests/test_net.cpp.
void install_signal_handlers(Server* server);

}  // namespace net
