// protocol.hpp — the tead wire protocol: versioned, length-prefixed,
// checksummed frames carrying JSON payloads.
//
// Frame layout (all integers little-endian, 16-byte header):
//
//   offset  size  field
//        0     4  magic       0x4C414554 ("TEAL")
//        4     2  version     kVersion (1)
//        6     2  type        FrameType
//        8     4  payload_len bytes that follow the header (<= kMaxPayload)
//       12     4  checksum    FNV-1a(32) over the payload bytes
//
// Payloads are compact JSON rendered by the repo's own results::Json layer,
// whose %.17g doubles make parse→serialise→parse the identity on every
// numeric field — the property the end-to-end bit-identity contract (a
// networked solve equals the in-process solve exactly) rests on.  Requests
// carry the full ProblemConfig as canonical deck text (tl::to_deck, the
// same full-precision round-trip test_decks pins).
//
// Framing errors are *classified* (WireFault) so the server can answer a
// malformed stream with a structured ERROR frame before closing, and tests
// can pin each rejection path: bad magic, unsupported version, unknown
// type, oversized payload declaration, checksum mismatch.  A truncated
// frame is not an error — the reader just reports "need more bytes", which
// is what makes arbitrarily-split reads (and slow clients) safe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/config.hpp"
#include "common/error.hpp"
#include "service/service.hpp"

namespace net {

constexpr std::uint32_t kMagic = 0x4C414554u;  // "TEAL" when read as LE bytes
constexpr std::uint16_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 16;
// Generous for deck text + response JSON, small enough that a hostile
// declared length can never balloon a connection buffer.
constexpr std::uint32_t kMaxPayloadBytes = 1u << 20;

enum class FrameType : std::uint16_t {
  kRequest = 1,       // client -> server: solve this deck
  kResponse = 2,      // server -> client: full SolveResponse
  kBusy = 3,          // server -> client: admission refused (backpressure)
  kError = 4,         // either direction: structured failure
  kStatsRequest = 5,  // client -> server: snapshot the service counters
  kStats = 6,         // server -> client: ServiceStats snapshot
};

/// Why a byte stream was rejected by the framing layer.
enum class WireFault {
  kBadMagic,
  kBadVersion,
  kBadType,
  kOversized,
  kBadChecksum,
};

const char* to_string(WireFault fault);

/// Framing-layer rejection; carries the classified fault.
class ProtocolError : public tl::Error {
 public:
  ProtocolError(WireFault fault, std::string what)
      : tl::Error(std::move(what)), fault_(fault) {}
  WireFault fault() const { return fault_; }

 private:
  WireFault fault_;
};

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// FNV-1a (32-bit) over the payload bytes.
std::uint32_t payload_checksum(const std::string& payload);

/// Render one frame (header + payload) ready to write to a socket.
/// Throws tl::Error when payload exceeds kMaxPayloadBytes.
std::string encode_frame(FrameType type, const std::string& payload);

/// Incremental frame decoder for a byte stream.  feed() appends whatever
/// arrived; next() yields complete frames in order.  Malformed input throws
/// ProtocolError and poisons the reader (the connection is unrecoverable —
/// framing has lost sync).
class FrameReader {
 public:
  void feed(const char* data, std::size_t size) { buffer_.append(data, size); }

  /// True and `frame` filled when a complete frame was decoded; false when
  /// more bytes are needed.  Throws ProtocolError on malformed input.
  bool next(Frame& frame);

  std::size_t buffered() const { return buffer_.size(); }

 private:
  std::string buffer_;
  bool poisoned_ = false;
};

// ---------------------------------------------------------------------------
// Payload codecs.  Every decode throws tl::ConfigError on malformed JSON or
// missing fields — payload errors, unlike framing errors, leave the stream
// in sync, so the server answers them per-request and keeps the connection.
// ---------------------------------------------------------------------------

/// A solve request on the wire: client-chosen id (echoed by every reply so
/// pipelined requests can be matched), display label, canonical deck text.
struct WireRequest {
  std::uint64_t id = 0;
  std::string label;
  std::string deck;
};

WireRequest make_request(std::uint64_t id, const std::string& label,
                         const tl::ProblemConfig& problem);
/// Parse the request's deck text back into a ProblemConfig (bit-exact —
/// to_deck writes full precision).
tl::ProblemConfig request_problem(const WireRequest& request);

std::string encode_request(const WireRequest& request);
WireRequest decode_request(const std::string& payload);

/// Any reply to a request: a full response, a BUSY backpressure signal, or
/// a structured per-request error (carried in response.error).
struct WireReply {
  std::uint64_t id = 0;
  bool busy = false;  // admission refused; resubmit later
  service::SolveResponse response;
};

std::string encode_response(std::uint64_t id,
                            const service::SolveResponse& response);
std::string encode_busy(std::uint64_t id, const std::string& reason);
/// id 0 = connection-level error (the server closes after sending).
std::string encode_error(std::uint64_t id, const std::string& code,
                         const std::string& message);
/// Decode a kResponse / kBusy / kError frame into a WireReply.
WireReply decode_reply(const Frame& frame);

std::string encode_stats(const service::ServiceStats& stats);
service::ServiceStats decode_stats(const std::string& payload);

}  // namespace net
