// teactl — remote control for a running `tead --listen` daemon.
//
// Submits solve traffic (deck files and/or seeded generated populations)
// and stats queries over the framed wire protocol (src/net) and renders the
// same tables tead prints for in-process replays.  `--out` writes the
// deterministic golden quantities of every response as JSON — the file the
// net-smoke CI gate byte-compares against the in-process replay of the same
// population to prove a networked solve changes nothing.
//
//   teactl solve --connect unix:/run/tead.sock --decks examples/decks/tea_bm_1.in
//   teactl solve --connect tcp:127.0.0.1:4501 --gen-seed 3 --gen-count 4 \
//       --repeat 2 --connections 4 --out responses.json
//   teactl stats --connect unix:/run/tead.sock
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/cli.hpp"
#include "common/config.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "net/client.hpp"
#include "net/replay.hpp"
#include "service/replay.hpp"

namespace {

int usage() {
  std::printf(
      "usage: teactl <command> --connect ADDR [options]\n"
      "\n"
      "drive a running `tead --listen` daemon over its wire protocol\n"
      "\n"
      "commands:\n"
      "  solve              submit solve traffic and print the outcomes\n"
      "  stats              print the daemon's service counters\n"
      "\n"
      "common:\n"
      "  --connect ADDR     unix:<path> or tcp:<host>:<port> (required)\n"
      "\n"
      "solve traffic:\n"
      "  --decks P1,P2,..   deck files, one request each\n"
      "  --gen-seed S       seeded generated population (tea_sweep gen)\n"
      "  --gen-count N      population size (default 4)\n"
      "  --stress           sample the generator's hostile corner\n"
      "  --repeat N         replay the request list N times (default 1)\n"
      "  --connections N    concurrent client connections (default 1;\n"
      "                     1 preserves submission order for --out gating)\n"
      "  --window N         pipelined in-flight requests per connection\n"
      "                     (default 8)\n"
      "  --out FILE         write golden response quantities as JSON\n");
  return 2;
}

std::string fmt_ms(double seconds) { return tl::Table::num(seconds * 1e3, 2); }

int run_solve(const tl::Cli& cli, const std::string& address) {
  std::vector<service::SolveRequest> requests;
  if (const auto decks = cli.get("decks")) {
    for (const std::string& path : tl::split(*decks, ',')) {
      service::SolveRequest request;
      request.label = path;
      request.problem = tl::Config::load(path).problem();
      requests.push_back(std::move(request));
    }
  }
  if (cli.has("gen-seed")) {
    gen::GenOptions gen_options;
    gen_options.seed = static_cast<std::uint64_t>(cli.get_long("gen-seed", 1));
    gen_options.count = static_cast<int>(cli.get_long("gen-count", 4));
    gen_options.stress = cli.has("stress");
    for (service::SolveRequest& request :
         service::requests_from_gen(gen_options))
      requests.push_back(std::move(request));
  }
  if (requests.empty()) {
    std::fprintf(stderr, "teactl: no traffic (need --decks or --gen-seed)\n");
    return usage();
  }

  net::NetReplayOptions options;
  options.connections = static_cast<int>(cli.get_long("connections", 1));
  options.repeats = static_cast<int>(cli.get_long("repeat", 1));
  options.window = static_cast<int>(cli.get_long("window", 8));
  const net::NetReplayReport report =
      net::run_net_replay(address, requests, options);

  tl::Table table({"request", "variant", "conv", "iters", "batch", "queue_ms",
                   "solve_ms", "latency_ms"});
  for (const service::SolveResponse& response : report.responses) {
    if (!response.ok()) {
      std::fprintf(stderr, "teactl: %s failed: %s\n", response.label.c_str(),
                   response.error.c_str());
      continue;
    }
    table.add_row({response.label, response.variant,
                   response.converged ? "yes" : "NO",
                   std::to_string(response.iterations),
                   std::to_string(response.batch_size),
                   fmt_ms(response.queue_seconds),
                   fmt_ms(response.solve_seconds),
                   fmt_ms(response.latency_seconds)});
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf(
      "net replay: %zu responses over %d connection(s) in %.3f s  "
      "(%.2f solves/s, client p50 %.2f ms, p99 %.2f ms, %ld busy retries)\n",
      report.responses.size(), options.connections, report.wall_seconds,
      report.throughput_sps, report.p50_s * 1e3, report.p99_s * 1e3,
      report.busy_retries);

  if (const auto out = cli.get("out")) {
    std::ofstream file(*out, std::ios::binary);
    if (!file) throw tl::Error("teactl: cannot write " + *out);
    file << service::golden_responses_json(report.responses);
    std::printf("wrote %s\n", out->c_str());
  }
  return report.all_ok() ? 0 : 1;
}

int run_stats(const std::string& address) {
  net::Client client(address);
  const service::ServiceStats stats = client.stats();
  std::printf(
      "service: %ld submitted / %ld rejected / %ld completed\n"
      "batching: %ld batches (%ld batched solves), %ld fallback solves\n"
      "plan cache: %ld hits / %ld misses / %ld tunes / %ld evictions\n"
      "arena: %ld allocated / %ld reused\n",
      stats.submitted, stats.rejected, stats.completed, stats.batches,
      stats.batched_solves, stats.fallback_solves, stats.plan.hits,
      stats.plan.misses, stats.plan.tunes, stats.plan.evictions,
      stats.arena.allocated, stats.arena.reused);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const tl::Cli cli(argc, argv);
  try {
    if (cli.positional().empty()) return usage();
    const std::string command = cli.positional().front();
    const auto connect = cli.get("connect");
    if (!connect) {
      std::fprintf(stderr, "teactl: --connect is required\n");
      return usage();
    }
    if (command == "solve") return run_solve(cli, *connect);
    if (command == "stats") return run_stats(*connect);
    std::fprintf(stderr, "teactl: unknown command \"%s\"\n", command.c_str());
    return usage();
  } catch (const tl::Error& e) {
    std::fprintf(stderr, "teactl: %s\n", e.what());
    return 2;
  }
}
