// tea_sweep — operate the persistent benchmark result store.
//
//   tea_sweep run      run the (variant × problem) sweep matrix once; cells
//                      already stored are cache hits and are not re-executed
//   tea_sweep query    print stored rows
//   tea_sweep compare  rebuild Table III from stored rows alone and join it
//                      against the paper's published numbers
//   tea_sweep diff     regression-gate a store against a baseline store
//   tea_sweep merge    merge stores (e.g. sweeps from several sessions)
//
// The store path comes from --store, else $TEA_RESULTS, else
// BENCH_results.json in the working directory — the same resolution the
// bench binaries use, so `tea_sweep run` followed by any figure/table bench
// performs zero duplicate measurements.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <fstream>
#include <sstream>

#include "bench/harness.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "gen/generator.hpp"
#include "gen/properties.hpp"
#include "machine/machine_model.hpp"
#include "results/compare.hpp"
#include "results/result_store.hpp"
#include "results/sweep.hpp"
#include "tuning/plan.hpp"
#include "tuning/search.hpp"
#include "validation/validation.hpp"

namespace {

int usage() {
  std::printf(
      "usage: tea_sweep <command> [options]\n"
      "\n"
      "commands:\n"
      "  run      [--store P] [--mesh N] [--steps N] [--samples N] [--ranks N]\n"
      "           [--variants a,b,..] [--decks] [--decks-dir DIR]\n"
      "           [--gen-seed S [--gen-count N]]\n"
      "           execute the sweep matrix through the store cache;\n"
      "           --gen-seed appends a generated deck population to the\n"
      "           problem list (same sampling as `gen`)\n"
      "  gen      --seed S [--count N] [--out DIR] [--stress] [--check]\n"
      "           [--min-cells N] [--max-cells N]\n"
      "           emit a seeded deterministic deck population (same seed =>\n"
      "           byte-identical decks; deck i does not depend on --count);\n"
      "           --stress samples hostile corners (1-cell regions, extreme\n"
      "           anisotropy, eps near machine precision, max-iter cliffs);\n"
      "           --check runs the metamorphic property suite over the\n"
      "           population and exits 1 if any deck fails\n"
      "  query    [--store P] [--variant V] [--deck D]\n"
      "           print stored rows\n"
      "  compare  [--store P] [--mesh N] [--steps N] [--ranks N] [--paper-mesh N]\n"
      "           Table III + our-vs-paper deltas from stored rows alone\n"
      "  validate [--store P] [--mesh N] [--steps N] [--ranks N]\n"
      "           [--out BENCH_validation.json] [--markdown P] [--baseline P]\n"
      "           join stored rows against the paper's Fig. 1/2 and Table III\n"
      "           numbers, run the shape checks and the host-model\n"
      "           calibration, and write the JSON + markdown report; with\n"
      "           --baseline, fail on any shape-check regression against a\n"
      "           previously saved report\n"
      "  diff     <baseline.json> <current.json> [--tolerance 0.25] [--counters]\n"
      "           regression gate: FAIL when current min-sample time exceeds\n"
      "           baseline by more than the relative tolerance; --counters\n"
      "           additionally requires instrumentation counters and\n"
      "           iteration counts to match the baseline exactly\n"
      "  kernels  [--store P] [--meshes 128,256,..] [--samples N]\n"
      "           [--variants serial,manual-omp] [--baseline base.json]\n"
      "           time the hot-path kernels (5-point stencil, dot, fused\n"
      "           op+dot) into the store; with --baseline, print per-row\n"
      "           speedups against a previously saved kernel sweep\n"
      "  tune     (--deck PATH | --mesh N [--steps N] | --gen-seed S\n"
      "           [--gen-count N]) [--store P]\n"
      "           [--budget N] [--samples N] [--label L]\n"
      "           [--out plan.json] [--report frontier.md]\n"
      "           [--no-calibration] [--baseline plan.json]\n"
      "           search the execution-plan space: model-prune every\n"
      "           candidate on the calibrated host model, measure the\n"
      "           survivors through the store cache, and write the winning\n"
      "           TunedPlan (run `tea <deck> --plan plan.json` to use it);\n"
      "           --gen-seed tunes one plan over a generated population\n"
      "           (the winner must converge on every member);\n"
      "           with --baseline, fail if the plan's structural identity\n"
      "           (schema/deck/budget) drifted from a committed plan\n"
      "  merge    <out.json> <in1.json> [in2.json ...]\n"
      "           merge stores (later inputs win on key collisions)\n"
      "\n"
      "TEA_BENCH_MESH / TEA_BENCH_STEPS / TEA_BENCH_SAMPLES set the same\n"
      "defaults the bench binaries use; TEA_RESULTS sets the store path.\n");
  return 2;
}

std::string resolve_store_path(const tl::Cli& cli) {
  if (const auto p = cli.get("store")) return *p;
  return bench::store_path();
}

std::string decks_dir(const tl::Cli& cli) {
  if (const auto d = cli.get("decks-dir")) return *d;
  return std::string(TEA_SOURCE_DIR) + "/examples/decks";
}

/// Generator options shared by `gen`, `run --gen-seed` and
/// `tune --gen-seed` (the latter two use the gen-* key spellings so they
/// cannot collide with their own --samples/--count-style flags).
gen::GenOptions gen_options_from_cli(const tl::Cli& cli,
                                     const std::string& seed_key,
                                     const std::string& count_key,
                                     int default_count) {
  gen::GenOptions o;
  o.seed = static_cast<std::uint64_t>(cli.get_long(seed_key, 1));
  o.count = static_cast<int>(cli.get_long(count_key, default_count));
  o.stress = cli.has("stress");
  o.min_cells = static_cast<int>(cli.get_long("min-cells", o.min_cells));
  o.max_cells = static_cast<int>(cli.get_long("max-cells", o.max_cells));
  return o;
}

int cmd_gen(const tl::Cli& cli) {
  if (!cli.has("seed")) {
    std::fprintf(stderr, "gen needs --seed S (determinism is the point)\n");
    return usage();
  }
  const gen::GenOptions options = gen_options_from_cli(cli, "seed", "count", 20);
  const std::vector<gen::GeneratedDeck> decks = gen::generate(options);

  tl::Table table({"deck", "mesh", "domain", "solver", "precon", "eps",
                   "steps", "max_iters", "states"});
  const auto sci = [](double v) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%.1e", v);
    return std::string(buf);
  };
  for (const gen::GeneratedDeck& d : decks) {
    const tl::ProblemConfig& p = d.problem;
    table.add_row({d.name,
                   std::to_string(p.x_cells) + "x" + std::to_string(p.y_cells),
                   tl::Table::num(p.xmax - p.xmin, 2) + "x" +
                       tl::Table::num(p.ymax - p.ymin, 2),
                   tl::to_string(p.solver), tl::to_string(p.preconditioner),
                   sci(p.eps), std::to_string(p.end_step),
                   std::to_string(p.max_iters),
                   std::to_string(p.states.size())});
  }
  std::printf("== generated population: seed %llu, %d decks%s ==\n%s\n",
              static_cast<unsigned long long>(options.seed), options.count,
              options.stress ? " (stress)" : "", table.to_ascii().c_str());

  if (const auto out = cli.get("out")) {
    const std::vector<std::string> paths =
        gen::write_population(decks, options, *out);
    std::printf("wrote %zu decks to %s/\n", paths.size(), out->c_str());
  }

  if (!cli.has("check")) return 0;

  // The metamorphic property suite over the population — the same evaluator
  // ctest runs (gen::check_properties), so CI and the CLI cannot disagree.
  int failed = 0;
  for (const gen::GeneratedDeck& d : decks) {
    const gen::PropertyReport report = gen::check_properties(d.name, d.problem);
    if (report.ok()) {
      std::printf("[PASS] %s\n", d.name.c_str());
      continue;
    }
    ++failed;
    std::printf("[FAIL] %s: %s\n", d.name.c_str(), report.failures().c_str());
    for (const gen::PropertyResult& r : report.results) {
      if (!r.pass) {
        std::printf("       %-14s %s\n", r.id.c_str(), r.detail.c_str());
      }
    }
  }
  std::printf("property suite: %d/%zu decks pass\n",
              static_cast<int>(decks.size()) - failed, decks.size());
  if (failed > 0) {
    std::printf(
        "promote failing decks: write them with --out, copy the deck into "
        "examples/decks/regressions/ and pin it in tests (docs/TESTING.md)\n");
  }
  return failed == 0 ? 0 : 1;
}

int cmd_run(const tl::Cli& cli) {
  // Share the bench binaries' env-driven defaults so sweep keys match theirs.
  const auto defaults = bench::HarnessOptions::from_env(1000);
  const int mesh = static_cast<int>(cli.get_long("mesh", defaults.bench_mesh));
  const int steps =
      static_cast<int>(cli.get_long("steps", defaults.bench_steps));
  const int samples =
      static_cast<int>(cli.get_long("samples", defaults.samples));

  results::SweepConfig config = results::default_sweep(mesh, steps, samples);
  config.options.ranks =
      static_cast<int>(cli.get_long("ranks", config.options.ranks));
  config.verbose = true;
  if (const auto v = cli.get("variants")) {
    config.variants = tl::split(*v, ',');
  }
  if (cli.has("decks")) {
    std::vector<std::string> skipped;
    for (results::SweepProblem& sp :
         results::load_deck_problems(decks_dir(cli), {}, &skipped)) {
      config.problems.push_back(std::move(sp));
    }
    for (const std::string& s : skipped) {
      std::fprintf(stderr, "skipping deck %s\n", s.c_str());
    }
  }
  if (cli.has("gen-seed")) {
    // Sweep a generated workload population (deterministic per seed, so the
    // resulting rows are as cacheable as any committed deck's).
    const gen::GenOptions gen_options =
        gen_options_from_cli(cli, "gen-seed", "gen-count", 8);
    for (const gen::GeneratedDeck& d : gen::generate(gen_options)) {
      config.problems.push_back({d.name, d.problem});
    }
  }

  const std::string path = resolve_store_path(cli);
  results::ResultStore store = results::ResultStore::load(path);
  std::printf("sweep: %zu variants x %zu problems, %d samples -> %s\n",
              config.variants.size(), config.problems.size(), samples,
              path.c_str());
  const results::SweepOutcome outcome = results::run_sweep(store, config);
  store.save(path);
  std::printf("sweep done: %d measured, %d cache hits; store has %zu rows\n",
              outcome.measured, outcome.cached, store.size());
  return 0;
}

int cmd_query(const tl::Cli& cli) {
  const std::string path = resolve_store_path(cli);
  const results::ResultStore store = results::ResultStore::load(path);
  if (store.size() == 0) {
    std::printf("store %s is empty — run `tea_sweep run` first\n",
                path.c_str());
    return 1;
  }
  const tl::Table table = results::render_rows(store, cli.get_or("variant", ""),
                                               cli.get_or("deck", ""));
  std::printf("== %s (%zu rows) ==\n%s\n", path.c_str(), store.size(),
              table.to_ascii().c_str());
  return 0;
}

int cmd_compare(const tl::Cli& cli) {
  const auto defaults = bench::HarnessOptions::from_env(
      static_cast<int>(cli.get_long("paper-mesh", 4000)));
  const int mesh = static_cast<int>(cli.get_long("mesh", defaults.bench_mesh));
  const int steps =
      static_cast<int>(cli.get_long("steps", defaults.bench_steps));

  const std::string path = resolve_store_path(cli);
  const results::ResultStore store = results::ResultStore::load(path);
  results::SweepConfig config = results::default_sweep(mesh, steps, 1);
  // Rows are keyed on RunOptions too: accept the same --ranks `run` takes.
  config.options.ranks =
      static_cast<int>(cli.get_long("ranks", config.options.ranks));

  std::vector<std::string> missing;
  const std::vector<results::ResultRow> cpu_rows =
      results::select_rows(store, config, results::cpu_variants(), &missing);
  const std::vector<results::ResultRow> gpu_rows =
      results::select_rows(store, config, results::gpu_variants(), &missing);
  if (cpu_rows.empty() && gpu_rows.empty()) {
    std::fprintf(stderr,
                 "store %s has no rows for the %d^2/%d-step bench matrix — "
                 "run `tea_sweep run --mesh %d --steps %d` first\n",
                 path.c_str(), mesh, steps, mesh, steps);
    return 1;
  }
  for (const std::string& v : missing) {
    std::fprintf(stderr, "note: no stored row for %s\n", v.c_str());
  }

  results::ProjectionSpec cpu_spec{defaults.paper_mesh, defaults.paper_steps,
                                   {"xeon", "knl"}};
  results::ProjectionSpec gpu_spec{defaults.paper_mesh, defaults.paper_steps,
                                   {"p100"}};
  std::vector<ppm::VariantResult> variant_results =
      results::to_variant_results(results::project_rows(cpu_rows, cpu_spec));
  for (auto& r :
       results::to_variant_results(results::project_rows(gpu_rows, gpu_spec))) {
    variant_results.push_back(r);
  }

  const results::PaperComparison cmp = results::compare_to_paper(
      variant_results, {"xeon", "knl"}, {"p100"});
  std::printf("== Table III (from stored rows, projected to %d^2) ==\n%s\n",
              defaults.paper_mesh, cmp.ours.to_ascii().c_str());
  std::printf("== P(app) comparison vs paper ==\n%s\n",
              cmp.versus.to_ascii().c_str());
  std::printf("P(app, CPU∪GPU) ordering manual > raja > ops > kokkos: %s\n",
              cmp.ordering_ok ? "PASS" : "FAIL");
  std::printf("memory-bound signature (compute eff. < 10%% everywhere): %s\n",
              cmp.memory_bound ? "PASS" : "FAIL");
  std::printf("worst |delta| on P(all,app): %.2f points\n", cmp.worst_delta);
  return 0;
}

int cmd_validate(const tl::Cli& cli) {
  const auto defaults = bench::HarnessOptions::from_env(1000);
  validation::ValidationOptions options;
  options.mesh = static_cast<int>(cli.get_long("mesh", defaults.bench_mesh));
  options.steps =
      static_cast<int>(cli.get_long("steps", defaults.bench_steps));
  options.ranks = static_cast<int>(cli.get_long("ranks", options.ranks));

  const std::string path = resolve_store_path(cli);
  const results::ResultStore store = results::ResultStore::load(path);
  if (store.size() == 0) {
    std::fprintf(stderr, "store %s is empty — run `tea_sweep run` first\n",
                 path.c_str());
    return 2;
  }

  const validation::ValidationReport report =
      validation::validate(store, options);
  const std::string markdown = validation::report_markdown(report);
  std::printf("%s", markdown.c_str());

  // The report files are pure functions of the store (bit-identical across
  // runs); the live-host comparison below is measured, so it goes to stdout
  // only.
  if (report.calibration.ok) {
    const machine::MachineModel& host = machine::host_machine();
    std::printf(
        "\nlive host model: triad %.1f GB/s, launch_overhead_us %.1f -> "
        "fitted bw_fraction %.2f, launch delta %+.1f us\n",
        host.peak_bw_gbs, host.launch_overhead_us,
        report.calibration.fitted_bw_gbs / host.peak_bw_gbs,
        report.calibration.launch_overhead_us - host.launch_overhead_us);
  }

  const results::Json json = validation::report_json(report);
  const std::string out_path = cli.get_or("out", "BENCH_validation.json");
  {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 2;
    }
    out << json.dump(2) << "\n";
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  if (const auto md = cli.get("markdown")) {
    std::ofstream out(*md);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", md->c_str());
      return 2;
    }
    out << markdown;
    std::printf("wrote %s\n", md->c_str());
  }

  if (report.checked() == 0) {
    std::fprintf(stderr,
                 "no applicable shape checks — store has no rows for the "
                 "%d^2/%d-step bench matrix?\n",
                 options.mesh, options.steps);
    return 1;
  }

  if (const auto b = cli.get("baseline")) {
    std::ifstream in(*b);
    if (!in) {
      std::fprintf(stderr, "cannot read baseline %s\n", b->c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const results::Json baseline = results::Json::parse(ss.str());
    const validation::BaselineDiff diff =
        validation::compare_to_baseline(json, baseline);
    for (const std::string& id : diff.regressed) {
      std::printf("REGRESSED vs baseline: %s\n", id.c_str());
    }
    for (const std::string& id : diff.fixed) {
      std::printf("fixed vs baseline: %s\n", id.c_str());
    }
    std::printf("baseline gate: %d checks compared, %zu regressed -> %s\n",
                diff.compared, diff.regressed.size(),
                diff.ok() ? "PASS" : "FAIL");
    return diff.ok() ? 0 : 1;
  }
  return report.ok() ? 0 : 1;
}

int cmd_diff(const tl::Cli& cli) {
  if (cli.positional().size() < 3) return usage();
  const std::string baseline_path = cli.positional()[1];
  const std::string current_path = cli.positional()[2];
  results::GateOptions options;
  options.rel_tolerance = cli.get_double("tolerance", 0.25);
  options.compare_counters = cli.has("counters");

  const results::ResultStore baseline =
      results::ResultStore::load(baseline_path);
  const results::ResultStore current = results::ResultStore::load(current_path);
  if (baseline.size() == 0) {
    std::fprintf(stderr, "baseline store %s is empty or missing\n",
                 baseline_path.c_str());
    return 2;
  }
  if (current.size() == 0) {
    std::fprintf(stderr, "current store %s is empty or missing\n",
                 current_path.c_str());
    return 2;
  }

  const results::GateReport report =
      results::regression_gate(baseline, current, options);
  tl::Table table({"verdict", "variant", "deck", "baseline s", "current s",
                   "delta", "counters"});
  for (const results::GateResult& g : report.results) {
    const bool has_baseline = g.verdict != results::GateVerdict::kMissingBaseline;
    table.add_row({results::to_string(g.verdict), g.variant, g.deck,
                   has_baseline ? tl::Table::num(g.baseline_s, 3) : "-",
                   tl::Table::num(g.current_s, 3),
                   has_baseline
                       ? tl::Table::num(100.0 * g.rel_delta, 1) + "%"
                       : "-",
                   !options.compare_counters ? "-"
                   : g.counter_mismatch.empty()
                       ? (has_baseline ? "exact" : "-")
                       : g.counter_mismatch});
  }
  std::printf("== regression gate (tolerance +%.0f%%%s) ==\n%s\n",
              100.0 * options.rel_tolerance,
              options.compare_counters ? ", counters exact" : "",
              table.to_ascii().c_str());
  std::printf("%d pass, %d fail, %d missing-baseline\n", report.passed,
              report.failed, report.missing);
  // A gate that matched zero keys checked nothing — likely schema/key drift
  // between the stores (e.g. a stale committed baseline).  Fail loudly
  // rather than pass vacuously.
  if (report.passed + report.failed == 0) {
    std::fprintf(stderr,
                 "gate matched no baseline rows — regenerate the baseline "
                 "(key or schema drift?)\n");
    return 1;
  }
  return report.ok() ? 0 : 1;
}

int cmd_kernels(const tl::Cli& cli) {
  results::KernelSweepConfig config;
  config.samples = static_cast<int>(cli.get_long("samples", config.samples));
  config.verbose = true;
  if (const auto m = cli.get("meshes")) {
    config.meshes.clear();
    for (const std::string& s : tl::split(*m, ',')) {
      char* end = nullptr;
      const long mesh = std::strtol(s.c_str(), &end, 10);
      if (s.empty() || end == nullptr || *end != '\0' || mesh <= 0) {
        throw tl::Error("--meshes expects positive integers, got '" + s + "'");
      }
      config.meshes.push_back(static_cast<int>(mesh));
    }
  }
  if (const auto v = cli.get("variants")) config.variants = tl::split(*v, ',');

  const std::string path = resolve_store_path(cli);
  results::ResultStore store = results::ResultStore::load(path);
  std::printf("kernel sweep: %zu kernels x %zu meshes x %zu variants -> %s\n",
              results::kernel_sweep_kernels().size(), config.meshes.size(),
              config.variants.size(), path.c_str());
  const results::SweepOutcome outcome =
      results::run_kernel_sweep(store, config);
  store.save(path);
  std::printf("kernel sweep done: %d measured, %d cache hits\n",
              outcome.measured, outcome.cached);

  // Report the rows (and speedups against a baseline kernel sweep when one
  // is supplied — the before/after evidence for kernel optimisation work).
  results::ResultStore baseline;
  if (const auto b = cli.get("baseline")) {
    baseline = results::ResultStore::load(*b);
  }
  tl::Table table({"kernel", "variant", "mesh", "median us/call",
                   "min us/call", "baseline us", "speedup"});
  std::vector<double> speedups;
  for (const results::ResultRow& r : store.rows()) {
    if (r.variant.rfind("kernel-", 0) != 0) continue;
    std::string base_median = "-";
    std::string speedup = "-";
    if (const results::ResultRow* b = baseline.find(r.key)) {
      if (r.timing.median_s > 0.0) {
        const double s = b->timing.median_s / r.timing.median_s;
        base_median = tl::Table::num(1e6 * b->timing.median_s, 1);
        speedup = tl::Table::num(s, 2) + "x";
        speedups.push_back(s);
      }
    }
    table.add_row({r.deck, r.variant.substr(r.variant.find('/') + 1),
                   std::to_string(r.mesh_x),
                   tl::Table::num(1e6 * r.timing.median_s, 1),
                   tl::Table::num(1e6 * r.timing.min_s, 1), base_median,
                   speedup});
  }
  std::printf("%s\n", table.to_ascii().c_str());
  if (!speedups.empty()) {
    std::sort(speedups.begin(), speedups.end());
    std::printf("median speedup vs baseline: %.2fx over %zu rows\n",
                speedups[speedups.size() / 2], speedups.size());
  }
  return 0;
}

int cmd_tune(const tl::Cli& cli) {
  // Resolve the workload: an explicit deck file, the canonical bench
  // problem (the same construction `run` uses, so store keys line up), or a
  // generated population (--gen-seed) tuned as one aggregate workload.
  std::vector<results::SweepProblem> population;
  std::string label;
  if (const auto deck = cli.get("deck")) {
    label = std::filesystem::path(*deck).stem().string();
    population.push_back({label, tl::Config::load(*deck).problem()});
  } else if (cli.has("gen-seed")) {
    const gen::GenOptions gen_options =
        gen_options_from_cli(cli, "gen-seed", "gen-count", 4);
    for (const gen::GeneratedDeck& d : gen::generate(gen_options)) {
      population.push_back({d.name, d.problem});
    }
    label = "gen-s" + std::to_string(gen_options.seed) + "-n" +
            std::to_string(gen_options.count) +
            (gen_options.stress ? "-stress" : "");
  } else if (cli.has("mesh")) {
    const auto defaults = bench::HarnessOptions::from_env(1000);
    const int mesh = static_cast<int>(cli.get_long("mesh", 48));
    const int steps =
        static_cast<int>(cli.get_long("steps", defaults.bench_steps));
    label = "bench-" + std::to_string(mesh);
    population.push_back({label, results::bench_problem(mesh, steps)});
  } else {
    std::fprintf(stderr, "tune needs --deck PATH, --mesh N or --gen-seed S\n");
    return usage();
  }

  tuning::TuneOptions options;
  options.deck_label = cli.get_or("label", label);
  options.budget = static_cast<int>(cli.get_long("budget", options.budget));
  options.samples = static_cast<int>(
      cli.get_long("samples", bench::HarnessOptions::from_env(1000).samples));
  options.use_calibration = !cli.has("no-calibration");
  options.verbose = true;

  const std::string path = resolve_store_path(cli);
  results::ResultStore store = results::ResultStore::load(path);
  const tl::ProblemConfig& lead = population.front().problem;
  std::printf("tune: %s (%zu member%s, lead %dx%d, %d steps) budget %d -> %s\n",
              options.deck_label.c_str(), population.size(),
              population.size() == 1 ? "" : "s", lead.x_cells, lead.y_cells,
              lead.end_step, options.budget, path.c_str());
  const tuning::TuneOutcome outcome =
      tuning::tune_population(store, population, options);
  store.save(path);

  const tuning::TunedPlan& plan = outcome.plan;
  std::printf(
      "tune done: %zu candidates considered, %d measured, %d cache hits\n",
      outcome.considered.size(), outcome.measured, outcome.cached);
  std::printf("winner: %s  median %.4fs (incumbent %.4fs)\n",
              plan.winner.id().c_str(), plan.winner_median_s,
              plan.incumbent_median_s);
  std::printf("model constants: %.2f GB/s (%s), %.2f us/launch (%s)%s\n",
              plan.scored_bw_gbs, plan.bw_source.c_str(),
              plan.scored_launch_overhead_us, plan.launch_source.c_str(),
              plan.calibrated ? " — calibration fed back into host_machine()"
                              : "");
  std::printf(
      "device constants: %.2f GB/s (%s), %.2f us/launch (%s), "
      "PCIe %.2f GB/s (%s)%s\n",
      plan.scored_device_bw_gbs, plan.device_bw_source.c_str(),
      plan.scored_device_launch_us, plan.device_launch_source.c_str(),
      plan.scored_pcie_gbs, plan.pcie_source.c_str(),
      plan.device_calibrated ? " — fitted from stored device rows" : "");
  if (plan.has_device_choice) {
    std::printf("device choice: host %s vs device %s\n",
                plan.host_choice.id().c_str(), plan.device_choice.id().c_str());
    for (const tuning::DeviceChoice& d : plan.device_table) {
      std::printf("  mesh %5d: host %.4fs, device %.4fs -> %s\n", d.mesh,
                  d.host_s, d.device_s, d.use_device ? "device" : "host");
    }
    if (plan.crossover_mesh > 0) {
      std::printf("crossover: device wins from %d cells per side\n",
                  plan.crossover_mesh);
    } else {
      std::printf("crossover: host wins at every table mesh\n");
    }
  }

  const std::string out_path = cli.get_or("out", "BENCH_tuned_plan.json");
  tuning::save_plan(plan, out_path);
  std::printf("wrote %s\n", out_path.c_str());
  if (const auto report = cli.get("report")) {
    std::ofstream out(*report);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", report->c_str());
      return 2;
    }
    out << tuning::frontier_markdown(outcome);
    std::printf("wrote %s\n", report->c_str());
  }

  if (const auto b = cli.get("baseline")) {
    // Structural gate only: wall times — and therefore the winner — are
    // machine-local, but the plan's identity (schema, problem, search
    // width) must match the committed artifact exactly.  Bit-determinism
    // across runs on one machine is asserted separately by re-tuning.
    const tuning::TunedPlan base = tuning::load_plan(*b);
    int mismatches = 0;
    const auto check = [&](const char* what, const std::string& ours,
                           const std::string& theirs) {
      if (ours == theirs) return;
      std::fprintf(stderr, "baseline mismatch: %s '%s' != '%s'\n", what,
                   ours.c_str(), theirs.c_str());
      ++mismatches;
    };
    check("deck", plan.deck, base.deck);
    check("deck_hash", plan.deck_hash, base.deck_hash);
    check("budget", std::to_string(plan.budget), std::to_string(base.budget));
    check("mesh", std::to_string(plan.mesh_x), std::to_string(base.mesh_x));
    if (plan.winner.id() != base.winner.id()) {
      std::printf("note: winner differs from baseline (%s vs %s) — expected "
                  "across machines\n",
                  plan.winner.id().c_str(), base.winner.id().c_str());
    }
    std::printf("baseline gate: %s\n", mismatches == 0 ? "PASS" : "FAIL");
    if (mismatches != 0) return 1;
  }
  return 0;
}

int cmd_merge(const tl::Cli& cli) {
  if (cli.positional().size() < 3) return usage();
  const std::string out_path = cli.positional()[1];
  results::ResultStore merged;
  for (std::size_t i = 2; i < cli.positional().size(); ++i) {
    const std::string& in_path = cli.positional()[i];
    const results::ResultStore in = results::ResultStore::load(in_path);
    if (in.size() == 0) {
      std::fprintf(stderr, "warning: %s is empty or missing\n",
                   in_path.c_str());
    }
    const std::size_t n = merged.merge(in);
    std::printf("merged %zu rows from %s\n", n, in_path.c_str());
  }
  merged.save(out_path);
  std::printf("wrote %zu rows to %s\n", merged.size(), out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const tl::Cli cli(argc, argv);
  if (cli.positional().empty()) return usage();
  const std::string& command = cli.positional()[0];
  try {
    if (command == "run") return cmd_run(cli);
    if (command == "gen") return cmd_gen(cli);
    if (command == "query") return cmd_query(cli);
    if (command == "compare") return cmd_compare(cli);
    if (command == "validate") return cmd_validate(cli);
    if (command == "diff") return cmd_diff(cli);
    if (command == "kernels") return cmd_kernels(cli);
    if (command == "tune") return cmd_tune(cli);
    if (command == "merge") return cmd_merge(cli);
  } catch (const tl::Error& e) {
    std::fprintf(stderr, "tea_sweep %s: %s\n", command.c_str(), e.what());
    return 2;
  }
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return usage();
}
