// tead — CLI frontend over the solve service (src/service).
//
// Two modes.  The replay mode builds a request list (deck files and/or a
// seeded generated population), replays it through an in-process
// SolveService, and prints the per-request outcomes plus the service
// counters: throughput, latency percentiles, plan-cache hits/misses/tunes
// and field-arena reuse.  The daemon mode (`--listen unix:<path>` /
// `tcp:<host>:<port>`) serves the same SolveService to remote clients over
// the framed wire protocol (src/net) until SIGINT/SIGTERM, which triggers a
// clean drain: listener closed first, in-flight requests answered, then
// shutdown — never process teardown mid-solve.  Everything the daemon does
// is library code exercised identically by the tests and benches; this
// binary only parses flags and renders tables (see docs/SERVICE.md).
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/harness.hpp"
#include "common/cli.hpp"
#include "common/config.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "net/server.hpp"
#include "results/result_store.hpp"
#include "service/replay.hpp"
#include "service/service.hpp"

namespace {

int usage() {
  std::printf(
      "usage: tead (--decks a.in,b.in,.. | --gen-seed S [--gen-count N]\n"
      "            [--stress]) [options]\n"
      "       tead --listen (unix:<path> | tcp:<host>:<port>) [options]\n"
      "\n"
      "replay solve traffic through the in-process solve service, or serve\n"
      "it to remote teactl clients over the wire (docs/SERVICE.md)\n"
      "\n"
      "traffic (replay mode):\n"
      "  --decks P1,P2,..   deck files, one request each\n"
      "  --gen-seed S       seeded generated population (tea_sweep gen)\n"
      "  --gen-count N      population size (default 4)\n"
      "  --stress           sample the generator's hostile corner\n"
      "  --repeat N         replay the request list N times (default 1)\n"
      "  --out FILE         write golden response quantities as JSON\n"
      "\n"
      "daemon mode:\n"
      "  --listen ADDR      serve the wire protocol on unix:<path> or\n"
      "                     tcp:<host>:<port> until SIGINT/SIGTERM\n"
      "  --connections N    accepted-connection cap (default 64)\n"
      "\n"
      "service:\n"
      "  --workers N        worker shards (default 2)\n"
      "  --threads N        solve-pool width per worker (default 2)\n"
      "  --queue N          admission bound (default 64)\n"
      "  --batch N          max same-problem requests per batch (default 4)\n"
      "  --no-tune          skip tuning: deck defaults on --variant\n"
      "  --variant V        no-tune backend variant (default manual-omp)\n"
      "  --budget N         tune refinement width (default 4)\n"
      "  --samples N        tune timing samples (default 1)\n"
      "  --store P          result store backing tune measurements\n"
      "                     (default: $TEA_RESULTS or BENCH_results.json)\n"
      "  --plan-cache P     persisted plan cache (default <store>.plans.json;\n"
      "                     'none' disables persistence)\n"
      "  --cache-capacity N plan-cache LRU bound (default 32)\n");
  return 2;
}

std::string fmt_ms(double seconds) {
  return tl::Table::num(seconds * 1e3, 2);
}

/// Serve the wire protocol until SIGINT/SIGTERM requests a clean drain.
int run_daemon(const std::string& listen_address,
               const tl::Cli& cli, service::ServiceOptions options,
               results::ResultStore& store, const std::string& store_path) {
  service::SolveService daemon(options, &store);
  net::ServerOptions server_options;
  server_options.address = listen_address;
  server_options.max_connections =
      static_cast<int>(cli.get_long("connections", 64));
  net::Server server(daemon, server_options);
  server.open();
  std::printf("tead: serving on %s (%d workers x %d threads, queue %zu, %s)\n",
              server.address().to_string().c_str(), options.workers,
              options.threads_per_worker, options.queue_capacity,
              options.enable_tuning ? "tuned" : "portable");
  std::fflush(stdout);

  net::install_signal_handlers(&server);
  server.run();  // returns after the signal-triggered graceful drain
  net::install_signal_handlers(nullptr);

  daemon.shutdown();  // persists the plan cache
  if (options.enable_tuning) store.save(store_path);

  const net::ServerIoStats io = server.io_stats();
  const service::ServiceStats stats = daemon.stats();
  std::printf(
      "tead: drained; %ld connections (%ld disconnects), %ld frames in / "
      "%ld out, %ld requests (%ld busy, %ld bad, %ld protocol errors), "
      "%ld stats queries\n",
      io.accepted, io.disconnects, io.frames_in, io.frames_out, io.requests,
      io.busy_replies, io.request_errors, io.protocol_errors,
      io.stats_queries);
  std::printf(
      "service: %ld completed, %ld batches (%ld batched solves), plan cache "
      "%ld hits / %ld misses / %ld tunes, arena %ld allocated / %ld reused\n",
      stats.completed, stats.batches, stats.batched_solves, stats.plan.hits,
      stats.plan.misses, stats.plan.tunes, stats.arena.allocated,
      stats.arena.reused);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const tl::Cli cli(argc, argv);
  try {
    // Traffic.
    std::vector<service::SolveRequest> requests;
    if (const auto decks = cli.get("decks")) {
      for (const std::string& path : tl::split(*decks, ',')) {
        service::SolveRequest request;
        request.label = path;
        request.problem = tl::Config::load(path).problem();
        requests.push_back(std::move(request));
      }
    }
    if (cli.has("gen-seed")) {
      gen::GenOptions gen_options;
      gen_options.seed =
          static_cast<std::uint64_t>(cli.get_long("gen-seed", 1));
      gen_options.count = static_cast<int>(cli.get_long("gen-count", 4));
      gen_options.stress = cli.has("stress");
      for (service::SolveRequest& request :
           service::requests_from_gen(gen_options))
        requests.push_back(std::move(request));
    }
    const bool listen = cli.has("listen");
    if (requests.empty() && !listen) {
      std::fprintf(stderr, "tead: no traffic (need --decks or --gen-seed)\n");
      return usage();
    }
    const int repeats = static_cast<int>(cli.get_long("repeat", 1));

    // Service.
    service::ServiceOptions options;
    options.workers = static_cast<int>(cli.get_long("workers", 2));
    options.threads_per_worker = static_cast<int>(cli.get_long("threads", 2));
    options.queue_capacity =
        static_cast<std::size_t>(cli.get_long("queue", 64));
    options.max_batch = static_cast<std::size_t>(cli.get_long("batch", 4));
    options.enable_tuning = !cli.has("no-tune");
    options.default_variant = cli.get_or("variant", "manual-omp");
    options.tune.budget = static_cast<int>(cli.get_long("budget", 4));
    options.tune.samples = static_cast<int>(cli.get_long("samples", 1));
    options.plan_cache_capacity =
        static_cast<std::size_t>(cli.get_long("cache-capacity", 32));

    const std::string store_path = cli.get_or("store", bench::store_path());
    std::string cache_path = cli.get_or("plan-cache", store_path + ".plans.json");
    if (cache_path == "none") cache_path.clear();
    options.plan_cache_path = cache_path;

    results::ResultStore store = results::ResultStore::load(store_path);
    if (listen)
      return run_daemon(cli.get_or("listen", ""), cli, options, store,
                        store_path);

    service::ReplayReport report;
    {
      service::SolveService daemon(options, &store);
      report = service::run_replay(daemon, requests, repeats);
      daemon.shutdown();  // persists the plan cache
    }
    if (options.enable_tuning) store.save(store_path);
    if (const auto out = cli.get("out")) {
      std::ofstream file(*out, std::ios::binary);
      if (!file) throw tl::Error("tead: cannot write " + *out);
      file << service::golden_responses_json(report.responses);
    }

    tl::Table table({"request", "variant", "conv", "iters", "batch",
                     "queue_ms", "solve_ms", "latency_ms"});
    for (const service::SolveResponse& response : report.responses) {
      if (!response.ok()) {
        std::fprintf(stderr, "tead: %s failed: %s\n", response.label.c_str(),
                     response.error.c_str());
        continue;
      }
      table.add_row({response.label, response.variant,
                     response.converged ? "yes" : "NO",
                     std::to_string(response.iterations),
                     std::to_string(response.batch_size),
                     fmt_ms(response.queue_seconds),
                     fmt_ms(response.solve_seconds),
                     fmt_ms(response.latency_seconds)});
    }
    std::printf("%s\n", table.to_ascii().c_str());

    const service::ServiceStats& stats = report.stats;
    std::printf(
        "replay: %zu responses in %.3f s  (%.2f solves/s, p50 %.2f ms, "
        "p99 %.2f ms, %ld backpressure rejects)\n",
        report.responses.size(), report.wall_seconds, report.throughput_sps,
        report.p50_s * 1e3, report.p99_s * 1e3, report.backpressure_rejects);
    std::printf(
        "service: %ld batches (%ld batched solves), plan cache %ld hits / "
        "%ld misses / %ld tunes / %ld evictions, arena %ld allocated / "
        "%ld reused\n",
        stats.batches, stats.batched_solves, stats.plan.hits,
        stats.plan.misses, stats.plan.tunes, stats.plan.evictions,
        stats.arena.allocated, stats.arena.reused);
    return report.all_ok() ? 0 : 1;
  } catch (const tl::Error& e) {
    std::fprintf(stderr, "tead: %s\n", e.what());
    return 2;
  }
}
