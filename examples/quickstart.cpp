// quickstart — the smallest complete use of the library: configure a heat
// conduction problem, run it through one backend, and read the results.
//
//   $ ./examples/quickstart [--backend manual-omp] [--cells 128] [--steps 5]
#include <cstdio>

#include "common/cli.hpp"
#include "common/config.hpp"
#include "core/registry.hpp"

int main(int argc, char** argv) {
  const tl::Cli cli(argc, argv);
  const std::string backend = cli.get_or("backend", "manual-omp");
  const int cells = static_cast<int>(cli.get_long("cells", 128));
  const int steps = static_cast<int>(cli.get_long("steps", 5));

  // Start from the shipped TeaLeaf deck (ambient cold dense material with a
  // hot light strip along the bottom) and adjust the mesh.
  tl::Config config = tl::Config::default_config();
  config.problem().x_cells = cells;
  config.problem().y_cells = cells;
  config.problem().end_step = steps;
  config.problem().eps = 1e-12;

  std::printf("TeaLeaf quickstart: %dx%d mesh, %d steps, backend '%s'\n",
              cells, cells, steps, backend.c_str());

  const tea::RunResult result =
      tea::run_simulation(backend, config.problem());

  for (const tea::StepResult& step : result.steps) {
    std::printf(
        "step %2d: %4d %s iterations, residual %.3e, temperature sum %.6f\n",
        step.step, step.solve.iterations, tl::to_string(step.solve.solver),
        step.solve.final_rr, step.summary.temp);
  }
  std::printf("\nwall time           : %.3f s\n", result.wall_seconds);
  std::printf("converged           : %s\n",
              result.all_converged() ? "yes" : "NO");
  std::printf("final mass          : %.6f\n", result.final_summary.mass);
  std::printf("final internal energy: %.6f\n", result.final_summary.ie);
  std::printf("DRAM traffic        : %.2f GB\n",
              static_cast<double>(result.counters.total_bytes()) / 1e9);
  std::printf("kernel launches     : %lld\n",
              static_cast<long long>(result.counters.kernel_launches));
  return result.all_converged() ? 0 : 1;
}
