// tea — the full deck-driven mini-app driver, equivalent to the original
// TeaLeaf executable: reads a tea.in deck, runs the configured solve on the
// chosen backend, and prints the per-step field summaries.
//
//   $ ./examples/tea examples/tea.in --backend ops-tiled --ranks 4
//   $ ./examples/tea --list                 # show available backends
//   $ ./examples/tea --report tea.out       # tea.out-style run report
//   $ ./examples/tea --vtk out.vtk          # ParaView/VisIt field snapshot
//   $ ./examples/tea deck.in --plan plan.json   # run a tea_sweep-tuned plan
//
// --plan fails loudly (exit 2) on a missing or malformed plan file and on a
// plan tuned for a different problem; --plan-force downgrades the mismatch
// to a warning.
#include <cstdio>

#include <memory>

#include "common/cli.hpp"
#include "common/config.hpp"
#include "core/backends/manual_host.hpp"
#include "core/registry.hpp"
#include "core/report.hpp"
#include "results/result_store.hpp"
#include "tuning/plan.hpp"

int main(int argc, char** argv) {
  const tl::Cli cli(argc, argv);

  if (cli.has("list")) {
    std::printf("available backends:\n");
    for (const std::string& id : tea::available_backends()) {
      std::printf("  %-16s %s%s\n", id.c_str(),
                  tea::backend_is_distributed(id) ? "[distributed] " : "",
                  tea::backend_is_gpu(id) ? "[gpu]" : "");
    }
    return 0;
  }

  tl::Config config = tl::Config::default_config();
  if (!cli.positional().empty()) {
    try {
      config = tl::Config::load(cli.positional()[0]);
    } catch (const tl::ConfigError& e) {
      std::fprintf(stderr, "error reading deck: %s\n", e.what());
      return 2;
    }
  } else {
    std::printf("(no deck given; using the built-in default problem)\n");
  }

  // Apply a tea_sweep-tuned execution plan first (solver/preconditioner
  // onto the deck, threads/ranks/tiling/fusion onto the run options,
  // backend from the winner), then parse the flags once with the plan's
  // values as fallbacks — so any explicitly given flag wins over the plan.
  std::string backend = "manual-omp";
  tea::RunOptions options;
  if (const auto plan_path = cli.get("plan")) {
    try {
      const tuning::TunedPlan plan = tuning::load_plan(*plan_path);
      if (plan.deck_hash != results::problem_hash(config.problem())) {
        if (cli.has("plan-force")) {
          std::fprintf(stderr,
                       "warning: plan %s was tuned for a different problem "
                       "(deck '%s'); applying anyway (--plan-force)\n",
                       plan_path->c_str(), plan.deck.c_str());
        } else {
          std::fprintf(stderr,
                       "error: plan %s was tuned for a different problem "
                       "(plan deck '%s', hash %s; this deck hashes to %s).\n"
                       "A mismatched plan silently runs the wrong "
                       "solver/backend configuration — re-tune with "
                       "`tea_sweep tune --deck <this deck>`, or pass "
                       "--plan-force to apply it anyway.\n",
                       plan_path->c_str(), plan.deck.c_str(),
                       plan.deck_hash.c_str(),
                       results::problem_hash(config.problem()).c_str());
          return 2;
        }
      }
      backend =
          tuning::apply_plan_for_mesh(plan, &config.problem(), &options);
      std::printf("tuned plan %s: %s\n", plan_path->c_str(),
                  backend.c_str());
      if (plan.has_device_choice) {
        const tl::ProblemConfig& prob = config.problem();
        const int mesh = prob.x_cells > prob.y_cells ? prob.x_cells
                                                     : prob.y_cells;
        const bool device_side = tea::backend_is_gpu(backend);
        std::printf(
            "device-choice table: mesh %d runs the %s side (%s); "
            "crossover at %d cells\n",
            mesh, device_side ? "device" : "host",
            device_side ? plan.device_choice.id().c_str()
                        : plan.host_choice.id().c_str(),
            plan.crossover_mesh);
      }
    } catch (const tl::Error& e) {
      std::fprintf(stderr, "error: cannot use plan %s: %s\n",
                   plan_path->c_str(), e.what());
      return 2;
    }
  }
  backend = cli.get_or("backend", backend);
  options.ranks = static_cast<int>(cli.get_long("ranks", options.ranks));
  options.threads = static_cast<int>(cli.get_long("threads", options.threads));
  options.tile.tile_rows =
      static_cast<int>(cli.get_long("tile-rows", options.tile.tile_rows));

  const tl::ProblemConfig& p = config.problem();
  std::printf("TeaLeaf: %dx%d cells, %d steps, solver %s, eps %.1e\n",
              p.x_cells, p.y_cells, p.end_step, tl::to_string(p.solver),
              p.eps);
  std::printf("backend: %s\n\n", backend.c_str());

  const tea::RunResult result = tea::run_simulation(backend, p, options);

  std::printf(" step       volume          mass            ie           temp"
              "     iters\n");
  for (const tea::StepResult& s : result.steps) {
    std::printf("%5d %13.6e %13.6e %13.6e %13.6e %8d%s\n", s.step,
                s.summary.vol, s.summary.mass, s.summary.ie, s.summary.temp,
                s.solve.iterations, s.solve.converged ? "" : "  (!)");
  }
  std::printf("\nwall clock %.4f s, %ld solver iterations total\n",
              result.wall_seconds, result.total_iterations);

  if (const auto report_path = cli.get("report")) {
    tea::write_report(result, p, *report_path);
    std::printf("report written to %s\n", report_path->c_str());
  }
  if (const auto vtk_path = cli.get("vtk")) {
    // Snapshots need direct field access, so re-run the deck through the
    // reference backend and dump its final state (identical physics is
    // guaranteed by the cross-backend equivalence tests).
    auto snapshot_backend = std::make_unique<tea::ManualHostBackend>(
        "serial", nullptr, nullptr);
    const tea::TeaDriver driver(p);
    (void)driver.run(*snapshot_backend);
    tea::write_vtk_snapshot(*snapshot_backend, p.dx(), p.dy(), *vtk_path);
    std::printf("VTK snapshot written to %s\n", vtk_path->c_str());
  }

  if (!result.all_converged()) {
    std::fprintf(stderr, "warning: one or more steps did not converge\n");
    return 1;
  }
  return 0;
}
