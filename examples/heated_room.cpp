// heated_room — a domain-specific scenario built programmatically rather
// than from a deck: a 2D room with a hot radiator along one wall, a cold
// window region, and a dense concrete pillar.  Demonstrates multi-state
// problem construction, solver selection, and cross-backend agreement on a
// non-trivial material layout.
//
//   $ ./examples/heated_room [--cells 160] [--solver ppcg]
#include <cmath>
#include <cstdio>

#include "common/cli.hpp"
#include "common/config.hpp"
#include "core/registry.hpp"

int main(int argc, char** argv) {
  const tl::Cli cli(argc, argv);
  const int cells = static_cast<int>(cli.get_long("cells", 160));
  const std::string solver_name = cli.get_or("solver", "cg");

  // Build the room: 8m x 8m, ambient air, radiator strip, window strip and
  // a dense pillar in the middle.
  tl::ProblemConfig p;
  p.x_cells = cells;
  p.y_cells = cells;
  p.xmin = 0.0;
  p.xmax = 8.0;
  p.ymin = 0.0;
  p.ymax = 8.0;
  p.initial_timestep = 0.002;
  p.end_step = 8;
  p.eps = 1e-11;
  p.max_iters = 50000;
  if (solver_name == "cg") p.solver = tl::SolverKind::kCg;
  else if (solver_name == "jacobi") p.solver = tl::SolverKind::kJacobi;
  else if (solver_name == "chebyshev") p.solver = tl::SolverKind::kCheby;
  else p.solver = tl::SolverKind::kPpcg;

  tl::StateConfig air;
  air.index = 1;
  air.density = 1.2;
  air.energy = 2.0;
  p.states.push_back(air);

  tl::StateConfig radiator;  // hot strip along the left wall
  radiator.index = 2;
  radiator.density = 0.8;
  radiator.energy = 40.0;
  radiator.geometry = tl::Geometry::kRectangle;
  radiator.xmin = 0.0;
  radiator.xmax = 0.4;
  radiator.ymin = 1.0;
  radiator.ymax = 7.0;
  p.states.push_back(radiator);

  tl::StateConfig window;  // cold strip on the right wall
  window.index = 3;
  window.density = 1.5;
  window.energy = 0.2;
  window.geometry = tl::Geometry::kRectangle;
  window.xmin = 7.6;
  window.xmax = 8.0;
  window.ymin = 2.0;
  window.ymax = 6.0;
  p.states.push_back(window);

  tl::StateConfig pillar;  // dense concrete column in the middle
  pillar.index = 4;
  pillar.density = 2400.0;
  pillar.energy = 0.001;
  pillar.geometry = tl::Geometry::kCircle;
  pillar.cx = 4.0;
  pillar.cy = 4.0;
  pillar.radius = 0.6;
  p.states.push_back(pillar);

  std::printf("heated room: %dx%d cells, solver %s\n", cells, cells,
              tl::to_string(p.solver));
  std::printf("  radiator (hot), window (cold), concrete pillar (dense)\n\n");

  // Run on a threaded CPU backend and the simulated-GPU backend; the physics
  // must agree.
  const tea::RunResult cpu = tea::run_simulation("manual-omp", p);
  const tea::RunResult gpu = tea::run_simulation("kokkos-cuda", p);

  std::printf("%-12s %10s %14s %14s %10s\n", "backend", "wall s", "ie",
              "temp", "iters");
  for (const tea::RunResult* r : {&cpu, &gpu}) {
    std::printf("%-12s %10.3f %14.6f %14.6f %10ld\n", r->backend_id.c_str(),
                r->wall_seconds, r->final_summary.ie, r->final_summary.temp,
                r->total_iterations);
  }

  const double rel = std::fabs(cpu.final_summary.temp - gpu.final_summary.temp) /
                     std::fabs(cpu.final_summary.temp);
  std::printf("\ncross-backend temperature agreement: %.2e relative\n", rel);

  // The radiator heats the room: air internal energy must grow across steps
  // while total energy is conserved (Neumann boundaries).
  const double first_temp = cpu.steps.front().summary.temp;
  const double last_temp = cpu.steps.back().summary.temp;
  std::printf("energy conservation: temp sum %.6f -> %.6f (drift %.2e)\n",
              first_temp, last_temp,
              std::fabs(last_temp - first_temp) / first_temp);

  return cpu.all_converged() && gpu.all_converged() && rel < 1e-6 ? 0 : 1;
}
