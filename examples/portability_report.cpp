// portability_report — runs every registered backend on the same problem,
// measures real host times plus instrumented counters, projects each variant
// onto the paper's three machines, and prints a live Pennycook
// performance-portability report (the programmatic version of what
// bench_table3_portability does for the paper's exact configuration).
//
//   $ ./examples/portability_report [--cells 192] [--steps 3]
#include <cstdio>

#include "common/cli.hpp"
#include "common/config.hpp"
#include "common/table.hpp"
#include "core/registry.hpp"
#include "machine/efficiency.hpp"
#include "machine/roofline.hpp"
#include "ppmetric/report.hpp"

int main(int argc, char** argv) {
  const tl::Cli cli(argc, argv);
  const int cells = static_cast<int>(cli.get_long("cells", 192));
  const int steps = static_cast<int>(cli.get_long("steps", 3));

  tl::Config config = tl::Config::default_config();
  config.problem().x_cells = cells;
  config.problem().y_cells = cells;
  config.problem().end_step = steps;
  config.problem().eps = 1e-12;

  std::printf("portability report: %dx%d, %d steps, all backends\n\n", cells,
              cells, steps);

  tl::Table measured({"backend", "host s", "iters", "GB moved", "launches",
                      "messages", "halo exchanges"});
  std::vector<ppm::VariantResult> projected;

  for (const std::string& id : tea::available_backends()) {
    if (id == "serial" || id == "ops-seq") continue;  // references, not ports
    const tea::RunResult run =
        tea::run_simulation(id, config.problem());
    measured.add_row(
        {id, tl::Table::num(run.wall_seconds, 3),
         std::to_string(run.total_iterations),
         tl::Table::num(static_cast<double>(run.counters.total_bytes()) / 1e9, 2),
         std::to_string(run.counters.kernel_launches),
         std::to_string(run.counters.messages),
         std::to_string(run.counters.halo_exchanges)});

    for (const machine::MachineModel* m : machine::paper_machines()) {
      if (!machine::supported(id, *m)) continue;
      const machine::TimeBreakdown t = machine::project_time(
          run.counters, *m, id, run.working_set_bytes);
      projected.push_back(ppm::VariantResult{
          id, m->id, t.total(), t.achieved_bw_gbs(run.counters),
          t.achieved_gflops(run.counters), m->peak_bw_gbs, m->peak_gflops});
    }
  }

  std::printf("-- measured on this host --\n%s\n", measured.to_ascii().c_str());

  const auto rows = ppm::build_table3(projected, {"xeon", "knl"}, {"p100"});
  std::printf("-- projected performance portability (Pennycook metric) --\n%s\n",
              ppm::render_table3(rows, {"xeon", "knl"}, {"p100"}).to_ascii().c_str());

  std::printf("P(application efficiency, CPU ∪ GPU):\n");
  for (const auto& row : rows) {
    std::printf("  %-8s %6.2f %%\n", row.framework.c_str(),
                100.0 * row.p_all_app);
  }
  return 0;
}
