// Multi-rank determinism suite: the distributed manual variants must walk
// the exact iteration trajectory of the serial golden table at every rank
// count.  This is the acceptance gate for the overlapped split-phase halo
// exchange — 1x1, 2x1 and 2x2 decompositions (ranks 1, 2, 4 through
// minimpi::dims_create) run every solver on the small decks and are checked
// against the same frozen numbers as the serial suite: iteration counts and
// convergence flags exactly, conserved temperature and the last pre-solve
// residual to the golden tolerances.
//
// Runs under TSan in CI (the threads-as-ranks world plus the overlapped
// exchange is precisely the code a race would hide in), so the deck set is
// the small meshes: tea_bm_1 (10^2), tea_circle (64^2), tea_aniso (120^2).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "common/config.hpp"
#include "core/backends/field_store.hpp"
#include "core/halo.hpp"
#include "core/registry.hpp"
#include "golden_cases.hpp"
#include "machine/instrumentation.hpp"
#include "minimpi/cart.hpp"

namespace {

using golden::GoldenCase;
using golden::decks_dir;
using golden::golden_config;
using golden::kGolden;
using golden::kInitialRrRelTol;
using golden::kTempRelTol;

/// The golden cases on `decks` (the meshes small enough to sweep across rank
/// counts under TSan).
std::vector<GoldenCase> cases_on(std::initializer_list<const char*> decks) {
  std::vector<GoldenCase> out;
  for (const GoldenCase& c : kGolden) {
    for (const char* deck : decks) {
      if (std::string(c.deck) == deck) out.push_back(c);
    }
  }
  return out;
}

std::vector<GoldenCase> small_cases() {
  return cases_on({"tea_bm_1", "tea_circle", "tea_aniso"});
}

void expect_matches_golden(const tea::RunResult& run, const GoldenCase& c,
                           const std::string& label) {
  long inner = 0;
  for (const tea::StepResult& s : run.steps) inner += s.solve.inner_iterations;
  EXPECT_EQ(run.total_iterations, c.outer) << label;
  EXPECT_EQ(inner, c.inner) << label;
  EXPECT_EQ(run.all_converged(), c.converged != 0) << label;
  EXPECT_NEAR(run.final_summary.temp, c.temp, kTempRelTol * std::fabs(c.temp))
      << label;
  EXPECT_NEAR(run.steps.back().solve.initial_rr, c.initial_rr,
              kInitialRrRelTol * std::fabs(c.initial_rr))
      << label;
}

class MultiRankGoldenCaseTest
    : public ::testing::TestWithParam<std::tuple<GoldenCase, int>> {};

TEST_P(MultiRankGoldenCaseTest, MatchesSerialGoldenTable) {
  const GoldenCase c = std::get<0>(GetParam());
  const int ranks = std::get<1>(GetParam());
  ASSERT_FALSE(decks_dir().empty());

  tea::RunOptions options;
  options.ranks = ranks;
  const tea::RunResult run =
      tea::run_simulation("manual-mpi", golden_config(c), options);
  const auto dims = minimpi::dims_create(ranks);
  expect_matches_golden(run, c,
                        std::string(c.deck) + "/" + c.solver + " @" +
                            std::to_string(dims[0]) + "x" +
                            std::to_string(dims[1]));
}

std::string multirank_case_name(
    const ::testing::TestParamInfo<std::tuple<GoldenCase, int>>& info) {
  const GoldenCase& c = std::get<0>(info.param);
  return std::string(c.deck) + "_" + c.solver + "_r" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(GoldenRanks, MultiRankGoldenCaseTest,
                         ::testing::Combine(::testing::ValuesIn(small_cases()),
                                            ::testing::Values(1, 2, 4)),
                         multirank_case_name);

// Pinned accounting for the halo traffic fix: a 2x1 world has one x
// neighbour per rank and no y neighbours, so the exchange may only charge
// the two column strips actually moved — the old unconditional
// 2*(x_msg + y_msg) formula overcounted every domain-edge rank.
TEST(MultiRank, HaloTrafficCountsOnlyExchangedStrips) {
  constexpr int kGnx = 8, kGny = 6, kDepth = 2;
  const machine::CounterScope scope;
  minimpi::run_world(2, [](minimpi::Comm& comm) {
    minimpi::Cart2D cart(comm);
    tea::PartitionGeom geom;
    geom.gnx = kGnx;
    geom.gny = kGny;
    geom.halo = kDepth;
    const auto [cx, cy] = cart.coords();
    const auto [x0, x1] = minimpi::block_range(kGnx, cart.px(), cx);
    const auto [y0, y1] = minimpi::block_range(kGny, cart.py(), cy);
    geom.x0 = x0;
    geom.y0 = y0;
    geom.nx = x1 - x0;
    geom.ny = y1 - y0;
    tea::FieldStore store(geom, nullptr);
    tea::CellView f = store.view(tea::FieldId::kU);
    for (int j = 0; j < geom.ny; ++j) {
      for (int i = 0; i < geom.nx; ++i) {
        f(i, j) = (geom.x0 + i) * 100.0 + (geom.y0 + j);
      }
    }
    tea::exchange_and_reflect(f, geom, &comm, &cart, kDepth);
    // The x halo now holds the neighbour's owned columns...
    if (cx == 0) {
      EXPECT_DOUBLE_EQ(f(geom.nx, 2), (geom.x0 + geom.nx) * 100.0 + 2);
    } else {
      EXPECT_DOUBLE_EQ(f(-1, 2), (geom.x0 - 1) * 100.0 + 2);
    }
    // ...and the physical y edges are mirror fills.
    EXPECT_DOUBLE_EQ(f(0, -1), f(0, 0));
    EXPECT_DOUBLE_EQ(f(0, geom.ny), f(0, geom.ny - 1));
  });
  const machine::Counters d = scope.delta();
  // Per rank: one strip sent and one received, depth x ny doubles each;
  // pack + unpack touch the moved cells once (read and write).
  const std::int64_t moved_bytes = 2 * 2 * kDepth * kGny * 8;
  EXPECT_EQ(d.bytes_read, moved_bytes);
  EXPECT_EQ(d.bytes_written, moved_bytes);
  // One message per rank over the wire.
  EXPECT_EQ(d.messages, 2);
  EXPECT_EQ(d.message_bytes, 2 * kDepth * kGny * 8);
  EXPECT_EQ(d.halo_exchanges, 1);
}

// Distributed runs charge the process-global instrumentation from every rank
// thread, so the stored counters must be the whole world's delta — a
// rank-windowed snapshot would race with sibling ranks still in setup (or
// still forwarding the final broadcast) and drift run to run.  Two identical
// runs pin the contract.
TEST(MultiRank, RunCountersAreDeterministic) {
  ASSERT_FALSE(decks_dir().empty());
  GoldenCase c = cases_on({"tea_circle"}).front();
  for (const GoldenCase& g : cases_on({"tea_circle"})) {
    if (std::string(g.solver) == "cg") c = g;
  }
  tea::RunOptions options;
  options.ranks = 4;
  const tea::RunResult a =
      tea::run_simulation("manual-mpi", golden_config(c), options);
  const tea::RunResult b =
      tea::run_simulation("manual-mpi", golden_config(c), options);
  EXPECT_EQ(a.counters.messages, b.counters.messages);
  EXPECT_EQ(a.counters.message_bytes, b.counters.message_bytes);
  EXPECT_EQ(a.counters.bytes_read, b.counters.bytes_read);
  EXPECT_EQ(a.counters.bytes_written, b.counters.bytes_written);
  EXPECT_EQ(a.counters.halo_exchanges, b.counters.halo_exchanges);
  EXPECT_EQ(a.counters.kernel_launches, b.counters.kernel_launches);
}

// The decompositions the rank ladder exercises must be exactly the ones the
// issue freezes: 1 -> 1x1, 2 -> 2x1, 4 -> 2x2.
TEST(MultiRank, RankLadderCoversTheFrozenDecompositions) {
  EXPECT_EQ(minimpi::dims_create(1), (std::array<int, 2>{1, 1}));
  EXPECT_EQ(minimpi::dims_create(2), (std::array<int, 2>{2, 1}));
  EXPECT_EQ(minimpi::dims_create(4), (std::array<int, 2>{2, 2}));
}

// manual-hybrid adds a per-rank thread pool on top of the decomposition;
// spot-check it on one deck across all four solvers (2 ranks x 2 threads).
class HybridGoldenCaseTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(HybridGoldenCaseTest, MatchesSerialGoldenTable) {
  const GoldenCase c = GetParam();
  ASSERT_FALSE(decks_dir().empty());

  tea::RunOptions options;
  options.ranks = 2;
  options.hybrid_threads = 2;
  const tea::RunResult run =
      tea::run_simulation("manual-hybrid", golden_config(c), options);
  expect_matches_golden(
      run, c, std::string(c.deck) + "/" + c.solver + " hybrid 2x2t");
}

std::string hybrid_case_name(
    const ::testing::TestParamInfo<GoldenCase>& info) {
  return std::string(info.param.deck) + "_" + info.param.solver;
}

INSTANTIATE_TEST_SUITE_P(GoldenHybrid, HybridGoldenCaseTest,
                         ::testing::ValuesIn(cases_on({"tea_circle"})),
                         hybrid_case_name);

}  // namespace
