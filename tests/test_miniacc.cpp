// Unit tests for miniacc: data-region clause semantics on both targets, loop
// constructs and reduction clauses.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "miniacc/acc.hpp"

namespace {

using miniacc::DataRegion;
using miniacc::Target;

class AccTargetTest : public ::testing::TestWithParam<Target> {};

TEST_P(AccTargetTest, ParallelLoopWritesThroughRegionPointer) {
  std::vector<double> host(100, 0.0);
  {
    DataRegion region(GetParam());
    double* p = region.copy(tl::span<double>(host));
    region.parallel_loop("fill", 100, {},
                         [p](long i) { p[i] = static_cast<double>(i) * 2.0; });
  }  // device target copies back here
  EXPECT_DOUBLE_EQ(host[0], 0.0);
  EXPECT_DOUBLE_EQ(host[99], 198.0);
}

TEST_P(AccTargetTest, Loop2DCoversCollapsedSpace) {
  std::vector<double> host(12 * 7, 0.0);
  {
    DataRegion region(GetParam());
    double* p = region.copy(tl::span<double>(host));
    region.parallel_loop_2d("fill2d", 12, 7, {}, [p](int i, int j) {
      p[j * 12 + i] += 1.0;
    });
  }
  for (const double v : host) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST_P(AccTargetTest, ReductionSum) {
  std::vector<double> host(1000);
  std::iota(host.begin(), host.end(), 1.0);
  DataRegion region(GetParam());
  const double* p = region.copyin(tl::span<const double>(host));
  const double sum =
      region.parallel_reduce_sum("sum", 1000, [p](long i) { return p[i]; });
  EXPECT_DOUBLE_EQ(sum, 1000.0 * 1001.0 / 2.0);
}

INSTANTIATE_TEST_SUITE_P(Targets, AccTargetTest,
                         ::testing::Values(Target::kHost, Target::kDevice));

TEST(AccDevice, CopyinIsNotCopiedBack) {
  std::vector<double> host(10, 1.0);
  {
    DataRegion region(Target::kDevice);
    double* p = region.copyin(tl::span<const double>(host));
    region.parallel_loop("mutate", 10, {}, [p](long i) { p[i] = 99.0; });
  }
  // copyin has no copy-out: host unchanged.
  EXPECT_DOUBLE_EQ(host[0], 1.0);
}

TEST(AccDevice, CreateIsDeviceScratch) {
  std::vector<double> host(10, 7.0);
  {
    DataRegion region(Target::kDevice);
    double* p = region.create(tl::span<double>(host));
    region.parallel_loop("scratch", 10, {}, [p](long i) { p[i] = 1.0; });
  }
  EXPECT_DOUBLE_EQ(host[3], 7.0);  // never copied in or out
}

TEST(AccDevice, UpdateHostMidRegion) {
  std::vector<double> host(10, 0.0);
  DataRegion region(Target::kDevice);
  double* p = region.copy(tl::span<double>(host));
  region.parallel_loop("set", 10, {}, [p](long i) { p[i] = 5.0; });
  EXPECT_DOUBLE_EQ(host[0], 0.0);  // device-side only so far
  region.update_host(tl::span<double>(host));
  EXPECT_DOUBLE_EQ(host[0], 5.0);
}

TEST(AccDevice, UpdateDevicePushesHostEdits) {
  std::vector<double> host(10, 1.0);
  DataRegion region(Target::kDevice);
  double* p = region.copy(tl::span<double>(host));
  host[4] = 44.0;
  region.update_device(tl::span<const double>(host));
  double out = 0.0;
  // Read back through a reduction touching just the element.
  out = region.parallel_reduce_sum("probe", 10,
                                   [p](long i) { return i == 4 ? p[i] : 0.0; });
  EXPECT_DOUBLE_EQ(out, 44.0);
}

TEST(AccDevice, UpdateOnUnmappedPointerThrows) {
  std::vector<double> host(10, 0.0);
  std::vector<double> other(10, 0.0);
  DataRegion region(Target::kDevice);
  region.copy(tl::span<double>(host));
  EXPECT_THROW(region.update_host(tl::span<double>(other)), tl::Error);
}

TEST(AccHost, PointersAreHostPointers) {
  std::vector<double> host(10, 0.0);
  DataRegion region(Target::kHost);
  double* p = region.copy(tl::span<double>(host));
  EXPECT_EQ(p, host.data());
}

TEST(AccDevice, RepeatedMappingReturnsSamePointer) {
  std::vector<double> host(10, 0.0);
  DataRegion region(Target::kDevice);
  double* a = region.copyin(tl::span<const double>(host));
  double* b = region.copy(tl::span<double>(host));
  EXPECT_EQ(a, b);  // present-table hit, copy_out upgraded
}

}  // namespace
