// Device golden suite: the simulated-GPU backends must walk the same
// iteration trajectory as the serial reference on every shipped deck.
//
// Same contract as the threaded half of test_golden.cpp, extended to the
// device: simgpu reductions sum fixed-shape block partials in block order,
// and the converged exits in the golden table sit well below threshold, so
// outer/inner iteration counts match the serial table *exactly* while the
// landing residual is only pinned to the same order-of-magnitude band the
// serial suite uses.  A device kernel or reduction-order change that shifts
// an iteration count is a regression against the committed table.
//
// manual-cuda runs the full deck x solver matrix; the remaining device
// variants (kokkos/raja/ops/acc) share the same kernels through different
// dispatch layers, so one deck x solver cell each pins their plumbing.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "common/config.hpp"
#include "core/registry.hpp"
#include "golden_cases.hpp"

namespace {

using golden::GoldenCase;
using golden::decks_dir;
using golden::golden_config;
using golden::kConvergedResidualFactor;
using golden::kGolden;
using golden::kInitialRrRelTol;
using golden::kResidualRelTol;
using golden::kTempRelTol;

void expect_matches_serial_table(const GoldenCase& c,
                                 const std::string& variant) {
  const tea::RunResult run =
      tea::run_simulation(variant, golden_config(c), {});
  const std::string label =
      std::string(c.deck) + "/" + c.solver + " on " + variant;

  long inner = 0;
  for (const tea::StepResult& s : run.steps) inner += s.solve.inner_iterations;
  EXPECT_EQ(run.total_iterations, c.outer) << label;
  EXPECT_EQ(inner, c.inner) << label;
  EXPECT_EQ(run.all_converged(), c.converged != 0) << label;
  EXPECT_NEAR(run.final_summary.temp, c.temp, kTempRelTol * std::fabs(c.temp))
      << label;
  EXPECT_NEAR(run.steps.back().solve.initial_rr, c.initial_rr,
              kInitialRrRelTol * std::fabs(c.initial_rr))
      << label;
  const double final_rr = run.steps.back().solve.final_rr;
  if (c.converged != 0) {
    EXPECT_LE(final_rr, c.eps * run.steps.back().solve.initial_rr *
                            (1.0 + 1e-6))
        << label;
    if (c.final_rr > 0.0) {
      EXPECT_LE(final_rr, c.final_rr * kConvergedResidualFactor +
                              1.0e-6 * c.eps * c.initial_rr)
          << label;
      EXPECT_GE(final_rr, c.final_rr / kConvergedResidualFactor -
                              1.0e-6 * c.eps * c.initial_rr)
          << label;
    }
  } else {
    EXPECT_NEAR(final_rr, c.final_rr, kResidualRelTol * std::fabs(c.final_rr))
        << label;
  }
}

class DeviceGoldenCaseTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(DeviceGoldenCaseTest, ManualCudaMatchesSerialGoldenTable) {
  ASSERT_FALSE(decks_dir().empty());
  expect_matches_serial_table(GetParam(), "manual-cuda");
}

std::string case_name(const ::testing::TestParamInfo<GoldenCase>& info) {
  return std::string(info.param.deck) + "_" + info.param.solver;
}

INSTANTIATE_TEST_SUITE_P(GoldenDevice, DeviceGoldenCaseTest,
                         ::testing::ValuesIn(kGolden), case_name);

class DeviceVariantGoldenTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(DeviceVariantGoldenTest, MatchesSerialGoldenTableOnBm1Cg) {
  ASSERT_FALSE(decks_dir().empty());
  for (const GoldenCase& c : kGolden) {
    if (std::string(c.deck) == "tea_bm_1" && std::string(c.solver) == "cg") {
      expect_matches_serial_table(c, GetParam());
      return;
    }
  }
  FAIL() << "tea_bm_1/cg missing from the golden table";
}

INSTANTIATE_TEST_SUITE_P(GoldenDeviceVariants, DeviceVariantGoldenTest,
                         ::testing::Values("kokkos-cuda", "raja-cuda",
                                           "ops-cuda", "ops-acc",
                                           "manual-acc-gpu"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           std::string name = i.param;
                           for (char& ch : name)
                             if (ch == '-') ch = '_';
                           return name;
                         });

}  // namespace
