// Unit tests for the tl_common foundation library: strings, config decks,
// CLI parsing, tables, RNG, spans and buffers.
#include <gtest/gtest.h>

#include "common/aligned_buffer.hpp"
#include "common/cli.hpp"
#include "common/config.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/span2d.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"

namespace {

// --- string_util ----------------------------------------------------------

TEST(StringUtil, TrimStripsBothEnds) {
  EXPECT_EQ(tl::trim("  hello \t\n"), "hello");
  EXPECT_EQ(tl::trim(""), "");
  EXPECT_EQ(tl::trim(" \t "), "");
  EXPECT_EQ(tl::trim("x"), "x");
}

TEST(StringUtil, ToLower) {
  EXPECT_EQ(tl::to_lower("TeaLeaf MPI"), "tealeaf mpi");
}

TEST(StringUtil, SplitDropsEmptyTokensByDefault) {
  EXPECT_EQ(tl::split("a,,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(tl::split("a,,b", ',', true),
            (std::vector<std::string>{"a", "", "b"}));
}

TEST(StringUtil, SplitWhitespaceRuns) {
  EXPECT_EQ(tl::split_ws("  a \t b\nc "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(tl::split_ws("   ").empty());
}

TEST(StringUtil, IequalsAndStartsWith) {
  EXPECT_TRUE(tl::iequals("TeaLeaf", "tealeaf"));
  EXPECT_FALSE(tl::iequals("tea", "teal"));
  EXPECT_TRUE(tl::starts_with("--threads", "--"));
  EXPECT_FALSE(tl::starts_with("-", "--"));
}

TEST(StringUtil, ParseDoubleAcceptsScientific) {
  EXPECT_DOUBLE_EQ(tl::parse_double("1.5e-3"), 1.5e-3);
  EXPECT_DOUBLE_EQ(tl::parse_double("  -2.25 "), -2.25);
  EXPECT_THROW(tl::parse_double("12abc"), tl::ConfigError);
  EXPECT_THROW(tl::parse_double(""), tl::ConfigError);
}

TEST(StringUtil, ParseLongRejectsTrailingGarbage) {
  EXPECT_EQ(tl::parse_long("1234"), 1234);
  EXPECT_EQ(tl::parse_long("-7"), -7);
  EXPECT_THROW(tl::parse_long("1.5"), tl::ConfigError);
}

TEST(StringUtil, ParseBoolForms) {
  EXPECT_TRUE(tl::parse_bool("true"));
  EXPECT_TRUE(tl::parse_bool("ON"));
  EXPECT_FALSE(tl::parse_bool("0"));
  EXPECT_THROW(tl::parse_bool("maybe"), tl::ConfigError);
}

// --- config ----------------------------------------------------------------

TEST(Config, DefaultConfigIsValid) {
  const tl::Config cfg = tl::Config::default_config();
  EXPECT_EQ(cfg.problem().x_cells, 10);
  EXPECT_EQ(cfg.problem().end_step, 10);
  EXPECT_EQ(cfg.problem().solver, tl::SolverKind::kCg);
  ASSERT_EQ(cfg.problem().states.size(), 2u);
  EXPECT_DOUBLE_EQ(cfg.problem().states[0].density, 100.0);
}

TEST(Config, ParsesFortranStyleExponents) {
  const auto cfg = tl::Config::parse(R"(*tea
state 1 density=1.0 energy=1.0
tl_eps=1.0d-12
x_cells=4
y_cells=4
*endtea)");
  EXPECT_DOUBLE_EQ(cfg.problem().eps, 1e-12);
}

TEST(Config, ParsesSolverSelectionFlags) {
  for (const auto& [flag, kind] :
       {std::pair{"tl_use_jacobi", tl::SolverKind::kJacobi},
        std::pair{"tl_use_cg", tl::SolverKind::kCg},
        std::pair{"tl_use_chebyshev", tl::SolverKind::kCheby},
        std::pair{"tl_use_ppcg", tl::SolverKind::kPpcg}}) {
    const auto cfg = tl::Config::parse(std::string("*tea\n") +
                                       "state 1 density=1 energy=1\n" + flag +
                                       "\n*endtea\n");
    EXPECT_EQ(cfg.problem().solver, kind) << flag;
  }
}

TEST(Config, ParsesCircleAndPointStates) {
  const auto cfg = tl::Config::parse(R"(*tea
state 1 density=1.0 energy=1.0
state 2 density=2.0 energy=3.0 geometry=circle xcentre=5.0 ycentre=5.0 radius=2.0
state 3 density=4.0 energy=5.0 geometry=point xcentre=1.0 ycentre=1.0
*endtea)");
  ASSERT_EQ(cfg.problem().states.size(), 3u);
  EXPECT_EQ(cfg.problem().states[1].geometry, tl::Geometry::kCircle);
  EXPECT_DOUBLE_EQ(cfg.problem().states[1].radius, 2.0);
  EXPECT_EQ(cfg.problem().states[2].geometry, tl::Geometry::kPoint);
}

TEST(Config, CommentsAndBlankLinesIgnored) {
  const auto cfg = tl::Config::parse(R"(*tea
! full line comment
state 1 density=1.0 energy=1.0  ! trailing comment
# hash comment

x_cells=7
*endtea)");
  EXPECT_EQ(cfg.problem().x_cells, 7);
}

TEST(Config, RejectsMissingBlock) {
  EXPECT_THROW(tl::Config::parse("x_cells=4"), tl::ConfigError);
}

TEST(Config, RejectsUnknownDirective) {
  EXPECT_THROW(tl::Config::parse("*tea\nstate 1 density=1 energy=1\n"
                                 "bogus_key=3\n*endtea"),
               tl::ConfigError);
}

TEST(Config, RejectsNonPositiveDensity) {
  EXPECT_THROW(tl::Config::parse("*tea\nstate 1 density=0 energy=1\n*endtea"),
               tl::ConfigError);
}

TEST(Config, RejectsInvertedExtents) {
  EXPECT_THROW(tl::Config::parse("*tea\nstate 1 density=1 energy=1\n"
                                 "xmin=5 xmax=1\n*endtea"),
               tl::ConfigError);
}

TEST(Config, RejectsMissingState) {
  EXPECT_THROW(tl::Config::parse("*tea\nx_cells=4\n*endtea"), tl::ConfigError);
}

TEST(Config, DeckRoundTrips) {
  const tl::Config original = tl::Config::default_config();
  const std::string deck = tl::to_deck(original.problem());
  const tl::Config reparsed = tl::Config::parse(deck);
  EXPECT_EQ(reparsed.problem().x_cells, original.problem().x_cells);
  EXPECT_EQ(reparsed.problem().solver, original.problem().solver);
  EXPECT_DOUBLE_EQ(reparsed.problem().eps, original.problem().eps);
  EXPECT_EQ(reparsed.problem().states.size(), original.problem().states.size());
}

TEST(Config, RawKeyAccess) {
  const auto cfg = tl::Config::parse(
      "*tea\nstate 1 density=1 energy=1\ntest_problem=5\n*endtea");
  ASSERT_TRUE(cfg.raw("test_problem").has_value());
  EXPECT_EQ(*cfg.raw("test_problem"), "5");
  EXPECT_FALSE(cfg.raw("nonexistent").has_value());
}

// --- cli --------------------------------------------------------------------

TEST(Cli, ParsesFlagsValuesAndPositionals) {
  // Note `--verbose` is last-or-followed-by-an-option: a bare token right
  // after an option is consumed as its value (documented `--key value` form).
  const char* argv[] = {"prog", "deck.in", "--nx", "128",
                        "--verbose", "--eps=1e-9"};
  const tl::Cli cli(6, argv);
  EXPECT_EQ(cli.get_long("nx", 0), 128);
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_DOUBLE_EQ(cli.get_double("eps", 0.0), 1e-9);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "deck.in");
  EXPECT_EQ(cli.get_or("missing", "fallback"), "fallback");
}

// --- table ------------------------------------------------------------------

TEST(Table, AsciiAlignsColumns) {
  tl::Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "123456"});
  const std::string ascii = t.to_ascii();
  EXPECT_NE(ascii.find("| alpha |"), std::string::npos);
  EXPECT_NE(ascii.find("123456"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  tl::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), tl::Error);
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  tl::Table t({"k"});
  t.add_row({"a,b"});
  t.add_row({"say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(tl::Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(tl::Table::num(2.0, 0), "2");
}

// --- rng --------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  tl::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  tl::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  tl::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  tl::Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const long v = rng.uniform_int(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

// --- span2d / aligned buffer -------------------------------------------------

TEST(Span2D, RowMajorIndexing) {
  double data[6] = {0, 1, 2, 3, 4, 5};
  tl::Span2D<double> s(data, 3, 2);
  EXPECT_DOUBLE_EQ(s(0, 0), 0);
  EXPECT_DOUBLE_EQ(s(2, 0), 2);
  EXPECT_DOUBLE_EQ(s(0, 1), 3);
  EXPECT_DOUBLE_EQ(s(2, 1), 5);
}

TEST(Span2D, AtBoundsChecks) {
  double data[4] = {};
  tl::Span2D<double> s(data, 2, 2);
  EXPECT_NO_THROW(s.at(1, 1));
  EXPECT_THROW(s.at(2, 0), tl::Error);
  EXPECT_THROW(s.at(0, -1), tl::Error);
}

TEST(AlignedBuffer, SixtyFourByteAligned) {
  tl::AlignedBuffer<double> buf(37);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 64, 0u);
  EXPECT_EQ(buf.size(), 37u);
}

TEST(AlignedBuffer, FillAndCopySemantics) {
  tl::AlignedBuffer<double> buf(8, 2.5);
  for (const double v : buf) EXPECT_DOUBLE_EQ(v, 2.5);
  tl::AlignedBuffer<double> copy = buf;
  copy[0] = -1.0;
  EXPECT_DOUBLE_EQ(buf[0], 2.5);
  tl::AlignedBuffer<double> moved = std::move(copy);
  EXPECT_DOUBLE_EQ(moved[0], -1.0);
  EXPECT_TRUE(copy.empty());  // NOLINT(bugprone-use-after-move)
}

TEST(AlignedBuffer, Span2DViewChecksBounds) {
  tl::AlignedBuffer<double> buf(12);
  EXPECT_NO_THROW(buf.span2d(4, 3));
  EXPECT_THROW(buf.span2d(5, 3), tl::Error);
}

// --- timer ------------------------------------------------------------------

TEST(Timer, RegistryAccumulates) {
  tl::TimerRegistry reg;
  reg.add("solve", 1.0);
  reg.add("solve", 0.5);
  reg.add("halo", 0.25);
  EXPECT_DOUBLE_EQ(reg.total("solve"), 1.5);
  EXPECT_EQ(reg.count("solve"), 2);
  EXPECT_DOUBLE_EQ(reg.total("missing"), 0.0);
  EXPECT_EQ(reg.names(), (std::vector<std::string>{"halo", "solve"}));
}

TEST(Timer, ScopedTimerRecords) {
  tl::TimerRegistry reg;
  { tl::ScopedTimer t(reg, "scope"); }
  EXPECT_EQ(reg.count("scope"), 1);
  EXPECT_GE(reg.total("scope"), 0.0);
}

TEST(Timer, StopWatchMonotonic) {
  tl::StopWatch w;
  const double a = w.seconds();
  const double b = w.seconds();
  EXPECT_GE(b, a);
  w.reset();
  EXPECT_GE(w.seconds(), 0.0);
}

}  // namespace
