// Tests for the results subsystem: JSON round-tripping, the content-
// addressed measurement cache (hit/miss semantics under RunOptions and
// problem changes), store merge, and the regression-gate verdicts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "common/config.hpp"
#include "common/error.hpp"
#include "results/compare.hpp"
#include "results/json.hpp"
#include "results/result_store.hpp"
#include "results/sweep.hpp"
#include "validation/validation.hpp"

namespace {

// --- JSON ------------------------------------------------------------------

TEST(Json, ParseAndAccess) {
  const auto j = results::Json::parse(
      R"({"a": 1, "b": -2.5e3, "c": "x\n\"y\"", "d": [true, false, null], "e": {}})");
  ASSERT_TRUE(j.is_object());
  EXPECT_EQ(j.get_int("a", 0), 1);
  EXPECT_DOUBLE_EQ(j.get_double("b", 0.0), -2500.0);
  EXPECT_EQ(j.get_string("c", ""), "x\n\"y\"");
  ASSERT_NE(j.get("d"), nullptr);
  ASSERT_EQ(j.get("d")->items().size(), 3u);
  EXPECT_TRUE(j.get("d")->items()[0].as_bool());
  EXPECT_TRUE(j.get("d")->items()[2].is_null());
  EXPECT_TRUE(j.get("e")->is_object());
  EXPECT_EQ(j.get("missing"), nullptr);
}

TEST(Json, RoundTripPreservesValuesAndKeyOrder) {
  results::Json obj = results::Json::object();
  obj.set("zeta", results::Json(std::int64_t{9007199254740993}));
  obj.set("alpha", results::Json(0.1));
  obj.set("text", results::Json("tabs\tand\\slashes"));
  results::Json arr = results::Json::array();
  arr.push_back(results::Json(1));
  arr.push_back(results::Json(2.25));
  obj.set("arr", std::move(arr));

  const auto back = results::Json::parse(obj.dump(2));
  // Large int64 survives exactly (doubles would lose the low bit).
  EXPECT_EQ(back.get_int("zeta", 0), 9007199254740993LL);
  EXPECT_DOUBLE_EQ(back.get_double("alpha", 0.0), 0.1);
  EXPECT_EQ(back.get_string("text", ""), "tabs\tand\\slashes");
  // First-insertion key order is preserved through dump/parse.
  EXPECT_EQ(back.members()[0].first, "zeta");
  EXPECT_EQ(back.members()[3].first, "arr");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(results::Json::parse("{"), tl::ConfigError);
  EXPECT_THROW(results::Json::parse("[1,]"), tl::ConfigError);
  EXPECT_THROW(results::Json::parse("{\"a\" 1}"), tl::ConfigError);
  EXPECT_THROW(results::Json::parse("1 2"), tl::ConfigError);
}

TEST(Json, RejectsMalformedNumbers) {
  for (const char* bad : {"[1-2]", "[1.2.3]", "[+1]", "[1.]", "[.5]", "[1e]",
                          "[1e+]", "[--1]", "[-]"}) {
    EXPECT_THROW(results::Json::parse(bad), tl::ConfigError) << bad;
  }
  // The shapes the store actually writes still parse.
  const auto ok = results::Json::parse("[-3.2177500000000049e-05, 1e+100, 0, -7]");
  EXPECT_DOUBLE_EQ(ok.items()[0].as_double(), -3.2177500000000049e-05);
  EXPECT_DOUBLE_EQ(ok.items()[1].as_double(), 1e100);
  EXPECT_EQ(ok.items()[2].as_int(), 0);
  EXPECT_EQ(ok.items()[3].as_int(), -7);
}

TEST(Json, UnicodeEscapes) {
  // BMP escape, and a surrogate pair combining to U+1F600 (4-byte UTF-8).
  const auto j = results::Json::parse("[\"\\u00e9\", \"\\ud83d\\ude00\"]");
  EXPECT_EQ(j.items()[0].as_string(), "\xc3\xa9");
  EXPECT_EQ(j.items()[1].as_string(), "\xf0\x9f\x98\x80");
  // Lone surrogates would be invalid UTF-8: rejected.
  EXPECT_THROW(results::Json::parse(R"(["\ud83d"])"), tl::ConfigError);
  EXPECT_THROW(results::Json::parse(R"(["\ude00"])"), tl::ConfigError);
  EXPECT_THROW(results::Json::parse(R"(["\ud83dx"])"), tl::ConfigError);
}

// --- store round-trip ------------------------------------------------------

results::ResultRow sample_row(const std::string& variant, double seconds) {
  results::ResultRow r;
  r.variant = variant;
  r.platform = "host";
  r.deck = "bench-64";
  r.mesh_x = r.mesh_y = 64;
  r.steps = 2;
  r.solver = "cg";
  r.eps = 1e-15;
  r.ranks = 4;
  r.timing = results::TimingStats::from_samples({seconds, seconds * 1.5,
                                                 seconds * 1.2});
  r.iterations = 128;
  r.inner_iterations = 12;
  r.converged = true;
  r.working_set_bytes = 1 << 20;
  r.counters.bytes_read = 123456789012345LL;
  r.counters.flops = 42;
  r.projections.push_back({"xeon", 1.25, 100.0, 9.5});
  r.toolchain = "-O3";
  r.git_rev = "abc1234";
  r.timestamp = "2026-07-26T00:00:00Z";
  r.key = "key-" + variant;
  return r;
}

TEST(ResultStore, JsonRoundTrip) {
  results::ResultStore store;
  store.put(sample_row("manual-omp", 0.5));
  store.put(sample_row("ops-tiled", 0.25));

  const results::ResultStore back =
      results::ResultStore::from_json(store.to_json());
  ASSERT_EQ(back.size(), 2u);
  const results::ResultRow* row = back.find("key-manual-omp");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->variant, "manual-omp");
  EXPECT_EQ(row->deck, "bench-64");
  EXPECT_EQ(row->mesh_x, 64);
  EXPECT_EQ(row->solver, "cg");
  EXPECT_DOUBLE_EQ(row->eps, 1e-15);
  ASSERT_EQ(row->timing.samples_s.size(), 3u);
  EXPECT_DOUBLE_EQ(row->timing.min_s, 0.5);
  EXPECT_DOUBLE_EQ(row->timing.median_s, 0.6);
  EXPECT_EQ(row->iterations, 128);
  EXPECT_EQ(row->inner_iterations, 12);
  EXPECT_TRUE(row->converged);
  EXPECT_EQ(row->counters.bytes_read, 123456789012345LL);
  ASSERT_EQ(row->projections.size(), 1u);
  EXPECT_EQ(row->projections[0].machine, "xeon");
  EXPECT_DOUBLE_EQ(row->projections[0].seconds, 1.25);
  EXPECT_EQ(row->git_rev, "abc1234");
}

TEST(ResultStore, SchemaVersionIsEnforced) {
  EXPECT_THROW(
      results::ResultStore::from_json(R"({"schema_version": 999, "rows": []})"),
      tl::ConfigError);
  EXPECT_THROW(results::ResultStore::from_json(R"([1,2,3])"), tl::Error);
}

TEST(ResultStore, LoadOfMissingFileYieldsEmptyStore) {
  const results::ResultStore store =
      results::ResultStore::load("does_not_exist_12345.json");
  EXPECT_EQ(store.size(), 0u);
}

TEST(TimingStats, MinMedianStddev) {
  const auto s = results::TimingStats::from_samples({3.0, 1.0, 2.0, 10.0});
  EXPECT_DOUBLE_EQ(s.min_s, 1.0);
  EXPECT_DOUBLE_EQ(s.median_s, 2.5);
  EXPECT_DOUBLE_EQ(s.mean_s, 4.0);
  EXPECT_NEAR(s.stddev_s, 3.5355339, 1e-6);
  const auto single = results::TimingStats::from_samples({2.0});
  EXPECT_DOUBLE_EQ(single.median_s, 2.0);
  EXPECT_DOUBLE_EQ(single.stddev_s, 0.0);
}

// --- content-addressed cache ----------------------------------------------

TEST(MeasurementKey, SensitiveToVariantProblemAndOptions) {
  const tl::ProblemConfig problem = results::bench_problem(48, 1, 1e-8);
  const tea::RunOptions options;
  const std::string base = results::measurement_key("serial", problem, options);
  EXPECT_EQ(base, results::measurement_key("serial", problem, options))
      << "key must be deterministic";

  EXPECT_NE(base, results::measurement_key("manual-omp", problem, options));

  tea::RunOptions more_ranks = options;
  more_ranks.ranks = 8;
  EXPECT_NE(base, results::measurement_key("serial", problem, more_ranks));

  tea::RunOptions tiled = options;
  tiled.tile.tile_rows = 16;
  EXPECT_NE(base, results::measurement_key("serial", problem, tiled));

  tl::ProblemConfig tighter = problem;
  tighter.eps = 1e-10;
  EXPECT_NE(base, results::measurement_key("serial", tighter, options));

  tl::ProblemConfig other_solver = problem;
  other_solver.solver = tl::SolverKind::kJacobi;
  EXPECT_NE(base, results::measurement_key("serial", other_solver, options));
}

TEST(Measure, CacheHitSkipsExecutionAndOptionsChangeMisses) {
  results::ResultStore store;
  results::MeasureSpec spec;
  spec.variant = "serial";
  spec.deck_label = "unit";
  spec.problem = results::bench_problem(32, 1, 1e-8);
  spec.samples = 2;

  const results::ResultRow first = results::measure(store, spec);
  EXPECT_EQ(store.misses(), 1);
  EXPECT_EQ(store.hits(), 0);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(first.converged);
  EXPECT_GT(first.iterations, 0);
  ASSERT_EQ(first.timing.samples_s.size(), 2u);
  EXPECT_FALSE(first.projections.empty());
  EXPECT_EQ(first.deck_hash, results::problem_hash(spec.problem));

  // Identical spec: pure cache hit, stored values returned verbatim.
  const results::ResultRow again = results::measure(store, spec);
  EXPECT_EQ(store.misses(), 1);
  EXPECT_EQ(store.hits(), 1);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_DOUBLE_EQ(again.timing.median_s, first.timing.median_s);
  EXPECT_EQ(again.timestamp, first.timestamp);

  // A RunOptions change is a different measurement.
  spec.options.threads = 2;
  const results::ResultRow threaded = results::measure(store, spec);
  EXPECT_EQ(store.misses(), 2);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_NE(threaded.key, first.key);

  // So is a problem change.
  spec.problem.end_step = 2;
  (void)results::measure(store, spec);
  EXPECT_EQ(store.misses(), 3);
  EXPECT_EQ(store.size(), 3u);
}

// --- merge -----------------------------------------------------------------

TEST(ResultStore, MergePrefersIncomingRows) {
  results::ResultStore a;
  a.put(sample_row("manual-omp", 0.5));
  a.put(sample_row("ops-omp", 0.4));

  results::ResultStore b;
  results::ResultRow updated = sample_row("manual-omp", 0.1);  // same key
  b.put(updated);
  b.put(sample_row("raja-omp", 0.3));

  const std::size_t changed = a.merge(b);
  EXPECT_EQ(changed, 2u);
  EXPECT_EQ(a.size(), 3u);
  // The incoming row replaced the resident one.
  EXPECT_DOUBLE_EQ(a.find("key-manual-omp")->timing.min_s, 0.1);
  EXPECT_NE(a.find("key-raja-omp"), nullptr);
  EXPECT_NE(a.find("key-ops-omp"), nullptr);
}

// --- regression gate -------------------------------------------------------

TEST(RegressionGate, PassFailAndMissingBaselineVerdicts) {
  results::ResultStore baseline;
  baseline.put(sample_row("manual-omp", 1.0));  // min 1.0
  baseline.put(sample_row("ops-omp", 1.0));

  results::ResultStore current;
  current.put(sample_row("manual-omp", 1.05));  // +5%: inside tolerance
  current.put(sample_row("ops-omp", 1.5));      // +50%: regression
  current.put(sample_row("raja-omp", 0.2));     // not in baseline

  const results::GateReport report =
      results::regression_gate(baseline, current, 0.25);
  EXPECT_EQ(report.passed, 1);
  EXPECT_EQ(report.failed, 1);
  EXPECT_EQ(report.missing, 1);
  EXPECT_FALSE(report.ok());

  ASSERT_EQ(report.results.size(), 3u);
  for (const results::GateResult& g : report.results) {
    if (g.variant == "manual-omp") {
      EXPECT_EQ(g.verdict, results::GateVerdict::kPass);
      EXPECT_NEAR(g.rel_delta, 0.05, 1e-9);
    } else if (g.variant == "ops-omp") {
      EXPECT_EQ(g.verdict, results::GateVerdict::kFail);
      EXPECT_NEAR(g.rel_delta, 0.5, 1e-9);
    } else {
      EXPECT_EQ(g.verdict, results::GateVerdict::kMissingBaseline);
    }
  }

  // Faster-than-baseline and equal-to-baseline both pass.
  const results::GateReport relaxed =
      results::regression_gate(baseline, baseline, 0.0);
  EXPECT_TRUE(relaxed.ok());
  EXPECT_EQ(relaxed.failed, 0);

  // A baseline row with no usable timing cannot vouch for anything: it is
  // reported as missing, not as a pass.
  results::ResultStore corrupt;
  results::ResultRow empty = sample_row("manual-omp", 1.0);
  empty.timing = results::TimingStats::from_samples({});
  corrupt.put(empty);
  const results::GateReport degenerate =
      results::regression_gate(corrupt, current, 0.25);
  for (const results::GateResult& g : degenerate.results) {
    if (g.variant == "manual-omp") {
      EXPECT_EQ(g.verdict, results::GateVerdict::kMissingBaseline);
    }
  }
}

TEST(RegressionGate, CountersComparedExactlyWhenRequested) {
  results::ResultStore baseline;
  baseline.put(sample_row("manual-omp", 1.0));
  baseline.put(sample_row("ops-omp", 1.0));
  baseline.put(sample_row("raja-omp", 1.0));

  results::ResultStore current;
  current.put(sample_row("manual-omp", 1.0));  // identical: pass
  results::ResultRow drifted = sample_row("ops-omp", 1.0);  // same time...
  drifted.counters.kernel_launches += 7;  // ...but different work
  current.put(drifted);
  results::ResultRow extra_iters = sample_row("raja-omp", 1.0);
  extra_iters.iterations += 1;
  current.put(extra_iters);

  // Without the flag the counter drift is invisible.
  EXPECT_TRUE(results::regression_gate(baseline, current, 0.25).ok());

  results::GateOptions options;
  options.rel_tolerance = 0.25;
  options.compare_counters = true;
  const results::GateReport strict =
      results::regression_gate(baseline, current, options);
  EXPECT_EQ(strict.passed, 1);
  EXPECT_EQ(strict.failed, 2);
  for (const results::GateResult& g : strict.results) {
    if (g.variant == "manual-omp") {
      EXPECT_EQ(g.verdict, results::GateVerdict::kPass);
      EXPECT_TRUE(g.counter_mismatch.empty());
    } else if (g.variant == "ops-omp") {
      EXPECT_EQ(g.verdict, results::GateVerdict::kFail);
      EXPECT_NE(g.counter_mismatch.find("kernel_launches"), std::string::npos)
          << g.counter_mismatch;
    } else {
      EXPECT_EQ(g.verdict, results::GateVerdict::kFail);
      EXPECT_NE(g.counter_mismatch.find("iterations"), std::string::npos)
          << g.counter_mismatch;
    }
  }
}

// --- sweep matrix ----------------------------------------------------------

TEST(Sweep, DefaultMatrixCoversPaperVariantsAndNewDecks) {
  const results::SweepConfig config = results::default_sweep(256, 5, 3);
  EXPECT_EQ(config.variants.size(), 16u);
  ASSERT_EQ(config.problems.size(), 1u);
  EXPECT_EQ(config.problems[0].label, "bench-256");
  EXPECT_EQ(config.problems[0].problem.x_cells, 256);

  const auto& decks = results::sweep_deck_names();
  EXPECT_NE(std::find(decks.begin(), decks.end(), "tea_circle"), decks.end());
  EXPECT_NE(std::find(decks.begin(), decks.end(), "tea_point"), decks.end());
}

TEST(Sweep, DeckSweepRowsAreFoundByTheValidationJoin) {
  // The `tea_sweep run --decks` path end-to-end: load shipped decks through
  // the shared helper, sweep them into a store, and prove the validation
  // subsystem consumes the rows (the join finds them and the calibration
  // fits from them) — closing the "--decks rows unconsumed" note from PR 2.
  std::vector<std::string> skipped;
  results::SweepConfig config;
  config.variants = {"serial", "manual-omp"};
  config.problems = results::load_deck_problems(
      std::string(TEA_SOURCE_DIR) + "/examples/decks",
      {"tea_bm_1", "tea_point"}, &skipped);
  config.samples = 1;
  ASSERT_EQ(config.problems.size(), 2u) << "decks failed to load";
  EXPECT_TRUE(skipped.empty());
  // Keep the point deck tiny: the sweep runs for real below.
  for (results::SweepProblem& sp : config.problems) {
    sp.problem.x_cells = std::min(sp.problem.x_cells, 32);
    sp.problem.y_cells = std::min(sp.problem.y_cells, 32);
    sp.problem.end_step = 1;
  }

  results::ResultStore store;
  const results::SweepOutcome outcome = results::run_sweep(store, config);
  EXPECT_EQ(outcome.measured, 4);  // 2 variants x 2 decks

  // The join: select_rows resolves the deck rows by content-addressed key.
  std::vector<std::string> missing;
  const auto rows = results::select_rows(store, config, {}, &missing);
  EXPECT_EQ(rows.size(), 4u);
  EXPECT_TRUE(missing.empty());
  for (const results::ResultRow& r : rows) {
    EXPECT_TRUE(r.deck == "tea_bm_1" || r.deck == "tea_point") << r.deck;
    EXPECT_GT(r.iterations, 0);
    EXPECT_GT(r.counters.total_bytes(), 0);
  }

  // The consumption: validate() feeds every deck row into the host
  // calibration and reports it by name.
  validation::ValidationOptions options;
  const validation::ValidationReport report =
      validation::validate(store, options);
  ASSERT_EQ(report.deck_rows.size(), 4u);
  EXPECT_NE(std::find(report.deck_rows.begin(), report.deck_rows.end(),
                      "tea_bm_1/serial"),
            report.deck_rows.end());
  EXPECT_NE(std::find(report.deck_rows.begin(), report.deck_rows.end(),
                      "tea_point/manual-omp"),
            report.deck_rows.end());
  ASSERT_TRUE(report.calibration.ok) << report.calibration.note;
  EXPECT_EQ(report.calibration.rows_used, 4);
  EXPECT_GT(report.calibration.fitted_bw_gbs, 0.0);
}

TEST(Sweep, LoadDeckProblemsReportsUnreadableDecks) {
  std::vector<std::string> skipped;
  const auto problems = results::load_deck_problems(
      "/nonexistent-deck-dir", {"tea_bm_1"}, &skipped);
  EXPECT_TRUE(problems.empty());
  ASSERT_EQ(skipped.size(), 1u);
  EXPECT_NE(skipped[0].find("tea_bm_1"), std::string::npos);
}

TEST(Sweep, RunSweepThenSelectRowsRoundTrip) {
  results::SweepConfig config;
  config.variants = {"serial", "manual-omp"};
  config.problems.push_back({"unit", results::bench_problem(32, 1, 1e-8)});
  config.samples = 1;

  results::ResultStore store;
  const results::SweepOutcome first = results::run_sweep(store, config);
  EXPECT_EQ(first.measured, 2);
  EXPECT_EQ(first.cached, 0);

  // Re-running the sweep is a no-op on the store.
  const results::SweepOutcome second = results::run_sweep(store, config);
  EXPECT_EQ(second.measured, 0);
  EXPECT_EQ(second.cached, 2);
  EXPECT_EQ(store.size(), 2u);

  std::vector<std::string> missing;
  const auto rows = results::select_rows(store, config, {}, &missing);
  EXPECT_EQ(rows.size(), 2u);
  EXPECT_TRUE(missing.empty());

  // Projection from stored rows alone produces usable paper-mesh times.
  results::ProjectionSpec spec;
  spec.paper_mesh = 1000;
  spec.paper_steps = 10;
  spec.machines = {"xeon", "knl"};
  const auto projected = results::project_rows(rows, spec);
  ASSERT_EQ(projected.size(), 2u);
  for (const auto& pv : projected) {
    EXPECT_GT(pv.projected_iterations, 0);
    for (const double s : pv.seconds) EXPECT_GT(s, 0.0);
  }
}

}  // namespace
