// Unit and property tests for tlp: fork-join pool, scheduling policies,
// reductions, barriers, exception propagation, thread ids.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "threading/barrier.hpp"
#include "threading/schedule.hpp"
#include "threading/thread_id.hpp"
#include "threading/thread_pool.hpp"

namespace {

TEST(StaticPartition, CoversRangeExactlyOnce) {
  for (const long n : {0L, 1L, 7L, 100L, 101L}) {
    for (const int threads : {1, 2, 3, 8}) {
      std::vector<int> hits(static_cast<std::size_t>(n), 0);
      for (int t = 0; t < threads; ++t) {
        const auto r = tlp::static_partition(0, n, t, threads);
        for (long i = r.begin; i < r.end; ++i) hits[static_cast<std::size_t>(i)]++;
      }
      for (const int h : hits) EXPECT_EQ(h, 1) << "n=" << n << " p=" << threads;
    }
  }
}

TEST(StaticPartition, BalancedWithinOne) {
  const auto r0 = tlp::static_partition(0, 10, 0, 3);
  const auto r1 = tlp::static_partition(0, 10, 1, 3);
  const auto r2 = tlp::static_partition(0, 10, 2, 3);
  EXPECT_EQ(r0.end - r0.begin, 4);
  EXPECT_EQ(r1.end - r1.begin, 3);
  EXPECT_EQ(r2.end - r2.begin, 3);
}

TEST(ThreadPool, ParallelRegionRunsEveryThreadOnce) {
  tlp::ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(4);
  pool.parallel_region([&](int tid, int n) {
    EXPECT_EQ(n, 4);
    counts[static_cast<std::size_t>(tid)]++;
  });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, RegionReusableAcrossGenerations) {
  tlp::ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int rep = 0; rep < 50; ++rep) {
    pool.parallel_region([&](int, int) { total++; });
  }
  EXPECT_EQ(total.load(), 150);
}

class ScheduleTest : public ::testing::TestWithParam<
                         std::tuple<tlp::Schedule, int, long>> {};

TEST_P(ScheduleTest, ParallelForTouchesEachIndexOnce) {
  const auto [sched, threads, n] = GetParam();
  tlp::ThreadPool pool(threads);
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  tlp::ForOptions opts;
  opts.schedule = sched;
  pool.parallel_for(
      0, n,
      [&](long lo, long hi) {
        for (long i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)]++;
      },
      opts);
  for (long i = 0; i < n; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST_P(ScheduleTest, ReduceMatchesSerialSum) {
  const auto [sched, threads, n] = GetParam();
  tlp::ThreadPool pool(threads);
  tlp::ForOptions opts;
  opts.schedule = sched;
  const double sum = pool.parallel_reduce<double>(
      0, n, 0.0,
      [](long lo, long hi) {
        double acc = 0;
        for (long i = lo; i < hi; ++i) acc += static_cast<double>(i);
        return acc;
      },
      [](double a, double b) { return a + b; }, opts);
  EXPECT_DOUBLE_EQ(sum, static_cast<double>(n) * (n - 1) / 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, ScheduleTest,
    ::testing::Combine(::testing::Values(tlp::Schedule::kStatic,
                                         tlp::Schedule::kDynamic,
                                         tlp::Schedule::kGuided),
                       ::testing::Values(1, 2, 7),
                       ::testing::Values(0L, 1L, 1000L)));

TEST(ThreadPool, StaticReduceIsDeterministic) {
  tlp::ThreadPool pool(6);
  std::vector<double> values(10000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = 1.0 / static_cast<double>(i + 1);
  }
  const auto run = [&] {
    return pool.parallel_reduce<double>(
        0, static_cast<long>(values.size()), 0.0,
        [&](long lo, long hi) {
          double acc = 0;
          for (long i = lo; i < hi; ++i) acc += values[static_cast<std::size_t>(i)];
          return acc;
        },
        [](double a, double b) { return a + b; });
  };
  const double first = run();
  for (int rep = 0; rep < 10; ++rep) EXPECT_EQ(run(), first);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  tlp::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_region([](int tid, int) {
    if (tid == 2) throw tl::Error("worker boom");
  }),
               tl::Error);
  // Pool must stay usable after the failure.
  std::atomic<int> count{0};
  pool.parallel_region([&](int, int) { count++; });
  EXPECT_EQ(count.load(), 4);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  tlp::ThreadPool pool(4);
  bool touched = false;
  pool.parallel_for(5, 5, [&](long, long) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  tlp::ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  pool.parallel_region([&](int tid, int n) {
    EXPECT_EQ(tid, 0);
    EXPECT_EQ(n, 1);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPool, NestedPoolsWork) {
  // Hybrid backends run a pool per minimpi rank: emulate two sibling pools
  // driven from worker threads of an outer pool.
  tlp::ThreadPool outer(2);
  std::atomic<long> total{0};
  outer.parallel_region([&](int, int) {
    tlp::ThreadPool inner(3);
    inner.parallel_for(0, 300, [&](long lo, long hi) {
      total += hi - lo;
    });
  });
  EXPECT_EQ(total.load(), 600);
}

TEST(ThreadPool, DefaultThreadsPositive) {
  EXPECT_GE(tlp::default_threads(), 1);
}

TEST(Barrier, SynchronizesPhases) {
  constexpr int kThreads = 6;
  tlp::Barrier barrier(kThreads);
  std::atomic<int> phase_counter{0};
  tlp::ThreadPool pool(kThreads);
  pool.parallel_region([&](int, int) {
    for (int phase = 0; phase < 5; ++phase) {
      phase_counter++;
      barrier.arrive_and_wait();
      // After the barrier every participant of this phase has incremented.
      EXPECT_GE(phase_counter.load(), (phase + 1) * kThreads);
      barrier.arrive_and_wait();
    }
  });
  EXPECT_EQ(phase_counter.load(), 5 * kThreads);
}

TEST(Barrier, RejectsNonPositiveCount) {
  EXPECT_THROW(tlp::Barrier(0), tl::Error);
}

TEST(ThreadId, StablePerThreadAndDistinct) {
  const int mine = tlp::current_thread_id();
  EXPECT_EQ(tlp::current_thread_id(), mine);
  std::set<int> ids;
  std::mutex m;
  tlp::ThreadPool pool(8);
  pool.parallel_region([&](int, int) {
    std::lock_guard<std::mutex> lock(m);
    ids.insert(tlp::current_thread_id());
  });
  EXPECT_EQ(ids.size(), 8u);
}

TEST(ThreadPool, GuidedChunksShrink) {
  tlp::ThreadPool pool(4);
  std::vector<long> chunk_sizes;
  std::mutex m;
  tlp::ForOptions opts;
  opts.schedule = tlp::Schedule::kGuided;
  pool.parallel_for(
      0, 10000,
      [&](long lo, long hi) {
        std::lock_guard<std::mutex> lock(m);
        chunk_sizes.push_back(hi - lo);
      },
      opts);
  ASSERT_GT(chunk_sizes.size(), 1u);
  const long covered = std::accumulate(chunk_sizes.begin(), chunk_sizes.end(), 0L);
  EXPECT_EQ(covered, 10000);
}

}  // namespace
