// Unit and property tests for tlp: fork-join pool, scheduling policies,
// reductions, barriers, exception propagation, thread ids.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "threading/barrier.hpp"
#include "threading/schedule.hpp"
#include "threading/thread_id.hpp"
#include "threading/thread_pool.hpp"

namespace {

TEST(StaticPartition, CoversRangeExactlyOnce) {
  for (const long n : {0L, 1L, 7L, 100L, 101L}) {
    for (const int threads : {1, 2, 3, 8}) {
      std::vector<int> hits(static_cast<std::size_t>(n), 0);
      for (int t = 0; t < threads; ++t) {
        const auto r = tlp::static_partition(0, n, t, threads);
        for (long i = r.begin; i < r.end; ++i) hits[static_cast<std::size_t>(i)]++;
      }
      for (const int h : hits) EXPECT_EQ(h, 1) << "n=" << n << " p=" << threads;
    }
  }
}

TEST(StaticPartition, BalancedWithinOne) {
  const auto r0 = tlp::static_partition(0, 10, 0, 3);
  const auto r1 = tlp::static_partition(0, 10, 1, 3);
  const auto r2 = tlp::static_partition(0, 10, 2, 3);
  EXPECT_EQ(r0.end - r0.begin, 4);
  EXPECT_EQ(r1.end - r1.begin, 3);
  EXPECT_EQ(r2.end - r2.begin, 3);
}

TEST(ThreadPool, ParallelRegionRunsEveryThreadOnce) {
  tlp::ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(4);
  pool.parallel_region([&](int tid, int n) {
    EXPECT_EQ(n, 4);
    counts[static_cast<std::size_t>(tid)]++;
  });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, RegionReusableAcrossGenerations) {
  tlp::ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int rep = 0; rep < 50; ++rep) {
    pool.parallel_region([&](int, int) { total++; });
  }
  EXPECT_EQ(total.load(), 150);
}

class ScheduleTest : public ::testing::TestWithParam<
                         std::tuple<tlp::Schedule, int, long>> {};

TEST_P(ScheduleTest, ParallelForTouchesEachIndexOnce) {
  const auto [sched, threads, n] = GetParam();
  tlp::ThreadPool pool(threads);
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  tlp::ForOptions opts;
  opts.schedule = sched;
  pool.parallel_for(
      0, n,
      [&](long lo, long hi) {
        for (long i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)]++;
      },
      opts);
  for (long i = 0; i < n; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST_P(ScheduleTest, ReduceMatchesSerialSum) {
  const auto [sched, threads, n] = GetParam();
  tlp::ThreadPool pool(threads);
  tlp::ForOptions opts;
  opts.schedule = sched;
  const double sum = pool.parallel_reduce<double>(
      0, n, 0.0,
      [](long lo, long hi) {
        double acc = 0;
        for (long i = lo; i < hi; ++i) acc += static_cast<double>(i);
        return acc;
      },
      [](double a, double b) { return a + b; }, opts);
  EXPECT_DOUBLE_EQ(sum, static_cast<double>(n) * (n - 1) / 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, ScheduleTest,
    ::testing::Combine(::testing::Values(tlp::Schedule::kStatic,
                                         tlp::Schedule::kDynamic,
                                         tlp::Schedule::kGuided),
                       ::testing::Values(1, 2, 7),
                       ::testing::Values(0L, 1L, 1000L)));

TEST(ThreadPool, StaticReduceIsDeterministic) {
  tlp::ThreadPool pool(6);
  std::vector<double> values(10000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = 1.0 / static_cast<double>(i + 1);
  }
  const auto run = [&] {
    return pool.parallel_reduce<double>(
        0, static_cast<long>(values.size()), 0.0,
        [&](long lo, long hi) {
          double acc = 0;
          for (long i = lo; i < hi; ++i) acc += values[static_cast<std::size_t>(i)];
          return acc;
        },
        [](double a, double b) { return a + b; });
  };
  const double first = run();
  for (int rep = 0; rep < 10; ++rep) EXPECT_EQ(run(), first);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  tlp::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_region([](int tid, int) {
    if (tid == 2) throw tl::Error("worker boom");
  }),
               tl::Error);
  // Pool must stay usable after the failure.
  std::atomic<int> count{0};
  pool.parallel_region([&](int, int) { count++; });
  EXPECT_EQ(count.load(), 4);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  tlp::ThreadPool pool(4);
  bool touched = false;
  pool.parallel_for(5, 5, [&](long, long) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  tlp::ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  pool.parallel_region([&](int tid, int n) {
    EXPECT_EQ(tid, 0);
    EXPECT_EQ(n, 1);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPool, NestedPoolsWork) {
  // Hybrid backends run a pool per minimpi rank: emulate two sibling pools
  // driven from worker threads of an outer pool.
  tlp::ThreadPool outer(2);
  std::atomic<long> total{0};
  outer.parallel_region([&](int, int) {
    tlp::ThreadPool inner(3);
    inner.parallel_for(0, 300, [&](long lo, long hi) {
      total += hi - lo;
    });
  });
  EXPECT_EQ(total.load(), 600);
}

TEST(ThreadPool, DefaultThreadsPositive) {
  EXPECT_GE(tlp::default_threads(), 1);
}

TEST(Barrier, SynchronizesPhases) {
  constexpr int kThreads = 6;
  tlp::Barrier barrier(kThreads);
  std::atomic<int> phase_counter{0};
  tlp::ThreadPool pool(kThreads);
  pool.parallel_region([&](int, int) {
    for (int phase = 0; phase < 5; ++phase) {
      phase_counter++;
      barrier.arrive_and_wait();
      // After the barrier every participant of this phase has incremented.
      EXPECT_GE(phase_counter.load(), (phase + 1) * kThreads);
      barrier.arrive_and_wait();
    }
  });
  EXPECT_EQ(phase_counter.load(), 5 * kThreads);
}

TEST(Barrier, RejectsNonPositiveCount) {
  EXPECT_THROW(tlp::Barrier(0), tl::Error);
}

TEST(ThreadId, StablePerThreadAndDistinct) {
  const int mine = tlp::current_thread_id();
  EXPECT_EQ(tlp::current_thread_id(), mine);
  std::set<int> ids;
  std::mutex m;
  tlp::ThreadPool pool(8);
  pool.parallel_region([&](int, int) {
    std::lock_guard<std::mutex> lock(m);
    ids.insert(tlp::current_thread_id());
  });
  EXPECT_EQ(ids.size(), 8u);
}

// --- fork-join / barrier stress --------------------------------------------
//
// These cases hammer the wakeup and generation paths that a spin-barrier
// rewrite can get wrong: a lost wakeup deadlocks a region (caught by the
// suite timeout), generation reuse lets a thread slip through a phase early
// (caught by the per-phase counters), and a torn reduction loses updates
// (caught by the exact sums).

TEST(ThreadPoolStress, RapidForkJoinGenerations) {
  // Thousands of tiny regions back to back: each region must run every
  // thread exactly once, even when workers race between spinning, parking
  // and re-arming across generations.
  tlp::ThreadPool pool(4);
  std::atomic<long> total{0};
  constexpr int kRegions = 4000;
  for (int rep = 0; rep < kRegions; ++rep) {
    std::atomic<int> here{0};
    pool.parallel_region([&](int, int) {
      here++;
      total++;
    });
    ASSERT_EQ(here.load(), 4) << "region " << rep << " lost a thread";
  }
  EXPECT_EQ(total.load(), 4L * kRegions);
}

TEST(ThreadPoolStress, MixedSizeReductionsStaySane) {
  // Alternate reductions over wildly different range sizes (empty, one
  // element, odd primes, large) and schedules; every result is checked
  // against the closed form, so a partial-combine bug or a reused partial
  // slot from a previous generation shows up as a wrong sum.
  tlp::ThreadPool pool(5);
  const long sizes[] = {0, 1, 7, 97, 1000, 3, 12345, 2, 64};
  const tlp::Schedule schedules[] = {tlp::Schedule::kStatic,
                                     tlp::Schedule::kDynamic,
                                     tlp::Schedule::kGuided};
  for (int rep = 0; rep < 300; ++rep) {
    const long n = sizes[rep % (sizeof(sizes) / sizeof(sizes[0]))];
    tlp::ForOptions opts;
    opts.schedule = schedules[rep % 3];
    const double sum = pool.parallel_reduce<double>(
        0, n, 0.0,
        [](long lo, long hi) {
          double acc = 0;
          for (long i = lo; i < hi; ++i) acc += static_cast<double>(i);
          return acc;
        },
        [](double a, double b) { return a + b; }, opts);
    ASSERT_DOUBLE_EQ(sum, static_cast<double>(n) * (n - 1) / 2.0)
        << "rep " << rep << " n " << n;
  }
}

TEST(ThreadPoolStress, ForkJoinInterleavedWithReductions) {
  // Interleave plain regions, work-shared loops and reductions, so the
  // generation counter advances through differently-shaped jobs; any
  // cross-generation state leak corrupts one of the exact checks.
  tlp::ThreadPool pool(3);
  std::vector<int> hits(512, 0);
  for (int rep = 0; rep < 200; ++rep) {
    std::atomic<int> ran{0};
    pool.parallel_region([&](int, int) { ran++; });
    ASSERT_EQ(ran.load(), 3);

    std::fill(hits.begin(), hits.end(), 0);
    pool.parallel_for(0, static_cast<long>(hits.size()), [&](long lo, long hi) {
      for (long i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)]++;
    });
    for (const int h : hits) ASSERT_EQ(h, 1);

    const long n = 100 + rep;
    const double sum = pool.parallel_reduce<double>(
        0, n, 0.0,
        [](long lo, long hi) {
          double acc = 0;
          for (long i = lo; i < hi; ++i) acc += static_cast<double>(i);
          return acc;
        },
        [](double a, double b) { return a + b; });
    ASSERT_DOUBLE_EQ(sum, static_cast<double>(n) * (n - 1) / 2.0);
  }
}

TEST(BarrierStress, ManyPhasesNoSlipThrough) {
  // A thread that passes the barrier before everyone arrived (generation
  // reuse) would observe a phase counter below the full count.
  constexpr int kThreads = 4;
  constexpr int kPhases = 2000;
  tlp::Barrier barrier(kThreads);
  std::atomic<int> arrived{0};
  tlp::ThreadPool pool(kThreads);
  pool.parallel_region([&](int, int) {
    for (int phase = 0; phase < kPhases; ++phase) {
      arrived++;
      barrier.arrive_and_wait();
      ASSERT_GE(arrived.load(), (phase + 1) * kThreads);
      barrier.arrive_and_wait();
    }
  });
  EXPECT_EQ(arrived.load(), kPhases * kThreads);
}

TEST(BarrierStress, TwoBarriersPingPong) {
  // Classic double-buffer handoff: writer phase / reader phase alternating
  // through two barriers; a reordering across either barrier corrupts the
  // checked value.
  constexpr int kThreads = 3;
  tlp::Barrier a(kThreads), b(kThreads);
  tlp::ThreadPool pool(kThreads);
  int shared = 0;
  pool.parallel_region([&](int tid, int) {
    for (int round = 0; round < 500; ++round) {
      if (tid == round % kThreads) shared = round;
      a.arrive_and_wait();
      ASSERT_EQ(shared, round);
      b.arrive_and_wait();
    }
  });
}

TEST(ThreadPool, GuidedChunksShrink) {
  tlp::ThreadPool pool(4);
  std::vector<long> chunk_sizes;
  std::mutex m;
  tlp::ForOptions opts;
  opts.schedule = tlp::Schedule::kGuided;
  pool.parallel_for(
      0, 10000,
      [&](long lo, long hi) {
        std::lock_guard<std::mutex> lock(m);
        chunk_sizes.push_back(hi - lo);
      },
      opts);
  ASSERT_GT(chunk_sizes.size(), 1u);
  const long covered = std::accumulate(chunk_sizes.begin(), chunk_sizes.end(), 0L);
  EXPECT_EQ(covered, 10000);
}

}  // namespace
