// The metamorphic tier of the correctness story (docs/TESTING.md): the
// seeded deck generator must be bit-deterministic, and the property suite
// must hold over a generated workload population — plus pinned regressions
// the generator itself found.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>

#include "common/config.hpp"
#include "gen/generator.hpp"
#include "gen/properties.hpp"

namespace {

namespace fs = std::filesystem;

fs::path regressions_dir() {
  for (fs::path p : {fs::path(TEA_SOURCE_DIR) / "examples" / "decks" /
                         "regressions",
                     fs::path("examples/decks/regressions"),
                     fs::path("../examples/decks/regressions")}) {
    if (fs::exists(p)) return p;
  }
  return {};
}

// --- generator determinism ---------------------------------------------------

TEST(Generator, SameSeedIsByteIdentical) {
  gen::GenOptions options;
  options.seed = 42;
  options.count = 12;
  const auto first = gen::generate(options);
  const auto second = gen::generate(options);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].name, second[i].name);
    // Byte identity of the on-disk artefact, not just field equality —
    // that is what the gen-smoke CI `cmp` asserts too.
    EXPECT_EQ(gen::deck_text(first[i], options),
              gen::deck_text(second[i], options));
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  gen::GenOptions a, b;
  a.seed = 1;
  b.seed = 2;
  a.count = b.count = 4;
  const auto pa = gen::generate(a);
  const auto pb = gen::generate(b);
  int different = 0;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    if (gen::deck_text(pa[i], a) != gen::deck_text(pb[i], b)) ++different;
  }
  EXPECT_EQ(different, 4);
}

TEST(Generator, SmallPopulationIsAPrefixOfTheLargeOne) {
  // Deck i depends only on (seed, i), never on --count: growing a population
  // must not reshuffle the decks already in it.
  gen::GenOptions small, large;
  small.seed = large.seed = 7;
  small.count = 5;
  large.count = 20;
  const auto few = gen::generate(small);
  const auto many = gen::generate(large);
  ASSERT_EQ(few.size(), 5u);
  ASSERT_EQ(many.size(), 20u);
  for (std::size_t i = 0; i < few.size(); ++i) {
    EXPECT_EQ(few[i].name, many[i].name);
    EXPECT_EQ(gen::deck_text(few[i], small), gen::deck_text(many[i], large));
  }
}

TEST(Generator, EveryGeneratedDeckRoundTripsThroughTheParser) {
  gen::GenOptions options;
  options.seed = 11;
  options.count = 10;
  for (const gen::GeneratedDeck& deck : gen::generate(options)) {
    const tl::Config cfg = tl::Config::parse(gen::deck_text(deck, options));
    // to_deck of the parsed problem must reproduce the generated problem —
    // the generator already canonicalises through the parser.
    EXPECT_EQ(tl::to_deck(cfg.problem()), tl::to_deck(deck.problem))
        << deck.name;
  }
}

TEST(Generator, StressDecksAimAtTheHostileCorner) {
  gen::GenOptions options;
  options.seed = 5;
  options.count = 8;
  options.stress = true;
  const auto decks = gen::generate(options);
  ASSERT_EQ(decks.size(), 8u);
  for (const gen::GeneratedDeck& deck : decks) {
    EXPECT_EQ(deck.name.rfind("gen_stress_", 0), 0u) << deck.name;
  }
  // The hostile corner must actually be hostile somewhere: at least one
  // deck with an extreme density contrast, and one with a tiny iteration
  // budget or near-machine eps.
  bool contrast = false, cliff = false;
  for (const gen::GeneratedDeck& deck : decks) {
    double lo = 1e300, hi = 0.0;
    for (const tl::StateConfig& st : deck.problem.states) {
      lo = std::min(lo, st.density);
      hi = std::max(hi, st.density);
    }
    contrast = contrast || hi / lo >= 1e3;
    cliff = cliff || deck.problem.max_iters <= 50 ||
            deck.problem.eps <= 1e-14;
  }
  EXPECT_TRUE(contrast);
  EXPECT_TRUE(cliff);
}

// --- the property suite over a generated population --------------------------

TEST(Properties, FixedSeedPopulationPassesTheSuite) {
  // Same spirit as the gen-smoke CI job, shrunk to ctest budget: small
  // meshes, a handful of decks, every property checked.
  gen::GenOptions options;
  options.seed = 42;
  options.count = 6;
  options.min_cells = 16;
  options.max_cells = 40;
  for (const gen::GeneratedDeck& deck : gen::generate(options)) {
    const gen::PropertyReport report =
        gen::check_properties(deck.name, deck.problem);
    EXPECT_TRUE(report.ok()) << deck.name << " failed: " << report.failures();
    for (const gen::PropertyResult& r : report.results) {
      EXPECT_TRUE(r.pass) << deck.name << " " << r.id << ": " << r.detail;
    }
  }
}

TEST(Properties, PaintedRangeMatchesThePaintingRule) {
  // Hot strip on a cold ambient background: the painted extremes are the
  // two material temperatures exactly.
  const tl::ProblemConfig p = tl::Config::default_config().problem();
  double lo = 0.0, hi = 0.0;
  gen::painted_u_range(p, &lo, &hi);
  EXPECT_DOUBLE_EQ(lo, 100.0 * 0.0001);
  EXPECT_DOUBLE_EQ(hi, 0.1 * 25.0);
}

// --- mesh-refinement convergence order ---------------------------------------

class ConvergenceOrder : public ::testing::TestWithParam<tl::SolverKind> {};

TEST_P(ConvergenceOrder, SecondOrderInSpace) {
  // Fixed physical problem and dt, meshes 20/40/80: the five-point operator
  // is second order, so any solver that actually solves the system must
  // show p ~= 2.  A solver whose answer merely *looks* plausible but is
  // wrong (bad eigenvalue bounds, premature stop) destroys the Richardson
  // quotient — this is the accuracy check that needs no golden table.
  // Uniform density, energy-only hot strip: a constant-coefficient problem
  // whose solution scale sqrt(D*t) ~ 0.7 is resolved even on the coarse
  // mesh, so all three levels sit in the asymptotic regime.  (The shipped
  // 1000:1-contrast deck is useless here: its interface layer is thinner
  // than any of these meshes and the Richardson quotient is pre-asymptotic
  // noise.)  Strip edges land on cell boundaries at every level, so the
  // painted initial data is the same continuum function on all meshes, and
  // dt is fixed across levels, so the time error cancels in differences.
  tl::ProblemConfig base = tl::Config::default_config().problem();
  base.states[0].density = 1.0;
  base.states[0].energy = 1.0;
  base.states[1].density = 1.0;   // same density: K is uniform
  base.states[1].energy = 25.0;   // the jump lives in the energy alone
  base.solver = GetParam();
  base.initial_timestep = 0.25;
  base.end_step = 2;
  base.eps = 1e-15;  // push algebraic error far below discretisation error
  base.max_iters = 20000;
  const gen::OrderEstimate est = gen::convergence_order(base, 20, 3);
  ASSERT_TRUE(est.ok) << est.detail;
  EXPECT_GT(est.order, 1.5) << est.detail;
  EXPECT_LT(est.order, 2.6) << est.detail;
}

INSTANTIATE_TEST_SUITE_P(AllSolvers, ConvergenceOrder,
                         ::testing::Values(tl::SolverKind::kCg,
                                           tl::SolverKind::kPpcg,
                                           tl::SolverKind::kJacobi,
                                           tl::SolverKind::kCheby),
                         [](const auto& info) {
                           return std::string(tl::to_string(info.param));
                         });

// --- promoted regression decks -----------------------------------------------

TEST(Regressions, ChebyshevDivergenceDeckStaysPinned) {
  // Found by `tea_sweep gen --seed 7 --count 25`: Chebyshev's eigenvalue
  // estimates collapse on this high-contrast point-source problem and the
  // iteration diverges to NaN.  Pinned so a future eigenvalue-estimation fix
  // has to prove itself here (flip these expectations when it does).
  const fs::path deck = regressions_dir() / "gen_s7_024.in";
  ASSERT_TRUE(fs::exists(deck)) << deck;
  const tl::Config cfg = tl::Config::load(deck.string());
  EXPECT_EQ(cfg.problem().solver, tl::SolverKind::kCheby);

  gen::PropertyOptions options;
  options.agreement_backends.clear();  // reference run only: it is the story
  const gen::PropertyReport report =
      gen::check_properties("gen_s7_024", cfg.problem(), options);
  EXPECT_FALSE(report.converged) << "Chebyshev now converges here — "
                                    "promote this deck to a passing test";
  bool finite_failed = false;
  for (const gen::PropertyResult& r : report.results) {
    if (r.id == "finite") finite_failed = !r.pass;
  }
  EXPECT_TRUE(finite_failed)
      << "the divergence no longer reaches NaN; re-pin the deck";
}

TEST(Regressions, JacobiIterationCliffFailsGracefully) {
  // Found by `tea_sweep gen --seed 1 --count 1 --stress`: a 20-iteration
  // budget Jacobi cannot meet.  The contract under test is *graceful*
  // failure — the run must report non-convergence while every other
  // property (finiteness, conservation, bounds, backend agreement) holds.
  const fs::path deck = regressions_dir() / "gen_stress_s1_000.in";
  ASSERT_TRUE(fs::exists(deck)) << deck;
  const tl::Config cfg = tl::Config::load(deck.string());
  EXPECT_EQ(cfg.problem().solver, tl::SolverKind::kJacobi);
  EXPECT_EQ(cfg.problem().max_iters, 20);

  const gen::PropertyReport report =
      gen::check_properties("gen_stress_s1_000", cfg.problem());
  EXPECT_FALSE(report.converged);
  for (const gen::PropertyResult& r : report.results) {
    if (r.id == "converged") {
      EXPECT_FALSE(r.pass) << r.detail;
    } else {
      EXPECT_TRUE(r.pass) << r.id << ": " << r.detail;
    }
  }
}

}  // namespace
