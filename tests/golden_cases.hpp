// golden_cases.hpp — the frozen golden table and its run configuration,
// shared by the serial/threaded golden suite (test_golden.cpp) and the
// multi-rank determinism suite (test_multirank.cpp).  The table freezes
// outer/inner iteration counts, convergence flags, residuals and the
// conserved temperature sum for every solver on every shipped deck; any
// execution path that honours the deterministic-reduction contract must
// reproduce it.
//
// Regenerate with the test_golden binary (see its header comment):
//
//   TEA_GOLDEN_REGEN=1 ./test_golden --gtest_filter=Golden/GoldenCaseTest.*
#pragma once

#include <algorithm>
#include <filesystem>
#include <string>

#include "common/config.hpp"

namespace golden {

namespace fs = std::filesystem;

inline fs::path decks_dir() {
  for (fs::path p :
       {fs::path(TEA_SOURCE_DIR) / "examples" / "decks",
        fs::path("examples/decks"), fs::path("../examples/decks")}) {
    if (fs::exists(p)) return p;
  }
  return {};
}

struct GoldenCase {
  const char* deck;     // deck file stem under examples/decks
  const char* solver;   // jacobi | cg | chebyshev | ppcg
  // Frozen configuration (what the case actually runs).
  int steps;
  double eps;
  int max_iters;
  // Frozen results.
  long outer;           // total outer solver iterations over all steps
  long inner;           // total PPCG/Chebyshev inner smoothing steps
  int converged;        // every step converged within max_iters
  double initial_rr;    // ||r0||^2 of the last step (pre-solve residual)
  double final_rr;      // squared residual at exit of the last step
  double temp;          // conserved temperature sum after the last step
};

// Tolerances.  Iteration counts and convergence flags match exactly — those
// are the hard freeze.  The value tolerances are set to what the solver
// semantics actually pin down: a solve only determines u to the eps * rr0
// convergence threshold, and the second step starts from the first step's
// approximate solution, so ULP-level kernel reordering (e.g. a vectorized
// reduction) legitimately moves multi-step quantities at the ~sqrt(eps)
// scale.  Real kernel bugs (a wrong stencil coefficient, a dropped row)
// move them at O(1).
inline constexpr double kTempRelTol = 1.0e-8;       // conserved temp sum
inline constexpr double kInitialRrRelTol = 1.0e-5;  // last pre-solve ||r0||^2
// Non-converged (fixed-budget) exit residuals are deterministic functions of
// the sweep count and stay within a tight relative band; converged exits sit
// wherever the crossing iteration landed below threshold, so they are only
// frozen to the threshold bound plus an order-of-magnitude band.
inline constexpr double kResidualRelTol = 0.05;
inline constexpr double kConvergedResidualFactor = 100.0;

// --- golden table (regenerate with TEA_GOLDEN_REGEN=1; see header) ---------
inline const GoldenCase kGolden[] = {
    {"tea_bm_1", "jacobi", 2, 1e-08, 10000, 40, 0, 1, 2.1970051763123695, 8.052395531229528e-11, 50.799836060755332},
    {"tea_bm_1", "cg", 2, 1e-15, 10000, 18, 0, 1, 2.1970038792284452, 7.0678060743501188e-39, 50.800000000000033},
    {"tea_bm_1", "chebyshev", 2, 1e-15, 10000, 18, 0, 1, 2.1970038792284452, 7.0678060743501188e-39, 50.800000000000033},
    {"tea_bm_1", "ppcg", 2, 1e-15, 10000, 18, 0, 1, 2.1970038792284452, 7.0678060743501188e-39, 50.800000000000033},
    {"tea_bm_2", "jacobi", 2, 1e-08, 3000, 4960, 0, 0, 1428.5531288027255, 0.0013578804916679144, 50.656260034885662},
    {"tea_bm_2", "cg", 2, 1e-15, 10000, 403, 0, 1, 1420.8754789213099, 5.3323236446699087e-14, 50.799999999993958},
    {"tea_bm_2", "chebyshev", 2, 1e-15, 10000, 1040, 0, 1, 1420.8756528365275, 1.1094112256508305e-12, 50.799999999996629},
    {"tea_bm_2", "ppcg", 2, 1e-15, 10000, 108, 480, 1, 1420.876166499173, 1.0532763366711251e-12, 50.799999999999287},
    {"tea_ppcg_precon", "jacobi", 2, 1e-08, 1500, 2660, 0, 0, 2691.7432889310262, 0.00057268383531003755, 50.631534082387446},
    {"tea_ppcg_precon", "cg", 2, 1e-15, 10000, 216, 0, 1, 2684.9160564920371, 2.2956632549088913e-13, 50.605468848988686},
    {"tea_ppcg_precon", "chebyshev", 2, 1e-15, 10000, 530, 0, 1, 2684.9214647319477, 2.0593590748564124e-12, 50.605468749996923},
    {"tea_ppcg_precon", "ppcg", 2, 1e-15, 10000, 85, 300, 1, 2684.9214189447671, 5.807431139679888e-13, 50.605468749989079},
    {"tea_circle", "jacobi", 2, 1e-08, 5000, 720, 0, 1, 367.22860065030875, 2.4610657544086058e-06, 50.343732314606399},
    {"tea_circle", "cg", 2, 1e-15, 10000, 181, 0, 1, 367.16140375728367, 2.8128974615539236e-13, 50.362304687500206},
    {"tea_circle", "chebyshev", 2, 1e-15, 10000, 250, 0, 1, 367.16140423771196, 6.3770200504114725e-14, 50.362304687500128},
    {"tea_circle", "ppcg", 2, 1e-15, 10000, 75, 150, 1, 367.16140931503429, 4.4635083342082244e-14, 50.362304687499901},
    {"tea_point", "jacobi", 2, 1e-08, 5000, 760, 0, 1, 147552.80825374014, 0.0013870812292620198, 10.754613166112724},
    {"tea_point", "cg", 2, 1e-15, 10000, 157, 0, 1, 147529.49137058519, 1.3665519599067753e-10, 10.765380859375083},
    {"tea_point", "chebyshev", 2, 1e-15, 10000, 210, 0, 1, 147529.49163809954, 6.5643832969024181e-11, 10.765380859375146},
    {"tea_point", "ppcg", 2, 1e-15, 10000, 72, 120, 1, 147529.51544457252, 6.1273370210655517e-12, 10.765380859375096},
    {"tea_bm_16", "jacobi", 2, 1e-08, 2500, 3200, 0, 1, 839.14690849678493, 8.3858320217280649e-06, 50.722851222260488},
    {"tea_bm_16", "cg", 2, 1e-15, 10000, 258, 0, 1, 837.05066270059547, 4.9558774574495861e-14, 50.799999999997866},
    {"tea_bm_16", "chebyshev", 2, 1e-15, 10000, 530, 0, 1, 837.05068129327435, 4.1250666551601559e-13, 50.800000000000111},
    {"tea_bm_16", "ppcg", 2, 1e-15, 10000, 89, 290, 1, 837.05048595589858, 5.4605763613168802e-13, 50.80000000000382},
    {"tea_aniso", "jacobi", 2, 1e-08, 2500, 1040, 0, 1, 588.74461594459137, 4.2588144198220316e-06, 202.99936808947947},
    {"tea_aniso", "cg", 2, 1e-15, 10000, 194, 0, 1, 588.03727305152609, 2.1417698897505651e-15, 203.20000000000491},
    {"tea_aniso", "chebyshev", 2, 1e-15, 10000, 350, 0, 1, 588.03727772083573, 1.2704834796071399e-13, 203.19999999999916},
    {"tea_aniso", "ppcg", 2, 1e-15, 10000, 80, 200, 1, 588.0371949489703, 4.0998982689510916e-13, 203.19999999999297},
};
// --- end golden table -------------------------------------------------------

inline tl::SolverKind solver_kind(const std::string& name) {
  if (name == "jacobi") return tl::SolverKind::kJacobi;
  if (name == "cg") return tl::SolverKind::kCg;
  if (name == "chebyshev") return tl::SolverKind::kCheby;
  return tl::SolverKind::kPpcg;
}

/// The frozen run configuration of one case: deck settings with the solver
/// overridden and budgets clamped so the slow cross-solver combinations stay
/// inside the ctest timeout.  This function IS the golden contract — any
/// change to it requires regenerating the table.
inline tl::ProblemConfig golden_config(const GoldenCase& c) {
  const fs::path deck = decks_dir() / (std::string(c.deck) + ".in");
  tl::ProblemConfig p = tl::Config::load(deck.string()).problem();
  p.solver = solver_kind(c.solver);
  p.end_step = c.steps;
  p.eps = c.eps;
  p.max_iters = c.max_iters;
  return p;
}

/// Budgets used both by the checks and by regeneration.  Jacobi converges
/// linearly, so it gets a relaxed tolerance and a mesh-dependent sweep cap
/// (the 250^2/512^2 caps deliberately freeze a non-converged state: the gate
/// then also pins the exact residual a fixed sweep budget reaches).
inline void clamp_budgets(const std::string& deck, const std::string& solver,
                          int deck_steps, double deck_eps, int* steps,
                          double* eps, int* max_iters) {
  *steps = std::min(deck_steps, 2);
  *eps = deck_eps;
  *max_iters = 10000;
  if (solver == "jacobi") {
    *eps = std::max(deck_eps, 1e-8);
    if (deck == "tea_bm_2") *max_iters = 3000;
    else if (deck == "tea_ppcg_precon") *max_iters = 1500;
    else if (deck == "tea_bm_16" || deck == "tea_aniso") *max_iters = 2500;
    else if (deck != "tea_bm_1") *max_iters = 5000;
  }
}

}  // namespace golden
